// Package client is the Go client library for the clockrsm front door
// (internal/rpc): a pipelined, failover-aware connection to a replica
// group's kvservers.
//
// One Client multiplexes every request over a single TCP connection —
// requests carry IDs, the server completes them out of order, and a
// bounded in-flight window (Config.Window) is the client-side admission
// ticket — so N concurrent callers share one socket instead of N.
//
// # Failover and resubmission
//
// The Client owns the retry policy a correct RSM client needs:
//
//   - Typed replication errors are resubmitted automatically.
//     node.ErrNotInConfig and node.ErrReconfigured both guarantee the
//     command never executed (the PR 4 error contract), so the Client
//     fails over to the next replica and resubmits, invisibly to the
//     caller, up to Config.MaxAttempts tries.
//   - rpc.StatusWrongGroup (a key caught mid-migration by a live group
//     split for longer than the server would wait) is resubmitted on
//     the same connection: the command was fenced before execution, so
//     the resubmission preserves at-most-once, and the server re-routes
//     it against its refreshed routing table.
//   - Connection loss is resubmitted only when it is safe. Requests
//     that were never written, and reads (idempotent by nature), are
//     re-sent on the next connection. A write that was already on the
//     wire when the connection died has unknown fate — resubmitting it
//     could execute it twice — so it fails with ErrConnLost and the
//     decision returns to the caller.
//   - Overload is returned, not retried: rpc.ErrOverloaded reports the
//     server shed the request before doing any work; hammering a
//     shedding server defeats its admission control, so backoff belongs
//     to the caller.
//
// # Session stickiness
//
// GetSeq reads are monotonic across replicas and across failover: the
// Client carries one session token (the newest watermark any of its
// sequential reads observed), sends it with every GetSeq, and folds the
// served watermark back in. The token — not the connection — holds the
// monotonicity state, so a sequential read after failover still never
// observes older state than the reads before it.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/rpc"
)

// Errors returned by the Client.
var (
	// ErrClosed reports a call on a closed Client.
	ErrClosed = errors.New("client: closed")
	// ErrConnLost reports a non-idempotent request that was on the wire
	// when the connection died: its fate is unknown (it may have
	// committed), so the Client refuses to resubmit it.
	ErrConnLost = errors.New("client: connection lost with write in flight (fate unknown)")
	// ErrTooManyAttempts reports a request that exhausted
	// Config.MaxAttempts resubmissions.
	ErrTooManyAttempts = errors.New("client: too many attempts")
)

// Config configures a Client.
type Config struct {
	// Addrs are the replicas' front-door addresses, tried in order on
	// connect and failover. Required.
	Addrs []string
	// Window bounds requests in flight (sent or queued, unanswered)
	// across the whole Client (default 64). It is the pipelining depth
	// over the single connection.
	Window int
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// RetryBackoff is the pause between failed connection attempts
	// (default 50ms).
	RetryBackoff time.Duration
	// MaxAttempts bounds the total tries of one request across typed
	// resubmissions (default 8).
	MaxAttempts int
	// DrainTimeout bounds the drain-then-switch window after a
	// NotInConfig response: the Client stops sending, lets the replica
	// answer what is already in flight (each pending request gets its
	// own typed, resubmit-safe response), then switches replicas;
	// stragglers past the bound are cut off (default 2s).
	DrainTimeout time.Duration
}

func (c *Config) defaults() error {
	if len(c.Addrs) == 0 {
		return errors.New("client: no addresses")
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Second
	}
	return nil
}

// call is one in-flight request.
type call struct {
	req rpc.Request // Key/Value owned by the call
	// idempotent requests (reads) may be re-sent after an unclean
	// connection loss; non-idempotent ones (writes, admin) may not.
	idempotent bool
	attempts   int
	res        rpc.Response // Value owned (copied on delivery)
	err        error
	done       chan struct{}
}

// Client is a pipelined front-door client. It is safe for concurrent
// use; all callers share the connection, the window and the session.
type Client struct {
	cfg Config

	ids     atomic.Uint64
	session atomic.Int64

	sendq  chan *call    // unsent requests; survives connection switches
	window chan struct{} // in-flight window semaphore

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu      sync.Mutex
	pending map[uint64]*call // sent, unanswered (current connection)
	conn    net.Conn         // current connection (nil between)
	addrIdx int
}

// Dial creates a Client and starts its connection manager. It returns
// without waiting for a connection: requests queue until one is up.
func Dial(cfg Config) (*Client, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:     cfg,
		sendq:   make(chan *call, cfg.Window),
		window:  make(chan struct{}, cfg.Window),
		closed:  make(chan struct{}),
		pending: make(map[uint64]*call),
	}
	c.wg.Add(1)
	go c.run()
	return c, nil
}

// Close tears the connection down and fails every outstanding request
// with ErrClosed. Idempotent.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.mu.Lock()
		if c.conn != nil {
			c.conn.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	return nil
}

// Session returns the client's sequential-read session token: the
// newest watermark any GetSeq through this client has observed.
func (c *Client) Session() int64 { return c.session.Load() }

// run is the connection manager: connect, serve until the connection
// dies, decide each pending request's fate, fail over, repeat.
func (c *Client) run() {
	defer c.wg.Done()
	defer c.failAll(ErrClosed)
	for {
		conn, err := c.dialNext()
		if err != nil {
			return // closed
		}
		c.serveConn(conn)
		select {
		case <-c.closed:
			return
		default:
		}
	}
}

// dialNext tries replicas round-robin until one accepts, pausing
// RetryBackoff between full passes. Only Close stops it.
func (c *Client) dialNext() (net.Conn, error) {
	for {
		for range c.cfg.Addrs {
			select {
			case <-c.closed:
				return nil, ErrClosed
			default:
			}
			c.mu.Lock()
			addr := c.cfg.Addrs[c.addrIdx%len(c.cfg.Addrs)]
			c.addrIdx++
			c.mu.Unlock()
			conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
			if err != nil {
				continue
			}
			c.mu.Lock()
			select {
			case <-c.closed:
				c.mu.Unlock()
				conn.Close()
				return nil, ErrClosed
			default:
			}
			c.conn = conn
			c.mu.Unlock()
			return conn, nil
		}
		select {
		case <-c.closed:
			return nil, ErrClosed
		case <-time.After(c.cfg.RetryBackoff):
		}
	}
}

// serveConn pumps the send queue onto conn and responses off it until
// the connection dies (IO error, drain switch, or Close), then settles
// every request that was pending on it.
func (c *Client) serveConn(conn net.Conn) {
	defer func() {
		c.mu.Lock()
		c.conn = nil
		c.mu.Unlock()
	}()
	// draining flips when a NotInConfig response tells us this replica
	// is done: the writer stops feeding it, the reader keeps collecting
	// the typed responses already owed, and a timer cuts off stragglers.
	// writerParked acknowledges the writer has flushed and stopped — only
	// then is "pending empty" a complete drain (the writer may hold a
	// dequeued request it has not registered yet).
	var draining, writerParked atomic.Bool
	drainCh := make(chan struct{})
	var drainTimer *time.Timer
	startDrain := func() {
		if draining.CompareAndSwap(false, true) {
			close(drainCh)
			drainTimer = time.AfterFunc(c.cfg.DrainTimeout, func() { conn.Close() })
		}
	}
	defer func() {
		if drainTimer != nil {
			drainTimer.Stop()
		}
	}()

	writerDone := make(chan struct{})
	readerDone := make(chan struct{})

	// Writer: drain the send queue through one bufio.Writer, flushing
	// when the queue runs empty (write coalescing: one syscall covers a
	// burst of pipelined requests).
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, 64<<10)
		if err := rpc.WriteMagic(bw); err != nil {
			conn.Close()
			return
		}
		var enc []byte
		send1 := func(ca *call) bool {
			if ca.req.Verb == rpc.VGetS {
				// Freshest token at send time, so a resubmitted read after
				// failover still carries everything the session observed.
				ca.req.Session = c.session.Load()
			}
			c.mu.Lock()
			c.pending[ca.req.ID] = ca
			c.mu.Unlock()
			enc = rpc.AppendRequest(enc[:0], &ca.req)
			_, err := bw.Write(enc)
			return err == nil
		}
		for {
			if draining.Load() {
				// Replica on its way out: flush anything buffered (so every
				// request we count as pending is really on the wire and gets
				// its typed response), then park until the reader finishes
				// the drain. Queued requests wait for the next connection.
				if bw.Flush() != nil {
					conn.Close()
					return
				}
				writerParked.Store(true)
				if c.pendingEmpty() {
					// Nothing owed: the drain is already complete. The reader
					// may have checked before we parked, so close from here.
					conn.Close()
				}
				select {
				case <-readerDone:
				case <-c.closed:
				}
				return
			}
			select {
			case ca := <-c.sendq:
				if !send1(ca) {
					conn.Close()
					return
				}
				// Keep writing as long as requests are queued; flush once
				// the burst is drained.
				for more := true; more; {
					select {
					case ca := <-c.sendq:
						if !send1(ca) {
							conn.Close()
							return
						}
					default:
						more = false
					}
				}
				if bw.Flush() != nil {
					conn.Close()
					return
				}
			case <-drainCh:
				// Wake from an idle wait so the loop top parks for the drain.
				continue
			case <-readerDone:
				return
			case <-c.closed:
				conn.Close()
				return
			}
		}
	}()

	// Reader: match responses to pending calls, settling each one.
	var buf []byte
	var resp rpc.Response
	for {
		payload, err := rpc.ReadFrame(conn, &buf)
		if err != nil {
			break
		}
		if err := rpc.DecodeResponse(payload, &resp); err != nil {
			break
		}
		c.mu.Lock()
		ca, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if !ok {
			continue // late response for a request we already settled
		}
		c.settle(ca, &resp, startDrain)
		if draining.Load() && writerParked.Load() && c.pendingEmpty() {
			break // drain complete: every owed response collected
		}
	}
	close(readerDone)
	conn.Close()
	<-writerDone

	// Fate of requests still pending on the dead connection: reads are
	// idempotent — resubmit on the next connection; writes on the wire
	// have unknown fate — fail them rather than risk double execution.
	c.mu.Lock()
	orphans := make([]*call, 0, len(c.pending))
	for id, ca := range c.pending {
		orphans = append(orphans, ca)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	for _, ca := range orphans {
		if ca.idempotent {
			c.requeue(ca)
		} else {
			c.deliverErr(ca, ErrConnLost)
		}
	}
}

func (c *Client) pendingEmpty() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending) == 0
}

// settle resolves one answered request: deliver, or resubmit on the
// typed replication errors (safe by contract — the command never
// executed).
func (c *Client) settle(ca *call, resp *rpc.Response, startDrain func()) {
	switch resp.Status {
	case rpc.StatusNotInConfig, rpc.StatusReconfigured:
		// This replica cannot serve us (and with NotInConfig, will not
		// again): collect what it still owes, then switch. The command
		// never executed, so resubmission is always safe.
		startDrain()
		ca.attempts++
		if ca.attempts >= c.cfg.MaxAttempts {
			c.deliverErr(ca, fmt.Errorf("%w: %d tries, last: %v", ErrTooManyAttempts, ca.attempts, resp.Status.Err(nil)))
			return
		}
		c.requeue(ca)
	case rpc.StatusWrongGroup:
		// The key's slot was mid-migration for longer than the server was
		// willing to wait. The command was fenced, not executed, so
		// resubmission is safe; and the replica itself is healthy — every
		// kvserver hosts every group — so resend on this connection (no
		// drain) and let the server re-route against its refreshed table.
		ca.attempts++
		if ca.attempts >= c.cfg.MaxAttempts {
			c.deliverErr(ca, fmt.Errorf("%w: %d tries, last: %v", ErrTooManyAttempts, ca.attempts, resp.Status.Err(nil)))
			return
		}
		c.requeue(ca)
	default:
		if resp.Status == rpc.StatusOK && ca.req.Verb == rpc.VGetS {
			c.advanceSession(resp.Watermark)
		}
		ca.res = *resp
		if resp.Value != nil {
			ca.res.Value = append([]byte(nil), resp.Value...)
		}
		ca.err = resp.Status.Err(ca.res.Value)
		if ca.err != nil {
			ca.res.Value = nil
		}
		c.deliver(ca)
	}
}

// advanceSession folds a served watermark into the session token
// (monotonic max).
func (c *Client) advanceSession(w int64) {
	for {
		cur := c.session.Load()
		if w <= cur || c.session.CompareAndSwap(cur, w) {
			return
		}
	}
}

// requeue puts a request back on the send queue for the next (or
// current) connection. Capacity cannot overflow: every outstanding
// request holds a window slot and the queue is window-sized.
func (c *Client) requeue(ca *call) {
	select {
	case c.sendq <- ca:
	case <-c.closed:
		c.deliverErr(ca, ErrClosed)
	}
}

func (c *Client) deliver(ca *call) {
	close(ca.done)
	<-c.window
}

func (c *Client) deliverErr(ca *call, err error) {
	ca.err = err
	c.deliver(ca)
}

// failAll settles everything outstanding with err (Close path).
func (c *Client) failAll(err error) {
	c.mu.Lock()
	orphans := make([]*call, 0, len(c.pending))
	for id, ca := range c.pending {
		orphans = append(orphans, ca)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	for _, ca := range orphans {
		c.deliverErr(ca, err)
	}
	for {
		select {
		case ca := <-c.sendq:
			c.deliverErr(ca, err)
		default:
			return
		}
	}
}

// do submits one request and waits for its result. ctx bounds only the
// wait: an abandoned request still runs to completion in the background
// (its window slot frees when the response arrives).
func (c *Client) do(ctx context.Context, verb rpc.Verb, key string, value []byte, sess int64, maxAge int64, idem bool) (rpc.Response, error) {
	ca := &call{
		req: rpc.Request{
			ID:      c.ids.Add(1),
			Verb:    verb,
			Key:     []byte(key),
			Value:   value,
			Session: sess,
			MaxAge:  maxAge,
		},
		idempotent: idem,
		attempts:   1,
		done:       make(chan struct{}),
	}
	// Window slot first: the in-flight bound covers queued requests too.
	select {
	case c.window <- struct{}{}:
	case <-c.closed:
		return rpc.Response{}, ErrClosed
	case <-ctx.Done():
		return rpc.Response{}, ctx.Err()
	}
	select {
	case c.sendq <- ca:
	case <-c.closed:
		<-c.window
		return rpc.Response{}, ErrClosed
	}
	select {
	case <-ca.done:
		return ca.res, ca.err
	case <-ctx.Done():
		return rpc.Response{}, ctx.Err()
	}
}

// Put replicates a write and returns the key's previous value.
func (c *Client) Put(ctx context.Context, key string, value []byte) ([]byte, error) {
	if value == nil {
		value = []byte{}
	}
	res, err := c.do(ctx, rpc.VPut, key, value, 0, 0, false)
	return res.Value, err
}

// Del replicates a delete and returns the deleted value.
func (c *Client) Del(ctx context.Context, key string) ([]byte, error) {
	res, err := c.do(ctx, rpc.VDel, key, nil, 0, 0, false)
	return res.Value, err
}

// Get reads through the replication log — the strongest (and slowest)
// read, totally ordered with every write.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	res, err := c.do(ctx, rpc.VGet, key, nil, 0, 0, true)
	return res.Value, err
}

// GetLin is a linearizable local read: served from the replica's
// stable prefix once its watermark covers the read's capture time; no
// replication traffic.
func (c *Client) GetLin(ctx context.Context, key string) ([]byte, error) {
	res, err := c.do(ctx, rpc.VGetL, key, nil, 0, 0, true)
	return res.Value, err
}

// GetSeq is a sequential read: immediate, and monotonic across every
// replica this client talks to — including across failover — through
// the client's session token.
func (c *Client) GetSeq(ctx context.Context, key string) ([]byte, error) {
	res, err := c.do(ctx, rpc.VGetS, key, nil, c.session.Load(), 0, true)
	return res.Value, err
}

// GetStale is a bounded-staleness read: immediate, served if the
// replica's watermark is at most maxAge old (ErrTooStale otherwise;
// maxAge ≤ 0 serves unconditionally).
func (c *Client) GetStale(ctx context.Context, key string, maxAge time.Duration) ([]byte, error) {
	res, err := c.do(ctx, rpc.VGetA, key, nil, 0, int64(maxAge), true)
	return res.Value, err
}

// Admin sends one operator line (MEMBERS, EPOCH, STATUS, RECONF ...)
// and returns the reply line.
func (c *Client) Admin(ctx context.Context, line string) (string, error) {
	res, err := c.do(ctx, rpc.VAdmin, "", []byte(line), 0, 0, false)
	return string(res.Value), err
}
