package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rpc"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// countingSM wraps the key-value store and counts how many times each
// command payload was applied — the duplicate-execution detector for
// the failover tests. Every test write carries a unique value, so a
// payload applied twice at one replica is a resubmission bug.
type countingSM struct {
	*kvstore.Store
	mu      sync.Mutex
	applied map[string]int
}

func newCountingSM() *countingSM {
	return &countingSM{Store: kvstore.New(), applied: make(map[string]int)}
}

func (s *countingSM) Apply(cmd []byte) []byte {
	s.mu.Lock()
	s.applied[string(cmd)]++
	s.mu.Unlock()
	return s.Store.Apply(cmd)
}

func (s *countingSM) count(payload []byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied[string(payload)]
}

// dups returns how many distinct payloads were applied more than once.
func (s *countingSM) dups() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.applied {
		if c > 1 {
			n++
		}
	}
	return n
}

// cluster is a test cluster: n replicas, each with a front-door server.
type cluster struct {
	hosts []*node.Host
	srvs  []*rpc.Server
	addrs []string
	sms   []*countingSM
}

// startCluster runs an n-replica Clock-RSM cluster with an rpc.Server
// per replica. delta = 0 disables the CLOCKTIME broadcast (linearizable
// reads park forever on an idle cluster — the overload tests' lever).
func startCluster(t *testing.T, n int, delta time.Duration, srvOpts rpc.ServerOptions) *cluster {
	t.Helper()
	hub := transport.NewHub(n, transport.HubOptions{Codec: true})
	t.Cleanup(hub.Close)
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	cl := &cluster{}
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		h, err := node.NewHost(id, spec, hub.Endpoint(id), node.HostOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sm := newCountingSM()
		app := &rsm.App{SM: sm}
		nd := h.Group(0)
		nd.Bind(app)
		nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: delta}))
		cl.hosts = append(cl.hosts, h)
		cl.sms = append(cl.sms, sm)
	}
	for _, h := range cl.hosts {
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, h := range cl.hosts {
			h.Stop()
		}
	})
	for i := 0; i < n; i++ {
		srv := rpc.NewServer(cl.hosts[i], srvOpts)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(srv.Close)
		cl.srvs = append(cl.srvs, srv)
		cl.addrs = append(cl.addrs, ln.Addr().String())
	}
	return cl
}

func dialCluster(t *testing.T, cl *cluster, cfg Config) *Client {
	t.Helper()
	cfg.Addrs = cl.addrs
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientBasicOps(t *testing.T) {
	cl := startCluster(t, 3, 2*time.Millisecond, rpc.ServerOptions{
		Admin: func(ctx context.Context, line string) (string, bool) {
			return "OK " + line, true
		},
	})
	c := dialCluster(t, cl, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if prev, err := c.Put(ctx, "k", []byte("v1")); err != nil || prev != nil {
		t.Fatalf("Put: %q, %v", prev, err)
	}
	if v, err := c.Get(ctx, "k"); err != nil || string(v) != "v1" {
		t.Fatalf("Get: %q, %v", v, err)
	}
	if v, err := c.GetLin(ctx, "k"); err != nil || string(v) != "v1" {
		t.Fatalf("GetLin: %q, %v", v, err)
	}
	if v, err := c.GetSeq(ctx, "k"); err != nil || string(v) != "v1" {
		t.Fatalf("GetSeq: %q, %v", v, err)
	}
	if c.Session() == 0 {
		t.Fatal("GetSeq did not advance the session token")
	}
	if v, err := c.GetStale(ctx, "k", time.Minute); err != nil || string(v) != "v1" {
		t.Fatalf("GetStale: %q, %v", v, err)
	}
	if _, err := c.GetStale(ctx, "k", time.Nanosecond); !errors.Is(err, node.ErrTooStale) {
		t.Fatalf("GetStale(1ns): %v, want node.ErrTooStale", err)
	}
	if prev, err := c.Del(ctx, "k"); err != nil || string(prev) != "v1" {
		t.Fatalf("Del: %q, %v", prev, err)
	}
	if reply, err := c.Admin(ctx, "STATUS"); err != nil || reply != "OK STATUS" {
		t.Fatalf("Admin: %q, %v", reply, err)
	}
}

// TestClientPipelines runs many concurrent callers over the one
// connection; all of them must complete.
func TestClientPipelines(t *testing.T) {
	cl := startCluster(t, 3, 2*time.Millisecond, rpc.ServerOptions{})
	c := dialCluster(t, cl, Config{Window: 32})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const goroutines, each = 16, 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("key-%d", g)
				if _, err := c.Put(ctx, key, []byte(fmt.Sprintf("val-%d-%d", g, i))); err != nil {
					errs <- fmt.Errorf("put %d-%d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		v, err := c.Get(ctx, fmt.Sprintf("key-%d", g))
		if err != nil || string(v) != fmt.Sprintf("val-%d-%d", g, each-1) {
			t.Fatalf("key-%d: %q, %v", g, v, err)
		}
	}
}

// TestClientOverloadTyped: a budget-capped server sheds the overflow
// with the typed overload error, which the client surfaces verbatim —
// no silent retry storm against a shedding server.
func TestClientOverloadTyped(t *testing.T) {
	const budget = 4
	// delta = 0: linearizable reads on an idle cluster park until the
	// server-side timeout, holding their admission slots — deterministic
	// overload.
	cl := startCluster(t, 3, 0, rpc.ServerOptions{
		MaxInFlight: budget, ConnInFlight: 64, Timeout: 500 * time.Millisecond,
	})
	c := dialCluster(t, cl, Config{Window: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const total = 4 * budget
	var overloaded, timedOut atomic32
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.GetLin(ctx, "k")
			switch {
			case errors.Is(err, rpc.ErrOverloaded):
				overloaded.add(1)
			case errors.Is(err, rpc.ErrTimeout):
				timedOut.add(1)
			case err != nil:
				t.Errorf("unexpected error: %v", err)
			default:
				t.Error("linearizable read served on an idle delta=0 cluster")
			}
		}()
	}
	wg.Wait()
	if got := overloaded.load(); got == 0 || got > total-budget {
		t.Fatalf("overloaded=%d, want in (0, %d]", got, total-budget)
	}
	if overloaded.load()+timedOut.load() != total {
		t.Fatalf("overloaded=%d timedOut=%d, want sum %d", overloaded.load(), timedOut.load(), total)
	}
	if cs := cl.srvs[0].Counters(); cs.Shed != int64(overloaded.load()) {
		t.Fatalf("server Shed=%d, client saw %d typed overloads", cs.Shed, overloaded.load())
	}
}

type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

// TestClientResubmitsOnReconfiguration: the serving replica is
// reconfigured out mid-stream; the typed ErrNotInConfig responses are
// resubmit-safe, so the client fails over and resubmits invisibly —
// every write acked exactly once, zero duplicate executions.
func TestClientResubmitsOnReconfiguration(t *testing.T) {
	cl := startCluster(t, 3, 2*time.Millisecond, rpc.ServerOptions{})
	c := dialCluster(t, cl, Config{Window: 32})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const goroutines, each = 4, 60
	started := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	var acked sync.Map // payload string -> struct{}
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if i == each/4 {
					once.Do(func() { close(started) })
				}
				key := fmt.Sprintf("key-%d", g)
				val := []byte(fmt.Sprintf("val-%d-%d", g, i))
				if _, err := c.Put(ctx, key, val); err != nil {
					errs <- fmt.Errorf("put %d-%d: %w", g, i, err)
					return
				}
				acked.Store(string(kvstore.Put(key, val)), struct{}{})
			}
		}(g)
	}

	// Mid-stream, reconfigure the client's replica out of the cluster.
	<-started
	rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := cl.hosts[1].ReconfigureAll(rctx, []types.ReplicaID{1, 2}); err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	rcancel()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every acked write executed exactly once at the surviving replicas;
	// nothing executed twice anywhere.
	acked.Range(func(k, _ any) bool {
		if n := cl.sms[1].count([]byte(k.(string))); n != 1 {
			t.Fatalf("payload %q applied %d times at replica 1, want exactly 1", k, n)
		}
		return true
	})
	for i, sm := range cl.sms {
		if d := sm.dups(); d != 0 {
			t.Fatalf("replica %d executed %d payloads more than once", i, d)
		}
	}
}

// TestClientFailoverUnderKill: the serving replica's front door is
// killed mid-stream with requests in flight. Reads resubmit and
// succeed; writes that were on the wire fail with ErrConnLost (fate
// unknown — never resubmitted); everything acked executed exactly once;
// the session token stays monotonic across the failover.
func TestClientFailoverUnderKill(t *testing.T) {
	cl := startCluster(t, 3, 2*time.Millisecond, rpc.ServerOptions{})
	c := dialCluster(t, cl, Config{Window: 32})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const goroutines, each = 4, 80
	var wg sync.WaitGroup
	var acked, unknown sync.Map // payload string -> struct{}
	killAt := make(chan struct{})
	var once sync.Once
	errs := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if i == each/4 {
					once.Do(func() { close(killAt) })
				}
				key := fmt.Sprintf("key-%d", g)
				val := []byte(fmt.Sprintf("val-%d-%d", g, i))
				payload := string(kvstore.Put(key, val))
				switch _, err := c.Put(ctx, key, val); {
				case err == nil:
					acked.Store(payload, struct{}{})
				case errors.Is(err, ErrConnLost):
					// On the wire when the connection died: fate unknown, the
					// client correctly refused to resubmit.
					unknown.Store(payload, struct{}{})
				default:
					errs <- fmt.Errorf("put %d-%d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	// Sequential readers: the session token must never regress, even
	// across the kill.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for i := 0; i < each; i++ {
				if _, err := c.GetSeq(ctx, "key-0"); err != nil {
					errs <- fmt.Errorf("getseq: %w", err)
					return
				}
				if s := c.Session(); s < last {
					errs <- fmt.Errorf("session token regressed: %d -> %d", last, s)
					return
				} else {
					last = s
				}
			}
		}()
	}

	<-killAt
	cl.srvs[0].Close() // kill the serving replica's front door mid-stream

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Zero duplicate executions, anywhere: acked writes exactly once,
	// unknown-fate writes at most once (never resubmitted).
	for i, sm := range cl.sms {
		if d := sm.dups(); d != 0 {
			t.Fatalf("replica %d executed %d payloads more than once", i, d)
		}
	}
	acked.Range(func(k, _ any) bool {
		if n := cl.sms[1].count([]byte(k.(string))); n != 1 {
			t.Fatalf("acked payload %q applied %d times at replica 1, want exactly 1", k, n)
		}
		return true
	})
	nUnknown := 0
	unknown.Range(func(k, _ any) bool {
		nUnknown++
		if n := cl.sms[1].count([]byte(k.(string))); n > 1 {
			t.Fatalf("unknown-fate payload %q applied %d times", k, n)
		}
		return true
	})
	t.Logf("failover: %d unknown-fate writes (ErrConnLost), session token ended at %d", nUnknown, c.Session())
}

// TestClientCloseUnblocks: Close fails outstanding requests instead of
// stranding their callers.
func TestClientCloseUnblocks(t *testing.T) {
	// Unreachable address: requests queue forever until Close.
	c, err := Dial(Config{Addrs: []string{"127.0.0.1:1"}, RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Put(context.Background(), "k", []byte("v"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Put hung across Close")
	}
}
