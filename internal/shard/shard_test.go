package shard

import (
	"fmt"
	"testing"

	"clockrsm/internal/kvstore"
)

func TestRouterDeterministicAndInRange(t *testing.T) {
	for _, groups := range []int{1, 2, 4, 7, 64} {
		r := NewRouter(groups)
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("key-%d", i)
			g := r.Group(key)
			if g < 0 || int(g) >= groups {
				t.Fatalf("groups=%d: key %q routed to %v", groups, key, g)
			}
			if g2 := r.Group(key); g2 != g {
				t.Fatalf("groups=%d: key %q routed to %v then %v", groups, key, g, g2)
			}
		}
	}
}

func TestRouterSpreadsKeys(t *testing.T) {
	const groups, keys = 4, 4096
	r := NewRouter(groups)
	counts := make([]int, groups)
	for i := 0; i < keys; i++ {
		counts[r.Group(fmt.Sprintf("user:%d:profile", i))]++
	}
	// FNV over distinct keys should land well within ±25% of uniform.
	for g, c := range counts {
		if c < keys/groups/2 || c > keys/groups*2 {
			t.Fatalf("group %d holds %d of %d keys: badly skewed %v", g, c, keys, counts)
		}
	}
}

func TestRouterPayloadMatchesKey(t *testing.T) {
	r := NewRouter(8)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		for _, payload := range [][]byte{
			kvstore.Put(key, []byte("v")),
			kvstore.Get(key),
			kvstore.Delete(key),
		} {
			if got, want := r.GroupForPayload(payload), r.Group(key); got != want {
				t.Fatalf("payload for %q routed to %v, key routes to %v", key, got, want)
			}
		}
	}
}

func TestRouterMalformedPayload(t *testing.T) {
	r := NewRouter(4)
	for _, payload := range [][]byte{nil, {}, {0xff}, {0xff, 0x01, 0x00, 'k'}} {
		if g := r.GroupForPayload(payload); g != 0 {
			t.Fatalf("malformed payload routed to %v, want group 0", g)
		}
	}
}

func TestRouterDegenerateCounts(t *testing.T) {
	for _, groups := range []int{-3, 0, 1} {
		r := NewRouter(groups)
		if r.Groups() != 1 {
			t.Fatalf("NewRouter(%d).Groups() = %d, want 1", groups, r.Groups())
		}
		if g := r.Group("anything"); g != 0 {
			t.Fatalf("single group routed %v", g)
		}
	}
}

func TestLogPath(t *testing.T) {
	if got := LogPath("/var/lib/rsm.log", 0, 1); got != "/var/lib/rsm.log" {
		t.Fatalf("single-group path = %q", got)
	}
	if got := LogPath("/var/lib/rsm.log", 2, 4); got != "/var/lib/rsm.log.g2" {
		t.Fatalf("multi-group path = %q", got)
	}
}
