// Package shard routes client commands to replication groups. A node
// that hosts G independent Clock-RSM groups (node.Host) partitions the
// key space by hashing each command's key: every key lives in exactly
// one group, so per-key operations stay totally ordered — and therefore
// linearizable — while distinct groups commit in parallel.
package shard

import (
	"strconv"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/types"
)

// FNV-1a 32-bit constants; the hash is inlined so routing a key
// performs no allocation and no interface dispatch.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// Hash returns the FNV-1a hash of key — the single hash every routing
// layer (this fixed router and the reshard slot table) derives a key's
// placement from. Exported so the slot table maps keys to slots with
// the same bytes-to-bits function, which is what makes the initial
// slot table placement-identical to hash-mod-G.
func Hash(key string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return h
}

// Router maps keys to replication groups. The mapping is a pure
// function of the key and the group count, so every node — and every
// client library — routes identically without coordination.
type Router struct {
	groups uint32
}

// NewRouter creates a router over groups replication groups (values
// below 1 are treated as 1).
func NewRouter(groups int) *Router {
	if groups < 1 {
		groups = 1
	}
	return &Router{groups: uint32(groups)}
}

// Groups returns the number of groups routed over.
func (r *Router) Groups() int { return int(r.groups) }

// Group returns the replication group responsible for key.
func (r *Router) Group(key string) types.GroupID {
	if r.groups == 1 {
		return 0
	}
	return types.GroupID(Hash(key) % r.groups)
}

// GroupForPayload routes an encoded kvstore command payload by its key.
// Malformed payloads route to group 0: every replica executes them as
// identical deterministic no-ops, so any fixed group preserves
// agreement.
func (r *Router) GroupForPayload(payload []byte) types.GroupID {
	if r.groups == 1 {
		return 0
	}
	cmd, err := kvstore.Decode(payload)
	if err != nil {
		return 0
	}
	return r.Group(cmd.Key)
}

// Key extracts the routing key from an encoded kvstore command
// payload. The second result is false for payloads that are not
// well-formed kvstore commands (they route to group 0 by convention).
func Key(payload []byte) (string, bool) {
	cmd, err := kvstore.Decode(payload)
	if err != nil {
		return "", false
	}
	return cmd.Key, true
}

// LogPath names group g's stable log file under a base path. Group 0
// of a single-group deployment keeps the base path itself, so existing
// single-group logs replay unchanged after an upgrade.
func LogPath(base string, g types.GroupID, groups int) string {
	if groups <= 1 {
		return base
	}
	return base + ".g" + strconv.Itoa(int(g))
}
