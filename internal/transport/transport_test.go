package transport

import (
	"sync"
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// collector accumulates deliveries thread-safely.
type collector struct {
	mu    sync.Mutex
	from  []types.ReplicaID
	slots []uint64
	times []time.Time
}

func (c *collector) handler() Handler {
	return func(from types.ReplicaID, m msg.Message) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.from = append(c.from, from)
		if cm, ok := m.(*msg.Commit); ok {
			c.slots = append(c.slots, cm.Slot)
		}
		c.times = append(c.times, time.Now())
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.from)
}

func waitFor(t *testing.T, pred func() bool, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestInprocDelivery(t *testing.T) {
	h := NewHub(2, HubOptions{})
	defer h.Close()
	col := &collector{}
	h.Endpoint(1).SetHandler(col.handler())
	h.Endpoint(0).SetHandler(func(types.ReplicaID, msg.Message) {})
	if err := h.Endpoint(0).Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Endpoint(1).Start(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		h.Endpoint(0).Send(1, &msg.Commit{Slot: i})
	}
	waitFor(t, func() bool { return col.count() == 100 }, time.Second)
	col.mu.Lock()
	defer col.mu.Unlock()
	for i, s := range col.slots {
		if s != uint64(i) {
			t.Fatalf("FIFO violated at %d: %v", i, s)
		}
	}
}

func TestInprocStartErrors(t *testing.T) {
	h := NewHub(1, HubOptions{})
	defer h.Close()
	if err := h.Endpoint(0).Start(); err == nil {
		t.Error("Start without handler succeeded")
	}
	h.Endpoint(0).SetHandler(func(types.ReplicaID, msg.Message) {})
	if err := h.Endpoint(0).Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Endpoint(0).Start(); err == nil {
		t.Error("double Start succeeded")
	}
}

func TestInprocCodecIsolation(t *testing.T) {
	h := NewHub(2, HubOptions{Codec: true})
	defer h.Close()
	var got *msg.Prepare
	var mu sync.Mutex
	h.Endpoint(1).SetHandler(func(from types.ReplicaID, m msg.Message) {
		mu.Lock()
		got = m.(*msg.Prepare)
		mu.Unlock()
	})
	h.Endpoint(0).SetHandler(func(types.ReplicaID, msg.Message) {})
	h.Endpoint(0).Start()
	h.Endpoint(1).Start()

	sent := &msg.Prepare{TS: types.Timestamp{Wall: 1}, Cmd: types.Command{Payload: []byte("abc")}}
	h.Endpoint(0).Send(1, sent)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return got != nil }, time.Second)
	mu.Lock()
	defer mu.Unlock()
	if got == sent {
		t.Error("codec mode shared the message pointer")
	}
	sent.Cmd.Payload[0] = 'x'
	if string(got.Cmd.Payload) != "abc" {
		t.Error("codec mode shared the payload buffer")
	}
}

func TestInprocLatencyEmulation(t *testing.T) {
	lat := wan.NewMatrix(2)
	lat.Set(0, 1, 30*time.Millisecond)
	h := NewHub(2, HubOptions{Latency: lat})
	defer h.Close()
	col := &collector{}
	h.Endpoint(1).SetHandler(col.handler())
	h.Endpoint(0).SetHandler(func(types.ReplicaID, msg.Message) {})
	h.Endpoint(0).Start()
	h.Endpoint(1).Start()

	start := time.Now()
	h.Endpoint(0).Send(1, &msg.Commit{Slot: 1})
	waitFor(t, func() bool { return col.count() == 1 }, time.Second)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delivered after %v, want ≥ ~30ms", d)
	}
}

// TestInprocLatencyNoHeadOfLineBlocking pins the per-link semantics of
// latency mode: a near sender's message must not wait behind a far
// sender's in-flight message that happened to enqueue first — each
// (sender → receiver) link is an independent FIFO, merged in due-time
// order. The old single-FIFO inbox delivered in enqueue order and
// could delay a 1 ms message by 200 ms, inverting cause and effect in
// asymmetric-latency tests.
func TestInprocLatencyNoHeadOfLineBlocking(t *testing.T) {
	lat := wan.NewMatrix(3)
	lat.Set(0, 2, 200*time.Millisecond) // far sender
	lat.Set(1, 2, time.Millisecond)     // near sender
	h := NewHub(3, HubOptions{Latency: lat})
	defer h.Close()
	col := &collector{}
	h.Endpoint(2).SetHandler(col.handler())
	h.Endpoint(0).SetHandler(func(types.ReplicaID, msg.Message) {})
	h.Endpoint(1).SetHandler(func(types.ReplicaID, msg.Message) {})
	for i := 0; i < 3; i++ {
		if err := h.Endpoint(types.ReplicaID(i)).Start(); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	h.Endpoint(0).Send(2, &msg.Commit{Slot: 100}) // enqueues first, due +200ms
	h.Endpoint(1).Send(2, &msg.Commit{Slot: 200}) // enqueues second, due +1ms
	waitFor(t, func() bool { return col.count() == 2 }, 2*time.Second)

	col.mu.Lock()
	defer col.mu.Unlock()
	if col.slots[0] != 200 || col.slots[1] != 100 {
		t.Fatalf("delivery order %v, want the near sender's message first", col.slots)
	}
	if d := col.times[0].Sub(start); d > 100*time.Millisecond {
		t.Errorf("near message delivered after %v: head-of-line blocked by the far sender", d)
	}
	if d := col.times[1].Sub(start); d < 150*time.Millisecond {
		t.Errorf("far message delivered after only %v, want ~200ms", d)
	}
}

// TestInprocLatencyPerSenderFIFO: within one link, messages still
// deliver in the order sent.
func TestInprocLatencyPerSenderFIFO(t *testing.T) {
	lat := wan.NewMatrix(2)
	lat.Set(0, 1, 10*time.Millisecond)
	h := NewHub(2, HubOptions{Latency: lat})
	defer h.Close()
	col := &collector{}
	h.Endpoint(1).SetHandler(col.handler())
	h.Endpoint(0).SetHandler(func(types.ReplicaID, msg.Message) {})
	h.Endpoint(0).Start()
	h.Endpoint(1).Start()

	const n = 50
	for i := uint64(0); i < n; i++ {
		h.Endpoint(0).Send(1, &msg.Commit{Slot: i})
	}
	waitFor(t, func() bool { return col.count() == n }, 5*time.Second)
	col.mu.Lock()
	defer col.mu.Unlock()
	for i := uint64(0); i < n; i++ {
		if col.slots[i] != i {
			t.Fatalf("slot %d delivered at position %d: per-sender FIFO violated", col.slots[i], i)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a := NewTCP(0, addrs, TCPOptions{DialRetry: 50 * time.Millisecond})
	b := NewTCP(1, addrs, TCPOptions{DialRetry: 50 * time.Millisecond})
	colA, colB := &collector{}, &collector{}
	a.SetHandler(colA.handler())
	b.SetHandler(colB.handler())
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Rewire with the actually-bound ports.
	addrs[0] = a.Addr()
	addrs[1] = b.Addr()

	for i := uint64(0); i < 50; i++ {
		a.Send(1, &msg.Commit{Slot: i})
	}
	waitFor(t, func() bool { return colB.count() == 50 }, 5*time.Second)
	colB.mu.Lock()
	for i, s := range colB.slots {
		if s != uint64(i) {
			t.Fatalf("TCP FIFO violated at %d", i)
		}
		if colB.from[i] != 0 {
			t.Fatalf("wrong sender %v", colB.from[i])
		}
	}
	colB.mu.Unlock()

	// And the reverse direction.
	b.Send(0, &msg.Commit{Slot: 99})
	waitFor(t, func() bool { return colA.count() == 1 }, 5*time.Second)
}

func TestTCPSurvivesLatePeer(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a := NewTCP(0, addrs, TCPOptions{DialRetry: 20 * time.Millisecond})
	a.SetHandler(func(types.ReplicaID, msg.Message) {})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addrs[0] = a.Addr()

	// Reserve a port for b, then send before b listens.
	probe := NewTCP(1, addrs, TCPOptions{})
	probe.SetHandler(func(types.ReplicaID, msg.Message) {})
	if err := probe.Start(); err != nil {
		t.Fatal(err)
	}
	addrs[1] = probe.Addr()
	probe.Close() // free the port but keep the address

	a.Send(1, &msg.Commit{Slot: 7}) // peer down: must not wedge

	col := &collector{}
	b := NewTCP(1, addrs, TCPOptions{DialRetry: 20 * time.Millisecond})
	b.SetHandler(col.handler())
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// The queued frame is retried once b's listener is up.
	waitFor(t, func() bool { return col.count() >= 1 }, 5*time.Second)
}
