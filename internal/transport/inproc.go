package transport

import (
	"fmt"
	"sync"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// HubOptions configure an in-process hub.
type HubOptions struct {
	// Latency, when non-nil, delays each message by the matrix's one-way
	// latency, emulating a WAN deployment in real time.
	Latency *wan.Matrix
	// Codec forces every message through the binary codec
	// (encode+decode), charging realistic serialization CPU cost. The
	// throughput study enables this so message size matters as it does
	// on a real network stack.
	Codec bool
	// QueueLen is the per-endpoint inbox capacity (default 4096). A full
	// inbox applies backpressure to senders.
	QueueLen int
}

// delivery is one in-flight message.
type delivery struct {
	from types.ReplicaID
	m    msg.Message
	due  time.Time
}

// Hub connects N in-process endpoints.
type Hub struct {
	opts HubOptions
	eps  []*inprocEndpoint
}

// NewHub creates a hub with n endpoints.
func NewHub(n int, opts HubOptions) *Hub {
	if opts.QueueLen <= 0 {
		opts.QueueLen = 4096
	}
	h := &Hub{opts: opts}
	for i := 0; i < n; i++ {
		h.eps = append(h.eps, &inprocEndpoint{
			hub:   h,
			self:  types.ReplicaID(i),
			inbox: make(chan delivery, opts.QueueLen),
			quit:  make(chan struct{}),
		})
	}
	return h
}

// Endpoint returns the transport for replica id.
func (h *Hub) Endpoint(id types.ReplicaID) Transport { return h.eps[id] }

// Close shuts down every endpoint.
func (h *Hub) Close() {
	for _, ep := range h.eps {
		ep.Close()
	}
}

// inprocEndpoint is one replica's view of the hub.
type inprocEndpoint struct {
	hub     *Hub
	self    types.ReplicaID
	handler Handler
	inbox   chan delivery

	mu      sync.Mutex
	started bool
	closed  bool
	quit    chan struct{}
	done    chan struct{}
}

var (
	_ Transport   = (*inprocEndpoint)(nil)
	_ Broadcaster = (*inprocEndpoint)(nil)
)

// Self implements Transport.
func (e *inprocEndpoint) Self() types.ReplicaID { return e.self }

// SetHandler implements Transport.
func (e *inprocEndpoint) SetHandler(h Handler) { e.handler = h }

// Start implements Transport: it launches the delivery loop.
func (e *inprocEndpoint) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("inproc endpoint %v already started", e.self)
	}
	if e.handler == nil {
		return fmt.Errorf("inproc endpoint %v has no handler", e.self)
	}
	e.started = true
	e.done = make(chan struct{})
	go e.run()
	return nil
}

// run delivers inbox messages in order, honoring per-message due times
// (all due times on one inbox are non-decreasing only per sender; a
// cross-sender inversion sleeps the small difference, which is the same
// behaviour a kernel socket would give).
func (e *inprocEndpoint) run() {
	defer close(e.done)
	for {
		select {
		case <-e.quit:
			return
		case d := <-e.inbox:
			if !d.due.IsZero() {
				if wait := time.Until(d.due); wait > 0 {
					select {
					case <-time.After(wait):
					case <-e.quit:
						return
					}
				}
			}
			e.handler(d.from, d.m)
		}
	}
}

// Send implements Transport.
func (e *inprocEndpoint) Send(to types.ReplicaID, m msg.Message) {
	if e.hub.opts.Codec {
		// Round-trip through the codec to charge serialization cost and
		// guarantee no state is shared across replicas. The encode buffer
		// is pooled: steady-state encoding allocates nothing.
		buf := msg.GetBuf()
		buf.B = msg.EncodeTo(buf.B, m)
		decoded, err := msg.Decode(buf.B)
		msg.PutBuf(buf)
		if err != nil {
			return // undecodable message: drop, like a corrupt frame
		}
		m = decoded
	}
	e.deliver(to, m)
}

// Broadcast implements Broadcaster: in codec mode the message is
// encoded once and decoded per recipient (each replica must still get
// its own copy), instead of encoded once per recipient.
func (e *inprocEndpoint) Broadcast(dst []types.ReplicaID, m msg.Message) {
	if !e.hub.opts.Codec {
		for _, to := range dst {
			if to != e.self {
				e.deliver(to, m)
			}
		}
		return
	}
	buf := msg.GetBuf()
	buf.B = msg.EncodeTo(buf.B, m)
	for _, to := range dst {
		if to == e.self {
			continue
		}
		decoded, err := msg.Decode(buf.B)
		if err != nil {
			break // undecodable message: drop, like a corrupt frame
		}
		e.deliver(to, decoded)
	}
	msg.PutBuf(buf)
}

// deliver queues m on the destination inbox, stamping the emulated WAN
// due time.
func (e *inprocEndpoint) deliver(to types.ReplicaID, m msg.Message) {
	dst := e.hub.eps[to]
	d := delivery{from: e.self, m: m}
	if lat := e.hub.opts.Latency; lat != nil {
		d.due = time.Now().Add(lat.OneWay(e.self, to))
	}
	select {
	case dst.inbox <- d:
	case <-dst.quit:
	}
}

// Close implements Transport.
func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	close(e.quit)
	if e.done != nil {
		<-e.done
	}
	return nil
}
