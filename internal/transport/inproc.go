package transport

import (
	"fmt"
	"sync"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// HubOptions configure an in-process hub.
type HubOptions struct {
	// Latency, when non-nil, delays each message by the matrix's one-way
	// latency, emulating a WAN deployment in real time.
	Latency *wan.Matrix
	// Codec forces every message through the binary codec
	// (encode+decode), charging realistic serialization CPU cost. The
	// throughput study enables this so message size matters as it does
	// on a real network stack.
	Codec bool
	// QueueLen is the per-group inbox capacity (default 4096). A full
	// inbox applies backpressure to senders.
	QueueLen int
	// Groups is the number of replication groups multiplexed over each
	// endpoint (default 1). Each group gets its own inbox and delivery
	// goroutine, so groups at one endpoint make progress independently —
	// the in-process analogue of the TCP transport's group-tagged
	// frames over a shared connection set.
	Groups int
}

// delivery is one in-flight message.
type delivery struct {
	from types.ReplicaID
	m    msg.Message
	due  time.Time
	seq  uint64 // arrival order, tie-break among equal due times
}

// Hub connects N in-process endpoints.
type Hub struct {
	opts HubOptions
	eps  []*inprocEndpoint
}

// NewHub creates a hub with n endpoints.
func NewHub(n int, opts HubOptions) *Hub {
	if opts.QueueLen <= 0 {
		opts.QueueLen = 4096
	}
	if opts.Groups <= 0 {
		opts.Groups = 1
	}
	if opts.Groups > MaxGroups {
		opts.Groups = MaxGroups
	}
	h := &Hub{opts: opts}
	for i := 0; i < n; i++ {
		ep := &inprocEndpoint{
			hub:    h,
			self:   types.ReplicaID(i),
			groups: make([]inprocGroup, opts.Groups),
			quit:   make(chan struct{}),
		}
		for g := range ep.groups {
			if opts.Latency != nil {
				ep.groups[g].queues = make(map[types.ReplicaID][]delivery, n)
				ep.groups[g].notify = make(chan struct{}, 1)
				ep.groups[g].space = make(chan struct{}, 1)
			} else {
				ep.groups[g].inbox = make(chan delivery, opts.QueueLen)
			}
		}
		h.eps = append(h.eps, ep)
	}
	return h
}

// Endpoint returns the transport for replica id.
func (h *Hub) Endpoint(id types.ReplicaID) Transport { return h.eps[id] }

// Close shuts down every endpoint.
func (h *Hub) Close() {
	for _, ep := range h.eps {
		ep.Close()
	}
}

// inprocGroup is one group's inbox and handler at one endpoint. With no
// latency matrix, `inbox` is a plain FIFO channel (zero overhead — the
// hot-path benchmarks run here). With a latency matrix, deliveries go
// through per-sender FIFO queues merged in due-time order instead:
// each (sender → receiver) link is FIFO, but a near sender's message
// must not queue behind a far sender's — a single arrival-ordered FIFO
// would head-of-line-block a 1 ms-due SUSPEND behind a 400 ms-due
// PREPARE that happened to enqueue first, an artifact no pair of real
// sockets exhibits (and one that inverted cause and effect in
// asymmetric-latency reconfiguration tests).
type inprocGroup struct {
	handler Handler
	inbox   chan delivery
	done    chan struct{}

	// Latency-mode state (inbox is then unused).
	mu      sync.Mutex
	queues  map[types.ReplicaID][]delivery // per-sender FIFO
	queued  int                            // total across senders (capacity check)
	nextSeq uint64
	notify  chan struct{} // pulsed on enqueue
	space   chan struct{} // pulsed on dequeue (backpressure release)
}

// inprocEndpoint is one replica's view of the hub.
type inprocEndpoint struct {
	hub    *Hub
	self   types.ReplicaID
	groups []inprocGroup

	mu      sync.Mutex
	started bool
	closed  bool
	quit    chan struct{}
}

var (
	_ Transport        = (*inprocEndpoint)(nil)
	_ Broadcaster      = (*inprocEndpoint)(nil)
	_ GroupTransport   = (*inprocEndpoint)(nil)
	_ GroupBroadcaster = (*inprocEndpoint)(nil)
)

// Self implements Transport.
func (e *inprocEndpoint) Self() types.ReplicaID { return e.self }

// SetHandler implements Transport: it installs group 0's handler.
func (e *inprocEndpoint) SetHandler(h Handler) { e.groups[0].handler = h }

// Groups implements GroupTransport.
func (e *inprocEndpoint) Groups() int { return len(e.groups) }

// SetGroupHandler implements GroupTransport. It must be called before
// Start; g must name a configured group.
func (e *inprocEndpoint) SetGroupHandler(g types.GroupID, h Handler) {
	if g < 0 || int(g) >= len(e.groups) {
		panic(fmt.Sprintf("inproc endpoint %v: handler for unconfigured group %v (groups=%d)", e.self, g, len(e.groups)))
	}
	e.groups[g].handler = h
}

// Start implements Transport: it launches one delivery loop per group.
func (e *inprocEndpoint) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("inproc endpoint %v already started", e.self)
	}
	for g := range e.groups {
		if e.groups[g].handler == nil {
			return fmt.Errorf("inproc endpoint %v has no handler for group g%d", e.self, g)
		}
	}
	e.started = true
	for g := range e.groups {
		grp := &e.groups[g]
		grp.done = make(chan struct{})
		go e.run(grp)
	}
	return nil
}

// run delivers one group's messages. Without a latency matrix this is
// the plain FIFO inbox. With one, it merges the per-sender FIFO queues
// in due-time order (arrival order among equal dues): each link stays
// FIFO — senders' messages deliver in the order sent — but a near
// sender is never head-of-line-blocked by a far sender's in-flight
// message, matching what independent kernel sockets would do.
func (e *inprocEndpoint) run(grp *inprocGroup) {
	defer close(grp.done)
	if grp.queues != nil {
		e.runLatency(grp)
		return
	}
	for {
		select {
		case <-e.quit:
			return
		case d := <-grp.inbox:
			grp.handler(d.from, d.m)
		}
	}
}

// runLatency is the due-time-ordered delivery loop of latency mode.
func (e *inprocEndpoint) runLatency(grp *inprocGroup) {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		grp.mu.Lock()
		// Earliest-due head across senders; arrival order breaks ties.
		var head delivery
		headSender := types.NoReplica
		for s, q := range grp.queues {
			if len(q) == 0 {
				continue
			}
			d := q[0]
			if headSender == types.NoReplica || d.due.Before(head.due) ||
				(d.due.Equal(head.due) && d.seq < head.seq) {
				head, headSender = d, s
			}
		}
		if headSender == types.NoReplica {
			grp.mu.Unlock()
			select {
			case <-grp.notify:
			case <-e.quit:
				return
			}
			continue
		}
		if wait := time.Until(head.due); wait > 0 {
			grp.mu.Unlock()
			// Sleep until the head is due — or re-evaluate early if a
			// new message arrives (it may be due sooner).
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-grp.notify:
				if !timer.Stop() {
					<-timer.C
				}
			case <-e.quit:
				return
			}
			continue
		}
		q := grp.queues[headSender]
		q[0] = delivery{}
		grp.queues[headSender] = q[1:]
		if len(q) == 1 {
			// The slice is spent; let the backing array go.
			grp.queues[headSender] = nil
		}
		grp.queued--
		grp.mu.Unlock()
		select {
		case grp.space <- struct{}{}:
		default:
		}
		grp.handler(head.from, head.m)
	}
}

// Send implements Transport: it transmits on group 0.
func (e *inprocEndpoint) Send(to types.ReplicaID, m msg.Message) {
	e.SendGroup(to, 0, m)
}

// SendGroup implements GroupTransport.
func (e *inprocEndpoint) SendGroup(to types.ReplicaID, g types.GroupID, m msg.Message) {
	if g < 0 || int(g) >= len(e.groups) {
		return // unconfigured group: drop, like any delivery failure
	}
	if e.hub.opts.Codec {
		// Round-trip through the codec to charge serialization cost and
		// guarantee no state is shared across replicas. The encode buffer
		// is pooled and the decode lands in a pooled record (recycled by
		// the receiving event loop): steady state allocates nothing.
		buf := msg.GetBuf()
		buf.B = msg.EncodeTo(buf.B, m)
		decoded, err := msg.DecodeRecycled(buf.B)
		msg.PutBuf(buf)
		if err != nil {
			return // undecodable message: drop, like a corrupt frame
		}
		m = decoded
	}
	e.deliver(to, g, m)
}

// Broadcast implements Broadcaster: it fans out on group 0.
func (e *inprocEndpoint) Broadcast(dst []types.ReplicaID, m msg.Message) {
	e.BroadcastGroup(dst, 0, m)
}

// BroadcastGroup implements GroupBroadcaster: in codec mode the message
// is encoded once and decoded per recipient (each replica must still
// get its own copy), instead of encoded once per recipient.
func (e *inprocEndpoint) BroadcastGroup(dst []types.ReplicaID, g types.GroupID, m msg.Message) {
	if g < 0 || int(g) >= len(e.groups) {
		return // unconfigured group: drop, like any delivery failure
	}
	if !e.hub.opts.Codec {
		for _, to := range dst {
			if to != e.self {
				e.deliver(to, g, m)
			}
		}
		return
	}
	buf := msg.GetBuf()
	buf.B = msg.EncodeTo(buf.B, m)
	for _, to := range dst {
		if to == e.self {
			continue
		}
		decoded, err := msg.DecodeRecycled(buf.B)
		if err != nil {
			break // undecodable message: drop, like a corrupt frame
		}
		e.deliver(to, g, decoded)
	}
	msg.PutBuf(buf)
}

// deliver queues m on the destination group's inbox (or, in latency
// mode, its per-sender queue, stamped with the emulated WAN due time).
// A full inbox blocks the sender — backpressure — until the receiver
// drains or quits.
func (e *inprocEndpoint) deliver(to types.ReplicaID, g types.GroupID, m msg.Message) {
	dst := e.hub.eps[to]
	grp := &dst.groups[g]
	if e.hub.opts.Latency == nil {
		select {
		case grp.inbox <- delivery{from: e.self, m: m}:
		case <-dst.quit:
			msg.Recycle(m) // dropped at teardown: reclaim pooled storage
		}
		return
	}
	due := time.Now().Add(e.hub.opts.Latency.OneWay(e.self, to))
	for {
		grp.mu.Lock()
		if grp.queued < e.hub.opts.QueueLen {
			d := delivery{from: e.self, m: m, due: due, seq: grp.nextSeq}
			grp.nextSeq++
			grp.queues[e.self] = append(grp.queues[e.self], d)
			grp.queued++
			grp.mu.Unlock()
			select {
			case grp.notify <- struct{}{}:
			default:
			}
			return
		}
		grp.mu.Unlock()
		select {
		case <-grp.space:
		case <-dst.quit:
			msg.Recycle(m) // dropped at teardown: reclaim pooled storage
			return
		}
	}
}

// Close implements Transport.
func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	close(e.quit)
	for g := range e.groups {
		if e.groups[g].done != nil {
			<-e.groups[g].done
		}
	}
	return nil
}
