package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// maxFrame bounds a single wire frame; larger frames indicate
// corruption and kill the connection. It mirrors msg.MaxFrame so the
// decoder and the framing layer enforce the same limit.
const maxFrame = msg.MaxFrame

// Writer coalescing limits: one flush covers at most maxWriteBatch
// queued frames or maxWriteBytes of payload, whichever is hit first.
const (
	maxWriteBatch = 128
	maxWriteBytes = 1 << 20
	wireBufSize   = 64 << 10
)

// Read-buffer retention: the per-connection frame buffer grows to fit
// the largest frame seen, but after readShrinkAfter consecutive frames
// that would have fit in readRetainBytes it shrinks back, so one burst
// of huge frames (a snapshot transfer, a giant batch) does not pin its
// high-water mark for the life of the connection.
const (
	readRetainBytes = wireBufSize
	readShrinkAfter = 256
)

// TCPOptions configure a TCP endpoint.
type TCPOptions struct {
	// DialRetry is the backoff between reconnect attempts (default 1s).
	DialRetry time.Duration
	// OutboxLen is the per-peer send queue capacity (default 4096);
	// a full queue drops messages, matching best-effort semantics.
	OutboxLen int
	// Groups is the number of replication groups multiplexed over this
	// endpoint (default 1). With Groups > 1 the endpoint speaks the
	// group-tagged framing version: connections open with the versioned
	// handshake and every frame carries a 4-byte group tag. All
	// endpoints of one cluster must agree on Groups.
	Groups int
	// InboxLen is the per-group inbound queue capacity of a grouped
	// endpoint (default 4096). A full queue drops that group's
	// messages — best-effort, like the outbox — instead of letting one
	// stalled group head-of-line-block its siblings on the shared
	// connection.
	InboxLen int
}

// hsMagicV2 opens a version-2 (group-tagged) connection handshake:
// [hsMagicV2 | 4-byte sender] instead of the legacy [4-byte sender].
// The value collides with no legacy replica ID — IDs are dense indexes
// validated against the address map — so a receiver distinguishes the
// two framing versions from the first four bytes alone.
const hsMagicV2 = 0x43525347 // bytes "GSRC" on the wire (little-endian)

// TCPEndpoint is a Transport over TCP with length-prefixed frames.
// Each endpoint listens on its own address and lazily dials peers;
// frames carry a 4-byte length followed by the encoded message, and
// every connection begins with a handshake naming the sender (and, in
// the group-tagged framing version, a leading magic word; see
// hsMagicV2). Inbound connections of either version are accepted, so
// single-group and multi-group peers interoperate on group 0.
//
// The send path is allocation-frugal: messages are encoded once into
// pooled buffers (msg.GetBuf), broadcasts share a single encoded frame
// across all peer outboxes via refcounting — including the group tag,
// which is framed once for the whole fan-out — and each writeLoop
// drains its outbox through a bufio.Writer so one syscall flushes a
// whole burst of frames.
type TCPEndpoint struct {
	self  types.ReplicaID
	addrs map[types.ReplicaID]string
	opts  TCPOptions
	// handlers[g] receives group g's messages; a plain SetHandler
	// installs handlers[0]. Written before Start, read by readLoops.
	handlers []Handler
	// grouped selects the version-2 framing for outgoing connections.
	grouped bool
	// inboxes[g] decouples group g's deliveries from the shared
	// readLoops on a grouped endpoint: each group drains its own queue
	// on its own goroutine, so a group whose handler stalls (e.g. a
	// slow fsync backing up its event loop) drops its own overflow
	// instead of blocking sibling groups' traffic on the connection. A
	// single-group endpoint delivers synchronously — the readLoop's
	// blocking IS the desired TCP backpressure there.
	inboxes []chan inDelivery
	// inDrops counts inbound messages dropped on full group queues.
	inDrops atomic.Uint64

	ln net.Listener

	mu    sync.Mutex
	peers map[types.ReplicaID]*tcpPeer
	conns map[net.Conn]struct{}
	quit  chan struct{}
	wg    sync.WaitGroup

	closed bool

	// Wire-level counters (atomic): frames handed to the kernel and
	// flushes (≈ syscalls) performed. framesSent/flushes is the write
	// coalescing factor. coalescedFrames counts frames that shared a
	// flush with at least one other frame; multiGroupFlushes counts
	// flushes whose batch mixed frames from two or more groups — direct
	// evidence that concurrent groups' bursts merged on the shared
	// connection.
	framesSent        atomic.Uint64
	flushes           atomic.Uint64
	coalescedFrames   atomic.Uint64
	multiGroupFlushes atomic.Uint64
}

var (
	_ Transport        = (*TCPEndpoint)(nil)
	_ Broadcaster      = (*TCPEndpoint)(nil)
	_ GroupTransport   = (*TCPEndpoint)(nil)
	_ GroupBroadcaster = (*TCPEndpoint)(nil)
)

// tcpPeer is an outgoing connection with its queue and writer.
type tcpPeer struct {
	outbox chan *outFrame
}

// inDelivery is one inbound message queued for a group's delivery
// goroutine.
type inDelivery struct {
	from types.ReplicaID
	m    msg.Message
}

// outFrame is one encoded, length-prefixed wire frame. A broadcast
// enqueues the same frame on every peer outbox; refs counts outstanding
// holders so the backing pooled buffer is released exactly once.
type outFrame struct {
	data  []byte   // [4-byte length | encoded message]; read-only once enqueued
	buf   *msg.Buf // pooled backing storage of data
	group types.GroupID
	refs  atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(outFrame) }}

// newFrame encodes m into a pooled buffer as a length-prefixed frame
// with refs initial holders. In grouped (version-2) framing the body
// opens with the 4-byte group tag, so the tag is serialized once per
// fan-out along with the message itself.
func newFrame(m msg.Message, refs int32, g types.GroupID, grouped bool) *outFrame {
	f := framePool.Get().(*outFrame)
	f.buf = msg.GetBuf()
	b := append(f.buf.B[:0], 0, 0, 0, 0)
	if grouped {
		b = binary.LittleEndian.AppendUint32(b, uint32(g))
	}
	b = msg.EncodeTo(b, m)
	binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	f.buf.B = b
	f.data = b
	f.group = g
	f.refs.Store(refs)
	return f
}

// release drops one hold on f, recycling its storage on the last drop.
func (f *outFrame) release() {
	if f.refs.Add(-1) != 0 {
		return
	}
	msg.PutBuf(f.buf)
	f.buf = nil
	f.data = nil
	framePool.Put(f)
}

// NewTCP creates a TCP endpoint for replica self; addrs maps every
// replica (including self) to its listen address.
func NewTCP(self types.ReplicaID, addrs map[types.ReplicaID]string, opts TCPOptions) *TCPEndpoint {
	if opts.DialRetry <= 0 {
		opts.DialRetry = time.Second
	}
	if opts.OutboxLen <= 0 {
		opts.OutboxLen = 4096
	}
	if opts.Groups <= 0 {
		opts.Groups = 1
	}
	if opts.Groups > MaxGroups {
		opts.Groups = MaxGroups
	}
	if opts.InboxLen <= 0 {
		opts.InboxLen = 4096
	}
	t := &TCPEndpoint{
		self:     self,
		addrs:    addrs,
		opts:     opts,
		handlers: make([]Handler, opts.Groups),
		grouped:  opts.Groups > 1,
		peers:    make(map[types.ReplicaID]*tcpPeer),
		conns:    make(map[net.Conn]struct{}),
		quit:     make(chan struct{}),
	}
	if t.grouped {
		t.inboxes = make([]chan inDelivery, opts.Groups)
		for g := range t.inboxes {
			t.inboxes[g] = make(chan inDelivery, opts.InboxLen)
		}
	}
	return t
}

// Self implements Transport.
func (t *TCPEndpoint) Self() types.ReplicaID { return t.self }

// SetHandler implements Transport: it installs group 0's handler.
func (t *TCPEndpoint) SetHandler(h Handler) { t.handlers[0] = h }

// Groups implements GroupTransport.
func (t *TCPEndpoint) Groups() int { return t.opts.Groups }

// SetGroupHandler implements GroupTransport. It must be called before
// Start; g must name a configured group.
func (t *TCPEndpoint) SetGroupHandler(g types.GroupID, h Handler) {
	if g < 0 || int(g) >= len(t.handlers) {
		panic(fmt.Sprintf("tcp endpoint %v: handler for unconfigured group %v (groups=%d)", t.self, g, len(t.handlers)))
	}
	t.handlers[g] = h
}

// Addr returns the bound listen address (useful with ":0" test
// listeners). Valid after Start.
func (t *TCPEndpoint) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// WireStats returns the frames written and flushes performed so far;
// frames/flushes is the achieved write-coalescing factor.
func (t *TCPEndpoint) WireStats() (frames, flushes uint64) {
	return t.framesSent.Load(), t.flushes.Load()
}

// WireCounters is a snapshot of an endpoint's wire-level counters.
type WireCounters struct {
	// Frames handed to the kernel.
	Frames uint64
	// Flushes performed (≈ syscalls); Frames/Flushes is the achieved
	// write-coalescing factor.
	Flushes uint64
	// CoalescedFrames counts frames that shared a flush with at least
	// one other frame.
	CoalescedFrames uint64
	// MultiGroupFlushes counts flushes whose batch mixed frames from
	// two or more groups: evidence that concurrent groups' bursts to the
	// same peer merged into one syscall.
	MultiGroupFlushes uint64
	// InboundDrops counts inbound messages discarded on full group
	// queues (grouped endpoints only).
	InboundDrops uint64
}

// Counters returns a snapshot of the endpoint's wire-level counters.
func (t *TCPEndpoint) Counters() WireCounters {
	return WireCounters{
		Frames:            t.framesSent.Load(),
		Flushes:           t.flushes.Load(),
		CoalescedFrames:   t.coalescedFrames.Load(),
		MultiGroupFlushes: t.multiGroupFlushes.Load(),
		InboundDrops:      t.inDrops.Load(),
	}
}

// Add accumulates o into c, for summing counters across endpoints.
func (c *WireCounters) Add(o WireCounters) {
	c.Frames += o.Frames
	c.Flushes += o.Flushes
	c.CoalescedFrames += o.CoalescedFrames
	c.MultiGroupFlushes += o.MultiGroupFlushes
	c.InboundDrops += o.InboundDrops
}

// Start implements Transport: it binds the listen socket and begins
// accepting peer connections.
func (t *TCPEndpoint) Start() error {
	any := false
	for _, h := range t.handlers {
		if h != nil {
			any = true
			break
		}
	}
	if !any {
		return fmt.Errorf("tcp endpoint %v has no handler", t.self)
	}
	ln, err := net.Listen("tcp", t.addrs[t.self])
	if err != nil {
		return fmt.Errorf("listen %s: %w", t.addrs[t.self], err)
	}
	t.ln = ln
	if t.grouped {
		for g := range t.inboxes {
			if t.handlers[g] == nil {
				continue
			}
			t.wg.Add(1)
			go t.deliverLoop(types.GroupID(g))
		}
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// deliverLoop drains one group's inbound queue, invoking the group
// handler on a goroutine the other groups do not share.
func (t *TCPEndpoint) deliverLoop(g types.GroupID) {
	defer t.wg.Done()
	h := t.handlers[g]
	inbox := t.inboxes[g]
	for {
		select {
		case <-t.quit:
			return
		case d := <-inbox:
			h(d.from, d.m)
		}
	}
}

// acceptLoop accepts inbound connections and spawns a reader per
// connection.
func (t *TCPEndpoint) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !t.track(conn) {
			conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// splitGroupBody splits a version-2 frame body into its group tag and
// the encoded message bytes. It rejects bodies too short to carry the
// tag and tags at or above MaxGroups (which no conforming sender can
// produce, so they prove stream corruption).
func splitGroupBody(b []byte) (types.GroupID, []byte, error) {
	if len(b) < 4 {
		return 0, nil, msg.ErrTruncated
	}
	g := binary.LittleEndian.Uint32(b)
	if g >= MaxGroups {
		return 0, nil, fmt.Errorf("transport: group tag %d out of range", g)
	}
	return types.GroupID(g), b[4:], nil
}

// readBuf is the per-connection frame buffer: grow-only under load, so
// the steady state reuses one allocation across frames, but shrunk back
// to readRetainBytes after readShrinkAfter consecutive frames that
// would have fit the retained size — one oversized burst must not pin
// its high-water mark for the life of the connection.
type readBuf struct {
	buf   []byte
	quiet int // consecutive small frames while oversized
}

// frame returns a length-n slice to read the next frame body into,
// growing or shrinking the backing buffer as the traffic demands.
func (r *readBuf) frame(n uint32) []byte {
	switch {
	case uint32(cap(r.buf)) < n:
		r.buf = make([]byte, n)
		r.quiet = 0
	case cap(r.buf) > readRetainBytes && n <= readRetainBytes:
		r.quiet++
		if r.quiet >= readShrinkAfter {
			r.buf = make([]byte, readRetainBytes)
			r.quiet = 0
		}
	default:
		r.quiet = 0
	}
	return r.buf[:n]
}

// readLoop consumes frames from one inbound connection. Reads go
// through a bufio.Reader, frame bodies land in one reused buffer (see
// readBuf), and decoding goes through msg.DecodeRecycled, which backs
// the steady-state message types with pooled records the node event
// loop recycles after delivery — so the hot read path performs no
// per-frame allocation at all. The handshake's first word selects the
// framing version: legacy connections deliver to group 0, version-2
// connections carry a group tag per frame and demultiplex to the
// group's handler.
func (t *TCPEndpoint) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	br := bufio.NewReaderSize(conn, wireBufSize)
	var hs [4]byte
	if _, err := io.ReadFull(br, hs[:]); err != nil {
		return
	}
	word := binary.LittleEndian.Uint32(hs[:])
	grouped := word == hsMagicV2
	if grouped {
		if _, err := io.ReadFull(br, hs[:]); err != nil {
			return
		}
		word = binary.LittleEndian.Uint32(hs[:])
	}
	from := types.ReplicaID(int32(word))
	if _, ok := t.addrs[from]; !ok || from == t.self {
		return // handshake names an unknown replica: reject the connection
	}
	var rb readBuf
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		frame := rb.frame(n)
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		g := types.GroupID(0)
		if grouped {
			var err error
			if g, frame, err = splitGroupBody(frame); err != nil {
				return // corrupt stream: drop the connection
			}
		}
		if int(g) >= len(t.handlers) || t.handlers[g] == nil {
			// A well-formed frame for a group this endpoint does not host:
			// drop it, like any best-effort delivery failure, but decode
			// first so a corrupt stream still kills the connection.
			m, err := msg.DecodeRecycled(frame)
			if err != nil {
				return
			}
			msg.Recycle(m)
			continue
		}
		m, err := msg.DecodeRecycled(frame)
		if err != nil {
			return // corrupt stream: drop the connection
		}
		select {
		case <-t.quit:
			msg.Recycle(m)
			return // closing: drop instead of delivering into teardown
		default:
		}
		if t.inboxes != nil {
			// Grouped endpoint: hand off to the group's delivery
			// goroutine so a stalled group cannot head-of-line-block its
			// siblings on this connection; its own overflow is dropped.
			select {
			case t.inboxes[g] <- inDelivery{from: from, m: m}:
			default:
				t.inDrops.Add(1)
				msg.Recycle(m)
			}
			continue
		}
		t.handlers[g](from, m)
	}
}

// InboundDrops returns how many inbound messages were discarded because
// their group's delivery queue was full (grouped endpoints only).
func (t *TCPEndpoint) InboundDrops() uint64 { return t.inDrops.Load() }

// Send implements Transport: it transmits on group 0.
func (t *TCPEndpoint) Send(to types.ReplicaID, m msg.Message) {
	t.SendGroup(to, 0, m)
}

// SendGroup implements GroupTransport.
func (t *TCPEndpoint) SendGroup(to types.ReplicaID, g types.GroupID, m msg.Message) {
	if g < 0 || int(g) >= t.opts.Groups {
		return // unconfigured group: drop, like any delivery failure
	}
	f := newFrame(m, 1, g, t.grouped)
	p, ok := t.peer(to)
	if !ok {
		f.release()
		return
	}
	t.enqueue(p, f)
}

// Broadcast implements Broadcaster: it fans out on group 0.
func (t *TCPEndpoint) Broadcast(dst []types.ReplicaID, m msg.Message) {
	t.BroadcastGroup(dst, 0, m)
}

// BroadcastGroup implements GroupBroadcaster: the frame — group tag
// included — is encoded once and the same bytes are queued to every
// destination.
func (t *TCPEndpoint) BroadcastGroup(dst []types.ReplicaID, g types.GroupID, m msg.Message) {
	if g < 0 || int(g) >= t.opts.Groups {
		return // unconfigured group: drop, like any delivery failure
	}
	n := 0
	for _, to := range dst {
		if to != t.self {
			n++
		}
	}
	if n == 0 {
		return
	}
	f := newFrame(m, int32(n), g, t.grouped)
	for _, to := range dst {
		if to == t.self {
			continue
		}
		p, ok := t.peer(to)
		if !ok {
			f.release()
			continue
		}
		t.enqueue(p, f)
	}
}

// enqueue hands f to a peer queue, dropping it if the queue is full
// (the protocols tolerate message loss).
func (t *TCPEndpoint) enqueue(p *tcpPeer, f *outFrame) {
	select {
	case p.outbox <- f:
	default:
		f.release()
	}
}

// peer returns (creating if needed) the outgoing queue for a replica.
func (t *TCPEndpoint) peer(to types.ReplicaID) (*tcpPeer, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, false
	}
	p, ok := t.peers[to]
	if !ok {
		p = &tcpPeer{outbox: make(chan *outFrame, t.opts.OutboxLen)}
		t.peers[to] = p
		t.wg.Add(1)
		go t.writeLoop(to, p)
	}
	return p, true
}

// writeLoop owns the outgoing connection to one peer, redialing with
// backoff on failure. It drains the outbox in batches and writes them
// through a bufio.Writer, so a burst of queued frames costs one flush
// (typically one syscall) instead of one write per frame.
func (t *TCPEndpoint) writeLoop(to types.ReplicaID, p *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	defer func() {
		if conn != nil {
			t.untrack(conn)
		}
	}()
	batch := make([]*outFrame, 0, maxWriteBatch)
	releaseBatch := func() {
		for i, f := range batch {
			f.release()
			batch[i] = nil
		}
		batch = batch[:0]
	}
	size := 0
	// drainMore coalesces whatever is already queued into the current
	// batch, up to the batch limits, reporting how many frames it added.
	drainMore := func() int {
		added := 0
		for len(batch) < maxWriteBatch && size < maxWriteBytes {
			select {
			case f := <-p.outbox:
				batch = append(batch, f)
				size += len(f.data)
				added++
				continue
			default:
			}
			break
		}
		return added
	}
	for {
		var f *outFrame
		select {
		case <-t.quit:
			return
		case f = <-p.outbox:
		}
		batch = append(batch, f)
		size = len(f.data)
		drainMore()
		for {
			// Frames queued while we were disconnected or backing off join
			// the batch: reconnection flushes the whole backlog at once.
			drainMore()
			if conn == nil {
				c, err := net.Dial("tcp", t.addrs[to])
				if err != nil {
					select {
					case <-t.quit:
						releaseBatch()
						return
					case <-time.After(t.opts.DialRetry):
						continue
					}
				}
				var hs [8]byte
				hello := hs[4:]
				if t.grouped {
					// Version-2 handshake: magic word, then the sender.
					binary.LittleEndian.PutUint32(hs[:4], hsMagicV2)
					hello = hs[:]
				}
				binary.LittleEndian.PutUint32(hs[4:], uint32(int32(t.self)))
				if _, err := c.Write(hello); err != nil {
					c.Close()
					continue
				}
				if !t.track(c) {
					c.Close()
					releaseBatch()
					return
				}
				conn = c
				bw = bufio.NewWriterSize(conn, wireBufSize)
			}
			var err error
			written := 0
			for {
				// Write what the batch holds, then look again: frames that
				// other groups (or this group's next burst) queued while
				// these bytes were being buffered join the same flush. On a
				// grouped endpoint, an empty re-drain yields the processor
				// once first — concurrent event loops bursting to this peer
				// are typically one schedule away from having enqueued —
				// which is what merges cross-group traffic into one syscall.
				for _, f := range batch[written:] {
					if _, err = bw.Write(f.data); err != nil {
						break
					}
				}
				if err != nil {
					break
				}
				written = len(batch)
				if len(batch) >= maxWriteBatch || size >= maxWriteBytes {
					break
				}
				n := drainMore()
				if n == 0 && t.grouped {
					runtime.Gosched()
					n = drainMore()
				}
				if n == 0 {
					break
				}
			}
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				t.untrack(conn)
				conn, bw = nil, nil
				continue // redial and resend the whole batch
			}
			t.framesSent.Add(uint64(len(batch)))
			t.flushes.Add(1)
			if len(batch) > 1 {
				t.coalescedFrames.Add(uint64(len(batch)))
				if t.grouped {
					for _, f := range batch[1:] {
						if f.group != batch[0].group {
							t.multiGroupFlushes.Add(1)
							break
						}
					}
				}
			}
			break
		}
		releaseBatch()
	}
}

// Close implements Transport.
func (t *TCPEndpoint) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.quit)
	if t.ln != nil {
		t.ln.Close()
	}
	// Unblock reader goroutines parked on open connections.
	t.mu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// track registers a live connection; it returns false if the endpoint
// is closing (the caller must close the connection itself).
func (t *TCPEndpoint) track(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

// untrack closes and forgets a connection.
func (t *TCPEndpoint) untrack(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
	c.Close()
}
