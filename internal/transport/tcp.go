package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// maxFrame bounds a single wire frame; larger frames indicate
// corruption and kill the connection. It mirrors msg.MaxFrame so the
// decoder and the framing layer enforce the same limit.
const maxFrame = msg.MaxFrame

// Writer coalescing limits: one flush covers at most maxWriteBatch
// queued frames or maxWriteBytes of payload, whichever is hit first.
const (
	maxWriteBatch = 128
	maxWriteBytes = 1 << 20
	wireBufSize   = 64 << 10
)

// TCPOptions configure a TCP endpoint.
type TCPOptions struct {
	// DialRetry is the backoff between reconnect attempts (default 1s).
	DialRetry time.Duration
	// OutboxLen is the per-peer send queue capacity (default 4096);
	// a full queue drops messages, matching best-effort semantics.
	OutboxLen int
}

// TCPEndpoint is a Transport over TCP with length-prefixed frames.
// Each endpoint listens on its own address and lazily dials peers;
// frames carry a 4-byte length followed by the encoded message, and
// every connection begins with a 4-byte handshake naming the sender.
//
// The send path is allocation-frugal: messages are encoded once into
// pooled buffers (msg.GetBuf), broadcasts share a single encoded frame
// across all peer outboxes via refcounting, and each writeLoop drains
// its outbox through a bufio.Writer so one syscall flushes a whole
// burst of frames.
type TCPEndpoint struct {
	self    types.ReplicaID
	addrs   map[types.ReplicaID]string
	opts    TCPOptions
	handler Handler

	ln net.Listener

	mu    sync.Mutex
	peers map[types.ReplicaID]*tcpPeer
	conns map[net.Conn]struct{}
	quit  chan struct{}
	wg    sync.WaitGroup

	closed bool

	// Wire-level counters (atomic): frames handed to the kernel and
	// flushes (≈ syscalls) performed. framesSent/flushes is the write
	// coalescing factor.
	framesSent atomic.Uint64
	flushes    atomic.Uint64
}

var (
	_ Transport   = (*TCPEndpoint)(nil)
	_ Broadcaster = (*TCPEndpoint)(nil)
)

// tcpPeer is an outgoing connection with its queue and writer.
type tcpPeer struct {
	outbox chan *outFrame
}

// outFrame is one encoded, length-prefixed wire frame. A broadcast
// enqueues the same frame on every peer outbox; refs counts outstanding
// holders so the backing pooled buffer is released exactly once.
type outFrame struct {
	data []byte   // [4-byte length | encoded message]; read-only once enqueued
	buf  *msg.Buf // pooled backing storage of data
	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(outFrame) }}

// newFrame encodes m into a pooled buffer as a length-prefixed frame
// with refs initial holders.
func newFrame(m msg.Message, refs int32) *outFrame {
	f := framePool.Get().(*outFrame)
	f.buf = msg.GetBuf()
	b := append(f.buf.B[:0], 0, 0, 0, 0)
	b = msg.EncodeTo(b, m)
	binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	f.buf.B = b
	f.data = b
	f.refs.Store(refs)
	return f
}

// release drops one hold on f, recycling its storage on the last drop.
func (f *outFrame) release() {
	if f.refs.Add(-1) != 0 {
		return
	}
	msg.PutBuf(f.buf)
	f.buf = nil
	f.data = nil
	framePool.Put(f)
}

// NewTCP creates a TCP endpoint for replica self; addrs maps every
// replica (including self) to its listen address.
func NewTCP(self types.ReplicaID, addrs map[types.ReplicaID]string, opts TCPOptions) *TCPEndpoint {
	if opts.DialRetry <= 0 {
		opts.DialRetry = time.Second
	}
	if opts.OutboxLen <= 0 {
		opts.OutboxLen = 4096
	}
	return &TCPEndpoint{
		self:  self,
		addrs: addrs,
		opts:  opts,
		peers: make(map[types.ReplicaID]*tcpPeer),
		conns: make(map[net.Conn]struct{}),
		quit:  make(chan struct{}),
	}
}

// Self implements Transport.
func (t *TCPEndpoint) Self() types.ReplicaID { return t.self }

// SetHandler implements Transport.
func (t *TCPEndpoint) SetHandler(h Handler) { t.handler = h }

// Addr returns the bound listen address (useful with ":0" test
// listeners). Valid after Start.
func (t *TCPEndpoint) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// WireStats returns the frames written and flushes performed so far;
// frames/flushes is the achieved write-coalescing factor.
func (t *TCPEndpoint) WireStats() (frames, flushes uint64) {
	return t.framesSent.Load(), t.flushes.Load()
}

// Start implements Transport: it binds the listen socket and begins
// accepting peer connections.
func (t *TCPEndpoint) Start() error {
	if t.handler == nil {
		return fmt.Errorf("tcp endpoint %v has no handler", t.self)
	}
	ln, err := net.Listen("tcp", t.addrs[t.self])
	if err != nil {
		return fmt.Errorf("listen %s: %w", t.addrs[t.self], err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// acceptLoop accepts inbound connections and spawns a reader per
// connection.
func (t *TCPEndpoint) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !t.track(conn) {
			conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop consumes frames from one inbound connection. Reads go
// through a bufio.Reader, and frame bodies land in one grow-only buffer
// reused across frames (msg.Decode copies what it keeps), so the
// steady-state read path performs no per-frame allocation.
func (t *TCPEndpoint) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	br := bufio.NewReaderSize(conn, wireBufSize)
	var hs [4]byte
	if _, err := io.ReadFull(br, hs[:]); err != nil {
		return
	}
	from := types.ReplicaID(int32(binary.LittleEndian.Uint32(hs[:])))
	if _, ok := t.addrs[from]; !ok || from == t.self {
		return // handshake names an unknown replica: reject the connection
	}
	var buf []byte
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		frame := buf[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		m, err := msg.Decode(frame)
		if err != nil {
			return // corrupt stream: drop the connection
		}
		select {
		case <-t.quit:
			return // closing: drop instead of delivering into teardown
		default:
		}
		t.handler(from, m)
	}
}

// Send implements Transport.
func (t *TCPEndpoint) Send(to types.ReplicaID, m msg.Message) {
	f := newFrame(m, 1)
	p, ok := t.peer(to)
	if !ok {
		f.release()
		return
	}
	t.enqueue(p, f)
}

// Broadcast implements Broadcaster: the frame is encoded once and the
// same bytes are queued to every destination.
func (t *TCPEndpoint) Broadcast(dst []types.ReplicaID, m msg.Message) {
	n := 0
	for _, to := range dst {
		if to != t.self {
			n++
		}
	}
	if n == 0 {
		return
	}
	f := newFrame(m, int32(n))
	for _, to := range dst {
		if to == t.self {
			continue
		}
		p, ok := t.peer(to)
		if !ok {
			f.release()
			continue
		}
		t.enqueue(p, f)
	}
}

// enqueue hands f to a peer queue, dropping it if the queue is full
// (the protocols tolerate message loss).
func (t *TCPEndpoint) enqueue(p *tcpPeer, f *outFrame) {
	select {
	case p.outbox <- f:
	default:
		f.release()
	}
}

// peer returns (creating if needed) the outgoing queue for a replica.
func (t *TCPEndpoint) peer(to types.ReplicaID) (*tcpPeer, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, false
	}
	p, ok := t.peers[to]
	if !ok {
		p = &tcpPeer{outbox: make(chan *outFrame, t.opts.OutboxLen)}
		t.peers[to] = p
		t.wg.Add(1)
		go t.writeLoop(to, p)
	}
	return p, true
}

// writeLoop owns the outgoing connection to one peer, redialing with
// backoff on failure. It drains the outbox in batches and writes them
// through a bufio.Writer, so a burst of queued frames costs one flush
// (typically one syscall) instead of one write per frame.
func (t *TCPEndpoint) writeLoop(to types.ReplicaID, p *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	defer func() {
		if conn != nil {
			t.untrack(conn)
		}
	}()
	batch := make([]*outFrame, 0, maxWriteBatch)
	releaseBatch := func() {
		for i, f := range batch {
			f.release()
			batch[i] = nil
		}
		batch = batch[:0]
	}
	size := 0
	// drainMore coalesces whatever is already queued into the current
	// batch, up to the batch limits.
	drainMore := func() {
		for len(batch) < maxWriteBatch && size < maxWriteBytes {
			select {
			case f := <-p.outbox:
				batch = append(batch, f)
				size += len(f.data)
				continue
			default:
			}
			break
		}
	}
	for {
		var f *outFrame
		select {
		case <-t.quit:
			return
		case f = <-p.outbox:
		}
		batch = append(batch, f)
		size = len(f.data)
		drainMore()
		for {
			// Frames queued while we were disconnected or backing off join
			// the batch: reconnection flushes the whole backlog at once.
			drainMore()
			if conn == nil {
				c, err := net.Dial("tcp", t.addrs[to])
				if err != nil {
					select {
					case <-t.quit:
						releaseBatch()
						return
					case <-time.After(t.opts.DialRetry):
						continue
					}
				}
				var hs [4]byte
				binary.LittleEndian.PutUint32(hs[:], uint32(int32(t.self)))
				if _, err := c.Write(hs[:]); err != nil {
					c.Close()
					continue
				}
				if !t.track(c) {
					c.Close()
					releaseBatch()
					return
				}
				conn = c
				bw = bufio.NewWriterSize(conn, wireBufSize)
			}
			var err error
			for _, f := range batch {
				if _, err = bw.Write(f.data); err != nil {
					break
				}
			}
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				t.untrack(conn)
				conn, bw = nil, nil
				continue // redial and resend the whole batch
			}
			t.framesSent.Add(uint64(len(batch)))
			t.flushes.Add(1)
			break
		}
		releaseBatch()
	}
}

// Close implements Transport.
func (t *TCPEndpoint) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.quit)
	if t.ln != nil {
		t.ln.Close()
	}
	// Unblock reader goroutines parked on open connections.
	t.mu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// track registers a live connection; it returns false if the endpoint
// is closing (the caller must close the connection itself).
func (t *TCPEndpoint) track(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

// untrack closes and forgets a connection.
func (t *TCPEndpoint) untrack(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
	c.Close()
}
