package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// maxFrame bounds a single wire frame (64 MiB); larger frames indicate
// corruption and kill the connection.
const maxFrame = 64 << 20

// TCPOptions configure a TCP endpoint.
type TCPOptions struct {
	// DialRetry is the backoff between reconnect attempts (default 1s).
	DialRetry time.Duration
	// OutboxLen is the per-peer send queue capacity (default 4096);
	// a full queue drops messages, matching best-effort semantics.
	OutboxLen int
}

// TCPEndpoint is a Transport over TCP with length-prefixed frames.
// Each endpoint listens on its own address and lazily dials peers;
// frames carry a 4-byte length followed by the encoded message, and
// every connection begins with a 4-byte handshake naming the sender.
type TCPEndpoint struct {
	self    types.ReplicaID
	addrs   map[types.ReplicaID]string
	opts    TCPOptions
	handler Handler

	ln net.Listener

	mu    sync.Mutex
	peers map[types.ReplicaID]*tcpPeer
	conns map[net.Conn]struct{}
	quit  chan struct{}
	wg    sync.WaitGroup

	closed bool
}

var _ Transport = (*TCPEndpoint)(nil)

// tcpPeer is an outgoing connection with its queue and writer.
type tcpPeer struct {
	outbox chan []byte
}

// NewTCP creates a TCP endpoint for replica self; addrs maps every
// replica (including self) to its listen address.
func NewTCP(self types.ReplicaID, addrs map[types.ReplicaID]string, opts TCPOptions) *TCPEndpoint {
	if opts.DialRetry <= 0 {
		opts.DialRetry = time.Second
	}
	if opts.OutboxLen <= 0 {
		opts.OutboxLen = 4096
	}
	return &TCPEndpoint{
		self:  self,
		addrs: addrs,
		opts:  opts,
		peers: make(map[types.ReplicaID]*tcpPeer),
		conns: make(map[net.Conn]struct{}),
		quit:  make(chan struct{}),
	}
}

// Self implements Transport.
func (t *TCPEndpoint) Self() types.ReplicaID { return t.self }

// SetHandler implements Transport.
func (t *TCPEndpoint) SetHandler(h Handler) { t.handler = h }

// Addr returns the bound listen address (useful with ":0" test
// listeners). Valid after Start.
func (t *TCPEndpoint) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Start implements Transport: it binds the listen socket and begins
// accepting peer connections.
func (t *TCPEndpoint) Start() error {
	if t.handler == nil {
		return fmt.Errorf("tcp endpoint %v has no handler", t.self)
	}
	ln, err := net.Listen("tcp", t.addrs[t.self])
	if err != nil {
		return fmt.Errorf("listen %s: %w", t.addrs[t.self], err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// acceptLoop accepts inbound connections and spawns a reader per
// connection.
func (t *TCPEndpoint) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !t.track(conn) {
			conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop consumes frames from one inbound connection.
func (t *TCPEndpoint) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	var hs [4]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return
	}
	from := types.ReplicaID(int32(binary.LittleEndian.Uint32(hs[:])))
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		m, err := msg.Decode(frame)
		if err != nil {
			return // corrupt stream: drop the connection
		}
		select {
		case <-t.quit:
			return
		default:
		}
		t.handler(from, m)
	}
}

// Send implements Transport.
func (t *TCPEndpoint) Send(to types.ReplicaID, m msg.Message) {
	body := msg.Encode(m)
	frame := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	p, ok := t.peers[to]
	if !ok {
		p = &tcpPeer{outbox: make(chan []byte, t.opts.OutboxLen)}
		t.peers[to] = p
		t.wg.Add(1)
		go t.writeLoop(to, p)
	}
	t.mu.Unlock()

	select {
	case p.outbox <- frame:
	default:
		// Queue full: drop. The protocols tolerate message loss.
	}
}

// writeLoop owns the outgoing connection to one peer, redialing with
// backoff on failure.
func (t *TCPEndpoint) writeLoop(to types.ReplicaID, p *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			t.untrack(conn)
		}
	}()
	for {
		var frame []byte
		select {
		case <-t.quit:
			return
		case frame = <-p.outbox:
		}
		for {
			if conn == nil {
				c, err := net.Dial("tcp", t.addrs[to])
				if err != nil {
					select {
					case <-t.quit:
						return
					case <-time.After(t.opts.DialRetry):
						continue
					}
				}
				var hs [4]byte
				binary.LittleEndian.PutUint32(hs[:], uint32(int32(t.self)))
				if _, err := c.Write(hs[:]); err != nil {
					c.Close()
					continue
				}
				if !t.track(c) {
					c.Close()
					return
				}
				conn = c
			}
			if _, err := conn.Write(frame); err != nil {
				t.untrack(conn)
				conn = nil
				continue // redial and retry this frame
			}
			break
		}
	}
}

// Close implements Transport.
func (t *TCPEndpoint) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.quit)
	if t.ln != nil {
		t.ln.Close()
	}
	// Unblock reader goroutines parked on open connections.
	t.mu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// track registers a live connection; it returns false if the endpoint
// is closing (the caller must close the connection itself).
func (t *TCPEndpoint) track(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

// untrack closes and forgets a connection.
func (t *TCPEndpoint) untrack(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
	c.Close()
}
