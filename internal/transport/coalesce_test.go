package transport

import (
	"sync"
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// TestReadBufShrink checks the read buffer's retention policy: it
// grows to the largest frame, holds that capacity while big frames keep
// coming, and shrinks back to readRetainBytes only after
// readShrinkAfter consecutive frames that would have fit the retained
// size.
func TestReadBufShrink(t *testing.T) {
	var rb readBuf
	small := uint32(1 << 10)
	big := uint32(readRetainBytes * 4)

	if got := rb.frame(small); len(got) != int(small) {
		t.Fatalf("frame(%d) returned %d bytes", small, len(got))
	}
	if cap(rb.buf) > readRetainBytes {
		t.Fatalf("small frame grew buffer to %d", cap(rb.buf))
	}

	// A big frame grows the buffer to fit.
	if got := rb.frame(big); len(got) != int(big) {
		t.Fatalf("frame(%d) returned %d bytes", big, len(got))
	}
	grown := cap(rb.buf)
	if grown < int(big) {
		t.Fatalf("buffer cap %d after %d-byte frame", grown, big)
	}

	// Small frames keep the big buffer until the quiet streak completes;
	// one interleaved big frame must reset the streak.
	for i := 0; i < readShrinkAfter-1; i++ {
		rb.frame(small)
	}
	if cap(rb.buf) != grown {
		t.Fatalf("buffer shrank after %d quiet frames, want %d", readShrinkAfter-1, readShrinkAfter)
	}
	rb.frame(big) // resets the streak
	for i := 0; i < readShrinkAfter-1; i++ {
		rb.frame(small)
	}
	if cap(rb.buf) != grown {
		t.Fatal("buffer shrank even though the quiet streak was interrupted")
	}
	rb.frame(small) // completes a full streak
	if cap(rb.buf) != readRetainBytes {
		t.Fatalf("buffer cap %d after full quiet streak, want %d", cap(rb.buf), readRetainBytes)
	}

	// Shrinking must not break subsequent big frames.
	if got := rb.frame(big); len(got) != int(big) {
		t.Fatalf("frame(%d) after shrink returned %d bytes", big, len(got))
	}
}

// xgroupCollector counts deliveries per group.
type xgroupCollector struct {
	mu     sync.Mutex
	counts map[types.GroupID]int
}

func (c *xgroupCollector) handler(g types.GroupID) Handler {
	return func(from types.ReplicaID, m msg.Message) {
		c.mu.Lock()
		c.counts[g]++
		c.mu.Unlock()
	}
}

func (c *xgroupCollector) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

// TestTCPCrossGroupCoalescing proves the cross-group wire merge: bursts
// from several groups to the same peer share flushes, observable as
// MultiGroupFlushes > 0 and a coalescing factor above 1. The backlog
// variant is deterministic — frames from all groups queue while the
// peer is unreachable, so the first flush after the dial must mix
// groups — and a live concurrent phase then exercises the re-drain path
// under -race.
func TestTCPCrossGroupCoalescing(t *testing.T) {
	const groups = 4
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a := NewTCP(0, addrs, TCPOptions{DialRetry: 20 * time.Millisecond, Groups: groups})
	for g := 0; g < groups; g++ {
		a.SetGroupHandler(types.GroupID(g), func(types.ReplicaID, msg.Message) {})
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addrs[0] = a.Addr()

	// Reserve b's address without a listener behind it yet.
	probe := NewTCP(1, addrs, TCPOptions{Groups: groups})
	probe.SetGroupHandler(0, func(types.ReplicaID, msg.Message) {})
	if err := probe.Start(); err != nil {
		t.Fatal(err)
	}
	addrs[1] = probe.Addr()
	probe.Close()

	// Backlog phase: a burst spread over every group queues against the
	// unreachable peer.
	const perGroup = 8
	for i := 0; i < perGroup; i++ {
		for g := 0; g < groups; g++ {
			a.SendGroup(1, types.GroupID(g), &msg.Commit{Slot: uint64(i)})
		}
	}

	col := &xgroupCollector{counts: make(map[types.GroupID]int)}
	b := NewTCP(1, addrs, TCPOptions{DialRetry: 20 * time.Millisecond, Groups: groups})
	for g := 0; g < groups; g++ {
		b.SetGroupHandler(types.GroupID(g), col.handler(types.GroupID(g)))
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	waitFor(t, func() bool { return col.total() == perGroup*groups }, 5*time.Second)
	wc := a.Counters()
	if wc.Frames != perGroup*groups {
		t.Fatalf("frames = %d, want %d", wc.Frames, perGroup*groups)
	}
	if wc.Flushes != 1 {
		t.Errorf("flushes = %d, want 1 (whole cross-group backlog in one write)", wc.Flushes)
	}
	if wc.MultiGroupFlushes == 0 {
		t.Error("MultiGroupFlushes = 0: the mixed-group backlog was not counted as a cross-group flush")
	}
	if wc.CoalescedFrames != perGroup*groups {
		t.Errorf("CoalescedFrames = %d, want %d", wc.CoalescedFrames, perGroup*groups)
	}

	// Live phase: concurrent senders on every group, exercising the
	// write-as-drained re-drain under contention.
	var wg sync.WaitGroup
	const liveSends = 200
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g types.GroupID) {
			defer wg.Done()
			for i := 0; i < liveSends; i++ {
				a.SendGroup(1, g, &msg.Commit{Slot: uint64(i)})
			}
		}(types.GroupID(g))
	}
	wg.Wait()
	// Best-effort transport: full outboxes may drop, so wait for the
	// sent-frame count to settle rather than for a fixed total.
	waitFor(t, func() bool {
		c := a.Counters()
		return c.Frames >= perGroup*groups+liveSends
	}, 5*time.Second)
	final := a.Counters()
	if final.Frames <= final.Flushes {
		t.Errorf("no live coalescing: %d frames in %d flushes", final.Frames, final.Flushes)
	}
	for g, n := range col.counts {
		if n == 0 {
			t.Errorf("group %v received nothing", g)
		}
	}
}

// TestTCPRecycledDecodeDelivery checks the pooled receive path
// end-to-end over a real socket: hot-type messages (including batches
// with payloads) survive the DecodeRecycled → handler → Recycle cycle
// with their contents intact even as records are reused under churn.
func TestTCPRecycledDecodeDelivery(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a := NewTCP(0, addrs, TCPOptions{DialRetry: 20 * time.Millisecond})
	a.SetHandler(func(types.ReplicaID, msg.Message) {})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addrs[0] = a.Addr()

	type seen struct {
		mu   sync.Mutex
		seqs []uint64
		bad  int
	}
	var got seen
	b := NewTCP(1, addrs, TCPOptions{DialRetry: 20 * time.Millisecond})
	b.SetHandler(func(from types.ReplicaID, m msg.Message) {
		p, ok := m.(*msg.Prepare)
		if !ok {
			return
		}
		got.mu.Lock()
		defer got.mu.Unlock()
		// Validate the arena-backed payload before the transport-side
		// storage can be reused: every byte must match the sequence tag.
		want := byte(p.Cmd.ID.Seq)
		for _, x := range p.Cmd.Payload {
			if x != want {
				got.bad++
				break
			}
		}
		got.seqs = append(got.seqs, p.Cmd.ID.Seq)
		msg.Recycle(m) // this handler is the end of the pipeline
	})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addrs[1] = b.Addr()

	const sends = 500
	for i := uint64(0); i < sends; i++ {
		payload := make([]byte, 64)
		for j := range payload {
			payload[j] = byte(i)
		}
		a.Send(1, &msg.Prepare{
			Epoch: 1,
			TS:    types.Timestamp{Wall: int64(i), Node: 0},
			Cmd:   types.Command{ID: types.CommandID{Origin: 0, Seq: i}, Payload: payload},
		})
	}
	waitFor(t, func() bool {
		got.mu.Lock()
		defer got.mu.Unlock()
		return len(got.seqs) == sends
	}, 5*time.Second)
	got.mu.Lock()
	defer got.mu.Unlock()
	if got.bad != 0 {
		t.Fatalf("%d messages arrived with corrupt payloads", got.bad)
	}
	for i, s := range got.seqs {
		if s != uint64(i) {
			t.Fatalf("FIFO violated at %d: got seq %d", i, s)
		}
	}
}
