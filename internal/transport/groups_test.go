package transport

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// groupCollector records deliveries per group.
type groupCollector struct {
	mu    sync.Mutex
	slots map[types.GroupID][]uint64
}

func newGroupCollector() *groupCollector {
	return &groupCollector{slots: make(map[types.GroupID][]uint64)}
}

func (c *groupCollector) handler(g types.GroupID) Handler {
	return func(from types.ReplicaID, m msg.Message) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.slots[g] = append(c.slots[g], m.(*msg.Commit).Slot)
	}
}

func (c *groupCollector) count(g types.GroupID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slots[g])
}

// TestGroupFrameRoundTrip pins the version-2 frame layout: the encoded
// bytes split back into the same group tag and a body that decodes to
// an identical message.
func TestGroupFrameRoundTrip(t *testing.T) {
	for _, g := range []types.GroupID{0, 1, 7, MaxGroups - 1} {
		want := &msg.Prepare{
			Epoch: 3,
			TS:    types.Timestamp{Wall: 123456789, Node: 2},
			Cmd:   types.Command{ID: types.CommandID{Origin: 2, Seq: 42}, Payload: []byte("payload")},
		}
		f := newFrame(want, 1, g, true)
		n := binary.LittleEndian.Uint32(f.data)
		if int(n) != len(f.data)-4 {
			t.Fatalf("group %v: frame length %d, body %d", g, n, len(f.data)-4)
		}
		gotG, body, err := splitGroupBody(f.data[4:])
		if err != nil {
			t.Fatalf("group %v: split: %v", g, err)
		}
		if gotG != g {
			t.Fatalf("group tag %v, want %v", gotG, g)
		}
		m, err := msg.Decode(body)
		if err != nil {
			t.Fatalf("group %v: decode: %v", g, err)
		}
		got := m.(*msg.Prepare)
		if got.Epoch != want.Epoch || got.TS != want.TS || got.Cmd.ID != want.Cmd.ID || string(got.Cmd.Payload) != string(want.Cmd.Payload) {
			t.Fatalf("round trip mutated message: %+v != %+v", got, want)
		}
		f.release()
	}
}

func TestSplitGroupBodyRejects(t *testing.T) {
	if _, _, err := splitGroupBody([]byte{1, 2}); err == nil {
		t.Error("short body accepted")
	}
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:], MaxGroups)
	if _, _, err := splitGroupBody(b[:]); err == nil {
		t.Error("overflowing group tag accepted")
	}
	binary.LittleEndian.PutUint32(b[:], MaxGroups-1)
	if _, _, err := splitGroupBody(b[:]); err != nil {
		t.Errorf("maximal valid group rejected: %v", err)
	}
}

// FuzzGroupFrame feeds arbitrary frame bodies through the version-2
// parsing path (group split + message decode): it must never panic and
// must reject anything it cannot round-trip.
func FuzzGroupFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	var huge [8]byte
	binary.LittleEndian.PutUint32(huge[:], 1<<31)
	f.Add(huge[:])
	fr := newFrame(&msg.Commit{Slot: 9}, 1, 3, true)
	f.Add(append([]byte(nil), fr.data[4:]...))
	fr.release()
	f.Fuzz(func(t *testing.T, body []byte) {
		g, rest, err := splitGroupBody(body)
		if err != nil {
			return
		}
		if g < 0 || g >= MaxGroups {
			t.Fatalf("split accepted out-of-range group %v", g)
		}
		if m, err := msg.Decode(rest); err == nil && m == nil {
			t.Fatal("decode returned nil message without error")
		}
	})
}

func TestTCPGroupDemuxAndFIFO(t *testing.T) {
	const groups = 3
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a := NewTCP(0, addrs, TCPOptions{DialRetry: 20 * time.Millisecond, Groups: groups})
	b := NewTCP(1, addrs, TCPOptions{DialRetry: 20 * time.Millisecond, Groups: groups})
	col := newGroupCollector()
	for g := 0; g < groups; g++ {
		a.SetGroupHandler(types.GroupID(g), func(types.ReplicaID, msg.Message) {})
		b.SetGroupHandler(types.GroupID(g), col.handler(types.GroupID(g)))
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addrs[0], addrs[1] = a.Addr(), b.Addr()

	const per = 50
	for i := uint64(0); i < per; i++ {
		for g := 0; g < groups; g++ {
			// Slot encodes (group, seq) so cross-group bleed is detectable.
			a.SendGroup(1, types.GroupID(g), &msg.Commit{Slot: uint64(g)*1000 + i})
		}
	}
	waitFor(t, func() bool {
		for g := 0; g < groups; g++ {
			if col.count(types.GroupID(g)) != per {
				return false
			}
		}
		return true
	}, 5*time.Second)
	col.mu.Lock()
	defer col.mu.Unlock()
	for g := 0; g < groups; g++ {
		for i, s := range col.slots[types.GroupID(g)] {
			if s != uint64(g)*1000+uint64(i) {
				t.Fatalf("group %d: slot[%d] = %d (demux or FIFO broken)", g, i, s)
			}
		}
	}
}

func TestTCPGroupBroadcastShared(t *testing.T) {
	const groups = 2
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	var eps []*TCPEndpoint
	cols := make([]*groupCollector, 3)
	for i := 0; i < 3; i++ {
		ep := NewTCP(types.ReplicaID(i), addrs, TCPOptions{DialRetry: 20 * time.Millisecond, Groups: groups})
		cols[i] = newGroupCollector()
		for g := 0; g < groups; g++ {
			ep.SetGroupHandler(types.GroupID(g), cols[i].handler(types.GroupID(g)))
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		addrs[types.ReplicaID(i)] = ep.Addr()
		eps = append(eps, ep)
	}
	dst := []types.ReplicaID{0, 1, 2}
	eps[0].BroadcastGroup(dst, 1, &msg.Commit{Slot: 77})
	waitFor(t, func() bool {
		return cols[1].count(1) == 1 && cols[2].count(1) == 1
	}, 5*time.Second)
	if cols[0].count(1) != 0 {
		t.Fatal("broadcast delivered to self")
	}
	if cols[1].count(0) != 0 || cols[2].count(0) != 0 {
		t.Fatal("broadcast bled into group 0")
	}
}

// TestTCPMixedVersionInterop checks handshake versioning: a legacy
// (single-group) endpoint and a grouped endpoint exchange group-0
// traffic in both directions.
func TestTCPMixedVersionInterop(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	legacy := NewTCP(0, addrs, TCPOptions{DialRetry: 20 * time.Millisecond}) // Groups: 1 → v1 framing
	grouped := NewTCP(1, addrs, TCPOptions{DialRetry: 20 * time.Millisecond, Groups: 4})
	colL, colG := newGroupCollector(), newGroupCollector()
	legacy.SetHandler(colL.handler(0))
	for g := 0; g < 4; g++ {
		grouped.SetGroupHandler(types.GroupID(g), colG.handler(types.GroupID(g)))
	}
	if err := legacy.Start(); err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if err := grouped.Start(); err != nil {
		t.Fatal(err)
	}
	defer grouped.Close()
	addrs[0], addrs[1] = legacy.Addr(), grouped.Addr()

	legacy.Send(1, &msg.Commit{Slot: 1}) // v1 frames land on group 0
	grouped.SendGroup(0, 0, &msg.Commit{Slot: 2})
	waitFor(t, func() bool { return colG.count(0) == 1 && colL.count(0) == 1 }, 5*time.Second)
	// Traffic for a group the legacy endpoint does not host is dropped
	// without killing the connection.
	grouped.SendGroup(0, 3, &msg.Commit{Slot: 3})
	grouped.SendGroup(0, 0, &msg.Commit{Slot: 4})
	waitFor(t, func() bool { return colL.count(0) == 2 }, 5*time.Second)
	colL.mu.Lock()
	defer colL.mu.Unlock()
	if s := colL.slots[0]; s[0] != 2 || s[1] != 4 {
		t.Fatalf("legacy endpoint got %v, want [2 4]", s)
	}
}

// dialV2 opens a raw version-2 connection claiming to be replica 0.
func dialV2(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hs [8]byte
	binary.LittleEndian.PutUint32(hs[:4], hsMagicV2)
	binary.LittleEndian.PutUint32(hs[4:], 0)
	if _, err := conn.Write(hs[:]); err != nil {
		t.Fatal(err)
	}
	return conn
}

// writeV2Frame writes one raw version-2 frame.
func writeV2Frame(t *testing.T, conn net.Conn, g uint32, m msg.Message) {
	t.Helper()
	body := binary.LittleEndian.AppendUint32(nil, g)
	body = msg.EncodeTo(body, m)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, body...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
}

func TestTCPOverflowingGroupKillsConnection(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	b := NewTCP(1, addrs, TCPOptions{Groups: 2})
	col := newGroupCollector()
	b.SetGroupHandler(0, col.handler(0))
	b.SetGroupHandler(1, col.handler(1))
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	conn := dialV2(t, b.Addr())
	defer conn.Close()
	writeV2Frame(t, conn, MaxGroups+17, &msg.Commit{Slot: 1})
	// The endpoint must drop the connection: the next read sees EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("connection still open after corrupt group tag (read err %v)", err)
	}
	if col.count(0) != 0 || col.count(1) != 0 {
		t.Fatal("corrupt frame was delivered")
	}
}

func TestTCPUnknownGroupDropped(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	b := NewTCP(1, addrs, TCPOptions{Groups: 2})
	col := newGroupCollector()
	b.SetGroupHandler(0, col.handler(0))
	b.SetGroupHandler(1, col.handler(1))
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	conn := dialV2(t, b.Addr())
	defer conn.Close()
	// Group 1000 is well-formed but not hosted: dropped, connection
	// survives and the following group-0 frame is delivered.
	writeV2Frame(t, conn, 1000, &msg.Commit{Slot: 5})
	writeV2Frame(t, conn, 0, &msg.Commit{Slot: 6})
	waitFor(t, func() bool { return col.count(0) == 1 }, 5*time.Second)
	col.mu.Lock()
	defer col.mu.Unlock()
	if col.slots[0][0] != 6 {
		t.Fatalf("got slot %d, want 6", col.slots[0][0])
	}
	if len(col.slots[1]) != 0 {
		t.Fatal("unhosted group delivered")
	}
}

func TestInprocGroupDemux(t *testing.T) {
	const groups = 2
	h := NewHub(2, HubOptions{Codec: true, Groups: groups})
	defer h.Close()
	ep0 := h.Endpoint(0).(*inprocEndpoint)
	ep1 := h.Endpoint(1).(*inprocEndpoint)
	col := newGroupCollector()
	for g := 0; g < groups; g++ {
		ep0.SetGroupHandler(types.GroupID(g), func(types.ReplicaID, msg.Message) {})
		ep1.SetGroupHandler(types.GroupID(g), col.handler(types.GroupID(g)))
	}
	if err := ep0.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ep1.Start(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		ep0.SendGroup(1, 0, &msg.Commit{Slot: i})
		ep0.BroadcastGroup([]types.ReplicaID{0, 1}, 1, &msg.Commit{Slot: 100 + i})
	}
	waitFor(t, func() bool { return col.count(0) == 20 && col.count(1) == 20 }, 5*time.Second)
	col.mu.Lock()
	defer col.mu.Unlock()
	for i := 0; i < 20; i++ {
		if col.slots[0][i] != uint64(i) || col.slots[1][i] != uint64(100+i) {
			t.Fatalf("demux mixed groups at %d: %v / %v", i, col.slots[0][i], col.slots[1][i])
		}
	}
	// Sends to unconfigured groups are dropped, not panics.
	ep0.SendGroup(1, 99, &msg.Commit{Slot: 1})
	ep0.BroadcastGroup([]types.ReplicaID{0, 1}, -1, &msg.Commit{Slot: 1})
}

// TestTCPGroupNoHeadOfLineBlocking pins the grouped read path's
// independence: a group whose handler stalls must not stop sibling
// groups' traffic arriving over the same connection.
func TestTCPGroupNoHeadOfLineBlocking(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a := NewTCP(0, addrs, TCPOptions{DialRetry: 20 * time.Millisecond, Groups: 2})
	b := NewTCP(1, addrs, TCPOptions{DialRetry: 20 * time.Millisecond, Groups: 2, InboxLen: 4})
	for g := 0; g < 2; g++ {
		a.SetGroupHandler(types.GroupID(g), func(types.ReplicaID, msg.Message) {})
	}
	block := make(chan struct{})
	b.SetGroupHandler(0, func(types.ReplicaID, msg.Message) { <-block })
	col := newGroupCollector()
	b.SetGroupHandler(1, col.handler(1))
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	defer close(block)
	addrs[0], addrs[1] = a.Addr(), b.Addr()

	// Far more group-0 messages than group 0's delivery queue holds,
	// while its handler is wedged…
	for i := uint64(0); i < 64; i++ {
		a.SendGroup(1, 0, &msg.Commit{Slot: i})
	}
	// …must not stop group 1's traffic on the same connection. Group 1
	// makes progress (its own burst may shed overflow — that's the
	// intended best-effort behaviour — but it is never wedged behind
	// group 0).
	waitFor(t, func() bool {
		a.SendGroup(1, 1, &msg.Commit{Slot: 100})
		return col.count(1) > 0
	}, 5*time.Second)
	if d := b.InboundDrops(); d == 0 {
		t.Error("expected overflow drops on the wedged group, got none")
	}
}
