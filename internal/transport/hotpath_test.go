package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// TestTCPBroadcastEncodesOnce proves the encode-once fan-out at the
// frame level: a broadcast to N peers must enqueue the exact same
// backing bytes (one encoded frame, refcounted) on every outbox.
func TestTCPBroadcastEncodesOnce(t *testing.T) {
	addrs := map[types.ReplicaID]string{
		0: "127.0.0.1:0", 1: "127.0.0.1:1", 2: "127.0.0.1:2", 3: "127.0.0.1:3",
	}
	ep := NewTCP(0, addrs, TCPOptions{DialRetry: time.Hour}) // never actually dials
	ep.SetHandler(func(types.ReplicaID, msg.Message) {})
	defer ep.Close()

	dst := []types.ReplicaID{0, 1, 2, 3}
	ep.Broadcast(dst, &msg.Commit{Slot: 42})

	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.peers) != 3 {
		t.Fatalf("expected 3 peer queues, got %d", len(ep.peers))
	}
	var first *outFrame
	for id, p := range ep.peers {
		select {
		case f := <-p.outbox:
			if first == nil {
				first = f
			} else if f != first {
				t.Errorf("peer %v got a distinct frame: broadcast encoded more than once", id)
			}
		default:
			t.Errorf("peer %v outbox empty", id)
		}
	}
	if first == nil {
		t.Fatal("no frame enqueued")
	}
	if got := first.refs.Load(); got != 3 {
		t.Errorf("frame refcount = %d, want 3", got)
	}
	// The frame must carry a well-formed length prefix + message.
	if n := binary.LittleEndian.Uint32(first.data); int(n) != len(first.data)-4 {
		t.Errorf("frame length prefix %d, want %d", n, len(first.data)-4)
	}
	if _, err := msg.Decode(first.data[4:]); err != nil {
		t.Errorf("frame body does not decode: %v", err)
	}
}

// TestTCPWriteCoalescing asserts that frames queued together leave in
// one flush: the sender queues a burst while the peer is unreachable,
// and once the connection is up the whole burst must go out in a single
// buffered write.
func TestTCPWriteCoalescing(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a := NewTCP(0, addrs, TCPOptions{DialRetry: 20 * time.Millisecond})
	a.SetHandler(func(types.ReplicaID, msg.Message) {})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addrs[0] = a.Addr()

	// Reserve an address for b without a listener behind it yet.
	probe := NewTCP(1, addrs, TCPOptions{})
	probe.SetHandler(func(types.ReplicaID, msg.Message) {})
	if err := probe.Start(); err != nil {
		t.Fatal(err)
	}
	addrs[1] = probe.Addr()
	probe.Close()

	const burst = 20
	for i := uint64(0); i < burst; i++ {
		a.Send(1, &msg.Commit{Slot: i})
	}

	col := &collector{}
	b := NewTCP(1, addrs, TCPOptions{DialRetry: 20 * time.Millisecond})
	b.SetHandler(col.handler())
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	waitFor(t, func() bool { return col.count() == burst }, 5*time.Second)
	frames, flushes := a.WireStats()
	if frames != burst {
		t.Fatalf("framesSent = %d, want %d", frames, burst)
	}
	if flushes != 1 {
		t.Errorf("flushes = %d, want 1 (whole burst coalesced into one write)", flushes)
	}
	// Order must survive coalescing.
	col.mu.Lock()
	defer col.mu.Unlock()
	for i, s := range col.slots {
		if s != uint64(i) {
			t.Fatalf("FIFO violated at %d: got slot %d", i, s)
		}
	}
}

// TestTCPRejectsUnknownHandshake checks that an inbound connection
// claiming a replica ID outside the address map is dropped before any
// frame is processed.
func TestTCPRejectsUnknownHandshake(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	var mu sync.Mutex
	delivered := 0
	ep := NewTCP(0, addrs, TCPOptions{})
	ep.SetHandler(func(types.ReplicaID, msg.Message) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	if err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	send := func(id int32) net.Conn {
		conn, err := net.Dial("tcp", ep.Addr())
		if err != nil {
			t.Fatal(err)
		}
		var hs [4]byte
		binary.LittleEndian.PutUint32(hs[:], uint32(id))
		conn.Write(hs[:])
		body := msg.Encode(&msg.Commit{Slot: 1})
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(body)))
		conn.Write(lenBuf[:])
		conn.Write(body)
		return conn
	}

	// Unknown replica 99 and the endpoint's own ID must both be rejected.
	bad1 := send(99)
	defer bad1.Close()
	bad2 := send(0)
	defer bad2.Close()
	// A valid peer still gets through.
	good := send(1)
	defer good.Close()

	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return delivered >= 1 }, 2*time.Second)
	time.Sleep(50 * time.Millisecond) // grace for any (wrong) late delivery
	mu.Lock()
	defer mu.Unlock()
	if delivered != 1 {
		t.Errorf("delivered %d messages, want 1 (unknown handshakes must be dropped)", delivered)
	}
}

// TestInprocBroadcastIsolation checks the hub's encode-once broadcast
// still hands every recipient its own copy in codec mode.
func TestInprocBroadcastIsolation(t *testing.T) {
	h := NewHub(3, HubOptions{Codec: true})
	defer h.Close()
	var mu sync.Mutex
	got := make(map[types.ReplicaID]*msg.Prepare)
	for i := types.ReplicaID(1); i <= 2; i++ {
		i := i
		h.Endpoint(i).SetHandler(func(from types.ReplicaID, m msg.Message) {
			mu.Lock()
			got[i] = m.(*msg.Prepare)
			mu.Unlock()
		})
		if err := h.Endpoint(i).Start(); err != nil {
			t.Fatal(err)
		}
	}
	h.Endpoint(0).SetHandler(func(types.ReplicaID, msg.Message) {})
	if err := h.Endpoint(0).Start(); err != nil {
		t.Fatal(err)
	}

	sent := &msg.Prepare{TS: types.Timestamp{Wall: 1}, Cmd: types.Command{Payload: []byte("abc")}}
	bc := h.Endpoint(0).(Broadcaster)
	bc.Broadcast([]types.ReplicaID{0, 1, 2}, sent)

	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 2 }, time.Second)
	mu.Lock()
	defer mu.Unlock()
	if got[1] == got[2] {
		t.Error("broadcast shared one message instance across recipients")
	}
	if got[1] == sent || got[2] == sent {
		t.Error("broadcast shared the sender's message instance")
	}
	sent.Cmd.Payload[0] = 'x'
	if string(got[1].Cmd.Payload) != "abc" || string(got[2].Cmd.Payload) != "abc" {
		t.Error("broadcast shared the payload buffer")
	}
}

// BenchmarkTCPBroadcastEncode measures the send-side cost of an
// N-peer broadcast (no live connections: frames land in outboxes and
// are drained/released by this benchmark, isolating encode+enqueue).
func BenchmarkTCPBroadcastEncode(b *testing.B) {
	addrs := map[types.ReplicaID]string{
		0: "127.0.0.1:1", 1: "127.0.0.1:2", 2: "127.0.0.1:3", 3: "127.0.0.1:4", 4: "127.0.0.1:5",
	}
	ep := NewTCP(0, addrs, TCPOptions{DialRetry: time.Hour, OutboxLen: 16})
	ep.SetHandler(func(types.ReplicaID, msg.Message) {})
	defer ep.Close()
	dst := []types.ReplicaID{0, 1, 2, 3, 4}
	m := &msg.Prepare{
		Epoch: 1,
		TS:    types.Timestamp{Wall: 12345, Node: 0},
		Cmd:   types.Command{ID: types.CommandID{Origin: 0, Seq: 1}, Payload: make([]byte, 100)},
	}
	drain := func() {
		ep.mu.Lock()
		defer ep.mu.Unlock()
		for _, p := range ep.peers {
			for {
				select {
				case f := <-p.outbox:
					f.release()
					continue
				default:
				}
				break
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep.Broadcast(dst, m)
		if i%8 == 7 {
			b.StopTimer()
			drain()
			b.StartTimer()
		}
	}
	b.StopTimer()
	drain()
}
