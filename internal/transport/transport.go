// Package transport provides the real-runtime message transports for
// replica nodes: an in-process transport with optional WAN latency
// emulation (used by the throughput study and the examples) and a TCP
// transport with length-prefixed frames (used by the server binaries).
package transport

import (
	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// Handler receives messages delivered to a replica.
type Handler func(from types.ReplicaID, m msg.Message)

// Transport moves protocol messages between replicas. Send is
// asynchronous and best-effort: delivery failures surface as silence,
// matching the asynchronous system model (Section II-A).
type Transport interface {
	// Self returns the replica this transport endpoint belongs to.
	Self() types.ReplicaID
	// SetHandler installs the delivery callback; it must be called
	// before Start.
	SetHandler(h Handler)
	// Send transmits m to another replica.
	Send(to types.ReplicaID, m msg.Message)
	// Start begins delivering messages.
	Start() error
	// Close stops the endpoint and releases resources.
	Close() error
}

// Broadcaster is optionally implemented by transports that can fan one
// message out to many peers while paying the serialization cost once.
// Both transports in this package implement it: the TCP endpoint
// encodes a single wire frame and enqueues the same (refcounted,
// read-only) bytes on every peer outbox; the in-process hub in codec
// mode encodes once and decodes per recipient.
type Broadcaster interface {
	// Broadcast sends m to every replica in dst except the endpoint
	// itself, with the same best-effort semantics as Send.
	Broadcast(dst []types.ReplicaID, m msg.Message)
}

// GroupTransport is implemented by transports that multiplex several
// independent replication groups over one endpoint and connection set.
// Frames carry a group tag at the framing layer (the message codec in
// internal/msg is untouched), and inbound traffic is demultiplexed to
// the per-group handler. Group handlers must be installed before Start.
// Plain Transport calls address group 0: SetHandler is
// SetGroupHandler(0, ·) and Send is SendGroup(to, 0, ·), so a
// single-group deployment never sees the group machinery.
type GroupTransport interface {
	Transport
	// Groups returns the number of groups this endpoint multiplexes.
	Groups() int
	// SetGroupHandler installs the delivery callback for one group; it
	// must be called before Start. g must be in [0, Groups()).
	SetGroupHandler(g types.GroupID, h Handler)
	// SendGroup transmits m to another replica tagged with group g, with
	// the same best-effort semantics as Send. Messages tagged with a
	// group the endpoint was not configured for are dropped.
	SendGroup(to types.ReplicaID, g types.GroupID, m msg.Message)
}

// GroupBroadcaster is the group-tagged analogue of Broadcaster: one
// serialization pays for the whole fan-out of a group-tagged message.
type GroupBroadcaster interface {
	// BroadcastGroup sends m tagged with group g to every replica in dst
	// except the endpoint itself.
	BroadcastGroup(dst []types.ReplicaID, g types.GroupID, m msg.Message)
}

// MaxGroups bounds the group tag carried in wire frames. A received
// frame naming a group at or above this limit indicates a corrupt
// stream (it can never be produced by a conforming sender) and kills
// the connection; a group below the limit but not hosted locally is
// dropped silently, like any other best-effort delivery failure.
const MaxGroups = 4096
