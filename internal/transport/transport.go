// Package transport provides the real-runtime message transports for
// replica nodes: an in-process transport with optional WAN latency
// emulation (used by the throughput study and the examples) and a TCP
// transport with length-prefixed frames (used by the server binaries).
package transport

import (
	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// Handler receives messages delivered to a replica.
type Handler func(from types.ReplicaID, m msg.Message)

// Transport moves protocol messages between replicas. Send is
// asynchronous and best-effort: delivery failures surface as silence,
// matching the asynchronous system model (Section II-A).
type Transport interface {
	// Self returns the replica this transport endpoint belongs to.
	Self() types.ReplicaID
	// SetHandler installs the delivery callback; it must be called
	// before Start.
	SetHandler(h Handler)
	// Send transmits m to another replica.
	Send(to types.ReplicaID, m msg.Message)
	// Start begins delivering messages.
	Start() error
	// Close stops the endpoint and releases resources.
	Close() error
}

// Broadcaster is optionally implemented by transports that can fan one
// message out to many peers while paying the serialization cost once.
// Both transports in this package implement it: the TCP endpoint
// encodes a single wire frame and enqueues the same (refcounted,
// read-only) bytes on every peer outbox; the in-process hub in codec
// mode encodes once and decodes per recipient.
type Broadcaster interface {
	// Broadcast sends m to every replica in dst except the endpoint
	// itself, with the same best-effort semantics as Send.
	Broadcast(dst []types.ReplicaID, m msg.Message)
}
