package storage

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"clockrsm/internal/types"
)

func ts(wall int64, node int) types.Timestamp {
	return types.Timestamp{Wall: wall, Node: types.ReplicaID(node)}
}

func cmd(origin int, seq uint64, payload string) types.Command {
	return types.Command{
		ID:      types.CommandID{Origin: types.ReplicaID(origin), Seq: seq},
		Payload: []byte(payload),
	}
}

func prepare(wall int64, node int, payload string) Entry {
	return Entry{Kind: KindPrepare, TS: ts(wall, node), Cmd: cmd(node, uint64(wall), payload)}
}

func commit(wall int64, node int) Entry {
	return Entry{Kind: KindCommit, TS: ts(wall, node)}
}

// logFactory lets every test run against both implementations.
type logFactory struct {
	name string
	make func(t *testing.T) Log
}

func factories() []logFactory {
	return []logFactory{
		{"mem", func(t *testing.T) Log { return NewMemLog() }},
		{"file", func(t *testing.T) Log {
			l, err := OpenFileLog(filepath.Join(t.TempDir(), "log.bin"), FileLogOptions{Sync: true})
			if err != nil {
				t.Fatal(err)
			}
			return l
		}},
	}
}

func TestAppendAndQuery(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			l := f.make(t)
			defer l.Close()

			entries := []Entry{
				prepare(10, 0, "a"),
				prepare(20, 1, "b"),
				commit(10, 0),
				prepare(15, 2, "c"),
				commit(15, 2),
			}
			for _, e := range entries {
				if err := l.Append(e); err != nil {
					t.Fatal(err)
				}
			}
			if l.Len() != 5 {
				t.Errorf("Len = %d, want 5", l.Len())
			}
			if got := l.LastCommitTS(); got != ts(15, 2) {
				t.Errorf("LastCommitTS = %v, want 15@r2", got)
			}
			if !l.HasPrepare(ts(20, 1)) || l.HasPrepare(ts(99, 0)) {
				t.Error("HasPrepare wrong")
			}
			after := l.CommandsAfter(ts(10, 0))
			if len(after) != 2 || after[0].TS != ts(15, 2) || after[1].TS != ts(20, 1) {
				t.Errorf("CommandsAfter = %+v", after)
			}
			between := l.CommandsBetween(ts(10, 0), ts(15, 2))
			if len(between) != 1 || between[0].TS != ts(15, 2) {
				t.Errorf("CommandsBetween = %+v", between)
			}
		})
	}
}

func TestRemovePreparesKeepsCommitted(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			l := f.make(t)
			defer l.Close()
			must := func(e Entry) {
				if err := l.Append(e); err != nil {
					t.Fatal(err)
				}
			}
			must(prepare(10, 0, "committed-old"))
			must(commit(10, 0))
			must(prepare(20, 1, "committed-new"))
			must(commit(20, 1))
			must(prepare(30, 2, "uncommitted-new")) // must be removed
			if err := l.RemovePrepares(ts(15, 0)); err != nil {
				t.Fatal(err)
			}
			if l.HasPrepare(ts(30, 2)) {
				t.Error("uncommitted new prepare survived RemovePrepares")
			}
			if !l.HasPrepare(ts(20, 1)) {
				t.Error("committed new prepare was removed")
			}
			if !l.HasPrepare(ts(10, 0)) {
				t.Error("old prepare was removed")
			}
		})
	}
}

func TestCommittedCommandsReplay(t *testing.T) {
	l := NewMemLog()
	// Out-of-timestamp-order PREPAREs with in-order COMMITs, plus one
	// dangling PREPARE.
	l.Append(prepare(20, 1, "b"))
	l.Append(prepare(10, 0, "a"))
	l.Append(commit(10, 0))
	l.Append(commit(20, 1))
	l.Append(prepare(30, 2, "dangling"))

	committed, dangling := CommittedCommands(l)
	if len(committed) != 2 || committed[0].TS != ts(10, 0) || committed[1].TS != ts(20, 1) {
		t.Errorf("committed = %+v", committed)
	}
	if len(dangling) != 1 || dangling[0].TS != ts(30, 2) {
		t.Errorf("dangling = %+v", dangling)
	}
}

func TestFileLogPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.bin")
	l, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		prepare(10, 0, "a"),
		commit(10, 0),
		prepare(20, 1, "payload with spaces"),
	}
	for _, e := range want {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := l2.Entries()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reloaded entries mismatch:\n got  %+v\n want %+v", got, want)
	}
	if l2.LastCommitTS() != ts(10, 0) {
		t.Errorf("LastCommitTS after reload = %v", l2.LastCommitTS())
	}
}

func TestFileLogTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.bin")
	l, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(prepare(10, 0, "a"))
	l.Append(prepare(20, 1, "b"))
	l.Close()

	// Simulate a torn write: chop a few bytes off the end.
	b, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, b[:len(b)-3]); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatalf("torn tail should be repaired, got %v", err)
	}
	defer l2.Close()
	if l2.Len() != 1 {
		t.Fatalf("entries after torn tail = %d, want 1", l2.Len())
	}
	// The log must accept appends after repair.
	if err := l2.Append(commit(10, 0)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Len() != 2 {
		t.Errorf("entries after repair+append = %d, want 2", l3.Len())
	}
}

func TestFileLogBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.bin")
	if err := writeFile(path, []byte("NOTALOGFILE")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileLog(path, FileLogOptions{}); err == nil {
		t.Error("OpenFileLog accepted bad magic")
	}
}

func TestFileLogRemovePreparesRewritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.bin")
	l, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(prepare(10, 0, "keep"))
	l.Append(commit(10, 0))
	l.Append(prepare(30, 2, "drop"))
	if err := l.RemovePrepares(ts(10, 0)); err != nil {
		t.Fatal(err)
	}
	// Appends after rewrite must work and persist.
	l.Append(prepare(40, 1, "new"))
	l.Close()

	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.HasPrepare(ts(30, 2)) {
		t.Error("dropped prepare present after reload")
	}
	if !l2.HasPrepare(ts(10, 0)) || !l2.HasPrepare(ts(40, 1)) {
		t.Error("kept/new prepares missing after reload")
	}
}

// Property: MemLog and FileLog agree on every query after the same
// random operation sequence, and replay equals the directly-computed
// committed set.
func TestMemFileEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := NewMemLog()
		file, err := OpenFileLog(filepath.Join(t.TempDir(), "log.bin"), FileLogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer file.Close()

		var prepared []types.Timestamp
		committed := make(map[types.Timestamp]bool)
		for i := 0; i < 60; i++ {
			var e Entry
			if len(prepared) > 0 && rng.Intn(3) == 0 {
				// Commit a random earlier prepare that is not yet committed.
				tsv := prepared[rng.Intn(len(prepared))]
				if committed[tsv] {
					continue
				}
				committed[tsv] = true
				e = Entry{Kind: KindCommit, TS: tsv}
			} else {
				tsv := ts(int64(rng.Intn(1000)), rng.Intn(5))
				if mem.HasPrepare(tsv) {
					continue
				}
				prepared = append(prepared, tsv)
				e = prepare(tsv.Wall, int(tsv.Node), "x")
				e.TS = tsv
			}
			mem.Append(e)
			file.Append(e)
		}
		probe := ts(500, 2)
		if !reflect.DeepEqual(mem.CommandsAfter(probe), file.CommandsAfter(probe)) {
			return false
		}
		if mem.LastCommitTS() != file.LastCommitTS() {
			return false
		}
		mc, md := CommittedCommands(mem)
		fc, fd := CommittedCommands(file)
		return reflect.DeepEqual(mc, fc) && reflect.DeepEqual(md, fd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if KindPrepare.String() != "PREPARE" || KindCommit.String() != "COMMIT" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind name wrong")
	}
}
