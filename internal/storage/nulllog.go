package storage

import (
	"sync"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// NullLog is a Log that acknowledges appends without retaining entries,
// tracking only the commit frontier. It models the paper's throughput
// configuration, where logging must not become the bottleneck and
// recovery is out of scope; a replica backed by a NullLog cannot serve
// state transfers or recover.
type NullLog struct {
	mu      sync.Mutex
	count   int
	lastCTS types.Timestamp
}

var _ Log = (*NullLog)(nil)

// NewNullLog returns an empty NullLog.
func NewNullLog() *NullLog { return &NullLog{} }

// Append implements Log.
func (l *NullLog) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	if e.Kind == KindCommit && l.lastCTS.Less(e.TS) {
		l.lastCTS = e.TS
	}
	return nil
}

// Len implements Log: the number of appends accepted.
func (l *NullLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Entries implements Log; a NullLog retains nothing.
func (l *NullLog) Entries() []Entry { return nil }

// LastCommitTS implements Log.
func (l *NullLog) LastCommitTS() types.Timestamp {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastCTS
}

// CommandsAfter implements Log; a NullLog retains nothing.
func (l *NullLog) CommandsAfter(types.Timestamp) []msg.TimestampedCommand { return nil }

// CommandsBetween implements Log; a NullLog retains nothing.
func (l *NullLog) CommandsBetween(_, _ types.Timestamp) []msg.TimestampedCommand { return nil }

// HasPrepare implements Log; a NullLog retains nothing.
func (l *NullLog) HasPrepare(types.Timestamp) bool { return false }

// RemovePrepares implements Log; nothing to remove.
func (l *NullLog) RemovePrepares(types.Timestamp) error { return nil }

// Close implements Log.
func (l *NullLog) Close() error { return nil }
