package storage

import (
	"clockrsm/internal/types"
)

// Checkpoint is a state-machine snapshot taken at a commit boundary:
// State is the serialized application state after executing every
// command with timestamp ≤ TS.
type Checkpoint struct {
	TS    types.Timestamp
	State []byte
}

// Checkpointer is implemented by logs that support compaction: the
// committed prefix up to a checkpoint is replaced by the snapshot,
// bounding log growth and speeding up recovery (Section V-B:
// "Checkpointing can be used to avoid replaying the whole log").
type Checkpointer interface {
	// WriteCheckpoint installs a checkpoint and discards every log entry
	// it covers: PREPARE and COMMIT entries with timestamp ≤ cp.TS.
	// Entries with larger timestamps (including uncommitted PREPAREs)
	// are retained.
	WriteCheckpoint(cp Checkpoint) error
	// LastCheckpoint returns the most recent checkpoint, if any.
	LastCheckpoint() (Checkpoint, bool)
}

var (
	_ Checkpointer = (*MemLog)(nil)
	_ Checkpointer = (*FileLog)(nil)
)

// WriteCheckpoint implements Checkpointer.
func (l *MemLog) WriteCheckpoint(cp Checkpoint) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writeCheckpoint(cp)
	return nil
}

// writeCheckpoint compacts under the write lock.
func (l *MemLog) writeCheckpoint(cp Checkpoint) {
	l.checkpoint = cp
	l.hasCheckpoint = true
	kept := l.entries[:0]
	for _, e := range l.entries {
		if e.TS.LessEq(cp.TS) {
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(l.entries); i++ {
		l.entries[i] = Entry{}
	}
	// Re-home the survivors into a right-sized backing array so the old
	// (large) array can be collected.
	if cap(l.entries) > 4*(len(kept)+16) {
		fresh := make([]Entry, len(kept))
		copy(fresh, kept)
		l.entries = fresh
	} else {
		l.entries = kept
	}
	if l.lastCTS.Less(cp.TS) {
		l.lastCTS = cp.TS
	}
}

// LastCheckpoint implements Checkpointer.
func (l *MemLog) LastCheckpoint() (Checkpoint, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.checkpoint, l.hasCheckpoint
}
