package storage

import (
	"fmt"
	"path/filepath"
	"testing"

	"clockrsm/internal/types"
)

// benchWAL appends 100-byte PREPARE entries in the given mode; in
// SyncBatch mode a Sync (group commit) covers every `batch` appends.
// A periodic checkpoint bounds the in-memory mirror so long runs
// measure append cost, not allocation pressure; it costs the same in
// every mode.
func benchWAL(b *testing.B, mode SyncMode, batch int) {
	l, err := OpenFileLog(filepath.Join(b.TempDir(), "log"), FileLogOptions{Mode: mode})
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	defer l.Close()
	payload := make([]byte, 100)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := types.Timestamp{Wall: int64(i + 1), Node: 0}
		if err := l.Append(Entry{Kind: KindPrepare, TS: ts, Cmd: types.Command{
			ID:      types.CommandID{Origin: 0, Seq: uint64(i + 1)},
			Payload: payload,
		}}); err != nil {
			b.Fatalf("append: %v", err)
		}
		if mode == SyncBatch && (i+1)%batch == 0 {
			if err := l.Sync(); err != nil {
				b.Fatalf("sync: %v", err)
			}
		}
		if (i+1)%8192 == 0 {
			if err := l.WriteCheckpoint(Checkpoint{TS: ts, State: []byte("s")}); err != nil {
				b.Fatalf("checkpoint: %v", err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		b.Fatalf("final sync: %v", err)
	}
}

// BenchmarkWAL compares the fsync modes: always (one fsync per append),
// group commit at batch sizes 1/8/64, and off (no fsync). Recorded in
// BENCH_6.json; the acceptance bar is batch mode at event-loop batch
// sizes recovering ≥80% of fsync=off throughput.
func BenchmarkWAL(b *testing.B) {
	b.Run("always", func(b *testing.B) { benchWAL(b, SyncAlways, 1) })
	for _, n := range []int{1, 8, 64} {
		n := n
		b.Run(fmt.Sprintf("batch-%d", n), func(b *testing.B) { benchWAL(b, SyncBatch, n) })
	}
	b.Run("off", func(b *testing.B) { benchWAL(b, SyncOff, 1) })
}
