// Package storage implements the stable command log required by the
// protocols (Section II-A: "Processes have access to stable storage,
// which survives failures"). Clock-RSM appends two kinds of entries:
// PREPARE entries carrying a command with its timestamp, and COMMIT
// marks carrying a timestamp only. COMMIT marks appear in timestamp
// order; PREPARE entries need not (Section V-B).
//
// Two implementations are provided: an in-memory log (the configuration
// used for the paper's throughput experiments, which "log commands to
// main memory") and a file-backed write-ahead log (FileLog) for real
// durability. FileLog supports three fsync policies (SyncMode): one
// fsync per append (SyncAlways), group commit — appends buffer and one
// covering Sync(), driven by the replica's event-loop batch turn,
// makes them all durable before the acknowledgements for them leave
// (SyncBatch) — or none (SyncOff). A failed fsync is unrecoverable by
// contract: the kernel may have dropped the unwritten pages, so
// callers must crash and re-open rather than ack on top of the log.
// FileLog repairs torn tails on Open by truncating to the last valid
// record (fuzz-verified at every byte offset in crash_test.go), and
// compacts itself through checkpoints (Checkpointer): a state-machine
// snapshot plus commit timestamp replaces every entry at or below it,
// bounding both recovery replay and catch-up transfer cost.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// Kind discriminates log entry kinds.
type Kind uint8

// Log entry kinds.
const (
	// KindPrepare is a 〈PREPARE cmd, ts〉 entry.
	KindPrepare Kind = iota + 1
	// KindCommit is a 〈COMMIT ts〉 commit mark.
	KindCommit
)

// String names the entry kind.
func (k Kind) String() string {
	switch k {
	case KindPrepare:
		return "PREPARE"
	case KindCommit:
		return "COMMIT"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Entry is one record of the stable log.
type Entry struct {
	Kind Kind
	TS   types.Timestamp
	// Cmd is set for KindPrepare entries only.
	Cmd types.Command
}

// Log is the stable storage abstraction shared by all protocols.
// Implementations must be safe for concurrent use.
type Log interface {
	// Append durably adds an entry at the tail of the log.
	Append(Entry) error
	// Len returns the number of entries.
	Len() int
	// Entries returns a copy of all entries in append order.
	Entries() []Entry
	// LastCommitTS returns the timestamp of the last COMMIT mark, or the
	// zero timestamp if none exists. Because commit marks are appended in
	// timestamp order, this is also the largest committed timestamp.
	LastCommitTS() types.Timestamp
	// CommandsAfter returns all PREPARE entries with timestamp strictly
	// greater than ts, sorted by timestamp (Alg. 3 line 9).
	CommandsAfter(ts types.Timestamp) []msg.TimestampedCommand
	// CommandsBetween returns all PREPARE entries with from < ts ≤ to,
	// sorted by timestamp (Alg. 3 line 30).
	CommandsBetween(from, to types.Timestamp) []msg.TimestampedCommand
	// HasPrepare reports whether a PREPARE entry with the given timestamp
	// exists (Alg. 3 line 17).
	HasPrepare(ts types.Timestamp) bool
	// RemovePrepares deletes every PREPARE entry with timestamp strictly
	// greater than ts that has no corresponding COMMIT mark (Alg. 3 line
	// 15: uncommitted means not executed).
	RemovePrepares(after types.Timestamp) error
	// Close releases any resources held by the log.
	Close() error
}

// MemLog is an in-memory Log. Appends are the replication hot path and
// cost one slice append; the query methods — used only by
// reconfiguration, state transfer and recovery — scan the log.
type MemLog struct {
	mu      sync.RWMutex
	entries []Entry
	lastCTS types.Timestamp

	checkpoint    Checkpoint
	hasCheckpoint bool
}

var _ Log = (*MemLog)(nil)

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog {
	return &MemLog{}
}

// Append implements Log.
func (l *MemLog) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.append(e)
	return nil
}

// append adds an entry while holding the lock.
func (l *MemLog) append(e Entry) {
	if e.Kind == KindCommit && l.lastCTS.Less(e.TS) {
		l.lastCTS = e.TS
	}
	l.entries = append(l.entries, e)
}

// Len implements Log.
func (l *MemLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Entries implements Log.
func (l *MemLog) Entries() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// LastCommitTS implements Log.
func (l *MemLog) LastCommitTS() types.Timestamp {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.lastCTS
}

// CommandsAfter implements Log.
func (l *MemLog) CommandsAfter(ts types.Timestamp) []msg.TimestampedCommand {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.collect(func(t types.Timestamp) bool { return ts.Less(t) })
}

// CommandsBetween implements Log.
func (l *MemLog) CommandsBetween(from, to types.Timestamp) []msg.TimestampedCommand {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.collect(func(t types.Timestamp) bool { return from.Less(t) && t.LessEq(to) })
}

// collect gathers PREPARE entries matching pred, sorted by timestamp,
// deduplicating repeated timestamps. Callers must hold at least a read
// lock.
func (l *MemLog) collect(pred func(types.Timestamp) bool) []msg.TimestampedCommand {
	var out []msg.TimestampedCommand
	seen := make(map[types.Timestamp]bool)
	for _, e := range l.entries {
		if e.Kind == KindPrepare && pred(e.TS) && !seen[e.TS] {
			seen[e.TS] = true
			out = append(out, msg.TimestampedCommand{TS: e.TS, Cmd: e.Cmd})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS.Less(out[j].TS) })
	return out
}

// HasPrepare implements Log.
func (l *MemLog) HasPrepare(ts types.Timestamp) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, e := range l.entries {
		if e.Kind == KindPrepare && e.TS == ts {
			return true
		}
	}
	return false
}

// RemovePrepares implements Log.
func (l *MemLog) RemovePrepares(after types.Timestamp) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removePrepares(after)
	return nil
}

// removePrepares rewrites the log without uncommitted PREPAREs newer than
// after. Callers must hold the write lock.
func (l *MemLog) removePrepares(after types.Timestamp) {
	committed := make(map[types.Timestamp]bool)
	for _, e := range l.entries {
		if e.Kind == KindCommit {
			committed[e.TS] = true
		}
	}
	kept := l.entries[:0]
	for _, e := range l.entries {
		if e.Kind == KindPrepare && after.Less(e.TS) && !committed[e.TS] {
			continue
		}
		kept = append(kept, e)
	}
	// Zero the tail so dropped commands can be collected.
	for i := len(kept); i < len(l.entries); i++ {
		l.entries[i] = Entry{}
	}
	l.entries = kept
}

// Close implements Log.
func (l *MemLog) Close() error { return nil }

// CommittedCommands replays a log per Section V-B: PREPARE entries are
// staged in a table indexed by timestamp; each COMMIT mark executes the
// matching command. It returns the committed commands in execution
// (timestamp) order, plus the PREPARE entries left without a COMMIT mark.
// Entries covered by a checkpoint are gone from the log; recovery
// restores the checkpoint first (see rsm.App) and replays only the tail
// this function returns.
func CommittedCommands(l Log) (committed []msg.TimestampedCommand, dangling []msg.TimestampedCommand) {
	staged := make(map[types.Timestamp]types.Command)
	for _, e := range l.Entries() {
		switch e.Kind {
		case KindPrepare:
			staged[e.TS] = e.Cmd
		case KindCommit:
			if cmd, ok := staged[e.TS]; ok {
				committed = append(committed, msg.TimestampedCommand{TS: e.TS, Cmd: cmd})
				delete(staged, e.TS)
			}
		}
	}
	for ts, cmd := range staged {
		dangling = append(dangling, msg.TimestampedCommand{TS: ts, Cmd: cmd})
	}
	sort.Slice(dangling, func(i, j int) bool { return dangling[i].TS.Less(dangling[j].TS) })
	// COMMIT marks are appended in timestamp order, so committed is
	// already sorted; sort anyway to be robust to corrupt logs.
	sort.Slice(committed, func(i, j int) bool { return committed[i].TS.Less(committed[j].TS) })
	return committed, dangling
}
