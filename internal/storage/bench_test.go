package storage

import (
	"path/filepath"
	"testing"

	"clockrsm/internal/types"
)

func benchEntry(i int, payload []byte) Entry {
	return Entry{
		Kind: KindPrepare,
		TS:   types.Timestamp{Wall: int64(i), Node: types.ReplicaID(i % 5)},
		Cmd: types.Command{
			ID:      types.CommandID{Origin: types.ReplicaID(i % 5), Seq: uint64(i)},
			Payload: payload,
		},
	}
}

func BenchmarkMemLogAppend(b *testing.B) {
	l := NewMemLog()
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(benchEntry(i, payload))
		// Periodic checkpoint keeps the benchmark steady-state, as the
		// protocols do in long runs.
		if i%100_000 == 99_999 {
			l.WriteCheckpoint(Checkpoint{TS: types.Timestamp{Wall: int64(i)}, State: nil})
		}
	}
}

func BenchmarkNullLogAppend(b *testing.B) {
	l := NewNullLog()
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(benchEntry(i, payload))
	}
}

func BenchmarkFileLogAppend(b *testing.B) {
	l, err := OpenFileLog(filepath.Join(b.TempDir(), "log.bin"), FileLogOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(benchEntry(i, payload))
	}
}

func BenchmarkCommittedCommandsReplay(b *testing.B) {
	l := NewMemLog()
	for i := 0; i < 10_000; i++ {
		e := benchEntry(i, []byte("v"))
		l.Append(e)
		l.Append(Entry{Kind: KindCommit, TS: e.TS})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		committed, _ := CommittedCommands(l)
		if len(committed) != 10_000 {
			b.Fatal("bad replay")
		}
	}
}
