package storage

import "os"

// Small wrappers so tests read naturally.

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

func writeFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }
