package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"clockrsm/internal/types"
)

// buildCrashFixture produces a log file exercising every record kind:
// a checkpoint record followed by PREPARE and COMMIT entries.
func buildCrashFixture(t *testing.T, path string) []byte {
	t.Helper()
	l, err := OpenFileLog(path, FileLogOptions{Mode: SyncAlways})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ts := func(w int64) types.Timestamp { return types.Timestamp{Wall: w, Node: 1} }
	for w := int64(1); w <= 4; w++ {
		mustAppend(t, l, Entry{Kind: KindPrepare, TS: ts(w), Cmd: types.Command{
			ID:      types.CommandID{Origin: 1, Seq: uint64(w)},
			Payload: []byte(fmt.Sprintf("cmd-%d", w)),
		}})
		mustAppend(t, l, Entry{Kind: KindCommit, TS: ts(w)})
	}
	if err := l.WriteCheckpoint(Checkpoint{TS: ts(2), State: []byte("state@2")}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for w := int64(5); w <= 7; w++ {
		mustAppend(t, l, Entry{Kind: KindPrepare, TS: ts(w), Cmd: types.Command{
			ID:      types.CommandID{Origin: 1, Seq: uint64(w)},
			Payload: []byte(fmt.Sprintf("cmd-%d", w)),
		}})
	}
	mustAppend(t, l, Entry{Kind: KindCommit, TS: ts(5)})
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	return data
}

func mustAppend(t *testing.T, l Log, e Entry) {
	t.Helper()
	if err := l.Append(e); err != nil {
		t.Fatalf("append: %v", err)
	}
}

// parseRecords splits a well-formed log file into its framed records
// (without length prefixes), independently of FileLog.load.
func parseRecords(t *testing.T, data []byte) [][]byte {
	t.Helper()
	if len(data) < 4 || [4]byte(data[:4]) != fileMagic {
		t.Fatalf("fixture missing magic header")
	}
	var recs [][]byte
	off := 4
	for off < len(data) {
		if off+4 > len(data) {
			t.Fatalf("fixture has torn length prefix at %d", off)
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if off+4+n > len(data) {
			t.Fatalf("fixture has torn record at %d", off)
		}
		recs = append(recs, data[off+4:off+4+n])
		off += 4 + n
	}
	return recs
}

// expectedState decodes the records that fit completely below cut,
// returning the entries and checkpoint a correct recovery must surface.
func expectedState(t *testing.T, recs [][]byte, cut int) (entries []Entry, cp Checkpoint, hasCP bool) {
	t.Helper()
	off := 4 // magic header
	if cut < off {
		return nil, Checkpoint{}, false
	}
	for _, rec := range recs {
		if off+4+len(rec) > cut {
			break
		}
		off += 4 + len(rec)
		if rec[0] == kindCheckpointRecord {
			c, err := decodeCheckpoint(rec)
			if err != nil {
				t.Fatalf("decode checkpoint: %v", err)
			}
			cp, hasCP = c, true
			continue
		}
		e, err := decodeEntry(rec)
		if err != nil {
			t.Fatalf("decode entry: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, cp, hasCP
}

// TestFileLogCrashPointFuzz truncates a valid log at every byte offset
// and asserts Open always recovers the longest clean prefix, that the
// log accepts appends afterward, and that a further reopen sees a
// consistent state. This models a crash at any instant during a
// sequential append workload.
func TestFileLogCrashPointFuzz(t *testing.T) {
	dir := t.TempDir()
	data := buildCrashFixture(t, filepath.Join(dir, "fixture"))
	recs := parseRecords(t, data)

	path := filepath.Join(dir, "log")
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: write: %v", cut, err)
		}
		l, err := OpenFileLog(path, FileLogOptions{Mode: SyncAlways})
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		wantEntries, wantCP, wantHasCP := expectedState(t, recs, cut)
		gotEntries := l.Entries()
		if len(gotEntries) != len(wantEntries) || (len(wantEntries) > 0 && !reflect.DeepEqual(gotEntries, wantEntries)) {
			t.Fatalf("cut %d: recovered %d entries, want %d", cut, len(gotEntries), len(wantEntries))
		}
		gotCP, gotHasCP := l.LastCheckpoint()
		if gotHasCP != wantHasCP || (wantHasCP && !reflect.DeepEqual(gotCP, wantCP)) {
			t.Fatalf("cut %d: checkpoint mismatch (has=%v want=%v)", cut, gotHasCP, wantHasCP)
		}
		// The log must be usable after recovery.
		extra := Entry{Kind: KindPrepare, TS: types.Timestamp{Wall: 100, Node: 2}, Cmd: types.Command{
			ID:      types.CommandID{Origin: 2, Seq: 999},
			Payload: []byte("post-crash"),
		}}
		mustAppend(t, l, extra)
		if err := l.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		// A reopen must see the recovered prefix plus the new append.
		l2, err := OpenFileLog(path, FileLogOptions{})
		if err != nil {
			t.Fatalf("cut %d: reopen failed: %v", cut, err)
		}
		got2 := l2.Entries()
		if len(got2) != len(wantEntries)+1 || !reflect.DeepEqual(got2[len(got2)-1], extra) {
			t.Fatalf("cut %d: reopen lost the post-recovery append (%d entries)", cut, len(got2))
		}
		l2.Close()
	}
}

// TestFileLogGroupCommit verifies SyncBatch semantics: appends buffer in
// user space and are invisible to a concurrent reader of the file (the
// crash image) until Sync, which covers them all with one fsync.
func TestFileLogGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, err := OpenFileLog(path, FileLogOptions{Mode: SyncBatch})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for w := int64(1); w <= 5; w++ {
		mustAppend(t, l, Entry{Kind: KindPrepare, TS: types.Timestamp{Wall: w, Node: 0}, Cmd: types.Command{
			ID: types.CommandID{Origin: 0, Seq: uint64(w)}, Payload: []byte("x"),
		}})
	}
	if st := l.Stats(); st.Syncs != 0 || st.Appends != 5 {
		t.Fatalf("before Sync: stats = %+v, want 5 appends and 0 syncs", st)
	}
	// The crash image (what a fresh open of the same path would see)
	// must be empty: nothing was flushed yet.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read image: %v", err)
	}
	if len(img) != len(fileMagic) {
		t.Fatalf("unsynced appends reached the file: %d bytes", len(img))
	}

	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	st := l.Stats()
	if st.Syncs != 1 || st.LastBatch != 5 || st.MaxBatch != 5 {
		t.Fatalf("after Sync: stats = %+v, want 1 sync covering 5", st)
	}
	// Sync on a clean log is a no-op.
	if err := l.Sync(); err != nil {
		t.Fatalf("idempotent sync: %v", err)
	}
	if st := l.Stats(); st.Syncs != 1 {
		t.Fatalf("clean Sync issued an fsync: %+v", st)
	}
	// A smaller second batch updates LastBatch but not MaxBatch.
	for w := int64(6); w <= 7; w++ {
		mustAppend(t, l, Entry{Kind: KindCommit, TS: types.Timestamp{Wall: w, Node: 0}})
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if st := l.Stats(); st.Syncs != 2 || st.LastBatch != 2 || st.MaxBatch != 5 {
		t.Fatalf("after second Sync: stats = %+v", st)
	}
	if l.Mode() != SyncBatch {
		t.Fatalf("mode = %v, want batch", l.Mode())
	}
	l.Close()

	// Everything synced must be durable across reopen.
	l2, err := OpenFileLog(path, FileLogOptions{Mode: SyncBatch})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.Len(); got != 7 {
		t.Fatalf("reopen recovered %d entries, want 7", got)
	}
}

// TestFileLogAlwaysCountsSyncs checks per-append fsync accounting.
func TestFileLogAlwaysCountsSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, err := OpenFileLog(path, FileLogOptions{Mode: SyncAlways})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for w := int64(1); w <= 3; w++ {
		mustAppend(t, l, Entry{Kind: KindCommit, TS: types.Timestamp{Wall: w, Node: 0}})
	}
	if st := l.Stats(); st.Appends != 3 || st.Syncs != 3 || st.MaxBatch != 1 {
		t.Fatalf("stats = %+v, want 3 appends / 3 syncs", st)
	}
	if l.Mode() != SyncAlways {
		t.Fatalf("mode = %v, want always", l.Mode())
	}
}

// TestParseSyncMode round-trips flag values.
func TestParseSyncMode(t *testing.T) {
	for _, want := range []SyncMode{SyncAlways, SyncBatch, SyncOff} {
		got, err := ParseSyncMode(want.String())
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Fatalf("ParseSyncMode accepted garbage")
	}
	// Legacy option mapping.
	dir := t.TempDir()
	l1, _ := OpenFileLog(filepath.Join(dir, "a"), FileLogOptions{Sync: true})
	l2, _ := OpenFileLog(filepath.Join(dir, "b"), FileLogOptions{})
	defer l1.Close()
	defer l2.Close()
	if l1.Mode() != SyncAlways || l2.Mode() != SyncOff {
		t.Fatalf("legacy mapping wrong: %v / %v", l1.Mode(), l2.Mode())
	}
}
