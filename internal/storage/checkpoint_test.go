package storage

import (
	"path/filepath"
	"testing"

	"clockrsm/internal/types"
)

func TestMemLogCheckpointCompacts(t *testing.T) {
	l := NewMemLog()
	l.Append(prepare(10, 0, "a"))
	l.Append(commit(10, 0))
	l.Append(prepare(20, 1, "b"))
	l.Append(commit(20, 1))
	l.Append(prepare(30, 2, "dangling"))

	if err := l.WriteCheckpoint(Checkpoint{TS: ts(20, 1), State: []byte("snap")}); err != nil {
		t.Fatal(err)
	}
	cp, ok := l.LastCheckpoint()
	if !ok || cp.TS != ts(20, 1) || string(cp.State) != "snap" {
		t.Fatalf("LastCheckpoint = %+v, %v", cp, ok)
	}
	// Entries ≤ checkpoint are gone, the dangling prepare survives.
	if l.HasPrepare(ts(10, 0)) || l.HasPrepare(ts(20, 1)) {
		t.Error("compacted entries still present")
	}
	if !l.HasPrepare(ts(30, 2)) {
		t.Error("entry above checkpoint was dropped")
	}
	// Commit frontier is preserved by the checkpoint.
	if got := l.LastCommitTS(); got != ts(20, 1) {
		t.Errorf("LastCommitTS = %v, want 20@r1", got)
	}
	// Appends continue normally.
	l.Append(commit(30, 2))
	if got := l.LastCommitTS(); got != ts(30, 2) {
		t.Errorf("LastCommitTS after append = %v", got)
	}
}

func TestNoCheckpointInitially(t *testing.T) {
	l := NewMemLog()
	if _, ok := l.LastCheckpoint(); ok {
		t.Error("fresh log has a checkpoint")
	}
}

func TestFileLogCheckpointSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.bin")
	l, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(prepare(10, 0, "a"))
	l.Append(commit(10, 0))
	if err := l.WriteCheckpoint(Checkpoint{TS: ts(10, 0), State: []byte("state-1")}); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint appends land after the checkpoint record.
	l.Append(prepare(20, 1, "b"))
	l.Append(commit(20, 1))
	l.Close()

	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	cp, ok := l2.LastCheckpoint()
	if !ok || cp.TS != ts(10, 0) || string(cp.State) != "state-1" {
		t.Fatalf("checkpoint after reopen = %+v, %v", cp, ok)
	}
	if l2.HasPrepare(ts(10, 0)) {
		t.Error("compacted entry reappeared after reopen")
	}
	if !l2.HasPrepare(ts(20, 1)) {
		t.Error("post-checkpoint entry lost")
	}
	committed, _ := CommittedCommands(l2)
	if len(committed) != 1 || committed[0].TS != ts(20, 1) {
		t.Errorf("tail replay = %+v", committed)
	}
}

func TestCheckpointShrinksBacking(t *testing.T) {
	l := NewMemLog()
	for i := int64(1); i <= 10_000; i++ {
		l.Append(prepare(i, 0, "x"))
		l.Append(commit(i, 0))
	}
	if err := l.WriteCheckpoint(Checkpoint{TS: ts(10_000, 0), State: []byte("s")}); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Errorf("Len after full compaction = %d", l.Len())
	}
	if cap(l.entries) > 1024 {
		t.Errorf("backing array not released: cap=%d", cap(l.entries))
	}
}

func TestNullLog(t *testing.T) {
	l := NewNullLog()
	if err := l.Append(prepare(10, 0, "a")); err != nil {
		t.Fatal(err)
	}
	l.Append(commit(10, 0))
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
	if got := l.LastCommitTS(); got != ts(10, 0) {
		t.Errorf("LastCommitTS = %v", got)
	}
	if l.Entries() != nil || l.HasPrepare(ts(10, 0)) {
		t.Error("NullLog retained entries")
	}
	if l.CommandsAfter(types.Timestamp{}) != nil {
		t.Error("NullLog returned commands")
	}
	if err := l.RemovePrepares(ts(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
