package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// fileMagic guards against opening a non-log file.
var fileMagic = [4]byte{'C', 'R', 'S', 'M'}

// kindCheckpointRecord tags a checkpoint record in the log file; it
// shares the record stream with Entry records (kinds 1 and 2).
const kindCheckpointRecord = 3

// encodeCheckpoint frames a checkpoint record.
func encodeCheckpoint(cp Checkpoint) []byte {
	b := make([]byte, 0, 17+len(cp.State))
	b = append(b, kindCheckpointRecord)
	b = binary.LittleEndian.AppendUint64(b, uint64(cp.TS.Wall))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(cp.TS.Node)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cp.State)))
	return append(b, cp.State...)
}

// decodeCheckpoint parses a checkpoint record.
func decodeCheckpoint(b []byte) (Checkpoint, error) {
	var cp Checkpoint
	if len(b) < 17 || b[0] != kindCheckpointRecord {
		return cp, errors.New("short checkpoint record")
	}
	cp.TS.Wall = int64(binary.LittleEndian.Uint64(b[1:9]))
	cp.TS.Node = types.ReplicaID(int32(binary.LittleEndian.Uint32(b[9:13])))
	n := binary.LittleEndian.Uint32(b[13:17])
	if uint64(len(b[17:])) != uint64(n) {
		return cp, errors.New("bad checkpoint state length")
	}
	cp.State = append([]byte(nil), b[17:]...)
	return cp, nil
}

// ErrCorruptLog is returned when a log file fails structural validation.
// A truncated final record (torn write) is repaired silently, matching
// standard write-ahead-log recovery behaviour.
var ErrCorruptLog = errors.New("storage: corrupt log file")

// SyncMode selects when a FileLog forces appended records to stable
// storage.
type SyncMode int

const (
	// SyncDefault derives the mode from the legacy Sync flag: true maps
	// to SyncAlways, false to SyncOff.
	SyncDefault SyncMode = iota
	// SyncAlways fsyncs after every append: maximum durability, one disk
	// flush per log record.
	SyncAlways
	// SyncBatch buffers appends and fsyncs only at Sync() — group
	// commit. The caller decides where the durability barrier sits (the
	// replica core places it at the end of each event-loop batch, before
	// any protocol message acknowledging the appends leaves the node).
	SyncBatch
	// SyncOff never fsyncs; records reach the OS on every append but
	// survive only process crashes, not machine crashes.
	SyncOff
)

// String names the mode as accepted by ParseSyncMode.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncOff:
		return "off"
	default:
		return "default"
	}
}

// ParseSyncMode parses "always", "batch" or "off" (the kvserver -fsync
// flag values).
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "off":
		return SyncOff, nil
	default:
		return SyncDefault, fmt.Errorf("unknown fsync mode %q (want always, batch or off)", s)
	}
}

// Syncer is implemented by logs that support group commit: Append
// buffers, Sync makes everything appended so far durable. The replica
// core detects this interface and calls Sync before releasing any
// protocol message that acknowledges the buffered appends.
type Syncer interface {
	Sync() error
}

// LogStats counts WAL activity, in the style of transport.WireStats.
type LogStats struct {
	// Appends is the number of records appended.
	Appends uint64
	// Syncs is the number of fsyncs issued (per-append in SyncAlways,
	// per-barrier in SyncBatch, plus one per atomic rewrite).
	Syncs uint64
	// LastBatch and MaxBatch are the number of appends covered by the
	// most recent / largest single group-commit fsync.
	LastBatch uint64
	MaxBatch  uint64
}

// StatsReporter is implemented by logs that expose WAL counters.
type StatsReporter interface {
	Stats() LogStats
	// Mode reports the effective sync mode.
	Mode() SyncMode
}

// FileLog is a file-backed Log. Entries are kept in an in-memory MemLog
// for queries; Append writes a framed record to the file before updating
// memory, so a crash never loses an acknowledged entry (in SyncAlways
// mode, or after the covering Sync in SyncBatch mode) and recovery reads
// the file back.
type FileLog struct {
	mu   sync.Mutex
	mem  *MemLog
	f    *os.File
	w    *bufio.Writer
	mode SyncMode
	path string

	// dirty counts appends not yet covered by an fsync (SyncBatch mode).
	dirty uint64
	stats LogStats
}

var (
	_ Log           = (*FileLog)(nil)
	_ Syncer        = (*FileLog)(nil)
	_ StatsReporter = (*FileLog)(nil)
)

// FileLogOptions configure OpenFileLog.
type FileLogOptions struct {
	// Sync forces an fsync after every append. Deprecated shorthand for
	// Mode: SyncAlways; consulted only when Mode is SyncDefault.
	Sync bool
	// Mode selects the fsync policy. SyncDefault falls back to the Sync
	// flag (true → SyncAlways, false → SyncOff).
	Mode SyncMode
}

// OpenFileLog opens (or creates) the log file at path and loads all
// complete records. A truncated tail record is discarded.
func OpenFileLog(path string, opts FileLogOptions) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open log: %w", err)
	}
	mode := opts.Mode
	if mode == SyncDefault {
		if opts.Sync {
			mode = SyncAlways
		} else {
			mode = SyncOff
		}
	}
	l := &FileLog{mem: NewMemLog(), f: f, mode: mode, path: path}
	validLen, err := l.load()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop a torn tail, then position for appends.
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	l.w = bufio.NewWriter(f)
	return l, nil
}

// load reads all complete records, returning the byte offset of the last
// complete record's end.
func (l *FileLog) load() (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReader(l.f)
	var off int64

	var magic [4]byte
	n, err := io.ReadFull(r, magic[:])
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		// Empty file, or a header torn by a crash during creation:
		// rewrite it from scratch.
		if err := l.f.Truncate(0); err != nil {
			return 0, err
		}
		if _, err := l.f.Seek(0, io.SeekStart); err != nil {
			return 0, err
		}
		if _, err := l.f.Write(fileMagic[:]); err != nil {
			return 0, err
		}
		return int64(len(fileMagic)), nil
	}
	if err != nil {
		return 0, fmt.Errorf("%w: short header", ErrCorruptLog)
	}
	if magic != fileMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorruptLog)
	}
	off += int64(n)

	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return off, nil // clean EOF or torn length prefix
		}
		recLen := binary.LittleEndian.Uint32(lenBuf[:])
		rec := make([]byte, recLen)
		if _, err := io.ReadFull(r, rec); err != nil {
			return off, nil // torn record: stop before it
		}
		if len(rec) > 0 && rec[0] == kindCheckpointRecord {
			cp, err := decodeCheckpoint(rec)
			if err != nil {
				return off, fmt.Errorf("%w: checkpoint at %d: %v", ErrCorruptLog, off, err)
			}
			l.mem.writeCheckpoint(cp)
			off += 4 + int64(recLen)
			continue
		}
		e, err := decodeEntry(rec)
		if err != nil {
			return off, fmt.Errorf("%w: record at %d: %v", ErrCorruptLog, off, err)
		}
		l.mem.append(e)
		off += 4 + int64(recLen)
	}
}

// encodeEntry frames one entry: kind, timestamp, and (for PREPARE) the
// command.
func encodeEntry(e Entry) []byte {
	b := make([]byte, 0, 32+len(e.Cmd.Payload))
	b = append(b, byte(e.Kind))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.TS.Wall))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(e.TS.Node)))
	if e.Kind == KindPrepare {
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(e.Cmd.ID.Origin)))
		b = binary.LittleEndian.AppendUint64(b, e.Cmd.ID.Seq)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Cmd.Payload)))
		b = append(b, e.Cmd.Payload...)
	}
	return b
}

// decodeEntry parses a framed entry.
func decodeEntry(b []byte) (Entry, error) {
	var e Entry
	if len(b) < 13 {
		return e, errors.New("short entry")
	}
	e.Kind = Kind(b[0])
	e.TS.Wall = int64(binary.LittleEndian.Uint64(b[1:9]))
	e.TS.Node = types.ReplicaID(int32(binary.LittleEndian.Uint32(b[9:13])))
	rest := b[13:]
	switch e.Kind {
	case KindCommit:
		if len(rest) != 0 {
			return e, errors.New("trailing bytes in COMMIT entry")
		}
	case KindPrepare:
		if len(rest) < 16 {
			return e, errors.New("short PREPARE entry")
		}
		e.Cmd.ID.Origin = types.ReplicaID(int32(binary.LittleEndian.Uint32(rest[0:4])))
		e.Cmd.ID.Seq = binary.LittleEndian.Uint64(rest[4:12])
		n := binary.LittleEndian.Uint32(rest[12:16])
		if uint64(len(rest[16:])) != uint64(n) {
			return e, errors.New("bad payload length")
		}
		e.Cmd.Payload = make([]byte, n)
		copy(e.Cmd.Payload, rest[16:])
	default:
		return e, fmt.Errorf("unknown entry kind %d", b[0])
	}
	return e, nil
}

// Append implements Log. In SyncAlways mode the record is flushed and
// fsynced before Append returns; in SyncBatch mode it is buffered until
// the next Sync (group commit); in SyncOff mode it is flushed to the OS
// but never fsynced.
func (l *FileLog) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := encodeEntry(e)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(rec)))
	if _, err := l.w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("append log: %w", err)
	}
	if _, err := l.w.Write(rec); err != nil {
		return fmt.Errorf("append log: %w", err)
	}
	l.stats.Appends++
	switch l.mode {
	case SyncBatch:
		// Leave the record in the bufio buffer; the covering fsync —
		// and even the write syscall — happen at Sync.
		l.dirty++
	case SyncAlways:
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("flush log: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("sync log: %w", err)
		}
		l.stats.Syncs++
		l.stats.LastBatch = 1
		if l.stats.MaxBatch < 1 {
			l.stats.MaxBatch = 1
		}
	default: // SyncOff
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("flush log: %w", err)
		}
	}
	return l.mem.Append(e)
}

// Sync implements Syncer: in SyncBatch mode it flushes and fsyncs all
// appends since the previous Sync (one disk flush covering the whole
// batch). In the other modes — where Append already provides the
// configured durability — it is a no-op. A clean log is also a no-op, so
// callers may invoke it unconditionally as a barrier.
func (l *FileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// syncLocked is Sync with l.mu held.
func (l *FileLog) syncLocked() error {
	if l.mode != SyncBatch || l.dirty == 0 {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("flush log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("sync log: %w", err)
	}
	l.stats.Syncs++
	l.stats.LastBatch = l.dirty
	if l.stats.MaxBatch < l.dirty {
		l.stats.MaxBatch = l.dirty
	}
	l.dirty = 0
	return nil
}

// Stats implements StatsReporter.
func (l *FileLog) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Mode implements StatsReporter.
func (l *FileLog) Mode() SyncMode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mode
}

// Len implements Log.
func (l *FileLog) Len() int { return l.mem.Len() }

// Entries implements Log.
func (l *FileLog) Entries() []Entry { return l.mem.Entries() }

// LastCommitTS implements Log.
func (l *FileLog) LastCommitTS() types.Timestamp { return l.mem.LastCommitTS() }

// CommandsAfter implements Log.
func (l *FileLog) CommandsAfter(ts types.Timestamp) []msg.TimestampedCommand {
	return l.mem.CommandsAfter(ts)
}

// CommandsBetween implements Log.
func (l *FileLog) CommandsBetween(from, to types.Timestamp) []msg.TimestampedCommand {
	return l.mem.CommandsBetween(from, to)
}

// HasPrepare implements Log.
func (l *FileLog) HasPrepare(ts types.Timestamp) bool { return l.mem.HasPrepare(ts) }

// RemovePrepares implements Log. The file is rewritten atomically via a
// temporary file so a crash mid-rewrite preserves the old log.
func (l *FileLog) RemovePrepares(after types.Timestamp) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.mem.RemovePrepares(after); err != nil {
		return err
	}
	return l.rewrite()
}

// WriteCheckpoint implements Checkpointer: the file is rewritten as
// magic | checkpoint | surviving entries.
func (l *FileLog) WriteCheckpoint(cp Checkpoint) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.mem.WriteCheckpoint(cp); err != nil {
		return err
	}
	return l.rewrite()
}

// LastCheckpoint implements Checkpointer.
func (l *FileLog) LastCheckpoint() (Checkpoint, bool) {
	return l.mem.LastCheckpoint()
}

// writeRecord frames one record onto w.
func writeRecord(w *bufio.Writer, rec []byte) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(rec)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(rec)
	return err
}

// rewrite atomically replaces the file with the current in-memory state
// (checkpoint, if any, followed by all entries). Callers hold the lock.
func (l *FileLog) rewrite() error {
	tmp := l.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("rewrite log: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(fileMagic[:]); err != nil {
		f.Close()
		return err
	}
	if cp, ok := l.mem.LastCheckpoint(); ok {
		if err := writeRecord(w, encodeCheckpoint(cp)); err != nil {
			f.Close()
			return err
		}
	}
	for _, e := range l.mem.Entries() {
		if err := writeRecord(w, encodeEntry(e)); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("rewrite log: %w", err)
	}
	// Reopen for appends.
	if err := l.f.Close(); err != nil {
		return err
	}
	nf, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return err
	}
	l.f = nf
	l.w = bufio.NewWriter(nf)
	// The rewritten file was fsynced and carries every append, including
	// any that were still buffered: the log is clean.
	l.stats.Syncs++
	if l.stats.LastBatch = l.dirty; l.dirty > 0 {
		if l.stats.MaxBatch < l.dirty {
			l.stats.MaxBatch = l.dirty
		}
	}
	l.dirty = 0
	return nil
}

// Close implements Log. Buffered appends are flushed to the OS but not
// fsynced; a process that needs the group-commit guarantee must Sync
// before Close.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
