package msg

import (
	"fmt"
	"testing"

	"clockrsm/internal/types"
)

func benchPrepare(size int) *Prepare {
	return &Prepare{
		Epoch: 1,
		TS:    types.Timestamp{Wall: 123456789012, Node: 3},
		Cmd: types.Command{
			ID:      types.CommandID{Origin: 3, Seq: 42},
			Payload: make([]byte, size),
		},
	}
}

func BenchmarkEncodePrepare(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			m := benchPrepare(size)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Encode(m)
			}
		})
	}
}

func BenchmarkDecodePrepare(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			wire := Encode(benchPrepare(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncodePrepareOK(b *testing.B) {
	m := &PrepareOK{Epoch: 1, TS: types.Timestamp{Wall: 99, Node: 2}, ClockTS: 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkRoundTripRetrieveReply(b *testing.B) {
	cmds := make([]TimestampedCommand, 64)
	for i := range cmds {
		cmds[i] = TimestampedCommand{
			TS:  types.Timestamp{Wall: int64(i), Node: types.ReplicaID(i % 5)},
			Cmd: types.Command{ID: types.CommandID{Origin: 0, Seq: uint64(i)}, Payload: make([]byte, 64)},
		}
	}
	m := &RetrieveReply{Seq: 1, Cmds: cmds}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(Encode(m)); err != nil {
			b.Fatal(err)
		}
	}
}
