package msg

import "encoding/binary"

// Batch packs several messages from one sender into a single wire
// frame: one length prefix, one type byte and one transport frame
// instead of N. Senders use it to coalesce bursts — e.g. the PREPAREOKs
// a Clock-RSM replica produces while draining one event-loop batch —
// so the per-message framing, queueing and syscall overhead is paid
// once per burst. Receivers process the packed messages in order, as if
// they had arrived back-to-back on the same FIFO link, so a Batch never
// weakens the per-sender ordering guarantees the protocols rely on.
//
// Batches must not nest: the decoder rejects a TBatch entry inside a
// Batch, bounding decode recursion at one level.
type Batch struct {
	Msgs []Message

	// rec backs this batch when it came from DecodeRecycled; see Recycle.
	rec *Record
}

var _ Message = (*Batch)(nil)

// Type implements Message.
func (*Batch) Type() Type { return TBatch }

// Wire format: [count u32] then per message [len u32 | type byte | body].
func (m *Batch) appendTo(b []byte) []byte {
	b = putU32(b, uint32(len(m.Msgs)))
	for _, sub := range m.Msgs {
		// Reserve the length prefix, encode in place, then backfill it:
		// this keeps encoding single-pass and allocation-free.
		off := len(b)
		b = append(b, 0, 0, 0, 0)
		b = EncodeTo(b, sub)
		binary.LittleEndian.PutUint32(b[off:off+4], uint32(len(b)-off-4))
	}
	return b
}

func (m *Batch) decode(b []byte, rec *Record) ([]byte, error) {
	n, b, err := getU32(b)
	if err != nil {
		return nil, err
	}
	var msgs []Message
	if rec != nil {
		// Record-backed decode: the entry slice (and the hot entries
		// themselves) come from the record's slabs, grow-only across
		// reuses, so a warm record decodes the whole batch without
		// allocating.
		msgs = rec.msgs[:0]
	} else {
		// Each entry occupies at least 5 bytes on the wire; bound the
		// pre-allocation so a corrupt count cannot trigger a huge
		// allocation.
		capHint := int(n)
		if maxEntries := len(b)/5 + 1; capHint > maxEntries {
			capHint = maxEntries
		}
		msgs = make([]Message, 0, capHint)
	}
	for i := uint32(0); i < n; i++ {
		l, rest, err := getU32(b)
		if err != nil {
			return nil, err
		}
		if l == 0 || l > MaxFrame || uint64(len(rest)) < uint64(l) {
			return nil, ErrTruncated
		}
		if Type(rest[0]) == TBatch {
			return nil, ErrNestedBatch
		}
		sub, err := decodeFrame(rest[:l], rec)
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, sub)
		b = rest[l:]
	}
	m.Msgs = msgs
	if rec != nil {
		rec.msgs = msgs
	}
	return b, nil
}
