// Package msg defines the wire messages of every replication protocol in
// this repository (Clock-RSM, Multi-Paxos, Mencius, the reconfiguration
// protocol and its consensus primitive) together with a compact binary
// codec used by the TCP transport. The in-process transports pass Message
// values directly and never serialize.
package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"clockrsm/internal/types"
)

// MaxFrame bounds any single wire frame and any length-prefixed field
// inside one (64 MiB). The TCP transport enforces the same limit on
// incoming frames; the decoder re-checks it so a corrupt 4-byte length
// prefix can never drive a multi-GiB allocation.
const MaxFrame = 64 << 20

// Type discriminates the concrete message kind on the wire.
type Type uint8

// Wire message types.
const (
	// Clock-RSM (Algorithm 1 and 2).
	TPrepare Type = iota + 1
	TPrepareOK
	TClockTime
	// Multi-Paxos / Paxos-bcast.
	TForward
	TAccept
	TAccepted
	TCommit
	// Mencius / Mencius-bcast.
	TMAccept
	TMAccepted
	TMCommit
	// Reconfiguration (Algorithm 3).
	TSuspend
	TSuspendOK
	TRetrieveCmds
	TRetrieveReply
	// Single-decree Paxos consensus primitive.
	TP1a
	TP1b
	TP2a
	TP2b
	TLearn
	// Container frame packing several messages from one sender.
	TBatch
	// Clock-RSM idle-read nudge (Section IV latency floor): a replica
	// with a parked linearizable read asks its peers for an immediate
	// CLOCKTIME instead of waiting out the rest of Δ. Appended after
	// TBatch so every pre-existing wire value is unchanged.
	TClockReq
	maxType
)

var typeNames = map[Type]string{
	TPrepare: "PREPARE", TPrepareOK: "PREPAREOK", TClockTime: "CLOCKTIME",
	TForward: "FORWARD", TAccept: "ACCEPT", TAccepted: "ACCEPTED", TCommit: "COMMIT",
	TMAccept: "MACCEPT", TMAccepted: "MACCEPTED", TMCommit: "MCOMMIT",
	TSuspend: "SUSPEND", TSuspendOK: "SUSPENDOK",
	TRetrieveCmds: "RETRIEVECMDS", TRetrieveReply: "RETRIEVEREPLY",
	TP1a: "P1A", TP1b: "P1B", TP2a: "P2A", TP2b: "P2B", TLearn: "LEARN",
	TBatch: "BATCH", TClockReq: "CLOCKREQ",
}

// String returns the paper's message name.
func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Message is implemented by every wire message.
type Message interface {
	// Type identifies the concrete message kind.
	Type() Type
	// appendTo serializes the message body (without the type byte).
	appendTo(b []byte) []byte
	// decode parses the message body, returning the remaining bytes.
	// rec, when non-nil, is the pooled record backing this decode; only
	// the steady-state hot types use it (their payloads then live in the
	// record's arena), every other type ignores it and owns its memory.
	decode(b []byte, rec *Record) ([]byte, error)
}

// Errors surfaced by the codec.
var (
	ErrTruncated   = errors.New("msg: truncated message")
	ErrUnknownType = errors.New("msg: unknown message type")
	ErrTrailing    = errors.New("msg: trailing bytes after message")
	ErrNestedBatch = errors.New("msg: batch nested inside batch")
)

// Encode serializes m as [type byte | body] into a fresh buffer.
// Hot paths should prefer EncodeTo with a reused or pooled buffer.
func Encode(m Message) []byte {
	return EncodeTo(make([]byte, 0, 64), m)
}

// EncodeTo appends the serialization of m ([type byte | body]) to buf
// and returns the extended slice. With a buffer of sufficient capacity
// (e.g. one obtained from GetBuf and reused across calls) encoding
// performs zero heap allocations.
func EncodeTo(buf []byte, m Message) []byte {
	buf = append(buf, byte(m.Type()))
	return m.appendTo(buf)
}

// Buf is a pooled, reusable encode buffer. Callers append into B
// (typically via EncodeTo(b.B[:0], m), storing the result back into B so
// growth is retained) and return the Buf with PutBuf once the encoded
// bytes are no longer referenced.
type Buf struct{ B []byte }

var bufPool = sync.Pool{
	New: func() any { return &Buf{B: make([]byte, 0, 512)} },
}

// GetBuf returns a pooled encode buffer with zero length.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// PutBuf returns b to the pool. The caller must not retain b.B.
func PutBuf(b *Buf) {
	if cap(b.B) > MaxFrame {
		// Don't let one huge message pin a giant buffer in the pool.
		b.B = make([]byte, 0, 512)
	}
	bufPool.Put(b)
}

// Decode parses a message produced by Encode. It rejects trailing
// bytes. The returned message owns its memory; hot receive paths prefer
// DecodeRecycled, which backs the steady-state types with pooled
// storage.
func Decode(b []byte) (Message, error) {
	return decodeFrame(b, nil)
}

// decodeFrame parses one frame; rec, when non-nil, backs the hot
// message types with pooled storage.
func decodeFrame(b []byte, rec *Record) (Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	m, err := newMessage(Type(b[0]), rec)
	if err != nil {
		return nil, err
	}
	rest, err := m.decode(b[1:], rec)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailing
	}
	return m, nil
}

// newMessage allocates an empty message of the given type — from rec's
// typed slabs for the hot types when rec is non-nil, from the heap
// otherwise.
func newMessage(t Type, rec *Record) (Message, error) {
	switch t {
	case TPrepare:
		if rec != nil {
			return rec.newPrepare(), nil
		}
		return &Prepare{}, nil
	case TPrepareOK:
		if rec != nil {
			return rec.newPrepareOK(), nil
		}
		return &PrepareOK{}, nil
	case TClockTime:
		if rec != nil {
			return rec.newClockTime(), nil
		}
		return &ClockTime{}, nil
	case TForward:
		return &Forward{}, nil
	case TAccept:
		return &Accept{}, nil
	case TAccepted:
		return &Accepted{}, nil
	case TCommit:
		return &Commit{}, nil
	case TMAccept:
		return &MAccept{}, nil
	case TMAccepted:
		return &MAccepted{}, nil
	case TMCommit:
		return &MCommit{}, nil
	case TSuspend:
		return &Suspend{}, nil
	case TSuspendOK:
		return &SuspendOK{}, nil
	case TRetrieveCmds:
		return &RetrieveCmds{}, nil
	case TRetrieveReply:
		return &RetrieveReply{}, nil
	case TP1a:
		return &P1a{}, nil
	case TP1b:
		return &P1b{}, nil
	case TP2a:
		return &P2a{}, nil
	case TP2b:
		return &P2b{}, nil
	case TLearn:
		return &Learn{}, nil
	case TClockReq:
		return &ClockReq{}, nil
	case TBatch:
		if rec != nil {
			// Batches cannot nest, so the record's single embedded Batch
			// is always free here.
			return &rec.batch, nil
		}
		return &Batch{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(t))
	}
}

// --- primitive encoding helpers (little-endian, fixed width) ---

func putU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func putI64(b []byte, v int64) []byte {
	return putU64(b, uint64(v))
}

func putU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func putBytes(b, p []byte) []byte {
	if len(p) > math.MaxUint32 {
		// Commands are client payloads capped far below 4 GiB in practice;
		// truncating here would corrupt state, so refuse at encode time.
		panic("msg: payload exceeds 4GiB")
	}
	b = putU32(b, uint32(len(p)))
	return append(b, p...)
}

func putTS(b []byte, ts types.Timestamp) []byte {
	b = putI64(b, ts.Wall)
	return putU32(b, uint32(int32(ts.Node)))
}

func putCmd(b []byte, c types.Command) []byte {
	b = putU32(b, uint32(int32(c.ID.Origin)))
	b = putU64(b, c.ID.Seq)
	return putBytes(b, c.Payload)
}

func getU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func getI64(b []byte) (int64, []byte, error) {
	v, rest, err := getU64(b)
	return int64(v), rest, err
}

func getU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, ErrTruncated
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func getBytes(b []byte, rec *Record) ([]byte, []byte, error) {
	n, b, err := getU32(b)
	if err != nil {
		return nil, nil, err
	}
	// Both checks must precede the allocation: the remaining-buffer check
	// catches truncation, the absolute cap catches corrupt lengths on
	// inputs that are not themselves frame-size-bounded.
	if n > MaxFrame || uint64(len(b)) < uint64(n) {
		return nil, nil, ErrTruncated
	}
	if rec != nil {
		// Hot-path decode: the copy lives in the record's arena and is
		// reclaimed wholesale when the record is recycled.
		return rec.bytes(b[:n]), b[n:], nil
	}
	p := make([]byte, n)
	copy(p, b[:n])
	return p, b[n:], nil
}

func getTS(b []byte) (types.Timestamp, []byte, error) {
	wall, b, err := getI64(b)
	if err != nil {
		return types.Timestamp{}, nil, err
	}
	node, b, err := getU32(b)
	if err != nil {
		return types.Timestamp{}, nil, err
	}
	return types.Timestamp{Wall: wall, Node: types.ReplicaID(int32(node))}, b, nil
}

func getCmd(b []byte, rec *Record) (types.Command, []byte, error) {
	origin, b, err := getU32(b)
	if err != nil {
		return types.Command{}, nil, err
	}
	seq, b, err := getU64(b)
	if err != nil {
		return types.Command{}, nil, err
	}
	payload, b, err := getBytes(b, rec)
	if err != nil {
		return types.Command{}, nil, err
	}
	return types.Command{
		ID:      types.CommandID{Origin: types.ReplicaID(int32(origin)), Seq: seq},
		Payload: payload,
	}, b, nil
}
