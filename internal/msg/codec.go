// Package msg defines the wire messages of every replication protocol in
// this repository (Clock-RSM, Multi-Paxos, Mencius, the reconfiguration
// protocol and its consensus primitive) together with a compact binary
// codec used by the TCP transport. The in-process transports pass Message
// values directly and never serialize.
package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"clockrsm/internal/types"
)

// Type discriminates the concrete message kind on the wire.
type Type uint8

// Wire message types.
const (
	// Clock-RSM (Algorithm 1 and 2).
	TPrepare Type = iota + 1
	TPrepareOK
	TClockTime
	// Multi-Paxos / Paxos-bcast.
	TForward
	TAccept
	TAccepted
	TCommit
	// Mencius / Mencius-bcast.
	TMAccept
	TMAccepted
	TMCommit
	// Reconfiguration (Algorithm 3).
	TSuspend
	TSuspendOK
	TRetrieveCmds
	TRetrieveReply
	// Single-decree Paxos consensus primitive.
	TP1a
	TP1b
	TP2a
	TP2b
	TLearn
	maxType
)

var typeNames = map[Type]string{
	TPrepare: "PREPARE", TPrepareOK: "PREPAREOK", TClockTime: "CLOCKTIME",
	TForward: "FORWARD", TAccept: "ACCEPT", TAccepted: "ACCEPTED", TCommit: "COMMIT",
	TMAccept: "MACCEPT", TMAccepted: "MACCEPTED", TMCommit: "MCOMMIT",
	TSuspend: "SUSPEND", TSuspendOK: "SUSPENDOK",
	TRetrieveCmds: "RETRIEVECMDS", TRetrieveReply: "RETRIEVEREPLY",
	TP1a: "P1A", TP1b: "P1B", TP2a: "P2A", TP2b: "P2B", TLearn: "LEARN",
}

// String returns the paper's message name.
func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Message is implemented by every wire message.
type Message interface {
	// Type identifies the concrete message kind.
	Type() Type
	// appendTo serializes the message body (without the type byte).
	appendTo(b []byte) []byte
	// decode parses the message body, returning the remaining bytes.
	decode(b []byte) ([]byte, error)
}

// Errors surfaced by the codec.
var (
	ErrTruncated   = errors.New("msg: truncated message")
	ErrUnknownType = errors.New("msg: unknown message type")
	ErrTrailing    = errors.New("msg: trailing bytes after message")
)

// Encode serializes m as [type byte | body].
func Encode(m Message) []byte {
	b := make([]byte, 1, 64)
	b[0] = byte(m.Type())
	return m.appendTo(b)
}

// Decode parses a message produced by Encode. It rejects trailing bytes.
func Decode(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	m, err := newMessage(Type(b[0]))
	if err != nil {
		return nil, err
	}
	rest, err := m.decode(b[1:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailing
	}
	return m, nil
}

// newMessage allocates an empty message of the given type.
func newMessage(t Type) (Message, error) {
	switch t {
	case TPrepare:
		return &Prepare{}, nil
	case TPrepareOK:
		return &PrepareOK{}, nil
	case TClockTime:
		return &ClockTime{}, nil
	case TForward:
		return &Forward{}, nil
	case TAccept:
		return &Accept{}, nil
	case TAccepted:
		return &Accepted{}, nil
	case TCommit:
		return &Commit{}, nil
	case TMAccept:
		return &MAccept{}, nil
	case TMAccepted:
		return &MAccepted{}, nil
	case TMCommit:
		return &MCommit{}, nil
	case TSuspend:
		return &Suspend{}, nil
	case TSuspendOK:
		return &SuspendOK{}, nil
	case TRetrieveCmds:
		return &RetrieveCmds{}, nil
	case TRetrieveReply:
		return &RetrieveReply{}, nil
	case TP1a:
		return &P1a{}, nil
	case TP1b:
		return &P1b{}, nil
	case TP2a:
		return &P2a{}, nil
	case TP2b:
		return &P2b{}, nil
	case TLearn:
		return &Learn{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(t))
	}
}

// --- primitive encoding helpers (little-endian, fixed width) ---

func putU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func putI64(b []byte, v int64) []byte {
	return putU64(b, uint64(v))
}

func putU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func putBytes(b, p []byte) []byte {
	if len(p) > math.MaxUint32 {
		// Commands are client payloads capped far below 4 GiB in practice;
		// truncating here would corrupt state, so refuse at encode time.
		panic("msg: payload exceeds 4GiB")
	}
	b = putU32(b, uint32(len(p)))
	return append(b, p...)
}

func putTS(b []byte, ts types.Timestamp) []byte {
	b = putI64(b, ts.Wall)
	return putU32(b, uint32(int32(ts.Node)))
}

func putCmd(b []byte, c types.Command) []byte {
	b = putU32(b, uint32(int32(c.ID.Origin)))
	b = putU64(b, c.ID.Seq)
	return putBytes(b, c.Payload)
}

func getU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func getI64(b []byte) (int64, []byte, error) {
	v, rest, err := getU64(b)
	return int64(v), rest, err
}

func getU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, ErrTruncated
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func getBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := getU32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(b)) < uint64(n) {
		return nil, nil, ErrTruncated
	}
	p := make([]byte, n)
	copy(p, b[:n])
	return p, b[n:], nil
}

func getTS(b []byte) (types.Timestamp, []byte, error) {
	wall, b, err := getI64(b)
	if err != nil {
		return types.Timestamp{}, nil, err
	}
	node, b, err := getU32(b)
	if err != nil {
		return types.Timestamp{}, nil, err
	}
	return types.Timestamp{Wall: wall, Node: types.ReplicaID(int32(node))}, b, nil
}

func getCmd(b []byte) (types.Command, []byte, error) {
	origin, b, err := getU32(b)
	if err != nil {
		return types.Command{}, nil, err
	}
	seq, b, err := getU64(b)
	if err != nil {
		return types.Command{}, nil, err
	}
	payload, b, err := getBytes(b)
	if err != nil {
		return types.Command{}, nil, err
	}
	return types.Command{
		ID:      types.CommandID{Origin: types.ReplicaID(int32(origin)), Seq: seq},
		Payload: payload,
	}, b, nil
}
