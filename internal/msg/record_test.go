package msg

import (
	"bytes"
	"fmt"
	"testing"

	"clockrsm/internal/types"
)

// reEncode serializes m for comparison. Record-backed and heap-backed
// decodes of the same frame differ in their unexported rec back-pointer,
// so equivalence checks compare wire bytes, not struct values.
func reEncode(t testing.TB, m Message) []byte {
	t.Helper()
	return Encode(m)
}

// TestDecodeRecycledMatchesDecode checks, for every message type, that
// DecodeRecycled accepts exactly what Decode accepts and produces a
// message that re-encodes to the same bytes.
func TestDecodeRecycledMatchesDecode(t *testing.T) {
	for _, m := range append(sampleMessages(), sampleBatch()) {
		wire := Encode(m)
		want, err := Decode(wire)
		if err != nil {
			t.Fatalf("%v: Decode: %v", m.Type(), err)
		}
		got, err := DecodeRecycled(wire)
		if err != nil {
			t.Fatalf("%v: DecodeRecycled: %v", m.Type(), err)
		}
		if !bytes.Equal(reEncode(t, want), reEncode(t, got)) {
			t.Errorf("%v: DecodeRecycled result re-encodes differently", m.Type())
		}
		Recycle(got)
	}
}

// TestDecodeRecycledDirtyRecord decodes a large frame to dirty the
// pooled record, recycles it, then checks that decoding a different
// frame into the now-dirty record yields exactly what a fresh heap
// decode yields. This is the reuse-correctness property the pool relies
// on: no state may leak between consecutive decodes.
func TestDecodeRecycledDirtyRecord(t *testing.T) {
	big := &Batch{}
	for i := 0; i < 32; i++ {
		big.Msgs = append(big.Msgs, &Prepare{
			Epoch: 9,
			TS:    types.Timestamp{Wall: int64(1000 + i), Node: 4},
			Cmd: types.Command{
				ID:      types.CommandID{Origin: 4, Seq: uint64(i)},
				Payload: bytes.Repeat([]byte{0xAB}, 200),
			},
		})
	}
	dirty, err := DecodeRecycled(Encode(big))
	if err != nil {
		t.Fatal(err)
	}
	Recycle(dirty)

	for _, m := range append(sampleMessages(), sampleBatch()) {
		wire := Encode(m)
		fresh, err := Decode(wire)
		if err != nil {
			t.Fatalf("%v: Decode: %v", m.Type(), err)
		}
		reused, err := DecodeRecycled(wire)
		if err != nil {
			t.Fatalf("%v: DecodeRecycled into dirty record: %v", m.Type(), err)
		}
		if !bytes.Equal(reEncode(t, fresh), reEncode(t, reused)) {
			t.Errorf("%v: dirty-record decode differs from fresh decode", m.Type())
		}
		Recycle(reused)
	}
}

// TestDecodeRecycledZeroAllocs locks in the tentpole property: once the
// pool is warm, the steady-state decode path performs zero heap
// allocations per frame.
func TestDecodeRecycledZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; zero-alloc assertion only holds without -race")
	}
	hotBatch := &Batch{Msgs: []Message{
		&PrepareOK{Epoch: 3, TS: types.Timestamp{Wall: 777, Node: 2}, ClockTS: 801},
		&PrepareOK{Epoch: 3, TS: types.Timestamp{Wall: 778, Node: 2}, ClockTS: 802},
		&Prepare{Epoch: 3, TS: types.Timestamp{Wall: 779, Node: 2}, Cmd: types.Command{
			ID: types.CommandID{Origin: 2, Seq: 9}, Payload: bytes.Repeat([]byte{0x42}, 100),
		}},
		&ClockTime{Epoch: 3, TS: 803},
	}}
	cases := []struct {
		name string
		m    Message
	}{
		{"Prepare", benchPrepare(100)},
		{"PrepareOK", &PrepareOK{Epoch: 1, TS: types.Timestamp{Wall: 9, Node: 1}, ClockTS: 10}},
		{"ClockTime", &ClockTime{Epoch: 1, TS: 11}},
		{"Batch", hotBatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wire := Encode(tc.m)
			decodeOnce := func() {
				m, err := DecodeRecycled(wire)
				if err != nil {
					t.Fatal(err)
				}
				Recycle(m)
			}
			// Warm the pool, the record slabs and the arena before measuring.
			for i := 0; i < 8; i++ {
				decodeOnce()
			}
			if avg := testing.AllocsPerRun(100, decodeOnce); avg != 0 {
				t.Errorf("steady-state DecodeRecycled allocates %.1f allocs/op, want 0", avg)
			}
		})
	}
}

// TestRecycleIdentityGuard checks the safety properties of Recycle: it
// must be a no-op on heap-decoded messages, on value copies of pooled
// messages, and on a second call for the same message.
func TestRecycleIdentityGuard(t *testing.T) {
	wire := Encode(benchPrepare(32))

	// Heap decode: Recycle is a no-op.
	heap, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	Recycle(heap)

	// Value copy of a pooled message: recycling the copy must NOT return
	// the record (the original still owns it), so the original's payload
	// stays intact.
	pooled, err := DecodeRecycled(wire)
	if err != nil {
		t.Fatal(err)
	}
	orig := pooled.(*Prepare)
	cp := *orig
	Recycle(&cp) // must be a no-op: &cp != record's top
	before := append([]byte(nil), orig.Cmd.Payload...)
	// Trigger pool churn: if the record had been returned, this decode
	// would scribble over orig's arena-backed payload.
	other, err := DecodeRecycled(Encode(benchPrepare(32)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Cmd.Payload, before) {
		t.Error("recycling a value copy released the original's storage")
	}
	Recycle(other)
	Recycle(orig)
	Recycle(orig) // double recycle: no-op
}

// TestDecodeRecycledEmptyPayload checks that an arena-backed empty
// payload is non-nil, matching the heap decoder's make([]byte, 0).
func TestDecodeRecycledEmptyPayload(t *testing.T) {
	m := &Prepare{Epoch: 1, TS: types.Timestamp{Wall: 5, Node: 0},
		Cmd: types.Command{ID: types.CommandID{Origin: 0, Seq: 1}}}
	got, err := DecodeRecycled(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	p := got.(*Prepare)
	if p.Cmd.Payload == nil {
		t.Error("record-backed decode of empty payload returned nil slice")
	}
	if len(p.Cmd.Payload) != 0 {
		t.Errorf("empty payload decoded to %d bytes", len(p.Cmd.Payload))
	}
	Recycle(got)
}

// TestPutRecordDropsOversizedBuffers checks the pool retention caps: a
// pathological frame must not pin its buffers once recycled.
func TestPutRecordDropsOversizedBuffers(t *testing.T) {
	r := new(Record)
	r.reset()
	r.arena = make([]byte, 0, maxRecordArena+1)
	r.prepares = make([]Prepare, 0, maxRecordSlab+1)
	r.prepareOKs = make([]PrepareOK, 0, maxRecordSlab+1)
	r.clockTimes = make([]ClockTime, 0, maxRecordSlab+1)
	r.msgs = make([]Message, 0, maxRecordSlab+1)
	putRecord(r)
	if r.arena != nil || r.prepares != nil || r.prepareOKs != nil ||
		r.clockTimes != nil || r.msgs != nil {
		t.Error("putRecord retained oversized buffers")
	}
}

// TestBatchEntryAtMaxFrame exercises the MaxFrame boundary inside a
// Batch: an entry whose length prefix claims exactly MaxFrame but whose
// body is absent must be rejected, as must MaxFrame+1; a genuine entry
// close to the limit must round-trip through both decoders.
func TestBatchEntryAtMaxFrame(t *testing.T) {
	for _, l := range []uint32{MaxFrame, MaxFrame + 1} {
		wire := putU32([]byte{byte(TBatch)}, 1) // one entry
		wire = putU32(wire, l)                  // entry length prefix, no body
		if _, err := Decode(wire); err == nil {
			t.Errorf("batch entry claiming %d bytes decoded without error", l)
		}
		if m, err := DecodeRecycled(wire); err == nil {
			Recycle(m)
			t.Errorf("DecodeRecycled: batch entry claiming %d bytes accepted", l)
		}
	}
	if testing.Short() {
		t.Skip("skipping large-frame round trip in -short mode")
	}
	// A real entry near the boundary (a Prepare whose payload pushes the
	// entry length close to MaxFrame) must decode on both paths, and the
	// recycled record must not retain the huge arena afterwards.
	big := &Batch{Msgs: []Message{&Prepare{
		Epoch: 1,
		TS:    types.Timestamp{Wall: 1, Node: 0},
		Cmd: types.Command{
			ID:      types.CommandID{Origin: 0, Seq: 1},
			Payload: make([]byte, MaxFrame-64),
		},
	}}}
	wire := Encode(big)
	if _, err := Decode(wire); err != nil {
		t.Fatalf("near-MaxFrame batch rejected by Decode: %v", err)
	}
	m, err := DecodeRecycled(wire)
	if err != nil {
		t.Fatalf("near-MaxFrame batch rejected by DecodeRecycled: %v", err)
	}
	rec := m.(*Batch).rec
	Recycle(m)
	if rec.arena != nil {
		t.Error("recycling a near-MaxFrame batch retained its arena")
	}
}

// FuzzDecodeRecycled checks pooled-decode equivalence under arbitrary
// inputs: decoding into a deliberately dirtied, reused record must
// accept exactly the same inputs as the heap decoder and produce a
// message with identical wire serialization. (Struct comparison would
// be confounded by the unexported record back-pointer, so equivalence
// is over re-encoded bytes.)
func FuzzDecodeRecycled(f *testing.F) {
	for _, m := range append(sampleMessages(), sampleBatch()) {
		f.Add(Encode(m))
	}
	// MaxFrame boundary inside a batch: claimed entry lengths at and just
	// past the cap.
	edge := putU32([]byte{byte(TBatch)}, 1)
	f.Add(putU32(append([]byte(nil), edge...), MaxFrame))
	f.Add(putU32(append([]byte(nil), edge...), MaxFrame+1))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Dirty the pooled record first so the fuzz exercises reuse, not
		// just fresh records.
		dirty, derr := DecodeRecycled(Encode(sampleBatch()))
		if derr != nil {
			t.Fatal(derr)
		}
		Recycle(dirty)

		want, werr := Decode(data)
		got, gerr := DecodeRecycled(data)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("accept mismatch: Decode err=%v, DecodeRecycled err=%v", werr, gerr)
		}
		if werr != nil {
			return
		}
		if !bytes.Equal(Encode(want), Encode(got)) {
			t.Fatalf("wire mismatch after recycled decode:\n heap %+v\n pooled %+v", want, got)
		}
		Recycle(got)
	})
}

// BenchmarkDecode compares the heap and pooled decoders on the
// steady-state Prepare frame.
func BenchmarkDecode(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		wire := Encode(benchPrepare(size))
		b.Run(fmt.Sprintf("heap/%dB", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("recycled/%dB", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := DecodeRecycled(wire)
				if err != nil {
					b.Fatal(err)
				}
				Recycle(m)
			}
		})
	}
}

// BenchmarkDecodeBatch decodes a hot-type batch — the shape the wire
// actually carries under load (PREPAREOK bursts with the occasional
// PREPARE) — on both paths.
func BenchmarkDecodeBatch(b *testing.B) {
	batch := &Batch{}
	for i := 0; i < 16; i++ {
		batch.Msgs = append(batch.Msgs, &PrepareOK{
			Epoch: 1, TS: types.Timestamp{Wall: int64(i), Node: 1}, ClockTS: int64(i),
		})
	}
	batch.Msgs = append(batch.Msgs, benchPrepare(100))
	wire := Encode(batch)
	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Decode(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recycled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := DecodeRecycled(wire)
			if err != nil {
				b.Fatal(err)
			}
			Recycle(m)
		}
	})
}
