package msg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"clockrsm/internal/types"
)

func sampleBatch() *Batch {
	ts := types.Timestamp{Wall: 777, Node: 2}
	return &Batch{Msgs: []Message{
		&PrepareOK{Epoch: 3, TS: ts, ClockTS: 801},
		&PrepareOK{Epoch: 3, TS: types.Timestamp{Wall: 778, Node: 2}, ClockTS: 802},
		&Prepare{Epoch: 3, TS: ts, Cmd: types.Command{
			ID: types.CommandID{Origin: 2, Seq: 9}, Payload: []byte("put k v"),
		}},
		&ClockTime{Epoch: 3, TS: 803},
	}}
}

func TestBatchRoundTrip(t *testing.T) {
	roundTrip(t, sampleBatch())
	roundTrip(t, &Batch{Msgs: []Message{}})
	roundTrip(t, &Batch{Msgs: []Message{&Commit{Slot: 9}}})
}

func TestBatchRejectsNested(t *testing.T) {
	inner := &Batch{Msgs: []Message{&Commit{Slot: 1}}}
	outer := &Batch{Msgs: []Message{inner}}
	if _, err := Decode(Encode(outer)); err == nil {
		t.Error("nested batch decoded without error")
	}
}

func TestBatchRejectsCorruptLengths(t *testing.T) {
	wire := Encode(sampleBatch())
	// Corrupt the first entry's length prefix (bytes 5..8) to an absurd
	// value: decode must fail with ErrTruncated, not attempt a huge
	// allocation.
	for _, l := range []uint32{0, 1 << 30, 0xFFFFFFFF} {
		bad := append([]byte(nil), wire...)
		binary.LittleEndian.PutUint32(bad[5:9], l)
		if _, err := Decode(bad); err == nil {
			t.Errorf("corrupt entry length %d decoded without error", l)
		}
	}
	// Corrupt the count.
	bad := append([]byte(nil), wire...)
	binary.LittleEndian.PutUint32(bad[1:5], 0xFFFFFFFF)
	if _, err := Decode(bad); err == nil {
		t.Error("corrupt batch count decoded without error")
	}
	// Every truncation must error.
	for cut := 1; cut < len(wire); cut++ {
		if _, err := Decode(wire[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes succeeded", cut, len(wire))
		}
	}
}

func TestEncodeToMatchesEncode(t *testing.T) {
	for _, m := range append(sampleMessages(), sampleBatch()) {
		want := Encode(m)
		got := EncodeTo(nil, m)
		if !bytes.Equal(want, got) {
			t.Errorf("EncodeTo mismatch for %v", m.Type())
		}
		// Appending semantics: existing prefix is preserved.
		withPrefix := EncodeTo([]byte("abc"), m)
		if !bytes.Equal(withPrefix[:3], []byte("abc")) || !bytes.Equal(withPrefix[3:], want) {
			t.Errorf("EncodeTo did not append for %v", m.Type())
		}
	}
}

func TestGetBytesRejectsHugeLength(t *testing.T) {
	// A P2a whose value length prefix claims more than MaxFrame: the
	// decoder must reject it before allocating.
	b := putU64(nil, 1)               // instance
	b = putU64(b, 1)                  // ballot
	b = putU32(b, uint32(MaxFrame+1)) // absurd value length
	wire := append([]byte{byte(TP2a)}, b...)
	if _, err := Decode(wire); err == nil {
		t.Error("length prefix beyond MaxFrame decoded without error")
	}
}

// TestBufPoolConcurrentReuse hammers the buffer pool from many
// goroutines, checking that reused buffers never corrupt concurrent
// encodes.
func TestBufPoolConcurrentReuse(t *testing.T) {
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m := &PrepareOK{
					Epoch:   types.Epoch(g),
					TS:      types.Timestamp{Wall: int64(i), Node: types.ReplicaID(g)},
					ClockTS: int64(g*iters + i),
				}
				buf := GetBuf()
				buf.B = EncodeTo(buf.B, m)
				got, err := Decode(buf.B)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", g, i, err)
					PutBuf(buf)
					return
				}
				if !reflect.DeepEqual(m, got) {
					errs <- fmt.Errorf("goroutine %d iter %d: round trip mismatch", g, i)
					PutBuf(buf)
					return
				}
				PutBuf(buf)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// FuzzDecode throws arbitrary bytes at the decoder: it must never
// panic, and anything it accepts must re-encode and decode to the same
// message.
func FuzzDecode(f *testing.F) {
	for _, m := range append(sampleMessages(), sampleBatch()) {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TBatch), 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("re-encode round trip mismatch:\n first %+v\n again %+v", m, again)
		}
	})
}

func BenchmarkEncodeTo(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			m := benchPrepare(size)
			buf := make([]byte, 0, 2048)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = EncodeTo(buf[:0], m)
			}
		})
	}
}

func BenchmarkEncodeToPooled(b *testing.B) {
	m := benchPrepare(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBuf()
		buf.B = EncodeTo(buf.B, m)
		PutBuf(buf)
	}
}

func BenchmarkBatchRoundTrip(b *testing.B) {
	m := sampleBatch()
	wire := Encode(m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
