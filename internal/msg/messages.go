package msg

import (
	"clockrsm/internal/types"
)

// TimestampedCommand pairs a command with its total-order timestamp; it
// appears in log transfers during reconfiguration and recovery.
type TimestampedCommand struct {
	TS  types.Timestamp
	Cmd types.Command
}

func putTSCmds(b []byte, cs []TimestampedCommand) []byte {
	b = putU32(b, uint32(len(cs)))
	for _, c := range cs {
		b = putTS(b, c.TS)
		b = putCmd(b, c.Cmd)
	}
	return b
}

func getTSCmds(b []byte) ([]TimestampedCommand, []byte, error) {
	n, b, err := getU32(b)
	if err != nil {
		return nil, nil, err
	}
	// Each entry occupies at least 24 bytes on the wire; bound the
	// pre-allocation so a corrupt length cannot trigger a huge allocation.
	capHint := int(n)
	if maxEntries := len(b)/24 + 1; capHint > maxEntries {
		capHint = maxEntries
	}
	cs := make([]TimestampedCommand, 0, capHint)
	for i := uint32(0); i < n; i++ {
		var tc TimestampedCommand
		tc.TS, b, err = getTS(b)
		if err != nil {
			return nil, nil, err
		}
		tc.Cmd, b, err = getCmd(b, nil)
		if err != nil {
			return nil, nil, err
		}
		cs = append(cs, tc)
	}
	return cs, b, nil
}

// --- Clock-RSM (Algorithm 1, 2) ---

// Prepare is the logging request broadcast by a command's originating
// replica: 〈PREPARE cmd, ts〉 (Alg. 1 line 3). Epoch stamps the
// configuration so replicas can discard messages from older epochs.
type Prepare struct {
	Epoch types.Epoch
	TS    types.Timestamp
	Cmd   types.Command
	// Sent is the cumulative count of PREPAREs the sender has broadcast
	// in this epoch, this one included. The stable-order rule assumes
	// FIFO loss-free channels: a receiver may advance a sender's
	// latest-time entry only if it has seen every earlier PREPARE from
	// that sender. The counter lets a receiver prove a violation — a
	// message arriving with Sent ahead of its own receive count means a
	// PREPARE was lost in transit — and trigger state-transfer repair
	// instead of silently committing past the hole. Zero means
	// unsequenced (hand-built messages in tests) and never signals a gap.
	Sent uint64

	// rec backs this message when it came from DecodeRecycled; see Recycle.
	rec *Record
}

var _ Message = (*Prepare)(nil)

// Type implements Message.
func (*Prepare) Type() Type { return TPrepare }

func (m *Prepare) appendTo(b []byte) []byte {
	b = putU64(b, uint64(m.Epoch))
	b = putTS(b, m.TS)
	b = putU64(b, m.Sent)
	return putCmd(b, m.Cmd)
}

func (m *Prepare) decode(b []byte, rec *Record) ([]byte, error) {
	e, b, err := getU64(b)
	if err != nil {
		return nil, err
	}
	m.Epoch = types.Epoch(e)
	m.TS, b, err = getTS(b)
	if err != nil {
		return nil, err
	}
	m.Sent, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Cmd, b, err = getCmd(b, rec)
	return b, err
}

// PrepareOK acknowledges that the sender logged the command with
// timestamp TS: 〈PREPAREOK ts, clockTs〉 (Alg. 1 line 10). ClockTS is the
// sender's clock at acknowledgement time and doubles as its latest-time
// promise.
type PrepareOK struct {
	Epoch   types.Epoch
	TS      types.Timestamp
	ClockTS int64
	// Sent carries the sender's cumulative PREPARE broadcast count for
	// this epoch; see Prepare.Sent. ClockTS advances the sender's
	// latest-time entry at the receiver, so the acknowledgement must
	// prove the PREPARE stream it rides behind is intact.
	Sent uint64

	// rec backs this message when it came from DecodeRecycled; see Recycle.
	rec *Record
}

var _ Message = (*PrepareOK)(nil)

// Type implements Message.
func (*PrepareOK) Type() Type { return TPrepareOK }

func (m *PrepareOK) appendTo(b []byte) []byte {
	b = putU64(b, uint64(m.Epoch))
	b = putTS(b, m.TS)
	b = putI64(b, m.ClockTS)
	return putU64(b, m.Sent)
}

func (m *PrepareOK) decode(b []byte, rec *Record) ([]byte, error) {
	e, b, err := getU64(b)
	if err != nil {
		return nil, err
	}
	m.Epoch = types.Epoch(e)
	m.TS, b, err = getTS(b)
	if err != nil {
		return nil, err
	}
	m.ClockTS, b, err = getI64(b)
	if err != nil {
		return nil, err
	}
	m.Sent, b, err = getU64(b)
	return b, err
}

// ClockTime is the periodic idle-time broadcast of Algorithm 2:
// 〈CLOCKTIME ts〉.
type ClockTime struct {
	Epoch types.Epoch
	TS    int64
	// Sent carries the sender's cumulative PREPARE broadcast count for
	// this epoch; see Prepare.Sent. CLOCKTIME is the message most likely
	// to thaw a frozen latest-time entry after a loss window, so it must
	// prove no PREPARE from its sender is still missing.
	Sent uint64

	// rec backs this message when it came from DecodeRecycled; see Recycle.
	rec *Record
}

var _ Message = (*ClockTime)(nil)

// Type implements Message.
func (*ClockTime) Type() Type { return TClockTime }

func (m *ClockTime) appendTo(b []byte) []byte {
	b = putU64(b, uint64(m.Epoch))
	b = putI64(b, m.TS)
	return putU64(b, m.Sent)
}

func (m *ClockTime) decode(b []byte, rec *Record) ([]byte, error) {
	e, b, err := getU64(b)
	if err != nil {
		return nil, err
	}
	m.Epoch = types.Epoch(e)
	m.TS, b, err = getI64(b)
	if err != nil {
		return nil, err
	}
	m.Sent, b, err = getU64(b)
	return b, err
}

// ClockReq asks a peer for an immediate 〈CLOCKTIME〉 reply. A replica
// holding a parked linearizable read broadcasts it so an otherwise idle
// configuration answers with fresh clock readings right away, instead of
// the read waiting out the remainder of the Δ broadcast period plus a
// one-way delay (the idle-read latency floor of Section IV). It is rare
// (rate-limited at the sender, absent under write traffic), so it is
// heap-owned — no pooled-record slab.
type ClockReq struct {
	Epoch types.Epoch
}

var _ Message = (*ClockReq)(nil)

// Type implements Message.
func (*ClockReq) Type() Type { return TClockReq }

func (m *ClockReq) appendTo(b []byte) []byte {
	return putU64(b, uint64(m.Epoch))
}

func (m *ClockReq) decode(b []byte, rec *Record) ([]byte, error) {
	e, b, err := getU64(b)
	if err != nil {
		return nil, err
	}
	m.Epoch = types.Epoch(e)
	return b, nil
}

// --- Multi-Paxos / Paxos-bcast ---

// Forward carries a client command from a non-leader replica to the
// leader (Section IV-B).
type Forward struct {
	Cmd types.Command
}

var _ Message = (*Forward)(nil)

// Type implements Message.
func (*Forward) Type() Type { return TForward }

func (m *Forward) appendTo(b []byte) []byte { return putCmd(b, m.Cmd) }

func (m *Forward) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Cmd, b, err = getCmd(b, nil)
	return b, err
}

// Accept is the leader's phase 2a message assigning Cmd to log slot Slot
// under Ballot. CommitIndex piggybacks the leader's highest contiguous
// committed slot so followers learn commits without extra messages.
type Accept struct {
	Ballot      uint64
	Slot        uint64
	Cmd         types.Command
	CommitIndex uint64
}

var _ Message = (*Accept)(nil)

// Type implements Message.
func (*Accept) Type() Type { return TAccept }

func (m *Accept) appendTo(b []byte) []byte {
	b = putU64(b, m.Ballot)
	b = putU64(b, m.Slot)
	b = putCmd(b, m.Cmd)
	return putU64(b, m.CommitIndex)
}

func (m *Accept) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Ballot, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Slot, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Cmd, b, err = getCmd(b, nil)
	if err != nil {
		return nil, err
	}
	m.CommitIndex, b, err = getU64(b)
	return b, err
}

// Accepted is the phase 2b acknowledgement for Slot under Ballot. In
// Multi-Paxos it flows to the leader only; in Paxos-bcast it is broadcast
// to all replicas (Section IV-B).
type Accepted struct {
	Ballot uint64
	Slot   uint64
}

var _ Message = (*Accepted)(nil)

// Type implements Message.
func (*Accepted) Type() Type { return TAccepted }

func (m *Accepted) appendTo(b []byte) []byte {
	b = putU64(b, m.Ballot)
	return putU64(b, m.Slot)
}

func (m *Accepted) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Ballot, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Slot, b, err = getU64(b)
	return b, err
}

// Commit is the leader's commit notification for slots up to and
// including Slot (plain Multi-Paxos only; Paxos-bcast learns commits from
// broadcast Accepted messages).
type Commit struct {
	Slot uint64
}

var _ Message = (*Commit)(nil)

// Type implements Message.
func (*Commit) Type() Type { return TCommit }

func (m *Commit) appendTo(b []byte) []byte { return putU64(b, m.Slot) }

func (m *Commit) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Slot, b, err = getU64(b)
	return b, err
}

// --- Mencius / Mencius-bcast ---

// MAccept proposes Cmd in slot Slot, owned by the sender under Mencius'
// rotating slot assignment. LowSlot is the smallest slot the sender may
// still propose in: it implicitly skips all of the sender's owned slots
// below LowSlot.
type MAccept struct {
	Slot    uint64
	Cmd     types.Command
	LowSlot uint64
}

var _ Message = (*MAccept)(nil)

// Type implements Message.
func (*MAccept) Type() Type { return TMAccept }

func (m *MAccept) appendTo(b []byte) []byte {
	b = putU64(b, m.Slot)
	b = putCmd(b, m.Cmd)
	return putU64(b, m.LowSlot)
}

func (m *MAccept) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Slot, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Cmd, b, err = getCmd(b, nil)
	if err != nil {
		return nil, err
	}
	m.LowSlot, b, err = getU64(b)
	return b, err
}

// MAccepted acknowledges logging of slot Slot and carries the sender's
// LowSlot promise (skipping its owned slots below LowSlot). Broadcast in
// Mencius-bcast; sent to the slot owner only in plain Mencius.
type MAccepted struct {
	Slot    uint64
	LowSlot uint64
}

var _ Message = (*MAccepted)(nil)

// Type implements Message.
func (*MAccepted) Type() Type { return TMAccepted }

func (m *MAccepted) appendTo(b []byte) []byte {
	b = putU64(b, m.Slot)
	return putU64(b, m.LowSlot)
}

func (m *MAccepted) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Slot, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.LowSlot, b, err = getU64(b)
	return b, err
}

// MCommit is the owner's commit notification for slot Slot (plain
// Mencius only).
type MCommit struct {
	Slot uint64
}

var _ Message = (*MCommit)(nil)

// Type implements Message.
func (*MCommit) Type() Type { return TMCommit }

func (m *MCommit) appendTo(b []byte) []byte { return putU64(b, m.Slot) }

func (m *MCommit) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Slot, b, err = getU64(b)
	return b, err
}

// --- Reconfiguration (Algorithm 3) ---

// Suspend freezes log processing for the transition to epoch Epoch:
// 〈SUSPEND e, cts〉 (Alg. 3 line 4). CTS is the timestamp of the sender's
// last commit mark.
type Suspend struct {
	Epoch types.Epoch
	CTS   types.Timestamp
}

var _ Message = (*Suspend)(nil)

// Type implements Message.
func (*Suspend) Type() Type { return TSuspend }

func (m *Suspend) appendTo(b []byte) []byte {
	b = putU64(b, uint64(m.Epoch))
	return putTS(b, m.CTS)
}

func (m *Suspend) decode(b []byte, rec *Record) ([]byte, error) {
	e, b, err := getU64(b)
	if err != nil {
		return nil, err
	}
	m.Epoch = types.Epoch(e)
	m.CTS, b, err = getTS(b)
	return b, err
}

// SuspendOK returns all logged commands with timestamps greater than the
// SUSPEND's cts: 〈SUSPENDOK e, cmds〉 (Alg. 3 line 10). When the
// responder has compacted part of that range into a checkpoint
// (Section V-B), the command list alone would be incomplete; it then
// also ships the snapshot covering every command up to SnapTS, exactly
// as RetrieveReply does for state transfer.
type SuspendOK struct {
	Epoch   types.Epoch
	Cmds    []TimestampedCommand
	HasSnap bool
	SnapTS  types.Timestamp
	Snap    []byte
}

var _ Message = (*SuspendOK)(nil)

// Type implements Message.
func (*SuspendOK) Type() Type { return TSuspendOK }

func (m *SuspendOK) appendTo(b []byte) []byte {
	b = putU64(b, uint64(m.Epoch))
	b = putTSCmds(b, m.Cmds)
	if m.HasSnap {
		b = append(b, 1)
		b = putTS(b, m.SnapTS)
		b = putBytes(b, m.Snap)
	} else {
		b = append(b, 0)
	}
	return b
}

func (m *SuspendOK) decode(b []byte, rec *Record) ([]byte, error) {
	e, b, err := getU64(b)
	if err != nil {
		return nil, err
	}
	m.Epoch = types.Epoch(e)
	m.Cmds, b, err = getTSCmds(b)
	if err != nil {
		return nil, err
	}
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	m.HasSnap = b[0] == 1
	b = b[1:]
	if m.HasSnap {
		m.SnapTS, b, err = getTS(b)
		if err != nil {
			return nil, err
		}
		m.Snap, b, err = getBytes(b, nil)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// RetrieveCmds requests all logged commands with timestamps in
// (From, To]: 〈RETRIEVECMDS from, to〉 (Alg. 3 line 26), used by state
// transfer and recovery.
type RetrieveCmds struct {
	From types.Timestamp
	To   types.Timestamp
}

var _ Message = (*RetrieveCmds)(nil)

// Type implements Message.
func (*RetrieveCmds) Type() Type { return TRetrieveCmds }

func (m *RetrieveCmds) appendTo(b []byte) []byte {
	b = putTS(b, m.From)
	return putTS(b, m.To)
}

func (m *RetrieveCmds) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.From, b, err = getTS(b)
	if err != nil {
		return nil, err
	}
	m.To, b, err = getTS(b)
	return b, err
}

// RetrieveReply returns the requested command range:
// 〈RETRIEVEREPLY cmds〉 (Alg. 3 line 31). Seq echoes a caller-chosen
// request tag so concurrent retrievals do not mix. When the responder
// has compacted part of the requested range into a checkpoint
// (Section V-B), it ships the snapshot covering commands up to SnapTS
// plus the commands above it.
type RetrieveReply struct {
	Seq     uint64
	Cmds    []TimestampedCommand
	HasSnap bool
	SnapTS  types.Timestamp
	Snap    []byte
}

var _ Message = (*RetrieveReply)(nil)

// Type implements Message.
func (*RetrieveReply) Type() Type { return TRetrieveReply }

func (m *RetrieveReply) appendTo(b []byte) []byte {
	b = putU64(b, m.Seq)
	b = putTSCmds(b, m.Cmds)
	if m.HasSnap {
		b = append(b, 1)
		b = putTS(b, m.SnapTS)
		b = putBytes(b, m.Snap)
	} else {
		b = append(b, 0)
	}
	return b
}

func (m *RetrieveReply) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Seq, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Cmds, b, err = getTSCmds(b)
	if err != nil {
		return nil, err
	}
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	m.HasSnap = b[0] == 1
	b = b[1:]
	if m.HasSnap {
		m.SnapTS, b, err = getTS(b)
		if err != nil {
			return nil, err
		}
		m.Snap, b, err = getBytes(b, nil)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// --- Single-decree Paxos consensus primitive (used by reconfiguration) ---

// P1a is the prepare request of consensus instance Instance under Ballot.
type P1a struct {
	Instance uint64
	Ballot   uint64
}

var _ Message = (*P1a)(nil)

// Type implements Message.
func (*P1a) Type() Type { return TP1a }

func (m *P1a) appendTo(b []byte) []byte {
	b = putU64(b, m.Instance)
	return putU64(b, m.Ballot)
}

func (m *P1a) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Instance, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Ballot, b, err = getU64(b)
	return b, err
}

// P1b is the promise reply, reporting any previously accepted value.
type P1b struct {
	Instance       uint64
	Ballot         uint64
	AcceptedBallot uint64
	Value          []byte
}

var _ Message = (*P1b)(nil)

// Type implements Message.
func (*P1b) Type() Type { return TP1b }

func (m *P1b) appendTo(b []byte) []byte {
	b = putU64(b, m.Instance)
	b = putU64(b, m.Ballot)
	b = putU64(b, m.AcceptedBallot)
	return putBytes(b, m.Value)
}

func (m *P1b) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Instance, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Ballot, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.AcceptedBallot, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Value, b, err = getBytes(b, nil)
	return b, err
}

// P2a asks acceptors to accept Value for instance Instance under Ballot.
type P2a struct {
	Instance uint64
	Ballot   uint64
	Value    []byte
}

var _ Message = (*P2a)(nil)

// Type implements Message.
func (*P2a) Type() Type { return TP2a }

func (m *P2a) appendTo(b []byte) []byte {
	b = putU64(b, m.Instance)
	b = putU64(b, m.Ballot)
	return putBytes(b, m.Value)
}

func (m *P2a) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Instance, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Ballot, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Value, b, err = getBytes(b, nil)
	return b, err
}

// P2b acknowledges acceptance of instance Instance under Ballot.
type P2b struct {
	Instance uint64
	Ballot   uint64
}

var _ Message = (*P2b)(nil)

// Type implements Message.
func (*P2b) Type() Type { return TP2b }

func (m *P2b) appendTo(b []byte) []byte {
	b = putU64(b, m.Instance)
	return putU64(b, m.Ballot)
}

func (m *P2b) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Instance, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Ballot, b, err = getU64(b)
	return b, err
}

// Learn announces the decided value of instance Instance to all replicas.
type Learn struct {
	Instance uint64
	Value    []byte
}

var _ Message = (*Learn)(nil)

// Type implements Message.
func (*Learn) Type() Type { return TLearn }

func (m *Learn) appendTo(b []byte) []byte {
	b = putU64(b, m.Instance)
	return putBytes(b, m.Value)
}

func (m *Learn) decode(b []byte, rec *Record) ([]byte, error) {
	var err error
	m.Instance, b, err = getU64(b)
	if err != nil {
		return nil, err
	}
	m.Value, b, err = getBytes(b, nil)
	return b, err
}
