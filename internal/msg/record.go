package msg

import "sync"

// Record is a pooled decode arena. One checked-out Record backs all the
// storage a single wire frame's steady-state messages need — the
// message structs of the hot types (Prepare, PrepareOK, ClockTime and
// the Batch container) come from typed grow-only slabs, and command
// payloads are copied into one shared byte arena — so once the pool and
// the slabs are warm, DecodeRecycled performs zero heap allocations per
// frame. This is the receive-side counterpart of the encode-side Buf
// pool.
//
// Ownership contract: messages handed out by DecodeRecycled (and, for a
// Batch, the messages packed inside it) live in pooled storage and are
// valid only until Recycle is called on the top-level message. In the
// runtime, the node event loop recycles after the protocol's Deliver
// returns, so a protocol that wants to retain a delivered hot message —
// or any byte slice reachable from it, such as a command payload —
// beyond the Deliver call must copy it first. core does exactly that:
// command payloads are copied when they enter the pending set, and
// future-epoch messages are cloned before they are parked. Every other
// message type decodes into ordinary heap memory it owns, so retaining
// those (the reconfiguration, state-transfer and consensus paths) is
// always safe, even when they arrive packed in a recycled Batch.
type Record struct {
	// top is the message this record currently backs; Recycle uses it
	// to ignore duplicate calls and copies of pooled messages.
	top Message

	arena      []byte // command payload bytes of hot messages
	prepares   []Prepare
	prepareOKs []PrepareOK
	clockTimes []ClockTime
	msgs       []Message // Batch.Msgs backing
	batch      Batch     // batches cannot nest, so one per frame suffices
}

// Retention caps: one pathological frame (a huge payload or an enormous
// batch) must not pin its buffers in the pool forever, mirroring
// PutBuf's cap on encode buffers.
const (
	maxRecordArena = 1 << 20
	maxRecordSlab  = 4096
)

var recordPool = sync.Pool{New: func() any { return new(Record) }}

// reset prepares a pooled record for a fresh decode.
func (r *Record) reset() {
	r.top = nil
	if r.arena == nil {
		// A non-nil empty arena makes zero-length payload slices non-nil,
		// matching what the copying decoder returns for them.
		r.arena = make([]byte, 0, 512)
	}
	r.arena = r.arena[:0]
	r.prepares = r.prepares[:0]
	r.prepareOKs = r.prepareOKs[:0]
	r.clockTimes = r.clockTimes[:0]
	r.msgs = r.msgs[:0]
	r.batch = Batch{}
}

// putRecord returns r to the pool, dropping oversized buffers and any
// heap-allocated messages a batch slab still references.
func putRecord(r *Record) {
	r.top = nil
	for i := range r.msgs {
		r.msgs[i] = nil
	}
	if cap(r.arena) > maxRecordArena {
		r.arena = nil
	}
	if cap(r.prepares) > maxRecordSlab {
		r.prepares = nil
	}
	if cap(r.prepareOKs) > maxRecordSlab {
		r.prepareOKs = nil
	}
	if cap(r.clockTimes) > maxRecordSlab {
		r.clockTimes = nil
	}
	if cap(r.msgs) > maxRecordSlab {
		r.msgs = nil
	}
	recordPool.Put(r)
}

// bytes copies p into the record's arena and returns the copy, valid
// until the record is recycled. Growth reallocates the arena; slices
// handed out earlier keep pointing at the old backing array, which the
// garbage collector keeps alive for them.
func (r *Record) bytes(p []byte) []byte {
	off := len(r.arena)
	r.arena = append(r.arena, p...)
	return r.arena[off:len(r.arena):len(r.arena)]
}

// newPrepare hands out a zeroed slab entry (growing the slab when warm
// capacity runs out; steady state allocates nothing).
func (r *Record) newPrepare() *Prepare {
	if len(r.prepares) == cap(r.prepares) {
		r.prepares = append(r.prepares, Prepare{})
	} else {
		r.prepares = r.prepares[:len(r.prepares)+1]
		r.prepares[len(r.prepares)-1] = Prepare{}
	}
	return &r.prepares[len(r.prepares)-1]
}

func (r *Record) newPrepareOK() *PrepareOK {
	if len(r.prepareOKs) == cap(r.prepareOKs) {
		r.prepareOKs = append(r.prepareOKs, PrepareOK{})
	} else {
		r.prepareOKs = r.prepareOKs[:len(r.prepareOKs)+1]
		r.prepareOKs[len(r.prepareOKs)-1] = PrepareOK{}
	}
	return &r.prepareOKs[len(r.prepareOKs)-1]
}

func (r *Record) newClockTime() *ClockTime {
	if len(r.clockTimes) == cap(r.clockTimes) {
		r.clockTimes = append(r.clockTimes, ClockTime{})
	} else {
		r.clockTimes = r.clockTimes[:len(r.clockTimes)+1]
		r.clockTimes[len(r.clockTimes)-1] = ClockTime{}
	}
	return &r.clockTimes[len(r.clockTimes)-1]
}

// DecodeRecycled parses a message produced by Encode, like Decode, but
// backs the steady-state message types with pooled storage: the caller
// MUST call Recycle on the returned message once it (and, for a Batch,
// every message packed inside it) is no longer referenced, and must
// copy anything it wants to retain past that point. Messages of types
// outside the steady state own their memory as with Decode; Recycle is
// a safe no-op for them. On a warm pool the whole decode performs zero
// heap allocations for hot-type frames.
func DecodeRecycled(b []byte) (Message, error) {
	rec := recordPool.Get().(*Record)
	rec.reset()
	m, err := decodeFrame(b, rec)
	if err != nil || !recordBacked(m) {
		putRecord(rec)
		return m, err
	}
	rec.top = m
	setRecord(m, rec)
	return m, nil
}

// recordBacked reports whether a record-mode decode allocated m from
// the record's slabs (exactly the hot types).
func recordBacked(m Message) bool {
	switch m.(type) {
	case *Prepare, *PrepareOK, *ClockTime, *Batch:
		return true
	}
	return false
}

// setRecord stamps the top-level message with its backing record.
func setRecord(m Message, rec *Record) {
	switch mm := m.(type) {
	case *Prepare:
		mm.rec = rec
	case *PrepareOK:
		mm.rec = rec
	case *ClockTime:
		mm.rec = rec
	case *Batch:
		mm.rec = rec
	}
}

// Recycle returns the pooled storage behind a message obtained from
// DecodeRecycled. It is safe to call on any message: messages that were
// not produced by DecodeRecycled — including value copies of pooled
// messages, whose pointer identity differs from the record's — and
// repeated calls are no-ops. After Recycle, the message, the messages
// packed in it (for a Batch), and every byte slice reachable from them
// are invalid.
func Recycle(m Message) {
	var rec *Record
	switch mm := m.(type) {
	case *Prepare:
		rec = mm.rec
	case *PrepareOK:
		rec = mm.rec
	case *ClockTime:
		rec = mm.rec
	case *Batch:
		rec = mm.rec
	default:
		return
	}
	if rec == nil || rec.top != m {
		return
	}
	putRecord(rec)
}
