package msg

import (
	"reflect"
	"testing"
	"testing/quick"

	"clockrsm/internal/types"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Encode(m)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(%v): %v", m.Type(), err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch for %v:\n sent %+v\n got  %+v", m.Type(), m, got)
	}
	return got
}

func sampleMessages() []Message {
	cmd := types.Command{
		ID:      types.CommandID{Origin: 2, Seq: 77},
		Payload: []byte("put k v"),
	}
	ts := types.Timestamp{Wall: 123456789, Node: 3}
	return []Message{
		&Prepare{Epoch: 4, TS: ts, Cmd: cmd},
		&PrepareOK{Epoch: 4, TS: ts, ClockTS: 987654321},
		&ClockTime{Epoch: 4, TS: 5555},
		&Forward{Cmd: cmd},
		&Accept{Ballot: 9, Slot: 42, Cmd: cmd, CommitIndex: 41},
		&Accepted{Ballot: 9, Slot: 42},
		&Commit{Slot: 42},
		&MAccept{Slot: 17, Cmd: cmd, LowSlot: 22},
		&MAccepted{Slot: 17, LowSlot: 23},
		&MCommit{Slot: 17},
		&Suspend{Epoch: 5, CTS: ts},
		&SuspendOK{Epoch: 5, Cmds: []TimestampedCommand{{TS: ts, Cmd: cmd}}},
		&RetrieveCmds{From: ts, To: types.Timestamp{Wall: 222, Node: 1}},
		&RetrieveReply{Seq: 3, Cmds: []TimestampedCommand{{TS: ts, Cmd: cmd}, {TS: ts, Cmd: cmd}}},
		&P1a{Instance: 1, Ballot: 10},
		&P1b{Instance: 1, Ballot: 10, AcceptedBallot: 3, Value: []byte("cfg")},
		&P2a{Instance: 1, Ballot: 10, Value: []byte("cfg")},
		&P2b{Instance: 1, Ballot: 10},
		&Learn{Instance: 1, Value: []byte("cfg")},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, m := range sampleMessages() {
		roundTrip(t, m)
	}
}

func TestRoundTripEmptyPayloads(t *testing.T) {
	roundTrip(t, &Prepare{Cmd: types.Command{Payload: []byte{}}})
	roundTrip(t, &SuspendOK{Cmds: []TimestampedCommand{}})
	roundTrip(t, &P1b{Value: []byte{}})
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{0xFF}); err == nil {
		t.Error("Decode(unknown type) succeeded")
	}
	// Truncated body.
	b := Encode(&Prepare{TS: types.Timestamp{Wall: 1}, Cmd: types.Command{Payload: []byte("xyz")}})
	for cut := 1; cut < len(b); cut++ {
		if _, err := Decode(b[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes succeeded", cut, len(b))
		}
	}
	// Trailing junk.
	if _, err := Decode(append(Encode(&Commit{Slot: 1}), 0x00)); err == nil {
		t.Error("Decode with trailing bytes succeeded")
	}
}

func TestNegativeReplicaIDRoundTrip(t *testing.T) {
	// NoReplica (-1) must survive the uint32 cast.
	m := &Prepare{
		TS:  types.Timestamp{Wall: 5, Node: types.NoReplica},
		Cmd: types.Command{ID: types.CommandID{Origin: types.NoReplica, Seq: 1}, Payload: []byte{}},
	}
	roundTrip(t, m)
}

func TestTypeString(t *testing.T) {
	if TPrepare.String() != "PREPARE" || TLearn.String() != "LEARN" {
		t.Error("type names wrong")
	}
	if Type(200).String() != "Type(200)" {
		t.Error("unknown type name wrong")
	}
}

func TestPayloadIsCopiedOnDecode(t *testing.T) {
	m := &Forward{Cmd: types.Command{Payload: []byte("abc")}}
	b := Encode(m)
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] = 'z' // mutating the wire buffer must not affect the message
	if string(got.(*Forward).Cmd.Payload) != "abc" {
		t.Error("decoded payload aliases wire buffer")
	}
}

// Property: Prepare round-trips for arbitrary field values.
func TestPrepareRoundTripProperty(t *testing.T) {
	f := func(epoch uint64, wall int64, node int32, origin int32, seq uint64, payload []byte) bool {
		if payload == nil {
			payload = []byte{}
		}
		m := &Prepare{
			Epoch: types.Epoch(epoch),
			TS:    types.Timestamp{Wall: wall, Node: types.ReplicaID(node)},
			Cmd: types.Command{
				ID:      types.CommandID{Origin: types.ReplicaID(origin), Seq: seq},
				Payload: payload,
			},
		}
		got, err := Decode(Encode(m))
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestDecodeArbitraryBytesNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SuspendOK with arbitrary command lists round-trips.
func TestSuspendOKRoundTripProperty(t *testing.T) {
	f := func(epoch uint64, walls []int64, payload []byte) bool {
		if payload == nil {
			payload = []byte{}
		}
		cmds := make([]TimestampedCommand, 0, len(walls))
		for i, w := range walls {
			cmds = append(cmds, TimestampedCommand{
				TS:  types.Timestamp{Wall: w, Node: types.ReplicaID(i % 7)},
				Cmd: types.Command{ID: types.CommandID{Origin: types.ReplicaID(i % 7), Seq: uint64(i)}, Payload: payload},
			})
		}
		m := &SuspendOK{Epoch: types.Epoch(epoch), Cmds: cmds}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		g := got.(*SuspendOK)
		if g.Epoch != m.Epoch || len(g.Cmds) != len(m.Cmds) {
			return false
		}
		for i := range g.Cmds {
			if g.Cmds[i].TS != m.Cmds[i].TS || g.Cmds[i].Cmd.ID != m.Cmds[i].Cmd.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
