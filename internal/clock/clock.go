// Package clock provides the loosely synchronized physical clock sources
// used by Clock-RSM (Section II-A). A clock only needs to provide
// monotonically increasing timestamps; the protocol's correctness does not
// depend on the synchronization precision, so skew is a tunable here.
package clock

import (
	"sync"
	"time"
)

// Clock yields physical timestamps in nanoseconds. Implementations must
// return strictly increasing values across successive calls from the same
// goroutine; Monotonic can wrap any Clock to enforce this.
type Clock interface {
	// Now returns the current physical clock reading in nanoseconds.
	Now() int64
}

// Func adapts a plain function to the Clock interface.
type Func func() int64

var _ Clock = Func(nil)

// Now implements Clock.
func (f Func) Now() int64 { return f() }

// System is a Clock backed by the operating system's real-time clock,
// the equivalent of clock_gettime in the paper's implementation.
type System struct{}

var _ Clock = System{}

// Now implements Clock.
func (System) Now() int64 { return time.Now().UnixNano() }

// Monotonic wraps an underlying clock and guarantees strictly increasing
// readings even if the underlying clock is stepped backwards (e.g. by an
// NTP adjustment) or returns duplicate values. It is safe for concurrent
// use.
type Monotonic struct {
	mu   sync.Mutex
	src  Clock
	last int64
}

var _ Clock = (*Monotonic)(nil)

// NewMonotonic returns a Monotonic view over src.
func NewMonotonic(src Clock) *Monotonic {
	return &Monotonic{src: src}
}

// Now implements Clock. If the source has not advanced since the previous
// call, the reading is bumped by one nanosecond.
func (m *Monotonic) Now() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.src.Now()
	if now <= m.last {
		now = m.last + 1
	}
	m.last = now
	return now
}

// Skewed offsets an underlying clock by a constant skew and an optional
// linear drift, modelling a replica whose NTP-disciplined clock is a few
// milliseconds off from true time.
type Skewed struct {
	src   Clock
	skew  int64   // constant offset in ns
	drift float64 // fractional drift, e.g. 1e-5 = 10 ppm
	base  int64   // source reading at construction, anchor for drift
}

var _ Clock = (*Skewed)(nil)

// NewSkewed returns a clock reading src.Now() + skew + drift*(elapsed).
func NewSkewed(src Clock, skew time.Duration, drift float64) *Skewed {
	return &Skewed{src: src, skew: int64(skew), drift: drift, base: src.Now()}
}

// Now implements Clock.
func (s *Skewed) Now() int64 {
	now := s.src.Now()
	return now + s.skew + int64(float64(now-s.base)*s.drift)
}

// Manual is a hand-advanced clock for tests.
type Manual struct {
	mu  sync.Mutex
	now int64
}

var _ Clock = (*Manual)(nil)

// NewManual returns a Manual clock starting at now.
func NewManual(now int64) *Manual { return &Manual{now: now} }

// Now implements Clock.
func (m *Manual) Now() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d nanoseconds. Negative deltas are
// allowed so tests can exercise monotonic guards.
func (m *Manual) Advance(d int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now += d
}

// Set moves the clock to an absolute reading.
func (m *Manual) Set(now int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}
