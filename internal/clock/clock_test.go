package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemAdvances(t *testing.T) {
	c := System{}
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Errorf("system clock did not advance: %d then %d", a, b)
	}
}

func TestMonotonicStrictlyIncreases(t *testing.T) {
	man := NewManual(100)
	m := NewMonotonic(man)
	a := m.Now()
	b := m.Now() // source unchanged; must still increase
	if b <= a {
		t.Errorf("monotonic returned %d after %d", b, a)
	}
	man.Advance(-50) // step backwards
	c := m.Now()
	if c <= b {
		t.Errorf("monotonic went backwards after source step: %d after %d", c, b)
	}
	man.Set(10_000)
	d := m.Now()
	if d != 10_000 {
		t.Errorf("monotonic did not follow source forward: got %d", d)
	}
}

func TestMonotonicConcurrent(t *testing.T) {
	m := NewMonotonic(NewManual(0))
	const goroutines, per = 8, 200
	var mu sync.Mutex
	seen := make(map[int64]bool, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := m.Now()
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate timestamp %d", v)
					mu.Unlock()
					return
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestSkewedOffset(t *testing.T) {
	man := NewManual(1_000_000)
	s := NewSkewed(man, 5*time.Millisecond, 0)
	want := int64(1_000_000) + 5*int64(time.Millisecond)
	if got := s.Now(); got != want {
		t.Errorf("skewed clock = %d, want %d", got, want)
	}
}

func TestSkewedDrift(t *testing.T) {
	man := NewManual(0)
	s := NewSkewed(man, 0, 0.01) // 1% fast
	man.Advance(1_000_000)
	if got := s.Now(); got != 1_010_000 {
		t.Errorf("drifting clock = %d, want 1010000", got)
	}
}

func TestSkewedNegativeSkew(t *testing.T) {
	man := NewManual(1_000)
	s := NewSkewed(man, -time.Microsecond, 0)
	if got := s.Now(); got != 0 {
		t.Errorf("negative skew clock = %d, want 0", got)
	}
}

func TestManual(t *testing.T) {
	m := NewManual(7)
	if m.Now() != 7 {
		t.Fatalf("manual start = %d", m.Now())
	}
	m.Advance(3)
	if m.Now() != 10 {
		t.Fatalf("after advance = %d", m.Now())
	}
	m.Set(2)
	if m.Now() != 2 {
		t.Fatalf("after set = %d", m.Now())
	}
}

func TestFuncAdapter(t *testing.T) {
	var n int64
	c := Func(func() int64 { n++; return n })
	if c.Now() != 1 || c.Now() != 2 {
		t.Error("Func adapter did not pass through")
	}
}
