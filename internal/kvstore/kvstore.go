// Package kvstore is the replicated in-memory key-value store used by
// the paper's evaluation (Section VI-A): clients send update commands
// that the replication protocols order and execute identically at every
// replica.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"clockrsm/internal/rsm"
)

// Op is a key-value operation code.
type Op byte

// Operations.
const (
	OpPut Op = iota + 1
	OpGet
	OpDelete
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "PUT"
	case OpGet:
		return "GET"
	case OpDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// ErrBadCommand is returned when a command payload cannot be parsed.
var ErrBadCommand = errors.New("kvstore: malformed command")

// Command is a decoded key-value command.
type Command struct {
	Op    Op
	Key   string
	Value []byte
}

// Encode serializes the command as a state-machine payload:
// op(1) | keyLen(2) | key | value.
func (c Command) Encode() []byte {
	b := make([]byte, 0, 3+len(c.Key)+len(c.Value))
	b = append(b, byte(c.Op))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Key)))
	b = append(b, c.Key...)
	return append(b, c.Value...)
}

// Decode parses a payload produced by Encode.
func Decode(b []byte) (Command, error) {
	if len(b) < 3 {
		return Command{}, ErrBadCommand
	}
	op := Op(b[0])
	if op != OpPut && op != OpGet && op != OpDelete {
		return Command{}, fmt.Errorf("%w: bad op %d", ErrBadCommand, b[0])
	}
	kl := int(binary.LittleEndian.Uint16(b[1:3]))
	if len(b) < 3+kl {
		return Command{}, fmt.Errorf("%w: short key", ErrBadCommand)
	}
	c := Command{Op: op, Key: string(b[3 : 3+kl])}
	if rest := b[3+kl:]; len(rest) > 0 {
		c.Value = append([]byte(nil), rest...)
	}
	return c, nil
}

// Put builds an encoded PUT command.
func Put(key string, value []byte) []byte {
	return Command{Op: OpPut, Key: key, Value: value}.Encode()
}

// Get builds an encoded GET command. Reads go through the replication
// protocol too, giving linearizable reads (Section II-B).
func Get(key string) []byte {
	return Command{Op: OpGet, Key: key}.Encode()
}

// Delete builds an encoded DELETE command.
func Delete(key string) []byte {
	return Command{Op: OpDelete, Key: key}.Encode()
}

// Store is the deterministic key-value state machine. Apply is invoked
// serially by the replication layer; the mutex guards concurrent local
// inspection (Len, Snapshot) against the applying goroutine.
type Store struct {
	mu   sync.RWMutex
	data map[string][]byte

	applied uint64
}

var (
	_ rsm.StateMachine = (*Store)(nil)
	_ rsm.StateQuerier = (*Store)(nil)
)

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Apply implements rsm.StateMachine. Malformed commands execute as
// deterministic no-ops returning nil (every replica rejects them
// identically).
func (s *Store) Apply(payload []byte) []byte {
	cmd, err := Decode(payload)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied++
	switch cmd.Op {
	case OpPut:
		prev := s.data[cmd.Key]
		s.data[cmd.Key] = cmd.Value
		return prev
	case OpGet:
		return s.data[cmd.Key]
	case OpDelete:
		prev := s.data[cmd.Key]
		delete(s.data, cmd.Key)
		return prev
	}
	return nil
}

// Query implements rsm.StateQuerier: it answers read-only commands
// (GET) directly from local state, bypassing the replicated Apply
// path. The answer for a GET is byte-identical to what Apply would
// return for the same payload; mutating and malformed payloads answer
// nil without touching state. Safe for concurrent use with Apply (the
// read-path runtime serves bounded-staleness reads from client
// goroutines).
func (s *Store) Query(q []byte) []byte {
	cmd, err := Decode(q)
	if err != nil || cmd.Op != OpGet {
		return nil
	}
	v, _ := s.Lookup(cmd.Key)
	return v
}

// Lookup reads a key directly from local state, bypassing replication
// (not linearizable; used by tests and monitoring).
func (s *Store) Lookup(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Applied returns the number of commands applied.
func (s *Store) Applied() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// Snapshot implements rsm.Snapshotter: it serializes the full key-value
// state deterministically (keys sorted).
func (s *Store) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := make([]byte, 0, 16+32*len(keys))
	b = binary.LittleEndian.AppendUint64(b, s.applied)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(keys)))
	for _, k := range keys {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(k)))
		b = append(b, k...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.data[k])))
		b = append(b, s.data[k]...)
	}
	return b
}

// Restore implements rsm.Snapshotter.
func (s *Store) Restore(state []byte) error {
	if len(state) < 12 {
		return fmt.Errorf("kvstore: short snapshot")
	}
	applied := binary.LittleEndian.Uint64(state)
	n := binary.LittleEndian.Uint32(state[8:])
	state = state[12:]
	data := make(map[string][]byte, n)
	for i := uint32(0); i < n; i++ {
		if len(state) < 4 {
			return fmt.Errorf("kvstore: truncated snapshot key")
		}
		kl := binary.LittleEndian.Uint32(state)
		state = state[4:]
		if uint64(len(state)) < uint64(kl)+4 {
			return fmt.Errorf("kvstore: truncated snapshot key body")
		}
		k := string(state[:kl])
		state = state[kl:]
		vl := binary.LittleEndian.Uint32(state)
		state = state[4:]
		if uint64(len(state)) < uint64(vl) {
			return fmt.Errorf("kvstore: truncated snapshot value")
		}
		data[k] = append([]byte(nil), state[:vl]...)
		state = state[vl:]
	}
	if len(state) != 0 {
		return fmt.Errorf("kvstore: trailing snapshot bytes")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = data
	s.applied = applied
	return nil
}

// InstallPair seeds one migrated key/value pair directly, bypassing
// command decoding. The resharding layer uses it to install a fenced
// slot's frozen data at its new group; it counts as one applied
// command so replicas that seed and replicas that replay the same
// install agree on the apply counter.
func (s *Store) InstallPair(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied++
	s.data[key] = append([]byte(nil), value...)
}

// DecodeSnapshot parses a Snapshot blob into its key/value map,
// without constructing a Store. The resharding coordinator uses it to
// filter a source group's checkpoint down to the migrating slots.
func DecodeSnapshot(state []byte) (map[string][]byte, error) {
	st := New()
	if err := st.Restore(state); err != nil {
		return nil, err
	}
	return st.data, nil
}

// SnapshotMap returns a deep copy of the state, for divergence checks in
// tests.
func (s *Store) SnapshotMap() map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]byte, len(s.data))
	for k, v := range s.data {
		out[k] = append([]byte(nil), v...)
	}
	return out
}
