package kvstore

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cmds := []Command{
		{Op: OpPut, Key: "k", Value: []byte("v")},
		{Op: OpGet, Key: "some/longer/key"},
		{Op: OpDelete, Key: ""},
		{Op: OpPut, Key: "empty-value", Value: nil},
	}
	for _, c := range cmds {
		got, err := Decode(c.Encode())
		if err != nil {
			t.Fatalf("Decode(%v): %v", c, err)
		}
		if got.Op != c.Op || got.Key != c.Key || !bytes.Equal(got.Value, c.Value) {
			t.Errorf("round trip: sent %+v got %+v", c, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{byte(OpPut)},
		{99, 0, 0},          // unknown op
		{byte(OpGet), 5, 0}, // key length beyond payload
	}
	for _, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode(%v) succeeded", b)
		}
	}
}

func TestDecodeArbitraryNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPutGetDelete(t *testing.T) {
	s := New()
	if out := s.Apply(Put("a", []byte("1"))); out != nil {
		t.Errorf("first PUT returned %q", out)
	}
	if out := s.Apply(Get("a")); string(out) != "1" {
		t.Errorf("GET = %q, want 1", out)
	}
	if out := s.Apply(Put("a", []byte("2"))); string(out) != "1" {
		t.Errorf("second PUT returned %q, want previous value 1", out)
	}
	if out := s.Apply(Delete("a")); string(out) != "2" {
		t.Errorf("DELETE returned %q, want 2", out)
	}
	if out := s.Apply(Get("a")); out != nil {
		t.Errorf("GET after DELETE = %q", out)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Applied() != 5 {
		t.Errorf("Applied = %d", s.Applied())
	}
}

func TestMalformedCommandIsDeterministicNoop(t *testing.T) {
	a, b := New(), New()
	junk := []byte{0xFF, 0x01}
	if out := a.Apply(junk); out != nil {
		t.Errorf("junk returned %q", out)
	}
	b.Apply(junk)
	if !reflect.DeepEqual(a.SnapshotMap(), b.SnapshotMap()) {
		t.Error("junk diverged state")
	}
}

func TestDeterminismProperty(t *testing.T) {
	// Two stores applying the same command sequence end identical.
	f := func(keys []string, vals [][]byte) bool {
		a, b := New(), New()
		for i, k := range keys {
			var payload []byte
			switch i % 3 {
			case 0:
				var v []byte
				if i < len(vals) {
					v = vals[i]
				}
				payload = Put(k, v)
			case 1:
				payload = Get(k)
			default:
				payload = Delete(k)
			}
			ra := a.Apply(payload)
			rb := b.Apply(payload)
			if !bytes.Equal(ra, rb) {
				return false
			}
		}
		return reflect.DeepEqual(a.SnapshotMap(), b.SnapshotMap())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLookupAndSnapshotAreCopies(t *testing.T) {
	s := New()
	s.Apply(Put("k", []byte("v")))
	v, ok := s.Lookup("k")
	if !ok || string(v) != "v" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
	snap := s.SnapshotMap()
	snap["k"][0] = 'x'
	if v, _ := s.Lookup("k"); string(v) != "v" {
		t.Error("SnapshotMap aliases store state")
	}
}

func TestOpString(t *testing.T) {
	if OpPut.String() != "PUT" || OpGet.String() != "GET" || OpDelete.String() != "DELETE" {
		t.Error("op names wrong")
	}
	if Op(9).String() != "Op(9)" {
		t.Error("unknown op name wrong")
	}
}
