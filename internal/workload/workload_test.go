package workload

import (
	"testing"
	"time"

	"clockrsm/internal/sim"
	"clockrsm/internal/types"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

// echoService replies to every command after a fixed delay.
type echoService struct {
	eng   *sim.Engine
	delay time.Duration
	pool  *Pool
}

func (e *echoService) submit(cmd types.Command) {
	id := cmd.ID
	e.eng.After(e.delay, func() {
		e.pool.OnReply(types.Result{ID: id})
	})
}

func TestClosedLoopClients(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, 1, PoolOptions{ThinkMax: ms(80), PayloadSize: 64})
	svc := &echoService{eng: eng, delay: ms(20), pool: p}
	p.AttachClients(0, 10, svc.submit)
	eng.RunUntil(10 * time.Second)

	if p.Issued() == 0 || p.Completed() == 0 {
		t.Fatal("no traffic generated")
	}
	// Closed loop: issued - completed = outstanding ≤ clients.
	if p.Issued()-p.Completed() != uint64(p.Outstanding()) {
		t.Errorf("issued %d, completed %d, outstanding %d", p.Issued(), p.Completed(), p.Outstanding())
	}
	if p.Outstanding() > 10 {
		t.Errorf("more outstanding commands (%d) than clients", p.Outstanding())
	}
	// Each client averages one op per (delay + think/2) ≈ 60ms: expect
	// roughly 10s/60ms * 10 clients ≈ 1600 ops; accept a broad band.
	if p.Completed() < 1000 || p.Completed() > 2500 {
		t.Errorf("completed %d ops, want ≈1600", p.Completed())
	}
	s := p.Sample(0)
	if s.Count() == 0 {
		t.Fatal("no samples")
	}
	if s.Mean() != ms(20) {
		t.Errorf("mean latency %v, want exactly 20ms", s.Mean())
	}
}

func TestWarmupDiscardsSamples(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, 1, PoolOptions{ThinkMax: ms(10), PayloadSize: 8, Warmup: 5 * time.Second})
	svc := &echoService{eng: eng, delay: ms(5), pool: p}
	p.AttachClients(0, 5, svc.submit)
	eng.RunUntil(4 * time.Second) // entirely within warmup
	if got := p.Sample(0).Count(); got != 0 {
		t.Errorf("samples during warmup: %d", got)
	}
	eng.RunUntil(10 * time.Second)
	if got := p.Sample(0).Count(); got == 0 {
		t.Error("no samples after warmup")
	}
}

func TestZeroThinkTime(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, 1, PoolOptions{PayloadSize: 8})
	svc := &echoService{eng: eng, delay: ms(10), pool: p}
	p.AttachClients(0, 1, svc.submit)
	eng.RunUntil(time.Second)
	// One client, 10ms per op, zero think: exactly 100 ops issued.
	if p.Completed() < 99 || p.Completed() > 101 {
		t.Errorf("completed %d, want ≈100", p.Completed())
	}
}

func TestDuplicateReplyIgnored(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, 1, PoolOptions{ThinkMax: ms(10), PayloadSize: 8})
	var last types.CommandID
	p.AttachClients(0, 1, func(cmd types.Command) { last = cmd.ID })
	eng.RunUntilIdle()
	p.OnReply(types.Result{ID: last})
	completed := p.Completed()
	p.OnReply(types.Result{ID: last}) // duplicate
	if p.Completed() != completed {
		t.Error("duplicate reply counted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		eng := sim.NewEngine()
		p := NewPool(eng, 7, PoolOptions{ThinkMax: ms(30), PayloadSize: 16})
		svc := &echoService{eng: eng, delay: ms(15), pool: p}
		p.AttachClients(0, 8, svc.submit)
		p.AttachClients(1, 8, svc.submit)
		eng.RunUntil(5 * time.Second)
		return p.Completed()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %d vs %d", a, b)
	}
}

func TestKeyName(t *testing.T) {
	tests := map[int]string{0: "key-0", 7: "key-7", 42: "key-42", 999: "key-999", 1023: "key-1023"}
	for i, want := range tests {
		if got := keyName(i); got != want {
			t.Errorf("keyName(%d) = %q, want %q", i, got, want)
		}
	}
}
