// Package workload generates the client load of the paper's evaluation
// (Section VI-B): closed-loop clients attached to a replica, each
// submitting one command at a time with a uniformly random think time,
// over the discrete-event simulator.
package workload

import (
	"math/rand"
	"time"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/sim"
	"clockrsm/internal/stats"
	"clockrsm/internal/types"
)

// PoolOptions configure the client pool.
type PoolOptions struct {
	// ThinkMax is the upper bound of the uniform think time between a
	// reply and the next request (the paper uses 0–80 ms).
	ThinkMax time.Duration
	// PayloadSize is the value size of the generated update commands
	// (the paper uses 64 B requests).
	PayloadSize int
	// Keys is the key-space size for the random updates (default 1024).
	Keys int
	// Warmup discards latency samples observed before this virtual time.
	Warmup time.Duration
}

// pendingCmd tracks one in-flight command.
type pendingCmd struct {
	client *client
	start  time.Duration
}

// Pool manages closed-loop clients over a simulated cluster and
// collects per-replica commit latencies.
type Pool struct {
	eng     *sim.Engine
	rng     *rand.Rand
	opts    PoolOptions
	samples map[types.ReplicaID]*stats.Sample
	pending map[types.CommandID]pendingCmd
	seq     uint64

	issued    uint64
	completed uint64
}

// client is one closed-loop client.
type client struct {
	pool    *Pool
	replica types.ReplicaID
	submit  func(types.Command)
}

// NewPool creates a pool over the engine. Runs with equal seeds and
// configurations are identical.
func NewPool(eng *sim.Engine, seed int64, opts PoolOptions) *Pool {
	if opts.Keys <= 0 {
		opts.Keys = 1024
	}
	return &Pool{
		eng:     eng,
		rng:     rand.New(rand.NewSource(seed)),
		opts:    opts,
		samples: make(map[types.ReplicaID]*stats.Sample),
		pending: make(map[types.CommandID]pendingCmd),
	}
}

// AttachClients binds n closed-loop clients to a replica. submit must
// hand the command to the replica's protocol; replies must be routed
// back via OnReply. Clients start at a random phase within ThinkMax.
func (p *Pool) AttachClients(replica types.ReplicaID, n int, submit func(types.Command)) {
	if p.samples[replica] == nil {
		p.samples[replica] = &stats.Sample{}
	}
	for i := 0; i < n; i++ {
		c := &client{pool: p, replica: replica, submit: submit}
		p.eng.After(p.think(), c.issue)
	}
}

// think draws a uniform think time in [0, ThinkMax].
func (p *Pool) think() time.Duration {
	if p.opts.ThinkMax <= 0 {
		return 0
	}
	return time.Duration(p.rng.Int63n(int64(p.opts.ThinkMax)))
}

// issue submits this client's next command.
func (c *client) issue() {
	p := c.pool
	p.seq++
	cid := types.CommandID{Origin: c.replica, Seq: p.seq}
	key := keyName(p.rng.Intn(p.opts.Keys))
	value := make([]byte, p.opts.PayloadSize)
	p.pending[cid] = pendingCmd{client: c, start: p.eng.Now()}
	p.issued++
	c.submit(types.Command{ID: cid, Payload: kvstore.Put(key, value)})
}

// OnReply completes a command: it records the commit latency (after
// warmup) and schedules the client's next request. Wire it into the
// replica's rsm.App.OnReply.
func (p *Pool) OnReply(res types.Result) {
	pc, ok := p.pending[res.ID]
	if !ok {
		return // duplicate or foreign reply
	}
	delete(p.pending, res.ID)
	p.completed++
	now := p.eng.Now()
	if now >= p.opts.Warmup {
		p.samples[pc.client.replica].Add(now - pc.start)
	}
	p.eng.After(p.think(), pc.client.issue)
}

// Sample returns the latency sample of a replica's clients.
func (p *Pool) Sample(replica types.ReplicaID) *stats.Sample {
	if s := p.samples[replica]; s != nil {
		return s
	}
	return &stats.Sample{}
}

// Issued returns the number of commands submitted.
func (p *Pool) Issued() uint64 { return p.issued }

// Completed returns the number of replies received.
func (p *Pool) Completed() uint64 { return p.completed }

// Outstanding returns commands without a reply yet.
func (p *Pool) Outstanding() int { return len(p.pending) }

// keyName renders key i as a short deterministic string.
func keyName(i int) string {
	const digits = "0123456789"
	buf := [8]byte{'k', 'e', 'y', '-'}
	n := 4
	if i >= 1000 {
		buf[n] = digits[(i/1000)%10]
		n++
	}
	if i >= 100 {
		buf[n] = digits[(i/100)%10]
		n++
	}
	if i >= 10 {
		buf[n] = digits[(i/10)%10]
		n++
	}
	buf[n] = digits[i%10]
	n++
	return string(buf[:n])
}
