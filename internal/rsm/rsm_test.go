package rsm

import (
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

// fakeEnv records sends for Broadcast tests.
type fakeEnv struct {
	id   types.ReplicaID
	sent []types.ReplicaID
}

func (f *fakeEnv) ID() types.ReplicaID                    { return f.id }
func (f *fakeEnv) Spec() []types.ReplicaID                { return []types.ReplicaID{0, 1, 2} }
func (f *fakeEnv) Clock() int64                           { return 0 }
func (f *fakeEnv) Send(to types.ReplicaID, m msg.Message) { f.sent = append(f.sent, to) }
func (f *fakeEnv) After(d time.Duration, fn func())       {}
func (f *fakeEnv) Log() storage.Log                       { return storage.NewMemLog() }

var _ Env = (*fakeEnv)(nil)

func TestBroadcastSkipsSelf(t *testing.T) {
	env := &fakeEnv{id: 1}
	Broadcast(env, []types.ReplicaID{0, 1, 2}, &msg.Commit{Slot: 1})
	if len(env.sent) != 2 || env.sent[0] != 0 || env.sent[1] != 2 {
		t.Errorf("Broadcast sent to %v, want [r0 r2]", env.sent)
	}
}

// recordingSM tracks applied payloads and implements Snapshotter.
type recordingSM struct {
	applied [][]byte
	state   []byte
}

func (r *recordingSM) Apply(cmd []byte) []byte {
	r.applied = append(r.applied, cmd)
	return append([]byte("out:"), cmd...)
}

func (r *recordingSM) Snapshot() []byte       { return r.state }
func (r *recordingSM) Restore(s []byte) error { r.state = s; return nil }

func TestAppExecuteRoutesReplies(t *testing.T) {
	var replies []types.Result
	var commits []types.CommandID
	app := &App{
		SM:       &recordingSM{},
		OnReply:  func(res types.Result) { replies = append(replies, res) },
		OnCommit: func(ts types.Timestamp, cmd types.Command) { commits = append(commits, cmd.ID) },
	}
	own := types.Command{ID: types.CommandID{Origin: 1, Seq: 1}, Payload: []byte("a")}
	foreign := types.Command{ID: types.CommandID{Origin: 2, Seq: 1}, Payload: []byte("b")}

	app.Execute(1, types.Timestamp{Wall: 1}, own)
	app.Execute(1, types.Timestamp{Wall: 2}, foreign)

	if app.Applied() != 2 {
		t.Errorf("Applied = %d", app.Applied())
	}
	if len(commits) != 2 {
		t.Errorf("OnCommit fired %d times", len(commits))
	}
	if len(replies) != 1 || replies[0].ID != own.ID {
		t.Errorf("replies = %+v, want only the own command", replies)
	}
	if string(replies[0].Value) != "out:a" {
		t.Errorf("reply value = %q", replies[0].Value)
	}
}

func TestAppExecuteNilCallbacks(t *testing.T) {
	app := &App{SM: NopSM{}}
	// Must not panic without OnReply/OnCommit.
	app.Execute(0, types.Timestamp{}, types.Command{ID: types.CommandID{Origin: 0, Seq: 1}})
	if app.Applied() != 1 {
		t.Errorf("Applied = %d", app.Applied())
	}
}

func TestTrySnapshotAndRestore(t *testing.T) {
	withSnap := &App{SM: &recordingSM{state: []byte("s0")}}
	state, ok := withSnap.TrySnapshot()
	if !ok || string(state) != "s0" {
		t.Errorf("TrySnapshot = %q, %v", state, ok)
	}
	restored, err := withSnap.TryRestore([]byte("s1"))
	if err != nil || !restored {
		t.Errorf("TryRestore = %v, %v", restored, err)
	}
	if s, _ := withSnap.TrySnapshot(); string(s) != "s1" {
		t.Errorf("state after restore = %q", s)
	}

	withoutSnap := &App{SM: NopSM{}}
	if _, ok := withoutSnap.TrySnapshot(); ok {
		t.Error("NopSM reported a snapshot")
	}
	restored, err = withoutSnap.TryRestore([]byte("x"))
	if err != nil || restored {
		t.Errorf("TryRestore on non-snapshotter = %v, %v", restored, err)
	}
}

func TestNopSM(t *testing.T) {
	if out := (NopSM{}).Apply([]byte("anything")); out != nil {
		t.Errorf("NopSM returned %q", out)
	}
}
