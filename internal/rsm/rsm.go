// Package rsm defines the interfaces shared by every replication
// protocol in this repository. Protocols are single-threaded,
// event-driven state machines: all methods of a Protocol are invoked
// from one logical event loop (the simulator's event dispatch or a
// replica goroutine in the real runtime), so protocol implementations
// need no internal locking.
package rsm

import (
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

// Env is the environment a protocol instance runs in. Implementations
// are provided by the simulator (internal/sim) and the real runtime
// (internal/node).
type Env interface {
	// ID is this replica's identity within Spec.
	ID() types.ReplicaID
	// Spec returns the IDs of all replicas in the system specification,
	// active or failed (Table I).
	Spec() []types.ReplicaID
	// Clock returns the replica's physical clock reading in nanoseconds.
	// Readings are strictly increasing.
	Clock() int64
	// Send transmits m to another replica asynchronously.
	Send(to types.ReplicaID, m msg.Message)
	// After schedules fn on this replica's event loop after d. The timer
	// is best-effort and stops firing if the replica crashes.
	After(d time.Duration, fn func())
	// Log is this replica's stable storage log.
	Log() storage.Log
}

// Multicaster is optionally implemented by environments whose transport
// can fan a message out to many peers while encoding it only once (see
// transport.Broadcaster). Broadcast prefers it over per-peer Send.
type Multicaster interface {
	// SendAll transmits m to every replica in dst except the environment
	// itself, with the same asynchronous best-effort semantics as Send.
	SendAll(dst []types.ReplicaID, m msg.Message)
}

// Broadcast sends m to every replica in dst except env's own ID.
// Protocols handle their own copy locally, mirroring the paper's
// "send to all replicas in Config" pseudocode. If env implements
// Multicaster, the message is encoded once for the whole fan-out
// instead of once per peer.
func Broadcast(env Env, dst []types.ReplicaID, m msg.Message) {
	if mc, ok := env.(Multicaster); ok {
		mc.SendAll(dst, m)
		return
	}
	for _, id := range dst {
		if id != env.ID() {
			env.Send(id, m)
		}
	}
}

// BatchDeliverer is optionally implemented by protocols that can defer
// work across a burst of events. The event loop brackets each drained
// batch of queued events with BeginBatch/EndBatch; between the two, the
// protocol may buffer outgoing messages (coalescing them into one
// msg.Batch) and postpone its commit scan, so a burst of deliveries
// costs one commit cascade and one outgoing frame instead of one each
// per message. EndBatch is always invoked after the matching
// BeginBatch, on the same event loop.
type BatchDeliverer interface {
	BeginBatch()
	EndBatch()
}

// IDAllocator is implemented by protocols that allocate client command
// identifiers from replica-local state. The runtime's event loop mints
// IDs through it when proposals arrive (node.Propose), so clients never
// reach across goroutines into protocol state, and proposals share one
// collision-free sequence with any direct protocol use. Like every
// Protocol method, NextCommandID must be invoked on the event loop.
type IDAllocator interface {
	NextCommandID() types.CommandID
}

// Protocol is a replication protocol instance bound to one replica.
type Protocol interface {
	// Start installs timers and begins participation. It must be called
	// exactly once, on the event loop.
	Start()
	// Submit hands a command from a local client to the protocol
	// (the 〈REQUEST cmd〉 upcall).
	Submit(cmd types.Command)
	// Deliver processes a protocol message from another replica.
	Deliver(from types.ReplicaID, m msg.Message)
}

// StateMachine is the deterministic service being replicated
// (Section II-B).
type StateMachine interface {
	// Apply executes one command and returns its output. Apply must be
	// deterministic: identical command sequences produce identical
	// outputs and states on every replica.
	Apply(cmd []byte) []byte
}

// App connects a protocol to the replicated application: committed
// commands are applied in total order, and results of locally
// originated commands flow back to clients.
type App struct {
	// SM is the replicated state machine.
	SM StateMachine
	// OnReply, if non-nil, is invoked for commands that originated at
	// this replica, with the execution result.
	OnReply func(res types.Result)
	// OnCommit, if non-nil, observes every committed command in
	// execution order (used by tests and measurements).
	OnCommit func(ts types.Timestamp, cmd types.Command)

	applied uint64
}

// Redirector is optionally implemented by state machines that can
// refuse a command because its key has moved to another replication
// group (the resharding fence). TakeRedirect reports whether the most
// recent Apply was fenced, and the group the key now belongs to; the
// flag is consumed by the call.
type Redirector interface {
	TakeRedirect() (types.GroupID, bool)
}

// Execute applies cmd, bumps the execution counter, and routes the reply
// if the command originated at self. If the state machine fenced the
// command (Redirector), the reply carries the redirect instead of a
// value, so the origin can fail the proposal with a typed wrong-group
// error.
func (a *App) Execute(self types.ReplicaID, ts types.Timestamp, cmd types.Command) {
	out := a.SM.Apply(cmd.Payload)
	a.applied++
	if a.OnCommit != nil {
		a.OnCommit(ts, cmd)
	}
	if a.OnReply != nil && cmd.ID.Origin == self {
		res := types.Result{ID: cmd.ID, Value: out}
		if rd, ok := a.SM.(Redirector); ok {
			if g, fenced := rd.TakeRedirect(); fenced {
				res.SetRedirect(g)
			}
		}
		a.OnReply(res)
	}
}

// Applied returns the number of commands executed so far.
func (a *App) Applied() uint64 { return a.applied }

// Snapshotter is optionally implemented by state machines that support
// checkpointing (Section V-B): Snapshot serializes the full state after
// the last applied command; Restore replaces the state from a snapshot.
type Snapshotter interface {
	// Snapshot returns a serialized copy of the current state.
	Snapshot() []byte
	// Restore replaces the state with a previously taken snapshot.
	Restore(state []byte) error
}

// TrySnapshot snapshots the state machine if it supports it.
func (a *App) TrySnapshot() ([]byte, bool) {
	s, ok := a.SM.(Snapshotter)
	if !ok {
		return nil, false
	}
	return s.Snapshot(), true
}

// TryRestore restores the state machine from a snapshot if it supports
// it; it reports whether the restore happened.
func (a *App) TryRestore(state []byte) (bool, error) {
	s, ok := a.SM.(Snapshotter)
	if !ok {
		return false, nil
	}
	if err := s.Restore(state); err != nil {
		return false, err
	}
	return true, nil
}

// NopSM is a state machine that ignores commands; useful in protocol
// tests that only care about ordering.
type NopSM struct{}

var _ StateMachine = NopSM{}

// Apply implements StateMachine.
func (NopSM) Apply([]byte) []byte { return nil }
