package rsm

import "clockrsm/internal/types"

// ConfigView is a protocol's view of its current configuration: the
// installed epoch, the member set, and whether the local replica is part
// of it. Members is a private copy ordered by replica ID.
type ConfigView struct {
	Epoch    types.Epoch
	Members  []types.ReplicaID
	InConfig bool
}

// ConfigEvent notifies a listener that the protocol installed a new
// configuration (or refused a command under the current one).
type ConfigEvent struct {
	// View is the configuration in force after the event.
	View ConfigView
	// Dropped lists locally originated commands the protocol discarded:
	// their uncommitted PREPAREs were pruned by a reconfiguration (or the
	// replica was outside the configuration at submission), and the
	// protocol guarantees they can never execute in any epoch — so a
	// client may safely resubmit without risking duplicate execution.
	Dropped []types.CommandID
}

// Rejoiner is implemented by protocols with a recovery entry point: a
// replica restarted from its stable log calls Rejoin to force a
// reconfiguration that puts it back into the configuration, catching up
// on missed epochs and history (checkpoint + tail state transfer) along
// the way (core.Replica.Rejoin). Must be invoked on the event loop; the
// call is asynchronous and self-retrying.
type Rejoiner interface {
	Rejoin()
}

// Reconfigurable is implemented by protocols that support membership
// change as a first-class operation (Clock-RSM's Algorithm 3). Like
// every Protocol method, all three must be invoked on the event loop;
// the listener is likewise fired on the event loop.
type Reconfigurable interface {
	// Reconfigure proposes replacing the configuration with cfg at the
	// next epoch. The proposal is asynchronous: a competing proposal may
	// win the epoch, in which case the listener observes a different
	// member set. Callers learn the outcome through the listener.
	Reconfigure(cfg []types.ReplicaID)
	// ConfigView returns the current configuration view. It allocates
	// (Members is copied); intended for control-plane use.
	ConfigView() ConfigView
	// SetConfigListener installs fn, fired once per installed epoch (and
	// for drop-only events, with an unchanged view). At most one
	// listener; must be set before Start.
	SetConfigListener(fn func(ev ConfigEvent))
}
