package rsm

// StateReader is implemented by protocols that can serve reads from the
// locally executed stable prefix, without replicating the read through
// the log. Clock-RSM qualifies because commits happen strictly in
// timestamp order (the commit marks are prefix-closed): once every
// command with timestamp ≤ W has executed locally and no replica in the
// configuration can still send one, a read captured at any t ≤ W
// observes everything a client could have seen completed — the
// stable-timestamp technique GentleRain-style systems use for local
// reads, derived here from the same physical-clock stability rule that
// commits writes. Slot-based protocols (paxos, mencius) have no such
// watermark and fall back to replicating reads as commands.
//
// Like every Protocol method, StableTS must be invoked on the event
// loop; the listener likewise fires on the event loop.
type StateReader interface {
	// StableTS returns the executed watermark: the highest wall-clock
	// nanosecond W such that every command with timestamp wall ≤ W has
	// been executed locally, and no command with timestamp wall ≤ W can
	// commit after this call. The watermark is monotonically
	// non-decreasing in steady state, but a reconfiguration can regress
	// it transiently: it freezes at the commit frontier during
	// suspension (a state transfer may execute commands above it) and
	// restarts from the decision baseline at install, recovering as the
	// new configuration's members are heard from. Consumers must gate
	// on "W ≥ target", never on W alone moving forward.
	StableTS() int64
	// SetStableListener installs fn, invoked on the event loop at the
	// end of every turn in which the watermark may have advanced — the
	// timestamp-waiter hook the runtime uses to release reads parked
	// until the watermark covers their capture time. At most one
	// listener; it must be installed before Start.
	SetStableListener(fn func())
}

// StateQuerier is optionally implemented by state machines that can
// answer read-only queries directly from local state, bypassing the
// replicated Apply path. Query must not mutate state, and — unlike
// Apply, which the replication layer serializes — it must be safe to
// call concurrently with Apply: the runtime serves bounded-staleness
// reads from client goroutines without crossing the event loop.
type StateQuerier interface {
	// Query answers q against the current local state. The query
	// encoding is the state machine's own; for the kvstore it is the
	// same payload a replicated read command would carry, so the
	// runtime can fall back to Apply-through-the-log when either the
	// protocol or the state machine lacks local-read support.
	Query(q []byte) []byte
}

// Query answers a read-only query against the state machine, bypassing
// the replicated Apply path (and therefore OnReply/OnCommit). It
// reports false when the state machine does not support local queries,
// in which case the caller must replicate the read as a command.
func (a *App) Query(q []byte) ([]byte, bool) {
	sq, ok := a.SM.(StateQuerier)
	if !ok {
		return nil, false
	}
	return sq.Query(q), true
}
