// Package reshard implements elastic resharding for the multi-group
// stack: a versioned slot-based routing table that replaces the fixed
// FNV mod-G key→group map as the source of truth, a state-machine
// wrapper that replicates routing changes through each group's own
// Clock-RSM log (fence and install control commands), and a split
// coordinator that moves a slice of one group's key space to another
// group live — checkpoint, seed, fence, flip — without losing
// linearizability across the boundary.
//
// The table is hash-range based: the key space is divided into a fixed
// number of slots (256 per initial group), a key's slot is its FNV-1a
// hash mod NumSlots, and each slot carries a claim naming its owning
// group. The initial table assigns slot s to group s mod G, which is
// mathematically identical to the legacy hash-mod-G router (because
// h % (G·256) % G == h % G), so bringing the table up over existing
// logs changes no key's placement. Claims are versioned by a per-slot
// generation and merge monotonically — the highest (generation, phase)
// wins — so replicas converge to one table regardless of the order in
// which they observe fence and install commands.
package reshard

import (
	"fmt"
	"sort"

	"clockrsm/internal/shard"
	"clockrsm/internal/types"
)

// SlotsPerGroup is the number of hash slots allocated per initial
// group. 256 slots per group keeps split granularity fine (a split
// moves half a group's slots) while the whole table stays a few KiB.
const SlotsPerGroup = 256

// Phase is a slot claim's lifecycle state.
type Phase uint8

const (
	// Owned means the slot is stably owned by Claim.Owner.
	Owned Phase = iota
	// Migrating means the slot is fenced at Claim.Owner and its keys
	// are moving to Claim.To. Writes routed to the owner are redirected
	// until the install flips the claim to Owned at the target.
	Migrating
)

func (p Phase) String() string {
	if p == Migrating {
		return "migrating"
	}
	return "owned"
}

// Claim records one slot's ownership. Claims are totally ordered by
// (Gen, Phase): a higher generation always wins, and within one
// generation Owned supersedes Migrating — the install that completes a
// split carries the same generation as the fence that started it.
type Claim struct {
	// Gen is the slot's ownership generation, bumped by each split.
	Gen uint32
	// Phase is the claim's lifecycle state.
	Phase Phase
	// Owner is the group that owns the slot (Owned) or is fencing it
	// away (Migrating).
	Owner types.GroupID
	// To is the migration target; meaningful only while Migrating.
	To types.GroupID
}

// supersedes reports whether c should replace old under the monotone
// merge order.
func (c Claim) supersedes(old Claim) bool {
	if c.Gen != old.Gen {
		return c.Gen > old.Gen
	}
	return c.Phase == Owned && old.Phase == Migrating
}

// Table is an immutable snapshot of the routing table: one claim per
// slot plus a version counter bumped on every visible change. Readers
// share Table pointers freely; all mutation goes through Clone or the
// Holder.
type Table struct {
	// Version counts visible table changes on this host, for
	// observability and client refresh; it is host-local, not
	// replicated (the replicated truth is the per-slot claims).
	Version uint64
	// Slots holds one claim per hash slot.
	Slots []Claim
	// owners is a dense slot→owner index rebuilt whenever a finished
	// table is published (Legacy, Merge, DecodeTable). It keeps the
	// per-request lookup on a 4-byte stride instead of loading 16-byte
	// claims, which is what holds Group within the routing budget of
	// the fixed hash-mod-G router it replaced. Tables under
	// construction (Clone) leave it nil and Group falls back to Slots.
	owners []types.GroupID
}

// reindex rebuilds the dense owner index from Slots. Call it exactly
// when a table stops mutating and starts being shared.
func (t *Table) reindex() *Table {
	o := make([]types.GroupID, len(t.Slots))
	for i := range t.Slots {
		o[i] = t.Slots[i].Owner
	}
	t.owners = o
	return t
}

// Legacy builds the initial table for a cluster of g groups: g·256
// slots with slot s owned by group s mod g at generation zero. Key
// placement under this table is bit-identical to the legacy
// hash-mod-g router.
func Legacy(g int) *Table {
	if g <= 0 {
		g = 1
	}
	t := &Table{Version: 1, Slots: make([]Claim, g*SlotsPerGroup)}
	for s := range t.Slots {
		t.Slots[s] = Claim{Owner: types.GroupID(s % g)}
	}
	return t.reindex()
}

// NumSlots returns the table's slot count. It is fixed for the life of
// the cluster: splits reassign slots, they never change the slot
// space.
func (t *Table) NumSlots() int { return len(t.Slots) }

// SlotOf maps a key to its hash slot.
func (t *Table) SlotOf(key string) int {
	return int(shard.Hash(key) % uint32(len(t.Slots)))
}

// Group returns the group responsible for key: the slot's owner, even
// mid-migration (the owner redirects fenced writes itself, which keeps
// routing and fencing agreement a per-group log property rather than a
// cross-host race).
func (t *Table) Group(key string) types.GroupID {
	if o := t.owners; len(o) != 0 {
		return o[shard.Hash(key)%uint32(len(o))]
	}
	return t.Slots[shard.Hash(key)%uint32(len(t.Slots))].Owner
}

// ClaimOf returns the claim covering key.
func (t *Table) ClaimOf(key string) Claim {
	return t.Slots[t.SlotOf(key)]
}

// Groups returns the number of groups the table routes to: one past
// the highest group named by any claim. Hosted capacity (the -groups
// flag) must be at least this.
func (t *Table) Groups() int {
	max := types.GroupID(0)
	for _, c := range t.Slots {
		if c.Owner > max {
			max = c.Owner
		}
		if c.Phase == Migrating && c.To > max {
			max = c.To
		}
	}
	return int(max) + 1
}

// OwnedSlots returns the slots currently claimed by group g (including
// slots it is fencing away), in ascending order.
func (t *Table) OwnedSlots(g types.GroupID) []uint32 {
	var out []uint32
	for s, c := range t.Slots {
		if c.Owner == g {
			out = append(out, uint32(s))
		}
	}
	return out
}

// Migrations returns the in-flight migrations recorded in the table,
// keyed by slot.
func (t *Table) Migrations() map[uint32]Claim {
	var out map[uint32]Claim
	for s, c := range t.Slots {
		if c.Phase == Migrating {
			if out == nil {
				out = make(map[uint32]Claim)
			}
			out[uint32(s)] = c
		}
	}
	return out
}

// Clone returns a deep copy safe to mutate.
func (t *Table) Clone() *Table {
	nt := &Table{Version: t.Version, Slots: make([]Claim, len(t.Slots))}
	copy(nt.Slots, t.Slots)
	return nt
}

// Merge folds claims into a copy of t under the monotone order and
// returns (copy, true) if anything changed, or (t, false) if every
// claim was stale. The merge is order-independent: applying the same
// claim set in any order yields the same table.
func (t *Table) Merge(claims map[uint32]Claim) (*Table, bool) {
	var nt *Table
	for s, c := range claims {
		if int(s) >= len(t.Slots) {
			continue
		}
		cur := t.Slots[s]
		if nt != nil {
			cur = nt.Slots[s]
		}
		if !c.supersedes(cur) {
			continue
		}
		if nt == nil {
			nt = t.Clone()
			nt.Version++
		}
		nt.Slots[s] = c
	}
	if nt == nil {
		return t, false
	}
	return nt.reindex(), true
}

// PlanSplit selects the slots a split of src toward dst would move:
// the upper half of src's owned slots (rounded down, so src keeps the
// larger share when odd). It returns the slots and the generation the
// split's fence and install claims must carry — one past the highest
// generation among the moving slots.
func (t *Table) PlanSplit(src, dst types.GroupID) (slots []uint32, gen uint32, err error) {
	if src == dst {
		return nil, 0, fmt.Errorf("reshard: split source and target are both %v", src)
	}
	owned := t.OwnedSlots(src)
	var stable []uint32
	for _, s := range owned {
		if t.Slots[s].Phase == Owned {
			stable = append(stable, s)
		}
	}
	if len(stable) < 2 {
		return nil, 0, fmt.Errorf("reshard: group %v has %d splittable slots, need at least 2", src, len(stable))
	}
	slots = stable[len(stable)/2+len(stable)%2:]
	for _, s := range slots {
		if g := t.Slots[s].Gen; g >= gen {
			gen = g + 1
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	return slots, gen, nil
}

// String renders a compact per-group summary: slot counts and any
// in-flight migrations.
func (t *Table) String() string {
	counts := make(map[types.GroupID]int)
	migrating := 0
	for _, c := range t.Slots {
		counts[c.Owner]++
		if c.Phase == Migrating {
			migrating++
		}
	}
	groups := make([]types.GroupID, 0, len(counts))
	for g := range counts {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	s := fmt.Sprintf("v%d slots=%d", t.Version, len(t.Slots))
	for _, g := range groups {
		s += fmt.Sprintf(" %v=%d", g, counts[g])
	}
	if migrating > 0 {
		s += fmt.Sprintf(" migrating=%d", migrating)
	}
	return s
}
