package reshard

import (
	"fmt"
	"testing"

	"clockrsm/internal/shard"
	"clockrsm/internal/types"
)

// benchKeys is a fixed working set shared by the routing benchmarks so
// the fixed-router and table paths hash identical traffic.
func benchKeys() []string {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%d", i)
	}
	return keys
}

// BenchmarkRouterFixed is the baseline: the legacy hash-mod-G router
// the dynamic table replaced as the source of placement truth.
func BenchmarkRouterFixed(b *testing.B) {
	router := shard.NewRouter(4)
	keys := benchKeys()
	b.ReportAllocs()
	b.ResetTimer()
	var sink types.GroupID
	for i := 0; i < b.N; i++ {
		sink = router.Group(keys[i&1023])
	}
	_ = sink
}

// BenchmarkRouterTable measures a lookup through the dynamic routing
// table at genesis (same placement as the fixed router). The budget in
// ISSUE 9 is <5% over BenchmarkRouterFixed.
func BenchmarkRouterTable(b *testing.B) {
	tbl := Legacy(4)
	keys := benchKeys()
	b.ReportAllocs()
	b.ResetTimer()
	var sink types.GroupID
	for i := 0; i < b.N; i++ {
		sink = tbl.Group(keys[i&1023])
	}
	_ = sink
}

// BenchmarkRouterTableSplit is the same lookup against a table that has
// absorbed a split — the slot array is no longer the uniform s mod g
// pattern, so this catches any cost that only shows up post-reshard.
func BenchmarkRouterTableSplit(b *testing.B) {
	tbl, _, err := applySplit(Legacy(4), 0, 4)
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys()
	b.ReportAllocs()
	b.ResetTimer()
	var sink types.GroupID
	for i := 0; i < b.N; i++ {
		sink = tbl.Group(keys[i&1023])
	}
	_ = sink
}
