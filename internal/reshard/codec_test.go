package reshard

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleTable() *Table {
	t := Legacy(3)
	t.Version = 42
	t.Slots[0] = Claim{Gen: 7, Phase: Migrating, Owner: 0, To: 5}
	t.Slots[17] = Claim{Gen: 3, Phase: Owned, Owner: 4}
	return t
}

func TestTableCodecRoundTrip(t *testing.T) {
	want := sampleTable()
	got, err := DecodeTable(EncodeTable(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || !reflect.DeepEqual(got.Slots, want.Slots) {
		t.Fatal("table did not round-trip")
	}
}

func TestTableCodecRejectsGarbage(t *testing.T) {
	enc := EncodeTable(sampleTable())
	cases := map[string][]byte{
		"empty":     {},
		"short":     enc[:10],
		"bad magic": append([]byte("XXXX"), enc[4:]...),
		"truncated": enc[:len(enc)-5],
		"trailing":  append(append([]byte(nil), enc...), 0),
		"bad phase": append(append([]byte(nil), enc[:16+4]...), append([]byte{9}, enc[16+5:]...)...),
	}
	for name, buf := range cases {
		if _, err := DecodeTable(buf); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "routes")
	// Missing file: (nil, nil), the caller synthesizes the legacy table.
	if tbl, err := Load(path); tbl != nil || err != nil {
		t.Fatalf("Load(missing) = %v, %v; want nil, nil", tbl, err)
	}
	want := sampleTable()
	if err := Save(want, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || !reflect.DeepEqual(got.Slots, want.Slots) {
		t.Fatal("table did not survive Save/Load")
	}
}

func TestFenceCodecRoundTrip(t *testing.T) {
	want := Fence{Gen: 9, From: 1, To: 4, Slots: []uint32{3, 5, 250}}
	enc := EncodeFence(want)
	if !IsControl(enc) {
		t.Fatal("fence payload not recognized as control")
	}
	got, err := DecodeFence(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fence round-trip: got %+v, want %+v", got, want)
	}
	for _, bad := range [][]byte{{}, enc[:5], append(append([]byte(nil), enc...), 1)} {
		if _, err := DecodeFence(bad); err == nil {
			t.Error("malformed fence decoded without error")
		}
	}
}

func TestInstallCodecRoundTrip(t *testing.T) {
	want := Install{
		Gen: 2, From: 0, To: 3, Final: true,
		Slots: []uint32{10, 12},
		Pairs: []Pair{
			{Key: "a", Value: []byte("1")},
			{Key: "empty", Value: []byte{}},
			{Key: "blob", Value: bytes.Repeat([]byte{0xee}, 300)},
		},
	}
	enc := EncodeInstall(want)
	if !IsControl(enc) {
		t.Fatal("install payload not recognized as control")
	}
	got, err := DecodeInstall(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != want.Gen || got.From != want.From || got.To != want.To || got.Final != want.Final ||
		!reflect.DeepEqual(got.Slots, want.Slots) || len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("install round-trip: got %+v, want %+v", got, want)
	}
	for i, p := range got.Pairs {
		// bytes.Equal, not DeepEqual: a zero-length value may decode
		// as nil, which the store treats identically.
		if p.Key != want.Pairs[i].Key || !bytes.Equal(p.Value, want.Pairs[i].Value) {
			t.Fatalf("pair %d did not round-trip: %+v vs %+v", i, p, want.Pairs[i])
		}
	}
	for _, bad := range [][]byte{{}, enc[:12], enc[:len(enc)-1], append(append([]byte(nil), enc...), 9)} {
		if _, err := DecodeInstall(bad); err == nil {
			t.Error("malformed install decoded without error")
		}
	}
	// No pairs (a pure flip chunk) is legal.
	flip := Install{Gen: 1, From: 0, To: 1, Final: true, Slots: []uint32{0}}
	if got, err := DecodeInstall(EncodeInstall(flip)); err != nil || len(got.Pairs) != 0 {
		t.Fatalf("pair-less install: %+v, %v", got, err)
	}
}

// FuzzTableCodec feeds arbitrary bytes to DecodeTable: it must never
// panic, and anything it accepts must re-encode to a blob that decodes
// to the same table (the persist/wire format is self-consistent).
func FuzzTableCodec(f *testing.F) {
	f.Add(EncodeTable(Legacy(1)))
	f.Add(EncodeTable(Legacy(4)))
	f.Add(EncodeTable(sampleTable()))
	f.Add([]byte("CRT1 garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := DecodeTable(data)
		if err != nil {
			return
		}
		re, err := DecodeTable(EncodeTable(tbl))
		if err != nil {
			t.Fatalf("re-decode of accepted table failed: %v", err)
		}
		if re.Version != tbl.Version || !reflect.DeepEqual(re.Slots, tbl.Slots) {
			t.Fatal("accepted table did not round-trip")
		}
		// Accepted tables must be servable: every routing entry point
		// must stay in bounds.
		_ = tbl.Group("probe")
		_ = tbl.Groups()
		_ = tbl.Migrations()
	})
}

// FuzzControlCodec does the same for the fence and install decoders,
// which parse replicated log payloads.
func FuzzControlCodec(f *testing.F) {
	f.Add(EncodeFence(Fence{Gen: 1, From: 0, To: 1, Slots: []uint32{1}}))
	f.Add(EncodeInstall(Install{Gen: 1, From: 0, To: 1, Final: true, Slots: []uint32{1}, Pairs: []Pair{{Key: "k", Value: []byte("v")}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if fe, err := DecodeFence(data); err == nil {
			if got, err := DecodeFence(EncodeFence(fe)); err != nil || !reflect.DeepEqual(got, fe) {
				t.Fatal("accepted fence did not round-trip")
			}
		}
		if in, err := DecodeInstall(data); err == nil {
			re, err := DecodeInstall(EncodeInstall(in))
			if err != nil || re.Gen != in.Gen || re.Final != in.Final ||
				!reflect.DeepEqual(re.Slots, in.Slots) || len(re.Pairs) != len(in.Pairs) {
				t.Fatal("accepted install did not round-trip")
			}
		}
	})
}
