package reshard

import (
	"bytes"
	"fmt"
	"testing"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
)

// keyInSlotSet finds a key whose slot is (or is not, per want) in the
// given set under a table with numSlots slots.
func keyFor(t *testing.T, numSlots int, in map[uint32]bool, want bool) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("smkey-%d", i)
		if in[shard.Hash(key)%uint32(numSlots)] == want {
			return key
		}
	}
	t.Fatal("no key found for slot set")
	return ""
}

// TestFenceRedirectsData: once a fence for a slot is applied, data
// commands for keys in that slot are never applied to the inner
// machine; they surface as typed redirects naming the target group.
// Unfenced slots keep applying normally.
func TestFenceRedirectsData(t *testing.T) {
	holder := NewHolder(Legacy(2), "")
	store := kvstore.New()
	sm := Base(Wrap(0, store, holder))
	nslots := holder.Load().NumSlots()

	fencedSlots := map[uint32]bool{3: true, 7: true}
	out := sm.Apply(EncodeFence(Fence{Gen: 1, From: 0, To: 2, Slots: []uint32{3, 7}}))
	if string(out) != "FENCED" {
		t.Fatalf("fence apply returned %q", out)
	}
	if sm.Fenced() != 2 {
		t.Fatalf("Fenced() = %d, want 2", sm.Fenced())
	}

	hot := keyFor(t, nslots, fencedSlots, true)
	cold := keyFor(t, nslots, fencedSlots, false)

	if out := sm.Apply(kvstore.Put(hot, []byte("v"))); out != nil {
		t.Fatalf("fenced put produced output %q", out)
	}
	if g, ok := sm.TakeRedirect(); !ok || g != 2 {
		t.Fatalf("TakeRedirect = %v, %v; want group 2", g, ok)
	}
	if _, ok := sm.TakeRedirect(); ok {
		t.Fatal("TakeRedirect did not clear after being taken")
	}
	if _, ok := store.Lookup(hot); ok {
		t.Fatal("fenced write leaked into the inner store")
	}

	sm.Apply(kvstore.Put(cold, []byte("v")))
	if _, ok := sm.TakeRedirect(); ok {
		t.Fatal("unfenced write produced a redirect")
	}
	if _, ok := store.Lookup(cold); !ok {
		t.Fatal("unfenced write was not applied")
	}

	// The fence also advances the shared table to Migrating.
	if got := holder.Load().Slots[3]; got.Phase != Migrating || got.To != 2 || got.Gen != 1 {
		t.Fatalf("table claim after fence = %+v", got)
	}
}

// TestInstallDupSuppression: a re-proposed final install (coordinator
// retry or log replay) is acknowledged as a duplicate and must not
// re-seed pairs — a later write to a migrated key can never be rolled
// back by a stale chunk.
func TestInstallDupSuppression(t *testing.T) {
	holder := NewHolder(Legacy(2), "")
	store := kvstore.New()
	sm := Base(Wrap(1, store, holder))

	in := Install{Gen: 1, From: 0, To: 1, Final: true, Slots: []uint32{4},
		Pairs: []Pair{{Key: "mk", Value: []byte("old")}}}
	if out := sm.Apply(EncodeInstall(in)); string(out) != "INSTALLED" {
		t.Fatalf("first install returned %q", out)
	}
	if v, ok := store.Lookup("mk"); !ok || !bytes.Equal(v, []byte("old")) {
		t.Fatalf("seeded pair = %q, %v", v, ok)
	}
	if got := holder.Load().Slots[4]; got.Phase != Owned || got.Owner != 1 || got.Gen != 1 {
		t.Fatalf("table claim after final install = %+v", got)
	}

	// The key moves on; the duplicate must not regress it.
	sm.Apply(kvstore.Put("mk", []byte("new")))
	if out := sm.Apply(EncodeInstall(in)); string(out) != "DUP" {
		t.Fatalf("duplicate install returned %q", out)
	}
	if v, _ := store.Lookup("mk"); !bytes.Equal(v, []byte("new")) {
		t.Fatalf("duplicate install regressed the key to %q", v)
	}

	// An install addressed to another group is a deterministic no-op.
	other := Install{Gen: 1, From: 0, To: 3, Final: true, Slots: []uint32{9}}
	if out := sm.Apply(EncodeInstall(other)); out != nil {
		t.Fatalf("misaddressed install returned %q", out)
	}
}

// TestSnapshotCarriesRouteState: a snapshot of the wrapped machine
// carries fences, seed records, the routing table, and the inner data;
// restoring into a fresh wrapper reproduces all four, and the carried
// table merges monotonically into the new host's holder.
func TestSnapshotCarriesRouteState(t *testing.T) {
	holder := NewHolder(Legacy(2), "")
	store := kvstore.New()
	m := Wrap(0, store, holder)
	sm := Base(m)

	sm.Apply(kvstore.Put("keep", []byte("data")))
	sm.Apply(EncodeFence(Fence{Gen: 2, From: 0, To: 2, Slots: []uint32{1, 5}}))
	sm.Apply(EncodeInstall(Install{Gen: 1, From: 3, To: 0, Final: true, Slots: []uint32{8},
		Pairs: []Pair{{Key: "seeded", Value: []byte("in")}}}))

	snap, ok := m.(rsm.Snapshotter)
	if !ok {
		t.Fatal("wrapped kvstore lost its Snapshotter capability")
	}
	blob := snap.Snapshot()

	holder2 := NewHolder(Legacy(2), "")
	store2 := kvstore.New()
	m2 := Wrap(0, store2, holder2)
	if err := m2.(rsm.Snapshotter).Restore(blob); err != nil {
		t.Fatal(err)
	}
	sm2 := Base(m2)

	if sm2.Fenced() != 2 {
		t.Fatalf("restored Fenced() = %d, want 2", sm2.Fenced())
	}
	sm2.Apply(kvstore.Put(keyFor(t, holder2.Load().NumSlots(), map[uint32]bool{1: true, 5: true}, true), []byte("x")))
	if g, ok := sm2.TakeRedirect(); !ok || g != 2 {
		t.Fatalf("restored wrapper did not fence: %v, %v", g, ok)
	}
	if out := sm2.Apply(EncodeInstall(Install{Gen: 1, From: 3, To: 0, Final: true, Slots: []uint32{8}})); string(out) != "DUP" {
		t.Fatalf("restored wrapper lost seed records: %q", out)
	}
	for _, key := range []string{"keep", "seeded"} {
		if _, ok := store2.Lookup(key); !ok {
			t.Fatalf("restored store is missing %q", key)
		}
	}
	if got := holder2.Load().Slots[5]; got.Phase != Migrating || got.Gen != 2 {
		t.Fatalf("restored holder claim = %+v, want gen-2 migration", got)
	}

	// A stale snapshot cannot roll a holder's routing back.
	holder2.Merge(map[uint32]Claim{5: {Gen: 3, Phase: Owned, Owner: 2}})
	if err := m2.(rsm.Snapshotter).Restore(blob); err != nil {
		t.Fatal(err)
	}
	if got := holder2.Load().Slots[5]; got.Gen != 3 || got.Phase != Owned {
		t.Fatalf("stale snapshot rolled routing back to %+v", got)
	}
}

// applyOnly is a state machine with no optional capabilities.
type applyOnly struct{ n int }

func (a *applyOnly) Apply(cmd []byte) []byte { a.n++; return nil }

// TestWrapForwardsOnlyRealCapabilities: wrapping must not advertise a
// snapshot or query path the inner machine cannot serve.
func TestWrapForwardsOnlyRealCapabilities(t *testing.T) {
	holder := NewHolder(Legacy(1), "")

	bare := Wrap(0, &applyOnly{}, holder)
	if _, ok := bare.(rsm.Snapshotter); ok {
		t.Error("wrapper granted Snapshotter to a machine without one")
	}
	if _, ok := bare.(rsm.StateQuerier); ok {
		t.Error("wrapper granted StateQuerier to a machine without one")
	}
	if _, ok := bare.(rsm.Redirector); !ok {
		t.Error("every wrapper must be a Redirector")
	}

	full := Wrap(0, kvstore.New(), holder)
	if _, ok := full.(rsm.Snapshotter); !ok {
		t.Error("wrapper dropped the kvstore's Snapshotter")
	}
	if _, ok := full.(rsm.StateQuerier); !ok {
		t.Error("wrapper dropped the kvstore's StateQuerier")
	}
	if Base(full) == nil || Base(bare) == nil {
		t.Error("Base failed to unwrap a Wrap product")
	}
}
