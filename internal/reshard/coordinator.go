package reshard

import (
	"context"
	"fmt"
	"sort"

	"clockrsm/internal/types"
)

// Cluster is the slice of a host the coordinator drives a split
// through: the live table, a propose-and-wait-applied path into any
// hosted group's log, and a post-fence checkpoint of a source group
// filtered to the migrating slots.
type Cluster interface {
	// Table returns the host's current routing table.
	Table() *Table
	// Propose replicates payload in group g's log and waits until it
	// is committed and applied at this host.
	Propose(ctx context.Context, g types.GroupID, payload []byte) ([]byte, error)
	// SourceSnapshot captures group g's current pairs for the given
	// slots, serialized with g's apply loop.
	SourceSnapshot(g types.GroupID, slots []uint32) ([]Pair, error)
}

// Split phases, in order, as reported to OnPhase.
const (
	// PhaseFence replicates the fence in the source group's log; once
	// applied, the moving slots are frozen and every write to them is
	// redirected.
	PhaseFence = "fence"
	// PhaseCheckpoint snapshots the frozen slots at the source. The
	// fence makes any later snapshot equivalent, which is what lets a
	// crashed split simply re-checkpoint and roll forward.
	PhaseCheckpoint = "checkpoint"
	// PhaseInstall replicates the seed chunks in the target group's
	// log; applying the final chunk flips ownership.
	PhaseInstall = "install"
	// PhaseDone fires after the final install chunk is applied.
	PhaseDone = "done"
)

// DefaultChunkPairs bounds pairs per install chunk so one log entry
// stays well under transport frame limits.
const DefaultChunkPairs = 128

// SplitReport summarizes a completed split.
type SplitReport struct {
	// From and To are the source and target groups.
	From, To types.GroupID
	// Gen is the generation the moved slots now carry.
	Gen uint32
	// Slots is the number of slots moved.
	Slots int
	// Pairs is the number of key/value pairs seeded.
	Pairs int
	// Chunks is the number of install commands replicated.
	Chunks int
}

// Coordinator drives live splits. It holds no replicated state of its
// own: every durable step is a command in a group's log, so a
// coordinator that dies mid-split leaves the cluster in a state any
// other coordinator can roll forward from (Heal).
type Coordinator struct {
	// Cluster is the host the coordinator operates through.
	Cluster Cluster
	// ChunkPairs bounds pairs per install chunk (default
	// DefaultChunkPairs).
	ChunkPairs int
	// OnPhase, when set, is called as each phase starts (and with
	// PhaseDone at the end). Returning an error aborts the split at
	// that point — the crash-injection hook RunSplitChurn uses to kill
	// a coordinator between checkpoint and flip.
	OnPhase func(phase string) error
}

func (c *Coordinator) phase(p string) error {
	if c.OnPhase != nil {
		if err := c.OnPhase(p); err != nil {
			return fmt.Errorf("reshard: split aborted at %s: %w", p, err)
		}
	}
	return nil
}

// Split moves the upper half of src's slots to dst: fence, checkpoint,
// seed, flip. On return with nil error the routing table at this host
// shows the moved slots Owned by dst.
func (c *Coordinator) Split(ctx context.Context, src, dst types.GroupID) (*SplitReport, error) {
	slots, gen, err := c.Cluster.Table().PlanSplit(src, dst)
	if err != nil {
		return nil, err
	}
	if err := c.phase(PhaseFence); err != nil {
		return nil, err
	}
	fence := EncodeFence(Fence{Gen: gen, From: src, To: dst, Slots: slots})
	if _, err := c.Cluster.Propose(ctx, src, fence); err != nil {
		return nil, fmt.Errorf("reshard: fence %v→%v: %w", src, dst, err)
	}
	return c.transfer(ctx, src, dst, gen, slots)
}

// transfer runs the checkpoint and install phases for an
// already-fenced slot set.
func (c *Coordinator) transfer(ctx context.Context, src, dst types.GroupID, gen uint32, slots []uint32) (*SplitReport, error) {
	if err := c.phase(PhaseCheckpoint); err != nil {
		return nil, err
	}
	pairs, err := c.Cluster.SourceSnapshot(src, slots)
	if err != nil {
		return nil, err
	}
	if err := c.phase(PhaseInstall); err != nil {
		return nil, err
	}
	chunk := c.ChunkPairs
	if chunk <= 0 {
		chunk = DefaultChunkPairs
	}
	rep := &SplitReport{From: src, To: dst, Gen: gen, Slots: len(slots), Pairs: len(pairs)}
	for start := 0; ; start += chunk {
		end := start + chunk
		final := end >= len(pairs)
		if final {
			end = len(pairs)
		}
		in := Install{Gen: gen, From: src, To: dst, Final: final, Slots: slots, Pairs: pairs[start:end]}
		if _, err := c.Cluster.Propose(ctx, dst, EncodeInstall(in)); err != nil {
			return nil, fmt.Errorf("reshard: install %v→%v chunk %d: %w", src, dst, rep.Chunks, err)
		}
		rep.Chunks++
		if final {
			break
		}
	}
	if err := c.phase(PhaseDone); err != nil {
		return nil, err
	}
	return rep, nil
}

// Heal rolls forward every migration the table still shows in flight —
// the recovery path after a coordinator died between fence and flip.
// The slots are already frozen, so re-checkpointing and re-installing
// is safe, and the target's generation check makes a duplicate install
// a no-op: however many coordinators race here, each slot converges to
// exactly one owner at one generation.
func (c *Coordinator) Heal(ctx context.Context) ([]*SplitReport, error) {
	type migKey struct {
		from, to types.GroupID
		gen      uint32
	}
	pending := make(map[migKey][]uint32)
	for slot, cl := range c.Cluster.Table().Migrations() {
		k := migKey{from: cl.Owner, to: cl.To, gen: cl.Gen}
		pending[k] = append(pending[k], slot)
	}
	keys := make([]migKey, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.gen < b.gen
	})
	var reps []*SplitReport
	for _, k := range keys {
		slots := pending[k]
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		rep, err := c.transfer(ctx, k.from, k.to, k.gen, slots)
		if err != nil {
			return reps, err
		}
		reps = append(reps, rep)
	}
	return reps, nil
}
