package reshard

import (
	"sync"
	"sync/atomic"
)

// Holder owns one host's live routing table: an atomic pointer every
// router and read gate loads lock-free, with a writer lock serializing
// the (rare) merges that fence and install commands perform at apply
// time. When a persist path is set, every visible change is saved
// atomically, so a restarted host resumes routing from its last
// observed table instead of the legacy layout.
type Holder struct {
	mu   sync.Mutex
	cur  atomic.Pointer[Table]
	path string
	serr atomic.Pointer[error]
}

// NewHolder starts a holder at t, persisting changes to path when path
// is non-empty.
func NewHolder(t *Table, path string) *Holder {
	h := &Holder{path: path}
	h.cur.Store(t)
	return h
}

// Load returns the current table. The returned table is immutable.
func (h *Holder) Load() *Table { return h.cur.Load() }

// Path returns the persist path ("" when not persisting).
func (h *Holder) Path() string { return h.path }

// Merge folds claims into the table under the monotone order and
// returns the resulting table. Stale claims are no-ops.
func (h *Holder) Merge(claims map[uint32]Claim) *Table {
	h.mu.Lock()
	defer h.mu.Unlock()
	nt, changed := h.cur.Load().Merge(claims)
	if changed {
		h.persist(nt)
		h.cur.Store(nt)
	}
	return nt
}

// MergeTable folds every claim of t (e.g. a table carried inside a
// state-transfer snapshot) into the current table.
func (h *Holder) MergeTable(t *Table) *Table {
	claims := make(map[uint32]Claim, len(t.Slots))
	for s, c := range t.Slots {
		claims[uint32(s)] = c
	}
	return h.Merge(claims)
}

// persist saves nt best-effort; the table stays authoritative in
// memory (it is rebuilt from the replicated logs on restart anyway),
// so a failed save is recorded but does not fail the apply.
func (h *Holder) persist(nt *Table) {
	if h.path == "" {
		return
	}
	if err := Save(nt, h.path); err != nil {
		h.serr.Store(&err)
	}
}

// SaveErr returns the most recent persist failure, if any.
func (h *Holder) SaveErr() error {
	if p := h.serr.Load(); p != nil {
		return *p
	}
	return nil
}
