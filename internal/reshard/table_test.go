package reshard

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"clockrsm/internal/shard"
	"clockrsm/internal/types"
)

// TestLegacyMatchesRouter proves the genesis table is placement-
// identical to the fixed hash-mod-G router: bringing the table up over
// an existing cluster moves no key.
func TestLegacyMatchesRouter(t *testing.T) {
	for _, g := range []int{1, 2, 3, 4, 7, 16} {
		tbl := Legacy(g)
		router := shard.NewRouter(g)
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("key-%d-%d", g, i)
			want := router.Group(key)
			if got := tbl.Group(key); got != want {
				t.Fatalf("g=%d key %q: table routes to %v, router to %v", g, key, got, want)
			}
		}
	}
}

// TestTableDeterminism: the same table routes the same key identically
// across independently constructed instances.
func TestTableDeterminism(t *testing.T) {
	a, b := Legacy(4), Legacy(4)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Group(key) != b.Group(key) || a.SlotOf(key) != b.SlotOf(key) {
			t.Fatalf("key %q routed differently by identical tables", key)
		}
	}
}

// applySplit simulates a completed split on a table: fence then flip,
// as the replicated control commands would.
func applySplit(t *Table, src, dst types.GroupID) (*Table, []uint32, error) {
	slots, gen, err := t.PlanSplit(src, dst)
	if err != nil {
		return t, nil, err
	}
	fence := make(map[uint32]Claim, len(slots))
	flip := make(map[uint32]Claim, len(slots))
	for _, s := range slots {
		fence[s] = Claim{Gen: gen, Phase: Migrating, Owner: src, To: dst}
		flip[s] = Claim{Gen: gen, Phase: Owned, Owner: dst}
	}
	t, _ = t.Merge(fence)
	t, _ = t.Merge(flip)
	return t, slots, nil
}

// TestSplitsCoverWithoutOverlap: after an arbitrary sequence of splits,
// every slot has exactly one owner, the slot space never changes size,
// and the per-group slot sets partition it.
func TestSplitsCoverWithoutOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := Legacy(2)
	nslots := tbl.NumSlots()
	groups := 2
	for step := 0; step < 12; step++ {
		src := types.GroupID(rng.Intn(groups))
		dst := types.GroupID(groups)
		nt, _, err := applySplit(tbl, src, dst)
		if err != nil {
			continue // source ran out of splittable slots; try another
		}
		tbl = nt
		groups++
		if tbl.NumSlots() != nslots {
			t.Fatalf("step %d: slot space changed: %d -> %d", step, nslots, tbl.NumSlots())
		}
		total := 0
		for g := 0; g < groups; g++ {
			total += len(tbl.OwnedSlots(types.GroupID(g)))
		}
		if total != nslots {
			t.Fatalf("step %d: per-group slot sets sum to %d, want %d (overlap or gap)", step, total, nslots)
		}
		if tbl.Groups() != groups {
			t.Fatalf("step %d: Groups() = %d, want %d", step, tbl.Groups(), groups)
		}
		if n := len(tbl.Migrations()); n != 0 {
			t.Fatalf("step %d: %d migrations left after a completed split", step, n)
		}
	}
}

// TestMergeMonotoneOrderIndependent: folding the same claims in any
// order yields the same table, and stale claims never roll it back.
func TestMergeMonotoneOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := Legacy(3)
	// Claims mirror the protocol invariant: a (slot, gen) pair is
	// written by exactly one split, so its contents are a function of
	// the pair — a gen-g fence always names the same source and target.
	claimFor := func(slot, gen uint32, ph Phase) Claim {
		src := types.GroupID((slot + gen) % 4)
		dst := types.GroupID((slot + gen + 1) % 4)
		if ph == Migrating {
			return Claim{Gen: gen, Phase: Migrating, Owner: src, To: dst}
		}
		return Claim{Gen: gen, Phase: Owned, Owner: dst}
	}
	var updates []map[uint32]Claim
	for i := 0; i < 20; i++ {
		m := make(map[uint32]Claim)
		for j := 0; j < 5; j++ {
			slot := uint32(rng.Intn(base.NumSlots()))
			m[slot] = claimFor(slot, uint32(rng.Intn(4)), Phase(rng.Intn(2)))
		}
		updates = append(updates, m)
	}
	apply := func(order []int) []Claim {
		tbl := base
		for _, i := range order {
			tbl, _ = tbl.Merge(updates[i])
		}
		return tbl.Slots
	}
	fwd := make([]int, len(updates))
	rev := make([]int, len(updates))
	for i := range fwd {
		fwd[i] = i
		rev[i] = len(updates) - 1 - i
	}
	shuf := rng.Perm(len(updates))
	a, b, c := apply(fwd), apply(rev), apply(shuf)
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
		t.Fatal("merge result depends on application order")
	}
	// Monotone: re-merging gen-0 Owned claims over a split table is a
	// no-op.
	split, slots, err := applySplit(base, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	stale := make(map[uint32]Claim, len(slots))
	for _, s := range slots {
		stale[s] = Claim{Gen: 0, Phase: Owned, Owner: 0}
	}
	after, changed := split.Merge(stale)
	if changed || !reflect.DeepEqual(after.Slots, split.Slots) {
		t.Fatal("stale claims rolled the table back")
	}
}

// TestPlanSplitProperties: the plan moves the smaller half, bumps the
// generation past every moving slot, and rejects degenerate requests.
func TestPlanSplitProperties(t *testing.T) {
	tbl := Legacy(2)
	slots, gen, err := tbl.PlanSplit(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	owned := len(tbl.OwnedSlots(0))
	if len(slots) != owned/2 {
		t.Errorf("plan moves %d of %d slots, want the smaller half (%d)", len(slots), owned, owned/2)
	}
	if gen != 1 {
		t.Errorf("gen = %d, want 1 over a generation-0 table", gen)
	}
	for _, s := range slots {
		if tbl.Slots[s].Owner != 0 {
			t.Errorf("plan includes slot %d owned by %v", s, tbl.Slots[s].Owner)
		}
	}
	if _, _, err := tbl.PlanSplit(0, 0); err == nil {
		t.Error("self-split was not rejected")
	}
	// A group with a single stable slot cannot split.
	small := &Table{Version: 1, Slots: []Claim{{Owner: 0}, {Owner: 1}}}
	if _, _, err := small.PlanSplit(0, 2); err == nil {
		t.Error("splitting a one-slot group was not rejected")
	}
}

// TestSplitBalance: after splitting group 0, key traffic lands on the
// new group in proportion to the slots it took (within tolerance) —
// the table balances like the hash router it replaced.
func TestSplitBalance(t *testing.T) {
	tbl, slots, err := applySplit(Legacy(2), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	counts := make(map[types.GroupID]int)
	for i := 0; i < n; i++ {
		counts[tbl.Group(fmt.Sprintf("balance-key-%d", i))]++
	}
	want := float64(len(slots)) / float64(tbl.NumSlots()) // g2's slot share
	got := float64(counts[2]) / n
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("group 2 received %.3f of keys, want ~%.3f (slot share)", got, want)
	}
}
