package reshard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"clockrsm/internal/types"
)

// Control command op bytes. They live far above the kvstore op space
// (1..3) so a control payload can never be mistaken for a data command
// by any decoder, old or new.
const (
	// OpFence fences a slot set at the source group: replicated in the
	// source's own log, so the fence point is a position in the group's
	// total order — every replica stops applying writes to the moving
	// slots at exactly the same command.
	OpFence byte = 200
	// OpInstall seeds the target group with the fenced slots' pairs and
	// (on the final chunk) flips their claims to Owned at the target.
	OpInstall byte = 201
)

// IsControl reports whether payload is a reshard control command.
func IsControl(payload []byte) bool {
	return len(payload) > 0 && payload[0] >= OpFence
}

// tableMagic brands the routing-table encoding ("CRT1": Clock-RSM
// routing table v1).
var tableMagic = []byte{'C', 'R', 'T', '1'}

// ErrBadTable reports a malformed routing-table encoding.
var ErrBadTable = errors.New("reshard: bad routing table encoding")

// ErrBadControl reports a malformed control command payload.
var ErrBadControl = errors.New("reshard: bad control command")

// EncodeTable renders t in the wire/persist format: magic, version,
// slot count, then one fixed-width claim per slot.
func EncodeTable(t *Table) []byte {
	buf := make([]byte, 0, len(tableMagic)+12+13*len(t.Slots))
	buf = append(buf, tableMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, t.Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Slots)))
	for _, c := range t.Slots {
		buf = binary.LittleEndian.AppendUint32(buf, c.Gen)
		buf = append(buf, byte(c.Phase))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Owner))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.To))
	}
	return buf
}

// DecodeTable parses an EncodeTable blob.
func DecodeTable(buf []byte) (*Table, error) {
	if len(buf) < len(tableMagic)+12 || string(buf[:4]) != string(tableMagic) {
		return nil, ErrBadTable
	}
	version := binary.LittleEndian.Uint64(buf[4:])
	n := binary.LittleEndian.Uint32(buf[12:])
	rest := buf[16:]
	if n == 0 || n > 1<<20 || len(rest) != int(n)*13 {
		return nil, ErrBadTable
	}
	t := &Table{Version: version, Slots: make([]Claim, n)}
	for s := range t.Slots {
		rec := rest[s*13:]
		ph := Phase(rec[4])
		if ph != Owned && ph != Migrating {
			return nil, ErrBadTable
		}
		owner := types.GroupID(binary.LittleEndian.Uint32(rec[5:]))
		to := types.GroupID(binary.LittleEndian.Uint32(rec[9:]))
		if owner < 0 || to < 0 {
			return nil, ErrBadTable
		}
		t.Slots[s] = Claim{
			Gen:   binary.LittleEndian.Uint32(rec),
			Phase: ph,
			Owner: owner,
			To:    to,
		}
	}
	return t.reindex(), nil
}

// Save atomically persists t at path (write temp, fsync, rename), so a
// crash mid-save leaves either the old table or the new one, never a
// torn file.
func Save(t *Table, path string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(EncodeTable(t)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Load reads a table persisted by Save. A missing file returns
// (nil, nil): the caller synthesizes the legacy table.
func Load(path string) (*Table, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	t, err := DecodeTable(buf)
	if err != nil {
		return nil, fmt.Errorf("%w (at %s)", err, path)
	}
	return t, nil
}

// Fence is the decoded form of an OpFence control command.
type Fence struct {
	// Gen is the generation the fence (and the matching install)
	// claims the slots at.
	Gen uint32
	// From is the source group — the group whose log carries the fence.
	From types.GroupID
	// To is the migration target the fenced writes redirect to.
	To types.GroupID
	// Slots are the fenced slots.
	Slots []uint32
}

// EncodeFence renders f as a control payload.
func EncodeFence(f Fence) []byte {
	buf := make([]byte, 0, 17+4*len(f.Slots))
	buf = append(buf, OpFence)
	buf = binary.LittleEndian.AppendUint32(buf, f.Gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.To))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Slots)))
	for _, s := range f.Slots {
		buf = binary.LittleEndian.AppendUint32(buf, s)
	}
	return buf
}

// DecodeFence parses an OpFence payload.
func DecodeFence(buf []byte) (Fence, error) {
	if len(buf) < 17 || buf[0] != OpFence {
		return Fence{}, ErrBadControl
	}
	n := binary.LittleEndian.Uint32(buf[13:])
	if n == 0 || n > 1<<20 || len(buf) != 17+4*int(n) {
		return Fence{}, ErrBadControl
	}
	f := Fence{
		Gen:   binary.LittleEndian.Uint32(buf[1:]),
		From:  types.GroupID(binary.LittleEndian.Uint32(buf[5:])),
		To:    types.GroupID(binary.LittleEndian.Uint32(buf[9:])),
		Slots: make([]uint32, n),
	}
	if f.From < 0 || f.To < 0 {
		return Fence{}, ErrBadControl
	}
	for i := range f.Slots {
		f.Slots[i] = binary.LittleEndian.Uint32(buf[17+4*i:])
	}
	return f, nil
}

// Pair is one key/value to seed into the target group.
type Pair struct {
	Key   string
	Value []byte
}

// Install is the decoded form of an OpInstall control command: one
// chunk of the seed transfer. The final chunk additionally flips the
// slots' claims to Owned at To.
type Install struct {
	// Gen matches the fence that froze the slots.
	Gen uint32
	// From is the source group the slots move away from.
	From types.GroupID
	// To is the group whose log carries the install.
	To types.GroupID
	// Final marks the last chunk: applying it completes the migration.
	Final bool
	// Slots are the migrating slots (carried on every chunk so a
	// restart can reconstruct the claim set from any suffix).
	Slots []uint32
	// Pairs are this chunk's seed data.
	Pairs []Pair
}

// EncodeInstall renders in as a control payload.
func EncodeInstall(in Install) []byte {
	size := 22 + 4*len(in.Slots)
	for _, p := range in.Pairs {
		size += 8 + len(p.Key) + len(p.Value)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, OpInstall)
	buf = binary.LittleEndian.AppendUint32(buf, in.Gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(in.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(in.To))
	if in.Final {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(in.Slots)))
	for _, s := range in.Slots {
		buf = binary.LittleEndian.AppendUint32(buf, s)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(in.Pairs)))
	for _, p := range in.Pairs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Key)))
		buf = append(buf, p.Key...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Value)))
		buf = append(buf, p.Value...)
	}
	return buf
}

// DecodeInstall parses an OpInstall payload.
func DecodeInstall(buf []byte) (Install, error) {
	if len(buf) < 22 || buf[0] != OpInstall || buf[13] > 1 {
		return Install{}, ErrBadControl
	}
	in := Install{
		Gen:   binary.LittleEndian.Uint32(buf[1:]),
		From:  types.GroupID(binary.LittleEndian.Uint32(buf[5:])),
		To:    types.GroupID(binary.LittleEndian.Uint32(buf[9:])),
		Final: buf[13] == 1,
	}
	if in.From < 0 || in.To < 0 {
		return Install{}, ErrBadControl
	}
	ns := binary.LittleEndian.Uint32(buf[14:])
	if ns == 0 || ns > 1<<20 || len(buf) < 18+4*int(ns)+4 {
		return Install{}, ErrBadControl
	}
	in.Slots = make([]uint32, ns)
	for i := range in.Slots {
		in.Slots[i] = binary.LittleEndian.Uint32(buf[18+4*i:])
	}
	rest := buf[18+4*int(ns):]
	np := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if np > 1<<24 {
		return Install{}, ErrBadControl
	}
	in.Pairs = make([]Pair, 0, np)
	for i := uint32(0); i < np; i++ {
		if len(rest) < 4 {
			return Install{}, ErrBadControl
		}
		kl := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if int64(kl)+4 > int64(len(rest)) {
			return Install{}, ErrBadControl
		}
		key := string(rest[:kl])
		rest = rest[kl:]
		vl := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if int64(vl) > int64(len(rest)) {
			return Install{}, ErrBadControl
		}
		val := append([]byte(nil), rest[:vl]...)
		rest = rest[vl:]
		in.Pairs = append(in.Pairs, Pair{Key: key, Value: val})
	}
	if len(rest) != 0 {
		return Install{}, ErrBadControl
	}
	return in, nil
}
