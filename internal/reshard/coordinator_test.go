package reshard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/rsm"
	"clockrsm/internal/types"
)

// fakeCluster runs the coordinator protocol against in-memory state
// machines sharing one holder: Propose applies the payload directly at
// the target group's (single) replica, which is exactly the
// commit-then-apply contract the real host provides.
type fakeCluster struct {
	holder *Holder
	sms    map[types.GroupID]rsm.StateMachine
	stores map[types.GroupID]*kvstore.Store
}

func newFakeCluster(groups, capacity int) *fakeCluster {
	c := &fakeCluster{
		holder: NewHolder(Legacy(groups), ""),
		sms:    make(map[types.GroupID]rsm.StateMachine),
		stores: make(map[types.GroupID]*kvstore.Store),
	}
	for g := 0; g < capacity; g++ {
		gid := types.GroupID(g)
		st := kvstore.New()
		c.stores[gid] = st
		c.sms[gid] = Wrap(gid, st, c.holder)
	}
	return c
}

func (c *fakeCluster) Table() *Table { return c.holder.Load() }

func (c *fakeCluster) Propose(_ context.Context, g types.GroupID, payload []byte) ([]byte, error) {
	sm, ok := c.sms[g]
	if !ok {
		return nil, fmt.Errorf("no group %v", g)
	}
	return sm.Apply(payload), nil
}

func (c *fakeCluster) SourceSnapshot(g types.GroupID, slots []uint32) ([]Pair, error) {
	return Base(c.sms[g]).SnapshotSlots(slots)
}

// seed writes n keys routed to group g and returns key→value.
func (c *fakeCluster) seed(t *testing.T, g types.GroupID, n int) map[string][]byte {
	t.Helper()
	tbl := c.holder.Load()
	out := make(map[string][]byte, n)
	for i := 0; len(out) < n; i++ {
		if i > 100000 {
			t.Fatal("could not find enough keys for group")
		}
		key := fmt.Sprintf("co-%v-%d", g, i)
		if tbl.Group(key) != g {
			continue
		}
		val := []byte(fmt.Sprintf("v%d", i))
		c.sms[g].Apply(kvstore.Put(key, val))
		out[key] = val
	}
	return out
}

// TestCoordinatorSplit: a clean split fences, checkpoints, seeds, and
// flips; moved keys are served by the target with their frozen values,
// writes to moved keys at the source redirect, and the slot count and
// chunking arithmetic hold.
func TestCoordinatorSplit(t *testing.T) {
	c := newFakeCluster(2, 3)
	data := c.seed(t, 0, 40)

	co := &Coordinator{Cluster: c, ChunkPairs: 7}
	rep, err := co.Split(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != 0 || rep.To != 2 || rep.Gen != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Slots != SlotsPerGroup/2 {
		t.Errorf("moved %d slots, want %d (half the source)", rep.Slots, SlotsPerGroup/2)
	}
	wantChunks := (rep.Pairs + 6) / 7
	if wantChunks == 0 {
		wantChunks = 1
	}
	if rep.Chunks != wantChunks {
		t.Errorf("chunks = %d for %d pairs at 7/chunk, want %d", rep.Chunks, rep.Pairs, wantChunks)
	}

	tbl := c.Table()
	if n := len(tbl.Migrations()); n != 0 {
		t.Fatalf("%d migrations left after a clean split", n)
	}
	if tbl.Groups() != 3 {
		t.Fatalf("Groups() = %d after split, want 3", tbl.Groups())
	}
	moved := 0
	for key, want := range data {
		g := tbl.Group(key)
		if g == 2 {
			moved++
			if got, ok := c.stores[2].Lookup(key); !ok || !bytes.Equal(got, want) {
				t.Fatalf("moved key %q at target = %q, %v; want %q", key, got, ok, want)
			}
			// A straggler write at the source must redirect, not apply.
			c.sms[0].Apply(kvstore.Put(key, []byte("stale")))
			if to, ok := Base(c.sms[0]).TakeRedirect(); !ok || to != 2 {
				t.Fatalf("straggler write to %q: redirect = %v, %v", key, to, ok)
			}
		} else if g != 0 {
			t.Fatalf("key %q routed to %v, want 0 or 2", key, g)
		}
	}
	if moved == 0 || rep.Pairs != moved {
		t.Fatalf("report says %d pairs, %d keys actually moved", rep.Pairs, moved)
	}
}

// TestCoordinatorCrashThenHeal: a coordinator that dies after the fence
// leaves the table migrating; Heal run by another coordinator rolls the
// split forward to the same final state a clean split reaches, and a
// racing duplicate transfer cannot regress data the target has since
// overwritten.
func TestCoordinatorCrashThenHeal(t *testing.T) {
	c := newFakeCluster(2, 3)
	data := c.seed(t, 0, 30)

	crashed := errors.New("coordinator crashed")
	co := &Coordinator{Cluster: c, OnPhase: func(p string) error {
		if p == PhaseInstall {
			return crashed
		}
		return nil
	}}
	if _, err := co.Split(context.Background(), 0, 2); !errors.Is(err, crashed) {
		t.Fatalf("crash injection: err = %v", err)
	}
	migs := c.Table().Migrations()
	if len(migs) != SlotsPerGroup/2 {
		t.Fatalf("%d migrations after crash, want %d", len(migs), SlotsPerGroup/2)
	}

	healer := &Coordinator{Cluster: c}
	reps, err := healer.Heal(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].Slots != SlotsPerGroup/2 {
		t.Fatalf("heal reports = %+v", reps)
	}
	if n := len(c.Table().Migrations()); n != 0 {
		t.Fatalf("%d migrations left after heal", n)
	}
	var movedKey string
	for key, want := range data {
		if c.Table().Group(key) != 2 {
			continue
		}
		movedKey = key
		if got, ok := c.stores[2].Lookup(key); !ok || !bytes.Equal(got, want) {
			t.Fatalf("healed key %q = %q, %v; want %q", key, got, ok, want)
		}
	}
	if movedKey == "" {
		t.Fatal("no seeded key landed in the migrated half")
	}

	// A second Heal finds nothing to do.
	if reps, err := healer.Heal(context.Background()); err != nil || len(reps) != 0 {
		t.Fatalf("idle heal = %+v, %v", reps, err)
	}

	// A straggling duplicate of the completed transfer (a second racing
	// coordinator finishing late) is absorbed: the target's seed record
	// makes the install a DUP, so a post-heal write survives it.
	c.sms[2].Apply(kvstore.Put(movedKey, []byte("post-heal")))
	mig := migs[uint32(c.Table().SlotOf(movedKey))]
	slots := make([]uint32, 0, len(migs))
	for s := range migs {
		slots = append(slots, s)
	}
	if _, err := healer.transfer(context.Background(), mig.Owner, mig.To, mig.Gen, slots); err != nil {
		t.Fatalf("duplicate transfer errored: %v", err)
	}
	if got, _ := c.stores[2].Lookup(movedKey); !bytes.Equal(got, []byte("post-heal")) {
		t.Fatalf("duplicate transfer regressed %q to %q", movedKey, got)
	}
}

// TestCoordinatorRejectsBadPlans: degenerate split requests fail before
// any command is replicated.
func TestCoordinatorRejectsBadPlans(t *testing.T) {
	c := newFakeCluster(2, 3)
	co := &Coordinator{Cluster: c}
	if _, err := co.Split(context.Background(), 0, 0); err == nil {
		t.Error("self-split was accepted")
	}
	if _, err := co.Split(context.Background(), 9, 2); err == nil {
		t.Error("split of an unknown source was accepted")
	}
}
