package reshard

import (
	"encoding/binary"
	"fmt"
	"sort"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
	"clockrsm/internal/types"
)

// PairInstaller lets a state machine accept migrated key/value pairs
// directly. Inner machines that do not implement it are seeded through
// ordinary Apply calls with synthesized PUT payloads instead — both
// paths are deterministic, so replicas may not mix them, which they
// never do (every replica of a group wraps the same machine type).
type PairInstaller interface {
	InstallPair(key string, value []byte)
}

// fenceInfo is the source-side record of one fenced slot.
type fenceInfo struct {
	gen uint32
	to  types.GroupID
}

// SM wraps a group's inner state machine with the resharding layer. It
// intercepts control commands (fence, install) and fences data
// commands whose slot has migrated away, turning them into typed
// redirects instead of applies. All fencing state is derived purely
// from the group's own log (plus snapshots of it), so every replica of
// the group makes identical fence decisions at identical log
// positions — the linearization barrier for a split is a position in
// the source group's total order.
type SM struct {
	group    types.GroupID
	inner    rsm.StateMachine
	holder   *Holder
	numSlots int

	// fenced maps slot → migration record for slots this group has
	// fenced away. Entries are permanent: a straggler write routed here
	// by a stale table is redirected forever, never silently applied.
	fenced map[uint32]fenceInfo
	// seeded records completed installs at this group, keyed by
	// (from group, generation), so a re-proposed install (coordinator
	// crash, log replay) is a no-op rather than a second seeding.
	seeded map[uint64]bool

	redirect    types.GroupID
	hasRedirect bool
}

// Wrap builds the resharding wrapper for group g over inner, sharing
// the host's table holder. The returned machine forwards the inner
// machine's optional capabilities (StateQuerier, Snapshotter) only
// when the inner machine has them, so wrapping never grants a group a
// read or checkpoint path its state machine cannot serve.
func Wrap(g types.GroupID, inner rsm.StateMachine, holder *Holder) rsm.StateMachine {
	s := NewSM(g, inner, holder)
	_, canQuery := inner.(rsm.StateQuerier)
	_, canSnap := inner.(rsm.Snapshotter)
	switch {
	case canQuery && canSnap:
		return &querySnapSM{querySM{SM: s}}
	case canQuery:
		return &querySM{SM: s}
	case canSnap:
		return &snapSM{SM: s}
	default:
		return s
	}
}

// NewSM builds the bare wrapper; most callers want Wrap.
func NewSM(g types.GroupID, inner rsm.StateMachine, holder *Holder) *SM {
	return &SM{
		group:    g,
		inner:    inner,
		holder:   holder,
		numSlots: holder.Load().NumSlots(),
		fenced:   make(map[uint32]fenceInfo),
		seeded:   make(map[uint64]bool),
	}
}

// Base returns the underlying *SM of a machine built by Wrap, or nil.
func Base(m rsm.StateMachine) *SM {
	switch w := m.(type) {
	case *SM:
		return w
	case *querySM:
		return w.SM
	case *snapSM:
		return w.SM
	case *querySnapSM:
		return w.SM
	}
	return nil
}

// Inner returns the wrapped state machine.
func (s *SM) Inner() rsm.StateMachine { return s.inner }

// Group returns the group this wrapper serves.
func (s *SM) Group() types.GroupID { return s.group }

// Fenced reports how many slots this group has fenced away.
func (s *SM) Fenced() int { return len(s.fenced) }

func seedKey(from types.GroupID, gen uint32) uint64 {
	return uint64(uint32(from))<<32 | uint64(gen)
}

// Apply executes one committed command. Control commands mutate
// routing state; data commands for fenced slots produce a redirect and
// leave the inner machine untouched; everything else forwards.
func (s *SM) Apply(payload []byte) []byte {
	s.hasRedirect = false
	if IsControl(payload) {
		return s.applyControl(payload)
	}
	if len(s.fenced) > 0 {
		if cmd, err := kvstore.Decode(payload); err == nil {
			slot := shard.Hash(cmd.Key) % uint32(s.numSlots)
			if fi, ok := s.fenced[slot]; ok {
				s.redirect, s.hasRedirect = fi.to, true
				return nil
			}
		}
	}
	return s.inner.Apply(payload)
}

func (s *SM) applyControl(payload []byte) []byte {
	switch payload[0] {
	case OpFence:
		f, err := DecodeFence(payload)
		if err != nil || f.From != s.group {
			return nil // deterministic no-op on every replica
		}
		claims := make(map[uint32]Claim, len(f.Slots))
		for _, sl := range f.Slots {
			if int(sl) >= s.numSlots {
				continue
			}
			if fi, ok := s.fenced[sl]; ok && fi.gen >= f.Gen {
				continue
			}
			s.fenced[sl] = fenceInfo{gen: f.Gen, to: f.To}
			claims[sl] = Claim{Gen: f.Gen, Phase: Migrating, Owner: f.From, To: f.To}
		}
		s.holder.Merge(claims)
		return []byte("FENCED")
	case OpInstall:
		in, err := DecodeInstall(payload)
		if err != nil || in.To != s.group {
			return nil
		}
		if s.seeded[seedKey(in.From, in.Gen)] {
			return []byte("DUP")
		}
		s.installPairs(in.Pairs)
		if in.Final {
			s.seeded[seedKey(in.From, in.Gen)] = true
			claims := make(map[uint32]Claim, len(in.Slots))
			for _, sl := range in.Slots {
				if int(sl) >= s.numSlots {
					continue
				}
				claims[sl] = Claim{Gen: in.Gen, Phase: Owned, Owner: in.To}
			}
			s.holder.Merge(claims)
		}
		return []byte("INSTALLED")
	}
	return nil
}

// installPairs seeds one chunk into the inner machine. Re-seeding the
// same frozen pairs (after a coordinator retry) is an idempotent
// overwrite.
func (s *SM) installPairs(pairs []Pair) {
	if pi, ok := s.inner.(PairInstaller); ok {
		for _, p := range pairs {
			pi.InstallPair(p.Key, p.Value)
		}
		return
	}
	for _, p := range pairs {
		s.inner.Apply(kvstore.Put(p.Key, p.Value))
	}
}

// TakeRedirect implements rsm.Redirector: it reports whether the last
// Apply fenced its command, and the group the command's key moved to.
func (s *SM) TakeRedirect() (types.GroupID, bool) {
	if !s.hasRedirect {
		return 0, false
	}
	s.hasRedirect = false
	return s.redirect, true
}

// SnapshotSlots captures the inner machine's pairs for the given
// slots, sorted by key. It is only meaningful after those slots are
// fenced (the coordinator's checkpoint step), when the data is frozen.
func (s *SM) SnapshotSlots(slots []uint32) ([]Pair, error) {
	sn, ok := s.inner.(rsm.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("reshard: group %v state machine %T cannot snapshot", s.group, s.inner)
	}
	m, err := kvstore.DecodeSnapshot(sn.Snapshot())
	if err != nil {
		return nil, fmt.Errorf("reshard: group %v snapshot: %w", s.group, err)
	}
	want := make(map[uint32]bool, len(slots))
	for _, sl := range slots {
		want[sl] = true
	}
	var pairs []Pair
	for k, v := range m {
		if want[shard.Hash(k)%uint32(s.numSlots)] {
			pairs = append(pairs, Pair{Key: k, Value: v})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	return pairs, nil
}

// snapshot encodes the wrapper's routing state followed by the inner
// machine's snapshot: the route blob rides the existing checkpoint and
// state-transfer paths, so a rejoining replica receives fence state
// and table claims along with the data they protect.
func (s *SM) snapshot() []byte {
	tbl := EncodeTable(s.holder.Load())
	var inner []byte
	if sn, ok := s.inner.(rsm.Snapshotter); ok {
		inner = sn.Snapshot()
	}
	fslots := make([]uint32, 0, len(s.fenced))
	for sl := range s.fenced {
		fslots = append(fslots, sl)
	}
	sort.Slice(fslots, func(i, j int) bool { return fslots[i] < fslots[j] })
	seeds := make([]uint64, 0, len(s.seeded))
	for k := range s.seeded {
		seeds = append(seeds, k)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })

	buf := make([]byte, 0, 12+len(tbl)+12*len(fslots)+8*len(seeds)+len(inner))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tbl)))
	buf = append(buf, tbl...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fslots)))
	for _, sl := range fslots {
		fi := s.fenced[sl]
		buf = binary.LittleEndian.AppendUint32(buf, sl)
		buf = binary.LittleEndian.AppendUint32(buf, fi.gen)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(fi.to))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(seeds)))
	for _, k := range seeds {
		buf = binary.LittleEndian.AppendUint64(buf, k)
	}
	return append(buf, inner...)
}

// restore is the inverse of snapshot: it replaces the wrapper's route
// state, merges the carried table into the host's (monotone, so a
// stale snapshot cannot roll routing back), and restores the inner
// machine from the remainder.
func (s *SM) restore(buf []byte) error {
	if len(buf) < 4 {
		return ErrBadTable
	}
	tl := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if int64(tl) > int64(len(buf)) {
		return ErrBadTable
	}
	tbl, err := DecodeTable(buf[:tl])
	if err != nil {
		return err
	}
	buf = buf[tl:]
	if len(buf) < 4 {
		return ErrBadTable
	}
	nf := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if int64(len(buf)) < 12*int64(nf)+4 {
		return ErrBadTable
	}
	fenced := make(map[uint32]fenceInfo, nf)
	for i := uint32(0); i < nf; i++ {
		rec := buf[12*i:]
		fenced[binary.LittleEndian.Uint32(rec)] = fenceInfo{
			gen: binary.LittleEndian.Uint32(rec[4:]),
			to:  types.GroupID(binary.LittleEndian.Uint32(rec[8:])),
		}
	}
	buf = buf[12*nf:]
	ns := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if int64(len(buf)) < 8*int64(ns) {
		return ErrBadTable
	}
	seeded := make(map[uint64]bool, ns)
	for i := uint32(0); i < ns; i++ {
		seeded[binary.LittleEndian.Uint64(buf[8*i:])] = true
	}
	buf = buf[8*ns:]
	if sn, ok := s.inner.(rsm.Snapshotter); ok {
		if err := sn.Restore(buf); err != nil {
			return err
		}
	}
	s.fenced = fenced
	s.seeded = seeded
	s.holder.MergeTable(tbl)
	return nil
}

// querySM adds StateQuerier forwarding for inner machines that have
// it. Queries touch no wrapper state, so they stay safe to run
// concurrently with Apply — the read-path gate against migrated slots
// is enforced at serve time by the node, against the live table.
type querySM struct{ *SM }

func (s *querySM) Query(q []byte) []byte {
	return s.inner.(rsm.StateQuerier).Query(q)
}

// snapSM adds Snapshotter forwarding for inner machines that have it.
type snapSM struct{ *SM }

func (s *snapSM) Snapshot() []byte          { return s.snapshot() }
func (s *snapSM) Restore(buf []byte) error  { return s.restore(buf) }

// querySnapSM has both capabilities.
type querySnapSM struct{ querySM }

func (s *querySnapSM) Snapshot() []byte         { return s.snapshot() }
func (s *querySnapSM) Restore(buf []byte) error { return s.restore(buf) }
