// Package types defines the identifiers, timestamps and command types
// shared by every replication protocol in this repository.
package types

import (
	"fmt"
	"strconv"
)

// ReplicaID identifies a replica within a replication group. IDs are dense
// indexes assigned by the system specification (Spec): 0..N-1.
type ReplicaID int

// NoReplica is the zero-value sentinel for "no replica".
const NoReplica ReplicaID = -1

// String returns the conventional r<k> rendering used in the paper.
func (r ReplicaID) String() string {
	if r == NoReplica {
		return "r?"
	}
	return "r" + strconv.Itoa(int(r))
}

// Timestamp is the total-order key assigned to commands by Clock-RSM.
// Wall is a physical clock reading in nanoseconds; ties between replicas
// are resolved by the originating replica's ID (Section III-B, step 1).
type Timestamp struct {
	Wall int64
	Node ReplicaID
}

// Less reports whether t orders strictly before o: first by wall-clock
// time, then by replica ID.
func (t Timestamp) Less(o Timestamp) bool {
	if t.Wall != o.Wall {
		return t.Wall < o.Wall
	}
	return t.Node < o.Node
}

// LessEq reports whether t orders before or equal to o.
func (t Timestamp) LessEq(o Timestamp) bool { return !o.Less(t) }

// Compare returns -1, 0, or +1 as t orders before, equal to, or after o.
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Less(o):
		return -1
	case o.Less(t):
		return 1
	default:
		return 0
	}
}

// IsZero reports whether t is the zero timestamp.
func (t Timestamp) IsZero() bool { return t.Wall == 0 && t.Node == 0 }

// String renders the timestamp as wall@node.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d@%s", t.Wall, t.Node)
}

// CommandID uniquely identifies a client command within its originating
// replica. The pair (Origin, Seq) is globally unique.
type CommandID struct {
	Origin ReplicaID
	Seq    uint64
}

// String renders the command ID as origin/seq.
func (c CommandID) String() string {
	return fmt.Sprintf("%s/%d", c.Origin, c.Seq)
}

// Command is an opaque state-machine command submitted by a client. The
// replication layer never interprets Payload; it is handed to the state
// machine on execution.
type Command struct {
	ID      CommandID
	Payload []byte
}

// Clone returns a deep copy of the command so callers may mutate their
// buffer after submission.
func (c Command) Clone() Command {
	p := make([]byte, len(c.Payload))
	copy(p, c.Payload)
	return Command{ID: c.ID, Payload: p}
}

// Result is the output produced by executing a command against the state
// machine, delivered back to the originating client.
type Result struct {
	ID    CommandID
	Value []byte
	// Redirect, when nonzero, records that the command was NOT executed
	// because its key's slot has migrated to another replication group;
	// the target group is encoded as group+1 so the zero value keeps
	// meaning "no redirect". Use SetRedirect/RedirectGroup.
	Redirect int32
}

// SetRedirect marks the result as a routing redirect to group g.
func (r *Result) SetRedirect(g GroupID) { r.Redirect = int32(g) + 1 }

// RedirectGroup returns the redirect target, if any.
func (r Result) RedirectGroup() (GroupID, bool) {
	if r.Redirect == 0 {
		return 0, false
	}
	return GroupID(r.Redirect - 1), true
}

// Epoch numbers configurations; it increases by one at every
// reconfiguration (Section V-A).
type Epoch uint64

// GroupID identifies one replication group on a node that hosts several
// independent Clock-RSM instances multiplexed over a shared transport.
// Groups are dense indexes 0..G-1; single-group deployments use group 0.
type GroupID int32

// String renders the group ID as g<k>.
func (g GroupID) String() string { return "g" + strconv.Itoa(int(g)) }

// Majority returns the size of a majority quorum out of n replicas:
// floor(n/2)+1.
func Majority(n int) int { return n/2 + 1 }
