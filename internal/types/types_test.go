package types

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestReplicaIDString(t *testing.T) {
	tests := []struct {
		id   ReplicaID
		want string
	}{
		{0, "r0"},
		{3, "r3"},
		{NoReplica, "r?"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("ReplicaID(%d).String() = %q, want %q", int(tt.id), got, tt.want)
		}
	}
}

func TestTimestampLess(t *testing.T) {
	tests := []struct {
		name string
		a, b Timestamp
		want bool
	}{
		{"smaller wall", Timestamp{1, 2}, Timestamp{2, 0}, true},
		{"larger wall", Timestamp{3, 0}, Timestamp{2, 9}, false},
		{"equal wall smaller node", Timestamp{5, 1}, Timestamp{5, 2}, true},
		{"equal wall larger node", Timestamp{5, 3}, Timestamp{5, 2}, false},
		{"equal", Timestamp{5, 2}, Timestamp{5, 2}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.want {
			t.Errorf("%s: %v.Less(%v) = %v, want %v", tt.name, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestTimestampLessEqAndCompare(t *testing.T) {
	a := Timestamp{1, 0}
	b := Timestamp{1, 1}
	if !a.LessEq(b) || !a.LessEq(a) || b.LessEq(a) {
		t.Errorf("LessEq inconsistent: a=%v b=%v", a, b)
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Errorf("Compare inconsistent: a=%v b=%v", a, b)
	}
}

// Timestamp ordering must be a strict total order: exactly one of
// a<b, b<a, a==b holds.
func TestTimestampTotalOrderProperty(t *testing.T) {
	f := func(aw, bw int64, an, bn uint8) bool {
		a := Timestamp{Wall: aw, Node: ReplicaID(an)}
		b := Timestamp{Wall: bw, Node: ReplicaID(bn)}
		lt, gt, eq := a.Less(b), b.Less(a), a == b
		n := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Transitivity of Less over random triples.
func TestTimestampTransitivityProperty(t *testing.T) {
	f := func(ws [3]int64, ns [3]uint8) bool {
		ts := make([]Timestamp, 3)
		for i := range ts {
			ts[i] = Timestamp{Wall: ws[i] % 100, Node: ReplicaID(ns[i] % 4)}
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
		return !ts[1].Less(ts[0]) && !ts[2].Less(ts[1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimestampIsZero(t *testing.T) {
	if !(Timestamp{}).IsZero() {
		t.Error("zero timestamp not IsZero")
	}
	if (Timestamp{Wall: 1}).IsZero() || (Timestamp{Node: 1}).IsZero() {
		t.Error("non-zero timestamp reported IsZero")
	}
}

func TestCommandClone(t *testing.T) {
	orig := Command{ID: CommandID{Origin: 1, Seq: 7}, Payload: []byte("abc")}
	cp := orig.Clone()
	cp.Payload[0] = 'x'
	if string(orig.Payload) != "abc" {
		t.Errorf("Clone shares payload: orig=%q", orig.Payload)
	}
	if cp.ID != orig.ID {
		t.Errorf("Clone changed ID: %v != %v", cp.ID, orig.ID)
	}
}

func TestMajority(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {6, 4}, {7, 4},
	}
	for _, tt := range tests {
		if got := Majority(tt.n); got != tt.want {
			t.Errorf("Majority(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestStringRenderings(t *testing.T) {
	ts := Timestamp{Wall: 42, Node: 3}
	if ts.String() != "42@r3" {
		t.Errorf("Timestamp.String() = %q", ts.String())
	}
	id := CommandID{Origin: 2, Seq: 9}
	if id.String() != "r2/9" {
		t.Errorf("CommandID.String() = %q", id.String())
	}
}
