package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Count() != 0 || s.Mean() != 0 || s.P95() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should report zeros")
	}
	if s.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestMean(t *testing.T) {
	var s Sample
	s.AddAll([]time.Duration{ms(10), ms(20), ms(30)})
	if got := s.Mean(); got != ms(20) {
		t.Errorf("Mean = %v, want 20ms", got)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(ms(i))
	}
	tests := []struct {
		q    float64
		want time.Duration
	}{
		{0, ms(1)},
		{0.5, ms(50)},
		{0.95, ms(95)},
		{1, ms(100)},
	}
	for _, tt := range tests {
		if got := s.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileUnsortedInput(t *testing.T) {
	var s Sample
	s.AddAll([]time.Duration{ms(30), ms(10), ms(20)})
	if got := s.Min(); got != ms(10) {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != ms(30) {
		t.Errorf("Max = %v", got)
	}
	s.Add(ms(5)) // adding after sorting must re-sort
	if got := s.Min(); got != ms(5) {
		t.Errorf("Min after re-add = %v", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Sample
	a.Add(ms(10))
	b.Add(ms(30))
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != ms(20) {
		t.Errorf("after merge: count=%d mean=%v", a.Count(), a.Mean())
	}
}

func TestCDFMonotonic(t *testing.T) {
	var s Sample
	for i := 100; i >= 1; i-- {
		s.Add(ms(i))
	}
	cdf := s.CDF(20)
	if len(cdf) != 20 {
		t.Fatalf("CDF points = %d, want 20", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Latency < cdf[i-1].Latency || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Errorf("CDF not monotonic at %d: %+v then %+v", i, cdf[i-1], cdf[i])
		}
	}
	last := cdf[len(cdf)-1]
	if last.Fraction != 1 || last.Latency != ms(100) {
		t.Errorf("CDF endpoint = %+v", last)
	}
}

func TestCDFFewerSamplesThanPoints(t *testing.T) {
	var s Sample
	s.AddAll([]time.Duration{ms(1), ms(2)})
	cdf := s.CDF(50)
	if len(cdf) != 2 {
		t.Errorf("CDF len = %d, want 2", len(cdf))
	}
}

// Quantiles stay within [min, max] and are monotonic in q.
func TestQuantileBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(time.Duration(v) * time.Microsecond)
		}
		prev := s.Quantile(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
			cur := s.Quantile(q)
			if cur < prev || cur < s.Min() || cur > s.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Error("MeanDuration(nil) != 0")
	}
	if got := MeanDuration([]time.Duration{ms(1), ms(3)}); got != ms(2) {
		t.Errorf("MeanDuration = %v", got)
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(ms(10))
	if s.String() == "" {
		t.Error("empty String()")
	}
}
