// Package stats collects latency samples and derives the summary
// statistics reported in the paper's evaluation: averages, 95th
// percentiles (Figures 1, 2, 5) and latency CDFs (Figures 3, 4, 6).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates duration observations. The zero value is ready to
// use. Sample is not safe for concurrent use; callers aggregate per
// goroutine and merge.
type Sample struct {
	vals   []time.Duration
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(d time.Duration) {
	s.vals = append(s.vals, d)
	s.sorted = false
}

// AddAll records many observations.
func (s *Sample) AddAll(ds []time.Duration) {
	s.vals = append(s.vals, ds...)
	s.sorted = false
}

// Merge folds another sample's observations into s.
func (s *Sample) Merge(o *Sample) { s.AddAll(o.vals) }

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.vals) }

// Mean returns the average observation, or 0 for an empty sample.
func (s *Sample) Mean() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(s.vals)))
}

// ensureSorted sorts the backing slice once; subsequent quantile queries
// are O(1).
func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Slice(s.vals, func(i, j int) bool { return s.vals[i] < s.vals[j] })
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using the nearest-rank
// method, or 0 for an empty sample.
func (s *Sample) Quantile(q float64) time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	rank := int(math.Ceil(q*float64(len(s.vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.vals[rank]
}

// P95 returns the 95th-percentile observation, the statistic drawn as
// lines atop the bars in Figures 1, 2 and 5.
func (s *Sample) P95() time.Duration { return s.Quantile(0.95) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[len(s.vals)-1]
}

// CDFPoint is one point of an empirical distribution function.
type CDFPoint struct {
	Latency time.Duration
	// Fraction of observations ≤ Latency, in [0,1].
	Fraction float64
}

// CDF returns the empirical CDF sampled at up to points evenly spaced
// ranks, suitable for plotting the latency distributions of Figures 3,
// 4 and 6.
func (s *Sample) CDF(points int) []CDFPoint {
	if len(s.vals) == 0 || points <= 0 {
		return nil
	}
	s.ensureSorted()
	if points > len(s.vals) {
		points = len(s.vals)
	}
	out := make([]CDFPoint, 0, points)
	for p := 1; p <= points; p++ {
		rank := p*len(s.vals)/points - 1
		if rank < 0 {
			rank = 0
		}
		out = append(out, CDFPoint{
			Latency:  s.vals[rank],
			Fraction: float64(rank+1) / float64(len(s.vals)),
		})
	}
	return out
}

// String summarizes the sample for logs.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%v p95=%v max=%v", s.Count(), s.Mean(), s.P95(), s.Max())
}

// MeanDuration averages a plain duration slice; it returns 0 for an
// empty slice.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum float64
	for _, d := range ds {
		sum += float64(d)
	}
	return time.Duration(sum / float64(len(ds)))
}
