//go:build linux

// Package cpupin pins the calling OS thread to a single CPU. It exists
// for the per-group event-loop pinning experiment: with one replication
// group per core, loops stop migrating across caches and the group
// scaling measurement isolates protocol cost from scheduler noise.
//
// Only Linux implements pinning (via sched_setaffinity on the calling
// thread); elsewhere Pin reports ErrUnsupported and the caller runs
// unpinned. Callers must hold runtime.LockOSThread for the pin to mean
// anything — the affinity mask applies to the OS thread, not the
// goroutine.
package cpupin

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"
)

// Pin restricts the calling OS thread to the given 0-based CPU. The CPU
// index is taken modulo runtime.NumCPU(), so callers can hand out
// group indexes without counting cores themselves.
func Pin(cpu int) error {
	if cpu < 0 {
		return fmt.Errorf("cpupin: negative cpu %d", cpu)
	}
	cpu %= runtime.NumCPU()
	// A cpu_set_t is a bit mask of CPUs; 1024 bits covers any machine
	// this code will meet.
	var mask [1024 / 64]uint64
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	// pid 0 means "the calling thread" for sched_setaffinity.
	_, _, errno := syscall.RawSyscall(
		syscall.SYS_SCHED_SETAFFINITY,
		0,
		uintptr(unsafe.Sizeof(mask)),
		uintptr(unsafe.Pointer(&mask[0])),
	)
	if errno != 0 {
		return fmt.Errorf("cpupin: sched_setaffinity(cpu %d): %v", cpu, errno)
	}
	return nil
}

// Supported reports whether Pin can actually pin on this platform.
func Supported() bool { return true }
