//go:build !linux

package cpupin

import "errors"

// ErrUnsupported is returned by Pin on platforms without thread
// affinity support.
var ErrUnsupported = errors.New("cpupin: not supported on this platform")

// Pin is a no-op on platforms without sched_setaffinity; callers run
// unpinned.
func Pin(cpu int) error { return ErrUnsupported }

// Supported reports whether Pin can actually pin on this platform.
func Supported() bool { return false }
