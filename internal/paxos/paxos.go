// Package paxos implements the Multi-Paxos baseline of Section IV-B and
// its latency-optimized variant Paxos-bcast, which broadcasts phase 2b
// messages so replicas learn commit outcomes without the leader's help.
//
// As in the paper's evaluation, the leader is designated up front and
// stable: commands are totally ordered by the slot sequence the leader
// assigns. Leader election/view change is outside the scope of the
// paper's latency study (its Clock-RSM reconfiguration story is the
// contribution; the baselines are measured in failure-free runs).
package paxos

import (
	"math/bits"

	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

// stableBallot is the fixed ballot of the stable leader.
const stableBallot = 1

// Options configure a Paxos replica.
type Options struct {
	// Leader designates the stable leader replica.
	Leader types.ReplicaID
	// Broadcast selects Paxos-bcast: phase 2b messages go to every
	// replica (O(N²) messages) instead of only the leader, removing the
	// final leader→origin commit notification (Section IV-B).
	Broadcast bool
}

// Replica is one Multi-Paxos (or Paxos-bcast) replica.
type Replica struct {
	env  rsm.Env
	app  *rsm.App
	opts Options

	// nextSlot is the leader's next unassigned slot.
	nextSlot uint64
	// accepted maps slot → command for every slot this replica accepted.
	accepted map[uint64]types.Command
	// acks maps slot → bitmask of replicas known to have accepted it.
	// Maintained by the leader, and by everyone under Paxos-bcast.
	acks map[uint64]uint64
	// commitCount is the commit frontier: slots in [0, commitCount) are
	// known committed (the leader commits strictly in order).
	commitCount uint64
	// execIdx is the next slot to execute.
	execIdx uint64

	committed uint64
	nextSeq   uint64
}

var (
	_ rsm.Protocol    = (*Replica)(nil)
	_ rsm.IDAllocator = (*Replica)(nil)
)

// New creates a Paxos replica.
func New(env rsm.Env, app *rsm.App, opts Options) *Replica {
	return &Replica{
		env:      env,
		app:      app,
		opts:     opts,
		accepted: make(map[uint64]types.Command),
		acks:     make(map[uint64]uint64),
	}
}

// Start implements rsm.Protocol.
func (r *Replica) Start() {}

// IsLeader reports whether this replica is the designated leader.
func (r *Replica) IsLeader() bool { return r.env.ID() == r.opts.Leader }

// Committed returns the number of commands executed.
func (r *Replica) Committed() uint64 { return r.committed }

// NextCommandID allocates a client command identifier.
func (r *Replica) NextCommandID() types.CommandID {
	r.nextSeq++
	return types.CommandID{Origin: r.env.ID(), Seq: r.nextSeq}
}

// Submit handles a client command: the leader assigns it a slot; a
// non-leader forwards it to the leader (one extra WAN message, the
// d(ri,rl) term of Table II).
func (r *Replica) Submit(cmd types.Command) {
	if r.IsLeader() {
		r.propose(cmd)
		return
	}
	r.env.Send(r.opts.Leader, &msg.Forward{Cmd: cmd})
}

// propose assigns cmd the next slot and sends phase 2a to all replicas.
// The leader logs before sending, so the Accept doubles as the leader's
// own acceptance.
func (r *Replica) propose(cmd types.Command) {
	slot := r.nextSlot
	r.nextSlot++
	r.accepted[slot] = cmd
	r.env.Log().Append(storage.Entry{Kind: storage.KindPrepare, TS: slotTS(slot), Cmd: cmd})
	r.ack(slot, r.env.ID())
	rsm.Broadcast(r.env, r.env.Spec(), &msg.Accept{
		Ballot:      stableBallot,
		Slot:        slot,
		Cmd:         cmd,
		CommitIndex: r.commitCount,
	})
	r.tryExecute()
}

// Deliver implements rsm.Protocol.
func (r *Replica) Deliver(from types.ReplicaID, m msg.Message) {
	switch mm := m.(type) {
	case *msg.Batch:
		// Packed messages from one sender: process in order.
		for _, sub := range mm.Msgs {
			r.Deliver(from, sub)
		}
	case *msg.Forward:
		if r.IsLeader() {
			r.propose(mm.Cmd)
		}
	case *msg.Accept:
		r.onAccept(from, mm)
	case *msg.Accepted:
		r.onAccepted(from, mm)
	case *msg.Commit:
		r.onCommit(mm)
	}
}

// onAccept handles phase 2a at a follower: log the command and
// acknowledge with phase 2b — to everyone under Paxos-bcast, otherwise
// to the leader only.
func (r *Replica) onAccept(from types.ReplicaID, m *msg.Accept) {
	if m.Ballot != stableBallot {
		return
	}
	if _, dup := r.accepted[m.Slot]; !dup {
		r.accepted[m.Slot] = m.Cmd
		r.env.Log().Append(storage.Entry{Kind: storage.KindPrepare, TS: slotTS(m.Slot), Cmd: m.Cmd})
	}
	// The Accept proves the leader logged the slot; count it, and our
	// own acceptance.
	r.ack(m.Slot, from)
	r.ack(m.Slot, r.env.ID())
	ack := &msg.Accepted{Ballot: stableBallot, Slot: m.Slot}
	if r.opts.Broadcast {
		rsm.Broadcast(r.env, r.env.Spec(), ack)
	} else {
		r.env.Send(r.opts.Leader, ack)
	}
	// Piggybacked commit frontier from the leader.
	if m.CommitIndex > r.commitCount {
		r.commitCount = m.CommitIndex
	}
	r.tryExecute()
}

// onAccepted handles phase 2b.
func (r *Replica) onAccepted(from types.ReplicaID, m *msg.Accepted) {
	if m.Ballot != stableBallot {
		return
	}
	r.ack(m.Slot, from)
	r.tryExecute()
}

// onCommit handles the leader's commit notification (plain Multi-Paxos).
func (r *Replica) onCommit(m *msg.Commit) {
	if m.Slot+1 > r.commitCount {
		r.commitCount = m.Slot + 1
	}
	r.tryExecute()
}

// ack records that replica k accepted slot.
func (r *Replica) ack(slot uint64, k types.ReplicaID) {
	r.acks[slot] |= 1 << uint(k)
}

// quorate reports whether slot has a majority of acceptances known
// locally.
func (r *Replica) quorate(slot uint64) bool {
	return bits.OnesCount64(r.acks[slot]) >= types.Majority(len(r.env.Spec()))
}

// tryExecute advances the execution frontier. Under Paxos-bcast every
// replica counts 2b messages itself; under plain Paxos followers rely on
// the leader's commit index. Execution is strictly in slot order.
func (r *Replica) tryExecute() {
	for {
		cmd, ok := r.accepted[r.execIdx]
		if !ok {
			return
		}
		committable := r.execIdx < r.commitCount
		if !committable && (r.opts.Broadcast || r.IsLeader()) {
			committable = r.quorate(r.execIdx)
		}
		if !committable {
			return
		}
		slot := r.execIdx
		r.execIdx++
		if slot+1 > r.commitCount {
			r.commitCount = slot + 1
		}
		r.env.Log().Append(storage.Entry{Kind: storage.KindCommit, TS: slotTS(slot)})
		delete(r.acks, slot)
		delete(r.accepted, slot)
		r.committed++
		r.app.Execute(r.env.ID(), slotTS(slot), cmd)
		// Plain Multi-Paxos: the leader notifies followers of the commit.
		if !r.opts.Broadcast && r.IsLeader() {
			rsm.Broadcast(r.env, r.env.Spec(), &msg.Commit{Slot: slot})
		}
	}
}

// slotTS renders a slot as the Timestamp key used by the shared log.
func slotTS(slot uint64) types.Timestamp {
	return types.Timestamp{Wall: int64(slot)}
}
