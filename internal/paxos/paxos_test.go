package paxos

import (
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/sim"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

type harness struct {
	t       *testing.T
	c       *sim.Cluster
	reps    []*Replica
	orders  [][]types.CommandID
	replies []map[types.CommandID]time.Duration
	submits map[types.CommandID]time.Duration
	seq     uint64
}

func newHarness(t *testing.T, lat *wan.Matrix, opts Options, copts sim.ClusterOptions) *harness {
	t.Helper()
	h := &harness{t: t, c: sim.NewCluster(lat, copts), submits: make(map[types.CommandID]time.Duration)}
	n := lat.Size()
	h.orders = make([][]types.CommandID, n)
	h.replies = make([]map[types.CommandID]time.Duration, n)
	for i, r := range h.c.Replicas {
		i := i
		h.replies[i] = make(map[types.CommandID]time.Duration)
		app := &rsm.App{
			SM: rsm.NopSM{},
			OnCommit: func(ts types.Timestamp, cmd types.Command) {
				h.orders[i] = append(h.orders[i], cmd.ID)
			},
			OnReply: func(res types.Result) { h.replies[i][res.ID] = h.c.Eng.Now() },
		}
		rep := New(r, app, opts)
		h.reps = append(h.reps, rep)
		r.SetProtocol(rep)
	}
	h.c.Start()
	return h
}

func (h *harness) submitAt(id types.ReplicaID, at time.Duration) types.CommandID {
	h.seq++
	cid := types.CommandID{Origin: id, Seq: h.seq}
	h.c.Eng.At(at, func() {
		h.submits[cid] = h.c.Eng.Now()
		h.reps[id].Submit(types.Command{ID: cid, Payload: []byte("cmd")})
	})
	return cid
}

func (h *harness) latency(cid types.CommandID) time.Duration {
	rep, ok := h.replies[cid.Origin][cid]
	if !ok {
		h.t.Fatalf("no reply for %v", cid)
	}
	return rep - h.submits[cid]
}

func (h *harness) checkTotalOrder(want int) {
	h.t.Helper()
	for i := 1; i < len(h.orders); i++ {
		if len(h.orders[i]) != len(h.orders[0]) {
			h.t.Fatalf("replica %d executed %d, replica 0 executed %d", i, len(h.orders[i]), len(h.orders[0]))
		}
		for j := range h.orders[i] {
			if h.orders[i][j] != h.orders[0][j] {
				h.t.Fatalf("order divergence at %d", j)
			}
		}
	}
	if want >= 0 && len(h.orders[0]) != want {
		h.t.Fatalf("executed %d commands, want %d", len(h.orders[0]), want)
	}
}

// Asymmetric 5-replica matrix for latency checks: distances from the
// leader r0: {0, 10, 20, 30, 40}; all other pairs 25ms.
func asymMatrix() *wan.Matrix {
	m := wan.NewMatrix(5)
	for j := 1; j < 5; j++ {
		m.Set(0, types.ReplicaID(j), ms(10*j))
		for k := j + 1; k < 5; k++ {
			m.Set(types.ReplicaID(j), types.ReplicaID(k), ms(25))
		}
	}
	return m
}

func TestLeaderLatencyIsTwiceMedian(t *testing.T) {
	// Both variants: leader commits after one round trip to a majority:
	// 2 * median({0,10,20,30,40}) = 40ms.
	for _, bcast := range []bool{false, true} {
		h := newHarness(t, asymMatrix(), Options{Leader: 0, Broadcast: bcast}, sim.ClusterOptions{})
		cid := h.submitAt(0, 0)
		h.c.Eng.RunUntilIdle()
		if got := h.latency(cid); got != ms(40) {
			t.Errorf("bcast=%v: leader latency = %v, want 40ms", bcast, got)
		}
	}
}

func TestNonLeaderLatencyPlainPaxos(t *testing.T) {
	// Table II non-leader: 2*d(i,l) + 2*median(d(l,*)).
	// From r4 (40ms to leader): 80 + 40 = 120ms.
	h := newHarness(t, asymMatrix(), Options{Leader: 0}, sim.ClusterOptions{})
	cid := h.submitAt(4, 0)
	h.c.Eng.RunUntilIdle()
	if got := h.latency(cid); got != ms(120) {
		t.Errorf("non-leader latency = %v, want 120ms", got)
	}
}

func TestNonLeaderLatencyPaxosBcast(t *testing.T) {
	// Section IV-B: d(i,l) + median({d(l,k)+d(k,i)}).
	// i=r4: d=40. Two-hop l→k→i: k=0(leader):0+40=40, k=1:10+25=35,
	// k=2:20+25=45, k=3:30+25=55, k=4:40+0=40. median{35,40,40,45,55}=40.
	// Total 80ms vs 120ms for plain Paxos.
	m := asymMatrix()
	h := newHarness(t, m, Options{Leader: 0, Broadcast: true}, sim.ClusterOptions{})
	cid := h.submitAt(4, 0)
	h.c.Eng.RunUntilIdle()
	want := m.OneWay(4, 0) + m.TwoHopMedian(0, 4)
	if got := h.latency(cid); got != want {
		t.Errorf("bcast non-leader latency = %v, want %v", got, want)
	}
	if want != ms(80) {
		t.Errorf("analytic value = %v, expected 80ms", want)
	}
}

func TestTotalOrderUnderConcurrency(t *testing.T) {
	for _, bcast := range []bool{false, true} {
		h := newHarness(t, wan.EC2Matrix([]wan.Site{wan.CA, wan.VA, wan.IR, wan.JP, wan.SG}),
			Options{Leader: 1, Broadcast: bcast}, sim.ClusterOptions{Jitter: ms(2), Seed: 5})
		total := 0
		for i := 0; i < 5; i++ {
			for k := 0; k < 20; k++ {
				h.submitAt(types.ReplicaID(i), time.Duration(k*13+i*3)*time.Millisecond)
				total++
			}
		}
		h.c.Eng.RunUntil(30 * time.Second)
		h.checkTotalOrder(total)
	}
}

func TestRepliesReachEveryOrigin(t *testing.T) {
	h := newHarness(t, wan.Uniform(3, ms(20)), Options{Leader: 0, Broadcast: true}, sim.ClusterOptions{})
	cids := []types.CommandID{h.submitAt(0, 0), h.submitAt(1, ms(1)), h.submitAt(2, ms(2))}
	h.c.Eng.RunUntilIdle()
	for _, cid := range cids {
		if _, ok := h.replies[cid.Origin][cid]; !ok {
			t.Errorf("no reply for %v at its origin", cid)
		}
	}
	h.checkTotalOrder(3)
}

func TestLeaderOrdersForwardedCommands(t *testing.T) {
	// Two commands forwarded from different replicas execute in arrival
	// order at the leader, identically everywhere.
	h := newHarness(t, asymMatrix(), Options{Leader: 0}, sim.ClusterOptions{})
	a := h.submitAt(1, 0)     // arrives at leader at 10ms
	b := h.submitAt(4, 0)     // arrives at leader at 40ms
	c := h.submitAt(0, ms(5)) // leader-local at 5ms
	h.c.Eng.RunUntilIdle()
	h.checkTotalOrder(3)
	want := []types.CommandID{c, a, b}
	for j, cid := range want {
		if h.orders[0][j] != cid {
			t.Fatalf("slot %d = %v, want %v (order %v)", j, h.orders[0][j], cid, h.orders[0])
		}
	}
}

func TestFollowerExecutionLagsPlainPaxos(t *testing.T) {
	// In plain Paxos a follower learns commits only from the leader's
	// Commit message; with broadcast it self-counts 2b and commits
	// earlier. Verify the non-origin follower r1 executes in both modes.
	for _, bcast := range []bool{false, true} {
		h := newHarness(t, asymMatrix(), Options{Leader: 0, Broadcast: bcast}, sim.ClusterOptions{})
		h.submitAt(0, 0)
		h.c.Eng.RunUntilIdle()
		if len(h.orders[1]) != 1 {
			t.Errorf("bcast=%v: follower did not execute", bcast)
		}
	}
}

func TestDuplicateAcceptedIgnored(t *testing.T) {
	h := newHarness(t, wan.Uniform(3, ms(10)), Options{Leader: 0, Broadcast: true}, sim.ClusterOptions{})
	h.submitAt(0, 0)
	h.c.Eng.RunUntilIdle()
	before := h.reps[2].Committed()
	// Replay a stale Accepted and a stale-ballot Accept by hand; commit
	// count must not move.
	h.reps[2].Deliver(1, &msg.Accepted{Ballot: stableBallot, Slot: 0})
	h.reps[2].Deliver(1, &msg.Accept{Ballot: 99, Slot: 7, Cmd: types.Command{}})
	if h.reps[2].Committed() != before {
		t.Error("stale messages changed commit count")
	}
}
