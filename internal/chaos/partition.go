package chaos

import (
	"sync"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// Transport wraps a transport endpoint with this engine's link-fault
// windows, evaluated sender-side on the directed links out of the
// endpoint's own replica. It works identically over the in-process hub
// and the TCP transport because it only touches the send path; receive
// handlers, group demultiplexing, and lifecycle pass straight through.
//
// Two invariants the protocol depends on are preserved:
//
//   - Per-link FIFO: every destination with any LinkDelay window in the
//     schedule gets its own delay queue with monotonically non-decreasing
//     due times (due = max(previous due, now + delay)), drained by a
//     single goroutine, and all traffic to that destination flows
//     through the queue even outside fault windows — a delayed message
//     is never overtaken by a later send on the same link.
//   - Message ownership: the replication core relinquishes a message on
//     send and never mutates it afterwards, so delayed messages are held
//     by pointer and dropped messages are simply not forwarded; the
//     wrapper never copies or recycles.
func (e *Engine) Transport(inner transport.Transport) *ChaosTransport {
	t := &ChaosTransport{
		eng:   e,
		inner: inner,
		self:  inner.Self(),
	}
	t.innerB, _ = inner.(transport.Broadcaster)
	t.innerG, _ = inner.(transport.GroupTransport)
	t.innerGB, _ = inner.(transport.GroupBroadcaster)
	for _, f := range e.sched.Links {
		if f.From != t.self {
			continue
		}
		t.faults = append(t.faults, f)
		if f.Kind == LinkDelay {
			if t.queues == nil {
				t.queues = make(map[types.ReplicaID]*delayQueue)
			}
			if t.queues[f.To] == nil {
				t.queues[f.To] = &delayQueue{t: t, to: f.To}
			}
		}
	}
	e.register(t.self, t.addCounts)
	return t
}

// ChaosTransport is the fault-injecting endpoint wrapper built by
// Engine.Transport. It implements Transport, Broadcaster,
// GroupTransport and GroupBroadcaster; the group methods fall back to
// single-group semantics when the wrapped endpoint is a plain
// Transport.
type ChaosTransport struct {
	eng     *Engine
	inner   transport.Transport
	innerB  transport.Broadcaster
	innerG  transport.GroupTransport
	innerGB transport.GroupBroadcaster
	self    types.ReplicaID

	faults []LinkFault
	queues map[types.ReplicaID]*delayQueue

	mu            sync.Mutex
	closed        bool
	drops, delays uint64
	firedDrop     map[int]bool
	firedDelay    map[int]bool
	drain         sync.WaitGroup
}

var (
	_ transport.Transport        = (*ChaosTransport)(nil)
	_ transport.Broadcaster      = (*ChaosTransport)(nil)
	_ transport.GroupTransport   = (*ChaosTransport)(nil)
	_ transport.GroupBroadcaster = (*ChaosTransport)(nil)
)

// Self returns the wrapped endpoint's replica.
func (t *ChaosTransport) Self() types.ReplicaID { return t.self }

// SetHandler passes through to the wrapped endpoint.
func (t *ChaosTransport) SetHandler(h transport.Handler) { t.inner.SetHandler(h) }

// Start starts the wrapped endpoint and the delay-queue drainers.
func (t *ChaosTransport) Start() error {
	if err := t.inner.Start(); err != nil {
		return err
	}
	for _, q := range t.queues {
		q.start()
	}
	return nil
}

// Close stops the drainers (discarding messages still in flight inside
// a delay window — they were late; now they are lost, which a
// best-effort transport may always do) and closes the wrapped endpoint.
func (t *ChaosTransport) Close() error {
	t.mu.Lock()
	already := t.closed
	t.closed = true
	t.mu.Unlock()
	if !already {
		for _, q := range t.queues {
			q.stop()
		}
		t.drain.Wait()
	}
	return t.inner.Close()
}

// Groups returns the wrapped endpoint's group count, or 1 for a plain
// single-group transport.
func (t *ChaosTransport) Groups() int {
	if t.innerG != nil {
		return t.innerG.Groups()
	}
	return 1
}

// SetGroupHandler passes through; on a plain transport only group 0 is
// addressable.
func (t *ChaosTransport) SetGroupHandler(g types.GroupID, h transport.Handler) {
	if t.innerG != nil {
		t.innerG.SetGroupHandler(g, h)
		return
	}
	if g == 0 {
		t.inner.SetHandler(h)
	}
}

// Send transmits m to another replica through the fault windows.
func (t *ChaosTransport) Send(to types.ReplicaID, m msg.Message) {
	t.sendOne(to, 0, m, false)
}

// SendGroup transmits m tagged with group g through the fault windows.
func (t *ChaosTransport) SendGroup(to types.ReplicaID, g types.GroupID, m msg.Message) {
	t.sendOne(to, g, m, true)
}

// Broadcast fans out per peer so each directed link sees its own fault
// state; with no faults scheduled from this replica it delegates to the
// wrapped broadcaster (keeping, e.g., the hub's single-encode path).
func (t *ChaosTransport) Broadcast(dst []types.ReplicaID, m msg.Message) {
	if len(t.faults) == 0 && t.innerB != nil {
		t.innerB.Broadcast(dst, m)
		return
	}
	for _, to := range dst {
		if to != t.self {
			t.sendOne(to, 0, m, false)
		}
	}
}

// BroadcastGroup is Broadcast with a group tag.
func (t *ChaosTransport) BroadcastGroup(dst []types.ReplicaID, g types.GroupID, m msg.Message) {
	if len(t.faults) == 0 && t.innerGB != nil {
		t.innerGB.BroadcastGroup(dst, g, m)
		return
	}
	for _, to := range dst {
		if to != t.self {
			t.sendOne(to, g, m, true)
		}
	}
}

// sendOne applies the link self→to's fault windows to one message.
func (t *ChaosTransport) sendOne(to types.ReplicaID, g types.GroupID, m msg.Message, group bool) {
	el, armed := t.eng.elapsed()
	var extra time.Duration
	if armed {
		for i, f := range t.faults {
			if f.To != to || el < f.At {
				continue
			}
			if f.Duration > 0 && el >= f.At+f.Duration {
				continue
			}
			switch f.Kind {
			case LinkDrop:
				t.mu.Lock()
				t.drops++
				t.fireLocked(&t.firedDrop, i)
				t.mu.Unlock()
				return
			case LinkDelay:
				extra += f.Delay
				t.mu.Lock()
				t.delays++
				t.fireLocked(&t.firedDelay, i)
				t.mu.Unlock()
			}
		}
	}
	if q := t.queues[to]; q != nil {
		// All traffic to a delay-faulted destination goes through its
		// queue, even with zero extra delay, so FIFO order on the link
		// survives the fault window's edges.
		q.enqueue(extra, g, m, group)
		return
	}
	t.deliver(to, g, m, group)
}

// deliver hands a message to the wrapped endpoint.
func (t *ChaosTransport) deliver(to types.ReplicaID, g types.GroupID, m msg.Message, group bool) {
	if group && t.innerG != nil {
		t.innerG.SendGroup(to, g, m)
		return
	}
	t.inner.Send(to, m)
}

// fireLocked marks fault window i as having fired (first activation);
// callers hold t.mu. The per-window sets exist so tests can distinguish
// "window never activated" from "window activated once, counted many".
func (t *ChaosTransport) fireLocked(set *map[int]bool, i int) {
	if *set == nil {
		*set = make(map[int]bool)
	}
	(*set)[i] = true
}

func (t *ChaosTransport) addCounts(into map[string]uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	add(into, "link.drop", t.drops)
	add(into, "link.delay", t.delays)
}

// delayQueue holds the in-flight messages of one delay-faulted directed
// link, in due-time order (monotone by construction), drained by one
// goroutine.
type delayQueue struct {
	t  *ChaosTransport
	to types.ReplicaID

	mu      sync.Mutex
	cond    *sync.Cond
	pending []delayed
	lastDue time.Time
	stopped bool
}

type delayed struct {
	due   time.Time
	g     types.GroupID
	m     msg.Message
	group bool
}

func (q *delayQueue) start() {
	q.mu.Lock()
	if q.cond == nil {
		q.cond = sync.NewCond(&q.mu)
	}
	q.mu.Unlock()
	q.t.drain.Add(1)
	go q.run()
}

func (q *delayQueue) stop() {
	q.mu.Lock()
	q.stopped = true
	if q.cond != nil {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

func (q *delayQueue) enqueue(extra time.Duration, g types.GroupID, m msg.Message, group bool) {
	due := time.Now().Add(extra)
	q.mu.Lock()
	if q.stopped || q.cond == nil {
		// Not started (endpoint never Started) or already closing: fall
		// through synchronously so pre-Start traffic is not lost.
		q.mu.Unlock()
		q.t.deliver(q.to, g, m, group)
		return
	}
	if due.Before(q.lastDue) {
		due = q.lastDue // FIFO: never overtake an earlier, slower message
	}
	q.lastDue = due
	q.pending = append(q.pending, delayed{due: due, g: g, m: m, group: group})
	q.cond.Signal()
	q.mu.Unlock()
}

func (q *delayQueue) run() {
	defer q.t.drain.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.stopped {
			q.cond.Wait()
		}
		if q.stopped {
			q.pending = nil
			q.mu.Unlock()
			return
		}
		d := q.pending[0]
		q.pending = q.pending[1:]
		q.mu.Unlock()
		if wait := time.Until(d.due); wait > 0 {
			time.Sleep(wait)
		}
		q.t.deliver(q.to, d.g, d.m, d.group)
	}
}
