package chaos

import (
	"math/rand"
	"time"

	"clockrsm/internal/types"
)

// Profile shapes Random's schedule generation.
type Profile struct {
	// Replicas is the cluster size faults are drawn over.
	Replicas int
	// Span is the window within which fault start times fall.
	Span time.Duration
	// ClockFaults, LinkFaults and DiskFaults are the number of fault
	// windows to draw per layer.
	ClockFaults, LinkFaults, DiskFaults int
	// MaxMagnitude bounds clock jump/rollback steps (default 50ms).
	MaxMagnitude time.Duration
	// MaxDelay bounds injected link delays (default 20ms).
	MaxDelay time.Duration
	// MaxStall bounds injected disk stalls (default 5ms).
	MaxStall time.Duration
	// MinDropWindow floors LinkDrop durations. Messages dropped by the
	// chaos layer are gone for good — the protocol has no retransmission
	// below reconfiguration — so a drop window must outlive the failure
	// detector for the reconfiguration path to repair the gap. The
	// detector samples silence only once per SuspectTimeout, so the
	// window has to exceed TWICE the timeout (a full sampling period
	// past the threshold) for detection to be guaranteed rather than
	// phase-dependent. Leave zero only for schedules that never reach a
	// live protocol. Default 800ms (2× the default 350ms SuspectTimeout
	// with margin).
	MinDropWindow time.Duration
}

func (p Profile) withDefaults() Profile {
	if p.Replicas == 0 {
		p.Replicas = 3
	}
	if p.Span == 0 {
		p.Span = time.Second
	}
	if p.MaxMagnitude == 0 {
		p.MaxMagnitude = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 20 * time.Millisecond
	}
	if p.MaxStall == 0 {
		p.MaxStall = 5 * time.Millisecond
	}
	if p.MinDropWindow == 0 {
		p.MinDropWindow = 800 * time.Millisecond
	}
	return p
}

// Random draws a schedule deterministically from the seed: the same
// (seed, profile) pair always yields the same schedule, which is the
// replayability contract of the whole package. Only fault kinds that
// are safe under live protocol load are drawn (see the DiskFaultKind
// docs): stalls and checkpoint errors, never append/sync errors.
func Random(seed int64, p Profile) Schedule {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}

	at := func() time.Duration { return time.Duration(rng.Int63n(int64(p.Span))) }
	dur := func(min, max time.Duration) time.Duration {
		if max <= min {
			return min
		}
		return min + time.Duration(rng.Int63n(int64(max-min)))
	}
	replica := func() types.ReplicaID { return types.ReplicaID(rng.Intn(p.Replicas)) }

	for i := 0; i < p.ClockFaults; i++ {
		f := ClockFault{
			Replica:  replica(),
			Kind:     ClockFaultKind(rng.Intn(4)) + ClockJump,
			At:       at(),
			Duration: dur(50*time.Millisecond, 300*time.Millisecond),
		}
		switch f.Kind {
		case ClockJump, ClockRollback:
			f.Magnitude = dur(time.Millisecond, p.MaxMagnitude)
		case ClockDrift:
			f.Drift = rng.Float64()*0.4 - 0.2 // ±20%
		}
		s.Clock = append(s.Clock, f)
	}
	for i := 0; i < p.LinkFaults; i++ {
		from := replica()
		to := replica()
		for to == from {
			to = replica()
		}
		f := LinkFault{
			From: from, To: to,
			Kind: LinkFaultKind(rng.Intn(2)) + LinkDrop,
			At:   at(),
		}
		if f.Kind == LinkDrop {
			f.Duration = dur(p.MinDropWindow, p.MinDropWindow+300*time.Millisecond)
		} else {
			f.Duration = dur(50*time.Millisecond, 300*time.Millisecond)
			f.Delay = dur(time.Millisecond, p.MaxDelay)
		}
		s.Links = append(s.Links, f)
	}
	for i := 0; i < p.DiskFaults; i++ {
		f := DiskFault{
			Replica:  replica(),
			Kind:     DiskFaultKind(rng.Intn(3)) + DiskSlowAppend, // stalls + checkpoint errors only
			At:       at(),
			Duration: dur(50*time.Millisecond, 400*time.Millisecond),
		}
		if f.Kind == DiskSlowAppend || f.Kind == DiskFsyncStall {
			f.Stall = dur(100*time.Microsecond, p.MaxStall)
		}
		s.Disk = append(s.Disk, f)
	}
	return s
}
