package chaos

import (
	"sync"
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// sinkTransport records every message handed to the wrapped endpoint,
// in order, so tests can assert exactly what survived the fault
// windows.
type sinkTransport struct {
	self types.ReplicaID

	mu   sync.Mutex
	sent []sunk
}

type sunk struct {
	to types.ReplicaID
	m  msg.Message
}

func (s *sinkTransport) Self() types.ReplicaID        { return s.self }
func (s *sinkTransport) SetHandler(transport.Handler) {}
func (s *sinkTransport) Start() error                 { return nil }
func (s *sinkTransport) Close() error                 { return nil }
func (s *sinkTransport) Send(to types.ReplicaID, m msg.Message) {
	s.mu.Lock()
	s.sent = append(s.sent, sunk{to: to, m: m})
	s.mu.Unlock()
}

func (s *sinkTransport) snapshot() []sunk {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]sunk(nil), s.sent...)
}

func ct(ts int64) *msg.ClockTime { return &msg.ClockTime{TS: ts} }

func TestPartitionPassThroughBeforeArm(t *testing.T) {
	sink := &sinkTransport{self: 0}
	eng := New(Schedule{Links: []LinkFault{
		{From: 0, To: 1, Kind: LinkDrop, At: 0, Duration: time.Hour},
	}})
	tr := eng.Transport(sink)
	tr.Send(1, ct(1))
	if got := sink.snapshot(); len(got) != 1 {
		t.Fatalf("unarmed chaos transport delivered %d messages, want 1", len(got))
	}
}

func TestPartitionOneWayDrop(t *testing.T) {
	sink := &sinkTransport{self: 0}
	eng := New(Schedule{Links: []LinkFault{
		{From: 0, To: 1, Kind: LinkDrop, At: 0, Duration: time.Hour},
	}})
	tr := eng.Transport(sink)
	eng.Arm()
	tr.Send(1, ct(1))                               // dropped: faulted link
	tr.Send(2, ct(2))                               // delivered: other link untouched
	tr.Broadcast([]types.ReplicaID{0, 1, 2}, ct(3)) // per-peer: only r2 gets it
	got := sink.snapshot()
	if len(got) != 2 || got[0].to != 2 || got[1].to != 2 {
		t.Fatalf("delivered %v, want exactly the two sends to replica 2", got)
	}
	if drops := eng.Counts()["link.drop"]; drops != 2 {
		t.Fatalf("link.drop = %d, want 2 (unicast + broadcast leg)", drops)
	}
}

func TestPartitionDropWindowClears(t *testing.T) {
	sink := &sinkTransport{self: 0}
	eng := New(Schedule{Links: []LinkFault{
		{From: 0, To: 1, Kind: LinkDrop, At: 0, Duration: 20 * time.Millisecond},
	}})
	tr := eng.Transport(sink)
	eng.Arm()
	tr.Send(1, ct(1))
	time.Sleep(40 * time.Millisecond)
	tr.Send(1, ct(2))
	got := sink.snapshot()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1 (window must clear)", len(got))
	}
	if cc, ok := got[0].m.(*msg.ClockTime); !ok || cc.TS != 2 {
		t.Fatalf("delivered %v, want the post-window message", got[0].m)
	}
}

func TestPartitionDelayPreservesFIFO(t *testing.T) {
	sink := &sinkTransport{self: 0}
	eng := New(Schedule{Links: []LinkFault{
		{From: 0, To: 1, Kind: LinkDelay, At: 0, Duration: 25 * time.Millisecond, Delay: 15 * time.Millisecond},
	}})
	tr := eng.Transport(sink)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	eng.Arm()
	const n = 8
	// Straddle the window edge: early sends are delayed, late ones are
	// not, and the queue must still deliver them in send order.
	for i := int64(1); i <= n; i++ {
		tr.Send(1, ct(i))
		time.Sleep(5 * time.Millisecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(sink.snapshot()) == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d delayed messages delivered", len(sink.snapshot()), n)
		}
		time.Sleep(time.Millisecond)
	}
	for i, s := range sink.snapshot() {
		if got := s.m.(*msg.ClockTime).TS; got != int64(i+1) {
			t.Fatalf("delivery %d carries TS %d: FIFO order broken", i, got)
		}
	}
	if delays := eng.Counts()["link.delay"]; delays == 0 {
		t.Fatal("no link.delay activations counted")
	}
}
