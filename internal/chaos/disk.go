package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

// ErrInjected marks every storage error produced by fault injection, so
// tests (and recovery paths) can tell a scheduled fault from a real
// one with errors.Is.
var ErrInjected = errors.New("chaos: injected storage fault")

// Log wraps a stable log with this engine's disk-fault windows for
// replica r (one wrapper per group log; the windows apply to all of a
// replica's logs alike, modelling a sick device rather than a sick
// file). The wrapper implements Syncer, Checkpointer and StatsReporter
// unconditionally, degrading to no-ops when the wrapped log lacks the
// capability, so it can stand in anywhere a FileLog does.
//
// Read the fault-kind taxonomy in chaos.go before scheduling write
// errors: stalls (DiskSlowAppend, DiskFsyncStall) and
// DiskCheckpointError are safe under live protocol load; DiskAppendError
// and DiskSyncError deliberately violate contracts the replication core
// relies on and belong in targeted recovery tests only.
func (e *Engine) Log(r types.ReplicaID, inner storage.Log) *ChaosLog {
	l := &ChaosLog{eng: e, inner: inner}
	l.innerS, _ = inner.(storage.Syncer)
	l.innerC, _ = inner.(storage.Checkpointer)
	l.innerR, _ = inner.(storage.StatsReporter)
	for _, f := range e.sched.Disk {
		if f.Replica == r {
			l.faults = append(l.faults, f)
		}
	}
	e.register(r, l.addCounts)
	return l
}

// ChaosLog is the fault-injecting stable-log wrapper built by
// Engine.Log.
type ChaosLog struct {
	eng    *Engine
	inner  storage.Log
	innerS storage.Syncer
	innerC storage.Checkpointer
	innerR storage.StatsReporter
	faults []DiskFault

	mu          sync.Mutex
	slowAppends uint64
	fsyncStalls uint64
	cpErrors    uint64
	apErrors    uint64
	syErrors    uint64
}

var (
	_ storage.Log           = (*ChaosLog)(nil)
	_ storage.Syncer        = (*ChaosLog)(nil)
	_ storage.Checkpointer  = (*ChaosLog)(nil)
	_ storage.StatsReporter = (*ChaosLog)(nil)
)

// active returns the first active fault window of the given kind, if
// any.
func (l *ChaosLog) active(kind DiskFaultKind) (DiskFault, bool) {
	el, armed := l.eng.elapsed()
	if !armed {
		return DiskFault{}, false
	}
	for _, f := range l.faults {
		if f.Kind != kind || el < f.At {
			continue
		}
		if f.Duration > 0 && el >= f.At+f.Duration {
			continue
		}
		return f, true
	}
	return DiskFault{}, false
}

// Append implements storage.Log, stalling or failing per the schedule.
func (l *ChaosLog) Append(e storage.Entry) error {
	if f, ok := l.active(DiskSlowAppend); ok {
		l.count(&l.slowAppends)
		time.Sleep(f.Stall)
	}
	if _, ok := l.active(DiskAppendError); ok {
		l.count(&l.apErrors)
		return fmt.Errorf("%w: append", ErrInjected)
	}
	return l.inner.Append(e)
}

// Sync implements storage.Syncer, stalling or failing per the schedule.
// With a wrapped log that has no Syncer it is a no-op (after faults
// apply, so a pure MemLog setup still exercises stall windows).
func (l *ChaosLog) Sync() error {
	if f, ok := l.active(DiskFsyncStall); ok {
		l.count(&l.fsyncStalls)
		time.Sleep(f.Stall)
	}
	if _, ok := l.active(DiskSyncError); ok {
		l.count(&l.syErrors)
		return fmt.Errorf("%w: fsync", ErrInjected)
	}
	if l.innerS == nil {
		return nil
	}
	return l.innerS.Sync()
}

// WriteCheckpoint implements storage.Checkpointer, failing per the
// schedule (the protocol treats a failed checkpoint as "keep the
// uncompacted log").
func (l *ChaosLog) WriteCheckpoint(cp storage.Checkpoint) error {
	if _, ok := l.active(DiskCheckpointError); ok {
		l.count(&l.cpErrors)
		return fmt.Errorf("%w: checkpoint", ErrInjected)
	}
	if l.innerC == nil {
		return fmt.Errorf("chaos: wrapped log %T does not checkpoint", l.inner)
	}
	return l.innerC.WriteCheckpoint(cp)
}

// LastCheckpoint implements storage.Checkpointer.
func (l *ChaosLog) LastCheckpoint() (storage.Checkpoint, bool) {
	if l.innerC == nil {
		return storage.Checkpoint{}, false
	}
	return l.innerC.LastCheckpoint()
}

// Stats implements storage.StatsReporter.
func (l *ChaosLog) Stats() storage.LogStats {
	if l.innerR == nil {
		return storage.LogStats{}
	}
	return l.innerR.Stats()
}

// Mode implements storage.StatsReporter.
func (l *ChaosLog) Mode() storage.SyncMode {
	if l.innerR == nil {
		return storage.SyncDefault
	}
	return l.innerR.Mode()
}

// The query and maintenance methods pass straight through: faults model
// a slow or lying write path, not a corrupted read path.

// Len implements storage.Log.
func (l *ChaosLog) Len() int { return l.inner.Len() }

// Entries implements storage.Log.
func (l *ChaosLog) Entries() []storage.Entry { return l.inner.Entries() }

// LastCommitTS implements storage.Log.
func (l *ChaosLog) LastCommitTS() types.Timestamp { return l.inner.LastCommitTS() }

// CommandsAfter implements storage.Log.
func (l *ChaosLog) CommandsAfter(ts types.Timestamp) []msg.TimestampedCommand {
	return l.inner.CommandsAfter(ts)
}

// CommandsBetween implements storage.Log.
func (l *ChaosLog) CommandsBetween(from, to types.Timestamp) []msg.TimestampedCommand {
	return l.inner.CommandsBetween(from, to)
}

// HasPrepare implements storage.Log.
func (l *ChaosLog) HasPrepare(ts types.Timestamp) bool { return l.inner.HasPrepare(ts) }

// RemovePrepares implements storage.Log.
func (l *ChaosLog) RemovePrepares(after types.Timestamp) error {
	return l.inner.RemovePrepares(after)
}

// Close implements storage.Log.
func (l *ChaosLog) Close() error { return l.inner.Close() }

func (l *ChaosLog) count(c *uint64) {
	l.mu.Lock()
	*c++
	l.mu.Unlock()
}

func (l *ChaosLog) addCounts(into map[string]uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	add(into, "disk.slow_append", l.slowAppends)
	add(into, "disk.fsync_stall", l.fsyncStalls)
	add(into, "disk.checkpoint_error", l.cpErrors)
	add(into, "disk.append_error", l.apErrors)
	add(into, "disk.sync_error", l.syErrors)
}
