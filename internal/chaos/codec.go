package chaos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"clockrsm/internal/types"
)

// Schedules serialize to a small versioned binary form so a failing
// chaos run can ship its exact fault plan in an artifact (or a fuzz
// corpus) and be replayed bit-for-bit. Layout: magic "CHS1", seed,
// then the three fault sections, each a u32 count followed by
// fixed-width records, all little-endian.

const (
	schedMagic   = "CHS1"
	clockRecSize = 4 + 1 + 8 + 8 + 8 + 8 // replica kind at dur magnitude drift
	linkRecSize  = 4 + 4 + 1 + 8 + 8 + 8 // from to kind at dur delay
	diskRecSize  = 4 + 1 + 8 + 8 + 8     // replica kind at dur stall
)

// Codec errors.
var (
	ErrBadSchedule = errors.New("chaos: malformed schedule")
)

// EncodeSchedule serializes s.
func EncodeSchedule(s Schedule) []byte {
	b := make([]byte, 0, len(schedMagic)+8+12+
		len(s.Clock)*clockRecSize+len(s.Links)*linkRecSize+len(s.Disk)*diskRecSize)
	b = append(b, schedMagic...)
	b = u64(b, uint64(s.Seed))
	b = u32(b, uint32(len(s.Clock)))
	for _, f := range s.Clock {
		b = u32(b, uint32(int32(f.Replica)))
		b = append(b, byte(f.Kind))
		b = u64(b, uint64(f.At))
		b = u64(b, uint64(f.Duration))
		b = u64(b, uint64(f.Magnitude))
		b = u64(b, math.Float64bits(f.Drift))
	}
	b = u32(b, uint32(len(s.Links)))
	for _, f := range s.Links {
		b = u32(b, uint32(int32(f.From)))
		b = u32(b, uint32(int32(f.To)))
		b = append(b, byte(f.Kind))
		b = u64(b, uint64(f.At))
		b = u64(b, uint64(f.Duration))
		b = u64(b, uint64(f.Delay))
	}
	b = u32(b, uint32(len(s.Disk)))
	for _, f := range s.Disk {
		b = u32(b, uint32(int32(f.Replica)))
		b = append(b, byte(f.Kind))
		b = u64(b, uint64(f.At))
		b = u64(b, uint64(f.Duration))
		b = u64(b, uint64(f.Stall))
	}
	return b
}

// DecodeSchedule parses a schedule produced by EncodeSchedule. It
// validates kinds and drift values and rejects truncated or trailing
// bytes, and never allocates more than the input length can account
// for, so corrupt counts cannot drive huge allocations.
func DecodeSchedule(b []byte) (Schedule, error) {
	var s Schedule
	if len(b) < len(schedMagic) || string(b[:len(schedMagic)]) != schedMagic {
		return s, fmt.Errorf("%w: bad magic", ErrBadSchedule)
	}
	b = b[len(schedMagic):]
	seed, b, err := rdU64(b)
	if err != nil {
		return s, err
	}
	s.Seed = int64(seed)

	n, b, err := rdCount(b, clockRecSize)
	if err != nil {
		return s, err
	}
	s.Clock = make([]ClockFault, n)
	for i := range s.Clock {
		f := &s.Clock[i]
		var r uint32
		var k byte
		if r, b, err = rdU32(b); err != nil {
			return s, err
		}
		f.Replica = types.ReplicaID(int32(r))
		if k, b, err = rdByte(b); err != nil {
			return s, err
		}
		f.Kind = ClockFaultKind(k)
		if f.Kind < ClockJump || f.Kind > ClockDrift {
			return s, fmt.Errorf("%w: clock fault kind %d", ErrBadSchedule, k)
		}
		var at, dur, mag, drift uint64
		if at, b, err = rdU64(b); err != nil {
			return s, err
		}
		if dur, b, err = rdU64(b); err != nil {
			return s, err
		}
		if mag, b, err = rdU64(b); err != nil {
			return s, err
		}
		if drift, b, err = rdU64(b); err != nil {
			return s, err
		}
		f.At, f.Duration, f.Magnitude = dur64(at), dur64(dur), dur64(mag)
		f.Drift = math.Float64frombits(drift)
		if math.IsNaN(f.Drift) || math.IsInf(f.Drift, 0) {
			return s, fmt.Errorf("%w: non-finite drift", ErrBadSchedule)
		}
	}

	if n, b, err = rdCount(b, linkRecSize); err != nil {
		return s, err
	}
	s.Links = make([]LinkFault, n)
	for i := range s.Links {
		f := &s.Links[i]
		var from, to uint32
		var k byte
		if from, b, err = rdU32(b); err != nil {
			return s, err
		}
		if to, b, err = rdU32(b); err != nil {
			return s, err
		}
		f.From, f.To = types.ReplicaID(int32(from)), types.ReplicaID(int32(to))
		if k, b, err = rdByte(b); err != nil {
			return s, err
		}
		f.Kind = LinkFaultKind(k)
		if f.Kind < LinkDrop || f.Kind > LinkDelay {
			return s, fmt.Errorf("%w: link fault kind %d", ErrBadSchedule, k)
		}
		var at, dur, delay uint64
		if at, b, err = rdU64(b); err != nil {
			return s, err
		}
		if dur, b, err = rdU64(b); err != nil {
			return s, err
		}
		if delay, b, err = rdU64(b); err != nil {
			return s, err
		}
		f.At, f.Duration, f.Delay = dur64(at), dur64(dur), dur64(delay)
	}

	if n, b, err = rdCount(b, diskRecSize); err != nil {
		return s, err
	}
	s.Disk = make([]DiskFault, n)
	for i := range s.Disk {
		f := &s.Disk[i]
		var r uint32
		var k byte
		if r, b, err = rdU32(b); err != nil {
			return s, err
		}
		f.Replica = types.ReplicaID(int32(r))
		if k, b, err = rdByte(b); err != nil {
			return s, err
		}
		f.Kind = DiskFaultKind(k)
		if f.Kind < DiskSlowAppend || f.Kind > DiskSyncError {
			return s, fmt.Errorf("%w: disk fault kind %d", ErrBadSchedule, k)
		}
		var at, dur, stall uint64
		if at, b, err = rdU64(b); err != nil {
			return s, err
		}
		if dur, b, err = rdU64(b); err != nil {
			return s, err
		}
		if stall, b, err = rdU64(b); err != nil {
			return s, err
		}
		f.At, f.Duration, f.Stall = dur64(at), dur64(dur), dur64(stall)
	}

	if len(b) != 0 {
		return s, fmt.Errorf("%w: trailing bytes", ErrBadSchedule)
	}
	return s, nil
}

func u64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func u32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

func dur64(v uint64) time.Duration { return time.Duration(int64(v)) }

func rdByte(b []byte) (byte, []byte, error) {
	if len(b) < 1 {
		return 0, nil, fmt.Errorf("%w: truncated", ErrBadSchedule)
	}
	return b[0], b[1:], nil
}

func rdU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("%w: truncated", ErrBadSchedule)
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func rdU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated", ErrBadSchedule)
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// rdCount reads a section count and checks the remaining input is long
// enough to hold that many fixed-width records, bounding allocation.
func rdCount(b []byte, recSize int) (int, []byte, error) {
	n, b, err := rdU32(b)
	if err != nil {
		return 0, nil, err
	}
	if uint64(n)*uint64(recSize) > uint64(len(b)) {
		return 0, nil, fmt.Errorf("%w: count %d exceeds input", ErrBadSchedule, n)
	}
	return int(n), b, nil
}
