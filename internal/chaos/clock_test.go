package chaos

import (
	"testing"
	"time"

	"clockrsm/internal/clock"
)

func TestClockTransparentBeforeArm(t *testing.T) {
	eng := New(Schedule{Clock: []ClockFault{
		{Replica: 0, Kind: ClockJump, At: 0, Magnitude: 50 * time.Millisecond},
	}})
	src := clock.NewManual(1_000_000)
	c := eng.Clock(0, src)
	if got := c.Now(); got != 1_000_000 {
		t.Fatalf("unarmed chaos clock read %d, want raw 1000000", got)
	}
	if n := len(eng.Counts()); n != 0 {
		t.Fatalf("unarmed engine reported %d fault categories", n)
	}
}

func TestClockJumpAndRollbackOffsets(t *testing.T) {
	const raw = int64(1_000_000_000)
	eng := New(Schedule{Clock: []ClockFault{
		{Replica: 0, Kind: ClockJump, At: 0, Duration: time.Hour, Magnitude: 50 * time.Millisecond},
		{Replica: 1, Kind: ClockRollback, At: 0, Duration: time.Hour, Magnitude: 40 * time.Millisecond},
		{Replica: 2, Kind: ClockJump, At: time.Hour, Magnitude: time.Hour}, // never reached
	}})
	jumped := eng.Clock(0, clock.NewManual(raw))
	rolled := eng.Clock(1, clock.NewManual(raw))
	future := eng.Clock(2, clock.NewManual(raw))
	eng.Arm()
	if got, want := jumped.Now(), raw+int64(50*time.Millisecond); got != want {
		t.Errorf("jumped clock read %d, want %d", got, want)
	}
	if got, want := rolled.Now(), raw-int64(40*time.Millisecond); got != want {
		t.Errorf("rolled-back clock read %d, want %d", got, want)
	}
	if got := future.Now(); got != raw {
		t.Errorf("clock with a not-yet-active window read %d, want raw %d", got, raw)
	}
	counts := eng.Counts()
	if counts["clock.jump"] != 1 || counts["clock.rollback"] != 1 {
		t.Errorf("counts = %v, want one jump and one rollback activation", counts)
	}
	// Re-reading does not re-count window activations.
	jumped.Now()
	jumped.Now()
	if got := eng.Counts()["clock.jump"]; got != 1 {
		t.Errorf("jump activations = %d after repeated reads, want 1", got)
	}
}

func TestClockJumpWindowReverts(t *testing.T) {
	const raw = int64(1_000_000_000)
	eng := New(Schedule{Clock: []ClockFault{
		{Replica: 0, Kind: ClockJump, At: 0, Duration: 20 * time.Millisecond, Magnitude: 50 * time.Millisecond},
	}})
	c := eng.Clock(0, clock.NewManual(raw))
	eng.Arm()
	if got, want := c.Now(), raw+int64(50*time.Millisecond); got != want {
		t.Fatalf("in-window read %d, want %d", got, want)
	}
	time.Sleep(40 * time.Millisecond)
	if got := c.Now(); got != raw {
		t.Fatalf("post-window read %d, want raw %d (jump must revert)", got, raw)
	}
}

func TestClockFreezePinsAndThaws(t *testing.T) {
	src := clock.NewManual(1_000_000)
	eng := New(Schedule{Clock: []ClockFault{
		{Replica: 0, Kind: ClockFreeze, At: 0, Duration: 30 * time.Millisecond},
	}})
	c := eng.Clock(0, src)
	eng.Arm()
	pinned := c.Now()
	src.Advance(int64(time.Second))
	if got := c.Now(); got != pinned {
		t.Fatalf("frozen clock advanced from %d to %d", pinned, got)
	}
	time.Sleep(50 * time.Millisecond)
	if got, want := c.Now(), src.Now(); got != want {
		t.Fatalf("thawed clock read %d, want raw %d", got, want)
	}
}

func TestClockFreezeUnderMonotonic(t *testing.T) {
	// The deployment composition: Monotonic over a frozen source must
	// still be strictly increasing (one nanosecond per read).
	src := clock.NewManual(1_000_000)
	eng := New(Schedule{Clock: []ClockFault{
		{Replica: 0, Kind: ClockFreeze, At: 0}, // forever
	}})
	mono := clock.NewMonotonic(eng.Clock(0, src))
	eng.Arm()
	prev := mono.Now()
	for i := 0; i < 100; i++ {
		cur := mono.Now()
		if cur <= prev {
			t.Fatalf("monotonic-over-frozen went %d -> %d at read %d", prev, cur, i)
		}
		prev = cur
	}
}

func TestClockDriftAccumulatesAndPersists(t *testing.T) {
	const raw = int64(1_000_000_000)
	eng := New(Schedule{Clock: []ClockFault{
		{Replica: 0, Kind: ClockDrift, At: 0, Duration: 10 * time.Millisecond, Drift: 0.5},
	}})
	c := eng.Clock(0, clock.NewManual(raw))
	eng.Arm()
	time.Sleep(30 * time.Millisecond) // window over; offset capped at 0.5 * 10ms
	want := raw + int64(0.5*float64(10*time.Millisecond))
	got1, got2 := c.Now(), c.Now()
	if got1 != want || got2 != want {
		t.Fatalf("post-window drift reads %d, %d; want stable %d", got1, got2, want)
	}
}
