package chaos

import (
	"errors"
	"testing"
	"time"

	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

func entry(wall int64) storage.Entry {
	return storage.Entry{
		Kind: storage.KindPrepare,
		TS:   types.Timestamp{Wall: wall, Node: 0},
		Cmd:  types.Command{ID: types.CommandID{Origin: 0, Seq: uint64(wall)}},
	}
}

func TestDiskTransparentBeforeArm(t *testing.T) {
	eng := New(Schedule{Disk: []DiskFault{
		{Replica: 0, Kind: DiskAppendError, At: 0, Duration: time.Hour},
	}})
	l := eng.Log(0, storage.NewMemLog())
	if err := l.Append(entry(1)); err != nil {
		t.Fatalf("unarmed chaos log failed append: %v", err)
	}
	if l.Len() != 1 {
		t.Fatalf("append did not reach the wrapped log")
	}
}

func TestDiskStallsCountAndPass(t *testing.T) {
	eng := New(Schedule{Disk: []DiskFault{
		{Replica: 0, Kind: DiskSlowAppend, At: 0, Duration: time.Hour, Stall: time.Millisecond},
		{Replica: 0, Kind: DiskFsyncStall, At: 0, Duration: time.Hour, Stall: time.Millisecond},
	}})
	l := eng.Log(0, storage.NewMemLog())
	eng.Arm()
	start := time.Now()
	if err := l.Append(entry(1)); err != nil {
		t.Fatalf("stalled append failed: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("stalled sync failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("stalls did not bite: both ops in %v", elapsed)
	}
	counts := eng.Counts()
	if counts["disk.slow_append"] != 1 || counts["disk.fsync_stall"] != 1 {
		t.Fatalf("counts = %v, want one slow_append and one fsync_stall", counts)
	}
	if l.Len() != 1 {
		t.Fatal("stalled append lost the entry")
	}
}

func TestDiskInjectedErrors(t *testing.T) {
	eng := New(Schedule{Disk: []DiskFault{
		{Replica: 0, Kind: DiskAppendError, At: 0, Duration: time.Hour},
		{Replica: 0, Kind: DiskSyncError, At: 0, Duration: time.Hour},
		{Replica: 0, Kind: DiskCheckpointError, At: 0, Duration: time.Hour},
	}})
	l := eng.Log(0, storage.NewMemLog())
	eng.Arm()
	if err := l.Append(entry(1)); !errors.Is(err, ErrInjected) {
		t.Errorf("Append error = %v, want ErrInjected", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrInjected) {
		t.Errorf("Sync error = %v, want ErrInjected", err)
	}
	err := l.WriteCheckpoint(storage.Checkpoint{TS: types.Timestamp{Wall: 1}})
	if !errors.Is(err, ErrInjected) {
		t.Errorf("WriteCheckpoint error = %v, want ErrInjected", err)
	}
	counts := eng.Counts()
	for _, k := range []string{"disk.append_error", "disk.sync_error", "disk.checkpoint_error"} {
		if counts[k] != 1 {
			t.Errorf("counts[%q] = %d, want 1 (all: %v)", k, counts[k], counts)
		}
	}
	if l.Len() != 0 {
		t.Error("failed append still reached the wrapped log")
	}
}

func TestDiskFaultsScopedToReplica(t *testing.T) {
	eng := New(Schedule{Disk: []DiskFault{
		{Replica: 1, Kind: DiskAppendError, At: 0, Duration: time.Hour},
	}})
	l0 := eng.Log(0, storage.NewMemLog())
	eng.Arm()
	if err := l0.Append(entry(1)); err != nil {
		t.Fatalf("replica 0's log caught replica 1's fault: %v", err)
	}
}
