package chaos

import (
	"sync"

	"clockrsm/internal/clock"
	"clockrsm/internal/types"
)

// Clock wraps a raw clock source with this engine's clock-fault windows
// for replica r. It injects at the raw layer — compose the deployment's
// monotonicity guard on top, exactly as a production stack does:
//
//	clk := clock.NewMonotonic(eng.Clock(r, clock.System{}))
//
// so a rollback or a freeze reaches the protocol the way an NTP step
// reaches a guarded process: as a clock that stops advancing (Monotonic
// bumps one nanosecond per read) until real time catches back up.
// Without the guard the faults surface raw, which is what targeted unit
// tests want.
func (e *Engine) Clock(r types.ReplicaID, src clock.Clock) clock.Clock {
	var faults []ClockFault
	for _, f := range e.sched.Clock {
		if f.Replica == r {
			faults = append(faults, f)
		}
	}
	c := &chaosClock{eng: e, src: src, faults: faults}
	c.fired = make([]bool, len(faults))
	e.register(r, c.addCounts)
	return c
}

// chaosClock applies the fault windows scheduled for one replica to a
// raw clock source.
type chaosClock struct {
	eng *Engine
	src clock.Clock

	mu     sync.Mutex
	faults []ClockFault
	fired  []bool // activation counted once per fault window

	// frozen pins the reading while a ClockFreeze window is active. The
	// pinned value is the first reading computed inside the window (with
	// jump/drift offsets applied), so thaw is a plain forward step.
	frozen    bool
	frozenVal int64

	jumps, freezes, rollbacks, drifts uint64
}

// Now returns the faulted reading. Offsets from jump/rollback/drift
// windows are recomputed from the schedule on every read — the clock
// carries no hidden state beyond the freeze pin, so two reads at the
// same elapsed time always see the same offset, independent of how
// often the clock was consulted in between.
func (c *chaosClock) Now() int64 {
	raw := c.src.Now()
	el, armed := c.eng.elapsed()
	if !armed {
		return raw
	}

	c.mu.Lock()
	defer c.mu.Unlock()

	var off int64
	freezing := false
	for i, f := range c.faults {
		if el < f.At {
			continue
		}
		active := f.Duration <= 0 || el < f.At+f.Duration
		switch f.Kind {
		case ClockJump:
			if active {
				off += int64(f.Magnitude)
				c.fire(i, &c.jumps)
			}
		case ClockRollback:
			if active {
				off -= int64(f.Magnitude)
				c.fire(i, &c.rollbacks)
			}
		case ClockFreeze:
			if active {
				freezing = true
				c.fire(i, &c.freezes)
			}
		case ClockDrift:
			// The drift offset accumulates over the active part of the
			// window and persists afterwards at its final value.
			span := el - f.At
			if f.Duration > 0 && span > f.Duration {
				span = f.Duration
			}
			off += int64(f.Drift * float64(span))
			if active {
				c.fire(i, &c.drifts)
			}
		}
	}

	val := raw + off
	if freezing {
		if !c.frozen {
			c.frozen = true
			c.frozenVal = val
		}
		return c.frozenVal
	}
	c.frozen = false
	return val
}

// fire counts a window's activation exactly once.
func (c *chaosClock) fire(i int, counter *uint64) {
	if !c.fired[i] {
		c.fired[i] = true
		*counter++
	}
}

func (c *chaosClock) addCounts(into map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	add(into, "clock.jump", c.jumps)
	add(into, "clock.freeze", c.freezes)
	add(into, "clock.rollback", c.rollbacks)
	add(into, "clock.drift", c.drifts)
}

// add accumulates a counter, omitting zero-valued categories.
func add(into map[string]uint64, k string, v uint64) {
	if v > 0 {
		into[k] += v
	}
}
