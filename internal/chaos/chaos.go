// Package chaos is the deterministic fault-injection layer (ROADMAP
// open item 3). Clock-RSM's correctness never depends on clock
// synchrony — only its latency does — and nothing in the tree proved
// that under misbehaving clocks, asymmetric partitions, or stalling
// disks until this package: it wraps the three substrates the runtime
// already abstracts behind interfaces, so faults inject at exactly the
// seams a real deployment fails at, with zero changes to protocol code:
//
//   - clocks (internal/clock): per-replica jump / freeze / rollback /
//     drift windows, the anomaly taxonomy of GentleRain+ (PAPERS.md),
//     applied to the raw clock source underneath the deployment's
//     clock.Monotonic guard — exactly where an NTP step or a VM
//     migration hits a real machine;
//   - transports (internal/transport, in-process and TCP alike):
//     asymmetric one-way drops, flapping links, and per-link delay
//     spikes layered on top of the wan.Matrix base topology, with
//     per-link FIFO order preserved (the protocol's channel
//     assumption, see Replica.observe);
//   - stable logs (internal/storage): slow appends, fsync stalls, and
//     transient write errors around any storage.Log.
//
// Every fault is driven by a Schedule — a declarative, seeded,
// binary-codable list of fault windows — so a failing chaos run is
// replayed bit-for-bit from its schedule (or its seed; see Random).
// All injectors export counters (Engine.Counts) that the runtime
// surfaces through node.HostStatus and the kvserver STATUS command, so
// an operator — or an assertion — can see exactly which faults fired.
//
// runner.RunChaosMatrix sweeps fault combinations from this package
// against a live multi-group cluster under closed-loop load and checks
// per-key linearizability, zero lost acks, zero duplicate executions,
// and bounded recovery after each fault window clears.
package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"clockrsm/internal/types"
)

// ClockFaultKind enumerates the clock anomaly taxonomy.
type ClockFaultKind uint8

// Clock fault kinds.
const (
	// ClockJump steps the clock forward by Magnitude for the window
	// (reverting at the window's end; Duration 0 makes the step
	// permanent) — an NTP step or a VM resume landing in the future.
	ClockJump ClockFaultKind = iota + 1
	// ClockFreeze pins the reading at its value on entry to the window;
	// on exit the clock snaps forward to real time. Under the
	// deployment's Monotonic wrapper a frozen source reads as a clock
	// advancing one nanosecond per call.
	ClockFreeze
	// ClockRollback steps the clock backward by Magnitude (window
	// semantics as ClockJump) — the raw effect of an NTP step into the
	// past, which Monotonic flattens into a stuck clock.
	ClockRollback
	// ClockDrift runs the clock fast (Drift > 0) or slow (Drift < 0) by
	// the given fraction for the window; the accumulated offset persists
	// after the window, as real oscillator error does.
	ClockDrift
)

// String names the kind.
func (k ClockFaultKind) String() string {
	switch k {
	case ClockJump:
		return "jump"
	case ClockFreeze:
		return "freeze"
	case ClockRollback:
		return "rollback"
	case ClockDrift:
		return "drift"
	default:
		return fmt.Sprintf("ClockFaultKind(%d)", uint8(k))
	}
}

// ClockFault is one clock anomaly window at one replica. At is the
// offset from Engine.Arm; Duration 0 means "until the end of the run"
// (a permanent step for ClockJump/ClockRollback).
type ClockFault struct {
	Replica   types.ReplicaID
	Kind      ClockFaultKind
	At        time.Duration
	Duration  time.Duration
	Magnitude time.Duration // ClockJump / ClockRollback step size
	Drift     float64       // ClockDrift rate, e.g. 0.2 = 20% fast
}

// LinkFaultKind enumerates the network fault taxonomy.
type LinkFaultKind uint8

// Link fault kinds.
const (
	// LinkDrop discards every message on the link for the window — one
	// direction only, so asymmetric partitions are the natural case and
	// a symmetric one is simply two entries.
	LinkDrop LinkFaultKind = iota + 1
	// LinkDelay adds Delay to every message on the link for the window,
	// preserving per-link FIFO order (a delayed message is never
	// overtaken by a later one on the same link).
	LinkDelay
)

// String names the kind.
func (k LinkFaultKind) String() string {
	switch k {
	case LinkDrop:
		return "drop"
	case LinkDelay:
		return "delay"
	default:
		return fmt.Sprintf("LinkFaultKind(%d)", uint8(k))
	}
}

// LinkFault is one fault window on the directed link From→To.
type LinkFault struct {
	From, To types.ReplicaID
	Kind     LinkFaultKind
	At       time.Duration
	Duration time.Duration // 0 = until the end of the run
	Delay    time.Duration // LinkDelay: extra one-way latency
}

// DiskFaultKind enumerates the storage fault taxonomy.
type DiskFaultKind uint8

// Disk fault kinds.
const (
	// DiskSlowAppend stalls every log append by Stall for the window —
	// a congested device queue.
	DiskSlowAppend DiskFaultKind = iota + 1
	// DiskFsyncStall stalls every Sync by Stall for the window — the
	// classic fsync outlier that group commit amortizes but cannot hide.
	DiskFsyncStall
	// DiskCheckpointError fails WriteCheckpoint with ErrInjected for the
	// window. The protocol treats checkpointing as best-effort (it keeps
	// the uncompacted log), so this is the one write-error injection that
	// is safe under live load; see DiskAppendError.
	DiskCheckpointError
	// DiskAppendError fails Append with ErrInjected for the window.
	// CAUTION: the replication layer treats an append as infallible once
	// issued (the entry is also mirrored in memory), so injecting this
	// under live protocol load makes the disk silently diverge from the
	// replica's in-memory state — by design this models a corrupting
	// disk, and belongs in targeted recovery tests, not the live matrix.
	DiskAppendError
	// DiskSyncError fails Sync with ErrInjected for the window. The
	// durability contract makes an fsync failure fatal (core.syncBarrier
	// panics — ack-bearing sends must never follow a failed barrier), so
	// this too is for targeted tests that assert the crash contract.
	DiskSyncError
)

// String names the kind.
func (k DiskFaultKind) String() string {
	switch k {
	case DiskSlowAppend:
		return "slow_append"
	case DiskFsyncStall:
		return "fsync_stall"
	case DiskCheckpointError:
		return "checkpoint_error"
	case DiskAppendError:
		return "append_error"
	case DiskSyncError:
		return "sync_error"
	default:
		return fmt.Sprintf("DiskFaultKind(%d)", uint8(k))
	}
}

// DiskFault is one storage fault window at one replica (covering every
// group's log on that replica).
type DiskFault struct {
	Replica  types.ReplicaID
	Kind     DiskFaultKind
	At       time.Duration
	Duration time.Duration // 0 = until the end of the run
	Stall    time.Duration // DiskSlowAppend / DiskFsyncStall stall per op
}

// Schedule is a complete, declarative fault plan: every anomaly the run
// will inject, with deterministic timing relative to Engine.Arm. It
// round-trips through Encode/DecodeSchedule, so a failing run is
// reproduced from its schedule alone.
type Schedule struct {
	// Seed records the generator seed the schedule was derived from
	// (informational for hand-built schedules).
	Seed  int64
	Clock []ClockFault
	Links []LinkFault
	Disk  []DiskFault
}

// End returns the instant (relative to Arm) at which the last bounded
// fault window clears. Unbounded windows (Duration 0 on kinds where
// that means "forever") are ignored: they never clear.
func (s Schedule) End() time.Duration {
	var end time.Duration
	upd := func(at, dur time.Duration) {
		if dur > 0 && at+dur > end {
			end = at + dur
		}
	}
	for _, f := range s.Clock {
		upd(f.At, f.Duration)
	}
	for _, f := range s.Links {
		upd(f.At, f.Duration)
	}
	for _, f := range s.Disk {
		upd(f.At, f.Duration)
	}
	return end
}

// Engine owns one run's fault timeline. Build the injectors from it
// (Clock, Transport, Log) while wiring the cluster, then Arm once the
// cluster is live: every fault window's At is measured from the Arm
// instant, and before Arm all injectors are transparent pass-throughs.
// Safe for concurrent use.
type Engine struct {
	sched Schedule

	mu      sync.Mutex
	start   time.Time
	armed   bool
	sources []counterSource
}

// counterSource is one injector's contribution to the engine's counter
// aggregation, tagged with the replica it instruments.
type counterSource struct {
	replica types.ReplicaID
	counts  func(into map[string]uint64)
}

// New creates an engine for the given schedule. Fault lists are copied
// and sorted by activation time.
func New(sched Schedule) *Engine {
	sched.Clock = append([]ClockFault(nil), sched.Clock...)
	sched.Links = append([]LinkFault(nil), sched.Links...)
	sched.Disk = append([]DiskFault(nil), sched.Disk...)
	sort.SliceStable(sched.Clock, func(i, j int) bool { return sched.Clock[i].At < sched.Clock[j].At })
	sort.SliceStable(sched.Links, func(i, j int) bool { return sched.Links[i].At < sched.Links[j].At })
	sort.SliceStable(sched.Disk, func(i, j int) bool { return sched.Disk[i].At < sched.Disk[j].At })
	return &Engine{sched: sched}
}

// Schedule returns a copy of the engine's fault plan.
func (e *Engine) Schedule() Schedule {
	return Schedule{
		Seed:  e.sched.Seed,
		Clock: append([]ClockFault(nil), e.sched.Clock...),
		Links: append([]LinkFault(nil), e.sched.Links...),
		Disk:  append([]DiskFault(nil), e.sched.Disk...),
	}
}

// Arm starts the fault timeline: every window's At is measured from
// this instant. Idempotent; injectors built before or after Arm behave
// identically.
func (e *Engine) Arm() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.armed {
		e.armed = true
		e.start = time.Now()
	}
}

// Armed reports whether the timeline has started.
func (e *Engine) Armed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.armed
}

// elapsed returns the time since Arm, and whether the engine is armed
// at all (faults are inert before Arm).
func (e *Engine) elapsed() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.armed {
		return 0, false
	}
	return time.Since(e.start), true
}

// register adds one injector's counters to the aggregation.
func (e *Engine) register(r types.ReplicaID, counts func(into map[string]uint64)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sources = append(e.sources, counterSource{replica: r, counts: counts})
}

// Counts aggregates every injector's fault counters across all
// replicas, keyed "layer.kind" (e.g. "clock.freeze", "link.drop",
// "disk.fsync_stall"). Zero-valued categories are omitted.
func (e *Engine) Counts() map[string]uint64 {
	return e.counts(types.NoReplica)
}

// ReplicaCounts is Counts restricted to the injectors instrumenting
// replica r — what that replica's Host surfaces in its status.
func (e *Engine) ReplicaCounts(r types.ReplicaID) map[string]uint64 {
	return e.counts(r)
}

func (e *Engine) counts(only types.ReplicaID) map[string]uint64 {
	e.mu.Lock()
	srcs := append([]counterSource(nil), e.sources...)
	e.mu.Unlock()
	out := make(map[string]uint64)
	for _, s := range srcs {
		if only != types.NoReplica && s.replica != only {
			continue
		}
		s.counts(out)
	}
	return out
}
