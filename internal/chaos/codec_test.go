package chaos

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func sampleSchedule() Schedule {
	return Schedule{
		Seed: 42,
		Clock: []ClockFault{
			{Replica: 1, Kind: ClockJump, At: 100 * time.Millisecond, Duration: 200 * time.Millisecond, Magnitude: 50 * time.Millisecond},
			{Replica: 2, Kind: ClockDrift, At: time.Second, Drift: -0.25},
		},
		Links: []LinkFault{
			{From: 0, To: 2, Kind: LinkDrop, At: 10 * time.Millisecond, Duration: 800 * time.Millisecond},
			{From: 2, To: 0, Kind: LinkDelay, At: 0, Duration: time.Second, Delay: 5 * time.Millisecond},
		},
		Disk: []DiskFault{
			{Replica: 0, Kind: DiskFsyncStall, At: 50 * time.Millisecond, Duration: 400 * time.Millisecond, Stall: 2 * time.Millisecond},
		},
	}
}

func TestScheduleCodecRoundTrip(t *testing.T) {
	want := sampleSchedule()
	got, err := DecodeSchedule(EncodeSchedule(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	// Empty schedules round-trip too (nil slices become empty ones).
	e, err := DecodeSchedule(EncodeSchedule(Schedule{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Clock)+len(e.Links)+len(e.Disk) != 0 {
		t.Fatalf("empty schedule decoded as %+v", e)
	}
}

func TestScheduleCodecRejectsCorruption(t *testing.T) {
	good := EncodeSchedule(sampleSchedule())
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte(nil), good...), 0),
	}
	// A corrupt count larger than the input can hold must be rejected
	// before allocation.
	huge := append([]byte(nil), good[:12]...) // magic + seed
	huge = append(huge, 0xff, 0xff, 0xff, 0xff)
	cases["huge count"] = huge
	// An out-of-range fault kind.
	badKind := append([]byte(nil), good...)
	badKind[12+4+4] = 99 // first clock record's kind byte
	cases["bad kind"] = badKind
	for name, b := range cases {
		if _, err := DecodeSchedule(b); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("%s: err = %v, want ErrBadSchedule", name, err)
		}
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	p := Profile{Replicas: 3, ClockFaults: 3, LinkFaults: 3, DiskFaults: 2}
	a, b := Random(7, p), Random(7, p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if reflect.DeepEqual(a, Random(8, p)) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Random schedules round-trip through the codec, so a failing seeded
	// run can always ship its schedule as an artifact.
	got, err := DecodeSchedule(EncodeSchedule(a))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatal("random schedule did not round-trip")
	}
}

// FuzzScheduleCodec checks that DecodeSchedule is total — no panics, no
// unbounded allocation — and that anything it accepts re-encodes to a
// stable fixed point.
func FuzzScheduleCodec(f *testing.F) {
	f.Add(EncodeSchedule(sampleSchedule()))
	f.Add(EncodeSchedule(Schedule{}))
	f.Add(EncodeSchedule(Random(1, Profile{Replicas: 5, ClockFaults: 2, LinkFaults: 2, DiskFaults: 1})))
	f.Add([]byte("CHS1"))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSchedule(b)
		if err != nil {
			return
		}
		enc := EncodeSchedule(s)
		s2, err := DecodeSchedule(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted schedule failed: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("codec not a fixed point:\n first %+v\nsecond %+v", s, s2)
		}
	})
}
