package runner

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// readEv is one completed local read: what it observed and when.
type readEv struct {
	g     types.GroupID
	key   string
	tier  node.Tier
	value []byte
	start time.Time
	end   time.Time
	// sess identifies the session of a Sequential read (-1 otherwise);
	// seq orders reads within their session.
	sess int
	seq  int
	// watermark is the executed watermark the read was served at.
	watermark int64
}

// read issues one local read through the public Host.ReadKey API and
// records it for verification. sess < 0 means no session.
func (h *mgHarness) read(at types.ReplicaID, key string, lvl node.Level, sess int, seq int) {
	h.t.Helper()
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := h.hosts[at].ReadKey(ctx, key, kvstore.Get(key), lvl)
	if err != nil {
		h.t.Errorf("ReadKey(%q, %v): %v", key, lvl.Tier(), err)
		return
	}
	end := time.Now()
	if res.Replicated {
		h.t.Errorf("ReadKey(%q, %v): fell back to replication under Clock-RSM", key, lvl.Tier())
		return
	}
	h.mu.Lock()
	h.reads = append(h.reads, readEv{
		g: h.hosts[at].Router().Group(key), key: key, tier: lvl.Tier(),
		value: res.Value, start: start, end: end,
		sess: sess, seq: seq, watermark: res.Watermark,
	})
	h.mu.Unlock()
}

// keyWrite is one write to a key in its group's execution order:
// position p means "the key's state after this write is values[p]".
type keyWrite struct {
	id     gcid
	after  []byte // key value after this write applies
	submit time.Time
	reply  time.Time
	timed  bool // submit/reply recorded (the write's wait completed)
}

// verifyReads checks every recorded read against the group's committed
// write history for its key. For each read, the set of history
// positions consistent with real time is computed — a read may not
// observe state missing a write that completed before the read began
// (Linearizable only), and may never observe a write submitted after
// the read ended (every tier) — and the observed value must match one
// of them. Sequential reads must additionally observe non-decreasing
// positions within their session, and non-decreasing watermarks.
//
// Writes in the workload must carry values unique per key, so a value
// identifies exactly one history position (nil identifies the initial
// state).
func (h *mgHarness) verifyReads() {
	h.t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()

	// Per (group, key): the ordered write history, replayed from the
	// group's reference execution order.
	type gkey struct {
		g   types.GroupID
		key string
	}
	hist := make(map[gkey][]keyWrite)
	for g := 0; g < h.groups; g++ {
		ref := h.orders[0][g]
		replay := kvstore.New()
		for _, cid := range ref {
			k := gcid{types.GroupID(g), cid}
			payload := h.payloads[k]
			cmd, err := kvstore.Decode(payload)
			if err != nil {
				h.t.Fatalf("group %d: undecodable committed payload for %v", g, cid)
			}
			replay.Apply(payload)
			if cmd.Op == kvstore.OpGet {
				continue // replicated reads don't change key state
			}
			after, _ := replay.Lookup(cmd.Key)
			gk := gkey{types.GroupID(g), cmd.Key}
			w := keyWrite{id: k, after: after}
			if sub, ok := h.submits[k]; ok {
				if rep, ok := h.replies[k]; ok {
					w.submit, w.reply, w.timed = sub, rep, true
				}
			}
			hist[gk] = append(hist[gk], w)
		}
	}

	// position finds the unique history position of an observed value:
	// 0 = initial state (nil), p = after the p-th write. Workloads
	// verified here use per-key-unique values, so at most one position
	// matches a non-nil value.
	position := func(writes []keyWrite, value []byte) (int, bool) {
		if value == nil {
			return 0, true
		}
		for i, w := range writes {
			if string(w.after) == string(value) {
				return i + 1, true
			}
		}
		return 0, false
	}

	// Session reads are issued sequentially by one goroutine each, so
	// h.reads already lists every session's reads in issue order.
	type skey struct {
		sess int
		g    types.GroupID
		key  string
	}
	sessFloor := make(map[skey]int)  // (session, key) → minimum position
	sessWater := make(map[int]int64) // session → last watermark

	for _, r := range h.reads {
		writes := hist[gkey{r.g, r.key}]
		p, ok := position(writes, r.value)
		if !ok {
			h.t.Fatalf("%v read of %q observed %q, which no committed write produced",
				r.tier, r.key, r.value)
		}
		// Upper bound: state at position p includes every write ≤ p, so
		// p must precede the first write submitted after the read ended.
		for j := 0; j < p; j++ {
			if writes[j].timed && writes[j].submit.After(r.end) {
				h.t.Fatalf("%v read of %q observed position %d, but write %d was submitted after the read ended",
					r.tier, r.key, p, j+1)
			}
		}
		// Lower bound, Linearizable only: every write whose reply
		// preceded the read's start must be visible.
		if r.tier == node.TierLinearizable {
			for j := p; j < len(writes); j++ {
				if writes[j].timed && writes[j].reply.Before(r.start) {
					h.t.Fatalf("linearizable read of %q observed position %d, missing write %d that completed before the read began",
						r.key, p, j+1)
				}
			}
		}
		// Session monotonicity: positions per (session, key) and
		// watermarks per session never decrease.
		if r.tier == node.TierSequential && r.sess >= 0 {
			sk := skey{r.sess, r.g, r.key}
			if p < sessFloor[sk] {
				h.t.Fatalf("sequential session %d read of %q went backwards: position %d after %d",
					r.sess, r.key, p, sessFloor[sk])
			}
			sessFloor[sk] = p
			if w := sessWater[r.sess]; r.watermark < w {
				h.t.Fatalf("sequential session %d watermark regressed %d -> %d", r.sess, w, r.watermark)
			}
			sessWater[r.sess] = r.watermark
		}
	}
}

// TestReadPathLinearizability hammers a sharded cluster with concurrent
// writers and readers at all three levels over a contended key space —
// writes through ProposeKey, reads through ReadKey — and checks that
// every read fits the per-key committed history interleaved with the
// writes: linearizable reads never miss a completed write, no read
// observes a value from the future, and sessions never move backwards.
func TestReadPathLinearizability(t *testing.T) {
	const (
		replicas = 3
		groups   = 2
		writers  = 4
		readers  = 6
		perCli   = 25
		keys     = 5
	)
	// Directionally asymmetric propagation delay: links INTO replica 2
	// are slow, links OUT of it are fast. Its clock broadcasts reach
	// the others promptly — so writes at 0/1 satisfy the stability rule
	// and complete quickly — while PREPAREs and acks take 8 ms to reach
	// 2, leaving its local state stale for whole milliseconds after a
	// write completed elsewhere. This window is what gives the checks
	// teeth: under symmetric latency Clock-RSM's stability rule makes
	// every replica commit almost simultaneously (the origin waits for
	// the slowest clock), and a deliberately broken read path — serve
	// immediately, never wait for the watermark — passes undetected.
	// SetOneWay is essential here: Set writes both directions, so a
	// symmetric-API loop silently re-symmetrizes the matrix as later
	// iterations overwrite the slow entries.
	lat := wan.Uniform(replicas, time.Millisecond)
	for i := types.ReplicaID(0); i < replicas; i++ {
		if i != 2 {
			lat.SetOneWay(i, 2, 8*time.Millisecond)
		}
	}
	if lat.Asymmetry(0, 2) <= 0 {
		t.Fatal("latency matrix is not direction-skewed; the staleness window this test depends on does not exist")
	}
	h := newMGHarnessLat(t, replicas, groups, lat)
	var wg sync.WaitGroup

	// Writers: unique values per key, so a read's observation
	// identifies exactly one history position. Readers run concurrently
	// for the whole write phase — the stale window at replica 2 only
	// exists while writes are completing.
	var successes, attempts int64
	var cm sync.Mutex
	var writersDone sync.WaitGroup
	for c := 0; c < writers; c++ {
		wg.Add(1)
		writersDone.Add(1)
		go func(c int) {
			defer wg.Done()
			defer writersDone.Done()
			rng := rand.New(rand.NewSource(int64(c)*211 + 3))
			for k := 0; k < perCli; k++ {
				at := types.ReplicaID(rng.Intn(replicas))
				key := fmt.Sprintf("rk%d", rng.Intn(keys))
				h.call(at, key, kvstore.Put(key, []byte(fmt.Sprintf("u-%d-%d", c, k))))
				cm.Lock()
				successes++
				attempts++
				cm.Unlock()
			}
		}(c)
	}
	writing := make(chan struct{})
	go func() { writersDone.Wait(); close(writing) }()

	// Readers: one session each; a random level and replica per read,
	// paced to interleave with the writes until the last one lands.
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*307 + 11))
			sess := node.Session{}
			for k := 0; ; k++ {
				select {
				case <-writing:
					return
				default:
				}
				at := types.ReplicaID(rng.Intn(replicas))
				key := fmt.Sprintf("rk%d", rng.Intn(keys))
				switch rng.Intn(3) {
				case 0:
					h.read(at, key, node.Linearizable, -1, k)
				case 1:
					h.read(at, key, node.Sequential(&sess), c, k)
				default:
					h.read(at, key, node.Stale(0), -1, k)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(c)
	}
	wg.Wait()
	h.waitConverged(10 * time.Second)
	if t.Failed() {
		t.FailNow()
	}
	h.verify(int(successes), int(attempts))
	h.verifyReads()

	// The run actually interleaved: every tier was exercised while
	// writes were in flight.
	h.mu.Lock()
	tiers := make(map[node.Tier]int)
	for _, r := range h.reads {
		tiers[r.tier]++
	}
	h.mu.Unlock()
	for _, tier := range []node.Tier{node.TierLinearizable, node.TierSequential, node.TierStale} {
		if tiers[tier] < 5 {
			t.Fatalf("only %d %v reads recorded — workload did not interleave", tiers[tier], tier)
		}
	}
}
