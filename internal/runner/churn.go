package runner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// ChurnConfig describes a membership-churn experiment: a multi-group
// cluster serving a closed-loop client population while an operator
// grows and shrinks the configuration through Host.ReconfigureAll — the
// kvctl-reconf deployment story, asserted end to end. The full Spec
// (SpecReplicas processes) stays up throughout; membership moves
// between Base and Grown.
type ChurnConfig struct {
	// SpecReplicas is the number of running replica processes (default
	// 5). Base and Grown must be subsets of 0..SpecReplicas-1.
	SpecReplicas int
	// Groups is the number of replication groups per node (default 2).
	Groups int
	// Base is the steady-state configuration (default {0,1,2}); clients
	// propose only at Base replicas, which stay configured throughout.
	Base []types.ReplicaID
	// Grown is the mid-run configuration (default the full Spec).
	Grown []types.ReplicaID
	// Clients is the closed-loop client count (default 6; at least
	// Groups so every group sees load).
	Clients int
	// Cycles is how many grow+shrink rounds run under load (default 1).
	Cycles int
	// Settle is how long load runs between reconfigurations (default
	// 150 ms).
	Settle time.Duration
	// StepTimeout bounds each reconfiguration and each proposal wait
	// (default 20 s).
	StepTimeout time.Duration
	// PayloadSize is the command payload size (default 32 B).
	PayloadSize int
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.SpecReplicas == 0 {
		c.SpecReplicas = 5
	}
	if c.Groups <= 0 {
		c.Groups = 2
	}
	if len(c.Base) == 0 {
		c.Base = []types.ReplicaID{0, 1, 2}
	}
	if len(c.Grown) == 0 {
		for i := 0; i < c.SpecReplicas; i++ {
			c.Grown = append(c.Grown, types.ReplicaID(i))
		}
	}
	if c.Clients == 0 {
		c.Clients = 6
	}
	if c.Clients < c.Groups {
		c.Clients = c.Groups
	}
	if c.Cycles <= 0 {
		c.Cycles = 1
	}
	if c.Settle == 0 {
		c.Settle = 150 * time.Millisecond
	}
	if c.StepTimeout == 0 {
		c.StepTimeout = 20 * time.Second
	}
	if c.PayloadSize == 0 {
		c.PayloadSize = 32
	}
	return c
}

// canonicalIDs returns a sorted copy of a member list.
func canonicalIDs(ids []types.ReplicaID) []types.ReplicaID {
	out := append([]types.ReplicaID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ChurnResult reports one membership-churn run that passed all
// correctness assertions.
type ChurnResult struct {
	// Committed is the number of client commands whose futures resolved
	// with a result — each executed exactly once.
	Committed uint64
	// Resubmitted counts proposals retried after ErrReconfigured: the
	// commands a reconfiguration provably discarded.
	Resubmitted uint64
	// Reconfigurations is the number of ReconfigureAll calls driven
	// (1 initial shrink + 2 per cycle).
	Reconfigurations int
	// FinalEpoch and FinalMembers describe the configuration every group
	// on every Base replica converged to.
	FinalEpoch   types.Epoch
	FinalMembers []types.ReplicaID
}

// RunMembershipChurn stands up a SpecReplicas×Groups cluster, shrinks
// it to Base, then — under closed-loop load at the Base replicas —
// grows it to Grown and back Cycles times via Host.ReconfigureAll. It
// verifies the operator-API contract end to end:
//
//   - zero lost commands: every proposal eventually commits; proposals
//     a reconfiguration discards fail with node.ErrReconfigured and are
//     resubmitted by the client;
//   - zero duplicated commands: no command ID executes twice in its
//     group, and the executed set equals the committed set exactly;
//   - agreement: every Base replica executes every group's commands in
//     the same order;
//   - atomicity: after the final shrink, every group on every Base
//     replica holds the same configuration and epoch, and a removed
//     replica fails proposals with node.ErrNotInConfig.
func RunMembershipChurn(cfg ChurnConfig) (*ChurnResult, error) {
	cfg = cfg.withDefaults()
	nrep, groups := cfg.SpecReplicas, cfg.Groups
	hub := transport.NewHub(nrep, transport.HubOptions{Codec: true, Groups: groups})
	defer hub.Close()
	router := shard.NewRouter(groups)

	spec := make([]types.ReplicaID, nrep)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}

	var mu sync.Mutex
	orders := make([][][]types.CommandID, nrep) // [replica][group]
	okIDs := make([]map[types.CommandID]bool, groups)
	for g := range okIDs {
		okIDs[g] = make(map[types.CommandID]bool)
	}

	hosts := make([]*node.Host, nrep)
	for i := 0; i < nrep; i++ {
		i := i
		orders[i] = make([][]types.CommandID, groups)
		host, err := node.NewHost(types.ReplicaID(i), spec, hub.Endpoint(types.ReplicaID(i)), node.HostOptions{
			Groups: groups,
			NewLog: func(types.GroupID) storage.Log { return storage.NewMemLog() },
		})
		if err != nil {
			return nil, err
		}
		for g := 0; g < groups; g++ {
			g := g
			app := &rsm.App{
				SM: kvstore.New(),
				OnCommit: func(ts types.Timestamp, cmd types.Command) {
					mu.Lock()
					orders[i][g] = append(orders[i][g], cmd.ID)
					mu.Unlock()
				},
			}
			nd := host.Group(types.GroupID(g))
			nd.Bind(app)
			nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 2 * time.Millisecond}))
		}
		hosts[i] = host
	}
	for _, host := range hosts {
		if err := host.Start(); err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, host := range hosts {
			host.Stop()
		}
	}()

	reconf := func(members []types.ReplicaID) error {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
		defer cancel()
		return hosts[cfg.Base[0]].ReconfigureAll(ctx, members)
	}

	// Shrink the freshly started full-Spec cluster down to Base before
	// load starts: the "live 3-replica cluster" the churn then grows.
	res := &ChurnResult{}
	if err := reconf(cfg.Base); err != nil {
		return nil, fmt.Errorf("initial shrink to %v: %w", cfg.Base, err)
	}
	res.Reconfigurations++

	// Closed-loop clients at the Base replicas. Every proposal is
	// retried until it commits; ErrReconfigured (the command provably
	// never executed) is the only tolerated failure.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var resubmitted atomic.Uint64
	clientErrs := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key, g := clientKey(router, c)
			target := hosts[cfg.Base[c%len(cfg.Base)]].Group(g)
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				payload := kvstore.Put(key, append([]byte(fmt.Sprintf("c%d-%d-", c, seq)), make([]byte, cfg.PayloadSize)...))
				for {
					ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
					fut, err := target.Propose(ctx, payload)
					if err == nil {
						var r types.Result
						r, err = fut.Wait(ctx)
						if err == nil {
							mu.Lock()
							okIDs[g][r.ID] = true
							mu.Unlock()
							cancel()
							break
						}
					}
					cancel()
					if errors.Is(err, node.ErrReconfigured) {
						resubmitted.Add(1)
						continue // provably never executed: safe to resubmit
					}
					clientErrs[c] = fmt.Errorf("client %d seq %d: %w", c, seq, err)
					return
				}
			}
		}(c)
	}

	// The churn itself: grow to Grown and shrink back to Base, under
	// load, Cycles times.
	churnErr := func() error {
		time.Sleep(cfg.Settle)
		for cycle := 0; cycle < cfg.Cycles; cycle++ {
			if err := reconf(cfg.Grown); err != nil {
				return fmt.Errorf("cycle %d grow to %v: %w", cycle, cfg.Grown, err)
			}
			res.Reconfigurations++
			time.Sleep(cfg.Settle)
			if err := reconf(cfg.Base); err != nil {
				return fmt.Errorf("cycle %d shrink to %v: %w", cycle, cfg.Base, err)
			}
			res.Reconfigurations++
			time.Sleep(cfg.Settle)
		}
		return nil
	}()
	close(stop)
	wg.Wait()
	if churnErr != nil {
		return nil, churnErr
	}
	for _, err := range clientErrs {
		if err != nil {
			return nil, err
		}
	}
	mu.Lock()
	for g := range okIDs {
		res.Committed += uint64(len(okIDs[g]))
	}
	mu.Unlock()
	res.Resubmitted = resubmitted.Load()

	// Trailing commits land on every Base replica before verification.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := true
		for g := 0; g < groups; g++ {
			for _, rep := range cfg.Base {
				if len(orders[rep][g]) != len(okIDs[g]) {
					done = false
				}
			}
		}
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			var detail strings.Builder
			mu.Lock()
			for g := 0; g < groups; g++ {
				fmt.Fprintf(&detail, " g%d ok=%d exec=[", g, len(okIDs[g]))
				for _, rep := range cfg.Base {
					fmt.Fprintf(&detail, " r%d:%d", rep, len(orders[rep][g]))
				}
				detail.WriteString(" ]")
			}
			mu.Unlock()
			for _, rep := range cfg.Base {
				for _, g := range hosts[rep].Status().Groups {
					fmt.Fprintf(&detail, " r%d/%s:e%d:in=%t:inflight=%d", rep, g.Group, g.Epoch, g.InConfig, g.InFlight)
				}
			}
			return nil, fmt.Errorf("churn: executions never converged to the committed set (lost or phantom commands):%s", detail.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Verification: agreement, exactly-once, and the committed set. The
	// lock is scoped: trailing event loops (removed replicas catching up
	// via state transfer) still need OnCommit's mutex to make progress
	// before the probe below.
	verify := func() error {
		mu.Lock()
		defer mu.Unlock()
		for g := 0; g < groups; g++ {
			ref := orders[cfg.Base[0]][g]
			for _, rep := range cfg.Base[1:] {
				ord := orders[rep][g]
				if len(ord) != len(ref) {
					return fmt.Errorf("group %d: replica %v executed %d commands, replica %v executed %d",
						g, rep, len(ord), cfg.Base[0], len(ref))
				}
				for j := range ord {
					if ord[j] != ref[j] {
						return fmt.Errorf("group %d: execution order diverges at %d", g, j)
					}
				}
			}
			seen := make(map[types.CommandID]bool, len(ref))
			for _, cid := range ref {
				if seen[cid] {
					return fmt.Errorf("group %d: command %v executed twice (duplicated command)", g, cid)
				}
				seen[cid] = true
				if !okIDs[g][cid] {
					return fmt.Errorf("group %d: executed command %v was never reported committed", g, cid)
				}
			}
			for cid := range okIDs[g] {
				if !seen[cid] {
					return fmt.Errorf("group %d: committed command %v never executed (lost command)", g, cid)
				}
			}
		}
		return nil
	}
	if err := verify(); err != nil {
		return nil, err
	}

	// Atomicity: every group on every Base replica landed on the same
	// final configuration and epoch, and that configuration is Base.
	// Epochs are compared across groups and replicas rather than against
	// the ReconfigureAll count: no-op reconfigurations consume no epoch
	// and conflict retries (e.g. a concurrent failure-detector epoch)
	// consume extra ones.
	wantEpoch := hosts[cfg.Base[0]].Status().Groups[0].Epoch
	wantMembers := node.MemberString(canonicalIDs(cfg.Base))
	for _, rep := range cfg.Base {
		for _, g := range hosts[rep].Status().Groups {
			if g.Epoch != wantEpoch || node.MemberString(g.Members) != wantMembers || !g.InConfig {
				return nil, fmt.Errorf("replica %v group %v: epoch=%d members=%s in=%t, want epoch=%d members=%s in=true",
					rep, g.Group, g.Epoch, node.MemberString(g.Members), g.InConfig, wantEpoch, wantMembers)
			}
		}
	}
	res.FinalEpoch = wantEpoch
	res.FinalMembers = append([]types.ReplicaID(nil), hosts[cfg.Base[0]].Status().Groups[0].Members...)

	// A replica outside the final configuration refuses proposals with
	// the typed error instead of parking them.
	var removed types.ReplicaID = -1
	inBase := make(map[types.ReplicaID]bool)
	for _, id := range cfg.Base {
		inBase[id] = true
	}
	for _, id := range cfg.Grown {
		if !inBase[id] {
			removed = id
			break
		}
	}
	if removed >= 0 {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
		defer cancel()
		fut, err := hosts[removed].Group(0).Propose(ctx, kvstore.Put("probe", []byte("x")))
		if err == nil {
			_, err = fut.Wait(ctx)
		}
		if !errors.Is(err, node.ErrNotInConfig) {
			return nil, fmt.Errorf("proposal at removed replica %v: err = %v, want node.ErrNotInConfig", removed, err)
		}
	}

	// The future-epoch hold buffer never overflowed: a dropped held
	// message could reopen a straggler history gap silently.
	for _, host := range hosts {
		for g := 0; g < groups; g++ {
			nd := host.Group(types.GroupID(g))
			var heldDropped uint64
			nd.Do(func() { heldDropped = nd.Protocol().(*core.Replica).HeldDropped() })
			if heldDropped > 0 {
				return nil, fmt.Errorf("replica %v group %d dropped %d held future-epoch messages", host.ID(), g, heldDropped)
			}
		}
	}
	return res, nil
}
