package runner

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// mgHarness drives a real-runtime sharded cluster (node.Host over the
// in-process codec transport) and records per-group histories. Keys are
// partitioned over groups by shard.Router, so every key's operations
// land in exactly one group's total order: per-key linearizability of
// the sharded store reduces to per-group agreement + sequential
// semantics + real-time order, which verify checks.
type mgHarness struct {
	t      *testing.T
	groups int
	router *shard.Router
	hosts  []*node.Host

	mu       sync.Mutex
	orders   [][][]types.CommandID // [replica][group] execution order
	payloads map[types.CommandID][]byte
	results  map[types.CommandID][]byte
	submits  map[types.CommandID]time.Time
	replies  map[types.CommandID]time.Time
	waiters  map[types.CommandID]chan struct{}
}

func newMGHarness(t *testing.T, replicas, groups int) *mgHarness {
	t.Helper()
	h := &mgHarness{
		t:        t,
		groups:   groups,
		router:   shard.NewRouter(groups),
		orders:   make([][][]types.CommandID, replicas),
		payloads: make(map[types.CommandID][]byte),
		results:  make(map[types.CommandID][]byte),
		submits:  make(map[types.CommandID]time.Time),
		replies:  make(map[types.CommandID]time.Time),
		waiters:  make(map[types.CommandID]chan struct{}),
	}
	hub := transport.NewHub(replicas, transport.HubOptions{Codec: true, Groups: groups})
	t.Cleanup(hub.Close)
	spec := make([]types.ReplicaID, replicas)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	for i := 0; i < replicas; i++ {
		i := i
		h.orders[i] = make([][]types.CommandID, groups)
		host, err := node.NewHost(types.ReplicaID(i), spec, hub.Endpoint(types.ReplicaID(i)), node.HostOptions{Groups: groups})
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < groups; g++ {
			g := g
			app := &rsm.App{
				SM: kvstore.New(),
				OnCommit: func(ts types.Timestamp, cmd types.Command) {
					h.mu.Lock()
					h.orders[i][g] = append(h.orders[i][g], cmd.ID)
					h.mu.Unlock()
				},
				OnReply: func(res types.Result) {
					now := time.Now()
					h.mu.Lock()
					h.results[res.ID] = res.Value
					h.replies[res.ID] = now
					ch := h.waiters[res.ID]
					h.mu.Unlock()
					if ch != nil {
						close(ch)
					}
				},
			}
			nd := host.Group(types.GroupID(g))
			nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 2 * time.Millisecond}))
		}
		h.hosts = append(h.hosts, host)
	}
	for _, host := range h.hosts {
		if err := host.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, host := range h.hosts {
			host.Stop()
		}
	})
	return h
}

// call submits one command at a replica (routed to its key's group) and
// waits for the reply, recording the real-time window.
func (h *mgHarness) call(at types.ReplicaID, cid types.CommandID, key string, payload []byte) {
	g := h.router.Group(key)
	ch := make(chan struct{})
	h.mu.Lock()
	h.payloads[cid] = payload
	h.waiters[cid] = ch
	h.submits[cid] = time.Now()
	h.mu.Unlock()
	h.hosts[at].Group(g).Submit(types.Command{ID: cid, Payload: payload})
	select {
	case <-ch:
	case <-time.After(20 * time.Second):
		h.t.Errorf("timeout waiting for %v (key %q, group %v)", cid, key, g)
	}
}

// verify checks, per group: agreement of the execution order across
// replicas, sequential kvstore semantics of every client reply, and
// real-time order between non-overlapping operations.
func (h *mgHarness) verify(total int) {
	h.t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	executed := 0
	for g := 0; g < h.groups; g++ {
		ref := h.orders[0][g]
		for i := 1; i < len(h.orders); i++ {
			ord := h.orders[i][g]
			if len(ord) != len(ref) {
				h.t.Fatalf("group %d: replica %d executed %d commands, replica 0 executed %d", g, i, len(ord), len(ref))
			}
			for j := range ord {
				if ord[j] != ref[j] {
					h.t.Fatalf("group %d: execution order diverges at %d", g, j)
				}
			}
		}
		executed += len(ref)

		// Sequential semantics: replaying the group's execution order
		// must reproduce every reply its clients saw.
		replay := kvstore.New()
		pos := make(map[types.CommandID]int, len(ref))
		for i, cid := range ref {
			pos[cid] = i
			want := replay.Apply(h.payloads[cid])
			got, ok := h.results[cid]
			if !ok {
				h.t.Fatalf("group %d: no reply for %v", g, cid)
			}
			if string(want) != string(got) {
				h.t.Fatalf("group %d: command %d (%v): reply %q, sequential replay says %q", g, i, cid, got, want)
			}
		}
		// Real-time order within the group: if c1's reply precedes c2's
		// submission, c1 executes before c2.
		for c1, p1 := range pos {
			for c2, p2 := range pos {
				if h.replies[c1].Before(h.submits[c2]) && p1 >= p2 {
					h.t.Fatalf("group %d: real-time violation: %v replied before %v was submitted but executed at %d ≥ %d",
						g, c1, c2, p1, p2)
				}
			}
		}
	}
	if executed != total {
		h.t.Fatalf("executed %d commands across groups, want %d", executed, total)
	}
}

// TestMultiGroupLinearizability hammers a sharded 3-replica × 3-group
// cluster with concurrent clients over a small contended key space and
// checks per-key (= per-group) linearizability from the recorded
// histories.
func TestMultiGroupLinearizability(t *testing.T) {
	const (
		replicas = 3
		groups   = 3
		clients  = 6
		perCli   = 25
		keys     = 8
	)
	h := newMGHarness(t, replicas, groups)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) * 97))
			for k := 0; k < perCli; k++ {
				at := types.ReplicaID(rng.Intn(replicas))
				key := fmt.Sprintf("k%d", rng.Intn(keys))
				cid := types.CommandID{Origin: at, Seq: uint64(c)<<32 | uint64(k+1)}
				var payload []byte
				switch rng.Intn(3) {
				case 0:
					payload = kvstore.Put(key, []byte(fmt.Sprintf("v-%d-%d", c, k)))
				case 1:
					payload = kvstore.Get(key)
				default:
					payload = kvstore.Delete(key)
				}
				h.call(at, cid, key, payload)
			}
		}(c)
	}
	wg.Wait()
	// Let trailing commits land on every replica before comparing.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		done := true
		for g := 0; g < groups; g++ {
			for i := 1; i < replicas; i++ {
				if len(h.orders[i][g]) != len(h.orders[0][g]) {
					done = false
				}
			}
		}
		h.mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.verify(clients * perCli)
}
