package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// gcid keys one command across the sharded store: sequence numbers are
// minted per group (each group is an independent RSM instance), so the
// command ID alone is not unique across groups.
type gcid struct {
	g   types.GroupID
	cid types.CommandID
}

// mgHarness drives a real-runtime sharded cluster (node.Host over the
// in-process codec transport) through the public client API — every
// command enters via Host.ProposeKey and completes via its Future —
// and records per-group histories. Keys are partitioned over groups by
// the host's shard router, so every key's operations land in exactly
// one group's total order: per-key linearizability of the sharded
// store reduces to per-group agreement + sequential semantics +
// real-time order, which verify checks.
type mgHarness struct {
	t      *testing.T
	groups int
	hosts  []*node.Host

	mu       sync.Mutex
	orders   [][][]types.CommandID // [replica][group] execution order
	payloads map[gcid][]byte
	results  map[gcid][]byte
	submits  map[gcid]time.Time
	replies  map[gcid]time.Time
	canceled int // proposals abandoned via context cancellation
	// reads records every local read issued through the read-path API,
	// for the per-key read/write interleaving check (see readlin_test).
	reads []readEv
}

func newMGHarness(t *testing.T, replicas, groups int) *mgHarness {
	return newMGHarnessLat(t, replicas, groups, nil)
}

// newMGHarnessLat is newMGHarness over a WAN latency matrix: message
// propagation takes real time, so stale local state is observable for
// whole milliseconds — long enough for the read checks to have teeth.
func newMGHarnessLat(t *testing.T, replicas, groups int, lat *wan.Matrix) *mgHarness {
	t.Helper()
	h := &mgHarness{
		t:        t,
		groups:   groups,
		orders:   make([][][]types.CommandID, replicas),
		payloads: make(map[gcid][]byte),
		results:  make(map[gcid][]byte),
		submits:  make(map[gcid]time.Time),
		replies:  make(map[gcid]time.Time),
	}
	hub := transport.NewHub(replicas, transport.HubOptions{Codec: true, Groups: groups, Latency: lat})
	t.Cleanup(hub.Close)
	spec := make([]types.ReplicaID, replicas)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	for i := 0; i < replicas; i++ {
		i := i
		h.orders[i] = make([][]types.CommandID, groups)
		host, err := node.NewHost(types.ReplicaID(i), spec, hub.Endpoint(types.ReplicaID(i)), node.HostOptions{Groups: groups})
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < groups; g++ {
			g := g
			app := &rsm.App{
				SM: kvstore.New(),
				// The execution order carries the payloads: proposals
				// no longer know their command ID at submit time (the
				// event loop mints it), so correlation happens here.
				OnCommit: func(ts types.Timestamp, cmd types.Command) {
					key := gcid{types.GroupID(g), cmd.ID}
					h.mu.Lock()
					h.orders[i][g] = append(h.orders[i][g], cmd.ID)
					if _, ok := h.payloads[key]; !ok {
						h.payloads[key] = append([]byte(nil), cmd.Payload...)
					}
					h.mu.Unlock()
				},
			}
			nd := host.Group(types.GroupID(g))
			nd.Bind(app)
			nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 2 * time.Millisecond}))
		}
		h.hosts = append(h.hosts, host)
	}
	for _, host := range h.hosts {
		if err := host.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, host := range h.hosts {
			host.Stop()
		}
	})
	return h
}

// call proposes one command at a replica through the public client API
// and waits for its future, recording the real-time window keyed by
// the command ID the node minted.
func (h *mgHarness) call(at types.ReplicaID, key string, payload []byte) {
	before := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	fut, err := h.hosts[at].ProposeKey(ctx, key, payload)
	if err != nil {
		h.t.Errorf("ProposeKey(%q): %v", key, err)
		return
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		h.t.Errorf("proposal for key %q: %v", key, err)
		return
	}
	now := time.Now()
	k := gcid{h.hosts[at].Router().Group(key), res.ID}
	h.mu.Lock()
	h.results[k] = res.Value
	h.submits[k] = before
	h.replies[k] = now
	h.mu.Unlock()
}

// callCanceled proposes a command and immediately abandons the wait
// with an already-expired context: the future must resolve ErrCanceled
// (or, rarely, win the race and commit), and the command must never be
// observed executing twice — which verify asserts for every ID.
func (h *mgHarness) callCanceled(at types.ReplicaID, key string, payload []byte) {
	ctx, cancel := context.WithCancel(context.Background())
	fut, err := h.hosts[at].ProposeKey(ctx, key, payload)
	if err != nil {
		h.t.Errorf("ProposeKey(%q): %v", key, err)
		cancel()
		return
	}
	cancel() // timed out / client gone: abandon the wait right away
	res, err := fut.Wait(ctx)
	switch {
	case err == nil:
		// The commit raced the cancellation; the result is still valid.
		now := time.Now()
		k := gcid{h.hosts[at].Router().Group(key), res.ID}
		h.mu.Lock()
		h.results[k] = res.Value
		h.replies[k] = now
		h.mu.Unlock()
	case errors.Is(err, node.ErrCanceled):
		h.mu.Lock()
		h.canceled++
		h.mu.Unlock()
	default:
		h.t.Errorf("canceled proposal for key %q: unexpected error %v", key, err)
	}
}

// verify checks, per group: agreement of the execution order across
// replicas, at-most-once execution of every command (canceled
// proposals included), sequential kvstore semantics of every client
// reply, and real-time order between non-overlapping operations.
// successes is the independently counted number of proposals whose
// waits were carried to completion (the recorded results must cover at
// least those; raced cancellations may add more); attempts additionally
// counts canceled proposals, which may or may not have executed (but
// never twice).
func (h *mgHarness) verify(successes, attempts int) {
	h.t.Helper()
	h.verifySkip(successes, attempts, nil)
}

// verifySkip is verify with per-(replica, group) exclusions: a replica
// reconfigured out of a group's member set stops receiving that group's
// commands, so its frozen history is checked as a prefix of the
// reference rather than for equality.
func (h *mgHarness) verifySkip(successes, attempts int, skip func(rep int, g types.GroupID) bool) {
	h.t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	executed := 0
	for g := 0; g < h.groups; g++ {
		ref := h.orders[0][g]
		if skip != nil && skip(0, types.GroupID(g)) {
			// Pick an in-config replica as the reference.
			for i := 1; i < len(h.orders); i++ {
				if !skip(i, types.GroupID(g)) {
					ref = h.orders[i][g]
					break
				}
			}
		}
		for i := 0; i < len(h.orders); i++ {
			ord := h.orders[i][g]
			if skip != nil && skip(i, types.GroupID(g)) {
				// Frozen history: must still be a prefix of the reference
				// (agreement up to the removal point).
				if len(ord) > len(ref) {
					h.t.Fatalf("group %d: removed replica %d executed %d commands, more than the reference %d", g, i, len(ord), len(ref))
				}
				for j := range ord {
					if ord[j] != ref[j] {
						h.t.Fatalf("group %d: removed replica %d diverges at %d", g, i, j)
					}
				}
				continue
			}
			if len(ord) != len(ref) {
				h.t.Fatalf("group %d: replica %d executed %d commands, replica 0 executed %d", g, i, len(ord), len(ref))
			}
			for j := range ord {
				if ord[j] != ref[j] {
					h.t.Fatalf("group %d: execution order diverges at %d", g, j)
				}
			}
		}
		executed += len(ref)

		// At-most-once: no command may appear twice in its group's
		// order — a canceled proposal must never be duplicated. (IDs are
		// minted per group, so cross-group repeats are distinct commands.)
		seen := make(map[types.CommandID]bool, len(ref))
		for _, cid := range ref {
			if seen[cid] {
				h.t.Fatalf("group %d: command %v executed twice", g, cid)
			}
			seen[cid] = true
		}

		// Sequential semantics: replaying the group's execution order
		// must reproduce every reply its clients saw. Commands without a
		// recorded result (canceled waits) still mutate the replay state.
		replay := kvstore.New()
		pos := make(map[gcid]int, len(ref))
		for i, cid := range ref {
			k := gcid{types.GroupID(g), cid}
			pos[k] = i
			want := replay.Apply(h.payloads[k])
			got, ok := h.results[k]
			if !ok {
				continue // no client observed this commit
			}
			if string(want) != string(got) {
				h.t.Fatalf("group %d: command %d (%v): reply %q, sequential replay says %q", g, i, cid, got, want)
			}
		}
		// Real-time order within the group: if c1's reply precedes c2's
		// submission, c1 executes before c2.
		for c1 := range pos {
			r1, ok := h.replies[c1]
			if !ok {
				continue
			}
			for c2 := range pos {
				s2, ok := h.submits[c2]
				if !ok {
					continue
				}
				if r1.Before(s2) && pos[c1] >= pos[c2] {
					h.t.Fatalf("group %d: real-time violation: %v replied before %v was submitted but executed at %d ≥ %d",
						g, c1, c2, pos[c1], pos[c2])
				}
			}
		}
	}
	if len(h.results) < successes {
		h.t.Fatalf("recorded %d results, but %d proposals were awaited to completion", len(h.results), successes)
	}
	if executed < len(h.results) {
		h.t.Fatalf("executed %d commands across groups, but %d proposals resolved with results", executed, len(h.results))
	}
	if executed > attempts {
		h.t.Fatalf("executed %d commands across groups, more than the %d proposals ever made", executed, attempts)
	}
}

// waitConverged blocks until every replica executed the same number of
// commands per group (trailing commits landing), or the deadline.
func (h *mgHarness) waitConverged(d time.Duration) {
	h.waitConvergedSkip(d, nil)
}

// waitConvergedSkip is waitConverged minus (replica, group) pairs
// reconfigured out of their group.
func (h *mgHarness) waitConvergedSkip(d time.Duration, skip func(rep int, g types.GroupID) bool) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		done := true
		for g := 0; g < h.groups; g++ {
			want := -1
			for i := 0; i < len(h.orders); i++ {
				if skip != nil && skip(i, types.GroupID(g)) {
					continue
				}
				if want < 0 {
					want = len(h.orders[i][g])
				} else if len(h.orders[i][g]) != want {
					done = false
				}
			}
		}
		h.mu.Unlock()
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// reconfigure drives one group at one host to a new member set through
// the operator API and waits for the future.
func (h *mgHarness) reconfigure(at types.ReplicaID, g types.GroupID, members []types.ReplicaID) {
	h.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	fut, err := h.hosts[at].Group(g).Reconfigure(ctx, members)
	if err != nil {
		h.t.Fatalf("Reconfigure group %v to %v: %v", g, members, err)
	}
	if _, err := fut.Wait(ctx); err != nil {
		h.t.Fatalf("reconfigure future for group %v: %v", g, err)
	}
}

// TestMultiGroupLinearizability hammers a sharded 3-replica × 3-group
// cluster with concurrent clients over a small contended key space —
// every command entering through the public Propose API, a slice of
// them canceled mid-flight — and checks per-key (= per-group)
// linearizability plus at-most-once execution from the recorded
// histories.
func TestMultiGroupLinearizability(t *testing.T) {
	const (
		replicas = 3
		groups   = 3
		clients  = 6
		perCli   = 25
		keys     = 8
	)
	h := newMGHarness(t, replicas, groups)
	var wg sync.WaitGroup
	var successes, attempts int64
	var cm sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) * 97))
			for k := 0; k < perCli; k++ {
				at := types.ReplicaID(rng.Intn(replicas))
				key := fmt.Sprintf("k%d", rng.Intn(keys))
				var payload []byte
				switch rng.Intn(3) {
				case 0:
					payload = kvstore.Put(key, []byte(fmt.Sprintf("v-%d-%d", c, k)))
				case 1:
					payload = kvstore.Get(key)
				default:
					payload = kvstore.Delete(key)
				}
				// One in five proposals is abandoned mid-flight: the
				// client walks away (timeout, closed connection) and the
				// command must still execute at most once.
				if rng.Intn(5) == 0 {
					h.callCanceled(at, key, payload)
					cm.Lock()
					attempts++
					cm.Unlock()
					continue
				}
				h.call(at, key, payload)
				cm.Lock()
				successes++
				attempts++
				cm.Unlock()
			}
		}(c)
	}
	wg.Wait()
	// Let trailing commits (including canceled proposals' commits) land
	// on every replica before comparing.
	h.waitConverged(10 * time.Second)
	h.mu.Lock()
	nCanceled := h.canceled
	// A canceled proposal that still committed recorded a result; those
	// count as successes for the history checks.
	raced := len(h.results) - int(successes)
	h.mu.Unlock()
	if t.Failed() {
		t.FailNow()
	}
	t.Logf("%d proposals: %d awaited, %d canceled (%d of those still committed)",
		attempts, successes, nCanceled, raced)
	h.verify(int(successes), int(attempts))
}

// TestMultiGroupDivergentReconfiguration reconfigures two groups on the
// same hosts to different member sets (and therefore independent
// epochs): group 0 drops replica 3, group 1 drops replica 2. A
// contended workload then runs through replicas 0 and 1 — members of
// both groups — and per-key linearizability must hold per group, with
// each group's removed replica holding a consistent frozen prefix.
func TestMultiGroupDivergentReconfiguration(t *testing.T) {
	const (
		replicas = 4
		groups   = 2
		clients  = 4
		perCli   = 20
		keys     = 6
	)
	h := newMGHarness(t, replicas, groups)
	h.reconfigure(0, 0, []types.ReplicaID{0, 1, 2})
	h.reconfigure(0, 1, []types.ReplicaID{0, 1, 3})

	// The groups' control planes really diverged.
	for g, want := range map[types.GroupID]string{0: "r0,r1,r2", 1: "r0,r1,r3"} {
		nd := h.hosts[0].Group(g)
		if got := nd.Epoch(); got != 1 {
			t.Errorf("group %v epoch = %d, want 1", g, got)
		}
		if got := node.MemberString(nd.Members()); got != want {
			t.Errorf("group %v members = %q, want %q", g, got, want)
		}
	}

	var wg sync.WaitGroup
	var successes, attempts int64
	var cm sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*131 + 7))
			for k := 0; k < perCli; k++ {
				at := types.ReplicaID(rng.Intn(2)) // replicas 0,1 are in both groups
				key := fmt.Sprintf("dk%d", rng.Intn(keys))
				var payload []byte
				switch rng.Intn(3) {
				case 0:
					payload = kvstore.Put(key, []byte(fmt.Sprintf("dv-%d-%d", c, k)))
				case 1:
					payload = kvstore.Get(key)
				default:
					payload = kvstore.Delete(key)
				}
				h.call(at, key, payload)
				cm.Lock()
				successes++
				attempts++
				cm.Unlock()
			}
		}(c)
	}
	wg.Wait()
	skip := func(rep int, g types.GroupID) bool {
		return (g == 0 && rep == 3) || (g == 1 && rep == 2)
	}
	h.waitConvergedSkip(10*time.Second, skip)
	if t.Failed() {
		t.FailNow()
	}
	h.verifySkip(int(successes), int(attempts), skip)

	// Divergence persisted through the workload: per-group epochs and
	// configs on the serving replicas are still the reconfigured ones.
	for _, rep := range []types.ReplicaID{0, 1} {
		if got := node.MemberString(h.hosts[rep].Group(0).Members()); got != "r0,r1,r2" {
			t.Errorf("replica %v group 0 members = %q", rep, got)
		}
		if got := node.MemberString(h.hosts[rep].Group(1).Members()); got != "r0,r1,r3" {
			t.Errorf("replica %v group 1 members = %q", rep, got)
		}
	}
}
