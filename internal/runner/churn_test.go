package runner

import (
	"testing"
	"time"

	"clockrsm/internal/types"
)

// TestMembershipChurn is the acceptance scenario for the operator API:
// a 5-process, 2-group cluster configured down to {0,1,2} serves a
// closed-loop client population while the operator grows it to all five
// replicas and shrinks it back. RunMembershipChurn itself asserts zero
// lost and zero duplicated commands, cross-replica agreement, and that
// every group lands on the same final configuration and epoch.
func TestMembershipChurn(t *testing.T) {
	res, err := RunMembershipChurn(ChurnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no commands committed during the churn run")
	}
	if res.Reconfigurations != 3 { // initial shrink + grow + shrink
		t.Errorf("reconfigurations = %d, want 3", res.Reconfigurations)
	}
	if res.FinalEpoch != 3 || types.ReplicaID(len(res.FinalMembers)) != 3 {
		t.Errorf("final epoch=%d members=%v, want epoch 3 with 3 members", res.FinalEpoch, res.FinalMembers)
	}
	t.Logf("churn: %d committed, %d resubmitted after ErrReconfigured, final epoch %d members %v",
		res.Committed, res.Resubmitted, res.FinalEpoch, res.FinalMembers)
}

// TestMembershipChurnMultiCycle runs two grow/shrink cycles with a
// larger client population — more chances for in-flight commands to be
// caught by a suspension and resubmitted.
func TestMembershipChurnMultiCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cycle churn run")
	}
	res, err := RunMembershipChurn(ChurnConfig{
		Clients: 12,
		Cycles:  2,
		Settle:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalEpoch != 5 { // 1 + 2*2
		t.Errorf("final epoch = %d, want 5", res.FinalEpoch)
	}
	t.Logf("churn x2: %d committed, %d resubmitted", res.Committed, res.Resubmitted)
}
