package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/chaos"
	"clockrsm/internal/clock"
	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// ChaosMatrixConfig describes a chaos-matrix run: a sweep of
// fault-injection scenarios (chaos.Schedule), each executed against a
// fresh multi-group cluster over the in-process hub (wire codec on, an
// asymmetric wan.Matrix as the base topology) and real file logs, under
// closed-loop client load, with per-key linearizability checked during
// the faults and full recovery asserted after they clear.
type ChaosMatrixConfig struct {
	// Dir is where replica WALs live (required; scenario s places
	// replica r group g at Dir/<s>/r<r>.g<g>.log).
	Dir string
	// Replicas is the cluster size (default 3).
	Replicas int
	// Groups is the number of replication groups per node (default 2).
	Groups int
	// Clients is the closed-loop writer count (default 3; at least
	// Groups so every group sees load).
	Clients int
	// Scenarios selects scenarios by name; empty runs every built-in
	// one (see DefaultScenarios).
	Scenarios []string
	// Tail is how long load keeps running after the last fault window
	// clears, so recovery is exercised under traffic (default 300 ms).
	Tail time.Duration
	// StepTimeout bounds one proposal or read attempt during load
	// (default 2 s: longer than any single fault-induced commit stall —
	// Suspect plus a reconfiguration — but short enough that a client
	// parked at a partitioned replica retries elsewhere promptly).
	StepTimeout time.Duration
	// RecoveryTimeout is the stated recovery bound: after the last
	// fault window clears, every replica must be back in every group's
	// configuration and every store byte-converged within this long
	// (default 15 s). Exceeding it fails the scenario.
	RecoveryTimeout time.Duration
	// Mode is the WAL fsync mode (default storage.SyncBatch).
	Mode storage.SyncMode
	// CheckpointEvery is the snapshot/compaction interval in commands
	// (default 8, small enough that checkpoint-error windows are hit).
	CheckpointEvery int
	// Delta is the CLOCKTIME interval (default 2 ms).
	Delta time.Duration
	// Suspect is the failure-detector timeout (default 350 ms). Drop
	// windows must exceed TWICE it: a dropped PREPARE is a permanent
	// history gap until a reconfiguration's command collection or a
	// rejoin's state transfer repairs it, both triggered by suspicion —
	// and the detector samples silence only once per timeout, so
	// guaranteed detection needs silence that outlives a full sampling
	// period past the threshold.
	Suspect time.Duration
	// ConsensusRetry is the reconfiguration consensus reproposal
	// timeout (default 25 ms).
	ConsensusRetry time.Duration
	// Debug, when set, receives progress lines (testing.T.Logf fits).
	Debug func(format string, args ...any)
}

func (c ChaosMatrixConfig) withDefaults() ChaosMatrixConfig {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Groups <= 0 {
		c.Groups = 2
	}
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.Clients < c.Groups {
		c.Clients = c.Groups
	}
	if c.Tail == 0 {
		c.Tail = 300 * time.Millisecond
	}
	if c.StepTimeout == 0 {
		c.StepTimeout = 2 * time.Second
	}
	if c.RecoveryTimeout == 0 {
		c.RecoveryTimeout = 15 * time.Second
	}
	if c.Mode == storage.SyncDefault {
		c.Mode = storage.SyncBatch
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8
	}
	if c.Delta == 0 {
		c.Delta = 2 * time.Millisecond
	}
	if c.Suspect == 0 {
		c.Suspect = 350 * time.Millisecond
	}
	if c.ConsensusRetry == 0 {
		c.ConsensusRetry = 25 * time.Millisecond
	}
	return c
}

// ChaosScenario is one named fault plan of the matrix.
type ChaosScenario struct {
	Name  string
	Sched chaos.Schedule
}

// DefaultScenarios builds the built-in fault matrix for a cluster of n
// replicas with the given failure-detector timeout. Every drop window
// exceeds 2×suspect — see ChaosMatrixConfig.Suspect for why shorter
// drop windows would be unsound — while delay and clock windows are
// free to flap fast.
func DefaultScenarios(n int, suspect time.Duration) []ChaosScenario {
	if n < 3 {
		panic("chaos matrix needs at least 3 replicas")
	}
	drop := 2*suspect + 150*time.Millisecond
	r := func(i int) types.ReplicaID { return types.ReplicaID(i % n) }
	at := 150 * time.Millisecond

	var isolate []chaos.LinkFault
	flap := func(victim types.ReplicaID, start, dur time.Duration) {
		for i := 0; i < n; i++ {
			o := types.ReplicaID(i)
			if o == victim {
				continue
			}
			isolate = append(isolate,
				chaos.LinkFault{From: victim, To: o, Kind: chaos.LinkDrop, At: start, Duration: dur},
				chaos.LinkFault{From: o, To: victim, Kind: chaos.LinkDrop, At: start, Duration: dur},
			)
		}
	}
	// Two full-isolation windows with a healthy gap between: the victim
	// is suspected and removed, rejoins when the window clears, and is
	// removed again — the down-up suspicion cycle, twice.
	flap(r(2), 100*time.Millisecond, drop)
	flap(r(2), 100*time.Millisecond+drop+500*time.Millisecond, drop)

	var delayFlap []chaos.LinkFault
	for i := 0; i < 5; i++ {
		delayFlap = append(delayFlap, chaos.LinkFault{
			From: r(0), To: r(2), Kind: chaos.LinkDelay,
			At:       time.Duration(i) * 80 * time.Millisecond,
			Duration: 40 * time.Millisecond,
			Delay:    10 * time.Millisecond,
		})
	}

	return []ChaosScenario{
		{Name: "clock-jump", Sched: chaos.Schedule{Clock: []chaos.ClockFault{
			{Replica: r(1), Kind: chaos.ClockJump, At: at, Duration: 300 * time.Millisecond, Magnitude: 50 * time.Millisecond},
		}}},
		{Name: "clock-rollback", Sched: chaos.Schedule{Clock: []chaos.ClockFault{
			{Replica: r(2), Kind: chaos.ClockRollback, At: at, Duration: 300 * time.Millisecond, Magnitude: 40 * time.Millisecond},
		}}},
		{Name: "clock-freeze", Sched: chaos.Schedule{Clock: []chaos.ClockFault{
			{Replica: r(1), Kind: chaos.ClockFreeze, At: at, Duration: 300 * time.Millisecond},
		}}},
		{Name: "clock-drift", Sched: chaos.Schedule{Clock: []chaos.ClockFault{
			{Replica: r(0), Kind: chaos.ClockDrift, At: at, Duration: 400 * time.Millisecond, Drift: 0.2},
			{Replica: r(2), Kind: chaos.ClockDrift, At: at, Duration: 400 * time.Millisecond, Drift: -0.15},
		}}},
		{Name: "partition-oneway", Sched: chaos.Schedule{Links: []chaos.LinkFault{
			{From: r(0), To: r(1), Kind: chaos.LinkDrop, At: at, Duration: drop},
		}}},
		{Name: "partition-flap", Sched: chaos.Schedule{Links: isolate}},
		{Name: "delay-flap", Sched: chaos.Schedule{Links: delayFlap}},
		{Name: "delay-spike", Sched: chaos.Schedule{Links: []chaos.LinkFault{
			{From: r(1), To: r(0), Kind: chaos.LinkDelay, At: at, Duration: 400 * time.Millisecond, Delay: 30 * time.Millisecond},
		}}},
		{Name: "slow-disk", Sched: chaos.Schedule{Disk: []chaos.DiskFault{
			{Replica: r(0), Kind: chaos.DiskFsyncStall, At: 100 * time.Millisecond, Duration: 500 * time.Millisecond, Stall: 3 * time.Millisecond},
			{Replica: r(0), Kind: chaos.DiskSlowAppend, At: 100 * time.Millisecond, Duration: 500 * time.Millisecond, Stall: 500 * time.Microsecond},
			{Replica: r(1), Kind: chaos.DiskCheckpointError, At: 100 * time.Millisecond, Duration: 600 * time.Millisecond},
		}}},
		{Name: "kitchen-sink", Sched: chaos.Schedule{
			Clock: []chaos.ClockFault{
				{Replica: r(0), Kind: chaos.ClockJump, At: at, Duration: 300 * time.Millisecond, Magnitude: 30 * time.Millisecond},
			},
			Links: []chaos.LinkFault{
				{From: r(1), To: r(2), Kind: chaos.LinkDrop, At: at, Duration: drop},
				{From: r(0), To: r(1), Kind: chaos.LinkDelay, At: at, Duration: 400 * time.Millisecond, Delay: 10 * time.Millisecond},
			},
			Disk: []chaos.DiskFault{
				{Replica: r(2), Kind: chaos.DiskFsyncStall, At: at, Duration: 400 * time.Millisecond, Stall: 2 * time.Millisecond},
			},
		}},
	}
}

// ChaosScenarioResult reports one scenario that passed every assertion.
type ChaosScenarioResult struct {
	Name string
	// Acked / Resubmitted / Reads as in CrashChurnResult.
	Acked, Resubmitted, Reads uint64
	// Recovery is how long after the last fault window cleared the
	// cluster took to reach full membership and byte-identical stores.
	Recovery time.Duration
	// Faults is the aggregated injection counter map — every fault
	// category the schedule contains is asserted non-zero here.
	Faults map[string]uint64
}

// ChaosMatrixResult aggregates a full matrix run.
type ChaosMatrixResult struct {
	Scenarios []ChaosScenarioResult
}

// RunChaosMatrix sweeps the fault scenarios against fresh clusters and
// verifies, per scenario:
//
//   - per-key linearizability under the faults: a linearizable read
//     that completes observes every write acked before it was issued
//     (reads parked behind a fault-stalled watermark time out and are
//     skipped, never served stale);
//   - zero lost acks: every acked write survives to the converged
//     store;
//   - zero duplicate executions: no (replica, group) executes the same
//     command twice;
//   - bounded recovery: within RecoveryTimeout of the last fault window
//     clearing, every replica is back in every group's configuration
//     and all stores are byte-identical;
//   - observability: every scheduled fault category reports a non-zero
//     injection counter (surfaced through node.HostStatus.Faults).
func RunChaosMatrix(cfg ChaosMatrixConfig) (*ChaosMatrixResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("runner: ChaosMatrixConfig.Dir is required")
	}
	scenarios := DefaultScenarios(cfg.Replicas, cfg.Suspect)
	if len(cfg.Scenarios) > 0 {
		want := make(map[string]bool, len(cfg.Scenarios))
		for _, s := range cfg.Scenarios {
			want[s] = true
		}
		kept := scenarios[:0]
		for _, sc := range scenarios {
			if want[sc.Name] {
				kept = append(kept, sc)
				delete(want, sc.Name)
			}
		}
		if len(want) > 0 {
			return nil, fmt.Errorf("runner: unknown chaos scenarios %v", want)
		}
		scenarios = kept
	}
	res := &ChaosMatrixResult{}
	for _, sc := range scenarios {
		sr, err := runChaosScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		res.Scenarios = append(res.Scenarios, *sr)
	}
	return res, nil
}

// dupTracker detects duplicate executions at one (replica, group) state
// machine: every committed CommandID must execute at most once there.
type dupTracker struct {
	mu   sync.Mutex
	seen map[types.CommandID]bool
	dups []types.CommandID
}

func (d *dupTracker) observe(id types.CommandID) {
	d.mu.Lock()
	if d.seen[id] {
		d.dups = append(d.dups, id)
	} else {
		d.seen[id] = true
	}
	d.mu.Unlock()
}

func runChaosScenario(cfg ChaosMatrixConfig, sc ChaosScenario) (*ChaosScenarioResult, error) {
	debugf := func(format string, args ...any) {
		if cfg.Debug != nil {
			cfg.Debug("["+sc.Name+"] "+format, args...)
		}
	}
	n, groups := cfg.Replicas, cfg.Groups
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	router := shard.NewRouter(groups)
	eng := chaos.New(sc.Sched)
	scDir := filepath.Join(cfg.Dir, sc.Name)
	if err := os.MkdirAll(scDir, 0o755); err != nil {
		return nil, err
	}

	// Base topology: deliberately asymmetric (satellite of PR 5's
	// staleness work) — links into the last replica are slower than the
	// reverse direction, on top of a 1 ms uniform mesh.
	base := wan.Uniform(n, time.Millisecond)
	far := types.ReplicaID(n - 1)
	for i := 0; i < n-1; i++ {
		base.SetOneWay(types.ReplicaID(i), far, 2*time.Millisecond)
	}
	hub := transport.NewHub(n, transport.HubOptions{Codec: true, Groups: groups, Latency: base})

	reps := make([]*liveReplica, n)
	dups := make([][]*dupTracker, n)
	stopAll := func() {
		for _, lr := range reps {
			if lr != nil {
				lr.host.Stop()
			}
		}
	}
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		logs := make([]storage.Log, groups)
		for g := 0; g < groups; g++ {
			path := filepath.Join(scDir, fmt.Sprintf("r%d.g%d.log", i, g))
			fl, err := storage.OpenFileLog(path, storage.FileLogOptions{Mode: cfg.Mode})
			if err != nil {
				stopAll()
				return nil, err
			}
			logs[g] = eng.Log(id, fl)
		}
		tr := eng.Transport(hub.Endpoint(id))
		host, err := node.NewHost(id, spec, tr, node.HostOptions{
			Groups:     groups,
			Clock:      clock.NewMonotonic(eng.Clock(id, clock.System{})),
			NewLog:     func(g types.GroupID) storage.Log { return logs[g] },
			FaultStats: func() map[string]uint64 { return eng.ReplicaCounts(id) },
		})
		if err != nil {
			stopAll()
			return nil, err
		}
		lr := &liveReplica{host: host, stores: make([]*kvstore.Store, groups)}
		dups[i] = make([]*dupTracker, groups)
		for g := 0; g < groups; g++ {
			store := kvstore.New()
			lr.stores[g] = store
			dt := &dupTracker{seen: make(map[types.CommandID]bool)}
			dups[i][g] = dt
			app := &rsm.App{SM: store, OnCommit: func(_ types.Timestamp, cmd types.Command) {
				dt.observe(cmd.ID)
			}}
			nd := host.Group(types.GroupID(g))
			nd.Bind(app)
			nd.SetProtocol(core.New(nd, app, core.Options{
				ClockTimeInterval: cfg.Delta,
				SuspectTimeout:    cfg.Suspect,
				ConsensusRetry:    cfg.ConsensusRetry,
				CheckpointEvery:   cfg.CheckpointEvery,
			}))
		}
		if err := host.Start(); err != nil {
			stopAll()
			return nil, err
		}
		reps[i] = lr
	}
	defer stopAll()

	// Heal monitor: a fault-removed replica is alive and must be driven
	// back in as soon as its links allow — the operator's job, played
	// here so recovery after the window clears is automatic. Two
	// triggers: the replica's own status says it is out of the
	// configuration, or — the case a fully isolated victim cannot see,
	// because the SUSPEND that removed it was itself dropped — its epoch
	// lags the rest of the group. The lag trigger is debounced over two
	// observations so the ordinary skew of an install propagating does
	// not cause spurious churn.
	monStop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		lagging := make(map[[2]int]types.Epoch)
		for {
			select {
			case <-monStop:
				return
			case <-time.After(100 * time.Millisecond):
			}
			maxEpoch := make([]types.Epoch, groups)
			sts := make([]node.HostStatus, n)
			for i, rep := range reps {
				sts[i] = rep.host.Status()
				for _, gs := range sts[i].Groups {
					if gs.Epoch > maxEpoch[gs.Group] {
						maxEpoch[gs.Group] = gs.Epoch
					}
				}
			}
			for i, rep := range reps {
				for _, gs := range sts[i].Groups {
					k := [2]int{i, int(gs.Group)}
					switch {
					case !gs.InConfig:
						delete(lagging, k)
						debugf("heal: replica %d out of group %d config (epoch %d); rejoining", rep.host.ID(), gs.Group, gs.Epoch)
						_ = rep.host.Group(gs.Group).Rejoin()
					case gs.Epoch < maxEpoch[gs.Group]:
						if prev, ok := lagging[k]; ok && prev == gs.Epoch {
							delete(lagging, k)
							debugf("heal: replica %d stuck at group %d epoch %d (cluster at %d); rejoining", rep.host.ID(), gs.Group, gs.Epoch, maxEpoch[gs.Group])
							_ = rep.host.Group(gs.Group).Rejoin()
						} else {
							lagging[k] = gs.Epoch
						}
					default:
						delete(lagging, k)
					}
				}
			}
		}
	}()
	defer func() {
		close(monStop)
		monWG.Wait()
	}()

	acks := struct {
		sync.Mutex
		last map[string]int
	}{last: make(map[string]int)}
	lastAcked := func(key string) int {
		acks.Lock()
		defer acks.Unlock()
		if s, ok := acks.last[key]; ok {
			return s
		}
		return -1
	}
	var ackedN, resubmitted, readsN atomic.Uint64

	stop := make(chan struct{})
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	var wg sync.WaitGroup
	clientErrs := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key, g := clientKey(router, c)
			for seq := 0; !stopped(); seq++ {
				payload := kvstore.Put(key, []byte(fmt.Sprintf("c%d-%d", c, seq)))
				// Retry until acked, rotating the target so a client whose
				// preferred replica is partitioned (or reconfigured out)
				// moves on instead of spinning against it.
				for attempt := 0; !stopped(); attempt++ {
					target := reps[(c+attempt)%n]
					ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
					fut, err := target.host.Group(g).Propose(ctx, payload)
					if err == nil {
						_, err = fut.Wait(ctx)
					}
					cancel()
					if err == nil {
						acks.Lock()
						acks.last[key] = seq
						acks.Unlock()
						ackedN.Add(1)
						break
					}
					resubmitted.Add(1)
				}
				if seq%4 != 3 || stopped() {
					continue
				}
				// Cross-replica linearizability: read at a replica other
				// than the writer's preferred one; a completed read must
				// observe every write acked before it was issued. A read
				// whose serving replica is fault-stalled parks behind the
				// watermark and times out — tolerated, never served stale.
				floor := lastAcked(key)
				rd := reps[(c+1)%n]
				if floor < 0 {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
				rres, err := rd.host.ReadKey(ctx, key, kvstore.Get(key), node.Linearizable)
				cancel()
				switch {
				case err == nil:
					got, perr := parseSeq(rres.Value)
					if perr != nil || got < floor {
						var gdiag string
						for _, g2 := range rd.host.Status().Groups {
							if g2.Group == g {
								gdiag = fmt.Sprintf("epoch=%d inConfig=%t members=%v watermark=%d", g2.Epoch, g2.InConfig, g2.Members, g2.ReadWatermark)
							}
						}
						clientErrs[c] = fmt.Errorf("client %d: linearizable read of %q at %v returned seq %d (%v), but seq %d was acked before the read (served at watermark=%d age=%v replicated=%t; server %s)",
							c, key, rd.host.ID(), got, perr, floor, rres.Watermark, rres.Age, rres.Replicated, gdiag)
						return
					}
					readsN.Add(1)
				case errors.Is(err, node.ErrNotInConfig), errors.Is(err, node.ErrStopped),
					errors.Is(err, context.DeadlineExceeded), errors.Is(err, node.ErrCanceled):
					// Serving replica mid-fault or mid-rejoin.
				default:
					clientErrs[c] = fmt.Errorf("client %d: read of %q: %w", c, key, err)
					return
				}
			}
		}(c)
	}

	// Let the cluster commit a little healthy traffic, then start the
	// fault timeline and ride it out plus the tail.
	time.Sleep(100 * time.Millisecond)
	eng.Arm()
	armed := time.Now()
	faultSpan := sc.Sched.End()
	debugf("armed: %d clock / %d link / %d disk faults over %v", len(sc.Sched.Clock), len(sc.Sched.Links), len(sc.Sched.Disk), faultSpan)
	time.Sleep(faultSpan + cfg.Tail)
	close(stop)
	wg.Wait()
	for _, err := range clientErrs {
		if err != nil {
			return nil, err
		}
	}

	// Recovery: full membership and byte-identical stores within the
	// stated bound of the last fault window clearing.
	cleared := armed.Add(faultSpan)
	deadline := cleared.Add(cfg.RecoveryTimeout)
	for {
		ok := true
		var detail string
		for _, rep := range reps {
			for _, gs := range rep.host.Status().Groups {
				if !gs.InConfig {
					ok = false
					detail = fmt.Sprintf("replica %d not in group %d config", rep.host.ID(), gs.Group)
				}
			}
		}
		for g := 0; g < groups && ok; g++ {
			ref := reps[0].stores[g].Snapshot()
			for i := 1; i < n; i++ {
				if !bytes.Equal(ref, reps[i].stores[g].Snapshot()) {
					ok = false
					detail = fmt.Sprintf("group %d: replica 0 (%d keys) and replica %d (%d keys) diverge",
						g, reps[0].stores[g].Len(), i, reps[i].stores[g].Len())
					break
				}
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			var diff strings.Builder
			diff.WriteString(detail)
			for g := 0; g < groups; g++ {
				for i := 0; i < n; i++ {
					nd := reps[i].host.Group(types.GroupID(g))
					var pend, early int
					var committed uint64
					var epoch types.Epoch
					var rcfg string
					nd.Do(func() {
						rep := nd.Protocol().(*core.Replica)
						pend, early = rep.PendingLen(), rep.EarlyAckLen()
						committed, epoch = rep.Committed(), rep.Epoch()
						rcfg = rep.DebugReconfig()
					})
					fmt.Fprintf(&diff, "\n  r%d g%d applied=%d epoch=%d committed=%d pending=%d earlyAcks=%d %s:",
						i, g, reps[i].stores[g].Applied(), epoch, committed, pend, early, rcfg)
					for k, v := range reps[i].stores[g].SnapshotMap() {
						fmt.Fprintf(&diff, " %s=%s", k, v)
					}
				}
			}
			return nil, fmt.Errorf("no recovery within %v of faults clearing: %s", cfg.RecoveryTimeout, diff.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	recovery := time.Since(cleared)
	if recovery < 0 {
		recovery = 0
	}

	// Zero lost acks: the converged value of every key is at least as
	// new as the last acked write to it.
	for c := 0; c < cfg.Clients; c++ {
		key, g := clientKey(router, c)
		floor := lastAcked(key)
		if floor < 0 {
			continue
		}
		val, ok := reps[0].stores[g].Lookup(key)
		if !ok {
			return nil, fmt.Errorf("key %q lost: seq %d was acked but the key is absent after convergence", key, floor)
		}
		got, err := parseSeq(val)
		if err != nil {
			return nil, fmt.Errorf("key %q holds %q: %v", key, val, err)
		}
		if got < floor {
			return nil, fmt.Errorf("key %q converged to seq %d, but seq %d was acked (acked write lost)", key, got, floor)
		}
	}

	// Final linearizable read at every replica: with the faults cleared
	// and membership healed, no replica may stay read-stalled.
	for _, rep := range reps {
		for c := 0; c < cfg.Clients; c++ {
			key, _ := clientKey(router, c)
			floor := lastAcked(key)
			if floor < 0 {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), cfg.RecoveryTimeout)
			rres, err := rep.host.ReadKey(ctx, key, kvstore.Get(key), node.Linearizable)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("post-recovery linearizable read of %q at replica %d: %w", key, rep.host.ID(), err)
			}
			if got, perr := parseSeq(rres.Value); perr != nil || got < floor {
				return nil, fmt.Errorf("post-recovery read of %q at replica %d returned seq %d (%v), acked floor %d", key, rep.host.ID(), got, perr, floor)
			}
		}
	}

	// Zero duplicate executions, at every (replica, group).
	for i := range dups {
		for g, dt := range dups[i] {
			dt.mu.Lock()
			nd := len(dt.dups)
			dt.mu.Unlock()
			if nd > 0 {
				return nil, fmt.Errorf("replica %d group %d executed %d commands more than once (first: %v)", i, g, nd, dt.dups[0])
			}
		}
	}

	// Observability: every fault category the schedule contains must
	// have fired and been counted (they are also what Host.Status
	// surfaces as HostStatus.Faults).
	counts := eng.Counts()
	missing := func(key string) error {
		if counts[key] == 0 {
			return fmt.Errorf("scheduled %s faults never fired (counters: %v)", key, counts)
		}
		return nil
	}
	for _, f := range sc.Sched.Clock {
		if err := missing("clock." + f.Kind.String()); err != nil {
			return nil, err
		}
	}
	for _, f := range sc.Sched.Links {
		if err := missing("link." + f.Kind.String()); err != nil {
			return nil, err
		}
	}
	for _, f := range sc.Sched.Disk {
		if err := missing("disk." + f.Kind.String()); err != nil {
			return nil, err
		}
	}

	sr := &ChaosScenarioResult{
		Name:        sc.Name,
		Acked:       ackedN.Load(),
		Resubmitted: resubmitted.Load(),
		Reads:       readsN.Load(),
		Recovery:    recovery,
		Faults:      counts,
	}
	debugf("done: acked=%d resubmitted=%d reads=%d recovery=%v faults=%v",
		sr.Acked, sr.Resubmitted, sr.Reads, sr.Recovery, sr.Faults)
	return sr, nil
}
