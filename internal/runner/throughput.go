package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// ThroughputConfig describes one throughput experiment (Figure 8,
// Section VI-D). It runs on the real runtime — goroutine replicas over
// an in-process transport with the binary codec enabled — so message
// processing cost is real CPU cost, which is what the paper measures
// ("in all cases, CPU is the bottleneck and message sending and
// receiving is the major consumer of CPU cycles"). Replicas log to main
// memory, as in the paper.
type ThroughputConfig struct {
	Replicas          int
	Protocol          Protocol
	Leader            int
	ClientsPerReplica int
	// Groups shards the run across that many independent replication
	// groups per node (default 1), multiplexed over one shared
	// transport endpoint per replica. Clients pick keys and the
	// shard.Router dispatches each command to its key's group, the
	// deployment model of `kvserver -groups`.
	Groups int
	// ClientBatch is the node's client-side submit batch width (the
	// paper's client-library batching, Section VI-D): up to this many
	// buffered proposals flush into one event-loop turn and share one
	// coalesced PREPARE broadcast. Default 1 (no batching).
	ClientBatch int
	// PayloadSize is the command size (paper: 10, 100, 1000 bytes).
	PayloadSize int
	Warmup      time.Duration
	Duration    time.Duration
	// NewLog overrides each replica's per-group stable log. Default is
	// NullLog (the paper logs to main memory with recovery out of
	// scope); the durability A/B in BENCH_6.json passes file logs here
	// to price fsync=batch against fsync=off on the same hot path.
	NewLog func(types.ReplicaID, types.GroupID) storage.Log
	// TCP runs the cluster over loopback TCP endpoints instead of the
	// in-process hub: messages traverse real sockets, the per-peer write
	// coalescer and the pooled decode path, and the result carries the
	// endpoints' summed wire counters as evidence.
	TCP bool
	// PinGroups pins each group's event loop to its own CPU (Linux
	// only): the per-group affinity experiment of the scaling sweep.
	PinGroups bool
}

// withDefaults fills reasonable defaults for unset fields.
func (c ThroughputConfig) withDefaults() ThroughputConfig {
	if c.Replicas == 0 {
		c.Replicas = 5
	}
	if c.Groups <= 0 {
		c.Groups = 1
	}
	if c.ClientBatch <= 0 {
		c.ClientBatch = 1
	}
	if c.ClientsPerReplica == 0 {
		// Saturation is per group: each group needs its own closed-loop
		// client population. A batched run additionally scales the
		// population with the batch width (capped): closed-loop clients
		// re-propose in waves as each commit cascade resolves their
		// futures, and only a population ≫ the batch width lets those
		// waves fill SubmitBatch-sized flush chunks.
		c.ClientsPerReplica = 16 * c.Groups
		if c.ClientBatch > 1 {
			perGroup := 16 * c.ClientBatch
			if perGroup > 256 {
				perGroup = 256
			}
			c.ClientsPerReplica = perGroup * c.Groups
		}
	}
	if c.PayloadSize == 0 {
		c.PayloadSize = 100
	}
	if c.Warmup == 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	return c
}

// ThroughputResult reports one throughput measurement.
type ThroughputResult struct {
	Protocol    Protocol
	PayloadSize int
	Groups      int
	ClientBatch int
	// OpsPerSec is committed client commands per second, summed over
	// all replicas (and, in a sharded run, all groups).
	OpsPerSec float64
	// Wire sums the wire-level counters over every endpoint of a TCP
	// run (nil for in-process runs): flush coalescing evidence.
	Wire *transport.WireCounters
}

// clientKey picks the key client cli writes and the group it routes
// to: clients are spread round-robin over groups, and each probes for
// a key the router actually maps to its group, so the run exercises
// the same key→group dispatch a sharded deployment performs.
func clientKey(router *shard.Router, cli int) (string, types.GroupID) {
	want := types.GroupID(cli % router.Groups())
	for salt := 0; ; salt++ {
		key := fmt.Sprintf("key-%d-%d", cli, salt)
		if router.Group(key) == want {
			return key, want
		}
	}
}

// RunThroughput saturates a local cluster with closed-loop zero-think
// clients and measures committed commands per second.
func RunThroughput(cfg ThroughputConfig) (*ThroughputResult, error) {
	cfg = cfg.withDefaults()
	n := cfg.Replicas
	// Transport: in-process hub with the binary codec by default; real
	// loopback TCP endpoints (write coalescer, pooled decode, wire
	// counters) when cfg.TCP is set.
	endpoint := func(id types.ReplicaID) transport.Transport { return nil }
	var tcps []*transport.TCPEndpoint
	if cfg.TCP {
		addrs, err := freeAddrs(n)
		if err != nil {
			return nil, err
		}
		tcps = make([]*transport.TCPEndpoint, n)
		for i := 0; i < n; i++ {
			tcps[i] = transport.NewTCP(types.ReplicaID(i), addrs, transport.TCPOptions{
				Groups: cfg.Groups,
			})
		}
		// Hosts close their shared endpoint on Stop; this is a backstop
		// for early-error returns.
		defer func() {
			for _, t := range tcps {
				t.Close()
			}
		}()
		endpoint = func(id types.ReplicaID) transport.Transport { return tcps[id] }
	} else {
		hub := transport.NewHub(n, transport.HubOptions{Codec: true, Groups: cfg.Groups})
		defer hub.Close()
		endpoint = func(id types.ReplicaID) transport.Transport { return hub.Endpoint(id) }
	}
	router := shard.NewRouter(cfg.Groups)

	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}

	var completed atomic.Uint64
	var measuring atomic.Bool

	// The paper's throughput runs log to main memory with recovery out
	// of scope; NullLog keeps long saturation runs from accumulating
	// unbounded history (memory pressure would otherwise dominate).
	newLog := cfg.NewLog
	if newLog == nil {
		newLog = func(types.ReplicaID, types.GroupID) storage.Log { return storage.NewNullLog() }
	}

	hosts := make([]*node.Host, n)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		host, err := node.NewHost(id, spec, endpoint(id), node.HostOptions{
			Groups:      cfg.Groups,
			SubmitBatch: cfg.ClientBatch,
			NewLog:      func(g types.GroupID) storage.Log { return newLog(id, g) },
			PinGroups:   cfg.PinGroups,
		})
		if err != nil {
			return nil, err
		}
		for g := 0; g < cfg.Groups; g++ {
			app := &rsm.App{SM: kvstore.New()}
			nd := host.Group(types.GroupID(g))
			nd.Bind(app)
			proto, err := newProtocol(cfg.Protocol, nd, app, types.ReplicaID(cfg.Leader), 5*time.Millisecond)
			if err != nil {
				return nil, err
			}
			nd.SetProtocol(proto)
		}
		hosts[i] = host
	}
	for _, host := range hosts {
		if err := host.Start(); err != nil {
			return nil, fmt.Errorf("start host: %w", err)
		}
	}
	defer func() {
		for _, host := range hosts {
			host.Stop()
		}
	}()

	// Closed-loop clients with zero think time: "clients send frequent
	// enough commands to all replicas to saturate them". Each client
	// pipelines through the Propose future API; Stop resolves any
	// still-pending future with ErrStopped, so no client can hang.
	stop := make(chan struct{})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		for c := 0; c < cfg.ClientsPerReplica; c++ {
			wg.Add(1)
			go func(rep, cli int) {
				defer wg.Done()
				key, g := clientKey(router, cli)
				target := hosts[rep].Group(g)
				payload := kvstore.Put(key, make([]byte, cfg.PayloadSize))
				for {
					select {
					case <-stop:
						return
					default:
					}
					fut, err := target.Propose(ctx, payload)
					if err != nil {
						return // node stopped
					}
					// No stop-select here: the future always resolves —
					// with the result, or ErrStopped when the host stops.
					if _, err := fut.Result(); err != nil {
						return
					}
					if measuring.Load() {
						completed.Add(1)
					}
				}
			}(i, c)
		}
	}

	time.Sleep(cfg.Warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	res := &ThroughputResult{
		Protocol:    cfg.Protocol,
		PayloadSize: cfg.PayloadSize,
		Groups:      cfg.Groups,
		ClientBatch: cfg.ClientBatch,
		OpsPerSec:   float64(completed.Load()) / elapsed.Seconds(),
	}
	if tcps != nil {
		var wire transport.WireCounters
		for _, t := range tcps {
			wire.Add(t.Counters())
		}
		res.Wire = &wire
	}
	return res, nil
}

// Figure8 reproduces Figure 8: throughput of all four protocols on a
// local five-replica cluster for small (10 B), medium (100 B) and large
// (1000 B) commands.
func Figure8(sizes []int, perRun time.Duration) ([]ThroughputResult, error) {
	if len(sizes) == 0 {
		sizes = []int{10, 100, 1000}
	}
	var out []ThroughputResult
	for _, size := range sizes {
		for _, p := range AllProtocols() {
			res, err := RunThroughput(ThroughputConfig{
				Protocol:    p,
				PayloadSize: size,
				Duration:    perRun,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, *res)
		}
	}
	return out, nil
}

// BatchScaling measures hot-path throughput at each client-side batch
// width, same hardware and protocol: the client-batching study of
// Section VI-D, recorded in BENCH_3.json. Wider batches amortize one
// PREPARE broadcast (one encode, one frame per link) over more
// commands, at the cost of commands waiting for the flush turn.
func BatchScaling(batches []int, payload int, perRun time.Duration) ([]ThroughputResult, error) {
	if len(batches) == 0 {
		batches = []int{1, 8, 64}
	}
	var out []ThroughputResult
	for _, b := range batches {
		res, err := RunThroughput(ThroughputConfig{
			Protocol:    ClockRSM,
			PayloadSize: payload,
			ClientBatch: b,
			Duration:    perRun,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}
	return out, nil
}

// GroupScaling measures aggregate sharded throughput at each group
// count, same hardware and protocol: the multi-group scaling study
// recorded in BENCH_2.json. Scaling is near-linear until the machine's
// cores saturate; on a single-core host the curve is flat.
func GroupScaling(groupCounts []int, payload int, perRun time.Duration) ([]ThroughputResult, error) {
	if len(groupCounts) == 0 {
		groupCounts = []int{1, 2, 4}
	}
	var out []ThroughputResult
	for _, g := range groupCounts {
		res, err := RunThroughput(ThroughputConfig{
			Protocol:    ClockRSM,
			PayloadSize: payload,
			Groups:      g,
			Duration:    perRun,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}
	return out, nil
}

// GroupScalingRun is one row of the groups × GOMAXPROCS sweep.
type GroupScalingRun struct {
	Groups int
	// Procs is the GOMAXPROCS the row ran under.
	Procs int
	// Pinned reports whether each group's event loop was pinned to its
	// own CPU.
	Pinned    bool
	OpsPerSec float64
	// Wire carries the summed wire counters of a TCP row (nil for
	// in-process rows).
	Wire *transport.WireCounters
}

// SweepConfig configures GroupScalingSweep.
type SweepConfig struct {
	// GroupCounts and ProcCounts are the two sweep axes (defaults
	// {1,2,4} groups and {1, NumCPU} procs).
	GroupCounts []int
	ProcCounts  []int
	PayloadSize int
	PerRun      time.Duration
	// PinGroups additionally pins each group's loop to its own CPU.
	PinGroups bool
	// TCP routes each row over loopback TCP so the rows carry wire
	// counters (flush coalescing evidence).
	TCP bool
}

// GroupScalingSweep measures aggregate sharded throughput across the
// groups × GOMAXPROCS grid: the multi-core scaling study recorded in
// BENCH_7.json. The procs axis is what separates "more groups help"
// from "more groups merely queue": at GOMAXPROCS=1 every curve is flat
// by construction, and the sweep restores the original GOMAXPROCS
// before returning.
func GroupScalingSweep(cfg SweepConfig) ([]GroupScalingRun, error) {
	if len(cfg.GroupCounts) == 0 {
		cfg.GroupCounts = []int{1, 2, 4}
	}
	if len(cfg.ProcCounts) == 0 {
		cfg.ProcCounts = []int{1, runtime.NumCPU()}
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	var out []GroupScalingRun
	for _, procs := range cfg.ProcCounts {
		if procs <= 0 {
			return nil, fmt.Errorf("group scaling sweep: invalid GOMAXPROCS %d", procs)
		}
		runtime.GOMAXPROCS(procs)
		for _, g := range cfg.GroupCounts {
			res, err := RunThroughput(ThroughputConfig{
				Protocol:    ClockRSM,
				PayloadSize: cfg.PayloadSize,
				Groups:      g,
				Duration:    cfg.PerRun,
				TCP:         cfg.TCP,
				PinGroups:   cfg.PinGroups,
			})
			if err != nil {
				return nil, fmt.Errorf("sweep groups=%d procs=%d: %w", g, procs, err)
			}
			out = append(out, GroupScalingRun{
				Groups:    g,
				Procs:     procs,
				Pinned:    cfg.PinGroups,
				OpsPerSec: res.OpsPerSec,
				Wire:      res.Wire,
			})
		}
	}
	return out, nil
}
