package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// CrashChurnConfig describes a crash-churn experiment: a multi-group
// cluster over real TCP transports and real file logs serving a
// closed-loop client population while replicas are crashed (event loops
// stopped dead, logs abandoned with their group-commit buffers
// unsynced) and restarted over the same logs. Each restart recovers by
// replaying the on-disk checkpoint + tail, then rejoins the
// configuration and catches up on the history it missed via checkpoint
// + tail state transfer — the full durability story of Section V-B,
// asserted end to end.
type CrashChurnConfig struct {
	// Dir is where replica logs live (required; group g of replica r is
	// Dir/r<r>.g<g>.log). A crashed replica restarts over these files.
	Dir string
	// Replicas is the cluster size (default 3). One replica is down at
	// a time, so consensus keeps its majority.
	Replicas int
	// Groups is the number of replication groups per node (default 2).
	Groups int
	// Clients is the closed-loop writer count (default 4; at least
	// Groups so every group sees load).
	Clients int
	// Cycles is how many crash+restart rounds run under load (default
	// 3). Round k kills replica k mod Replicas.
	Cycles int
	// Settle is how long load runs between lifecycle steps (default
	// 250 ms) — long enough for survivors to reconfigure the dead
	// replica out and advance their checkpoints past its log.
	Settle time.Duration
	// StepTimeout bounds each proposal and read wait (default 20 s;
	// covers the commit stall between a crash and the reconfiguration
	// that removes the dead replica).
	StepTimeout time.Duration
	// RecoveryTimeout bounds how long a restarted replica may take to
	// rejoin the configuration, and the final convergence wait (default
	// 15 s). Exceeding it fails the run: recovery must be bounded.
	RecoveryTimeout time.Duration
	// Mode is the WAL fsync mode (default storage.SyncBatch — group
	// commit, the mode whose crash window the run exercises).
	Mode storage.SyncMode
	// CheckpointEvery is the snapshot/compaction interval in commands
	// (default 16; small, so the dead window reliably advances the
	// survivors' checkpoints past the victim's log).
	CheckpointEvery int
	// Delta is the CLOCKTIME interval (default 2 ms).
	Delta time.Duration
	// Suspect is the failure-detector timeout (default 350 ms). It must
	// be set: a dead configured replica stalls every commit until it is
	// reconfigured out. Too aggressive a value makes the detector remove
	// live replicas whenever the host hiccups; the runner heals such
	// spurious removals, but each one costs an epoch change.
	Suspect time.Duration
	// ConsensusRetry is the reconfiguration consensus reproposal timeout
	// (default 25 ms; the package default is tuned for WANs).
	ConsensusRetry time.Duration
	// Debug, when set, receives progress lines (testing.T.Logf fits).
	Debug func(format string, args ...any)
}

func (c CrashChurnConfig) withDefaults() CrashChurnConfig {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Groups <= 0 {
		c.Groups = 2
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Clients < c.Groups {
		c.Clients = c.Groups
	}
	if c.Cycles <= 0 {
		c.Cycles = 3
	}
	if c.Settle == 0 {
		c.Settle = 250 * time.Millisecond
	}
	if c.StepTimeout == 0 {
		c.StepTimeout = 20 * time.Second
	}
	if c.RecoveryTimeout == 0 {
		c.RecoveryTimeout = 15 * time.Second
	}
	if c.Mode == storage.SyncDefault {
		c.Mode = storage.SyncBatch
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 16
	}
	if c.Delta == 0 {
		c.Delta = 2 * time.Millisecond
	}
	if c.Suspect == 0 {
		c.Suspect = 350 * time.Millisecond
	}
	if c.ConsensusRetry == 0 {
		c.ConsensusRetry = 25 * time.Millisecond
	}
	return c
}

// CrashChurnResult reports one crash-churn run that passed all
// correctness assertions.
type CrashChurnResult struct {
	// Acked is the number of writes whose futures resolved — the
	// commands the run proves were never lost.
	Acked uint64
	// Resubmitted counts proposals retried after an ambiguous or
	// reconfiguration failure.
	Resubmitted uint64
	// Reads is the number of linearizable cross-replica reads that
	// checked acked writes were visible.
	Reads uint64
	// Kills is the number of crash+restart cycles driven.
	Kills int
	// SnapRestores is the total number of remote snapshot restores
	// performed by restarted replicas — proof that catch-up went
	// through checkpoint + tail state transfer, not full-log replay.
	SnapRestores uint64
	// MaxRecovery is the longest observed crash-to-rejoined time.
	MaxRecovery time.Duration
}

// liveReplica is one running replica: its host plus the per-group
// stores the final agreement check reads.
type liveReplica struct {
	host   *node.Host
	stores []*kvstore.Store
}

// RunCrashChurn stands up a Replicas×Groups cluster over TCP and file
// logs, then — under closed-loop load — SIGKILL-equivalently crashes
// and restarts one replica per cycle: the event loops stop dead and the
// file logs are abandoned open, so whatever the group-commit buffer
// held unsynced is lost, exactly as in a process kill. It verifies:
//
//   - zero lost acked commands: for every key, the converged value's
//     sequence number is at least the last acked write's;
//   - per-key linearizability over survivors: a linearizable read at a
//     replica that did not serve the write observes every write acked
//     before the read was issued;
//   - agreement: after the run, every replica's store serializes to
//     identical bytes, group by group;
//   - bounded recovery: every restarted replica rejoins the
//     configuration within RecoveryTimeout, catching up through
//     checkpoint + tail state transfer (at least one remote snapshot
//     restore per restart).
func RunCrashChurn(cfg CrashChurnConfig) (*CrashChurnResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("runner: CrashChurnConfig.Dir is required")
	}
	debugf := func(format string, args ...any) {
		if cfg.Debug != nil {
			cfg.Debug(format, args...)
		}
	}
	n, groups := cfg.Replicas, cfg.Groups
	addrs, err := freeAddrs(n)
	if err != nil {
		return nil, err
	}
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	router := shard.NewRouter(groups)

	// start boots (or reboots) replica id over its on-disk logs. A log
	// with contents means a restart: replay it, and rejoin the
	// configuration the cluster moved to while the replica was down.
	start := func(id types.ReplicaID) (*liveReplica, error) {
		logs := make([]storage.Log, groups)
		replay := make([]bool, groups)
		for g := 0; g < groups; g++ {
			path := filepath.Join(cfg.Dir, fmt.Sprintf("r%d.g%d.log", id, g))
			fl, err := storage.OpenFileLog(path, storage.FileLogOptions{Mode: cfg.Mode})
			if err != nil {
				return nil, fmt.Errorf("replica %v: %w", id, err)
			}
			logs[g] = fl
			// A restart is any log with history: live entries, or a
			// checkpoint that compacted them all (Len alone would mistake a
			// fully-compacted log for a fresh boot and skip the rejoin).
			_, hasCP := fl.LastCheckpoint()
			replay[g] = fl.Len() > 0 || hasCP
		}
		tr := transport.NewTCP(id, addrs, transport.TCPOptions{
			Groups:    groups,
			DialRetry: 50 * time.Millisecond,
		})
		host, err := node.NewHost(id, spec, tr, node.HostOptions{
			Groups: groups,
			NewLog: func(g types.GroupID) storage.Log { return logs[g] },
		})
		if err != nil {
			return nil, err
		}
		lr := &liveReplica{host: host, stores: make([]*kvstore.Store, groups)}
		for g := 0; g < groups; g++ {
			store := kvstore.New()
			lr.stores[g] = store
			app := &rsm.App{SM: store}
			nd := host.Group(types.GroupID(g))
			nd.Bind(app)
			nd.SetProtocol(core.New(nd, app, core.Options{
				ClockTimeInterval: cfg.Delta,
				SuspectTimeout:    cfg.Suspect,
				ConsensusRetry:    cfg.ConsensusRetry,
				Replay:            replay[g],
				CheckpointEvery:   cfg.CheckpointEvery,
			}))
		}
		if err := host.Start(); err != nil {
			return nil, err
		}
		for g := 0; g < groups; g++ {
			if replay[g] {
				if err := host.Group(types.GroupID(g)).Rejoin(); err != nil {
					host.Stop()
					return nil, fmt.Errorf("replica %v group %d rejoin: %w", id, g, err)
				}
			}
		}
		return lr, nil
	}

	// reps[i] is replica i's current incarnation; alive[i] gates client
	// routing. Guarded by mu: the churn goroutine swaps incarnations
	// while clients read them.
	var mu sync.RWMutex
	reps := make([]*liveReplica, n)
	alive := make([]bool, n)
	for i := 0; i < n; i++ {
		lr, err := start(types.ReplicaID(i))
		if err != nil {
			for j := 0; j < i; j++ {
				reps[j].host.Stop()
			}
			return nil, err
		}
		reps[i], alive[i] = lr, true
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for i, lr := range reps {
			if alive[i] {
				lr.host.Stop()
			}
		}
	}()

	// pickAlive returns a live replica, preferring replica pref and
	// skipping replica not (-1 disables the exclusion).
	pickAlive := func(pref int, not int) *liveReplica {
		mu.RLock()
		defer mu.RUnlock()
		for k := 0; k < n; k++ {
			i := (pref + k) % n
			if alive[i] && i != not {
				return reps[i]
			}
		}
		return nil
	}

	// acks tracks, per key, the highest sequence number whose write was
	// acked — the set of writes the run must prove survived.
	acks := struct {
		sync.Mutex
		last map[string]int
	}{last: make(map[string]int)}
	lastAcked := func(key string) int {
		acks.Lock()
		defer acks.Unlock()
		if s, ok := acks.last[key]; ok {
			return s
		}
		return -1
	}

	res := &CrashChurnResult{}
	var ackedN, resubmitted, readsN atomic.Uint64

	// Heal spurious removals: under load an aggressive failure detector
	// occasionally reconfigures a perfectly live replica out (a scheduling
	// hiccup looks like a crash). An operator's monitor would notice and
	// rejoin it; this monitor plays that role so the run converges on the
	// full membership. Rejoin is asynchronous and self-retrying, so
	// poking an already-rejoining group is harmless.
	monStop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-monStop:
				return
			case <-time.After(200 * time.Millisecond):
			}
			mu.RLock()
			live := make([]*liveReplica, 0, n)
			for i, rep := range reps {
				if alive[i] {
					live = append(live, rep)
				}
			}
			mu.RUnlock()
			for _, rep := range live {
				for _, gs := range rep.host.Status().Groups {
					if !gs.InConfig {
						debugf("heal: replica %d out of group %d config (epoch %d); rejoining", rep.host.ID(), gs.Group, gs.Epoch)
						_ = rep.host.Group(gs.Group).Rejoin()
					}
				}
			}
		}
	}()
	defer func() {
		close(monStop)
		monWG.Wait()
	}()

	stop := make(chan struct{})
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	var wg sync.WaitGroup
	clientErrs := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key, g := clientKey(router, c)
			for seq := 0; !stopped(); seq++ {
				payload := kvstore.Put(key, []byte(fmt.Sprintf("c%d-%d", c, seq)))
				// Retry the same payload until acked: a write is at most
				// once outstanding per key, so resubmitting after an
				// ambiguous failure (crash, timeout) can at worst commit
				// the same value twice in a row.
				for !stopped() {
					target := pickAlive(c%n, -1)
					if target == nil {
						clientErrs[c] = fmt.Errorf("client %d: no live replica", c)
						return
					}
					ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
					fut, err := target.host.Group(g).Propose(ctx, payload)
					if err == nil {
						_, err = fut.Wait(ctx)
					}
					cancel()
					if err == nil {
						acks.Lock()
						acks.last[key] = seq
						acks.Unlock()
						ackedN.Add(1)
						break
					}
					resubmitted.Add(1)
				}
				// Every few acked writes, check per-key linearizability
				// from a different replica: a linearizable read must
				// observe everything acked before it was issued.
				if seq%4 != 3 || stopped() {
					continue
				}
				floor := lastAcked(key)
				rd := pickAlive((c+1)%n, c%n)
				if rd == nil || floor < 0 {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
				rres, err := rd.host.ReadKey(ctx, key, kvstore.Get(key), node.Linearizable)
				cancel()
				switch {
				case err == nil:
					got, perr := parseSeq(rres.Value)
					if perr != nil || got < floor {
						clientErrs[c] = fmt.Errorf("client %d: linearizable read of %q at %v returned seq %d (%v), but seq %d was acked before the read",
							c, key, rd.host.ID(), got, perr, floor)
						return
					}
					readsN.Add(1)
				case errors.Is(err, node.ErrNotInConfig), errors.Is(err, node.ErrStopped),
					errors.Is(err, context.DeadlineExceeded):
					// The serving replica was mid-crash or mid-rejoin;
					// nothing to check.
				default:
					clientErrs[c] = fmt.Errorf("client %d: read of %q: %w", c, key, err)
					return
				}
			}
		}(c)
	}

	// The churn itself: crash one replica per cycle (stop its loops,
	// abandon its logs unsynced), let the survivors reconfigure it out
	// and move on under load, then restart it over the same logs and
	// require it back in the configuration within RecoveryTimeout.
	churnErr := func() error {
		time.Sleep(cfg.Settle)
		for cycle := 0; cycle < cfg.Cycles; cycle++ {
			victim := cycle % n
			mu.Lock()
			alive[victim] = false
			crashed := reps[victim]
			mu.Unlock()
			surv := pickAlive((victim+1)%n, victim)
			if surv == nil {
				return fmt.Errorf("cycle %d: no survivor left to measure recovery against", cycle)
			}
			applied0 := make([]uint64, groups)
			for g := 0; g < groups; g++ {
				applied0[g] = surv.stores[g].Applied()
			}
			crashed.host.Stop() // logs stay open: the unsynced tail is lost
			res.Kills++

			// Let the survivors reconfigure the victim out and commit far
			// enough past its log frontier that every group's checkpoint
			// provably advances beyond it (two checkpoint intervals): the
			// restart below must then catch up through a shipped snapshot
			// + tail, never a full command replay.
			want := uint64(2 * cfg.CheckpointEvery)
			deadAt := time.Now()
			for {
				behind := false
				for g := 0; g < groups; g++ {
					if surv.stores[g].Applied() < applied0[g]+want {
						behind = true
					}
				}
				if !behind {
					break
				}
				if time.Since(deadAt) > cfg.StepTimeout {
					return fmt.Errorf("cycle %d: survivors did not commit %d commands per group after the crash of replica %d", cycle, want, victim)
				}
				time.Sleep(5 * time.Millisecond)
			}
			time.Sleep(cfg.Settle)

			// The victim replays its pre-crash epoch, where it was still a
			// member — InConfig alone would report recovery before the
			// rejoin ran. Recovery means re-admission: the victim must be
			// in the configuration at an epoch strictly newer than what
			// the survivors hold now (a rejoin always forces a fresh
			// epoch), per group.
			eBase := make([]types.Epoch, groups)
			for _, gs := range surv.host.Status().Groups {
				eBase[int(gs.Group)] = gs.Epoch
			}

			restartAt := time.Now()
			lr, err := start(types.ReplicaID(victim))
			if err != nil {
				return fmt.Errorf("cycle %d: restart replica %d: %w", cycle, victim, err)
			}
			mu.Lock()
			reps[victim], alive[victim] = lr, true
			mu.Unlock()
			deadline := restartAt.Add(cfg.RecoveryTimeout)
			lastLog := time.Now()
			for {
				st := lr.host.Status()
				in := true
				for _, gs := range st.Groups {
					if !gs.InConfig || gs.Epoch <= eBase[int(gs.Group)] {
						in = false
					}
				}
				if in {
					break
				}
				if time.Since(lastLog) > 500*time.Millisecond {
					lastLog = time.Now()
					for _, gs := range st.Groups {
						nd := lr.host.Group(gs.Group)
						var dbg string
						nd.Do(func() { dbg = nd.Protocol().(*core.Replica).DebugReconfig() })
						debugf("cycle %d: victim r%d g%d (want epoch>%d) in=%t %s",
							cycle, victim, gs.Group, eBase[int(gs.Group)], gs.InConfig, dbg)
					}
					mu.RLock()
					others := make([]*liveReplica, 0, n)
					for i, rep := range reps {
						if i != victim && alive[i] {
							others = append(others, rep)
						}
					}
					mu.RUnlock()
					for _, rep := range others {
						for _, gs := range rep.host.Status().Groups {
							nd := rep.host.Group(gs.Group)
							var dbg string
							nd.Do(func() { dbg = nd.Protocol().(*core.Replica).DebugReconfig() })
							debugf("cycle %d: survivor r%d g%d vepoch=%d members=%s in=%t %s",
								cycle, rep.host.ID(), gs.Group, gs.Epoch, node.MemberString(gs.Members), gs.InConfig, dbg)
						}
					}
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("cycle %d: replica %d not back in the configuration after %v", cycle, victim, cfg.RecoveryTimeout)
				}
				time.Sleep(5 * time.Millisecond)
			}
			if rec := time.Since(restartAt); rec > res.MaxRecovery {
				res.MaxRecovery = rec
			}
			var restores uint64
			for _, gs := range lr.host.Status().Groups {
				restores += gs.SnapRestores
			}
			if restores == 0 {
				return fmt.Errorf("cycle %d: replica %d rejoined without a single remote snapshot restore — catch-up did not go through checkpoint + tail state transfer", cycle, victim)
			}
			res.SnapRestores += restores
			time.Sleep(cfg.Settle)
		}
		return nil
	}()
	close(stop)
	wg.Wait()
	if churnErr != nil {
		return nil, churnErr
	}
	for _, err := range clientErrs {
		if err != nil {
			return nil, err
		}
	}
	res.Acked = ackedN.Load()
	res.Resubmitted = resubmitted.Load()
	res.Reads = readsN.Load()

	// Agreement: wait for every replica's store to serialize to the
	// same bytes, group by group (kvstore snapshots are deterministic:
	// sorted keys plus the applied count, so byte equality means the
	// replicas executed the same command sequence).
	deadline := time.Now().Add(cfg.RecoveryTimeout)
	for {
		agree := true
		var detail string
		for g := 0; g < groups && agree; g++ {
			ref := reps[0].stores[g].Snapshot()
			for i := 1; i < n; i++ {
				if !bytes.Equal(ref, reps[i].stores[g].Snapshot()) {
					agree = false
					detail = fmt.Sprintf("group %d: replica 0 (%d keys) and replica %d (%d keys) diverge",
						g, reps[0].stores[g].Len(), i, reps[i].stores[g].Len())
					break
				}
			}
		}
		if agree {
			break
		}
		if time.Now().After(deadline) {
			var diff strings.Builder
			diff.WriteString(detail)
			for g := 0; g < groups; g++ {
				for i := 0; i < n; i++ {
					m := reps[i].stores[g].SnapshotMap()
					fmt.Fprintf(&diff, "\n  r%d g%d applied=%d:", i, g, reps[i].stores[g].Applied())
					for k, v := range m {
						fmt.Fprintf(&diff, " %s=%s", k, v)
					}
				}
			}
			return nil, fmt.Errorf("crash-churn: stores never converged: %s", diff.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Zero lost acked commands: the converged value of every key is at
	// least as new as the last acked write to it.
	for c := 0; c < cfg.Clients; c++ {
		key, g := clientKey(router, c)
		floor := lastAcked(key)
		if floor < 0 {
			continue
		}
		val, ok := reps[0].stores[g].Lookup(key)
		if !ok {
			return nil, fmt.Errorf("crash-churn: key %q lost: seq %d was acked but the key is absent after convergence", key, floor)
		}
		got, err := parseSeq(val)
		if err != nil {
			return nil, fmt.Errorf("crash-churn: key %q holds %q: %v", key, val, err)
		}
		if got < floor {
			return nil, fmt.Errorf("crash-churn: key %q converged to seq %d, but seq %d was acked (acked command lost)", key, got, floor)
		}
	}

	// The future-epoch hold buffer never overflowed silently into a
	// drop: overflow now forces a rejoin, but in a run this size any
	// drop at all means the buffer was mis-sized.
	for i := 0; i < n; i++ {
		for g := 0; g < groups; g++ {
			nd := reps[i].host.Group(types.GroupID(g))
			var heldDropped uint64
			nd.Do(func() { heldDropped = nd.Protocol().(*core.Replica).HeldDropped() })
			if heldDropped > 0 {
				return nil, fmt.Errorf("replica %d group %d dropped %d held future-epoch messages", i, g, heldDropped)
			}
		}
	}
	return res, nil
}

// parseSeq extracts the sequence number from a "c<client>-<seq>" value.
func parseSeq(val []byte) (int, error) {
	s := string(val)
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return 0, fmt.Errorf("malformed value %q", s)
	}
	return strconv.Atoi(s[i+1:])
}

// freeAddrs reserves n distinct loopback TCP addresses. The listeners
// are closed before returning, so a replica (and its restarts) can bind
// the address; the window in which another process could steal the port
// is the usual test-harness race and acceptably small.
func freeAddrs(n int) (map[types.ReplicaID]string, error) {
	addrs := make(map[types.ReplicaID]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[types.ReplicaID(i)] = ln.Addr().String()
	}
	return addrs, nil
}
