package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// ReadMode selects how reads are issued in a read-path experiment.
type ReadMode string

// Read modes: one replicated baseline and the three local tiers.
const (
	// ReadReplicated sends every GET through the log as a command — the
	// pre-read-path behavior, and the baseline the local tiers are
	// measured against.
	ReadReplicated ReadMode = "replicated"
	// ReadLinearizable uses node.Linearizable local reads.
	ReadLinearizable ReadMode = "linearizable"
	// ReadSequential uses node.Sequential local reads, one session per
	// reader client.
	ReadSequential ReadMode = "sequential"
	// ReadStale uses unbounded node.Stale local reads.
	ReadStale ReadMode = "stale"
)

// ReadPathConfig describes one read-path throughput experiment: a
// five-replica Clock-RSM cluster saturated by closed-loop writers
// (which also keep the executed watermark hot) plus closed-loop readers
// issuing GETs in the configured mode.
type ReadPathConfig struct {
	Replicas int
	Groups   int
	Mode     ReadMode
	// WriteClientsPerReplica closed-loop writers keep background write
	// load on the cluster (default 8 per group).
	WriteClientsPerReplica int
	// ReadClientsPerReplica closed-loop readers issue GETs in Mode
	// (default 16 per group).
	ReadClientsPerReplica int
	PayloadSize           int
	Warmup                time.Duration
	Duration              time.Duration
}

func (c ReadPathConfig) withDefaults() ReadPathConfig {
	if c.Replicas == 0 {
		c.Replicas = 5
	}
	if c.Groups <= 0 {
		c.Groups = 1
	}
	if c.Mode == "" {
		c.Mode = ReadLinearizable
	}
	if c.WriteClientsPerReplica == 0 {
		c.WriteClientsPerReplica = 8 * c.Groups
	}
	if c.ReadClientsPerReplica == 0 {
		c.ReadClientsPerReplica = 16 * c.Groups
	}
	if c.PayloadSize == 0 {
		c.PayloadSize = 100
	}
	if c.Warmup == 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	return c
}

// ReadPathResult reports one read-path measurement.
type ReadPathResult struct {
	Mode           ReadMode
	ReadOpsPerSec  float64
	WriteOpsPerSec float64
	// ReadsReplicated counts reads that entered the replication path
	// (proposals beyond the writers' own). Zero for the local modes —
	// the "no PREPARE broadcast" check — and equal to the number of
	// reads for ReadReplicated.
	ReadsReplicated uint64
}

// RunReadPath saturates a local Clock-RSM cluster with closed-loop
// writers and readers and measures committed writes and served reads
// per second. Readers read the keys the writers write, through the same
// shard routing a deployment uses.
func RunReadPath(cfg ReadPathConfig) (*ReadPathResult, error) {
	cfg = cfg.withDefaults()
	n := cfg.Replicas
	hub := transport.NewHub(n, transport.HubOptions{Codec: true, Groups: cfg.Groups})
	defer hub.Close()
	router := shard.NewRouter(cfg.Groups)

	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}

	var reads, writes atomic.Uint64
	var measuring atomic.Bool

	hosts := make([]*node.Host, n)
	for i := 0; i < n; i++ {
		host, err := node.NewHost(types.ReplicaID(i), spec, hub.Endpoint(types.ReplicaID(i)), node.HostOptions{
			Groups: cfg.Groups,
			NewLog: func(types.GroupID) storage.Log { return storage.NewNullLog() },
		})
		if err != nil {
			return nil, err
		}
		for g := 0; g < cfg.Groups; g++ {
			app := &rsm.App{SM: kvstore.New()}
			nd := host.Group(types.GroupID(g))
			nd.Bind(app)
			nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 5 * time.Millisecond}))
		}
		hosts[i] = host
	}
	for _, host := range hosts {
		if err := host.Start(); err != nil {
			return nil, fmt.Errorf("start host: %w", err)
		}
	}
	defer func() {
		for _, host := range hosts {
			host.Stop()
		}
	}()

	stop := make(chan struct{})
	ctx := context.Background()
	var wg sync.WaitGroup
	var writesProposed atomic.Uint64

	// Closed-loop writers: sustained background load; the commit
	// cascade they drive keeps the watermark within one turn of the
	// clock, so linearizable reads rarely park for long.
	for i := 0; i < n; i++ {
		for c := 0; c < cfg.WriteClientsPerReplica; c++ {
			wg.Add(1)
			go func(rep, cli int) {
				defer wg.Done()
				key, g := clientKey(router, cli)
				target := hosts[rep].Group(g)
				payload := kvstore.Put(key, make([]byte, cfg.PayloadSize))
				for {
					select {
					case <-stop:
						return
					default:
					}
					writesProposed.Add(1)
					fut, err := target.Propose(ctx, payload)
					if err != nil {
						return
					}
					if _, err := fut.Result(); err != nil {
						return
					}
					if measuring.Load() {
						writes.Add(1)
					}
				}
			}(i, c)
		}
	}

	// Closed-loop readers: each reads the key a writer with the same
	// index writes, in the configured mode.
	for i := 0; i < n; i++ {
		for c := 0; c < cfg.ReadClientsPerReplica; c++ {
			wg.Add(1)
			go func(rep, cli int) {
				defer wg.Done()
				key, g := clientKey(router, cli%cfg.WriteClientsPerReplica)
				query := kvstore.Get(key)
				host := hosts[rep]
				target := host.Group(g)
				var sess node.Session
				for turn := 0; ; turn++ {
					select {
					case <-stop:
						return
					default:
					}
					var err error
					switch cfg.Mode {
					case ReadReplicated:
						var fut *node.Future
						fut, err = target.Propose(ctx, query)
						if err == nil {
							_, err = fut.Result()
						}
					case ReadLinearizable:
						_, err = target.Read(ctx, query, node.Linearizable)
					case ReadSequential:
						_, err = target.Read(ctx, query, node.Sequential(&sess))
					default: // ReadStale
						_, err = target.Read(ctx, query, node.Stale(0))
						// Stale reads never block — that is their point — so
						// a zero-think closed loop of them would starve the
						// replicas' event loops on few-core hosts. Yield
						// periodically so the cluster keeps committing
						// underneath without capping the read rate.
						if turn&63 == 63 {
							runtime.Gosched()
						}
					}
					if err != nil {
						return
					}
					if measuring.Load() {
						reads.Add(1)
					}
				}
			}(i, c)
		}
	}

	time.Sleep(cfg.Warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	// Every proposal beyond the writers' own was a read that entered
	// the replication path — zero in the local modes.
	var proposed uint64
	for _, host := range hosts {
		for _, g := range host.Status().Groups {
			proposed += g.Proposed
		}
	}
	repl := uint64(0)
	if wp := writesProposed.Load(); proposed > wp {
		repl = proposed - wp
	}

	return &ReadPathResult{
		Mode:            cfg.Mode,
		ReadOpsPerSec:   float64(reads.Load()) / elapsed.Seconds(),
		WriteOpsPerSec:  float64(writes.Load()) / elapsed.Seconds(),
		ReadsReplicated: repl,
	}, nil
}

// ReadScaling measures read throughput in each mode under the same
// background write load: the replicated baseline against the three
// local tiers, recorded in BENCH_5.json. Local reads bypass the
// PREPARE broadcast entirely, so the gap over ReadReplicated is the
// replication cost every pre-read-path GET was paying.
func ReadScaling(modes []ReadMode, perRun time.Duration) ([]ReadPathResult, error) {
	if len(modes) == 0 {
		modes = []ReadMode{ReadReplicated, ReadLinearizable, ReadSequential, ReadStale}
	}
	var out []ReadPathResult
	for _, m := range modes {
		res, err := RunReadPath(ReadPathConfig{Mode: m, Duration: perRun})
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}
	return out, nil
}
