package runner

import (
	"context"
	"fmt"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/stats"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// IdleReadConfig describes an idle-cluster linearizable-read latency
// experiment (paper Section IV: the latency floor of a read when no
// write traffic keeps the stable frontier moving). One priming write
// establishes state, the cluster goes quiet, and then single
// linearizable reads are issued far enough apart that each one finds
// the frontier behind its capture time and has to wait for fresh
// CLOCKTIMEs. Without the CLOCKREQ nudge each read pays the remainder
// of the Δ broadcast interval (Δ/2 on average, Δ worst case); with it,
// one round trip to the slowest majority peer.
type IdleReadConfig struct {
	Replicas int
	// Delta is the CLOCKTIME broadcast interval Δ. Deliberately long by
	// default (50ms) so the interval cost is unmistakable against
	// scheduling noise.
	Delta time.Duration
	// Reads is the number of idle reads measured (default 40).
	Reads int
	// Spacing separates consecutive reads so every read observes an
	// idle cluster rather than drafting on its predecessor's nudge
	// (default Δ/2).
	Spacing time.Duration
	// NoNudge disables the idle-read CLOCKREQ nudge — the "before"
	// variant of the A/B.
	NoNudge bool
}

func (c IdleReadConfig) withDefaults() IdleReadConfig {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Delta == 0 {
		c.Delta = 50 * time.Millisecond
	}
	if c.Reads == 0 {
		c.Reads = 40
	}
	if c.Spacing == 0 {
		c.Spacing = c.Delta / 2
	}
	return c
}

// IdleReadResult reports one idle-read latency measurement.
type IdleReadResult struct {
	Nudge          bool
	Delta          time.Duration
	Reads          int
	Mean, P50, P95 time.Duration
	Min, Max       time.Duration
	// Nudges and NudgeReplies count CLOCKREQ broadcasts sent by the
	// reading replica and answers served by its peers: nonzero exactly
	// when the nudge is enabled and actually carried the reads.
	Nudges, NudgeReplies uint64
}

// RunIdleRead measures single linearizable-read latency on an idle
// cluster, with or without the CLOCKREQ nudge.
func RunIdleRead(cfg IdleReadConfig) (*IdleReadResult, error) {
	cfg = cfg.withDefaults()
	n := cfg.Replicas
	hub := transport.NewHub(n, transport.HubOptions{Codec: true})
	defer hub.Close()

	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	hosts := make([]*node.Host, n)
	cores := make([]*core.Replica, n)
	for i := 0; i < n; i++ {
		host, err := node.NewHost(types.ReplicaID(i), spec, hub.Endpoint(types.ReplicaID(i)), node.HostOptions{
			NewLog: func(types.GroupID) storage.Log { return storage.NewNullLog() },
		})
		if err != nil {
			return nil, err
		}
		app := &rsm.App{SM: kvstore.New()}
		nd := host.Group(0)
		nd.Bind(app)
		rep := core.New(nd, app, core.Options{
			ClockTimeInterval: cfg.Delta,
			NoReadNudge:       cfg.NoNudge,
		})
		nd.SetProtocol(rep)
		hosts[i] = host
		cores[i] = rep
	}
	for _, host := range hosts {
		if err := host.Start(); err != nil {
			return nil, fmt.Errorf("start host: %w", err)
		}
	}
	defer func() {
		for _, host := range hosts {
			host.Stop()
		}
	}()

	ctx := context.Background()
	fut, err := hosts[0].Group(0).Propose(ctx, kvstore.Put("idle", []byte("v")))
	if err != nil {
		return nil, err
	}
	if _, err := fut.Result(); err != nil {
		return nil, err
	}
	// Let the priming write's commit cascade and trailing CLOCKTIMEs
	// settle so the first read starts from a genuinely idle cluster.
	time.Sleep(2 * cfg.Delta)

	// Read at a non-origin replica: its frontier depends on every peer's
	// clock, the general case.
	reader := hosts[n-1].Group(0)
	query := kvstore.Get("idle")
	var sample stats.Sample
	for i := 0; i < cfg.Reads; i++ {
		time.Sleep(cfg.Spacing)
		start := time.Now()
		if _, err := reader.Read(ctx, query, node.Linearizable); err != nil {
			return nil, fmt.Errorf("idle read %d: %w", i, err)
		}
		sample.Add(time.Since(start))
	}

	res := &IdleReadResult{
		Nudge: !cfg.NoNudge,
		Delta: cfg.Delta,
		Reads: sample.Count(),
		Mean:  sample.Mean(),
		P50:   sample.Quantile(0.5),
		P95:   sample.P95(),
		Min:   sample.Min(),
		Max:   sample.Max(),
	}
	for i, rep := range cores {
		if i == n-1 {
			res.Nudges = rep.Nudges()
		} else {
			res.NudgeReplies += rep.NudgeReplies()
		}
	}
	return res, nil
}
