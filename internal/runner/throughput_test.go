package runner

import (
	"testing"
	"time"
)

func TestRunThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time throughput run")
	}
	for _, p := range []Protocol{ClockRSM, PaxosBcast, MenciusBcast, Paxos} {
		res, err := RunThroughput(ThroughputConfig{
			Replicas:          3,
			Protocol:          p,
			ClientsPerReplica: 4,
			PayloadSize:       100,
			Warmup:            100 * time.Millisecond,
			Duration:          300 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.OpsPerSec <= 0 {
			t.Errorf("%v: zero throughput", p)
		}
		t.Logf("%v: %.0f ops/s", p, res.OpsPerSec)
	}
}

// TestBatchScalingSmoke runs the client-batching study at tiny scale:
// every batch width must commit commands, and the config must surface
// in the result.
func TestBatchScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time throughput run")
	}
	results, err := BatchScaling([]int{1, 4}, 100, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 4} {
		if results[i].ClientBatch != want {
			t.Errorf("result %d: ClientBatch = %d, want %d", i, results[i].ClientBatch, want)
		}
		if results[i].OpsPerSec <= 0 {
			t.Errorf("batch %d: zero throughput", want)
		}
		t.Logf("batch %d: %.0f ops/s", want, results[i].OpsPerSec)
	}
}

func TestRunThroughputUnknownProtocol(t *testing.T) {
	if _, err := RunThroughput(ThroughputConfig{Protocol: "nope", Duration: 50 * time.Millisecond}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
