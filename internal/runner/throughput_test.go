package runner

import (
	"testing"
	"time"
)

func TestRunThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time throughput run")
	}
	for _, p := range []Protocol{ClockRSM, PaxosBcast, MenciusBcast, Paxos} {
		res, err := RunThroughput(ThroughputConfig{
			Replicas:          3,
			Protocol:          p,
			ClientsPerReplica: 4,
			PayloadSize:       100,
			Warmup:            100 * time.Millisecond,
			Duration:          300 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.OpsPerSec <= 0 {
			t.Errorf("%v: zero throughput", p)
		}
		t.Logf("%v: %.0f ops/s", p, res.OpsPerSec)
	}
}

func TestRunThroughputUnknownProtocol(t *testing.T) {
	if _, err := RunThroughput(ThroughputConfig{Protocol: "nope", Duration: 50 * time.Millisecond}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
