package runner

import (
	"testing"
	"time"
)

// TestReadPathSmoke runs a short read-path experiment in every mode and
// pins the structural claims: reads flow in all modes, the local tiers
// add zero replication traffic (no PREPARE broadcast ever carries a
// read), and the replicated baseline replicates every read.
func TestReadPathSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation run")
	}
	for _, mode := range []ReadMode{ReadReplicated, ReadLinearizable, ReadSequential, ReadStale} {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			res, err := RunReadPath(ReadPathConfig{
				Mode:     mode,
				Warmup:   100 * time.Millisecond,
				Duration: 300 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ReadOpsPerSec <= 0 {
				t.Fatalf("mode %s: no reads served", mode)
			}
			if res.WriteOpsPerSec <= 0 {
				t.Fatalf("mode %s: no writes committed", mode)
			}
			switch mode {
			case ReadReplicated:
				if res.ReadsReplicated == 0 {
					t.Fatal("replicated mode reported zero replicated reads")
				}
			default:
				if res.ReadsReplicated != 0 {
					t.Fatalf("mode %s: %d reads entered the replication path, want 0",
						mode, res.ReadsReplicated)
				}
			}
			t.Logf("%s: %.0f reads/s, %.0f writes/s, %d replicated reads",
				mode, res.ReadOpsPerSec, res.WriteOpsPerSec, res.ReadsReplicated)
		})
	}
}
