package runner

import (
	"testing"
)

// TestSplitChurn asserts the elastic-resharding story end to end: a
// three-replica, two-group cluster over TCP and file logs serving
// closed-loop load while group 0 is split into a spare group by a
// coordinator that crashes between its checkpoint and the ownership
// flip (two racing coordinators heal it), followed by a clean split of
// group 1 — with zero lost acks, per-key linearizable reads across the
// split boundary, one routing outcome, and full store agreement.
func TestSplitChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("split churn runs multi-second live-migration cycles")
	}
	res, err := RunSplitChurn(SplitChurnConfig{
		Dir:   t.TempDir(),
		Debug: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits != 2 {
		t.Errorf("Splits = %d, want 2 (healed + clean)", res.Splits)
	}
	if res.HealedSlots == 0 {
		t.Error("no slots were healed; the coordinator crash exercised nothing")
	}
	if res.Acked == 0 {
		t.Error("no writes were acked; the run exercised nothing")
	}
	if res.Reads == 0 {
		t.Error("no linearizable reads completed; the run checked nothing")
	}
	if res.RouteVersion < 3 {
		t.Errorf("RouteVersion = %d, want at least 3 (genesis + fence + two flips)", res.RouteVersion)
	}
	t.Logf("acked=%d resubmitted=%d reads=%d splits=%d healed_slots=%d moved_pairs=%d route_version=%d fence_stall=%v",
		res.Acked, res.Resubmitted, res.Reads, res.Splits, res.HealedSlots,
		res.MovedPairs, res.RouteVersion, res.FenceStall)
}
