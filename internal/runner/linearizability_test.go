package runner

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/rsm"
	"clockrsm/internal/sim"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// linHarness checks linearizability (Section II-B, Claim 5) of the
// replicated KV store under every protocol: there must exist a
// permutation of the client history that (1) respects each command's
// sequential semantics and (2) respects real-time order. Because the
// protocols produce an explicit total execution order, we verify that
// THAT order is such a permutation: replies must match a sequential
// replay of the execution order, and a command submitted after another's
// reply must execute after it.
type linHarness struct {
	t        *testing.T
	c        *sim.Cluster
	protos   []rsm.Protocol
	order    []types.CommandID // execution order observed at replica 0
	orders   [][]types.CommandID
	payloads map[types.CommandID][]byte
	submits  map[types.CommandID]time.Duration
	replies  map[types.CommandID]time.Duration
	results  map[types.CommandID][]byte
	seq      uint64
}

func newLinHarness(t *testing.T, p Protocol, sites []wan.Site, seed int64) *linHarness {
	t.Helper()
	h := &linHarness{
		t:        t,
		c:        sim.NewCluster(wan.EC2Matrix(sites), sim.ClusterOptions{Seed: seed, Jitter: 2 * time.Millisecond}),
		payloads: make(map[types.CommandID][]byte),
		submits:  make(map[types.CommandID]time.Duration),
		replies:  make(map[types.CommandID]time.Duration),
		results:  make(map[types.CommandID][]byte),
		orders:   make([][]types.CommandID, len(sites)),
	}
	for i := range sites {
		i := i
		app := &rsm.App{
			SM: kvstore.New(),
			OnCommit: func(ts types.Timestamp, cmd types.Command) {
				h.orders[i] = append(h.orders[i], cmd.ID)
				if i == 0 {
					h.order = append(h.order, cmd.ID)
				}
			},
			OnReply: func(res types.Result) {
				h.replies[res.ID] = h.c.Eng.Now()
				h.results[res.ID] = res.Value
			},
		}
		proto, err := newProtocol(p, h.c.Replicas[i], app, 0, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		h.protos = append(h.protos, proto)
		h.c.Replicas[i].SetProtocol(proto)
	}
	h.c.Start()
	return h
}

// submitAt schedules one random KV command.
func (h *linHarness) submitAt(rng *rand.Rand, at types.ReplicaID, when time.Duration) {
	h.seq++
	cid := types.CommandID{Origin: at, Seq: h.seq}
	key := fmt.Sprintf("k%d", rng.Intn(4)) // few keys: maximal contention
	var payload []byte
	switch rng.Intn(3) {
	case 0:
		payload = kvstore.Put(key, []byte(fmt.Sprintf("v-%d", h.seq)))
	case 1:
		payload = kvstore.Get(key)
	default:
		payload = kvstore.Delete(key)
	}
	h.payloads[cid] = payload
	h.c.Eng.At(when, func() {
		h.submits[cid] = h.c.Eng.Now()
		h.protos[at].Submit(types.Command{ID: cid, Payload: payload})
	})
}

// verify checks agreement, semantic correctness and real-time order.
func (h *linHarness) verify(total int) {
	h.t.Helper()
	// 1. Agreement: identical execution order everywhere.
	for i := 1; i < len(h.orders); i++ {
		if len(h.orders[i]) != len(h.orders[0]) {
			h.t.Fatalf("replica %d executed %d commands, replica 0 executed %d", i, len(h.orders[i]), len(h.orders[0]))
		}
		for j := range h.orders[i] {
			if h.orders[i][j] != h.orders[0][j] {
				h.t.Fatalf("execution order diverges at %d", j)
			}
		}
	}
	if len(h.order) != total {
		h.t.Fatalf("executed %d commands, want %d", len(h.order), total)
	}
	// 2. Sequential semantics: replaying the execution order must
	// reproduce every reply the clients saw.
	replay := kvstore.New()
	pos := make(map[types.CommandID]int, len(h.order))
	for i, cid := range h.order {
		pos[cid] = i
		want := replay.Apply(h.payloads[cid])
		got, ok := h.results[cid]
		if !ok {
			h.t.Fatalf("no reply for %v", cid)
		}
		if string(want) != string(got) {
			h.t.Fatalf("command %d (%v): reply %q, sequential replay says %q", i, cid, got, want)
		}
	}
	// 3. Real-time order: if c1's reply precedes c2's submission, c1
	// executes before c2.
	for c1, r1 := range h.replies {
		for c2, s2 := range h.submits {
			if r1 < s2 && pos[c1] >= pos[c2] {
				h.t.Fatalf("real-time violation: %v replied at %v before %v submitted at %v, but executed at %d ≥ %d",
					c1, r1, c2, s2, pos[c1], pos[c2])
			}
		}
	}
}

func TestLinearizability(t *testing.T) {
	sites := []wan.Site{wan.CA, wan.VA, wan.IR, wan.JP, wan.SG}
	for _, p := range AllProtocols() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			h := newLinHarness(t, p, sites, 7)
			total := 0
			for k := 0; k < 120; k++ {
				at := types.ReplicaID(rng.Intn(len(sites)))
				when := time.Duration(rng.Intn(4000)) * time.Millisecond
				h.submitAt(rng, at, when)
				total++
			}
			h.c.Eng.RunUntil(60 * time.Second)
			h.verify(total)
		})
	}
}

func TestLinearizabilityWithClockSkew(t *testing.T) {
	// Clock-RSM under ±20ms skew: correctness must not depend on
	// synchronization precision (Section II-A).
	sites := []wan.Site{wan.CA, wan.VA, wan.IR}
	h := &linHarness{
		t: t,
		c: sim.NewCluster(wan.EC2Matrix(sites), sim.ClusterOptions{
			Seed:   3,
			Jitter: 2 * time.Millisecond,
			Skews:  []time.Duration{0, 20 * time.Millisecond, -20 * time.Millisecond},
		}),
		payloads: make(map[types.CommandID][]byte),
		submits:  make(map[types.CommandID]time.Duration),
		replies:  make(map[types.CommandID]time.Duration),
		results:  make(map[types.CommandID][]byte),
		orders:   make([][]types.CommandID, len(sites)),
	}
	for i := range sites {
		i := i
		app := &rsm.App{
			SM: kvstore.New(),
			OnCommit: func(ts types.Timestamp, cmd types.Command) {
				h.orders[i] = append(h.orders[i], cmd.ID)
				if i == 0 {
					h.order = append(h.order, cmd.ID)
				}
			},
			OnReply: func(res types.Result) {
				h.replies[res.ID] = h.c.Eng.Now()
				h.results[res.ID] = res.Value
			},
		}
		proto, err := newProtocol(ClockRSM, h.c.Replicas[i], app, 0, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		h.protos = append(h.protos, proto)
		h.c.Replicas[i].SetProtocol(proto)
	}
	h.c.Start()

	rng := rand.New(rand.NewSource(99))
	total := 0
	for k := 0; k < 90; k++ {
		h.submitAt(rng, types.ReplicaID(rng.Intn(3)), time.Duration(rng.Intn(3000))*time.Millisecond)
		total++
	}
	h.c.Eng.RunUntil(60 * time.Second)
	h.verify(total)
}

// Linearizability under many random seeds — a lightweight fuzz of the
// protocol interleavings.
func TestLinearizabilityManySeeds(t *testing.T) {
	sites := []wan.Site{wan.CA, wan.VA, wan.IR}
	for seed := int64(0); seed < 8; seed++ {
		for _, p := range []Protocol{ClockRSM, MenciusBcast} {
			h := newLinHarness(t, p, sites, seed)
			rng := rand.New(rand.NewSource(seed * 31))
			total := 0
			for k := 0; k < 40; k++ {
				h.submitAt(rng, types.ReplicaID(rng.Intn(3)), time.Duration(rng.Intn(1500))*time.Millisecond)
				total++
			}
			h.c.Eng.RunUntil(30 * time.Second)
			h.verify(total)
		}
	}
}
