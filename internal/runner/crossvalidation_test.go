package runner

import (
	"testing"
	"time"

	"clockrsm/internal/analysis"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// TestSimulatorMatchesAnalyticModel drives every protocol on the
// simulator over the paper's five-site placement under the imbalanced
// moderate workload (where Section IV gives a closed-form prediction
// for every protocol) and checks each serving replica's mean latency
// against Table II. This ties the three independent artifacts together:
// the protocol implementations, the simulator, and the analytic model.
func TestSimulatorMatchesAnalyticModel(t *testing.T) {
	sites := FiveSites()
	m := wan.EC2Matrix(sites)
	leader := SiteIndex(sites, wan.CA)
	tol := 8 * time.Millisecond

	predict := func(p Protocol, i types.ReplicaID) time.Duration {
		switch p {
		case ClockRSM:
			return analysis.ClockRSMImbalanced(m, i)
		case Paxos:
			return analysis.Paxos(m, i, types.ReplicaID(leader))
		case PaxosBcast:
			return analysis.PaxosBcast(m, i, types.ReplicaID(leader))
		case MenciusBcast:
			return analysis.MenciusBcastImbalanced(m, i)
		}
		return 0
	}

	for _, p := range AllProtocols() {
		for i := range sites {
			res, err := RunLatency(LatencyConfig{
				Sites:             sites,
				Protocol:          p,
				Leader:            leader,
				OnlyReplica:       i,
				ClientsPerReplica: 8,
				Duration:          8 * time.Second,
				Seed:              5,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Samples[i].Mean()
			want := predict(p, types.ReplicaID(i))
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			if diff > tol {
				t.Errorf("%v at %v: simulated %v vs analytic %v (Δ %v)",
					p, sites[i], got, want, diff)
			}
		}
	}
}

// TestMenciusBalancedWithinPaperBounds checks Section IV-C's balanced
// claim on the simulator: Mencius-bcast's latency at every replica lies
// in [q, q+max] where q is Clock-RSM's balanced latency.
func TestMenciusBalancedWithinPaperBounds(t *testing.T) {
	sites := FiveSites()
	m := wan.EC2Matrix(sites)
	res, err := RunLatency(LatencyConfig{
		Sites:             sites,
		Protocol:          MenciusBcast,
		OnlyReplica:       -1,
		ClientsPerReplica: 10,
		Duration:          10 * time.Second,
		Seed:              9,
		Jitter:            time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	slack := 10 * time.Millisecond
	for i := range sites {
		lo, hi := analysis.MenciusBcastBalancedBounds(m, types.ReplicaID(i))
		// q itself is a worst-case Clock-RSM figure; Mencius can dip
		// slightly below when prefix conditions resolve early, so allow
		// the imbalanced floor as the true lower bound.
		floor := analysis.ClockRSMImbalanced(m, types.ReplicaID(i))
		if floor > lo {
			floor = lo
		}
		mean := res.Samples[i].Mean()
		p95 := res.Samples[i].P95()
		if mean < floor-slack || mean > hi+slack {
			t.Errorf("%v: Mencius-bcast mean %v outside [%v, %v]", sites[i], mean, floor, hi)
		}
		if p95 > hi+slack {
			t.Errorf("%v: Mencius-bcast p95 %v above q+max %v", sites[i], p95, hi)
		}
	}
}
