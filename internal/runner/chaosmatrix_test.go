package runner

import (
	"testing"
	"time"
)

// TestChaosMatrix runs the fault-injection matrix: every built-in
// scenario in full mode, a representative one-per-layer subset under
// -short. The fixed seed keeps randomized schedules (none in the
// built-in matrix today) replayable; the assertions — linearizability
// under faults, zero lost acks, zero duplicate executions, bounded
// recovery, non-zero injection counters — live in RunChaosMatrix.
func TestChaosMatrix(t *testing.T) {
	cfg := ChaosMatrixConfig{
		Dir:   t.TempDir(),
		Debug: t.Logf,
	}
	if testing.Short() {
		cfg.Scenarios = []string{"clock-jump", "partition-oneway", "slow-disk"}
	}
	res, err := RunChaosMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(DefaultScenarios(3, 350*time.Millisecond))
	if testing.Short() {
		want = len(cfg.Scenarios)
	}
	if len(res.Scenarios) != want {
		t.Fatalf("ran %d scenarios, want %d", len(res.Scenarios), want)
	}
	for _, sr := range res.Scenarios {
		if sr.Acked == 0 {
			t.Errorf("scenario %q acked no writes", sr.Name)
		}
		if len(sr.Faults) == 0 {
			t.Errorf("scenario %q reported no injected faults", sr.Name)
		}
		t.Logf("%-18s acked=%-5d resubmitted=%-4d reads=%-4d recovery=%-12v faults=%v",
			sr.Name, sr.Acked, sr.Resubmitted, sr.Reads, sr.Recovery, sr.Faults)
	}
}
