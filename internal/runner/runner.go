// Package runner is the experiment harness: it assembles a protocol, a
// workload and a (simulated or real) cluster for each table and figure
// of the paper's evaluation (Section VI) and returns the statistics the
// paper reports.
package runner

import (
	"fmt"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/mencius"
	"clockrsm/internal/paxos"
	"clockrsm/internal/rsm"
	"clockrsm/internal/sim"
	"clockrsm/internal/stats"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
	"clockrsm/internal/workload"
)

// Protocol selects the replication protocol under test.
type Protocol string

// Protocols evaluated in the paper.
const (
	ClockRSM     Protocol = "Clock-RSM"
	Paxos        Protocol = "Paxos"
	PaxosBcast   Protocol = "Paxos-bcast"
	MenciusBcast Protocol = "Mencius-bcast"
)

// AllProtocols lists the four protocols in the paper's legend order.
func AllProtocols() []Protocol {
	return []Protocol{Paxos, MenciusBcast, PaxosBcast, ClockRSM}
}

// LatencyConfig describes one latency experiment run.
type LatencyConfig struct {
	// Sites places replica k at Sites[k] (latencies from Table III).
	Sites []wan.Site
	// Protocol is the replication protocol under test.
	Protocol Protocol
	// Leader indexes Sites; used by Paxos and Paxos-bcast.
	Leader int
	// ClientsPerReplica is the closed-loop client count per serving
	// replica (the paper uses 40).
	ClientsPerReplica int
	// OnlyReplica, when ≥ 0, makes the workload imbalanced: only that
	// replica serves clients.
	OnlyReplica int
	// ThinkMax is the client think-time bound (paper: 80 ms).
	ThinkMax time.Duration
	// PayloadSize is the update value size (paper: 64 B).
	PayloadSize int
	// Delta is Clock-RSM's CLOCKTIME interval (paper: 5 ms).
	Delta time.Duration
	// Warmup discards samples before this virtual time.
	Warmup time.Duration
	// Duration is the total virtual run time.
	Duration time.Duration
	// Seed drives all simulation randomness.
	Seed int64
	// Jitter adds uniform per-message delay in [0, Jitter).
	Jitter time.Duration
}

// withDefaults fills the paper's parameters for unset fields.
func (c LatencyConfig) withDefaults() LatencyConfig {
	if c.ClientsPerReplica == 0 {
		c.ClientsPerReplica = 40
	}
	if c.ThinkMax == 0 {
		c.ThinkMax = 80 * time.Millisecond
	}
	if c.PayloadSize == 0 {
		c.PayloadSize = 64
	}
	if c.Delta == 0 {
		c.Delta = 5 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = c.Duration / 10
	}
	return c
}

// LatencyResult holds per-replica commit latency samples, indexed like
// the configuration's Sites.
type LatencyResult struct {
	Sites   []wan.Site
	Samples []*stats.Sample
}

// newProtocol constructs the protocol instance for one replica.
func newProtocol(p Protocol, env rsm.Env, app *rsm.App, leader types.ReplicaID, delta time.Duration) (rsm.Protocol, error) {
	switch p {
	case ClockRSM:
		return core.New(env, app, core.Options{ClockTimeInterval: delta}), nil
	case Paxos:
		return paxos.New(env, app, paxos.Options{Leader: leader}), nil
	case PaxosBcast:
		return paxos.New(env, app, paxos.Options{Leader: leader, Broadcast: true}), nil
	case MenciusBcast:
		return mencius.New(env, app), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", p)
	}
}

// RunLatency executes one latency experiment on the simulator and
// returns per-replica client latency statistics.
func RunLatency(cfg LatencyConfig) (*LatencyResult, error) {
	cfg = cfg.withDefaults()
	n := len(cfg.Sites)
	cluster := sim.NewCluster(wan.EC2Matrix(cfg.Sites), sim.ClusterOptions{
		Seed:   cfg.Seed,
		Jitter: cfg.Jitter,
	})
	pool := workload.NewPool(cluster.Eng, cfg.Seed+1, workload.PoolOptions{
		ThinkMax:    cfg.ThinkMax,
		PayloadSize: cfg.PayloadSize,
		Warmup:      cfg.Warmup,
	})

	for i := 0; i < n; i++ {
		rep := cluster.Replicas[i]
		app := &rsm.App{
			SM:      kvstore.New(),
			OnReply: pool.OnReply,
		}
		proto, err := newProtocol(cfg.Protocol, rep, app, types.ReplicaID(cfg.Leader), cfg.Delta)
		if err != nil {
			return nil, err
		}
		rep.SetProtocol(proto)
	}
	cluster.Start()

	for i := 0; i < n; i++ {
		if cfg.OnlyReplica >= 0 && i != cfg.OnlyReplica {
			continue
		}
		id := types.ReplicaID(i)
		rep := cluster.Replicas[i]
		pool.AttachClients(id, cfg.ClientsPerReplica, rep.Submit)
	}

	cluster.Eng.RunUntil(cfg.Duration)

	res := &LatencyResult{Sites: cfg.Sites}
	for i := 0; i < n; i++ {
		res.Samples = append(res.Samples, pool.Sample(types.ReplicaID(i)))
	}
	return res, nil
}

// FiveSites is the paper's five-replica placement (Section VI-B).
func FiveSites() []wan.Site {
	return []wan.Site{wan.CA, wan.VA, wan.IR, wan.JP, wan.SG}
}

// ThreeSites is the paper's three-replica placement.
func ThreeSites() []wan.Site {
	return []wan.Site{wan.CA, wan.VA, wan.IR}
}

// SiteIndex locates a site within a placement.
func SiteIndex(sites []wan.Site, s wan.Site) int {
	for i, v := range sites {
		if v == s {
			return i
		}
	}
	return -1
}

// Bar is one bar of a latency figure: a protocol's mean and 95th
// percentile commit latency at one replica.
type Bar struct {
	Site     wan.Site
	Protocol Protocol
	Mean     time.Duration
	P95      time.Duration
	Count    int
}

// FigureOptions scale the experiments: tests use shorter runs and fewer
// clients; cmd/rsmbench uses the paper's parameters.
type FigureOptions struct {
	ClientsPerReplica int
	Duration          time.Duration
	Seed              int64
	Jitter            time.Duration
}

// barsFor runs every protocol over the placement and flattens the
// per-replica statistics, the layout of Figures 1, 2 and 5.
func barsFor(sites []wan.Site, leader wan.Site, imbalancedAt int, opts FigureOptions) ([]Bar, error) {
	var bars []Bar
	for _, p := range AllProtocols() {
		cfg := LatencyConfig{
			Sites:             sites,
			Protocol:          p,
			Leader:            SiteIndex(sites, leader),
			OnlyReplica:       imbalancedAt,
			ClientsPerReplica: opts.ClientsPerReplica,
			Duration:          opts.Duration,
			Seed:              opts.Seed,
			Jitter:            opts.Jitter,
		}
		res, err := RunLatency(cfg)
		if err != nil {
			return nil, err
		}
		for i, site := range sites {
			if imbalancedAt >= 0 && i != imbalancedAt {
				continue
			}
			s := res.Samples[i]
			bars = append(bars, Bar{
				Site: site, Protocol: p,
				Mean: s.Mean(), P95: s.P95(), Count: s.Count(),
			})
		}
	}
	return bars, nil
}

// Figure1 reproduces Figure 1: average and 95th-percentile commit
// latency at each of five replicas under balanced workloads, with the
// Paxos leader at the given site (CA for 1a, VA for 1b).
func Figure1(leader wan.Site, opts FigureOptions) ([]Bar, error) {
	return barsFor(FiveSites(), leader, -1, opts)
}

// Figure2 reproduces Figure 2: three replicas, balanced workload,
// leader at CA (2a) or VA (2b).
func Figure2(leader wan.Site, opts FigureOptions) ([]Bar, error) {
	return barsFor(ThreeSites(), leader, -1, opts)
}

// CDFSeries is a protocol's latency distribution at one replica.
type CDFSeries struct {
	Protocol Protocol
	Points   []stats.CDFPoint
}

// cdfAt runs every protocol and extracts the latency CDF observed at
// one site.
func cdfAt(sites []wan.Site, leader wan.Site, at wan.Site, imbalancedAt int, points int, opts FigureOptions) ([]CDFSeries, error) {
	var out []CDFSeries
	for _, p := range AllProtocols() {
		cfg := LatencyConfig{
			Sites:             sites,
			Protocol:          p,
			Leader:            SiteIndex(sites, leader),
			OnlyReplica:       imbalancedAt,
			ClientsPerReplica: opts.ClientsPerReplica,
			Duration:          opts.Duration,
			Seed:              opts.Seed,
			Jitter:            opts.Jitter,
		}
		res, err := RunLatency(cfg)
		if err != nil {
			return nil, err
		}
		s := res.Samples[SiteIndex(sites, at)]
		out = append(out, CDFSeries{Protocol: p, Points: s.CDF(points)})
	}
	return out, nil
}

// Figure3 reproduces Figure 3: the latency distribution at JP with five
// replicas, leader at CA, balanced workload.
func Figure3(opts FigureOptions) ([]CDFSeries, error) {
	return cdfAt(FiveSites(), wan.CA, wan.JP, -1, 50, opts)
}

// Figure4 reproduces Figure 4: the latency distribution at CA with
// three replicas, leader at VA, balanced workload.
func Figure4(opts FigureOptions) ([]CDFSeries, error) {
	return cdfAt(ThreeSites(), wan.VA, wan.CA, -1, 50, opts)
}

// Figure5 reproduces Figure 5: imbalanced workloads over five replicas
// with the Paxos leader at CA. Each bar comes from a separate run in
// which only that replica serves clients.
func Figure5(opts FigureOptions) ([]Bar, error) {
	sites := FiveSites()
	var bars []Bar
	for i := range sites {
		b, err := barsFor(sites, wan.CA, i, opts)
		if err != nil {
			return nil, err
		}
		bars = append(bars, b...)
	}
	return bars, nil
}

// Figure6 reproduces Figure 6: the latency distribution at SG with five
// replicas under the imbalanced workload (only SG serves), leader at CA.
func Figure6(opts FigureOptions) ([]CDFSeries, error) {
	sites := FiveSites()
	return cdfAt(sites, wan.CA, wan.SG, SiteIndex(sites, wan.SG), 50, opts)
}
