package runner

import (
	"testing"
	"time"
)

// TestCrashChurn is the crash-churn scenario of Section V-B asserted
// end to end: three replicas over TCP and group-commit file logs, three
// crash+restart cycles under closed-loop load, zero lost acked
// commands, cross-replica agreement, per-key linearizable reads over
// survivors, and checkpoint + tail catch-up on every restart.
func TestCrashChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("crash churn runs multi-second kill/restart cycles")
	}
	res, err := RunCrashChurn(CrashChurnConfig{
		Dir:    t.TempDir(),
		Cycles: 3,
		Debug:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills != 3 {
		t.Errorf("Kills = %d, want 3", res.Kills)
	}
	if res.Acked == 0 {
		t.Error("no writes were acked; the run exercised nothing")
	}
	if res.Reads == 0 {
		t.Error("no linearizable reads completed; the run checked nothing")
	}
	if res.SnapRestores < 3 {
		t.Errorf("SnapRestores = %d, want at least one per restart (3)", res.SnapRestores)
	}
	if res.MaxRecovery <= 0 || res.MaxRecovery > 15*time.Second {
		t.Errorf("MaxRecovery = %v, want within (0, 15s]", res.MaxRecovery)
	}
	t.Logf("acked=%d resubmitted=%d reads=%d snap_restores=%d max_recovery=%v",
		res.Acked, res.Resubmitted, res.Reads, res.SnapRestores, res.MaxRecovery)
}
