package runner

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/client"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rpc"
	"clockrsm/internal/rsm"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// FrontDoorMode selects which client protocol a front-door run drives.
type FrontDoorMode string

const (
	// FrontDoorRPC drives the multiplexed binary front door through the
	// client package: many pipelined requests share one connection.
	FrontDoorRPC FrontDoorMode = "rpc"
	// FrontDoorLine drives the legacy line protocol: one request in
	// flight per connection, strict write-then-read.
	FrontDoorLine FrontDoorMode = "line"
)

// FrontDoorConfig describes one front-door throughput experiment: a
// local Clock-RSM cluster (in-process replication transport, real CPU
// cost) fronted by real TCP listeners, saturated by closed-loop
// writers over the chosen client protocol. It measures what the
// BENCH_8 acceptance gate needs: committed client commands per second
// as a function of protocol, connection count and pipeline window.
type FrontDoorConfig struct {
	Replicas int
	Mode     FrontDoorMode
	// Conns is the number of front-door connections, all to replica 0
	// so the two modes compare one server's front door. Default 1.
	Conns int
	// Window is the per-connection pipeline depth (RPC mode only): each
	// connection runs this many closed-loop workers sharing it. The
	// line protocol's window is structurally 1. Default 32.
	Window      int
	PayloadSize int
	// ReplicaDelay, when positive, emulates a WAN between the replicas:
	// every replication message is delayed by this one-way latency
	// (wan.Uniform over the hub). Commit latency then costs what it
	// costs in the paper's geo-replicated setting, which is the regime
	// the front-door comparison is about — a ping-pong protocol pays
	// that latency per command, a pipelined one amortizes it across the
	// window. Zero keeps the links instant (the CPU-bound local run).
	ReplicaDelay time.Duration
	Warmup       time.Duration
	Duration     time.Duration
}

func (c FrontDoorConfig) withDefaults() FrontDoorConfig {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Mode == "" {
		c.Mode = FrontDoorRPC
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.PayloadSize == 0 {
		c.PayloadSize = 100
	}
	if c.Warmup == 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	return c
}

// FrontDoorResult reports one front-door measurement.
type FrontDoorResult struct {
	Mode  FrontDoorMode
	Conns int
	// Window is the per-connection pipeline depth (1 in line mode).
	Window int
	// Clients is the number of concurrent closed-loop requesters:
	// Conns × Window. Equal-client comparisons across modes hold this
	// equal, not Conns.
	Clients int
	// ReplicaDelay is the emulated one-way replica link latency the run
	// used (0 = instant links).
	ReplicaDelay time.Duration
	OpsPerSec    float64
}

// lineServer is a minimal legacy-shaped line-protocol server over one
// host: bufio scanner in, one "OK ..." line out per request, every
// data verb replicated through the log. It exists so the line baseline
// in the front-door benchmark exercises the same request shape
// cmd/kvserver serves, without importing a package main.
type lineServer struct {
	host *node.Host
	ln   net.Listener
	mu   sync.Mutex
	conn map[net.Conn]struct{}
	wg   sync.WaitGroup
}

func newLineServer(host *node.Host, ln net.Listener) *lineServer {
	s := &lineServer{host: host, ln: ln, conn: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conn[c] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serve(c)
		}
	}()
	return s
}

func (s *lineServer) serve(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conn, c)
		s.mu.Unlock()
		c.Close()
	}()
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	w := bufio.NewWriter(c)
	ctx := context.Background()
	for sc.Scan() {
		verb, rest, _ := strings.Cut(sc.Text(), " ")
		key, val, _ := strings.Cut(rest, " ")
		var payload []byte
		switch verb {
		case "PUT":
			payload = kvstore.Put(key, []byte(val))
		case "GET":
			payload = kvstore.Get(key)
		case "DEL":
			payload = kvstore.Delete(key)
		default:
			fmt.Fprintf(w, "ERR unknown verb %q\n", verb)
			w.Flush()
			continue
		}
		fut, err := s.host.ProposeKey(ctx, key, payload)
		if err == nil {
			_, err = fut.Result()
		}
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
		} else {
			fmt.Fprintln(w, "OK")
		}
		w.Flush()
	}
}

func (s *lineServer) Close() {
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conn {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// RunFrontDoor measures committed commands per second through a real
// TCP front door in the configured mode.
func RunFrontDoor(cfg FrontDoorConfig) (*FrontDoorResult, error) {
	cfg = cfg.withDefaults()
	n := cfg.Replicas

	// Replication over the in-process hub with the codec on (real
	// message-processing CPU cost), front doors on real TCP.
	hubOpts := transport.HubOptions{Codec: true}
	if cfg.ReplicaDelay > 0 {
		hubOpts.Latency = wan.Uniform(n, cfg.ReplicaDelay)
	}
	hub := transport.NewHub(n, hubOpts)
	defer hub.Close()
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	hosts := make([]*node.Host, n)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		host, err := node.NewHost(id, spec, hub.Endpoint(id), node.HostOptions{
			NewLog: func(types.GroupID) storage.Log { return storage.NewNullLog() },
		})
		if err != nil {
			return nil, err
		}
		app := &rsm.App{SM: kvstore.New()}
		nd := host.Group(0)
		nd.Bind(app)
		proto, err := newProtocol(ClockRSM, nd, app, 0, 5*time.Millisecond)
		if err != nil {
			return nil, err
		}
		nd.SetProtocol(proto)
		hosts[i] = host
	}
	for _, host := range hosts {
		if err := host.Start(); err != nil {
			return nil, fmt.Errorf("start host: %w", err)
		}
	}
	defer func() {
		for _, host := range hosts {
			host.Stop()
		}
	}()

	// One front door per replica, as deployed; all load targets
	// replica 0's so both modes measure a single server's door.
	var addr string
	switch cfg.Mode {
	case FrontDoorRPC:
		for i := 0; i < n; i++ {
			srv := rpc.NewServer(hosts[i], rpc.ServerOptions{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				srv.Close()
				return nil, err
			}
			go srv.Serve(ln)
			defer srv.Close()
			if i == 0 {
				addr = ln.Addr().String()
			}
		}
	case FrontDoorLine:
		for i := 0; i < n; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			srv := newLineServer(hosts[i], ln)
			defer srv.Close()
			if i == 0 {
				addr = ln.Addr().String()
			}
		}
	default:
		return nil, fmt.Errorf("front door: unknown mode %q", cfg.Mode)
	}

	var completed atomic.Uint64
	var measuring atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	window := cfg.Window
	if cfg.Mode == FrontDoorLine {
		window = 1 // structural: one in-flight request per connection
	}

	value := bytes.Repeat([]byte("x"), cfg.PayloadSize)
	switch cfg.Mode {
	case FrontDoorRPC:
		ctx := context.Background()
		for i := 0; i < cfg.Conns; i++ {
			c, err := client.Dial(client.Config{Addrs: []string{addr}, Window: window})
			if err != nil {
				close(stop)
				return nil, err
			}
			defer c.Close()
			for j := 0; j < window; j++ {
				wg.Add(1)
				go func(conn, worker int) {
					defer wg.Done()
					key := fmt.Sprintf("fd-%d-%d", conn, worker)
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := c.Put(ctx, key, value); err != nil {
							return
						}
						if measuring.Load() {
							completed.Add(1)
						}
					}
				}(i, j)
			}
		}
	case FrontDoorLine:
		for i := 0; i < cfg.Conns; i++ {
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				close(stop)
				return nil, err
			}
			defer conn.Close()
			wg.Add(1)
			go func(cli int, conn net.Conn) {
				defer wg.Done()
				r := bufio.NewReader(conn)
				line := fmt.Sprintf("PUT fd-%d %s\n", cli, value)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := fmt.Fprint(conn, line); err != nil {
						return
					}
					resp, err := r.ReadString('\n')
					if err != nil || !strings.HasPrefix(resp, "OK") {
						return
					}
					if measuring.Load() {
						completed.Add(1)
					}
				}
			}(i, conn)
		}
	}

	time.Sleep(cfg.Warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	return &FrontDoorResult{
		Mode:         cfg.Mode,
		Conns:        cfg.Conns,
		Window:       window,
		Clients:      cfg.Conns * window,
		ReplicaDelay: cfg.ReplicaDelay,
		OpsPerSec:    float64(completed.Load()) / elapsed.Seconds(),
	}, nil
}
