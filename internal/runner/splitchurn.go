package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/reshard"
	"clockrsm/internal/rsm"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// SplitChurnConfig describes a split-churn experiment: a multi-group
// cluster over real TCP transports and real file logs serving a
// closed-loop client population while the key space is resharded live —
// first by a coordinator that crashes between its checkpoint and the
// ownership flip (healed by racing coordinators on other replicas),
// then by a clean split — with per-key linearizability asserted across
// the split boundary throughout.
type SplitChurnConfig struct {
	// Dir is where replica logs and routing tables live (required;
	// group g of replica r is Dir/r<r>.g<g>.log, its routing table
	// Dir/r<r>.routes).
	Dir string
	// Replicas is the cluster size (default 3).
	Replicas int
	// Groups is the number of groups the genesis routing table routes to
	// (default 2).
	Groups int
	// Spares is the extra hosted capacity splits grow into (default 2:
	// one target for the crash-healed split, one for the clean split).
	Spares int
	// Clients is the closed-loop writer count (default 6; rounded up to
	// a multiple of 3 so every key category — staying slot, migrating
	// slot, other group — sees load).
	Clients int
	// Settle is how long load runs between resharding steps (default
	// 250 ms).
	Settle time.Duration
	// StepTimeout bounds each proposal and read wait (default 20 s; it
	// must cover the fence-to-heal window, during which writes to
	// migrating keys park).
	StepTimeout time.Duration
	// ConvergeTimeout bounds the waits for routing tables and stores to
	// converge across replicas (default 15 s).
	ConvergeTimeout time.Duration
	// Mode is the WAL fsync mode (default storage.SyncBatch).
	Mode storage.SyncMode
	// CheckpointEvery is the snapshot/compaction interval in commands
	// (default 16).
	CheckpointEvery int
	// Delta is the CLOCKTIME interval (default 2 ms).
	Delta time.Duration
	// Debug, when set, receives progress lines (testing.T.Logf fits).
	Debug func(format string, args ...any)
}

func (c SplitChurnConfig) withDefaults() SplitChurnConfig {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Groups <= 0 {
		c.Groups = 2
	}
	if c.Spares <= 0 {
		c.Spares = 2
	}
	if c.Clients == 0 {
		c.Clients = 6
	}
	if r := c.Clients % 3; r != 0 {
		c.Clients += 3 - r
	}
	if c.Settle == 0 {
		c.Settle = 250 * time.Millisecond
	}
	if c.StepTimeout == 0 {
		c.StepTimeout = 20 * time.Second
	}
	if c.ConvergeTimeout == 0 {
		c.ConvergeTimeout = 15 * time.Second
	}
	if c.Mode == storage.SyncDefault {
		c.Mode = storage.SyncBatch
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 16
	}
	if c.Delta == 0 {
		c.Delta = 2 * time.Millisecond
	}
	return c
}

// SplitChurnResult reports one split-churn run that passed all
// correctness assertions.
type SplitChurnResult struct {
	// Acked is the number of writes whose futures resolved.
	Acked uint64
	// Resubmitted counts proposals retried after an ambiguous failure.
	Resubmitted uint64
	// Reads is the number of linearizable cross-replica reads that
	// checked acked writes stayed visible across the split boundary.
	Reads uint64
	// Splits is the number of completed splits (including the healed
	// one).
	Splits int
	// HealedSlots is the number of slots the racing Heal calls rolled
	// forward after the coordinator crash.
	HealedSlots int
	// MovedPairs is the total key/value pairs seeded into split targets.
	MovedPairs int
	// RouteVersion is the highest routing-table version any replica
	// reached.
	RouteVersion uint64
	// FenceStall is the longest observed write stall attributable to the
	// fence-to-heal window.
	FenceStall time.Duration
}

// splitKeyFor finds a key whose slot falls in the wanted category under
// the genesis table: 0 = source-group slot that stays, 1 = source-group
// slot the first split moves, 2 = any other group. Categories are
// derived from the same PlanSplit the coordinator will run, so the
// client population provably covers both sides of the boundary.
func splitKeyFor(tbl *reshard.Table, moved map[int]bool, cli, cat int) string {
	for salt := 0; ; salt++ {
		key := fmt.Sprintf("c%d-%d", cli, salt)
		slot := tbl.SlotOf(key)
		owner := tbl.Slots[slot].Owner
		switch cat {
		case 0:
			if owner == 0 && !moved[slot] {
				return key
			}
		case 1:
			if moved[slot] {
				return key
			}
		default:
			if owner != 0 {
				return key
			}
		}
	}
}

// RunSplitChurn stands up a Replicas×(Groups+Spares) cluster over TCP
// and file logs with Groups active groups, then — under closed-loop
// load — drives two live splits of group 0 and group 1 into the spare
// groups. The first split's coordinator is killed between its
// checkpoint and the ownership flip (OnPhase abort: the coordinator
// holds no state of its own, so an abort models a process death
// exactly); two racing coordinators on other replicas then Heal
// concurrently. It verifies:
//
//   - zero lost acked commands: for every key, the converged value's
//     sequence number is at least the last acked write's — including
//     keys whose slots migrated mid-run;
//   - no duplicated execution: a fenced command is never applied, so
//     the per-key sequence read back never regresses (a stale
//     re-execution would);
//   - per-key linearizability across the split boundary: a
//     linearizable read at another replica observes every write acked
//     before it was issued, before, during and after migration;
//   - exactly one routing outcome: however many coordinators raced the
//     heal, every replica's table converges to the same claims, with
//     every moved slot Owned by its target at the planned generation;
//   - agreement: every replica's store serializes to identical bytes,
//     group by group, and the routing tables persisted to disk reload.
func RunSplitChurn(cfg SplitChurnConfig) (*SplitChurnResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("runner: SplitChurnConfig.Dir is required")
	}
	debugf := func(format string, args ...any) {
		if cfg.Debug != nil {
			cfg.Debug(format, args...)
		}
	}
	n := cfg.Replicas
	hosted := cfg.Groups + cfg.Spares
	addrs, err := freeAddrs(n)
	if err != nil {
		return nil, err
	}
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}

	// The genesis table and the first split's plan, computed up front so
	// client keys can be placed on both sides of the boundary. PlanSplit
	// is deterministic over the same table, so this matches exactly what
	// the coordinator will fence.
	genesis := reshard.Legacy(cfg.Groups)
	dst1 := types.GroupID(cfg.Groups)
	planned, gen1, err := genesis.PlanSplit(0, dst1)
	if err != nil {
		return nil, err
	}
	moved := make(map[int]bool, len(planned))
	for _, s := range planned {
		moved[int(s)] = true
	}

	start := func(id types.ReplicaID) (*liveReplica, error) {
		logs := make([]storage.Log, hosted)
		for g := 0; g < hosted; g++ {
			path := filepath.Join(cfg.Dir, fmt.Sprintf("r%d.g%d.log", id, g))
			fl, err := storage.OpenFileLog(path, storage.FileLogOptions{Mode: cfg.Mode})
			if err != nil {
				return nil, fmt.Errorf("replica %v: %w", id, err)
			}
			logs[g] = fl
		}
		tr := transport.NewTCP(id, addrs, transport.TCPOptions{
			Groups:    hosted,
			DialRetry: 50 * time.Millisecond,
		})
		host, err := node.NewHost(id, spec, tr, node.HostOptions{
			Groups:     hosted,
			NewLog:     func(g types.GroupID) storage.Log { return logs[g] },
			Table:      genesis,
			RoutesPath: filepath.Join(cfg.Dir, fmt.Sprintf("r%d.routes", id)),
		})
		if err != nil {
			return nil, err
		}
		lr := &liveReplica{host: host, stores: make([]*kvstore.Store, hosted)}
		for g := 0; g < hosted; g++ {
			store := kvstore.New()
			lr.stores[g] = store
			app := &rsm.App{SM: store}
			nd := host.Group(types.GroupID(g))
			host.Bind(types.GroupID(g), app)
			nd.SetProtocol(core.New(nd, app, core.Options{
				ClockTimeInterval: cfg.Delta,
				CheckpointEvery:   cfg.CheckpointEvery,
			}))
		}
		if err := host.Start(); err != nil {
			return nil, err
		}
		return lr, nil
	}

	reps := make([]*liveReplica, n)
	for i := 0; i < n; i++ {
		lr, err := start(types.ReplicaID(i))
		if err != nil {
			for j := 0; j < i; j++ {
				reps[j].host.Stop()
			}
			return nil, err
		}
		reps[i] = lr
	}
	defer func() {
		for _, lr := range reps {
			lr.host.Stop()
		}
	}()

	// acks tracks, per key, the highest acked sequence number — the
	// writes the run must prove survived the splits.
	acks := struct {
		sync.Mutex
		last map[string]int
	}{last: make(map[string]int)}
	lastAcked := func(key string) int {
		acks.Lock()
		defer acks.Unlock()
		if s, ok := acks.last[key]; ok {
			return s
		}
		return -1
	}

	res := &SplitChurnResult{}
	var ackedN, resubmitted, readsN atomic.Uint64
	var maxStall atomic.Int64

	stop := make(chan struct{})
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	clientKeys := make([]string, cfg.Clients)
	for c := range clientKeys {
		clientKeys[c] = splitKeyFor(genesis, moved, c, c%3)
	}
	var wg sync.WaitGroup
	clientErrs := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := clientKeys[c]
			for seq := 0; !stopped(); seq++ {
				payload := kvstore.Put(key, []byte(fmt.Sprintf("c%d-%d", c, seq)))
				// Execute routes by the live table and retries through the
				// fence window itself; resubmitting the same payload after a
				// timeout can at worst commit the same value twice in a row,
				// which the monotone per-key sequence checks tolerate.
				issued := time.Now()
				for !stopped() {
					target := reps[c%n]
					ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
					_, err := target.host.Execute(ctx, key, payload)
					cancel()
					if err == nil {
						acks.Lock()
						acks.last[key] = seq
						acks.Unlock()
						ackedN.Add(1)
						if d := time.Since(issued); d > time.Duration(maxStall.Load()) {
							maxStall.Store(int64(d))
						}
						break
					}
					resubmitted.Add(1)
				}
				// Every few acked writes, check per-key linearizability from
				// a different replica: a linearizable read must observe
				// everything acked before it was issued — the property the
				// split must preserve across the boundary.
				if seq%4 != 3 || stopped() {
					continue
				}
				floor := lastAcked(key)
				if floor < 0 {
					continue
				}
				rd := reps[(c+1)%n]
				ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
				rres, err := rd.host.ReadKey(ctx, key, kvstore.Get(key), node.Linearizable)
				cancel()
				switch {
				case err == nil:
					got, perr := parseSeq(rres.Value)
					if perr != nil || got < floor {
						clientErrs[c] = fmt.Errorf("client %d: linearizable read of %q at %v returned seq %d (%v), but seq %d was acked before the read",
							c, key, rd.host.ID(), got, perr, floor)
						return
					}
					readsN.Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, node.ErrStopped):
					// Mid-migration stall that outlived the bound; the next
					// read will check the floor.
				default:
					clientErrs[c] = fmt.Errorf("client %d: read of %q: %w", c, key, err)
					return
				}
			}
		}(c)
	}

	churnErr := func() error {
		// Seed enough keys into the migrating range that the install
		// phase needs multiple chunks — the checkpoint must carry every
		// one of them across.
		seeded := 0
		for salt := 0; seeded < 2*reshard.DefaultChunkPairs; salt++ {
			key := fmt.Sprintf("seed-%d", salt)
			if !moved[genesis.SlotOf(key)] {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
			_, err := reps[0].host.Execute(ctx, key, kvstore.Put(key, []byte(key)))
			cancel()
			if err != nil {
				return fmt.Errorf("seed %q: %w", key, err)
			}
			seeded++
		}
		debugf("seeded %d keys into the migrating range", seeded)
		time.Sleep(cfg.Settle)

		// Split 1, coordinator crash: the coordinator on replica 0
		// fences and checkpoints, then dies before proposing a single
		// install — the moved slots are frozen with no new owner.
		co := reps[0].host.Coordinator()
		crashed := errors.New("coordinator crashed")
		co.OnPhase = func(phase string) error {
			debugf("split g0->g%d phase %s", dst1, phase)
			if phase == reshard.PhaseInstall {
				return crashed
			}
			return nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
		_, err := co.Split(ctx, 0, dst1)
		cancel()
		if !errors.Is(err, crashed) {
			return fmt.Errorf("crash-injected split returned %v, want the injected crash", err)
		}

		// The fence replicated through group 0's log, so every replica's
		// table learns the migration; wait for the healers to see it.
		deadline := time.Now().Add(cfg.ConvergeTimeout)
		for i := 1; i < n; i++ {
			for len(reps[i].host.Table().Migrations()) != len(planned) {
				if time.Now().After(deadline) {
					return fmt.Errorf("replica %d never observed the fence (table %v)", i, reps[i].host.Table())
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		debugf("fence visible cluster-wide; %d slots frozen", len(planned))
		time.Sleep(cfg.Settle / 4)

		// Heal from two replicas concurrently: racing coordinators must
		// converge on exactly one routing outcome (generation-checked
		// installs make the duplicate a no-op).
		healErrs := make([]error, 2)
		healReps := make([][]*reshard.SplitReport, 2)
		var healWG sync.WaitGroup
		for i := 0; i < 2; i++ {
			healWG.Add(1)
			go func(i int) {
				defer healWG.Done()
				hctx, hcancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
				defer hcancel()
				healReps[i], healErrs[i] = reps[i+1].host.Heal(hctx)
			}(i)
		}
		healWG.Wait()
		for i, err := range healErrs {
			if err != nil {
				return fmt.Errorf("heal on replica %d: %w", i+1, err)
			}
		}
		healed := 0
		for i, rs := range healReps {
			for _, r := range rs {
				debugf("heal on replica %d rolled forward %v->%v gen=%d slots=%d pairs=%d",
					i+1, r.From, r.To, r.Gen, r.Slots, r.Pairs)
				healed += r.Slots
				res.MovedPairs += r.Pairs
			}
		}
		if healed < len(planned) {
			return fmt.Errorf("heals rolled forward %d slots, want at least the %d frozen", healed, len(planned))
		}
		res.HealedSlots = healed
		res.Splits++

		// Exactly one routing outcome: every replica's claims converge,
		// every planned slot Owned by the target at the planned
		// generation.
		if err := waitTables(reps, planned, dst1, gen1, cfg.ConvergeTimeout); err != nil {
			return err
		}
		debugf("healed split converged: %v", reps[0].host.Table())
		time.Sleep(cfg.Settle)

		// Split 2, clean: a second coordinator splits group 1 into the
		// next spare under the same load, no crash.
		dst2 := types.GroupID(cfg.Groups + 1)
		if int(dst2) < hosted {
			plan2, gen2, err := reps[1].host.Table().PlanSplit(1, dst2)
			if err != nil {
				return err
			}
			sctx, scancel := context.WithTimeout(context.Background(), cfg.StepTimeout)
			rep, err := reps[1].host.Split(sctx, 1, dst2)
			scancel()
			if err != nil {
				return fmt.Errorf("clean split g1->g%d: %w", dst2, err)
			}
			debugf("clean split %v->%v gen=%d slots=%d pairs=%d chunks=%d",
				rep.From, rep.To, rep.Gen, rep.Slots, rep.Pairs, rep.Chunks)
			if rep.Slots != len(plan2) {
				return fmt.Errorf("clean split moved %d slots, planned %d", rep.Slots, len(plan2))
			}
			res.MovedPairs += rep.Pairs
			res.Splits++
			if err := waitTables(reps, plan2, dst2, gen2, cfg.ConvergeTimeout); err != nil {
				return err
			}
			time.Sleep(cfg.Settle)
		}
		return nil
	}()
	close(stop)
	wg.Wait()
	if churnErr != nil {
		return nil, churnErr
	}
	for _, err := range clientErrs {
		if err != nil {
			return nil, err
		}
	}
	res.Acked = ackedN.Load()
	res.Resubmitted = resubmitted.Load()
	res.Reads = readsN.Load()
	res.FenceStall = time.Duration(maxStall.Load())
	for _, lr := range reps {
		if v := lr.host.Table().Version; v > res.RouteVersion {
			res.RouteVersion = v
		}
	}

	// Agreement: every replica's store serializes to the same bytes,
	// group by group (the wait covers apply lag on non-proposing
	// replicas).
	deadline := time.Now().Add(cfg.ConvergeTimeout)
	for {
		agree := true
		var detail string
		for g := 0; g < hosted && agree; g++ {
			ref := reps[0].stores[g].Snapshot()
			for i := 1; i < n; i++ {
				if !bytes.Equal(ref, reps[i].stores[g].Snapshot()) {
					agree = false
					detail = fmt.Sprintf("group %d: replica 0 (%d keys) and replica %d (%d keys) diverge",
						g, reps[0].stores[g].Len(), i, reps[i].stores[g].Len())
					break
				}
			}
		}
		if agree {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("split-churn: stores never converged: %s", detail)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Zero lost acked commands across the boundary: each key's value in
	// its (possibly new) owning group is at least as new as the last
	// acked write.
	tbl := reps[0].host.Table()
	for c := 0; c < cfg.Clients; c++ {
		key := clientKeys[c]
		floor := lastAcked(key)
		if floor < 0 {
			continue
		}
		g := tbl.Group(key)
		val, ok := reps[0].stores[g].Lookup(key)
		if !ok {
			return nil, fmt.Errorf("split-churn: key %q (group %v) lost: seq %d was acked but the key is absent after convergence", key, g, floor)
		}
		got, err := parseSeq(val)
		if err != nil {
			return nil, fmt.Errorf("split-churn: key %q holds %q: %v", key, val, err)
		}
		if got < floor {
			return nil, fmt.Errorf("split-churn: key %q converged to seq %d, but seq %d was acked (acked command lost or stale duplicate executed)", key, got, floor)
		}
	}

	// The persisted routing tables reload to the converged claims: a
	// restarted replica would route identically.
	for i := 0; i < n; i++ {
		saved, err := reshard.Load(filepath.Join(cfg.Dir, fmt.Sprintf("r%d.routes", i)))
		if err != nil {
			return nil, fmt.Errorf("split-churn: reload routes of replica %d: %w", i, err)
		}
		if saved == nil || !reflect.DeepEqual(saved.Slots, reps[i].host.Table().Slots) {
			return nil, fmt.Errorf("split-churn: replica %d's persisted routing table does not match its live table", i)
		}
		if err := reps[i].host.Holder().SaveErr(); err != nil {
			return nil, fmt.Errorf("split-churn: replica %d routing-table persist error: %w", i, err)
		}
	}
	return res, nil
}

// waitTables waits until every replica's routing table shows each slot
// in slots Owned by dst at generation gen and no migrations remain
// anywhere, then cross-checks that all replicas hold identical claims —
// the "exactly one routing outcome" assertion.
func waitTables(reps []*liveReplica, slots []uint32, dst types.GroupID, gen uint32, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		var detail string
		for i, lr := range reps {
			t := lr.host.Table()
			for _, s := range slots {
				c := t.Slots[s]
				if c.Phase != reshard.Owned || c.Owner != dst || c.Gen != gen {
					ok = false
					detail = fmt.Sprintf("replica %d slot %d = %+v, want Owned by %v at gen %d", i, s, c, dst, gen)
				}
			}
			if len(t.Migrations()) != 0 {
				ok = false
				detail = fmt.Sprintf("replica %d still shows migrations", i)
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("split-churn: routing tables never converged: %s", detail)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ref := reps[0].host.Table().Slots
	for i := 1; i < len(reps); i++ {
		if !reflect.DeepEqual(ref, reps[i].host.Table().Slots) {
			return fmt.Errorf("split-churn: replicas 0 and %d converged to different routing claims", i)
		}
	}
	return nil
}
