package runner

import (
	"testing"
	"time"
)

// TestRunFrontDoor smoke-runs both front-door modes briefly and checks
// each commits work with the expected concurrency accounting.
func TestRunFrontDoor(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP front doors")
	}
	cases := []struct {
		cfg     FrontDoorConfig
		clients int
	}{
		{FrontDoorConfig{Mode: FrontDoorRPC, Conns: 1, Window: 8}, 8},
		{FrontDoorConfig{Mode: FrontDoorLine, Conns: 2, Window: 8 /* ignored */}, 2},
	}
	for _, tc := range cases {
		res, err := RunFrontDoor(FrontDoorConfig{
			Mode: tc.cfg.Mode, Conns: tc.cfg.Conns, Window: tc.cfg.Window,
			Warmup: 100 * time.Millisecond, Duration: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.cfg.Mode, err)
		}
		if res.OpsPerSec <= 0 {
			t.Fatalf("%s: no committed ops", tc.cfg.Mode)
		}
		if res.Clients != tc.clients {
			t.Fatalf("%s: %d clients, want %d", tc.cfg.Mode, res.Clients, tc.clients)
		}
		t.Logf("%s conns=%d window=%d: %.0f ops/s", res.Mode, res.Conns, res.Window, res.OpsPerSec)
	}
}
