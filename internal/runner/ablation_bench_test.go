package runner

import (
	"testing"
	"time"
)

// BenchmarkLeaderBottleneckCrossover is the ablation behind Figure 8's
// large-command result: it sweeps command sizes until the Paxos leader
// (which forwards, serializes and broadcasts every command) becomes the
// bottleneck and the multi-leader protocols overtake it. With our Go
// binary codec the crossover sits near 16-64 KB; the paper's 2014
// C++/protobuf stack paid more CPU per byte, placing it at 1 KB.
func BenchmarkLeaderBottleneckCrossover(b *testing.B) {
	for _, size := range []int{4000, 16000, 64000} {
		for _, p := range []Protocol{Paxos, MenciusBcast, ClockRSM} {
			b.Run(string(p)+"/"+sizeStr(size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := RunThroughput(ThroughputConfig{
						Protocol: p, PayloadSize: size,
						Warmup: 100 * time.Millisecond, Duration: 500 * time.Millisecond,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.OpsPerSec, "ops/s")
				}
			})
		}
	}
}

func sizeStr(n int) string {
	switch n {
	case 4000:
		return "4KB"
	case 16000:
		return "16KB"
	default:
		return "64KB"
	}
}
