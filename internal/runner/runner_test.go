package runner

import (
	"testing"
	"time"

	"clockrsm/internal/analysis"
	"clockrsm/internal/stats"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// testOpts keeps simulated experiments fast in CI while preserving the
// paper's workload shape.
func testOpts() FigureOptions {
	return FigureOptions{
		ClientsPerReplica: 10,
		Duration:          8 * time.Second,
		Seed:              1,
		Jitter:            500 * time.Microsecond,
	}
}

// meanOf extracts the bar for (site, protocol).
func meanOf(bars []Bar, site wan.Site, p Protocol) (Bar, bool) {
	for _, b := range bars {
		if b.Site == site && b.Protocol == p {
			return b, true
		}
	}
	return Bar{}, false
}

func TestRunLatencySmoke(t *testing.T) {
	res, err := RunLatency(LatencyConfig{
		Sites:             ThreeSites(),
		Protocol:          ClockRSM,
		ClientsPerReplica: 5,
		Duration:          5 * time.Second,
		OnlyReplica:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Samples {
		if s.Count() == 0 {
			t.Errorf("replica %d has no samples", i)
		}
		if s.Mean() <= 0 {
			t.Errorf("replica %d mean %v", i, s.Mean())
		}
	}
}

func TestRunLatencyUnknownProtocol(t *testing.T) {
	if _, err := RunLatency(LatencyConfig{Sites: ThreeSites(), Protocol: "nope", OnlyReplica: -1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestFigure1Shape(t *testing.T) {
	// Figure 1(b): leader at VA. The paper's headline claims:
	// Clock-RSM beats Mencius-bcast everywhere and beats Paxos-bcast at
	// non-leader replicas; at the leader Paxos-bcast is at least as good.
	bars, err := Figure1(wan.VA, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tol := 6 * time.Millisecond
	for _, site := range FiveSites() {
		clock, ok1 := meanOf(bars, site, ClockRSM)
		pb, ok2 := meanOf(bars, site, PaxosBcast)
		mb, ok3 := meanOf(bars, site, MenciusBcast)
		px, ok4 := meanOf(bars, site, Paxos)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			t.Fatalf("missing bars for %v", site)
		}
		if clock.Mean > mb.Mean+tol {
			t.Errorf("%v: Clock-RSM %v slower than Mencius-bcast %v", site, clock.Mean, mb.Mean)
		}
		if site != wan.VA && clock.Mean > pb.Mean+tol {
			t.Errorf("non-leader %v: Clock-RSM %v slower than Paxos-bcast %v", site, clock.Mean, pb.Mean)
		}
		if pb.Mean > px.Mean+tol {
			t.Errorf("%v: Paxos-bcast %v slower than Paxos %v", site, pb.Mean, px.Mean)
		}
		// Sanity: p95 ≥ mean.
		if clock.P95 < clock.Mean {
			t.Errorf("%v: p95 %v < mean %v", site, clock.P95, clock.Mean)
		}
	}
	// Cross-validate Clock-RSM against the analytic model: the balanced
	// formula's lc3^worst term is a worst case (it binds only when a far
	// replica proposes just before ours), so the simulated mean lies
	// between the imbalanced (lc3 never binds) and balanced bounds.
	m := wan.EC2Matrix(FiveSites())
	for i, site := range FiveSites() {
		lo := analysis.ClockRSMImbalanced(m, types.ReplicaID(i))
		hi := analysis.ClockRSMBalanced(m, types.ReplicaID(i))
		got, _ := meanOf(bars, site, ClockRSM)
		if got.Mean < lo-tol || got.Mean > hi+2*tol {
			t.Errorf("%v: simulated Clock-RSM %v outside analytic [%v, %v]", site, got.Mean, lo, hi)
		}
	}
}

func TestFigure2LeaderVA(t *testing.T) {
	// Figure 2(b): with leader VA, Clock-RSM and Paxos-bcast have
	// similar latencies at all three replicas.
	bars, err := Figure2(wan.VA, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range ThreeSites() {
		clock, _ := meanOf(bars, site, ClockRSM)
		pb, _ := meanOf(bars, site, PaxosBcast)
		diff := clock.Mean - pb.Mean
		if diff < 0 {
			diff = -diff
		}
		if diff > 15*time.Millisecond {
			t.Errorf("%v: Clock-RSM %v vs Paxos-bcast %v differ by %v", site, clock.Mean, pb.Mean, diff)
		}
	}
}

func TestFigure2LeaderCAIRGap(t *testing.T) {
	// Figure 2(a): leader CA forces IR onto the longest path under
	// Paxos-bcast; Clock-RSM is much lower at IR.
	bars, err := Figure2(wan.CA, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	clock, _ := meanOf(bars, wan.IR, ClockRSM)
	pb, _ := meanOf(bars, wan.IR, PaxosBcast)
	if clock.Mean+20*time.Millisecond > pb.Mean {
		t.Errorf("IR: Clock-RSM %v should be well below Paxos-bcast %v", clock.Mean, pb.Mean)
	}
}

func TestFigure3CDF(t *testing.T) {
	series, err := Figure3(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("%v: empty CDF", s.Protocol)
		}
		last := s.Points[len(s.Points)-1]
		if last.Fraction != 1 {
			t.Errorf("%v: CDF ends at %.2f", s.Protocol, last.Fraction)
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Latency < s.Points[i-1].Latency {
				t.Fatalf("%v: CDF not monotone", s.Protocol)
			}
		}
	}
	// Paper: Mencius-bcast at JP varies widely (delayed commit); Paxos
	// variants are predictable. Compare spreads.
	spread := func(p Protocol) time.Duration {
		for _, s := range series {
			if s.Protocol == p {
				return s.Points[len(s.Points)-1].Latency - s.Points[0].Latency
			}
		}
		return 0
	}
	if spread(MenciusBcast) <= spread(PaxosBcast) {
		t.Errorf("Mencius-bcast spread %v not wider than Paxos-bcast %v",
			spread(MenciusBcast), spread(PaxosBcast))
	}
}

func TestFigure5ImbalancedShape(t *testing.T) {
	// Figure 5: Mencius-bcast's average latency becomes much higher than
	// Clock-RSM's under imbalanced load, at every replica.
	opts := testOpts()
	opts.Duration = 6 * time.Second
	bars, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	m := wan.EC2Matrix(FiveSites())
	for i, site := range FiveSites() {
		clock, ok1 := meanOf(bars, site, ClockRSM)
		mb, ok2 := meanOf(bars, site, MenciusBcast)
		if !ok1 || !ok2 {
			t.Fatalf("missing imbalanced bars for %v", site)
		}
		if clock.Mean >= mb.Mean {
			t.Errorf("%v: imbalanced Clock-RSM %v not below Mencius-bcast %v", site, clock.Mean, mb.Mean)
		}
		// Mencius-bcast should sit near its analytic 2*max.
		want := analysis.MenciusBcastImbalanced(m, types.ReplicaID(i))
		if mb.Mean < want-10*time.Millisecond || mb.Mean > want+25*time.Millisecond {
			t.Errorf("%v: Mencius-bcast imbalanced %v vs analytic %v", site, mb.Mean, want)
		}
	}
}

func TestFigure6CDF(t *testing.T) {
	series, err := Figure6(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var clock, mencius []stats.CDFPoint
	for _, s := range series {
		switch s.Protocol {
		case ClockRSM:
			clock = s.Points
		case MenciusBcast:
			mencius = s.Points
		}
	}
	if len(clock) == 0 || len(mencius) == 0 {
		t.Fatal("missing series")
	}
	// At SG under imbalanced load, Mencius-bcast's median is well above
	// Clock-RSM's (Figure 6).
	med := func(ps []stats.CDFPoint) time.Duration { return ps[len(ps)/2].Latency }
	if med(clock) >= med(mencius) {
		t.Errorf("median Clock-RSM %v not below Mencius-bcast %v", med(clock), med(mencius))
	}
}

func TestSiteIndex(t *testing.T) {
	if SiteIndex(FiveSites(), wan.JP) != 3 {
		t.Error("JP index wrong")
	}
	if SiteIndex(FiveSites(), wan.BR) != -1 {
		t.Error("missing site should be -1")
	}
}
