package runner

import (
	"testing"
	"time"
)

// TestGroupScalingSweepSmoke runs a miniature groups × GOMAXPROCS sweep
// over loopback TCP: every row must complete, commit work, and carry
// wire-counter evidence from the coalescer.
func TestGroupScalingSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping TCP sweep in -short mode")
	}
	rows, err := GroupScalingSweep(SweepConfig{
		GroupCounts: []int{1, 2},
		ProcCounts:  []int{1},
		PayloadSize: 64,
		PerRun:      150 * time.Millisecond,
		TCP:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.OpsPerSec <= 0 {
			t.Errorf("groups=%d procs=%d: no throughput", r.Groups, r.Procs)
		}
		if r.Wire == nil {
			t.Fatalf("groups=%d procs=%d: TCP row without wire counters", r.Groups, r.Procs)
		}
		if r.Wire.Frames == 0 || r.Wire.Flushes == 0 {
			t.Errorf("groups=%d procs=%d: empty wire counters %+v", r.Groups, r.Procs, *r.Wire)
		}
		if r.Wire.Frames < r.Wire.Flushes {
			t.Errorf("groups=%d procs=%d: frames %d < flushes %d", r.Groups, r.Procs, r.Wire.Frames, r.Wire.Flushes)
		}
	}
}

// TestRunThroughputPinnedSmoke exercises the per-group CPU pinning path
// (thread-locking plus, on Linux, sched_setaffinity) end to end.
func TestRunThroughputPinnedSmoke(t *testing.T) {
	res, err := RunThroughput(ThroughputConfig{
		Protocol:    ClockRSM,
		Groups:      2,
		PayloadSize: 64,
		Warmup:      50 * time.Millisecond,
		Duration:    150 * time.Millisecond,
		PinGroups:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsPerSec <= 0 {
		t.Error("pinned run committed nothing")
	}
}
