package runner

import (
	"testing"
	"time"
)

// TestIdleReadNudge is the A/B for the paper's Section IV idle-read
// floor: with Δ = 50ms and no write traffic, a linearizable read
// without the CLOCKREQ nudge waits out the broadcast interval (Δ/2 on
// average), while the nudge brings it down to a round trip. The
// assertions leave wide margins — the point is the order-of-magnitude
// separation, not the exact figures (those go to BENCH_10.json).
func TestIdleReadNudge(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive idle-latency measurement")
	}
	const delta = 50 * time.Millisecond
	reads := 20

	before, err := RunIdleRead(IdleReadConfig{Delta: delta, Reads: reads, NoNudge: true})
	if err != nil {
		t.Fatal(err)
	}
	after, err := RunIdleRead(IdleReadConfig{Delta: delta, Reads: reads})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("idle read, no nudge: mean=%v p50=%v p95=%v max=%v", before.Mean, before.P50, before.P95, before.Max)
	t.Logf("idle read, nudged:   mean=%v p50=%v p95=%v max=%v nudges=%d replies=%d",
		after.Mean, after.P50, after.P95, after.Max, after.Nudges, after.NudgeReplies)

	if before.Nudges != 0 {
		t.Errorf("NoNudge run sent %d CLOCKREQs, want 0", before.Nudges)
	}
	if after.Nudges == 0 || after.NudgeReplies == 0 {
		t.Errorf("nudged run sent %d CLOCKREQs / %d replies, want both > 0", after.Nudges, after.NudgeReplies)
	}
	// Without the nudge a read waits for the next Δ tick: the median
	// must show a real fraction of the interval.
	if before.P50 < delta/10 {
		t.Errorf("un-nudged idle read p50 = %v, expected a Δ-bound wait (Δ=%v)", before.P50, delta)
	}
	// With the nudge the read completes in about a round trip — far
	// under the interval.
	if after.P50 > delta/5 {
		t.Errorf("nudged idle read p50 = %v, want well under Δ=%v", after.P50, delta)
	}
	if after.P50 >= before.P50 {
		t.Errorf("nudge did not help: p50 %v (nudged) vs %v (not)", after.P50, before.P50)
	}
}
