// Package failure provides the timeout-based failure detector assumed
// by the system model (Section II-A): it may be wrong, but eventually
// every faulty process is suspected and at least one correct process is
// not. Clock-RSM embeds an equivalent detector; this standalone version
// serves the real runtime and tools.
package failure

import (
	"sync"
	"time"

	"clockrsm/internal/types"
)

// Detector tracks per-replica liveness by heartbeat timestamps. It is
// safe for concurrent use. The caller supplies the clock, so the
// detector works under both real and simulated time.
type Detector struct {
	mu      sync.Mutex
	timeout time.Duration
	now     func() time.Time
	last    map[types.ReplicaID]time.Time
	// suspected remembers replicas already reported, so OnSuspect fires
	// once per down-up cycle.
	suspected map[types.ReplicaID]bool
}

// New creates a detector with the given suspicion timeout. now may be
// nil, defaulting to time.Now.
func New(timeout time.Duration, now func() time.Time) *Detector {
	if now == nil {
		now = time.Now
	}
	return &Detector{
		timeout:   timeout,
		now:       now,
		last:      make(map[types.ReplicaID]time.Time),
		suspected: make(map[types.ReplicaID]bool),
	}
}

// Heartbeat records a sign of life from a replica. A heartbeat from a
// suspected replica rehabilitates it.
func (d *Detector) Heartbeat(id types.ReplicaID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.last[id] = d.now()
	if d.suspected[id] {
		delete(d.suspected, id)
	}
}

// Suspects returns the replicas whose last heartbeat is older than the
// timeout and that have not been reported before. Replicas never heard
// from are not suspected until their first heartbeat (callers seed with
// Heartbeat at startup).
func (d *Detector) Suspects() []types.ReplicaID {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	var out []types.ReplicaID
	for id, at := range d.last {
		if d.suspected[id] {
			continue
		}
		if now.Sub(at) > d.timeout {
			d.suspected[id] = true
			out = append(out, id)
		}
	}
	return out
}

// IsSuspected reports whether the replica is currently suspected.
func (d *Detector) IsSuspected(id types.ReplicaID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suspected[id]
}
