package failure

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func TestSuspectsAfterTimeout(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	d := New(100*time.Millisecond, fc.now)
	d.Heartbeat(1)
	d.Heartbeat(2)

	if s := d.Suspects(); len(s) != 0 {
		t.Fatalf("suspects too early: %v", s)
	}
	fc.advance(50 * time.Millisecond)
	d.Heartbeat(2) // keep r2 alive
	fc.advance(70 * time.Millisecond)
	s := d.Suspects()
	if len(s) != 1 || s[0] != 1 {
		t.Fatalf("suspects = %v, want [r1]", s)
	}
	if !d.IsSuspected(1) || d.IsSuspected(2) {
		t.Error("IsSuspected wrong")
	}
}

func TestSuspectReportedOnce(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	d := New(10*time.Millisecond, fc.now)
	d.Heartbeat(1)
	fc.advance(20 * time.Millisecond)
	if s := d.Suspects(); len(s) != 1 {
		t.Fatalf("first call: %v", s)
	}
	if s := d.Suspects(); len(s) != 0 {
		t.Fatalf("second call should be empty: %v", s)
	}
}

func TestRehabilitation(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	d := New(10*time.Millisecond, fc.now)
	d.Heartbeat(1)
	fc.advance(20 * time.Millisecond)
	d.Suspects()
	if !d.IsSuspected(1) {
		t.Fatal("not suspected")
	}
	d.Heartbeat(1) // came back
	if d.IsSuspected(1) {
		t.Fatal("heartbeat did not rehabilitate")
	}
	fc.advance(20 * time.Millisecond)
	if s := d.Suspects(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("re-suspect after rehabilitation failed: %v", s)
	}
}

func TestUnknownReplicaNotSuspected(t *testing.T) {
	d := New(time.Millisecond, (&fakeClock{t: time.Unix(1000, 0)}).now)
	if s := d.Suspects(); len(s) != 0 {
		t.Fatalf("suspects without heartbeats: %v", s)
	}
	if d.IsSuspected(7) {
		t.Error("unknown replica suspected")
	}
}

func TestConcurrentHeartbeats(t *testing.T) {
	d := New(time.Hour, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d.Heartbeat(1)
				d.Suspects()
			}
		}(g)
	}
	wg.Wait()
	if d.IsSuspected(1) {
		t.Error("live replica suspected")
	}
}
