package failure

import (
	"testing"
	"time"

	"clockrsm/internal/chaos"
	"clockrsm/internal/clock"
)

// These tests run the detector against chaos-injected clock faults on
// its OWN time source. The detector's contract (Section II-A) is
// eventual completeness and accuracy, not instant correctness, so the
// interesting questions are which property each fault erodes and
// whether the detector recovers once the fault clears.

// tick bridges a nanosecond clock.Clock into the time.Time source the
// detector consumes.
func tick(c clock.Clock) func() time.Time {
	return func() time.Time { return time.Unix(0, c.Now()) }
}

// A frozen local clock makes silence invisible: elapsed time never
// grows, so a dead replica is never suspected. This is a liveness loss,
// not a safety one — the detector stays accurate, just incomplete —
// and is exactly why drop windows in chaos schedules must outlive the
// detector's sampling period measured in *victim* clock time.
func TestDetectorClockFreezeMasksSilence(t *testing.T) {
	src := clock.NewManual(0)
	eng := chaos.New(chaos.Schedule{Clock: []chaos.ClockFault{
		{Replica: 0, Kind: chaos.ClockFreeze, At: 0}, // forever
	}})
	d := New(100*time.Millisecond, tick(eng.Clock(0, src)))
	eng.Arm()
	d.Heartbeat(1)
	src.Advance(int64(time.Second)) // r1 silent for 10x the timeout
	if s := d.Suspects(); len(s) != 0 {
		t.Fatalf("frozen-clock detector suspected %v; silence should be invisible", s)
	}
	if got := eng.Counts()["clock.freeze"]; got != 1 {
		t.Fatalf("clock.freeze activations = %d, want 1", got)
	}
}

// When the freeze thaws, the backlog of silence becomes visible at once
// and suspicion fires; a heartbeat then rehabilitates, and renewed
// silence re-suspects — the full down-up-down cycle.
func TestDetectorClockFreezeThawCycle(t *testing.T) {
	src := clock.NewManual(0)
	eng := chaos.New(chaos.Schedule{Clock: []chaos.ClockFault{
		{Replica: 0, Kind: chaos.ClockFreeze, At: 0, Duration: 30 * time.Millisecond},
	}})
	d := New(100*time.Millisecond, tick(eng.Clock(0, src)))
	eng.Arm()
	d.Heartbeat(1)
	src.Advance(int64(500 * time.Millisecond))
	if s := d.Suspects(); len(s) != 0 {
		t.Fatalf("suspected %v while frozen", s)
	}
	time.Sleep(50 * time.Millisecond) // freeze window expires in real time
	if s := d.Suspects(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("post-thaw suspects = %v, want [r1]", s)
	}
	d.Heartbeat(1) // r1 comes back up
	if d.IsSuspected(1) {
		t.Fatal("heartbeat did not rehabilitate after thaw")
	}
	src.Advance(int64(200 * time.Millisecond)) // goes silent again
	if s := d.Suspects(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("re-suspect after down-up cycle failed: %v", s)
	}
}

// A rollback on the detector's clock shifts every reading back by the
// same amount, so heartbeats recorded before the fault look fresher
// than they are: detection of real silence is delayed by exactly the
// rollback magnitude, then proceeds normally.
func TestDetectorClockRollbackDelaysSuspicion(t *testing.T) {
	src := clock.NewManual(int64(time.Hour))
	eng := chaos.New(chaos.Schedule{Clock: []chaos.ClockFault{
		{Replica: 0, Kind: chaos.ClockRollback, At: 0, Magnitude: 40 * time.Millisecond},
	}})
	d := New(100*time.Millisecond, tick(eng.Clock(0, src)))
	d.Heartbeat(1) // recorded at the raw, pre-fault reading
	eng.Arm()
	src.Advance(int64(120 * time.Millisecond)) // past the timeout in raw time
	if s := d.Suspects(); len(s) != 0 {
		t.Fatalf("suspected %v only 80ms of rolled-back silence in", s)
	}
	src.Advance(int64(30 * time.Millisecond)) // 150ms raw - 40ms rollback > 100ms
	if s := d.Suspects(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("suspects = %v, want [r1] once rollback is outrun", s)
	}
}

// A forward jump larger than the timeout makes every known replica look
// ancient instantly: a live, recently-heard replica is falsely
// suspected. The system model permits this (the detector "may be
// wrong"); what must hold is that the next heartbeat rehabilitates and
// detection of genuine silence still works afterwards.
func TestDetectorClockJumpFalseSuspicionAndRecovery(t *testing.T) {
	src := clock.NewManual(int64(time.Hour))
	eng := chaos.New(chaos.Schedule{Clock: []chaos.ClockFault{
		{Replica: 0, Kind: chaos.ClockJump, At: 0, Magnitude: 150 * time.Millisecond},
	}})
	d := New(100*time.Millisecond, tick(eng.Clock(0, src)))
	d.Heartbeat(1)
	eng.Arm() // +150ms jump: r1's heartbeat is suddenly "too old"
	if s := d.Suspects(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("suspects = %v, want the false positive [r1]", s)
	}
	d.Heartbeat(1) // r1 was alive all along
	if d.IsSuspected(1) {
		t.Fatal("live replica stayed suspected after heartbeat")
	}
	// With the jump offset now constant on both sides, real silence is
	// detected on the normal schedule.
	src.Advance(int64(120 * time.Millisecond))
	if s := d.Suspects(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("post-jump detection of real silence failed: %v", s)
	}
}
