package node

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// TestProposeFutureResult checks the basic contract: Propose returns a
// future that resolves with the command's execution result.
func TestProposeFutureResult(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	ctx := context.Background()
	fut, err := c.nodes[0].Propose(ctx, kvstore.Put("k", []byte("v1")))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fut.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID.Origin != 0 || res.ID.Seq == 0 {
		t.Errorf("minted ID = %v, want origin r0 with nonzero seq", res.ID)
	}
	if res.Value != nil {
		t.Errorf("first PUT returned %q, want nil previous value", res.Value)
	}
	if v := c.call(t, 1, kvstore.Get("k")); string(v) != "v1" {
		t.Errorf("GET after PUT = %q", v)
	}
}

// TestProposeClientBatching pushes many concurrent proposals through a
// node configured with a submit batch and checks they all commit with
// correct results and distinct IDs.
func TestProposeClientBatching(t *testing.T) {
	c := newClusterOpts(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"],
		Options{SubmitBatch: 8})
	const clients, per = 16, 10
	var wg sync.WaitGroup
	ids := make(chan types.CommandID, clients*per)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			key := fmt.Sprintf("batch-%d", cl)
			for k := 0; k < per; k++ {
				fut, err := c.nodes[0].Propose(context.Background(), kvstore.Put(key, []byte{byte(k)}))
				if err != nil {
					t.Errorf("Propose: %v", err)
					return
				}
				res, err := fut.Result()
				if err != nil {
					t.Errorf("future: %v", err)
					return
				}
				ids <- res.ID
			}
		}(cl)
	}
	wg.Wait()
	close(ids)
	seen := make(map[types.CommandID]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("command ID %v minted twice", id)
		}
		seen[id] = true
	}
	if len(seen) != clients*per {
		t.Fatalf("%d distinct IDs, want %d", len(seen), clients*per)
	}
}

// blockedCluster returns a 3-replica cluster in which replicas 1 and 2
// are stopped, so nothing replica 0 proposes can ever reach a majority
// and commit: its window fills and stays full.
func blockedCluster(t *testing.T, opts Options) *cluster {
	t.Helper()
	c := newClusterOpts(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"], opts)
	c.nodes[1].Stop()
	c.nodes[2].Stop()
	return c
}

// TestProposeBackpressureFailFast fills a 1-slot window on a cluster
// that cannot commit and checks the fail-fast path returns
// ErrOverloaded without blocking.
func TestProposeBackpressureFailFast(t *testing.T) {
	c := blockedCluster(t, Options{MaxInFlight: 1, FailFast: true})
	first, err := c.nodes[0].Propose(context.Background(), kvstore.Put("k", []byte("v")))
	if err != nil {
		t.Fatalf("first Propose: %v", err)
	}
	if _, err := c.nodes[0].Propose(context.Background(), kvstore.Put("k", []byte("v"))); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second Propose with full window: err = %v, want ErrOverloaded", err)
	}
	// Freeing the slot (here: canceling) re-admits proposals.
	first.Cancel()
	if _, err := c.nodes[0].Propose(context.Background(), kvstore.Put("k", []byte("v"))); err != nil {
		t.Fatalf("Propose after slot freed: %v", err)
	}
}

// TestProposeBackpressureBlocks checks the blocking path: a Propose
// against a full window waits, and the admission context can abandon
// the wait with ErrCanceled.
func TestProposeBackpressureBlocks(t *testing.T) {
	c := blockedCluster(t, Options{MaxInFlight: 1})
	if _, err := c.nodes[0].Propose(context.Background(), kvstore.Put("k", []byte("v"))); err != nil {
		t.Fatalf("first Propose: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.nodes[0].Propose(ctx, kvstore.Put("k", []byte("v")))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("blocked Propose: err = %v, want ErrCanceled", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Errorf("blocked Propose returned after %v, before the context deadline", time.Since(start))
	}
}

// TestProposeFailFastNoSpuriousOverload drives a 1-slot fail-fast
// window with a strictly sequential client: a proposal made right
// after the previous future resolved must never see ErrOverloaded,
// i.e. resolution releases the window slot before publishing.
func TestProposeFailFastNoSpuriousOverload(t *testing.T) {
	c := newClusterOpts(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"],
		Options{MaxInFlight: 1, FailFast: true})
	for k := 0; k < 20; k++ {
		fut, err := c.nodes[0].Propose(context.Background(), kvstore.Put("k", []byte{byte(k)}))
		if err != nil {
			t.Fatalf("proposal %d: %v", k, err)
		}
		if _, err := fut.Result(); err != nil {
			t.Fatalf("future %d: %v", k, err)
		}
	}
}

// TestProposeRejectsDeadContext checks admission: a context that is
// already done must not sneak a command into the state machine just
// because the window has room.
func TestProposeRejectsDeadContext(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.nodes[0].Propose(ctx, kvstore.Put("k", []byte("v"))); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Propose with dead context: err = %v, want ErrCanceled", err)
	}
}

// TestProposeCancelAtMostOnce cancels a slice of proposals mid-flight
// on a healthy cluster and checks that no command — canceled or not —
// is ever executed twice, and that canceled futures resolve
// ErrCanceled or with a genuine result, never hang.
func TestProposeCancelAtMostOnce(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	const n = 60
	for k := 0; k < n; k++ {
		ctx, cancel := context.WithCancel(context.Background())
		fut, err := c.nodes[0].Propose(ctx, kvstore.Put("k", []byte{byte(k)}))
		if err != nil {
			t.Fatal(err)
		}
		if k%2 == 0 {
			cancel()
			if _, err := fut.Wait(ctx); err != nil && !errors.Is(err, ErrCanceled) {
				t.Fatalf("canceled future: unexpected error %v", err)
			}
		} else {
			if _, err := fut.Wait(ctx); err != nil {
				t.Fatalf("awaited future: %v", err)
			}
			cancel()
		}
	}
	// Let trailing commits (canceled proposals that were already
	// submitted) land everywhere, then check at-most-once execution.
	time.Sleep(200 * time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, ord := range c.orders {
		seen := make(map[types.CommandID]bool, len(ord))
		for _, cid := range ord {
			if seen[cid] {
				t.Fatalf("replica %d executed %v twice", i, cid)
			}
			seen[cid] = true
		}
		if len(ord) > n {
			t.Fatalf("replica %d executed %d commands, only %d proposed", i, len(ord), n)
		}
	}
}

// TestStopFailsInFlightProposals stops a node whose proposals cannot
// commit and checks every outstanding future resolves ErrStopped —
// including ones still sitting in the submit buffer of a batching node.
func TestStopFailsInFlightProposals(t *testing.T) {
	for _, batch := range []int{1, 8} {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			c := blockedCluster(t, Options{SubmitBatch: batch})
			var futs []*Future
			for k := 0; k < 20; k++ {
				fut, err := c.nodes[0].Propose(context.Background(), kvstore.Put("k", []byte("v")))
				if err != nil {
					t.Fatal(err)
				}
				futs = append(futs, fut)
			}
			c.nodes[0].Stop()
			for i, fut := range futs {
				select {
				case <-fut.Done():
				case <-time.After(5 * time.Second):
					t.Fatalf("future %d still unresolved after Stop", i)
				}
				if _, err := fut.Result(); !errors.Is(err, ErrStopped) {
					t.Fatalf("future %d: err = %v, want ErrStopped", i, err)
				}
			}
			// A proposal after Stop must fail immediately, not hang.
			if _, err := c.nodes[0].Propose(context.Background(), kvstore.Put("k", []byte("v"))); !errors.Is(err, ErrStopped) {
				t.Fatalf("Propose after Stop: err = %v, want ErrStopped", err)
			}
		})
	}
}

// TestHostStopUnderLoad hammers a 2-group host cluster with concurrent
// proposers, stops every host mid-flight, and checks that (1) every
// proposer unblocks — futures resolve with a result or ErrStopped, and
// Propose itself returns an error once stopped — and (2) no goroutines
// leak: the shutdown-under-load guarantee of the client API.
func TestHostStopUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const replicas, groups, proposers = 3, 2, 8
	hub := transport.NewHub(replicas, transport.HubOptions{Codec: true, Groups: groups})
	spec := []types.ReplicaID{0, 1, 2}
	hosts := make([]*Host, replicas)
	for i := 0; i < replicas; i++ {
		h, err := NewHost(types.ReplicaID(i), spec, hub.Endpoint(types.ReplicaID(i)), HostOptions{Groups: groups, SubmitBatch: 4})
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < groups; g++ {
			app := &rsm.App{SM: kvstore.New()}
			nd := h.Group(types.GroupID(g))
			nd.Bind(app)
			nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 2 * time.Millisecond}))
		}
		hosts[i] = h
	}
	for _, h := range hosts {
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var completed, stopped atomic.Uint64
	for p := 0; p < proposers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			key := fmt.Sprintf("load-%d", p)
			payload := kvstore.Put(key, []byte("v"))
			for {
				fut, err := hosts[p%replicas].ProposeKey(context.Background(), key, payload)
				if err != nil {
					if !errors.Is(err, ErrStopped) {
						t.Errorf("Propose: %v", err)
					}
					return
				}
				if _, err := fut.Result(); err != nil {
					if errors.Is(err, ErrReconfigured) {
						continue // the mid-test Rejoin churned an epoch; resubmit
					}
					if !errors.Is(err, ErrStopped) {
						t.Errorf("future: %v", err)
					}
					stopped.Add(1)
					return
				}
				completed.Add(1)
			}
		}(p)
	}

	// Let the load ramp, then put one replica into a Rejoin cycle: its
	// retry timer (2× the consensus retry timeout) must not survive the
	// Stop below.
	time.Sleep(100 * time.Millisecond)
	hosts[2].Group(0).Do(func() {
		hosts[2].Group(0).Protocol().(*core.Replica).Rejoin()
	})
	time.Sleep(50 * time.Millisecond)
	for _, h := range hosts {
		h.Stop()
	}
	// Every group's tracked timers — including the Rejoin retry — are
	// cancelled by Stop.
	for _, h := range hosts {
		for g := 0; g < groups; g++ {
			nd := h.Group(types.GroupID(g))
			nd.timerMu.Lock()
			left := len(nd.timers)
			nd.timerMu.Unlock()
			if left != 0 {
				t.Errorf("host %v group %d: %d timers still pending after Stop", h.ID(), g, left)
			}
		}
	}

	loadDone := make(chan struct{})
	go func() { wg.Wait(); close(loadDone) }()
	select {
	case <-loadDone:
	case <-time.After(10 * time.Second):
		t.Fatal("proposers still blocked 10s after Stop: hung waiters leaked")
	}
	hub.Close()
	if completed.Load() == 0 {
		t.Error("no proposal completed before Stop; load never ramped")
	}
	t.Logf("%d proposals completed, %d failed ErrStopped", completed.Load(), stopped.Load())

	// Goroutines wind down to the pre-cluster baseline (allow slack for
	// runtime helpers and timers still draining).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+4 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at start, %d 5s after Stop — leak", baseline, runtime.NumGoroutine())
}
