package node

import (
	"context"
	"errors"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestNodeReconfigureShrinkGrow drives a 3-replica cluster through a
// shrink to {0,1} and back to {0,1,2} via the operator API, checking
// the future results, the status accessors on every node, and that the
// removed replica fails proposals with ErrNotInConfig while out and
// serves again once re-added.
func TestNodeReconfigureShrinkGrow(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	fut, err := c.nodes[0].Reconfigure(ctx, []types.ReplicaID{1, 0})
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		t.Fatalf("reconfigure future: %v", err)
	}
	if string(res.Value) != "r0,r1" {
		t.Errorf("reconfigure result = %q, want %q", res.Value, "r0,r1")
	}
	if got := c.nodes[0].Epoch(); got != 1 {
		t.Errorf("node 0 epoch = %d, want 1", got)
	}
	if got := MemberString(c.nodes[0].Members()); got != "r0,r1" {
		t.Errorf("node 0 members = %q", got)
	}
	// The removed replica learns the decision and flips out of config.
	waitFor(t, 10*time.Second, "node 2 to leave the configuration", func() bool {
		return !c.nodes[2].InConfig() && c.nodes[2].Epoch() == 1
	})
	// Proposals at the removed replica fail fast via their future.
	pf, err := c.nodes[2].Propose(ctx, kvstore.Put("k", []byte("v")))
	if err != nil {
		t.Fatalf("Propose admission at removed replica: %v", err)
	}
	if _, err := pf.Wait(ctx); !errors.Is(err, ErrNotInConfig) {
		t.Fatalf("proposal at removed replica: err = %v, want ErrNotInConfig", err)
	}
	// The shrunken configuration still commits.
	if v := c.call(t, 0, kvstore.Put("k", []byte("v1"))); v != nil {
		t.Errorf("PUT at shrunken config returned %q", v)
	}

	// Grow back to three; the rejoined replica serves proposals again.
	fut, err = c.nodes[0].Reconfigure(ctx, []types.ReplicaID{0, 1, 2})
	if err != nil {
		t.Fatalf("grow Reconfigure: %v", err)
	}
	if _, err := fut.Wait(ctx); err != nil {
		t.Fatalf("grow future: %v", err)
	}
	waitFor(t, 10*time.Second, "node 2 to rejoin the configuration", func() bool {
		return c.nodes[2].InConfig() && c.nodes[2].Epoch() == 2
	})
	if v := c.call(t, 2, kvstore.Get("k")); string(v) != "v1" {
		t.Errorf("GET at rejoined replica = %q, want v1", v)
	}
}

// TestReconfigureProposeFutureFailsOnLoop checks that a proposal at a
// replica that is out of the configuration resolves ErrNotInConfig via
// its future (the admitted-then-failed path).
func TestReconfigureProposeFutureFailsOnLoop(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	fut, err := c.nodes[0].Reconfigure(ctx, []types.ReplicaID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "node 2 removal", func() bool { return !c.nodes[2].InConfig() })
	pf, err := c.nodes[2].Propose(ctx, kvstore.Put("k", []byte("v")))
	if err != nil {
		t.Fatalf("Propose admission: %v", err)
	}
	if _, err := pf.Wait(ctx); !errors.Is(err, ErrNotInConfig) {
		t.Fatalf("future at removed replica: err = %v, want ErrNotInConfig", err)
	}
}

// TestReconfigureValidation exercises ErrBadConfig and
// ErrNotReconfigurable.
func TestReconfigureValidation(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	ctx := context.Background()
	for name, members := range map[string][]types.ReplicaID{
		"empty":        {},
		"out of spec":  {0, 1, 7},
		"duplicate":    {0, 1, 1},
		"sub-majority": {0},
	} {
		if _, err := c.nodes[0].Reconfigure(ctx, members); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
	// Fixed-membership protocols refuse reconfiguration outright.
	p := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["paxos-bcast"])
	if _, err := p.nodes[0].Reconfigure(ctx, []types.ReplicaID{0, 1}); !errors.Is(err, ErrNotReconfigurable) {
		t.Errorf("paxos Reconfigure: err = %v, want ErrNotReconfigurable", err)
	}
	if !p.nodes[0].InConfig() || p.nodes[0].Epoch() != 0 || MemberString(p.nodes[0].Members()) != "r0,r1,r2" {
		t.Errorf("fixed-membership status view: epoch=%d members=%v in=%v",
			p.nodes[0].Epoch(), p.nodes[0].Members(), p.nodes[0].InConfig())
	}
}

// TestReconfigureToCurrentConfigIsImmediate checks the idempotent fast
// path: reconfiguring to the configuration already in force succeeds
// without consuming an epoch.
func TestReconfigureToCurrentConfigIsImmediate(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fut, err := c.nodes[0].Reconfigure(ctx, []types.ReplicaID{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "r0,r1,r2" {
		t.Errorf("result = %q", res.Value)
	}
	if got := c.nodes[0].Epoch(); got != 0 {
		t.Errorf("epoch advanced to %d for a no-op reconfiguration", got)
	}
}

// TestConcurrentReconfigureResolvesEveryFuture fires two competing
// Reconfigure proposals with different targets: every future must
// resolve (success or ErrConfigConflict — never hang), and all replicas
// must converge on one of the two configurations.
func TestConcurrentReconfigureResolvesEveryFuture(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f0, err := c.nodes[0].Reconfigure(ctx, []types.ReplicaID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	f1, err := c.nodes[1].Reconfigure(ctx, []types.ReplicaID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for i, f := range []*Future{f0, f1} {
		_, err := f.Wait(ctx)
		switch {
		case err == nil:
			wins++
		case errors.Is(err, ErrConfigConflict):
		case errors.Is(err, ErrNotInConfig):
			// The proposer itself was removed by the competing winner.
		default:
			t.Fatalf("future %d: unexpected error %v", i, err)
		}
	}
	if wins == 0 {
		t.Error("neither competing reconfiguration succeeded")
	}
	// All replicas converge on the same final configuration.
	waitFor(t, 10*time.Second, "config convergence", func() bool {
		m0 := MemberString(c.nodes[0].Members())
		return m0 == MemberString(c.nodes[1].Members()) &&
			m0 == MemberString(c.nodes[2].Members()) &&
			c.nodes[0].Epoch() >= 1
	})
}

// TestInFlightFutureFailsOnRemoval removes a replica while it has a
// proposal in flight that cannot have committed: the future must
// resolve ErrNotInConfig (never park), and the command must never
// execute anywhere.
func TestInFlightFutureFailsOnRemoval(t *testing.T) {
	// Replica 2 is 400 ms away from 0 and 1, which are 1 ms apart: a
	// PREPARE from 2 cannot reach {0,1} before their reconfiguration
	// installs, so the command is provably discarded. (This test used
	// to flake ~25% under -race: the hub's old single-FIFO inbox let
	// the 400 ms-due PREPARE head-of-line-block the 1 ms-due SUSPEND
	// whenever the PREPARE's enqueue won the race, delaying the whole
	// reconfiguration until the PREPARE had been delivered and
	// collected — the command then legitimately committed. The hub now
	// merges per-sender FIFO queues in due-time order, so enqueue-order
	// races can no longer invert link latencies; the margin is kept
	// large for -race slowness.)
	lat := wan.NewMatrix(3)
	lat.Set(0, 1, time.Millisecond)
	lat.Set(0, 2, 400*time.Millisecond)
	lat.Set(1, 2, 400*time.Millisecond)
	c := newCluster(t, 3, lat, protoMakers()["clockrsm"])
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	pf, err := c.nodes[2].Propose(ctx, kvstore.Put("doomed", []byte("v")))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := c.nodes[0].Reconfigure(ctx, []types.ReplicaID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Wait(ctx); err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	if _, err := pf.Wait(ctx); !errors.Is(err, ErrNotInConfig) {
		t.Fatalf("in-flight future at removed replica: err = %v, want ErrNotInConfig", err)
	}
	// The discarded command must not surface anywhere.
	time.Sleep(300 * time.Millisecond)
	for i, s := range c.stores {
		if v, ok := s.Lookup("doomed"); ok {
			t.Errorf("replica %d executed the discarded command (value %q)", i, v)
		}
	}
}

// TestHostReconfigureAllAtomic drives a 2-group host cluster 3→2→3:
// every group lands on the same configuration and epoch, and the host
// status reflects it on every replica.
func TestHostReconfigureAllAtomic(t *testing.T) {
	const n, groups = 3, 2
	hub := transport.NewHub(n, transport.HubOptions{Codec: true, Groups: groups})
	t.Cleanup(hub.Close)
	c := newHostCluster(t, n, groups, func(id types.ReplicaID) transport.Transport {
		return hub.Endpoint(id)
	})
	c.start(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	c.call(t, 0, 0, kvstore.Put("a", []byte("1")))
	c.call(t, 0, 1, kvstore.Put("b", []byte("2")))

	if err := c.hosts[0].ReconfigureAll(ctx, []types.ReplicaID{0, 1}); err != nil {
		t.Fatalf("ReconfigureAll shrink: %v", err)
	}
	st := c.hosts[0].Status()
	if len(st.Groups) != groups {
		t.Fatalf("status has %d groups", len(st.Groups))
	}
	for _, g := range st.Groups {
		if g.Epoch != 1 || MemberString(g.Members) != "r0,r1" || !g.InConfig {
			t.Errorf("group %v after shrink: epoch=%d members=%v in=%v",
				g.Group, g.Epoch, g.Members, g.InConfig)
		}
	}
	// The removed replica's status flips for every group.
	waitFor(t, 10*time.Second, "host 2 to observe removal in all groups", func() bool {
		for _, g := range c.hosts[2].Status().Groups {
			if g.InConfig || g.Epoch != 1 {
				return false
			}
		}
		return true
	})

	// Data still flows in both groups, and the grow restores replica 2.
	c.call(t, 0, 0, kvstore.Put("a", []byte("3")))
	if err := c.hosts[0].ReconfigureAll(ctx, []types.ReplicaID{0, 1, 2}); err != nil {
		t.Fatalf("ReconfigureAll grow: %v", err)
	}
	for _, g := range c.hosts[0].Status().Groups {
		if g.Epoch != 2 || MemberString(g.Members) != "r0,r1,r2" {
			t.Errorf("group %v after grow: epoch=%d members=%v", g.Group, g.Epoch, g.Members)
		}
	}
	waitFor(t, 10*time.Second, "host 2 to rejoin all groups", func() bool {
		for _, g := range c.hosts[2].Status().Groups {
			if !g.InConfig || g.Epoch != 2 {
				return false
			}
		}
		return true
	})
	if v := c.call(t, 2, 0, kvstore.Get("a")); string(v) != "3" {
		t.Errorf("GET at rejoined replica = %q, want 3", v)
	}
	// ReconfigureAll to the current configuration is a no-op success.
	if err := c.hosts[0].ReconfigureAll(ctx, []types.ReplicaID{0, 1, 2}); err != nil {
		t.Fatalf("idempotent ReconfigureAll: %v", err)
	}
	if got := c.hosts[0].Status().Groups[0].Epoch; got != 2 {
		t.Errorf("epoch advanced to %d on idempotent ReconfigureAll", got)
	}
}

// TestStatusCountersAndLatency sanity-checks the Status counters and
// the sampled commit-latency summary under enough proposals to hit the
// sampling mask.
func TestStatusCountersAndLatency(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	for k := 0; k < 64; k++ {
		c.call(t, 0, kvstore.Put("k", []byte{byte(k)}))
	}
	st := c.nodes[0].Status()
	if st.Proposed < 64 || st.Resolved < 64 {
		t.Errorf("counters: proposed=%d resolved=%d, want >= 64", st.Proposed, st.Resolved)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after all futures resolved", st.InFlight)
	}
	if st.CommitLatency.Samples == 0 {
		t.Error("no commit-latency samples after 64 proposals (mask admits 1 in 16)")
	}
	if st.CommitLatency.Mean <= 0 || st.CommitLatency.Max < st.CommitLatency.Mean {
		t.Errorf("latency summary inconsistent: %+v", st.CommitLatency)
	}
}

// TestReconfigureBypassesFullWindow checks the repair path stays open
// under backpressure: with the in-flight window full of proposals that
// cannot commit, Reconfigure must still be admitted (it is the
// operation that would unstick them), and Stop must sweep its future.
func TestReconfigureBypassesFullWindow(t *testing.T) {
	c := blockedCluster(t, Options{MaxInFlight: 1, FailFast: true})
	if _, err := c.nodes[0].Propose(context.Background(), kvstore.Put("k", []byte("v"))); err != nil {
		t.Fatalf("window-filling Propose: %v", err)
	}
	// Window is now full: a data proposal fails fast…
	if _, err := c.nodes[0].Propose(context.Background(), kvstore.Put("k", []byte("v"))); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("data Propose with full window: err = %v, want ErrOverloaded", err)
	}
	// …but the control plane is still admitted.
	fut, err := c.nodes[0].Reconfigure(context.Background(), []types.ReplicaID{0, 1})
	if err != nil {
		t.Fatalf("Reconfigure with full window: %v", err)
	}
	// The blocked cluster can never decide the epoch; Stop must sweep
	// the control future like any other.
	c.nodes[0].Stop()
	select {
	case <-fut.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("reconfigure future unresolved after Stop")
	}
	if _, err := fut.Result(); !errors.Is(err, ErrStopped) {
		t.Fatalf("reconfigure future after Stop: err = %v, want ErrStopped", err)
	}
}

// TestStopCancelsPendingTimers checks the shutdown path cancels every
// tracked timer — including a Rejoin retry chain, which used to keep
// firing after Stop.
func TestStopCancelsPendingTimers(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	// Force a Rejoin: it schedules a long retry timer (2× the consensus
	// retry timeout) that outlives the node unless Stop cancels it.
	c.nodes[2].Do(func() {
		c.nodes[2].Protocol().(*core.Replica).Rejoin()
	})
	c.nodes[2].Stop()
	c.nodes[2].timerMu.Lock()
	left, stopped := len(c.nodes[2].timers), c.nodes[2].timersStopped
	c.nodes[2].timerMu.Unlock()
	if !stopped {
		t.Error("timersStopped not set after Stop")
	}
	if left != 0 {
		t.Errorf("%d timers still tracked after Stop", left)
	}
	// After on a stopped node must not schedule anything.
	c.nodes[2].After(time.Millisecond, func() {})
	c.nodes[2].timerMu.Lock()
	left = len(c.nodes[2].timers)
	c.nodes[2].timerMu.Unlock()
	if left != 0 {
		t.Errorf("After on a stopped node tracked %d timers", left)
	}
}
