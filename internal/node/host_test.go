package node

import (
	"context"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// hostCluster wires n multi-group hosts over a shared-transport
// factory, one kvstore per (replica, group). Commands enter through
// the Propose client API of each group's node.
type hostCluster struct {
	hosts  []*Host
	stores [][]*kvstore.Store // [replica][group]
}

func newHostCluster(t *testing.T, n, groups int, mkTransport func(id types.ReplicaID) transport.Transport) *hostCluster {
	t.Helper()
	c := &hostCluster{}
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	for i := 0; i < n; i++ {
		h, err := NewHost(types.ReplicaID(i), spec, mkTransport(types.ReplicaID(i)), HostOptions{Groups: groups})
		if err != nil {
			t.Fatal(err)
		}
		stores := make([]*kvstore.Store, groups)
		for g := 0; g < groups; g++ {
			store := kvstore.New()
			stores[g] = store
			app := &rsm.App{SM: store}
			nd := h.Group(types.GroupID(g))
			nd.Bind(app)
			nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 5 * time.Millisecond}))
		}
		c.hosts = append(c.hosts, h)
		c.stores = append(c.stores, stores)
	}
	t.Cleanup(func() {
		for _, h := range c.hosts {
			h.Stop()
		}
	})
	return c
}

func (c *hostCluster) start(t *testing.T) {
	t.Helper()
	for _, h := range c.hosts {
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
	}
}

// call proposes a command on one group at one replica and waits for
// the result.
func (c *hostCluster) call(t *testing.T, at types.ReplicaID, g types.GroupID, payload []byte) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fut, err := c.hosts[at].Group(g).Propose(ctx, payload)
	if err != nil {
		t.Fatalf("Propose on group %v: %v", g, err)
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		t.Fatalf("proposal on group %v: %v", g, err)
	}
	return res.Value
}

func testHostGroupsIsolatedAndReplicated(t *testing.T, c *hostCluster, groups int) {
	t.Helper()
	c.start(t)
	// The same key written in different groups must stay independent:
	// groups are separate state machines.
	for g := 0; g < groups; g++ {
		gid := types.GroupID(g)
		val := []byte{byte('A' + g)}
		c.call(t, 0, gid, kvstore.Put("shared-key", val))
		if v := c.call(t, 1, gid, kvstore.Get("shared-key")); string(v) != string(val) {
			t.Fatalf("group %v: GET = %q, want %q", gid, v, val)
		}
	}
	// Every replica's per-group store converges to its own group's value
	// and never sees a sibling group's write.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, stores := range c.stores {
			for g, s := range stores {
				if v, _ := s.Lookup("shared-key"); string(v) != string([]byte{byte('A' + g)}) {
					ok = false
				}
			}
		}
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("per-group stores did not converge")
}

func TestHostMultiGroupInproc(t *testing.T) {
	const n, groups = 3, 3
	hub := transport.NewHub(n, transport.HubOptions{Codec: true, Groups: groups})
	t.Cleanup(hub.Close)
	c := newHostCluster(t, n, groups, func(id types.ReplicaID) transport.Transport {
		return hub.Endpoint(id)
	})
	testHostGroupsIsolatedAndReplicated(t, c, groups)
}

func TestHostMultiGroupTCP(t *testing.T) {
	const n, groups = 3, 2
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	// Bind listeners one at a time so each host knows the others' ports.
	var eps []*transport.TCPEndpoint
	spec := []types.ReplicaID{0, 1, 2}
	c := &hostCluster{}
	for i := 0; i < n; i++ {
		ep := transport.NewTCP(types.ReplicaID(i), addrs, transport.TCPOptions{DialRetry: 20 * time.Millisecond, Groups: groups})
		eps = append(eps, ep)
		h, err := NewHost(types.ReplicaID(i), spec, ep, HostOptions{Groups: groups})
		if err != nil {
			t.Fatal(err)
		}
		stores := make([]*kvstore.Store, groups)
		for g := 0; g < groups; g++ {
			store := kvstore.New()
			stores[g] = store
			app := &rsm.App{SM: store}
			nd := h.Group(types.GroupID(g))
			nd.Bind(app)
			nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 5 * time.Millisecond}))
		}
		c.hosts = append(c.hosts, h)
		c.stores = append(c.stores, stores)
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
		addrs[types.ReplicaID(i)] = eps[i].Addr()
	}
	t.Cleanup(func() {
		for _, h := range c.hosts {
			h.Stop()
		}
	})

	for g := 0; g < groups; g++ {
		gid := types.GroupID(g)
		val := []byte{byte('A' + g)}
		c.call(t, 0, gid, kvstore.Put("k", val))
		if v := c.call(t, 2, gid, kvstore.Get("k")); string(v) != string(val) {
			t.Fatalf("group %v over TCP: GET = %q, want %q", gid, v, val)
		}
	}
}

func TestHostSingleGroupPlainTransport(t *testing.T) {
	// A 1-group host must run over a transport with no group support.
	const n = 3
	hub := transport.NewHub(n, transport.HubOptions{})
	t.Cleanup(hub.Close)
	c := newHostCluster(t, n, 1, func(id types.ReplicaID) transport.Transport {
		return hub.Endpoint(id)
	})
	testHostGroupsIsolatedAndReplicated(t, c, 1)
}

func TestHostRejectsUngroupedTransport(t *testing.T) {
	hub := transport.NewHub(2, transport.HubOptions{Groups: 1})
	t.Cleanup(hub.Close)
	spec := []types.ReplicaID{0, 1}
	if _, err := NewHost(0, spec, hub.Endpoint(0), HostOptions{Groups: 4}); err == nil {
		t.Fatal("NewHost over a 1-group transport with Groups=4 succeeded")
	}
}

func TestHostStartWithoutProtocol(t *testing.T) {
	hub := transport.NewHub(1, transport.HubOptions{Groups: 2})
	t.Cleanup(hub.Close)
	h, err := NewHost(0, []types.ReplicaID{0}, hub.Endpoint(0), HostOptions{Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err == nil {
		t.Fatal("Start without protocols succeeded")
	}
	h.Stop()
	h.Stop() // idempotent
}
