package node

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"clockrsm/internal/reshard"
	"clockrsm/internal/rsm"
	"clockrsm/internal/types"
)

// HostStatus is a point-in-time snapshot of every replication group
// hosted by a node.
type HostStatus struct {
	ID     types.ReplicaID
	Groups []GroupStatus
	// RouteVersion is the routing table's change counter at this host,
	// RouteGroups how many groups the table actively routes to (hosted
	// groups beyond it are spares), and RouteMigrating how many slots
	// are mid-migration.
	RouteVersion   uint64
	RouteGroups    int
	RouteMigrating int
	// Faults holds this replica's injected-fault counters, keyed
	// "layer.kind" (e.g. "clock.freeze", "link.drop"), when the host was
	// wired with HostOptions.FaultStats; nil otherwise.
	Faults map[string]uint64
}

// Status snapshots every group's control-plane state plus the routing
// table. It never blocks on any group's event loop.
func (h *Host) Status() HostStatus {
	st := HostStatus{ID: h.id}
	t := h.holder.Load()
	st.RouteVersion = t.Version
	st.RouteGroups = t.Groups()
	owned := make([]int, len(h.nodes))
	fencing := make([]int, len(h.nodes))
	for _, c := range t.Slots {
		if int(c.Owner) < len(owned) {
			owned[c.Owner]++
			if c.Phase == reshard.Migrating {
				fencing[c.Owner]++
			}
		}
		if c.Phase == reshard.Migrating {
			st.RouteMigrating++
		}
	}
	for i, n := range h.nodes {
		gs := n.Status()
		gs.Slots = owned[i]
		gs.MigratingOut = fencing[i]
		st.Groups = append(st.Groups, gs)
	}
	if h.faultStats != nil {
		st.Faults = h.faultStats()
	}
	return st
}

// ReconfigureAll drives every hosted group to the given configuration,
// all-or-nothing: either every group ends up with exactly this member
// set, or an error reports which groups could not be moved (and the
// operator retries — the call is idempotent, and groups already at the
// target succeed immediately).
//
// Groups reconfigure independently (each is its own consensus domain),
// so atomicity is achieved by per-group epoch barriers: for each group
// the call proposes the target at the group's next epoch, waits for
// that epoch's decision to install, and — if a competing proposal (the
// failure detector, another operator) won the epoch — re-proposes at
// the new epoch until the group lands on the target or ctx expires. No
// group is left between epochs when the call returns successfully.
//
// The member set is validated once, up front, and every group's
// protocol must support reconfiguration before any group is touched, so
// a malformed request changes nothing.
func (h *Host) ReconfigureAll(ctx context.Context, members []types.ReplicaID) error {
	if _, err := h.nodes[0].canonicalMembers(members); err != nil {
		return err
	}
	for _, n := range h.nodes {
		if _, ok := n.proto.(rsm.Reconfigurable); !ok {
			return fmt.Errorf("host %v: group %v: %w", h.id, n.group, ErrNotReconfigurable)
		}
	}
	errs := make([]error, len(h.nodes))
	var wg sync.WaitGroup
	for i, n := range h.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			errs[i] = n.reconfigureUntil(ctx, members)
		}(i, n)
	}
	wg.Wait()
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("group %v: %w", h.nodes[i].group, err))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("host %v: reconfiguration incomplete (%d of %d groups): %w",
			h.id, len(failed), len(h.nodes), errors.Join(failed...))
	}
	return nil
}

// reconfigureUntil proposes members at successive epochs until the
// group installs exactly that set or ctx expires. Each lost epoch
// (ErrConfigConflict) re-proposes at the new epoch — the per-group
// epoch barrier ReconfigureAll builds on.
func (n *Node) reconfigureUntil(ctx context.Context, members []types.ReplicaID) error {
	for {
		fut, err := n.Reconfigure(ctx, members)
		if err != nil {
			return err
		}
		_, err = fut.Wait(ctx)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrConfigConflict):
			if ctx.Err() != nil {
				return ErrCanceled
			}
			continue
		default:
			return err
		}
	}
}
