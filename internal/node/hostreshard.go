package node

import (
	"context"
	"errors"
	"fmt"
	"time"

	"clockrsm/internal/reshard"
	"clockrsm/internal/shard"
	"clockrsm/internal/types"
)

// Table returns the host's current routing table (immutable snapshot).
func (h *Host) Table() *reshard.Table { return h.holder.Load() }

// Holder returns the host's table holder, for observability (persist
// errors) and tests.
func (h *Host) Holder() *reshard.Holder { return h.holder }

// retry pacing for Execute/ReadKey while a key's slot is mid-migration:
// start fine-grained (migration windows are short) and back off.
const (
	redirectBackoffMin = 500 * time.Microsecond
	redirectBackoffMax = 20 * time.Millisecond
)

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ErrCanceled
	case <-t.C:
		return nil
	}
}

// stableOwner blocks until key's slot has a stable (Owned) claim and
// returns its slot and owner. During a migration window it polls with
// backoff: the window closes when the install flips the claim, or ctx
// gives up (a stalled split is healed out-of-band, see Heal).
func (h *Host) stableOwner(ctx context.Context, key string) (slot int, owner types.GroupID, err error) {
	backoff := redirectBackoffMin
	for {
		t := h.holder.Load()
		slot = t.SlotOf(key)
		c := t.Slots[slot]
		if c.Phase == reshard.Owned {
			return slot, c.Owner, nil
		}
		if err := sleepCtx(ctx, backoff); err != nil {
			return 0, 0, &WrongGroupError{To: c.To}
		}
		if backoff *= 2; backoff > redirectBackoffMax {
			backoff = redirectBackoffMax
		}
	}
}

// Execute proposes payload on key's group and waits for its result,
// retrying through routing changes: if the key's slot is mid-migration
// it waits for the flip, and if the command lands on a fence
// (ErrWrongGroup) it re-routes against the refreshed table and
// resubmits. A fenced command was never executed, so the resubmission
// preserves at-most-once execution; ctx bounds the total wait. This is
// the dispatch path the server front ends use.
func (h *Host) Execute(ctx context.Context, key string, payload []byte) (types.Result, error) {
	for {
		_, owner, err := h.stableOwner(ctx, key)
		if err != nil {
			return types.Result{}, err
		}
		fut, err := h.nodes[owner].Propose(ctx, payload)
		if err != nil {
			return types.Result{}, err
		}
		res, err := fut.Wait(ctx)
		if err == nil || !errors.Is(err, ErrWrongGroup) {
			return res, err
		}
		// Fenced mid-flight: the table here may not have flipped yet;
		// loop — stableOwner waits out the window.
		if ctx.Err() != nil {
			return res, err
		}
	}
}

// ExecutePayload is Execute for encoded kvstore payloads, extracting
// the routing key itself. Non-kvstore payloads execute on group 0.
func (h *Host) ExecutePayload(ctx context.Context, payload []byte) (types.Result, error) {
	key, ok := shard.Key(payload)
	if !ok {
		fut, err := h.nodes[0].Propose(ctx, payload)
		if err != nil {
			return types.Result{}, err
		}
		return fut.Wait(ctx)
	}
	return h.Execute(ctx, key, payload)
}

// ReadKey answers an opaque read-only query on the replication group
// responsible for key, at the requested consistency level. The read is
// gated against the routing table at serve time: if the key's slot
// migrated (or began migrating) between submit and serve, the read
// fails over to the new owner instead of serving state that may no
// longer be the latest — the write fence alone cannot protect a read
// served after ownership flipped elsewhere.
func (h *Host) ReadKey(ctx context.Context, key string, query []byte, lvl Level) (ReadResult, error) {
	for {
		slot, owner, err := h.stableOwner(ctx, key)
		if err != nil {
			return ReadResult{}, err
		}
		gate := func() error {
			c := h.holder.Load().Slots[slot]
			if c.Phase != reshard.Owned || c.Owner != owner {
				to := c.Owner
				if c.Phase == reshard.Migrating {
					to = c.To
				}
				return &WrongGroupError{To: to}
			}
			return nil
		}
		res, err := h.nodes[owner].readGated(ctx, query, lvl, gate)
		if err == nil || !errors.Is(err, ErrWrongGroup) {
			return res, err
		}
		if ctx.Err() != nil {
			return res, err
		}
	}
}

// splitCluster adapts the Host to the coordinator's Cluster interface.
type splitCluster struct{ h *Host }

func (c splitCluster) Table() *reshard.Table { return c.h.holder.Load() }

func (c splitCluster) Propose(ctx context.Context, g types.GroupID, payload []byte) ([]byte, error) {
	if int(g) >= len(c.h.nodes) {
		return nil, fmt.Errorf("host %v: no group %v (hosting %d)", c.h.id, g, len(c.h.nodes))
	}
	fut, err := c.h.nodes[g].Propose(ctx, payload)
	if err != nil {
		return nil, err
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return res.Value, nil
}

func (c splitCluster) SourceSnapshot(g types.GroupID, slots []uint32) ([]reshard.Pair, error) {
	if int(g) >= len(c.h.shardSMs) || c.h.shardSMs[g] == nil {
		return nil, fmt.Errorf("host %v: group %v has no resharding wrapper (Bind through Host.Bind)", c.h.id, g)
	}
	var pairs []reshard.Pair
	var err error
	ran := false
	// Serialize the checkpoint with the group's apply loop, so the
	// snapshot sits at a well-defined log position (after the fence).
	c.h.nodes[g].Do(func() {
		ran = true
		pairs, err = c.h.shardSMs[g].SnapshotSlots(slots)
	})
	if !ran {
		return nil, ErrStopped
	}
	return pairs, err
}

// Coordinator returns a split coordinator operating through this host.
// Callers may set OnPhase (crash injection in tests) before driving
// Split or Heal.
func (h *Host) Coordinator() *reshard.Coordinator {
	return &reshard.Coordinator{Cluster: splitCluster{h: h}}
}

// Split live-moves the upper half of group src's slots to group dst:
// fence in src's log, checkpoint the frozen slots, seed dst through
// its log, flip ownership on the final install. dst must be a hosted
// (spare or existing) group. See reshard.Coordinator.
func (h *Host) Split(ctx context.Context, src, dst types.GroupID) (*reshard.SplitReport, error) {
	if int(dst) >= len(h.nodes) || dst < 0 {
		return nil, fmt.Errorf("host %v: split target %v not hosted (capacity %d; restart with a larger -groups)", h.id, dst, len(h.nodes))
	}
	return h.Coordinator().Split(ctx, src, dst)
}

// Heal rolls forward any split left mid-flight by a crashed
// coordinator; see reshard.Coordinator.Heal.
func (h *Host) Heal(ctx context.Context) ([]*reshard.SplitReport, error) {
	return h.Coordinator().Heal(ctx)
}
