package node

import (
	"context"
	"fmt"
	"runtime"

	"clockrsm/internal/clock"
	"clockrsm/internal/msg"
	"clockrsm/internal/reshard"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// HostOptions configure a multi-group Host.
type HostOptions struct {
	// Groups is the number of independent replication groups this node
	// hosts (default 1).
	Groups int
	// Clock is the physical clock shared by every group; nil uses a
	// monotonic wrapper over the system clock. One clock for all groups
	// keeps cross-group timestamps comparable on one node and mirrors
	// the paper's single clock_gettime source per machine.
	Clock clock.Clock
	// NewLog constructs group g's stable log; nil gives every group its
	// own in-memory log.
	NewLog func(g types.GroupID) storage.Log
	// QueueLen is the per-group event queue capacity (default 8192).
	QueueLen int
	// BatchLimit caps events drained per loop turn per group (default
	// 256).
	BatchLimit int
	// MaxInFlight is each group's backpressure window: proposals
	// admitted by Propose but not yet resolved (default 1024).
	MaxInFlight int
	// FailFast makes Propose return ErrOverloaded on a full window
	// instead of blocking.
	FailFast bool
	// SubmitBatch is each group's client-side batching width (default
	// 1): up to this many buffered proposals flush into one event-loop
	// turn, sharing one coalesced PREPARE broadcast (Section VI-D).
	SubmitBatch int
	// PinGroups pins each group's event loop to its own CPU (group g to
	// CPU g mod NumCPU), isolating the loops from scheduler migration on
	// multi-core hosts. Linux only; elsewhere loops are thread-locked
	// but not pinned.
	PinGroups bool
	// Table is the initial routing table. Nil derives the legacy
	// layout from Groups (slot s → group s mod Groups), which places
	// every key exactly where the fixed hash-mod-G router did. A table
	// routing to fewer groups than Groups leaves the extras as spares a
	// split can activate.
	Table *reshard.Table
	// RoutesPath, when non-empty, persists the routing table there on
	// every change, and is where a restarted host resumes routing from
	// (see reshard.Load).
	RoutesPath string
	// FaultStats, when set, reports this replica's injected-fault
	// counters (chaos.Engine.ReplicaCounts) and is surfaced verbatim in
	// HostStatus.Faults and the kvserver STATUS output, so an operator
	// can see which scheduled faults actually fired. Must be safe from
	// any goroutine. Nil outside fault-injection runs.
	FaultStats func() map[string]uint64
}

// Host runs G independent replication groups on one node. Each group
// is a full protocol instance with its own single-goroutine event
// loop, stable log and state machine; all groups share one transport
// endpoint (and therefore one connection set), one physical clock and
// one replica identity. Traffic is demultiplexed by the transport's
// group tag, so adding groups adds event loops — and, on multi-core
// hardware, parallel commit cascades — without adding sockets.
//
// Wire a Host like a set of Nodes: attach a protocol to every group
// with Group(g).SetProtocol, then Start the host once.
type Host struct {
	id     types.ReplicaID
	tr     transport.Transport
	nodes  []*Node
	router *shard.Router
	// faultStats reports injected-fault counters for Status; nil
	// outside chaos runs (see HostOptions.FaultStats).
	faultStats func() map[string]uint64
	// holder owns the live routing table (the source of truth for
	// key→group dispatch); shardSMs are the per-group resharding
	// wrappers Bind installs around the application state machines.
	holder   *reshard.Holder
	shardSMs []*reshard.SM
}

// NewHost creates a host for replica id over tr with opts.Groups
// groups. tr must implement transport.GroupTransport when more than
// one group is requested.
func NewHost(id types.ReplicaID, spec []types.ReplicaID, tr transport.Transport, opts HostOptions) (*Host, error) {
	g := opts.Groups
	if g <= 0 {
		g = 1
	}
	gt, isGT := tr.(transport.GroupTransport)
	if g > 1 {
		if !isGT {
			return nil, fmt.Errorf("host %v: transport %T does not multiplex groups", id, tr)
		}
		if gt.Groups() < g {
			return nil, fmt.Errorf("host %v: transport configured for %d groups, host wants %d", id, gt.Groups(), g)
		}
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewMonotonic(clock.System{})
	}
	tbl := opts.Table
	if tbl == nil {
		tbl = reshard.Legacy(g)
	}
	if tg := tbl.Groups(); tg > g {
		return nil, fmt.Errorf("host %v: routing table uses %d groups, host only hosts %d", id, tg, g)
	}
	h := &Host{
		id:         id,
		tr:         tr,
		router:     shard.NewRouter(g),
		holder:     reshard.NewHolder(tbl, opts.RoutesPath),
		shardSMs:   make([]*reshard.SM, g),
		faultStats: opts.FaultStats,
	}
	for i := 0; i < g; i++ {
		gid := types.GroupID(i)
		var lg storage.Log
		if opts.NewLog != nil {
			lg = opts.NewLog(gid)
		}
		pin := 0
		if opts.PinGroups {
			pin = i%runtime.NumCPU() + 1
		}
		n := newNode(id, spec, tr, gid, true, Options{
			Clock:       clk,
			Log:         lg,
			QueueLen:    opts.QueueLen,
			BatchLimit:  opts.BatchLimit,
			MaxInFlight: opts.MaxInFlight,
			FailFast:    opts.FailFast,
			SubmitBatch: opts.SubmitBatch,
			PinCPU:      pin,
		})
		if isGT {
			gt.SetGroupHandler(gid, func(from types.ReplicaID, m msg.Message) {
				if !n.enqueue(event{m: m, from: from}) {
					msg.Recycle(m) // group stopped: reclaim pooled storage
				}
			})
		} else {
			tr.SetHandler(func(from types.ReplicaID, m msg.Message) {
				if !n.enqueue(event{m: m, from: from}) {
					msg.Recycle(m) // group stopped: reclaim pooled storage
				}
			})
		}
		h.nodes = append(h.nodes, n)
	}
	return h, nil
}

// ID returns the replica identity shared by every group.
func (h *Host) ID() types.ReplicaID { return h.id }

// Groups returns the number of groups hosted.
func (h *Host) Groups() int { return len(h.nodes) }

// Group returns group g's node — an rsm.Env for protocol construction
// and the handle for Propose/Do against that group.
func (h *Host) Group(g types.GroupID) *Node { return h.nodes[g] }

// Router returns the legacy fixed key→group router. It reflects the
// hosted group count, not live routing: since resharding, dispatch
// goes through the routing table (see Table), which starts out
// placement-identical to this router and then diverges as groups
// split.
func (h *Host) Router() *shard.Router { return h.router }

// Propose routes an encoded kvstore payload to its key's replication
// group (via the routing table, so every node and client library
// dispatches identically) and proposes it there. For payloads that are
// not kvstore commands, or to route by an explicit key, use ProposeKey
// or Group(g).Propose.
func (h *Host) Propose(ctx context.Context, payload []byte) (*Future, error) {
	return h.nodes[h.groupForPayload(payload)].Propose(ctx, payload)
}

// ProposeKey proposes an opaque payload on the replication group
// responsible for key. The future fails with ErrWrongGroup if the
// key's slot migrates before the command executes; Execute wraps this
// with the retry loop front ends want.
func (h *Host) ProposeKey(ctx context.Context, key string, payload []byte) (*Future, error) {
	return h.nodes[h.holder.Load().Group(key)].Propose(ctx, payload)
}

// Read answers a read-only kvstore query at the requested consistency
// level, routed to its key's replication group by the routing table —
// the same dispatch Propose uses, so a read always lands in the group
// whose total order its key's writes belong to. See Node.Read.
func (h *Host) Read(ctx context.Context, query []byte, lvl Level) (ReadResult, error) {
	if key, ok := shard.Key(query); ok {
		return h.ReadKey(ctx, key, query, lvl)
	}
	return h.nodes[0].Read(ctx, query, lvl)
}

// groupForPayload routes an encoded kvstore payload through the table;
// malformed payloads route to group 0 (every replica executes them as
// identical deterministic no-ops, so any fixed group preserves
// agreement).
func (h *Host) groupForPayload(payload []byte) types.GroupID {
	key, ok := shard.Key(payload)
	if !ok {
		return 0
	}
	return h.holder.Load().Group(key)
}

// Bind connects group g's application to that group's proposal futures
// (see Node.Bind), wrapping its state machine with the resharding
// layer first: control commands (fence, install) replicated in g's log
// mutate routing state, and data commands for migrated slots turn into
// typed redirects instead of applies. The wrapper forwards the inner
// machine's query and snapshot capabilities, so reads and checkpoints
// keep working — checkpoints now carry the route state alongside the
// data it protects.
func (h *Host) Bind(g types.GroupID, app *rsm.App) {
	wrapped := reshard.Wrap(g, app.SM, h.holder)
	h.shardSMs[g] = reshard.Base(wrapped)
	app.SM = wrapped
	h.nodes[g].Bind(app)
}

// Start launches every group's event loop, then the shared transport,
// then starts every protocol on its loop. Every group must have a
// protocol attached.
func (h *Host) Start() error {
	for _, n := range h.nodes {
		if n.proto == nil {
			return fmt.Errorf("host %v: group %v has no protocol", h.id, n.group)
		}
	}
	started := 0
	for _, n := range h.nodes {
		if err := n.startLoop(); err != nil {
			for _, m := range h.nodes[:started] {
				m.stopLoop()
			}
			return err
		}
		started++
	}
	if err := h.tr.Start(); err != nil {
		for _, n := range h.nodes {
			n.stopLoop()
		}
		return err
	}
	for _, n := range h.nodes {
		n.enqueue(event{fn: n.proto.Start})
	}
	return nil
}

// Stop terminates every group's event loop and closes the shared
// transport. It is idempotent.
func (h *Host) Stop() {
	for _, n := range h.nodes {
		n.stopLoop()
	}
	h.tr.Close()
}
