package node

import (
	"context"
	"sync"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/mencius"
	"clockrsm/internal/paxos"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// cluster wires n nodes over an in-process hub running the given
// protocol constructor. Commands enter through the public Propose API.
type cluster struct {
	hub    *transport.Hub
	nodes  []*Node
	stores []*kvstore.Store
	orders [][]types.CommandID
	mu     sync.Mutex
}

func newCluster(t *testing.T, n int, lat *wan.Matrix,
	mk func(env rsm.Env, app *rsm.App) rsm.Protocol) *cluster {
	return newClusterOpts(t, n, lat, mk, Options{})
}

func newClusterOpts(t *testing.T, n int, lat *wan.Matrix,
	mk func(env rsm.Env, app *rsm.App) rsm.Protocol, opts Options) *cluster {
	t.Helper()
	c := &cluster{
		hub:    transport.NewHub(n, transport.HubOptions{Latency: lat}),
		orders: make([][]types.CommandID, n),
	}
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	for i := 0; i < n; i++ {
		i := i
		store := kvstore.New()
		c.stores = append(c.stores, store)
		nd := New(types.ReplicaID(i), spec, c.hub.Endpoint(types.ReplicaID(i)), opts)
		app := &rsm.App{
			SM: store,
			OnCommit: func(ts types.Timestamp, cmd types.Command) {
				c.mu.Lock()
				c.orders[i] = append(c.orders[i], cmd.ID)
				c.mu.Unlock()
			},
		}
		nd.Bind(app)
		nd.SetProtocol(mk(nd, app))
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.Stop()
		}
		c.hub.Close()
	})
	return c
}

// call proposes a command at a replica and waits for its reply.
func (c *cluster) call(t *testing.T, at types.ReplicaID, payload []byte) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fut, err := c.nodes[at].Propose(ctx, payload)
	if err != nil {
		t.Fatalf("Propose at %v: %v", at, err)
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		t.Fatalf("proposal at %v: %v", at, err)
	}
	return res.Value
}

func protoMakers() map[string]func(env rsm.Env, app *rsm.App) rsm.Protocol {
	return map[string]func(env rsm.Env, app *rsm.App) rsm.Protocol{
		"clockrsm": func(env rsm.Env, app *rsm.App) rsm.Protocol {
			return core.New(env, app, core.Options{ClockTimeInterval: 5 * time.Millisecond})
		},
		"paxos-bcast": func(env rsm.Env, app *rsm.App) rsm.Protocol {
			return paxos.New(env, app, paxos.Options{Leader: 0, Broadcast: true})
		},
		"mencius-bcast": func(env rsm.Env, app *rsm.App) rsm.Protocol {
			return mencius.New(env, app)
		},
	}
}

func TestKVOverRealRuntime(t *testing.T) {
	lat := wan.Uniform(3, 2*time.Millisecond)
	for name, mk := range protoMakers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			c := newCluster(t, 3, lat, mk)
			c.call(t, 0, kvstore.Put("x", []byte("1")))
			if v := c.call(t, 1, kvstore.Get("x")); string(v) != "1" {
				t.Fatalf("GET x = %q, want 1", v)
			}
			if v := c.call(t, 2, kvstore.Put("x", []byte("2"))); string(v) != "1" {
				t.Fatalf("PUT returned %q, want previous 1", v)
			}
			if v := c.call(t, 0, kvstore.Get("x")); string(v) != "2" {
				t.Fatalf("GET x = %q, want 2", v)
			}
		})
	}
}

func TestConcurrentClientsTotalOrder(t *testing.T) {
	lat := wan.Uniform(3, time.Millisecond)
	for name, mk := range protoMakers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			c := newCluster(t, 3, lat, mk)
			const perReplica = 30
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				for k := 0; k < 3; k++ { // 3 clients per replica
					wg.Add(1)
					go func(rep int) {
						defer wg.Done()
						for n := 0; n < perReplica/3; n++ {
							c.call(t, types.ReplicaID(rep), kvstore.Put("k", []byte{byte(n)}))
						}
					}(i)
				}
			}
			wg.Wait()
			// Let trailing commits land everywhere.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				c.mu.Lock()
				done := len(c.orders[0]) == 90 && len(c.orders[1]) == 90 && len(c.orders[2]) == 90
				c.mu.Unlock()
				if done {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			c.mu.Lock()
			defer c.mu.Unlock()
			for i := 1; i < 3; i++ {
				if len(c.orders[i]) != len(c.orders[0]) {
					t.Fatalf("replica %d executed %d commands, replica 0 %d", i, len(c.orders[i]), len(c.orders[0]))
				}
				for j := range c.orders[i] {
					if c.orders[i][j] != c.orders[0][j] {
						t.Fatalf("%s: divergence at %d", name, j)
					}
				}
			}
		})
	}
}

func TestNodeOverTCP(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	spec := []types.ReplicaID{0, 1, 2}
	// Bind listeners one at a time so each node knows the others' ports.
	var eps []*transport.TCPEndpoint
	var nodes []*Node
	stores := make([]*kvstore.Store, 3)
	for i := 0; i < 3; i++ {
		ep := transport.NewTCP(types.ReplicaID(i), addrs, transport.TCPOptions{DialRetry: 20 * time.Millisecond})
		eps = append(eps, ep)
		stores[i] = kvstore.New()
		nd := New(types.ReplicaID(i), spec, ep, Options{})
		app := &rsm.App{SM: stores[i]}
		nd.Bind(app)
		nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 5 * time.Millisecond}))
		nodes = append(nodes, nd)
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
		addrs[types.ReplicaID(i)] = ep.Addr()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fut, err := nodes[0].Propose(ctx, kvstore.Put("greeting", []byte("hello")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(ctx); err != nil {
		t.Fatalf("no reply over TCP: %v", err)
	}
	// Every store converges.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, s := range stores {
			if v, _ := s.Lookup("greeting"); string(v) != "hello" {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("stores did not converge over TCP")
}

func TestNodeDoAndStopIdempotent(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	var epoch types.Epoch
	c.nodes[0].Do(func() {
		epoch = c.nodes[0].Protocol().(*core.Replica).Epoch()
	})
	if epoch != 0 {
		t.Errorf("epoch = %d", epoch)
	}
	c.nodes[0].Stop()
	c.nodes[0].Stop() // second Stop must not panic or hang
}
