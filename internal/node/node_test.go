package node

import (
	"sync"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/mencius"
	"clockrsm/internal/paxos"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// cluster wires n nodes over an in-process hub running the given
// protocol constructor.
type cluster struct {
	hub    *transport.Hub
	nodes  []*Node
	stores []*kvstore.Store
	orders [][]types.CommandID
	mu     sync.Mutex

	replyMu sync.Mutex
	replies map[types.CommandID]chan []byte
}

func newCluster(t *testing.T, n int, lat *wan.Matrix,
	mk func(env rsm.Env, app *rsm.App) rsm.Protocol) *cluster {
	t.Helper()
	c := &cluster{
		hub:     transport.NewHub(n, transport.HubOptions{Latency: lat}),
		replies: make(map[types.CommandID]chan []byte),
		orders:  make([][]types.CommandID, n),
	}
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	for i := 0; i < n; i++ {
		i := i
		store := kvstore.New()
		c.stores = append(c.stores, store)
		nd := New(types.ReplicaID(i), spec, c.hub.Endpoint(types.ReplicaID(i)), Options{})
		app := &rsm.App{
			SM: store,
			OnCommit: func(ts types.Timestamp, cmd types.Command) {
				c.mu.Lock()
				c.orders[i] = append(c.orders[i], cmd.ID)
				c.mu.Unlock()
			},
			OnReply: func(res types.Result) {
				c.replyMu.Lock()
				ch := c.replies[res.ID]
				c.replyMu.Unlock()
				if ch != nil {
					ch <- res.Value
				}
			},
		}
		nd.SetProtocol(mk(nd, app))
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.Stop()
		}
		c.hub.Close()
	})
	return c
}

// call submits a command at a replica and waits for its reply.
func (c *cluster) call(t *testing.T, at types.ReplicaID, cid types.CommandID, payload []byte) []byte {
	t.Helper()
	ch := make(chan []byte, 1)
	c.replyMu.Lock()
	c.replies[cid] = ch
	c.replyMu.Unlock()
	c.nodes[at].Submit(types.Command{ID: cid, Payload: payload})
	select {
	case v := <-ch:
		return v
	case <-time.After(10 * time.Second):
		t.Fatalf("timeout waiting for reply to %v", cid)
		return nil
	}
}

func protoMakers() map[string]func(env rsm.Env, app *rsm.App) rsm.Protocol {
	return map[string]func(env rsm.Env, app *rsm.App) rsm.Protocol{
		"clockrsm": func(env rsm.Env, app *rsm.App) rsm.Protocol {
			return core.New(env, app, core.Options{ClockTimeInterval: 5 * time.Millisecond})
		},
		"paxos-bcast": func(env rsm.Env, app *rsm.App) rsm.Protocol {
			return paxos.New(env, app, paxos.Options{Leader: 0, Broadcast: true})
		},
		"mencius-bcast": func(env rsm.Env, app *rsm.App) rsm.Protocol {
			return mencius.New(env, app)
		},
	}
}

func TestKVOverRealRuntime(t *testing.T) {
	lat := wan.Uniform(3, 2*time.Millisecond)
	for name, mk := range protoMakers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			c := newCluster(t, 3, lat, mk)
			seq := uint64(0)
			id := func(origin types.ReplicaID) types.CommandID {
				seq++
				return types.CommandID{Origin: origin, Seq: seq}
			}
			c.call(t, 0, id(0), kvstore.Put("x", []byte("1")))
			if v := c.call(t, 1, id(1), kvstore.Get("x")); string(v) != "1" {
				t.Fatalf("GET x = %q, want 1", v)
			}
			if v := c.call(t, 2, id(2), kvstore.Put("x", []byte("2"))); string(v) != "1" {
				t.Fatalf("PUT returned %q, want previous 1", v)
			}
			if v := c.call(t, 0, id(0), kvstore.Get("x")); string(v) != "2" {
				t.Fatalf("GET x = %q, want 2", v)
			}
		})
	}
}

func TestConcurrentClientsTotalOrder(t *testing.T) {
	lat := wan.Uniform(3, time.Millisecond)
	for name, mk := range protoMakers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			c := newCluster(t, 3, lat, mk)
			const perReplica = 30
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				for k := 0; k < 3; k++ { // 3 clients per replica
					wg.Add(1)
					go func(rep, cli int) {
						defer wg.Done()
						for n := 0; n < perReplica/3; n++ {
							cid := types.CommandID{
								Origin: types.ReplicaID(rep),
								Seq:    uint64(cli*1000 + n + 1),
							}
							c.call(t, types.ReplicaID(rep), cid, kvstore.Put("k", []byte{byte(n)}))
						}
					}(i, k)
				}
			}
			wg.Wait()
			// Let trailing commits land everywhere.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				c.mu.Lock()
				done := len(c.orders[0]) == 90 && len(c.orders[1]) == 90 && len(c.orders[2]) == 90
				c.mu.Unlock()
				if done {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			c.mu.Lock()
			defer c.mu.Unlock()
			for i := 1; i < 3; i++ {
				if len(c.orders[i]) != len(c.orders[0]) {
					t.Fatalf("replica %d executed %d commands, replica 0 %d", i, len(c.orders[i]), len(c.orders[0]))
				}
				for j := range c.orders[i] {
					if c.orders[i][j] != c.orders[0][j] {
						t.Fatalf("%s: divergence at %d", name, j)
					}
				}
			}
		})
	}
}

func TestNodeOverTCP(t *testing.T) {
	addrs := map[types.ReplicaID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	spec := []types.ReplicaID{0, 1, 2}
	// Bind listeners one at a time so each node knows the others' ports.
	var eps []*transport.TCPEndpoint
	var nodes []*Node
	stores := make([]*kvstore.Store, 3)
	replyCh := make(chan []byte, 1)
	for i := 0; i < 3; i++ {
		ep := transport.NewTCP(types.ReplicaID(i), addrs, transport.TCPOptions{DialRetry: 20 * time.Millisecond})
		eps = append(eps, ep)
		stores[i] = kvstore.New()
		nd := New(types.ReplicaID(i), spec, ep, Options{})
		app := &rsm.App{SM: stores[i]}
		if i == 0 {
			app.OnReply = func(res types.Result) { replyCh <- res.Value }
		}
		nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 5 * time.Millisecond}))
		nodes = append(nodes, nd)
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
		addrs[types.ReplicaID(i)] = ep.Addr()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	nodes[0].Submit(types.Command{
		ID:      types.CommandID{Origin: 0, Seq: 1},
		Payload: kvstore.Put("greeting", []byte("hello")),
	})
	select {
	case <-replyCh:
	case <-time.After(10 * time.Second):
		t.Fatal("no reply over TCP")
	}
	// Every store converges.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, s := range stores {
			if v, _ := s.Lookup("greeting"); string(v) != "hello" {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("stores did not converge over TCP")
}

func TestNodeDoAndStopIdempotent(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	var epoch types.Epoch
	c.nodes[0].Do(func() {
		epoch = c.nodes[0].Protocol().(*core.Replica).Epoch()
	})
	if epoch != 0 {
		t.Errorf("epoch = %d", epoch)
	}
	c.nodes[0].Stop()
	c.nodes[0].Stop() // second Stop must not panic or hang
}
