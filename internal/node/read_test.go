package node

import (
	"context"
	"errors"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// readAt issues one read and fails the test on error.
func (c *cluster) readAt(t *testing.T, at types.ReplicaID, query []byte, lvl Level) ReadResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.nodes[at].Read(ctx, query, lvl)
	if err != nil {
		t.Fatalf("Read at %v (%v): %v", at, lvl.Tier(), err)
	}
	return res
}

// TestReadLinearizableObservesCompletedWrite is the headline contract:
// a linearizable read started after a write completed observes it, at
// any replica, without replicating the read.
func TestReadLinearizableObservesCompletedWrite(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	c.call(t, 0, kvstore.Put("k", []byte("v1")))
	for at := types.ReplicaID(0); at < 3; at++ {
		res := c.readAt(t, at, kvstore.Get("k"), Linearizable)
		if string(res.Value) != "v1" {
			t.Fatalf("replica %v: linearizable read = %q, want v1", at, res.Value)
		}
		if res.Replicated {
			t.Fatalf("replica %v: linearizable read was replicated", at)
		}
		if res.Watermark == 0 {
			t.Fatalf("replica %v: read served with zero watermark", at)
		}
	}
	// The reads added no replication traffic: only the single PUT was
	// ever proposed anywhere.
	var proposed uint64
	for _, nd := range c.nodes {
		proposed += nd.Status().Proposed
	}
	if proposed != 1 {
		t.Fatalf("local reads proposed commands: %d total proposals, want 1", proposed)
	}
}

// TestReadSequentialSession checks session monotonicity: a sequential
// read through a session never observes state older than what an
// earlier read through the same session saw — across replicas.
func TestReadSequentialSession(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	c.call(t, 0, kvstore.Put("s", []byte("sv1")))
	var sess Session
	res := c.readAt(t, 0, kvstore.Get("s"), Sequential(&sess))
	if string(res.Value) != "sv1" {
		t.Fatalf("sequential read at origin = %q, want sv1", res.Value)
	}
	if sess.Watermark() != res.Watermark || sess.Watermark() == 0 {
		t.Fatalf("session token %d, read watermark %d", sess.Watermark(), res.Watermark)
	}
	// Fail over: the other replicas must wait until their watermark
	// covers the session before serving, so the value can't be older.
	for at := types.ReplicaID(1); at < 3; at++ {
		res := c.readAt(t, at, kvstore.Get("s"), Sequential(&sess))
		if string(res.Value) != "sv1" {
			t.Fatalf("replica %v: session read = %q, want sv1", at, res.Value)
		}
		if res.Watermark < sess.Watermark() {
			t.Fatalf("replica %v: served at %d below session %d", at, res.Watermark, sess.Watermark())
		}
	}
}

// TestReadStale checks the bounded-staleness tier: reads serve
// immediately with an age report, and the bound is enforced.
func TestReadStale(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	ctx := context.Background()
	// Before any commit the watermark is primordial: a bounded read is
	// too stale, an unbounded one serves the empty state.
	if _, err := c.nodes[0].Read(ctx, kvstore.Get("z"), Stale(time.Minute)); !errors.Is(err, ErrTooStale) {
		t.Fatalf("bounded stale read before any commit: %v, want ErrTooStale", err)
	}
	res, err := c.nodes[0].Read(ctx, kvstore.Get("z"), Stale(0))
	if err != nil || res.Value != nil {
		t.Fatalf("unbounded stale read = %q, %v", res.Value, err)
	}
	// After a commit the watermark is fresh: a generous bound passes
	// and the committed value is visible at the origin.
	c.call(t, 0, kvstore.Put("z", []byte("zv")))
	res, err = c.nodes[0].Read(ctx, kvstore.Get("z"), Stale(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "zv" {
		t.Fatalf("stale read after commit = %q, want zv", res.Value)
	}
	if res.Age <= 0 || res.Watermark == 0 {
		t.Fatalf("stale read age %v watermark %d, want positive", res.Age, res.Watermark)
	}
}

// TestReadFallbackReplicated: protocols without a watermark (paxos,
// mencius) serve every level by replicating the read as a command.
func TestReadFallbackReplicated(t *testing.T) {
	for _, name := range []string{"paxos-bcast", "mencius-bcast"} {
		name := name
		t.Run(name, func(t *testing.T) {
			c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()[name])
			c.call(t, 0, kvstore.Put("f", []byte("fv")))
			var sess Session
			for _, lvl := range []Level{Linearizable, Sequential(&sess), Stale(time.Hour)} {
				res := c.readAt(t, 0, kvstore.Get("f"), lvl)
				if !res.Replicated {
					t.Fatalf("%v read under %s not replicated", lvl.Tier(), name)
				}
				if string(res.Value) != "fv" {
					t.Fatalf("%v read = %q, want fv", lvl.Tier(), res.Value)
				}
			}
		})
	}
}

// quietClockRSM is a Clock-RSM maker with the CLOCKTIME broadcast and
// the idle-read CLOCKREQ nudge disabled: with no write traffic the
// watermark never advances, so linearizable reads park indefinitely —
// the setup for testing the parked-read sweep contracts.
func quietClockRSM(env rsm.Env, app *rsm.App) rsm.Protocol {
	return core.New(env, app, core.Options{NoReadNudge: true})
}

// TestRemovedReplicaFailsParkedReads is the reconfiguration × reads
// regression: a linearizable read parked at a replica that is then
// removed from the configuration resolves ErrNotInConfig — the same
// sweep contract as write futures — and later reads at the removed
// replica fail fast with the same error.
func TestRemovedReplicaFailsParkedReads(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), quietClockRSM)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	errCh := make(chan error, 1)
	go func() {
		_, err := c.nodes[2].Read(ctx, kvstore.Get("k"), Linearizable)
		errCh <- err
	}()
	// Let the read reach the loop and park (the watermark is stuck at
	// zero: no traffic, no CLOCKTIME).
	deadline := time.Now().Add(5 * time.Second)
	for c.nodes[2].Status().ReadsParked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("read never parked")
		}
		time.Sleep(time.Millisecond)
	}

	// Remove replica 2. Its parked read must resolve ErrNotInConfig.
	fut, err := c.nodes[0].Reconfigure(ctx, []types.ReplicaID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrNotInConfig) {
			t.Fatalf("parked read at removed replica resolved %v, want ErrNotInConfig", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("parked read did not resolve after removal")
	}

	// New reads at the removed replica fail fast, at every loop-served
	// level.
	for _, lvl := range []Level{Linearizable, Sequential(nil)} {
		if _, err := c.nodes[2].Read(ctx, kvstore.Get("k"), lvl); !errors.Is(err, ErrNotInConfig) {
			t.Fatalf("%v read at removed replica: %v, want ErrNotInConfig", lvl.Tier(), err)
		}
	}
}

// TestStopSweepsParkedReads: Stop resolves parked reads ErrStopped, so
// no reader hangs across shutdown.
func TestStopSweepsParkedReads(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), quietClockRSM)
	ctx := context.Background()
	errCh := make(chan error, 1)
	go func() {
		_, err := c.nodes[0].Read(ctx, kvstore.Get("k"), Linearizable)
		errCh <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.nodes[0].Status().ReadsParked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("read never parked")
		}
		time.Sleep(time.Millisecond)
	}
	c.nodes[0].Stop()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("parked read resolved %v at Stop, want ErrStopped", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked read survived Stop")
	}
}

// TestStaleReadAfterStop: the shutdown contract is uniform across
// tiers — a stopped node fails Stale reads too, instead of serving its
// frozen state forever.
func TestStaleReadAfterStop(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	c.call(t, 0, kvstore.Put("k", []byte("v")))
	c.nodes[0].Stop()
	if _, err := c.nodes[0].Read(context.Background(), kvstore.Get("k"), Stale(0)); !errors.Is(err, ErrStopped) {
		t.Fatalf("stale read after Stop: %v, want ErrStopped", err)
	}
}

// TestReadCanceledWhileParked: a context expiry abandons a parked read
// with ErrCanceled; the loop's later serve is a no-op.
func TestReadCanceledWhileParked(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), quietClockRSM)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.nodes[0].Read(ctx, kvstore.Get("k"), Linearizable); !errors.Is(err, ErrCanceled) {
		t.Fatalf("abandoned read resolved %v, want ErrCanceled", err)
	}
}

// TestAbandonedParkedReadsPurged: canceled reads do not pin the waiter
// queue at a replica whose watermark is stalled — retry loops against
// a partitioned replica must not grow memory without bound.
func TestAbandonedParkedReadsPurged(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), quietClockRSM)
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		if _, err := c.nodes[0].Read(ctx, kvstore.Get("k"), Linearizable); !errors.Is(err, ErrCanceled) {
			t.Fatalf("read %d: %v, want ErrCanceled", i, err)
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var qlen int
		c.nodes[0].Do(func() { qlen = len(c.nodes[0].readQ) })
		if qlen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d abandoned reads still parked on the waiter queue", qlen)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHostReadRouting: Host.Read and Host.ReadKey land a read in the
// same group the key's writes replicate in.
func TestHostReadRouting(t *testing.T) {
	const groups = 3
	hub := transport.NewHub(3, transport.HubOptions{Codec: true, Groups: groups})
	t.Cleanup(hub.Close)
	spec := []types.ReplicaID{0, 1, 2}
	hosts := make([]*Host, 3)
	for i := range hosts {
		h, err := NewHost(types.ReplicaID(i), spec, hub.Endpoint(types.ReplicaID(i)), HostOptions{Groups: groups})
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < groups; g++ {
			app := &rsm.App{SM: kvstore.New()}
			nd := h.Group(types.GroupID(g))
			nd.Bind(app)
			nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 2 * time.Millisecond}))
		}
		hosts[i] = h
	}
	for _, h := range hosts {
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Stop()
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for k := 0; k < 8; k++ {
		key := string(rune('a'+k)) + "-key"
		fut, err := hosts[0].ProposeKey(ctx, key, kvstore.Put(key, []byte(key)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		// Read at another host: payload routing and key routing agree
		// and observe the completed write.
		res, err := hosts[1].Read(ctx, kvstore.Get(key), Linearizable)
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Value) != key {
			t.Fatalf("Host.Read(%q) = %q", key, res.Value)
		}
		res, err = hosts[2].ReadKey(ctx, key, kvstore.Get(key), Linearizable)
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Value) != key {
			t.Fatalf("Host.ReadKey(%q) = %q", key, res.Value)
		}
	}
}

// TestStatusReadFields: the read watermark, age and counters surface in
// GroupStatus, alongside the held-buffer drop counter.
func TestStatusReadFields(t *testing.T) {
	c := newCluster(t, 3, wan.Uniform(3, time.Millisecond), protoMakers()["clockrsm"])
	c.call(t, 0, kvstore.Put("k", []byte("v")))
	c.readAt(t, 0, kvstore.Get("k"), Linearizable)
	st := c.nodes[0].Status()
	if st.ReadsLocal == 0 {
		t.Error("Status.ReadsLocal = 0 after a local read")
	}
	if st.ReadWatermark == 0 {
		t.Error("Status.ReadWatermark = 0 after a commit")
	}
	if st.ReadAge <= 0 {
		t.Errorf("Status.ReadAge = %v, want positive", st.ReadAge)
	}
	if st.HeldDropped != 0 {
		t.Errorf("Status.HeldDropped = %d, want 0", st.HeldDropped)
	}
}
