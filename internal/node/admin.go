package node

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"clockrsm/internal/rsm"
	"clockrsm/internal/stats"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

// Errors returned by the operator API. They are sentinel values: match
// with errors.Is.
var (
	// ErrNotInConfig reports that this replica is outside the current
	// configuration, so it cannot replicate commands. Futures resolved
	// with it never executed anywhere — the client may fail over to a
	// configured replica and resubmit without risking duplicates.
	ErrNotInConfig = errors.New("node: replica not in the current configuration")
	// ErrReconfigured reports that a reconfiguration discarded the
	// command before it reached a majority. The protocol guarantees such
	// a command can never execute in any epoch, so resubmitting it is
	// safe.
	ErrReconfigured = errors.New("node: command discarded by a reconfiguration")
	// ErrConfigConflict reports that a competing proposal won the epoch a
	// Reconfigure targeted: the configuration changed, but not to the
	// requested member set. Re-issue against the new epoch if still
	// desired.
	ErrConfigConflict = errors.New("node: competing reconfiguration won the epoch")
	// ErrNotReconfigurable reports that the protocol bound to the node
	// has fixed membership (it does not implement rsm.Reconfigurable).
	ErrNotReconfigurable = errors.New("node: protocol does not support reconfiguration")
	// ErrBadConfig reports an invalid member set: empty, duplicated or
	// out-of-spec IDs, or fewer members than a majority of Spec (the
	// commit quorum is a majority of Spec, so a smaller configuration
	// could never commit).
	ErrBadConfig = errors.New("node: invalid configuration")
	// ErrNotRejoinable reports that the protocol bound to the node has no
	// recovery entry point (it does not implement rsm.Rejoiner).
	ErrNotRejoinable = errors.New("node: protocol does not support rejoin")
	// ErrWrongGroup reports that a command's key no longer belongs to
	// the group it was proposed on: the key's slot has migrated (or is
	// migrating) to another group. The command was NOT executed, so
	// resubmitting it at the new owner — after refreshing the routing
	// table — is safe. Concrete instances are *WrongGroupError, which
	// names the new owner; match the class with errors.Is(err,
	// ErrWrongGroup).
	ErrWrongGroup = errors.New("node: key routed to another group")
)

// WrongGroupError is the concrete error behind ErrWrongGroup: the
// fenced command's key now belongs to group To.
type WrongGroupError struct {
	To types.GroupID
}

// Error implements error.
func (e *WrongGroupError) Error() string {
	return fmt.Sprintf("node: key migrated to group %v (resubmit there)", e.To)
}

// Is matches the ErrWrongGroup sentinel.
func (e *WrongGroupError) Is(target error) bool { return target == ErrWrongGroup }

// latRingSize bounds the sampled commit-latency ring.
const latRingSize = 512

// latSampleMask subsamples proposals for latency measurement: one in
// (mask+1) admitted proposals is timed, keeping the instrumentation off
// the data hot path.
const latSampleMask = 15

// heldReporter is implemented by protocols that buffer future-epoch
// messages with a drop-on-overflow backstop (core.Replica): a non-zero
// count means a straggler may carry a history gap only a state
// transfer can close, which operators must be able to see. The method
// must be safe to call from any goroutine.
type heldReporter interface {
	HeldDropped() uint64
}

// snapReporter is implemented by protocols that can catch up from a
// peer's shipped snapshot (core.Replica): the count tells operators —
// and the crash-churn harness — that a recovery went through checkpoint
// + tail transfer rather than full-log replay. Safe from any goroutine.
type snapReporter interface {
	SnapRestores() uint64
}

// gapReporter is implemented by protocols that prove channel integrity
// from cumulative send counters (core.Replica.LinkGaps): a non-zero
// count means a peer's PREPARE stream lost a message in flight and the
// replica forced itself through a reconfiguration to repair the hole.
// Safe from any goroutine.
type gapReporter interface {
	LinkGaps() uint64
}

// confWaiter is one pending Reconfigure: its future resolves when the
// decision for the targeted epoch is installed — with success if the
// installed member set matches the target, ErrConfigConflict otherwise.
type confWaiter struct {
	epoch  types.Epoch
	target []types.ReplicaID // canonical: sorted, deduplicated
	fut    *Future
}

// LatencySummary summarizes the sampled commit latency of recent
// proposals (admission to resolution).
type LatencySummary struct {
	Samples int
	Mean    time.Duration
	P95     time.Duration
	Max     time.Duration
}

// GroupStatus is a point-in-time snapshot of one replication group on a
// node: the installed configuration, client-API pressure, and sampled
// commit latency. Reading it never touches the event loop.
type GroupStatus struct {
	Group    types.GroupID
	Epoch    types.Epoch
	Members  []types.ReplicaID
	InConfig bool
	// InFlight is the number of admitted, unresolved data proposals
	// (window slots in use); Proposed counts every data-proposal
	// admission since start. Control-plane futures (Reconfigure) are
	// excluded from both.
	InFlight int
	Proposed uint64
	// Resolved counts futures resolved for any reason (results, errors,
	// sweeps), control plane included.
	Resolved      uint64
	CommitLatency LatencySummary
	// ReadWatermark is the executed watermark local reads are served
	// from (zero when the protocol exposes none — reads replicate), and
	// ReadAge is how far the clock was past it at snapshot time: the
	// staleness bound a Stale read issued now would observe.
	ReadWatermark int64
	ReadAge       time.Duration
	// ReadsLocal counts reads served from local state (all tiers);
	// ReadsParked counts how many of them had to wait for the watermark
	// to cover their capture time or session token.
	ReadsLocal  uint64
	ReadsParked uint64
	// HeldDropped counts future-epoch protocol messages discarded on
	// hold-buffer overflow. Non-zero means this replica may have a
	// history gap only a state transfer can close (see core.Replica).
	HeldDropped uint64
	// LinkGaps counts proven message losses on incoming PREPARE streams
	// (detected from the cumulative send counters every hot message
	// carries), each of which forced a self-repair rejoin. Non-zero under
	// a healthy network means the transport is silently dropping traffic.
	LinkGaps uint64
	// SnapRestores counts state-machine restores from a peer's shipped
	// snapshot: catch-ups that went through checkpoint + tail transfer
	// instead of full-log replay.
	SnapRestores uint64
	// FsyncMode names the stable log's fsync policy ("always", "batch",
	// "off"), empty when the log does not report one (memory logs); Log
	// carries its append/fsync counters.
	FsyncMode string
	Log       storage.LogStats
	// Slots is the number of routing-table slots this group owns and
	// MigratingOut how many of them it is currently fencing away to
	// another group. Filled by Host.Status from the host's routing
	// table; zero on bare Nodes.
	Slots        int
	MigratingOut int
}

// Epoch returns the configuration epoch this node has installed. It is
// safe to call from any goroutine and never blocks on the event loop.
func (n *Node) Epoch() types.Epoch {
	if v := n.view.Load(); v != nil {
		return v.Epoch
	}
	return 0
}

// Members returns the member set of the configuration this node has
// installed (a copy). Before Start it returns the full Spec.
func (n *Node) Members() []types.ReplicaID {
	if v := n.view.Load(); v != nil {
		return append([]types.ReplicaID(nil), v.Members...)
	}
	return append([]types.ReplicaID(nil), n.spec...)
}

// InConfig reports whether this replica is part of the configuration it
// has installed. A replica outside the configuration fails proposals
// with ErrNotInConfig instead of parking them.
func (n *Node) InConfig() bool {
	if v := n.view.Load(); v != nil {
		return v.InConfig
	}
	return true
}

// Status snapshots this group's control-plane state. Lock-free reads of
// the config view and counters; the latency summary copies the sampled
// ring under a mutex nothing on the hot path holds. Epoch, Members and
// InConfig come from one view load, so the triple is never torn across
// a concurrent reconfiguration.
func (n *Node) Status() GroupStatus {
	st := GroupStatus{
		Group:         n.group,
		InFlight:      len(n.window),
		Proposed:      n.proposed.Load(),
		Resolved:      n.resolved.Load(),
		CommitLatency: n.latencySummary(),
		ReadsLocal:    n.readsLocal.Load(),
		ReadsParked:   n.readsParked.Load(),
	}
	if w := n.watermark.Load(); w > 0 {
		st.ReadWatermark = w
		st.ReadAge = time.Duration(n.clk.Now() - w)
	}
	if n.heldRep != nil {
		st.HeldDropped = n.heldRep.HeldDropped()
	}
	if n.snapRep != nil {
		st.SnapRestores = n.snapRep.SnapRestores()
	}
	if n.gapRep != nil {
		st.LinkGaps = n.gapRep.LinkGaps()
	}
	if sr, ok := n.log.(storage.StatsReporter); ok {
		st.FsyncMode = sr.Mode().String()
		st.Log = sr.Stats()
	}
	if v := n.view.Load(); v != nil {
		st.Epoch = v.Epoch
		st.Members = append([]types.ReplicaID(nil), v.Members...)
		st.InConfig = v.InConfig
	} else {
		st.Members = append([]types.ReplicaID(nil), n.spec...)
		st.InConfig = true
	}
	return st
}

// Reconfigure proposes replacing the group's configuration with members
// at the next epoch, through the same future machinery as data
// commands: the returned Future resolves once the targeted epoch's
// decision is installed — with the canonical member list as its Result
// value on success, or ErrConfigConflict if a competing proposal
// (another operator, the failure detector) won the epoch. A Reconfigure
// to the configuration already in force succeeds immediately without
// consuming an epoch.
//
// Reconfiguration bypasses the MaxInFlight window deliberately: a
// stalled group fills the window with proposals that only a
// reconfiguration can unblock, and the repair operation must not queue
// behind the work it is meant to unstick. Stop still sweeps the future.
//
// members must be non-empty IDs from Spec, without duplicates, and at
// least a majority of Spec (the commit quorum); otherwise ErrBadConfig.
func (n *Node) Reconfigure(ctx context.Context, members []types.ReplicaID) (*Future, error) {
	target, err := n.canonicalMembers(members)
	if err != nil {
		return nil, err
	}
	if _, ok := n.proto.(rsm.Reconfigurable); !ok {
		return nil, ErrNotReconfigurable
	}
	f, err := n.admitControl(ctx)
	if err != nil {
		return nil, err
	}
	if !n.enqueue(event{fn: func() { n.execReconfigure(f, target) }}) {
		f.resolve(types.Result{}, ErrStopped)
		return nil, ErrStopped
	}
	return f, nil
}

// Rejoin asks a replica restarted from its stable log to force itself
// back into the configuration: the protocol proposes a reconfiguration
// to a strictly newer epoch including itself, learning missed epochs
// and fetching missed history (checkpoint + tail) along the way. The
// call is asynchronous and self-retrying; observe progress via Status
// (Epoch advancing, InConfig true). Harmless when the replica is
// already current.
func (n *Node) Rejoin() error {
	rj, ok := n.proto.(rsm.Rejoiner)
	if !ok {
		return ErrNotRejoinable
	}
	if !n.enqueue(event{fn: rj.Rejoin}) {
		return ErrStopped
	}
	return nil
}

// execReconfigure runs on the event loop: it registers the epoch
// barrier and hands the proposal to the protocol.
func (n *Node) execReconfigure(f *Future, target []types.ReplicaID) {
	if f.resolved() {
		return
	}
	v := n.recon.ConfigView()
	if membersEqual(canonical(v.Members), target) {
		f.resolve(types.Result{Value: memberBytes(target)}, nil)
		return
	}
	n.confWaiters = append(n.confWaiters, &confWaiter{epoch: v.Epoch + 1, target: target, fut: f})
	n.recon.Reconfigure(target)
}

// onConfigEvent is the protocol's configuration listener; it runs on the
// event loop. It refreshes the lock-free status view, fails futures for
// commands the protocol discarded, and resolves Reconfigure barriers.
func (n *Node) onConfigEvent(ev rsm.ConfigEvent) {
	v := ev.View
	n.view.Store(&v)
	n.inConfigLoop = v.InConfig

	if !v.InConfig {
		// This replica left the configuration. Every remaining waiter's
		// command either already executed (its future resolved before this
		// event) or was pruned by the reconfiguration and can never
		// execute — fail them all so callers fail over instead of parking
		// until their deadline.
		for seq, f := range n.waiters {
			delete(n.waiters, seq)
			f.resolve(types.Result{}, ErrNotInConfig)
		}
		// Parked reads share the contract: a removed replica's watermark
		// is frozen, so a read parked for it would wait forever. The
		// client fails over and reads elsewhere.
		n.failParkedReads(ErrNotInConfig)
	} else {
		for _, id := range ev.Dropped {
			if f, ok := n.waiters[id.Seq]; ok {
				delete(n.waiters, id.Seq)
				f.resolve(types.Result{}, ErrReconfigured)
			}
		}
	}

	if len(n.confWaiters) == 0 {
		return
	}
	installed := canonical(v.Members)
	kept := n.confWaiters[:0]
	for _, w := range n.confWaiters {
		switch {
		case w.fut.resolved(): // canceled or swept; drop the entry
		case v.Epoch >= w.epoch:
			if membersEqual(installed, w.target) {
				w.fut.resolve(types.Result{Value: memberBytes(w.target)}, nil)
			} else {
				w.fut.resolve(types.Result{}, ErrConfigConflict)
			}
		default:
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(n.confWaiters); i++ {
		n.confWaiters[i] = nil
	}
	n.confWaiters = kept
}

// canonicalMembers validates and canonicalizes an operator-supplied
// member set against Spec.
func (n *Node) canonicalMembers(members []types.ReplicaID) ([]types.ReplicaID, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: empty member set", ErrBadConfig)
	}
	inSpec := make(map[types.ReplicaID]bool, len(n.spec))
	for _, id := range n.spec {
		inSpec[id] = true
	}
	seen := make(map[types.ReplicaID]bool, len(members))
	for _, id := range members {
		if !inSpec[id] {
			return nil, fmt.Errorf("%w: %v is not in the system specification %v", ErrBadConfig, id, n.spec)
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: duplicate member %v", ErrBadConfig, id)
		}
		seen[id] = true
	}
	if maj := types.Majority(len(n.spec)); len(members) < maj {
		return nil, fmt.Errorf("%w: %d members, need at least a majority of Spec (%d of %d)",
			ErrBadConfig, len(members), maj, len(n.spec))
	}
	return canonical(members), nil
}

// canonical returns a sorted copy of a member set.
func canonical(members []types.ReplicaID) []types.ReplicaID {
	out := append([]types.ReplicaID(nil), members...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// membersEqual compares two canonical member sets.
func membersEqual(a, b []types.ReplicaID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// memberBytes renders a canonical member set as the Result value of a
// successful Reconfigure ("r0,r1,r2").
func memberBytes(members []types.ReplicaID) []byte {
	return []byte(MemberString(members))
}

// MemberString renders a member set as a comma-separated list of replica
// IDs ("r0,r1,r2").
func MemberString(members []types.ReplicaID) string {
	s := ""
	for i, id := range members {
		if i > 0 {
			s += ","
		}
		s += id.String()
	}
	return s
}

// recordLatency folds one sampled commit latency into the ring.
func (n *Node) recordLatency(d time.Duration) {
	n.latMu.Lock()
	if len(n.lat) < latRingSize {
		n.lat = append(n.lat, d)
	} else {
		n.lat[n.latPos] = d
		n.latPos = (n.latPos + 1) % latRingSize
	}
	n.latMu.Unlock()
}

// latencySummary summarizes the sampled ring.
func (n *Node) latencySummary() LatencySummary {
	n.latMu.Lock()
	vals := append([]time.Duration(nil), n.lat...)
	n.latMu.Unlock()
	if len(vals) == 0 {
		return LatencySummary{}
	}
	var s stats.Sample
	s.AddAll(vals)
	return LatencySummary{Samples: s.Count(), Mean: s.Mean(), P95: s.P95(), Max: s.Max()}
}
