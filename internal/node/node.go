// Package node is the real runtime for replicas: it wraps a protocol
// instance in a single-goroutine event loop, so the protocol code (which
// is written lock-free against rsm.Env) runs identically to the
// simulator but over real transports and the real clock.
//
// A node can host one protocol instance (New) or — via Host — G
// independent replication groups, each with its own event loop, log and
// protocol, multiplexed over one shared transport, clock and connection
// set (see internal/shard for the key→group router).
package node

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/clock"
	"clockrsm/internal/cpupin"
	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// Options configure a Node.
type Options struct {
	// Clock is the physical clock source; nil uses a monotonic wrapper
	// over the system clock (the paper's clock_gettime setup).
	Clock clock.Clock
	// Log is the stable log; nil uses an in-memory log (the paper's
	// throughput configuration).
	Log storage.Log
	// QueueLen is the event queue capacity (default 8192).
	QueueLen int
	// BatchLimit caps how many queued events one loop turn drains before
	// re-selecting (default 256). Larger batches amortize the commit scan
	// and outgoing-message coalescing further but delay the flush.
	BatchLimit int
	// MaxInFlight is the backpressure window: the maximum number of
	// proposals admitted by Propose but not yet resolved (default 1024).
	MaxInFlight int
	// FailFast makes Propose return ErrOverloaded when the in-flight
	// window is full instead of blocking for a slot.
	FailFast bool
	// SubmitBatch is the client-side batching width (default 1, i.e. no
	// batching): up to this many buffered proposals are flushed into one
	// event-loop turn, sharing one coalesced PREPARE broadcast (the
	// paper's client-library batching, Section VI-D).
	SubmitBatch int
	// PinCPU, when positive, locks the event-loop goroutine to its OS
	// thread and pins that thread to CPU PinCPU-1 (1-based so the zero
	// value means "no pinning"). Only effective on Linux; elsewhere the
	// thread is locked but not pinned. Used by multi-group hosts to give
	// each group's event loop its own core.
	PinCPU int
}

// event is one unit of event-loop work. Deliveries and proposals are
// passed as plain fields rather than closures so the hot path enqueues
// no per-message heap allocation; fn covers timers and Do callbacks.
type event struct {
	fn    func()
	m     msg.Message // non-nil: deliver m from `from`
	from  types.ReplicaID
	fut   *Future // non-nil: mint an ID and submit this proposal
	read  *readOp // non-nil: serve or park this local read
	flush bool    // drain the client-side submit buffer
}

// Node hosts one replica group: transport in, protocol logic on the
// loop goroutine, transport out. A standalone Node (New) owns its
// transport and serves group 0; a Node obtained from a Host shares the
// transport with its sibling groups and tags its traffic with its
// group ID.
type Node struct {
	id    types.ReplicaID
	spec  []types.ReplicaID
	tr    transport.Transport
	bcast transport.Broadcaster // non-nil if tr supports encode-once fan-out
	clk   clock.Clock
	log   storage.Log
	proto rsm.Protocol

	// group tags outgoing traffic when the transport is shared by a
	// Host; gt/gbcast are the group-aware transport views (nil for a
	// standalone node, which talks to the plain Transport directly).
	group  types.GroupID
	gt     transport.GroupTransport
	gbcast transport.GroupBroadcaster
	// shared marks a Host-managed node: the Host starts and closes the
	// transport exactly once for all groups.
	shared bool
	// loopStarted records that run() was launched, so stopping a node
	// whose Start never happened (or failed early) does not wait on a
	// done channel nothing will close.
	loopStarted bool

	batchLimit int
	// pinCPU locks the loop goroutine to CPU pinCPU-1 when positive.
	pinCPU int

	// Client API state (see propose.go). window holds one token per
	// admitted, unresolved proposal — the backpressure window. inflight
	// heads the intrusive registry list Stop sweeps; propBuf is the
	// client-side submit buffer drained by flush events when
	// submitBatch > 1. waiters, mint and nextSeq are owned by the event
	// loop.
	window      chan struct{}
	failFast    bool
	submitBatch int

	propMu      sync.Mutex
	inflight    *Future
	propBuf     []*Future
	propSpare   []*Future
	flushQueued bool
	propStopped bool

	// waiters routes completions back to futures, keyed by the minted
	// Seq alone: every ID minted here carries Origin == n.id, and
	// App.Execute only reports results for locally originated commands.
	waiters map[uint64]*Future
	mint    rsm.IDAllocator
	nextSeq uint64

	// Read-path state (see read.go). sr is the protocol's watermark
	// interface (nil for protocols without one: reads fall back to
	// replication); app/canQuery come from Bind and gate local serving;
	// watermark is the lock-free cache of the executed watermark,
	// refreshed by the stable listener (Stale reads and Status read
	// it); readQ is the loop-owned timestamp-ordered waiter queue;
	// readReg is the registry Stop sweeps.
	sr        rsm.StateReader
	app       *rsm.App
	canQuery  bool
	watermark atomic.Int64
	readQ     readQueue

	readMu      sync.Mutex
	readReg     map[*readOp]struct{}
	readStopped bool
	readPurge   atomic.Bool // an abandoned-read purge event is queued

	readsLocal  atomic.Uint64
	readsParked atomic.Uint64

	// nudger is the protocol's idle-read clock nudge (see clockNudger);
	// nil when unsupported. Loop-owned, invoked only from execRead.
	nudger clockNudger
	// heldRep reports the protocol's future-epoch hold-buffer drops
	// (core.Replica.HeldDropped) for Status; nil when unsupported.
	heldRep heldReporter
	// snapRep reports the protocol's snapshot catch-ups
	// (core.Replica.SnapRestores) for Status; nil when unsupported.
	snapRep snapReporter
	// gapRep reports the protocol's proven-channel-break count
	// (core.Replica.LinkGaps) for Status; nil when unsupported.
	gapRep gapReporter

	// Control-plane state (see admin.go). recon is the protocol's
	// reconfiguration interface (nil for fixed-membership protocols);
	// view is the lock-free status snapshot refreshed by config events;
	// inConfigLoop is the loop-owned fast-path copy of view.InConfig the
	// submission path checks; confWaiters are pending Reconfigure
	// futures, resolved when their epoch barrier passes.
	recon        rsm.Reconfigurable
	view         atomic.Pointer[rsm.ConfigView]
	inConfigLoop bool
	confWaiters  []*confWaiter

	// Status counters and the sampled commit-latency ring (admin.go).
	proposed atomic.Uint64
	resolved atomic.Uint64
	latMu    sync.Mutex
	lat      []time.Duration
	latPos   int

	// timers tracks outstanding After timers so Stop can cancel them:
	// without this, self-rescheduling protocol timers (CLOCKTIME, failure
	// detection, Rejoin retries) keep firing into a stopped node.
	timerMu       sync.Mutex
	timers        map[*time.Timer]struct{}
	timersStopped bool

	events    chan event
	quit      chan struct{}
	done      chan struct{}
	stopOnce  sync.Once
	closeOnce sync.Once
}

var (
	_ rsm.Env         = (*Node)(nil)
	_ rsm.Multicaster = (*Node)(nil)
)

// New creates a node for replica id over tr. spec lists all replicas.
// The protocol is attached with SetProtocol before Start.
func New(id types.ReplicaID, spec []types.ReplicaID, tr transport.Transport, opts Options) *Node {
	n := newNode(id, spec, tr, 0, false, opts)
	tr.SetHandler(func(from types.ReplicaID, m msg.Message) {
		if !n.enqueue(event{m: m, from: from}) {
			msg.Recycle(m) // node stopped: reclaim pooled decode storage
		}
	})
	return n
}

// newNode builds the event loop without installing a transport handler;
// New and Host wire delivery themselves.
func newNode(id types.ReplicaID, spec []types.ReplicaID, tr transport.Transport, group types.GroupID, shared bool, opts Options) *Node {
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewMonotonic(clock.System{})
	}
	lg := opts.Log
	if lg == nil {
		lg = storage.NewMemLog()
	}
	qlen := opts.QueueLen
	if qlen <= 0 {
		qlen = 8192
	}
	blimit := opts.BatchLimit
	if blimit <= 0 {
		blimit = 256
	}
	window := opts.MaxInFlight
	if window <= 0 {
		window = 1024
	}
	sbatch := opts.SubmitBatch
	if sbatch <= 0 {
		sbatch = 1
	}
	bcast, _ := tr.(transport.Broadcaster)
	n := &Node{
		id:          id,
		spec:        append([]types.ReplicaID(nil), spec...),
		tr:          tr,
		bcast:       bcast,
		clk:         clk,
		log:         lg,
		group:       group,
		shared:      shared,
		batchLimit:  blimit,
		pinCPU:      opts.PinCPU,
		window:      make(chan struct{}, window),
		failFast:    opts.FailFast,
		submitBatch: sbatch,
		waiters:     make(map[uint64]*Future),
		readReg:     make(map[*readOp]struct{}),
		timers:      make(map[*time.Timer]struct{}),
		events:      make(chan event, qlen),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if shared {
		// Host-managed: tag traffic with the group and route through the
		// group-aware transport views.
		n.gt, _ = tr.(transport.GroupTransport)
		n.gbcast, _ = tr.(transport.GroupBroadcaster)
		if group != 0 && n.gbcast == nil {
			// An untagged broadcast would land on group 0; fall back to
			// per-peer group-tagged sends instead.
			n.bcast = nil
		}
	}
	return n
}

// ID implements rsm.Env.
func (n *Node) ID() types.ReplicaID { return n.id }

// Spec implements rsm.Env.
func (n *Node) Spec() []types.ReplicaID { return n.spec }

// Group returns the replication group this node serves (0 for a
// standalone node).
func (n *Node) Group() types.GroupID { return n.group }

// Clock implements rsm.Env.
func (n *Node) Clock() int64 { return n.clk.Now() }

// Send implements rsm.Env.
func (n *Node) Send(to types.ReplicaID, m msg.Message) {
	if n.gt != nil {
		n.gt.SendGroup(to, n.group, m)
		return
	}
	n.tr.Send(to, m)
}

// SendAll implements rsm.Multicaster: one encode for the whole fan-out
// when the transport supports it.
func (n *Node) SendAll(dst []types.ReplicaID, m msg.Message) {
	if n.gbcast != nil {
		n.gbcast.BroadcastGroup(dst, n.group, m)
		return
	}
	if n.bcast != nil {
		n.bcast.Broadcast(dst, m)
		return
	}
	for _, to := range dst {
		if to != n.id {
			n.Send(to, m)
		}
	}
}

// After implements rsm.Env: the callback runs on the event loop. The
// timer is tracked so Stop cancels it; a stopped node schedules nothing.
func (n *Node) After(d time.Duration, fn func()) {
	n.timerMu.Lock()
	if n.timersStopped {
		n.timerMu.Unlock()
		return
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		// The lock orders this callback after t landed in the map, and
		// after a concurrent Stop's cancellation sweep.
		n.timerMu.Lock()
		delete(n.timers, t)
		stopped := n.timersStopped
		n.timerMu.Unlock()
		if !stopped {
			n.enqueue(event{fn: fn})
		}
	})
	n.timers[t] = struct{}{}
	n.timerMu.Unlock()
}

// Log implements rsm.Env.
func (n *Node) Log() storage.Log { return n.log }

// SetProtocol binds the protocol instance. Must precede Start. The
// read-path and status interfaces are captured here — setup time, like
// Bind — so client goroutines created after setup read them safely.
func (n *Node) SetProtocol(p rsm.Protocol) {
	n.proto = p
	n.sr, _ = p.(rsm.StateReader)
	n.nudger, _ = p.(clockNudger)
	n.heldRep, _ = p.(heldReporter)
	n.snapRep, _ = p.(snapReporter)
	n.gapRep, _ = p.(gapReporter)
}

// Protocol returns the bound protocol.
func (n *Node) Protocol() rsm.Protocol { return n.proto }

// enqueue schedules ev on the loop; it reports false (dropping ev) if
// the node stopped.
func (n *Node) enqueue(ev event) bool {
	select {
	case n.events <- ev:
		return true
	case <-n.quit:
		return false
	}
}

// Start launches the event loop and the transport, then starts the
// protocol on the loop. For Host-managed nodes the Host starts the
// shared transport once after every group's loop is running.
func (n *Node) Start() error {
	if err := n.startLoop(); err != nil {
		return err
	}
	if !n.shared {
		if err := n.tr.Start(); err != nil {
			n.stopLoop()
			return err
		}
	}
	n.enqueue(event{fn: n.proto.Start})
	return nil
}

// startLoop launches the event loop goroutine.
func (n *Node) startLoop() error {
	if n.proto == nil {
		return fmt.Errorf("node %v has no protocol", n.id)
	}
	// Mint command IDs through the protocol when it allocates them
	// itself, so proposals and any direct protocol use share one
	// collision-free sequence.
	n.mint, _ = n.proto.(rsm.IDAllocator)
	// Wire the read path: the protocol's watermark listener releases
	// parked reads and refreshes the lock-free watermark cache. The
	// loop has not started yet, so priming the cache is safe.
	if n.sr != nil {
		n.sr.SetStableListener(n.onStableAdvance)
		n.watermark.Store(n.sr.StableTS())
	}
	// Wire the control plane: the protocol's configuration events keep
	// the lock-free status view fresh, fail futures for discarded
	// commands, and resolve Reconfigure epoch barriers (admin.go). The
	// loop has not started yet, so reading the initial view is safe.
	if rc, ok := n.proto.(rsm.Reconfigurable); ok {
		n.recon = rc
		rc.SetConfigListener(n.onConfigEvent)
		v := rc.ConfigView()
		n.view.Store(&v)
		n.inConfigLoop = v.InConfig
	} else {
		v := rsm.ConfigView{Members: append([]types.ReplicaID(nil), n.spec...), InConfig: true}
		n.view.Store(&v)
		n.inConfigLoop = true
	}
	n.loopStarted = true
	go n.run()
	return nil
}

// stopLoop terminates the event loop without touching the transport,
// cancels every outstanding timer, then fails every unresolved proposal
// with ErrStopped. Idempotent; concurrent callers block until the sweep
// completed.
func (n *Node) stopLoop() {
	n.stopOnce.Do(func() {
		close(n.quit)
		if n.loopStarted {
			<-n.done
		}
		// Cancel pending timers (CLOCKTIME / failure-detector / Rejoin
		// retry chains) so they stop firing into the dead loop.
		n.timerMu.Lock()
		n.timersStopped = true
		for t := range n.timers {
			t.Stop()
		}
		clear(n.timers)
		n.timerMu.Unlock()
		n.sweepProposals()
		n.sweepReads()
	})
}

// exec dispatches one event to the protocol.
func (n *Node) exec(ev event) {
	switch {
	case ev.m != nil:
		n.proto.Deliver(ev.from, ev.m)
		// The message's pooled decode storage is reclaimed here — after
		// Deliver returns, a protocol retains nothing of a hot message it
		// did not copy (see msg.DecodeRecycled's ownership contract).
		msg.Recycle(ev.m)
	case ev.fut != nil:
		n.execPropose(ev.fut)
	case ev.read != nil:
		n.execRead(ev.read)
	case ev.flush:
		n.flushProposals()
	default:
		ev.fn()
	}
}

// run is the event loop. Each turn drains every event already queued
// (up to BatchLimit) before re-selecting; when the protocol supports
// batch delivery, the whole drained burst runs inside one
// BeginBatch/EndBatch bracket so it triggers a single commit cascade
// and one coalesced outgoing flush instead of per-message wakeups.
func (n *Node) run() {
	defer close(n.done)
	if n.pinCPU > 0 {
		// Dedicate an OS thread (and, on Linux, a core) to this loop so
		// sibling groups' loops do not migrate onto each other's caches.
		runtime.LockOSThread()
		cpupin.Pin(n.pinCPU - 1) // best-effort; errors just mean no pinning
	}
	bd, _ := n.proto.(rsm.BatchDeliverer)
	for {
		select {
		case <-n.quit:
			return
		case ev := <-n.events:
			if bd != nil {
				bd.BeginBatch()
			}
			n.exec(ev)
			for drained := 1; drained < n.batchLimit; drained++ {
				select {
				case ev = <-n.events:
					n.exec(ev)
					continue
				default:
				}
				break
			}
			if bd != nil {
				bd.EndBatch()
			}
		}
	}
}

// Do runs fn on the event loop and waits for it — the safe way to read
// protocol state from outside. Commands enter through Propose.
func (n *Node) Do(fn func()) {
	done := make(chan struct{})
	if !n.enqueue(event{fn: func() {
		fn()
		close(done)
	}}) {
		return
	}
	select {
	case <-done:
	case <-n.quit:
	}
}

// Stop terminates the event loop, fails all in-flight proposals with
// ErrStopped, and closes the transport. Host-managed nodes leave the
// shared transport to the Host. Idempotent.
func (n *Node) Stop() {
	n.stopLoop()
	if !n.shared {
		n.closeOnce.Do(func() { n.tr.Close() })
	}
}
