// Package node is the real runtime for replicas: it wraps a protocol
// instance in a single-goroutine event loop, so the protocol code (which
// is written lock-free against rsm.Env) runs identically to the
// simulator but over real transports and the real clock.
package node

import (
	"fmt"
	"time"

	"clockrsm/internal/clock"
	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// Options configure a Node.
type Options struct {
	// Clock is the physical clock source; nil uses a monotonic wrapper
	// over the system clock (the paper's clock_gettime setup).
	Clock clock.Clock
	// Log is the stable log; nil uses an in-memory log (the paper's
	// throughput configuration).
	Log storage.Log
	// QueueLen is the event queue capacity (default 8192).
	QueueLen int
}

// Node hosts one replica: transport in, protocol logic on the loop
// goroutine, transport out.
type Node struct {
	id    types.ReplicaID
	spec  []types.ReplicaID
	tr    transport.Transport
	clk   clock.Clock
	log   storage.Log
	proto rsm.Protocol

	events chan func()
	quit   chan struct{}
	done   chan struct{}
}

var _ rsm.Env = (*Node)(nil)

// New creates a node for replica id over tr. spec lists all replicas.
// The protocol is attached with SetProtocol before Start.
func New(id types.ReplicaID, spec []types.ReplicaID, tr transport.Transport, opts Options) *Node {
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewMonotonic(clock.System{})
	}
	lg := opts.Log
	if lg == nil {
		lg = storage.NewMemLog()
	}
	qlen := opts.QueueLen
	if qlen <= 0 {
		qlen = 8192
	}
	n := &Node{
		id:     id,
		spec:   append([]types.ReplicaID(nil), spec...),
		tr:     tr,
		clk:    clk,
		log:    lg,
		events: make(chan func(), qlen),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	tr.SetHandler(func(from types.ReplicaID, m msg.Message) {
		n.enqueue(func() { n.proto.Deliver(from, m) })
	})
	return n
}

// ID implements rsm.Env.
func (n *Node) ID() types.ReplicaID { return n.id }

// Spec implements rsm.Env.
func (n *Node) Spec() []types.ReplicaID { return n.spec }

// Clock implements rsm.Env.
func (n *Node) Clock() int64 { return n.clk.Now() }

// Send implements rsm.Env.
func (n *Node) Send(to types.ReplicaID, m msg.Message) { n.tr.Send(to, m) }

// After implements rsm.Env: the callback runs on the event loop.
func (n *Node) After(d time.Duration, fn func()) {
	time.AfterFunc(d, func() { n.enqueue(fn) })
}

// Log implements rsm.Env.
func (n *Node) Log() storage.Log { return n.log }

// SetProtocol binds the protocol instance. Must precede Start.
func (n *Node) SetProtocol(p rsm.Protocol) { n.proto = p }

// Protocol returns the bound protocol.
func (n *Node) Protocol() rsm.Protocol { return n.proto }

// enqueue schedules fn on the loop, dropping it if the node stopped.
func (n *Node) enqueue(fn func()) {
	select {
	case n.events <- fn:
	case <-n.quit:
	}
}

// Start launches the event loop and the transport, then starts the
// protocol on the loop.
func (n *Node) Start() error {
	if n.proto == nil {
		return fmt.Errorf("node %v has no protocol", n.id)
	}
	go n.run()
	if err := n.tr.Start(); err != nil {
		close(n.quit)
		<-n.done
		return err
	}
	n.enqueue(n.proto.Start)
	return nil
}

// run is the event loop.
func (n *Node) run() {
	defer close(n.done)
	for {
		select {
		case <-n.quit:
			return
		case fn := <-n.events:
			fn()
		}
	}
}

// Submit hands a client command to the protocol, from any goroutine.
func (n *Node) Submit(cmd types.Command) {
	n.enqueue(func() { n.proto.Submit(cmd) })
}

// Do runs fn on the event loop and waits for it — the safe way to read
// protocol state from outside.
func (n *Node) Do(fn func()) {
	done := make(chan struct{})
	n.enqueue(func() {
		fn()
		close(done)
	})
	select {
	case <-done:
	case <-n.quit:
	}
}

// Stop terminates the event loop and closes the transport.
func (n *Node) Stop() {
	select {
	case <-n.quit:
		return // already stopped
	default:
	}
	close(n.quit)
	<-n.done
	n.tr.Close()
}
