package node

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/rsm"
	"clockrsm/internal/types"
)

// Errors returned by Propose and resolved into Futures. They are
// sentinel values: match with errors.Is.
var (
	// ErrStopped reports that the node stopped before the proposal could
	// complete. Stop resolves every unresolved Future with it.
	ErrStopped = errors.New("node: stopped")
	// ErrCanceled reports that the proposal's wait was abandoned — the
	// context expired or Cancel was called. The command itself may still
	// commit (replication cannot be recalled once the PREPARE left), but
	// it executes at most once and its result is discarded.
	ErrCanceled = errors.New("node: proposal canceled")
	// ErrOverloaded reports that the in-flight window was full and the
	// node was configured to fail fast instead of blocking.
	ErrOverloaded = errors.New("node: in-flight window full")
)

// Future is the pending result of one Propose or Reconfigure call. It
// resolves exactly once: with the operation's result, or with an error
// (ErrCanceled, ErrStopped, or one of the admin.go membership errors).
// All methods are safe for concurrent use.
type Future struct {
	n       *Node
	payload []byte

	// prev/next link the future into its node's in-flight registry (an
	// intrusive list under propMu — O(1), no hashing on the hot path).
	prev, next *Future
	// seq is the minted command sequence, published by the event loop at
	// submission; Cancel reads it to unregister the completion waiter.
	seq atomic.Uint64
	// t0 is set on the subsampled proposals whose commit latency feeds
	// the Status ring (admin.go); zero on the rest.
	t0 time.Time
	// control marks a future admitted outside the data-plane window
	// (Reconfigure): resolve must not release a slot it never took.
	control bool

	once sync.Once
	done chan struct{}
	res  types.Result
	err  error
}

// Done returns a channel closed when the future resolves.
func (f *Future) Done() <-chan struct{} { return f.done }

// Result blocks until the future resolves and returns the execution
// result or the resolution error.
func (f *Future) Result() (types.Result, error) {
	<-f.done
	return f.res, f.err
}

// Wait blocks until the future resolves or ctx is done. A context
// expiry cancels the proposal (see Cancel) and usually returns
// ErrCanceled; if the result raced in first, it is returned instead.
func (f *Future) Wait(ctx context.Context) (types.Result, error) {
	select {
	case <-f.done:
	case <-ctx.Done():
		f.Cancel()
	}
	<-f.done
	return f.res, f.err
}

// Cancel abandons the proposal: the future resolves ErrCanceled and its
// in-flight window slot is released. A proposal canceled before the
// event loop picked it up is never submitted at all; one canceled later
// may still commit (at most once), with the result dropped. Cancel
// after resolution is a no-op.
func (f *Future) Cancel() {
	f.resolve(types.Result{}, ErrCanceled)
	// Unregister the completion waiter, if the proposal was already
	// submitted: a command whose commit never arrives (replica cut off
	// from the majority, timeout-retry churn) must not pin its Future
	// and payload in the waiters map forever. Best-effort and
	// non-blocking — Cancel may run on the event loop itself (a user
	// callback), and a full queue or a stopping node just means the
	// entry lingers until the commit or the final sweep.
	seq := f.seq.Load()
	if seq == 0 {
		return
	}
	n := f.n
	select {
	case n.events <- event{fn: func() {
		if n.waiters[seq] == f {
			delete(n.waiters, seq)
		}
	}}:
	case <-n.quit:
	default:
	}
}

// resolve fulfils the future exactly once: it leaves the node's
// in-flight registry, publishes the outcome, and releases the window
// slot the proposal was admitted under.
func (f *Future) resolve(res types.Result, err error) {
	f.once.Do(func() {
		f.res, f.err = res, err
		n := f.n
		n.propMu.Lock()
		if f.prev != nil {
			f.prev.next = f.next
		} else {
			n.inflight = f.next
		}
		if f.next != nil {
			f.next.prev = f.prev
		}
		f.prev, f.next = nil, nil
		n.propMu.Unlock()
		n.resolved.Add(1)
		if err == nil && !f.t0.IsZero() {
			n.recordLatency(time.Since(f.t0))
		}
		// Release the window slot before publishing the resolution, so a
		// caller that observes the future done can immediately re-propose
		// without a spurious ErrOverloaded from a slot still held here.
		// Control-plane futures never took one.
		if !f.control {
			<-n.window
		}
		close(f.done)
	})
}

// resolved reports whether the future already resolved.
func (f *Future) resolved() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Propose submits an opaque state-machine payload at this replica and
// returns a Future for its execution result. It is the client entry
// point of the replication stack: the event loop allocates the command
// ID, registers the completion, and hands the command to the protocol,
// so no caller ever touches protocol state across goroutines.
//
// Backpressure: a proposal is admitted only while fewer than
// Options.MaxInFlight proposals are unresolved. When the window is
// full, Propose blocks until a slot frees, ctx is done (ErrCanceled) or
// the node stops (ErrStopped); with Options.FailFast it returns
// ErrOverloaded immediately instead.
//
// Batching: with Options.SubmitBatch > 1, admitted proposals gather in
// a submit buffer and the event loop drains them in chunks of up to
// SubmitBatch per batch turn, so one coalesced PREPARE broadcast (one
// encode, one frame per link) covers the whole chunk — the paper's
// client-library batching (Section VI-D).
//
// ctx governs admission and can later cancel the wait through
// Future.Wait; it does not cancel a command already replicating.
//
// The result's CommandID is minted on the event loop and is unique
// within this node's replication group; sibling groups of a Host mint
// their own sequences, so cross-group consumers key by (group, ID).
func (n *Node) Propose(ctx context.Context, payload []byte) (*Future, error) {
	f, err := n.admit(ctx, payload)
	if err != nil {
		return nil, err
	}
	if n.submitBatch > 1 {
		n.propMu.Lock()
		n.propBuf = append(n.propBuf, f)
		queued := n.flushQueued
		n.flushQueued = true
		n.propMu.Unlock()
		if !queued {
			// One flush event drains the whole buffer; later proposals
			// join it for free until the loop gets there.
			n.enqueue(event{flush: true})
		}
		return f, nil
	}
	if !n.enqueue(event{fut: f}) {
		f.resolve(types.Result{}, ErrStopped)
		return nil, ErrStopped
	}
	return f, nil
}

// admit performs the shared admission path of Propose and Reconfigure:
// it takes a window slot (blocking, failing fast, or aborting with the
// context as configured), allocates the future and links it into the
// in-flight registry so Stop sweeps it.
func (n *Node) admit(ctx context.Context, payload []byte) (*Future, error) {
	if ctx.Err() != nil {
		return nil, ErrCanceled // the caller is already gone; admit nothing
	}
	select {
	case n.window <- struct{}{}:
	default:
		if n.failFast {
			return nil, ErrOverloaded
		}
		select {
		case n.window <- struct{}{}:
		case <-ctx.Done():
			return nil, ErrCanceled
		case <-n.quit:
			return nil, ErrStopped
		}
	}
	f := &Future{n: n, payload: payload, done: make(chan struct{})}
	// Subsample commit latency for Status: one timed proposal per
	// (latSampleMask+1) admissions keeps the clock reads off the hot
	// path.
	if n.proposed.Add(1)&latSampleMask == 0 {
		f.t0 = time.Now()
	}
	if err := n.register(f); err != nil {
		<-n.window
		return nil, err
	}
	return f, nil
}

// admitControl admits a control-plane future (Reconfigure): it joins
// the in-flight registry so Stop sweeps it, but bypasses the data
// window, the Proposed counter and the latency sampling — a
// reconfiguration must stay proposable when the window is full of
// proposals that only the reconfiguration itself can unblock, and its
// barrier duration is not a data commit latency.
func (n *Node) admitControl(ctx context.Context) (*Future, error) {
	if ctx.Err() != nil {
		return nil, ErrCanceled
	}
	f := &Future{n: n, control: true, done: make(chan struct{})}
	if err := n.register(f); err != nil {
		return nil, err
	}
	return f, nil
}

// register links a future into the in-flight registry unless the node
// already stopped.
func (n *Node) register(f *Future) error {
	n.propMu.Lock()
	defer n.propMu.Unlock()
	if n.propStopped {
		return ErrStopped
	}
	f.next = n.inflight
	if n.inflight != nil {
		n.inflight.prev = f
	}
	n.inflight = f
	return nil
}

// Bind connects the replicated application to this node's proposal
// futures: execution results of locally originated commands resolve the
// matching Future on the event loop. An OnReply already installed on
// app keeps firing after the future resolves. Bind also hands the app
// to the read path, so Read can serve queries from local state when
// both the protocol and the state machine support it. Bind must
// precede Start.
func (n *Node) Bind(app *rsm.App) {
	n.app = app
	_, n.canQuery = app.SM.(rsm.StateQuerier)
	prev := app.OnReply
	app.OnReply = func(res types.Result) {
		n.completeProposal(res)
		if prev != nil {
			prev(res)
		}
	}
}

// execPropose runs on the event loop: it mints the command ID, registers
// the completion and submits the command to the protocol. A future
// canceled before reaching the loop is dropped without ever submitting,
// so a canceled proposal can never execute twice.
func (n *Node) execPropose(f *Future) {
	if f.resolved() {
		return
	}
	// A replica outside the configuration cannot replicate: fail fast so
	// the client fails over, instead of handing the protocol a command
	// it would silently drop (and parking the future until its deadline).
	if n.recon != nil && !n.inConfigLoop {
		f.resolve(types.Result{}, ErrNotInConfig)
		return
	}
	var id types.CommandID
	if n.mint != nil {
		id = n.mint.NextCommandID()
	} else {
		n.nextSeq++
		id = types.CommandID{Origin: n.id, Seq: n.nextSeq}
	}
	f.seq.Store(id.Seq)
	// Re-check after publishing the seq: a Cancel racing in between saw
	// seq == 0 and won't unregister, so don't register (or submit) at
	// all — between the two checks every cancellation path is covered.
	if f.resolved() {
		return
	}
	n.waiters[id.Seq] = f
	n.proto.Submit(types.Command{ID: id, Payload: f.payload})
}

// flushProposals runs on the event loop: it drains the submit buffer in
// chunks of SubmitBatch proposals. The loop turn already brackets the
// event in BeginBatch/EndBatch, so each chunk's PREPAREs coalesce into
// one outgoing frame; between chunks the bracket is cycled to bound the
// per-broadcast batch at SubmitBatch.
func (n *Node) flushProposals() {
	n.propMu.Lock()
	buf := n.propBuf
	// Swap in the spare backing array and nil the spare out while buf is
	// borrowed: the two must never alias, or concurrent appends would
	// overwrite the entries being drained.
	n.propBuf = n.propSpare[:0]
	n.propSpare = nil
	n.flushQueued = false
	n.propMu.Unlock()
	bd, _ := n.proto.(rsm.BatchDeliverer)
	for i, f := range buf {
		if i > 0 && i%n.submitBatch == 0 && bd != nil {
			bd.EndBatch()
			bd.BeginBatch()
		}
		n.execPropose(f)
		buf[i] = nil
	}
	n.propMu.Lock()
	n.propSpare = buf[:0] // hand the drained array back for reuse
	n.propMu.Unlock()
}

// completeProposal resolves the future registered for a finished
// command. It runs on the event loop (via the Bind OnReply hook).
// A result carrying a routing redirect means the command was fenced —
// never executed — so its future fails with the typed wrong-group
// error and the caller is free to resubmit at the new owner.
func (n *Node) completeProposal(res types.Result) {
	f, ok := n.waiters[res.ID.Seq]
	if !ok {
		return
	}
	delete(n.waiters, res.ID.Seq)
	if to, fenced := res.RedirectGroup(); fenced {
		f.resolve(types.Result{ID: res.ID}, &WrongGroupError{To: to})
		return
	}
	f.resolve(res, nil)
}

// sweepProposals fails every unresolved proposal with ErrStopped. It
// runs once, after the event loop has exited, so Stop never strands a
// waiter: admitted-but-unflushed, queued, and submitted-but-uncommitted
// proposals all resolve deterministically. Each resolve unlinks the
// head of the registry, so popping the head until empty visits every
// in-flight future exactly once (racing Cancels just pop it for us).
func (n *Node) sweepProposals() {
	n.propMu.Lock()
	n.propStopped = true
	n.propMu.Unlock()
	for {
		n.propMu.Lock()
		f := n.inflight
		n.propMu.Unlock()
		if f == nil {
			return
		}
		f.resolve(types.Result{}, ErrStopped)
	}
}
