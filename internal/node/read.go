package node

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTooStale reports that a Stale read's bound was exceeded: the
// replica's executed watermark is older than the requested maximum age.
// The caller may retry at a fresher replica or at a stronger level.
var ErrTooStale = errors.New("node: read watermark older than the staleness bound")

// Tier is the consistency tier of a read.
type Tier uint8

// Tiers, strongest first.
const (
	// TierLinearizable reads observe every write that completed before
	// the read began, with no replication traffic: the read captures the
	// local clock and is served from local state once the executed
	// watermark covers the capture time.
	TierLinearizable Tier = iota
	// TierSequential reads serve the current watermark immediately and
	// are monotonic across replicas through a Session token.
	TierSequential
	// TierStale reads serve local state immediately, never touching the
	// event loop, and report how old the watermark they reflect is.
	TierStale
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierLinearizable:
		return "linearizable"
	case TierSequential:
		return "sequential"
	case TierStale:
		return "stale"
	default:
		return "tier(?)"
	}
}

// Level selects the consistency tier of one read and carries the
// tier's parameters. Use the Linearizable value, or the Sequential and
// Stale constructors.
type Level struct {
	tier   Tier
	maxAge time.Duration
	sess   *Session
}

// Linearizable is the strongest read level: the read observes every
// write that completed (anywhere) before the read began. The read
// captures t = the local clock and parks on a timestamp-ordered waiter
// queue until the executed watermark covers t, then serves from local
// state — no PREPARE broadcast, no log traffic. Correctness needs no
// clock-skew bound: a write only commits once every configured
// replica's clock passed its timestamp (the paper's stable-order rule),
// so this replica's clock has always passed the timestamp of any
// completed write by the time a later read captures it.
var Linearizable = Level{tier: TierLinearizable}

// Sequential returns the session-monotonic read level: the read serves
// the replica's current watermark immediately (parking only if the
// replica has not yet caught up to the session), and records the
// watermark it observed in s, so a later read through the same session
// — at this or any other replica — never observes older state. A nil
// session reads the current watermark with no cross-replica guarantee.
func Sequential(s *Session) Level { return Level{tier: TierSequential, sess: s} }

// Stale returns the bounded-staleness read level: the read serves local
// state immediately from the caller's goroutine — it never crosses the
// event loop — and reports the age of the watermark it reflects. A
// positive maxAge fails the read with ErrTooStale instead of serving
// state older than that; maxAge ≤ 0 serves unconditionally.
func Stale(maxAge time.Duration) Level { return Level{tier: TierStale, maxAge: maxAge} }

// Tier returns the level's consistency tier.
func (l Level) Tier() Tier { return l.tier }

// Session carries the monotonicity token for Sequential reads. The
// zero value is ready to use; one Session is shared by all reads that
// must observe non-decreasing state, and is safe for concurrent use.
type Session struct {
	w atomic.Int64
}

// Watermark returns the newest executed watermark a read through this
// session has observed.
func (s *Session) Watermark() int64 { return s.w.Load() }

// Advance folds a served read's watermark into the session token,
// keeping it monotonic. Local reads advance their session automatically
// (Read calls it); Advance exists for remote front ends — a client
// library carrying the token across connections feeds the watermark
// each GETS response reports back into its session, so sequential reads
// stay monotonic across replica failover.
func (s *Session) Advance(w int64) { s.observe(w) }

// observe folds a served read's watermark into the session token.
func (s *Session) observe(w int64) {
	for {
		cur := s.w.Load()
		if w <= cur || s.w.CompareAndSwap(cur, w) {
			return
		}
	}
}

// ReadResult is the outcome of one Read.
type ReadResult struct {
	// Value is the state machine's answer to the query.
	Value []byte
	// Watermark is the executed watermark the read was served at: every
	// command with timestamp ≤ Watermark is reflected in Value. Zero
	// when the read was replicated.
	Watermark int64
	// Age is how far the local clock was past the watermark at serve
	// time — an upper bound on the staleness of Value. Zero when the
	// read was replicated.
	Age time.Duration
	// Replicated reports that the read could not be served locally (the
	// protocol exposes no watermark, or the state machine no local
	// query) and went through the log as a command instead.
	Replicated bool
}

// clockNudger is implemented by protocols that can solicit an immediate
// clock broadcast from their peers (core.Replica.NudgeClock): a parked
// linearizable read on an idle cluster then waits one round trip
// instead of the rest of the Δ interval. Loop-only, like Submit.
type clockNudger interface {
	NudgeClock()
}

// readOp is one read parked in (or bound for) the node's waiter queue.
// It resolves exactly once; abandoning callers (context expiry) resolve
// it themselves and the loop's later serve becomes a no-op.
type readOp struct {
	n *Node
	// ts is the watermark the read waits for: the captured local clock
	// for Linearizable, the session token for Sequential.
	ts    int64
	query []byte
	sess  *Session
	// lin marks a Linearizable read: the only tier whose parking is
	// bounded by the clock rather than by this replica's catch-up, and
	// therefore the only one worth a nudge.
	lin bool
	// gate, when set, re-validates the read at serve time (after the
	// watermark wait, before the query). The routing layer uses it to
	// refuse reads whose key's slot migrated away — or is mid-migration
	// — between submit and serve, with a typed wrong-group error the
	// caller retries against the refreshed table.
	gate func() error

	once sync.Once
	res  ReadResult
	err  error
	done chan struct{}
}

// resolve fulfils the read exactly once and leaves the registry. It
// reports whether this call won — false means the read had already
// resolved (e.g. abandoned by its caller).
func (op *readOp) resolve(res ReadResult, err error) bool {
	won := false
	op.once.Do(func() {
		won = true
		op.res, op.err = res, err
		op.n.readMu.Lock()
		delete(op.n.readReg, op)
		op.n.readMu.Unlock()
		close(op.done)
	})
	return won
}

// resolved reports whether the read already resolved.
func (op *readOp) resolved() bool {
	select {
	case <-op.done:
		return true
	default:
		return false
	}
}

// readQueue is the timestamp-ordered waiter queue: a min-heap on the
// watermark each parked read waits for. Loop-owned.
type readQueue []*readOp

func (q readQueue) Len() int            { return len(q) }
func (q readQueue) Less(i, j int) bool  { return q[i].ts < q[j].ts }
func (q readQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *readQueue) Push(x interface{}) { *q = append(*q, x.(*readOp)) }
func (q *readQueue) Pop() interface{} {
	old := *q
	n := len(old)
	op := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return op
}

// Read answers a read-only query against the replicated state machine
// at the requested consistency level, serving from the locally executed
// stable prefix whenever the protocol supports it (rsm.StateReader) —
// no PREPARE broadcast, no log traffic. query uses the state machine's
// own encoding (kvstore.Get for the key-value store) and must be
// read-only: when the protocol exposes no watermark (paxos, mencius) or
// the state machine no local query, the read falls back to replicating
// query through the log as a command, and executes it there.
//
// A Linearizable read can stall while the watermark catches up to its
// capture time: with no write traffic the watermark advances only with
// the CLOCKTIME broadcast (core.Options.ClockTimeInterval Δ, which
// bounds the stall; Δ = 0 disables the broadcast and an idle system
// serves no linearizable reads), and a suspended or partitioned
// configuration stalls reads until it recovers. ctx bounds the wait. At
// a replica removed from the configuration, parked reads resolve
// ErrNotInConfig — the same sweep contract as write futures.
func (n *Node) Read(ctx context.Context, query []byte, lvl Level) (ReadResult, error) {
	return n.readGated(ctx, query, lvl, nil)
}

// readGated is Read with an optional serve-time gate (see readOp.gate).
func (n *Node) readGated(ctx context.Context, query []byte, lvl Level, gate func() error) (ReadResult, error) {
	if ctx.Err() != nil {
		return ReadResult{}, ErrCanceled
	}
	if n.sr == nil || n.app == nil || !n.canQuery {
		return n.readReplicated(ctx, query)
	}
	if lvl.tier == TierStale {
		return n.readStale(query, lvl, gate)
	}
	op := &readOp{n: n, query: query, sess: lvl.sess, gate: gate, done: make(chan struct{})}
	switch lvl.tier {
	case TierLinearizable:
		// Capture t before enqueueing: every write that completed before
		// this call has a timestamp the local clock already passed (see
		// Linearizable), and a later capture only waits longer.
		op.ts = n.clk.Now()
		op.lin = true
	case TierSequential:
		if lvl.sess != nil {
			op.ts = lvl.sess.Watermark()
		}
	}
	if err := n.registerRead(op); err != nil {
		return ReadResult{}, err
	}
	if !n.enqueue(event{read: op}) {
		op.resolve(ReadResult{}, ErrStopped)
		return ReadResult{}, ErrStopped
	}
	select {
	case <-op.done:
	case <-ctx.Done():
		// Abandon the wait: if the loop serves the read first, the
		// result wins the once and is returned below. The op may be
		// parked on the waiter queue; schedule a purge so abandoned
		// reads don't pin memory at a replica whose watermark is
		// stalled (retry loops against a partitioned replica would
		// otherwise grow the heap without bound).
		op.resolve(ReadResult{}, ErrCanceled)
		n.purgeAbandonedReads()
	}
	<-op.done
	if op.err != nil {
		return ReadResult{}, op.err
	}
	if op.sess != nil {
		op.sess.observe(op.res.Watermark)
	}
	return op.res, nil
}

// readStale serves a bounded-staleness read from the caller's
// goroutine: the watermark cache is atomic and the state machine's
// Query is required to be safe against concurrent Apply, so the read
// never waits on the event loop. The state queried may be newer than
// the cached watermark, never older — Age is an upper bound.
func (n *Node) readStale(query []byte, lvl Level, gate func() error) (ReadResult, error) {
	select {
	case <-n.quit:
		// Keep the shutdown contract uniform across tiers: a stopped
		// node fails reads instead of serving its frozen state forever.
		return ReadResult{}, ErrStopped
	default:
	}
	if gate != nil {
		if err := gate(); err != nil {
			return ReadResult{}, err
		}
	}
	w := n.watermark.Load()
	age := time.Duration(n.clk.Now() - w)
	if lvl.maxAge > 0 && age > lvl.maxAge {
		return ReadResult{}, ErrTooStale
	}
	val, _ := n.app.Query(query)
	n.readsLocal.Add(1)
	return ReadResult{Value: val, Watermark: w, Age: age}, nil
}

// readReplicated is the fallback for protocols without a watermark (or
// state machines without a local query): the read replicates through
// the log as a command and executes in the total order, at every level.
func (n *Node) readReplicated(ctx context.Context, query []byte) (ReadResult, error) {
	fut, err := n.Propose(ctx, query)
	if err != nil {
		return ReadResult{}, err
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		return ReadResult{}, err
	}
	return ReadResult{Value: res.Value, Replicated: true}, nil
}

// registerRead links a read into the registry Stop sweeps, unless the
// node already stopped.
func (n *Node) registerRead(op *readOp) error {
	n.readMu.Lock()
	defer n.readMu.Unlock()
	if n.readStopped {
		return ErrStopped
	}
	n.readReg[op] = struct{}{}
	return nil
}

// execRead runs on the event loop: serve the read if the watermark
// already covers its target, park it on the waiter queue otherwise.
func (n *Node) execRead(op *readOp) {
	if op.resolved() {
		return
	}
	// A replica outside the configuration stops executing its group's
	// commands: its watermark is frozen and its state stale. Fail fast
	// so the client reads elsewhere.
	if n.recon != nil && !n.inConfigLoop {
		op.resolve(ReadResult{}, ErrNotInConfig)
		return
	}
	if w := n.sr.StableTS(); w >= op.ts {
		n.serveRead(op, w)
		return
	}
	heap.Push(&n.readQ, op)
	n.readsParked.Add(1)
	if op.lin && n.nudger != nil {
		// Idle-read nudge (paper §IV): the watermark is behind this
		// read's clock capture, which on an idle cluster only resolves
		// with the next CLOCKTIME broadcast. Ask the peers for their
		// clocks now; the protocol coalesces bursts of parked reads into
		// one CLOCKREQ.
		n.nudger.NudgeClock()
	}
}

// serveRead answers one read from local state at watermark w. Runs on
// the event loop, where local state is exactly the executed prefix.
func (n *Node) serveRead(op *readOp, w int64) {
	if op.gate != nil {
		if err := op.gate(); err != nil {
			op.resolve(ReadResult{}, err)
			return
		}
	}
	val, _ := n.app.Query(op.query)
	// Count only reads whose result was actually delivered: a caller's
	// cancellation can win the race right up to this resolve, and an
	// abandoned read must not inflate the served counter.
	if op.resolve(ReadResult{Value: val, Watermark: w, Age: time.Duration(n.clk.Now() - w)}, nil) {
		n.readsLocal.Add(1)
	}
}

// onStableAdvance is the protocol's watermark listener (installed at
// startLoop when the protocol implements rsm.StateReader). It runs on
// the event loop after every turn in which the watermark may have
// advanced: it refreshes the lock-free watermark cache (Stale reads and
// Status read it) and releases parked reads the watermark now covers,
// in timestamp order.
func (n *Node) onStableAdvance() {
	w := n.sr.StableTS()
	n.watermark.Store(w)
	for len(n.readQ) > 0 && n.readQ[0].ts <= w {
		op := heap.Pop(&n.readQ).(*readOp)
		if op.resolved() {
			continue // abandoned while parked
		}
		n.serveRead(op, w)
	}
}

// purgeAbandonedReads schedules a compaction of the waiter queue,
// dropping entries whose reads already resolved (abandoned by their
// callers). Best-effort and non-blocking, coalesced across concurrent
// cancellations — a full queue or a stopping node just means the
// entries linger until the next purge, drain, or sweep.
func (n *Node) purgeAbandonedReads() {
	if !n.readPurge.CompareAndSwap(false, true) {
		return // a purge is already queued; it will cover this op
	}
	select {
	case n.events <- event{fn: func() {
		n.readPurge.Store(false)
		kept := n.readQ[:0]
		for _, op := range n.readQ {
			if !op.resolved() {
				kept = append(kept, op)
			}
		}
		for i := len(kept); i < len(n.readQ); i++ {
			n.readQ[i] = nil
		}
		n.readQ = kept
		heap.Init(&n.readQ) // compaction broke the heap order
	}}:
	case <-n.quit:
		n.readPurge.Store(false)
	default:
		n.readPurge.Store(false)
	}
}

// failParkedReads resolves every parked read with err and empties the
// waiter queue. Runs on the event loop (configuration removal).
func (n *Node) failParkedReads(err error) {
	for len(n.readQ) > 0 {
		op := heap.Pop(&n.readQ).(*readOp)
		op.resolve(ReadResult{}, err)
	}
}

// sweepReads fails every unresolved read with ErrStopped. It runs
// once, after the event loop has exited (see stopLoop), so Stop never
// strands a read waiter: queued, parked, and in-admission reads all
// resolve deterministically.
func (n *Node) sweepReads() {
	n.readMu.Lock()
	n.readStopped = true
	ops := make([]*readOp, 0, len(n.readReg))
	for op := range n.readReg {
		ops = append(ops, op)
	}
	n.readMu.Unlock()
	for _, op := range ops {
		op.resolve(ReadResult{}, ErrStopped)
	}
}
