package mencius

import (
	"math/rand"
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/sim"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

type harness struct {
	t       *testing.T
	c       *sim.Cluster
	reps    []*Replica
	orders  [][]types.CommandID
	replies []map[types.CommandID]time.Duration
	submits map[types.CommandID]time.Duration
	seq     uint64
}

func newHarness(t *testing.T, lat *wan.Matrix, copts sim.ClusterOptions) *harness {
	t.Helper()
	h := &harness{t: t, c: sim.NewCluster(lat, copts), submits: make(map[types.CommandID]time.Duration)}
	n := lat.Size()
	h.orders = make([][]types.CommandID, n)
	h.replies = make([]map[types.CommandID]time.Duration, n)
	for i, r := range h.c.Replicas {
		i := i
		h.replies[i] = make(map[types.CommandID]time.Duration)
		app := &rsm.App{
			SM: rsm.NopSM{},
			OnCommit: func(ts types.Timestamp, cmd types.Command) {
				h.orders[i] = append(h.orders[i], cmd.ID)
			},
			OnReply: func(res types.Result) { h.replies[i][res.ID] = h.c.Eng.Now() },
		}
		rep := New(r, app)
		h.reps = append(h.reps, rep)
		r.SetProtocol(rep)
	}
	h.c.Start()
	return h
}

func (h *harness) submitAt(id types.ReplicaID, at time.Duration) types.CommandID {
	h.seq++
	cid := types.CommandID{Origin: id, Seq: h.seq}
	h.c.Eng.At(at, func() {
		h.submits[cid] = h.c.Eng.Now()
		h.reps[id].Submit(types.Command{ID: cid, Payload: []byte("cmd")})
	})
	return cid
}

func (h *harness) latency(cid types.CommandID) time.Duration {
	rep, ok := h.replies[cid.Origin][cid]
	if !ok {
		h.t.Fatalf("no reply for %v", cid)
	}
	return rep - h.submits[cid]
}

func (h *harness) checkTotalOrder(want int) {
	h.t.Helper()
	for i := 1; i < len(h.orders); i++ {
		if len(h.orders[i]) != len(h.orders[0]) {
			h.t.Fatalf("replica %d executed %d, replica 0 executed %d", i, len(h.orders[i]), len(h.orders[0]))
		}
		for j := range h.orders[i] {
			if h.orders[i][j] != h.orders[0][j] {
				h.t.Fatalf("order divergence at %d", j)
			}
		}
	}
	if want >= 0 && len(h.orders[0]) != want {
		h.t.Fatalf("executed %d commands, want %d", len(h.orders[0]), want)
	}
}

func asymMatrix() *wan.Matrix {
	m := wan.NewMatrix(5)
	for j := 1; j < 5; j++ {
		m.Set(0, types.ReplicaID(j), ms(10*j))
		for k := j + 1; k < 5; k++ {
			m.Set(types.ReplicaID(j), types.ReplicaID(k), ms(25))
		}
	}
	return m
}

func TestImbalancedLatencyIsTwiceMax(t *testing.T) {
	// Section IV-C: under imbalanced workloads Mencius-bcast needs one
	// round trip to ALL replicas: 2*max({d(ri,rk)}) = 80ms from r0.
	// Slot 0 is the lone exception (no lower slots to clear, so only
	// majority replication gates it: 2*median = 40ms); every later
	// command pays the full price for the skip promises.
	h := newHarness(t, asymMatrix(), sim.ClusterOptions{})
	first := h.submitAt(0, 0)        // slot 0
	second := h.submitAt(0, ms(200)) // slot 5: needs floors > 5 from all
	h.c.Eng.RunUntilIdle()
	if got := h.latency(first); got != ms(40) {
		t.Errorf("slot-0 latency = %v, want 2*median = 40ms", got)
	}
	if got := h.latency(second); got != ms(80) {
		t.Errorf("imbalanced latency = %v, want 2*max = 80ms", got)
	}
}

func TestImbalancedLatencySteadyState(t *testing.T) {
	// Even under a steady single-origin stream, every command still pays
	// 2*max: skip promises only come back with acknowledgements.
	h := newHarness(t, asymMatrix(), sim.ClusterOptions{})
	var last types.CommandID
	for k := 0; k < 20; k++ {
		last = h.submitAt(0, time.Duration(k*30)*time.Millisecond)
	}
	h.c.Eng.RunUntilIdle()
	if got := h.latency(last); got < ms(70) || got > ms(90) {
		t.Errorf("steady-state imbalanced latency = %v, want ≈ 80ms", got)
	}
	h.checkTotalOrder(20)
}

func TestDelayedCommitUnderBalancedLoad(t *testing.T) {
	// The delayed commit problem (Sections I, IV-C): under balanced
	// workloads a command can be delayed by a concurrent command from
	// another replica occupying an earlier slot, so per-replica latency
	// varies within [q, q+max] instead of being constant. Feed all five
	// replicas steadily and compare r0's fastest and slowest commits.
	h := newHarness(t, asymMatrix(), sim.ClusterOptions{Jitter: ms(3), Seed: 23})
	rng := rand.New(rand.NewSource(42))
	var r0cmds []types.CommandID
	for i := 0; i < 5; i++ {
		at := time.Duration(0)
		for k := 0; k < 60; k++ {
			// Irregular inter-arrival times so proposals interleave in
			// different slot patterns every round.
			at += time.Duration(rng.Intn(40)) * time.Millisecond
			cid := h.submitAt(types.ReplicaID(i), at)
			if i == 0 && k >= 10 {
				r0cmds = append(r0cmds, cid)
			}
		}
	}
	h.c.Eng.RunUntil(10 * time.Second)
	h.checkTotalOrder(300)
	lo, hi := time.Duration(1<<62), time.Duration(0)
	for _, cid := range r0cmds {
		l := h.latency(cid)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	// Concurrent traffic supplies skip promises early, so the floor can
	// drop below the imbalanced 2*max; the ceiling shows the delayed
	// commits. The spread is the signature of the problem.
	if hi-lo < ms(5) {
		t.Errorf("latency spread [%v, %v] too narrow; delayed commit not observed", lo, hi)
	}
	if hi > ms(80)+ms(40) {
		t.Errorf("worst latency %v exceeds q+max bound", hi)
	}
}

func TestTotalOrderUnderConcurrency(t *testing.T) {
	h := newHarness(t, wan.EC2Matrix([]wan.Site{wan.CA, wan.VA, wan.IR, wan.JP, wan.SG}),
		sim.ClusterOptions{Jitter: ms(2), Seed: 17})
	total := 0
	for i := 0; i < 5; i++ {
		for k := 0; k < 20; k++ {
			h.submitAt(types.ReplicaID(i), time.Duration(k*13+i*3)*time.Millisecond)
			total++
		}
	}
	h.c.Eng.RunUntil(30 * time.Second)
	h.checkTotalOrder(total)
}

func TestSkipAccounting(t *testing.T) {
	// One command from r0 forces slots 1..4 (owned by others) to be
	// skipped at every replica before anything later can execute; skips
	// happen lazily, so submit a second command to force the frontier.
	h := newHarness(t, wan.Uniform(5, ms(10)), sim.ClusterOptions{})
	h.submitAt(0, 0)       // slot 0
	h.submitAt(0, ms(200)) // slot 5 after skipping 1-4
	h.c.Eng.RunUntilIdle()
	h.checkTotalOrder(2)
	if got := h.reps[0].Skipped(); got != 4 {
		t.Errorf("r0 skipped %d slots, want 4", got)
	}
	for i := 1; i < 5; i++ {
		if got := h.reps[i].Skipped(); got != 4 {
			t.Errorf("r%d skipped %d slots, want 4", i, got)
		}
	}
}

func TestRotatingOwnershipInterleaves(t *testing.T) {
	// Simultaneous commands at all replicas occupy their own slots
	// 0..4 and execute in slot (= replica) order.
	h := newHarness(t, wan.Uniform(5, ms(10)), sim.ClusterOptions{})
	var cids []types.CommandID
	for i := 0; i < 5; i++ {
		cids = append(cids, h.submitAt(types.ReplicaID(i), 0))
	}
	h.c.Eng.RunUntilIdle()
	h.checkTotalOrder(5)
	for j, cid := range cids {
		if h.orders[0][j] != cid {
			t.Fatalf("order %v, want %v", h.orders[0], cids)
		}
	}
}

func TestDuplicateDeliveryIgnored(t *testing.T) {
	h := newHarness(t, wan.Uniform(3, ms(10)), sim.ClusterOptions{})
	cid := h.submitAt(0, 0)
	h.c.Eng.RunUntilIdle()
	before := h.reps[1].Committed()
	// Replay the original MAccept for slot 0 by hand.
	h.reps[1].Deliver(0, &msg.MAccept{
		Slot:    0,
		Cmd:     types.Command{ID: cid, Payload: []byte("cmd")},
		LowSlot: 3,
	})
	if h.reps[1].Committed() != before {
		t.Error("duplicate MAccept changed commit count")
	}
	h.checkTotalOrder(1)
}
