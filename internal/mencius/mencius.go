// Package mencius implements the Mencius-bcast baseline of Section IV-C:
// Mencius (Mao & Junqueira, OSDI'08) with the commit-notification
// broadcast optimization the paper evaluates against.
//
// Mencius rotates slot ownership round-robin: replica k owns slots
// k, k+N, k+2N, …. A replica proposes its clients' commands in its own
// slots; acknowledging a higher slot implicitly skips the acknowledger's
// unused owned slots below it (the LowSlot promise on every message).
// A slot executes once it is decided AND every lower slot is decided —
// either with a command replicated at a majority, or as a skip learned
// from its owner. This last condition is the source of Mencius' delayed
// commit problem: a command can wait on concurrent commands (or skip
// announcements) from every other replica.
//
// As in the paper's latency study, the baseline runs failure-free; skip
// promises are taken from the owner's own announcements (revoking a
// crashed owner's slots needs Mencius' revocation protocol, which the
// paper does not exercise).
package mencius

import (
	"math/bits"

	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

// Replica is one Mencius-bcast replica.
type Replica struct {
	env rsm.Env
	app *rsm.App
	n   int

	// nextOwn is the smallest owned slot this replica may still propose
	// in; it advances past foreign slots as they are observed (implicit
	// skipping).
	nextOwn uint64
	// lowSlot[k] is replica k's announced proposal floor: k will never
	// propose in an owned slot < lowSlot[k], so such slots without a
	// command are skips.
	lowSlot []uint64
	// accepted maps slot → command.
	accepted map[uint64]types.Command
	// acks maps slot → bitmask of replicas that logged it.
	acks map[uint64]uint64
	// execIdx is the next slot to execute or skip.
	execIdx uint64

	committed uint64
	skipped   uint64
	nextSeq   uint64
}

var (
	_ rsm.Protocol    = (*Replica)(nil)
	_ rsm.IDAllocator = (*Replica)(nil)
)

// New creates a Mencius-bcast replica.
func New(env rsm.Env, app *rsm.App) *Replica {
	n := len(env.Spec())
	return &Replica{
		env:      env,
		app:      app,
		n:        n,
		nextOwn:  uint64(env.ID()),
		lowSlot:  make([]uint64, n),
		accepted: make(map[uint64]types.Command),
		acks:     make(map[uint64]uint64),
	}
}

// Start implements rsm.Protocol.
func (r *Replica) Start() {}

// Committed returns the number of commands executed.
func (r *Replica) Committed() uint64 { return r.committed }

// Skipped returns the number of slots executed as no-ops.
func (r *Replica) Skipped() uint64 { return r.skipped }

// NextCommandID allocates a client command identifier.
func (r *Replica) NextCommandID() types.CommandID {
	r.nextSeq++
	return types.CommandID{Origin: r.env.ID(), Seq: r.nextSeq}
}

// owner returns the replica owning a slot.
func (r *Replica) owner(slot uint64) types.ReplicaID {
	return types.ReplicaID(slot % uint64(r.n))
}

// Submit proposes cmd in this replica's next owned slot and broadcasts
// the accept message, which carries the new proposal floor (skipping
// nothing of its own here — nextOwn is by construction the lowest unused
// owned slot).
func (r *Replica) Submit(cmd types.Command) {
	slot := r.nextOwn
	r.nextOwn += uint64(r.n)
	r.lowSlot[r.env.ID()] = r.nextOwn
	r.accepted[slot] = cmd
	r.env.Log().Append(storage.Entry{Kind: storage.KindPrepare, TS: slotTS(slot), Cmd: cmd})
	r.ack(slot, r.env.ID())
	rsm.Broadcast(r.env, r.env.Spec(), &msg.MAccept{Slot: slot, Cmd: cmd, LowSlot: r.nextOwn})
	r.tryExecute()
}

// Deliver implements rsm.Protocol.
func (r *Replica) Deliver(from types.ReplicaID, m msg.Message) {
	switch mm := m.(type) {
	case *msg.Batch:
		// Packed messages from one sender: process in order.
		for _, sub := range mm.Msgs {
			r.Deliver(from, sub)
		}
	case *msg.MAccept:
		r.onAccept(from, mm)
	case *msg.MAccepted:
		r.onAccepted(from, mm)
	}
}

// observeLow folds replica k's announced proposal floor.
func (r *Replica) observeLow(k types.ReplicaID, low uint64) {
	if low > r.lowSlot[k] {
		r.lowSlot[k] = low
	}
}

// skipPast advances this replica's own proposal floor past slot,
// implicitly skipping every unused owned slot below it. The new floor is
// announced on the next outgoing message (and counted locally at once).
func (r *Replica) skipPast(slot uint64) {
	for r.nextOwn < slot {
		r.nextOwn += uint64(r.n)
	}
	if r.nextOwn > r.lowSlot[r.env.ID()] {
		r.lowSlot[r.env.ID()] = r.nextOwn
	}
}

// onAccept handles a proposal for a foreign slot: log it, adopt the
// owner's floor, skip our own unused slots below it, and acknowledge to
// everyone (the -bcast optimization) with our floor attached.
func (r *Replica) onAccept(from types.ReplicaID, m *msg.MAccept) {
	r.observeLow(from, m.LowSlot)
	r.skipPast(m.Slot)
	if _, dup := r.accepted[m.Slot]; !dup {
		r.accepted[m.Slot] = m.Cmd
		r.env.Log().Append(storage.Entry{Kind: storage.KindPrepare, TS: slotTS(m.Slot), Cmd: m.Cmd})
	}
	// The MAccept proves the owner logged the slot.
	r.ack(m.Slot, from)
	r.ack(m.Slot, r.env.ID())
	rsm.Broadcast(r.env, r.env.Spec(), &msg.MAccepted{Slot: m.Slot, LowSlot: r.nextOwn})
	r.tryExecute()
}

// onAccepted handles a logging acknowledgement broadcast by another
// replica.
func (r *Replica) onAccepted(from types.ReplicaID, m *msg.MAccepted) {
	r.observeLow(from, m.LowSlot)
	r.ack(m.Slot, from)
	r.tryExecute()
}

// ack records that replica k logged slot.
func (r *Replica) ack(slot uint64, k types.ReplicaID) {
	r.acks[slot] |= 1 << uint(k)
}

// tryExecute advances the execution frontier in slot order: commands
// execute once majority-replicated; empty slots execute as skips once
// their owner's floor passes them. A slot that is neither blocks all
// later slots — the delayed commit problem.
func (r *Replica) tryExecute() {
	maj := types.Majority(r.n)
	for {
		slot := r.execIdx
		if cmd, ok := r.accepted[slot]; ok {
			if bits.OnesCount64(r.acks[slot]) < maj {
				return
			}
			r.execIdx++
			r.env.Log().Append(storage.Entry{Kind: storage.KindCommit, TS: slotTS(slot)})
			delete(r.acks, slot)
			delete(r.accepted, slot)
			r.committed++
			r.app.Execute(r.env.ID(), slotTS(slot), cmd)
			continue
		}
		owner := r.owner(slot)
		if owner == r.env.ID() {
			if r.nextOwn > slot {
				// Our own skipped slot.
				r.execIdx++
				r.skipped++
				continue
			}
			return
		}
		if r.lowSlot[owner] > slot {
			// Skip learned from the owner's floor announcement.
			r.execIdx++
			r.skipped++
			continue
		}
		return
	}
}

// slotTS renders a slot as the Timestamp key used by the shared log.
func slotTS(slot uint64) types.Timestamp {
	return types.Timestamp{Wall: int64(slot)}
}
