package rpc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// startCluster runs an n-replica Clock-RSM cluster over the in-process
// hub and returns its hosts. Cleanup stops everything.
func startCluster(t *testing.T, n int, opts node.HostOptions) []*node.Host {
	t.Helper()
	hub := transport.NewHub(n, transport.HubOptions{Codec: true})
	t.Cleanup(hub.Close)
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	hosts := make([]*node.Host, n)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		h, err := node.NewHost(id, spec, hub.Endpoint(id), opts)
		if err != nil {
			t.Fatal(err)
		}
		app := &rsm.App{SM: kvstore.New()}
		nd := h.Group(0)
		nd.Bind(app)
		nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 2 * time.Millisecond}))
		hosts[i] = h
	}
	for _, h := range hosts {
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Stop()
		}
	})
	return hosts
}

// startServer serves host's front door on a fresh loopback listener.
func startServer(t *testing.T, host *node.Host, opts ServerOptions) (*Server, string) {
	t.Helper()
	srv := NewServer(host, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

// rawClient is a deliberately dumb test client: frames in, frames out,
// full control over pipelining — the admission tests need exact
// ordering the real client library's window would obscure.
type rawClient struct {
	t    *testing.T
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	buf  []byte
	enc  []byte
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	c := &rawClient{t: t, conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}
	if err := WriteMagic(c.bw); err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *rawClient) send(reqs ...*Request) {
	c.t.Helper()
	for _, r := range reqs {
		c.enc = AppendRequest(c.enc[:0], r)
		if _, err := c.bw.Write(c.enc); err != nil {
			c.t.Fatal(err)
		}
	}
	if err := c.bw.Flush(); err != nil {
		c.t.Fatal(err)
	}
}

// recv reads one response, copying Value so it survives the next read.
func (c *rawClient) recv() (Response, error) {
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := ReadFrame(c.br, &c.buf)
	if err != nil {
		return Response{}, err
	}
	var resp Response
	if err := DecodeResponse(payload, &resp); err != nil {
		return Response{}, err
	}
	if resp.Value != nil {
		resp.Value = append([]byte(nil), resp.Value...)
	}
	return resp, nil
}

func (c *rawClient) mustRecv() Response {
	c.t.Helper()
	resp, err := c.recv()
	if err != nil {
		c.t.Fatalf("recv: %v", err)
	}
	return resp
}

// warmWatermark commits one write and probes until the replica reports
// a non-zero executed watermark (the watermark only advances once the
// first command or CLOCKTIME round lands).
func warmWatermark(t *testing.T, c *rawClient) int64 {
	t.Helper()
	c.send(&Request{ID: 90, Verb: VPut, Key: []byte("warm"), Value: []byte("w")})
	if resp := c.mustRecv(); resp.Status != StatusOK {
		t.Fatalf("warm-up PUT: %+v", resp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.send(&Request{ID: 91, Verb: VGetS, Key: []byte("warm")})
		if resp := c.mustRecv(); resp.Status == StatusOK && resp.Watermark > 0 {
			return resp.Watermark
		}
		if time.Now().After(deadline) {
			t.Fatal("watermark never advanced")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerEndToEnd(t *testing.T) {
	hosts := startCluster(t, 3, node.HostOptions{})
	admin := func(ctx context.Context, line string) (string, bool) {
		if strings.HasPrefix(line, "STATUS") {
			return "OK status-reply", true
		}
		return "", false
	}
	_, addr := startServer(t, hosts[0], ServerOptions{Admin: admin})
	c := dialRaw(t, addr)

	// Replicated write, then every read tier against it.
	c.send(&Request{ID: 1, Verb: VPut, Key: []byte("k"), Value: []byte("v1")})
	if resp := c.mustRecv(); resp.ID != 1 || resp.Status != StatusOK {
		t.Fatalf("PUT: %+v", resp)
	}
	c.send(&Request{ID: 2, Verb: VGet, Key: []byte("k")})
	if resp := c.mustRecv(); resp.Status != StatusOK || string(resp.Value) != "v1" {
		t.Fatalf("GET: %+v", resp)
	}
	c.send(&Request{ID: 3, Verb: VGetL, Key: []byte("k")})
	if resp := c.mustRecv(); resp.Status != StatusOK || string(resp.Value) != "v1" || resp.Watermark == 0 {
		t.Fatalf("GETL: %+v", resp)
	}
	c.send(&Request{ID: 4, Verb: VGetS, Key: []byte("k")})
	resp := c.mustRecv()
	if resp.Status != StatusOK || string(resp.Value) != "v1" || resp.Watermark == 0 {
		t.Fatalf("GETS: %+v", resp)
	}
	// A session token from one response is honored on the next read: the
	// served watermark never regresses below the token.
	tok := resp.Watermark
	c.send(&Request{ID: 5, Verb: VGetS, Key: []byte("k"), Session: tok})
	if resp := c.mustRecv(); resp.Status != StatusOK || resp.Watermark < tok {
		t.Fatalf("GETS with token %d: %+v", tok, resp)
	}
	c.send(&Request{ID: 6, Verb: VGetA, Key: []byte("k"), MaxAge: int64(time.Minute)})
	if resp := c.mustRecv(); resp.Status != StatusOK || string(resp.Value) != "v1" {
		t.Fatalf("GETA: %+v", resp)
	}
	// Stale read with an impossible bound maps to the typed status.
	c.send(&Request{ID: 7, Verb: VGetA, Key: []byte("k"), MaxAge: 1})
	if resp := c.mustRecv(); resp.Status != StatusTooStale {
		t.Fatalf("GETA maxage=1ns: %+v, want StatusTooStale", resp)
	}
	c.send(&Request{ID: 8, Verb: VDel, Key: []byte("k")})
	if resp := c.mustRecv(); resp.Status != StatusOK || string(resp.Value) != "v1" {
		t.Fatalf("DEL: %+v", resp)
	}
	// Admin verbs route through the hook.
	c.send(&Request{ID: 9, Verb: VAdmin, Value: []byte("STATUS")})
	if resp := c.mustRecv(); resp.Status != StatusOK || string(resp.Value) != "OK status-reply" {
		t.Fatalf("ADMIN: %+v", resp)
	}
	c.send(&Request{ID: 10, Verb: VAdmin, Value: []byte("NOPE")})
	if resp := c.mustRecv(); resp.Status != StatusBadRequest {
		t.Fatalf("ADMIN unknown: %+v, want StatusBadRequest", resp)
	}
}

// TestServerPipelinesOutOfOrder pins the multiplexing contract: a slow
// request does not block a later fast one on the same connection.
func TestServerPipelinesOutOfOrder(t *testing.T) {
	hosts := startCluster(t, 3, node.HostOptions{})
	_, addr := startServer(t, hosts[0], ServerOptions{})
	c := dialRaw(t, addr)

	// Current watermark, to build a token ~300ms in the future (the
	// watermark is a physical-clock timestamp in nanoseconds).
	w := warmWatermark(t, c)
	future := w + int64(300*time.Millisecond)

	// Slow read first, fast write second — the write's response must
	// overtake the parked read.
	c.send(
		&Request{ID: 2, Verb: VGetS, Key: []byte("x"), Session: future},
		&Request{ID: 3, Verb: VPut, Key: []byte("x"), Value: []byte("v")},
	)
	first, second := c.mustRecv(), c.mustRecv()
	if first.ID != 3 || second.ID != 2 {
		t.Fatalf("completion order: got %d then %d, want 3 then 2 (out-of-order completion)", first.ID, second.ID)
	}
	if first.Status != StatusOK || second.Status != StatusOK {
		t.Fatalf("statuses: %+v / %+v", first, second)
	}
	if second.Watermark < future {
		t.Fatalf("parked read served at watermark %d < session token %d", second.Watermark, future)
	}
}

// TestAdmissionGlobalBudget overloads a budget-capped server with twice
// the global budget in pipelined requests: the overflow must shed with
// the typed status immediately, every admitted request must still be
// answered (zero lost acks), and the counters must add up.
func TestAdmissionGlobalBudget(t *testing.T) {
	const budget = 8
	hosts := startCluster(t, 3, node.HostOptions{})
	srv, addr := startServer(t, hosts[0], ServerOptions{MaxInFlight: budget, ConnInFlight: 4 * budget})
	c := dialRaw(t, addr)

	w := warmWatermark(t, c)
	future := w + int64(500*time.Millisecond)
	baseAccepted := srv.Counters().Accepted

	// 2× the global budget, pipelined in one burst. Each admitted read
	// parks ~500ms, so admission is full when the overflow arrives.
	const total = 2 * budget
	reqs := make([]*Request, total)
	for i := range reqs {
		reqs[i] = &Request{ID: uint64(100 + i), Verb: VGetS, Key: []byte("x"), Session: future}
	}
	c.send(reqs...)

	shed, ok := 0, 0
	answered := make(map[uint64]int)
	var sawInFlight int64
	for i := 0; i < total; i++ {
		if i == total-budget { // all sheds arrive before any admitted completes
			if cs := srv.Counters(); cs.InFlight > sawInFlight {
				sawInFlight = cs.InFlight
			}
		}
		resp := c.mustRecv()
		answered[resp.ID]++
		switch resp.Status {
		case StatusOverloaded:
			shed++
		case StatusOK:
			ok++
			if resp.Watermark < future {
				t.Fatalf("admitted read served early: watermark %d < %d", resp.Watermark, future)
			}
		default:
			t.Fatalf("unexpected status %v (id %d)", resp.Status, resp.ID)
		}
	}
	if shed != total-budget || ok != budget {
		t.Fatalf("shed=%d ok=%d, want shed=%d ok=%d", shed, ok, total-budget, budget)
	}
	for id, nresp := range answered {
		if nresp != 1 {
			t.Fatalf("request %d answered %d times", id, nresp)
		}
	}
	cs := srv.Counters()
	if cs.Shed != int64(total-budget) {
		t.Fatalf("Shed counter %d, want %d", cs.Shed, total-budget)
	}
	if got := cs.Accepted - baseAccepted; got != int64(budget) {
		t.Fatalf("Accepted counter grew %d, want %d", got, budget)
	}
	if cs.InFlight != 0 {
		t.Fatalf("InFlight counter %d after drain, want 0", cs.InFlight)
	}
	if sawInFlight != budget {
		t.Fatalf("saw in-flight %d while parked, want the full budget %d", sawInFlight, budget)
	}
}

// TestAdmissionConnBudget: the per-connection budget sheds even when
// the global budget has room, and a second connection is unaffected.
func TestAdmissionConnBudget(t *testing.T) {
	const connBudget = 4
	hosts := startCluster(t, 3, node.HostOptions{})
	srv, addr := startServer(t, hosts[0], ServerOptions{MaxInFlight: 1024, ConnInFlight: connBudget})
	c := dialRaw(t, addr)

	w := warmWatermark(t, c)
	future := w + int64(500*time.Millisecond)

	const total = 3 * connBudget
	reqs := make([]*Request, total)
	for i := range reqs {
		reqs[i] = &Request{ID: uint64(100 + i), Verb: VGetS, Key: []byte("x"), Session: future}
	}
	c.send(reqs...)

	// A fresh connection has its own budget: it must be served, not shed,
	// while the first connection's overflow is shedding.
	c2 := dialRaw(t, addr)
	c2.send(&Request{ID: 9000, Verb: VGetS, Key: []byte("x")})
	if resp := c2.mustRecv(); resp.Status != StatusOK {
		t.Fatalf("second connection: %+v, want OK", resp)
	}

	shed, ok := 0, 0
	for i := 0; i < total; i++ {
		switch resp := c.mustRecv(); resp.Status {
		case StatusOverloaded:
			shed++
		case StatusOK:
			ok++
		default:
			t.Fatalf("unexpected status %v", resp.Status)
		}
	}
	if ok != connBudget || shed != total-connBudget {
		t.Fatalf("ok=%d shed=%d, want ok=%d shed=%d", ok, shed, connBudget, total-connBudget)
	}
	if cs := srv.Counters(); cs.Shed != int64(total-connBudget) {
		t.Fatalf("Shed counter %d, want %d", cs.Shed, total-connBudget)
	}
}

// TestServerRejectsBadOpens: wrong magic and malformed frames drop the
// connection instead of wedging the server.
func TestServerRejectsBadOpens(t *testing.T) {
	hosts := startCluster(t, 3, node.HostOptions{})
	_, addr := startServer(t, hosts[0], ServerOptions{})

	// Line-protocol bytes on the RPC port: connection dropped.
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET key\n")
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a non-RPC connection")
	}

	// Valid magic, then a garbage frame: one BadRequest reply, then EOF.
	// dialRaw buffered the magic; flush it together with the garbage.
	c := dialRaw(t, addr)
	garbage := []byte{9, 0, 0, 0, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8}
	c.bw.Write(garbage)
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp := c.mustRecv()
	if resp.Status != StatusBadRequest {
		t.Fatalf("garbage frame: %+v, want StatusBadRequest", resp)
	}
	if _, err := c.recv(); err == nil {
		t.Fatal("connection survived a framing error")
	}

	// Later connections still work.
	c3 := dialRaw(t, addr)
	c3.send(&Request{ID: 1, Verb: VGetS, Key: []byte("x")})
	if resp := c3.mustRecv(); resp.Status != StatusOK {
		t.Fatalf("post-garbage connection: %+v", resp)
	}
}

// TestServerCloseResolvesInFlight: closing the server mid-park must not
// strand the per-request goroutines (Close waits for them).
func TestServerCloseResolvesInFlight(t *testing.T) {
	hosts := startCluster(t, 3, node.HostOptions{})
	srv, addr := startServer(t, hosts[0], ServerOptions{})
	c := dialRaw(t, addr)

	w := warmWatermark(t, c)
	// Park a few reads far in the future, then pull the plug.
	for i := 0; i < 4; i++ {
		c.send(&Request{ID: uint64(10 + i), Verb: VGetS, Key: []byte("x"), Session: w + int64(time.Hour)})
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close hung with parked requests")
	}
	if cs := srv.Counters(); cs.Conns != 0 {
		t.Fatalf("Conns counter %d after Close, want 0", cs.Conns)
	}
}
