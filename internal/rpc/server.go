package rpc

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/msg"
	"clockrsm/internal/node"
	"clockrsm/internal/types"
)

// ServerOptions configure a front-door Server.
type ServerOptions struct {
	// MaxInFlight is the global admission budget: requests admitted
	// (handed to the replication stack) but not yet answered, across all
	// connections (default 4096). A request past it is shed immediately
	// with StatusOverloaded — the server never queues unbounded work.
	MaxInFlight int
	// ConnInFlight is the per-connection admission budget (default 256),
	// so one aggressive pipeline cannot consume the whole global budget.
	ConnInFlight int
	// Timeout bounds the server-side wait for one request (default 10s);
	// expiry answers StatusTimeout.
	Timeout time.Duration
	// Admin serves VAdmin requests: one operator line in (MEMBERS,
	// STATUS, RECONF ...), one reply line out, ok=false for unknown
	// verbs. nil rejects every admin request.
	Admin func(ctx context.Context, line string) (string, bool)
}

func (o *ServerOptions) defaults() {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4096
	}
	if o.ConnInFlight <= 0 {
		o.ConnInFlight = 256
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
}

// Counters is a snapshot of the server's admission statistics.
type Counters struct {
	// Conns is the number of currently open connections.
	Conns int64
	// InFlight is the number of admitted, unanswered requests right now.
	InFlight int64
	// Accepted counts requests admitted since the server started.
	Accepted int64
	// Shed counts requests rejected by an admission budget.
	Shed int64
}

// Server serves the front-door protocol over a listener, translating
// wire requests into Host proposals and tiered reads. Each connection
// runs one reader and one writer goroutine plus one short-lived
// goroutine per admitted request; admission budgets bound the total.
type Server struct {
	host *node.Host
	opts ServerOptions

	global atomic.Int64 // admitted in-flight, all connections

	conns    atomic.Int64
	accepted atomic.Int64
	shed     atomic.Int64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	active    map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer creates a front-door server over host.
func NewServer(host *node.Host, opts ServerOptions) *Server {
	opts.defaults()
	return &Server{
		host:      host,
		opts:      opts,
		listeners: make(map[net.Listener]struct{}),
		active:    make(map[net.Conn]struct{}),
	}
}

// Counters snapshots the admission statistics.
func (s *Server) Counters() Counters {
	return Counters{
		Conns:    s.conns.Load(),
		InFlight: s.global.Load(),
		Accepted: s.accepted.Load(),
		Shed:     s.shed.Load(),
	}
}

// Serve accepts connections on ln until ln is closed or the server is.
// It always returns a non-nil error; after Close it returns
// net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.active[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every live connection and waits for
// the per-connection goroutines to drain. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for conn := range s.active {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// conn is the per-connection state shared by the reader, the writer and
// the request goroutines.
type srvConn struct {
	s    *Server
	c    net.Conn
	resp chan *msg.Buf // encoded response frames, writer-owned after send
	done chan struct{} // closed on teardown; unblocks request goroutines
	wg   sync.WaitGroup
	// ctx parents every request context; teardown cancels it so requests
	// parked in the replication stack unwind instead of running out
	// their full timeout against a client that already hung up.
	ctx    context.Context
	cancel context.CancelFunc

	inFlight atomic.Int64 // this connection's admitted, unanswered requests
}

func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.active, c)
		s.mu.Unlock()
	}()
	s.conns.Add(1)
	defer s.conns.Add(-1)
	defer c.Close()

	if err := ReadMagic(c); err != nil {
		return
	}

	sc := &srvConn{
		s: s, c: c,
		// The response channel is bounded: when the writer falls behind
		// (client not reading — TCP backpressure), request goroutines
		// block here instead of buffering frames without limit. Capacity
		// covers the connection budget so completions rarely contend.
		resp: make(chan *msg.Buf, s.opts.ConnInFlight+1),
		done: make(chan struct{}),
	}
	sc.ctx, sc.cancel = context.WithCancel(context.Background())
	defer sc.cancel()

	// Writer: drain encoded frames through one bufio.Writer, flushing
	// only when the channel runs empty — the write-as-drained coalescing
	// idiom of the replica wire, one syscall per burst.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		// A write error closes the connection so the reader (blocked in
		// ReadFrame) unblocks and teardown proceeds.
		defer c.Close()
		bw := bufio.NewWriterSize(c, 64<<10)
		for {
			select {
			case b, ok := <-sc.resp:
				if !ok {
					return
				}
				_, err := bw.Write(b.B)
				msg.PutBuf(b)
				if err != nil {
					return
				}
				for {
					select {
					case b, ok := <-sc.resp:
						if !ok {
							bw.Flush()
							return
						}
						_, err := bw.Write(b.B)
						msg.PutBuf(b)
						if err != nil {
							return
						}
						continue
					default:
					}
					break
				}
				if bw.Flush() != nil {
					return
				}
			}
		}
	}()

	// Reader: frame → decode → admission → dispatch. Runs on this
	// goroutine; a decode error kills the connection (framing state past
	// a bad frame is untrustworthy).
	sc.readLoop()

	// Teardown: unblock request goroutines first (they may be parked on
	// the bounded response channel), wait for them, then let the writer
	// drain what was already enqueued and exit.
	close(sc.done)
	sc.cancel()
	sc.wg.Wait()
	close(sc.resp)
	<-writerDone
	// A writer that died on a write error leaves frames queued; recycle
	// them so the pool keeps its buffers.
	for b := range sc.resp {
		msg.PutBuf(b)
	}
}

func (sc *srvConn) readLoop() {
	var buf []byte
	for {
		payload, err := ReadFrame(sc.c, &buf)
		if err != nil {
			return
		}
		var req Request
		if err := DecodeRequest(payload, &req); err != nil {
			// Answer the one request we could not parse, then drop the
			// connection: resynchronizing a corrupt stream is impossible.
			sc.send(&Response{ID: req.ID, Status: StatusBadRequest, Value: []byte(err.Error())})
			return
		}
		// Admission control: both budgets, checked before any work is
		// queued. A rejected request is answered immediately and never
		// touches the replication stack — load sheds at the door instead
		// of collapsing latency for admitted work.
		if sc.inFlight.Load() >= int64(sc.s.opts.ConnInFlight) ||
			sc.s.global.Load() >= int64(sc.s.opts.MaxInFlight) {
			sc.s.shed.Add(1)
			sc.send(&Response{ID: req.ID, Status: StatusOverloaded})
			continue
		}
		sc.inFlight.Add(1)
		sc.s.global.Add(1)
		sc.s.accepted.Add(1)

		// Decoded slices borrow the read buffer: copy what the request
		// goroutine keeps, here, before the next ReadFrame reuses it.
		key := string(req.Key)
		var value []byte
		if req.Value != nil {
			value = append([]byte(nil), req.Value...)
		}
		sc.wg.Add(1)
		go sc.handle(req, key, value)
	}
}

// handle executes one admitted request and enqueues its response.
func (sc *srvConn) handle(req Request, key string, value []byte) {
	defer sc.wg.Done()
	defer sc.inFlight.Add(-1)
	defer sc.s.global.Add(-1)

	ctx, cancel := context.WithTimeout(sc.ctx, sc.s.opts.Timeout)
	defer cancel()

	resp := Response{ID: req.ID}
	var err error
	switch req.Verb {
	case VPut, VGet, VDel:
		var payload []byte
		switch req.Verb {
		case VPut:
			payload = kvstore.Put(key, value)
		case VGet:
			payload = kvstore.Get(key)
		case VDel:
			payload = kvstore.Delete(key)
		}
		// Execute retries through routing changes server-side: a command
		// fenced by a live split resubmits at the key's new group once
		// the table flips, so clients only see StatusWrongGroup when a
		// migration outlives the wait bound.
		var res types.Result
		res, err = sc.s.host.Execute(ctx, key, payload)
		resp.Value = res.Value
	case VGetL, VGetS, VGetA:
		var lvl node.Level
		var sess node.Session
		switch req.Verb {
		case VGetL:
			lvl = node.Linearizable
		case VGetS:
			// The client's session token travels in the request; seeding a
			// throwaway Session with it parks the read until this replica's
			// watermark covers everything the session has observed — the
			// monotonicity state lives in the token, not the connection.
			sess.Advance(req.Session)
			lvl = node.Sequential(&sess)
		case VGetA:
			lvl = node.Stale(time.Duration(req.MaxAge))
		}
		var res node.ReadResult
		if res, err = sc.s.host.ReadKey(ctx, key, kvstore.Get(key), lvl); err == nil {
			resp.Value = res.Value
			resp.Watermark = res.Watermark
		}
	case VAdmin:
		if sc.s.opts.Admin == nil {
			err = ErrBadRequest
		} else if reply, ok := sc.s.opts.Admin(ctx, string(value)); ok {
			resp.Value = []byte(reply)
		} else {
			resp.Status = StatusBadRequest
			resp.Value = []byte("unknown admin verb")
			sc.send(&resp)
			return
		}
	default:
		err = ErrBadRequest
	}

	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, node.ErrCanceled) {
			err = ErrTimeout
		}
		resp.Status = StatusFor(err)
		resp.Value = nil
		if resp.Status == StatusErr || resp.Status == StatusBadRequest {
			resp.Value = []byte(err.Error())
		}
	} else if resp.Status == 0 {
		resp.Status = StatusOK
	}
	sc.send(&resp)
}

// send encodes resp into a pooled buffer and enqueues it for the
// writer, blocking (TCP backpressure) if the client is not draining.
// On connection teardown the frame is recycled and dropped.
func (sc *srvConn) send(resp *Response) {
	b := msg.GetBuf()
	b.B = AppendResponse(b.B[:0], resp)
	select {
	case sc.resp <- b:
	case <-sc.done:
		msg.PutBuf(b)
	}
}
