package rpc

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"clockrsm/internal/node"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Verb: VPut, Key: []byte("k"), Value: []byte("v")},
		{ID: 2, Verb: VGet, Key: []byte("key")},
		{ID: 3, Verb: VDel, Key: []byte{}, Value: nil},
		{ID: 4, Verb: VGetL, Key: []byte("x")},
		{ID: 5, Verb: VGetS, Key: []byte("x"), Session: 1 << 60},
		{ID: 6, Verb: VGetA, Key: []byte("x"), MaxAge: 5e9},
		{ID: 7, Verb: VAdmin, Value: []byte("STATUS")},
		{ID: ^uint64(0), Verb: VPut, Key: bytes.Repeat([]byte("K"), 100<<10), Value: bytes.Repeat([]byte("V"), 200<<10)},
		{ID: 9, Verb: VPut, Key: []byte("k"), Value: []byte{}}, // empty ≠ nil
	}
	var buf []byte
	for _, want := range cases {
		frame := AppendRequest(nil, &want)
		r := bytes.NewReader(frame)
		payload, err := ReadFrame(r, &buf)
		if err != nil {
			t.Fatalf("%v: ReadFrame: %v", want.Verb, err)
		}
		var got Request
		if err := DecodeRequest(payload, &got); err != nil {
			t.Fatalf("%v: DecodeRequest: %v", want.Verb, err)
		}
		if got.ID != want.ID || got.Verb != want.Verb || got.Session != want.Session || got.MaxAge != want.MaxAge {
			t.Fatalf("header mismatch: got %+v want %+v", got, want)
		}
		if !bytes.Equal(got.Key, want.Key) || (got.Key == nil) != (want.Key == nil) {
			t.Fatalf("%v: key mismatch: got %q (nil=%v) want %q", want.Verb, got.Key, got.Key == nil, want.Key)
		}
		if !bytes.Equal(got.Value, want.Value) || (got.Value == nil) != (want.Value == nil) {
			t.Fatalf("%v: value mismatch: got %q (nil=%v) want %q (nil=%v)", want.Verb, got.Value, got.Value == nil, want.Value, want.Value == nil)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, Status: StatusOK, Value: []byte("prev")},
		{ID: 2, Status: StatusOK, Value: nil},
		{ID: 3, Status: StatusOK, Value: []byte{}},
		{ID: 4, Status: StatusOverloaded},
		{ID: 5, Status: StatusNotInConfig},
		{ID: 6, Status: StatusErr, Value: []byte("boom")},
		{ID: 7, Status: StatusOK, Watermark: 1 << 50},
	}
	var buf []byte
	for _, want := range cases {
		frame := AppendResponse(nil, &want)
		payload, err := ReadFrame(bytes.NewReader(frame), &buf)
		if err != nil {
			t.Fatalf("%v: ReadFrame: %v", want.Status, err)
		}
		var got Response
		if err := DecodeResponse(payload, &got); err != nil {
			t.Fatalf("%v: DecodeResponse: %v", want.Status, err)
		}
		if got.ID != want.ID || got.Status != want.Status || got.Watermark != want.Watermark {
			t.Fatalf("header mismatch: got %+v want %+v", got, want)
		}
		if !bytes.Equal(got.Value, want.Value) || (got.Value == nil) != (want.Value == nil) {
			t.Fatalf("%v: value mismatch: got %q (nil=%v) want %q (nil=%v)", want.Status, got.Value, got.Value == nil, want.Value, want.Value == nil)
		}
	}
}

// TestPipelinedFrames streams several frames through one buffer and one
// reused read buffer — the steady-state connection shape.
func TestPipelinedFrames(t *testing.T) {
	var wire []byte
	const n = 64
	for i := 0; i < n; i++ {
		wire = AppendRequest(wire, &Request{ID: uint64(i), Verb: VPut, Key: []byte{byte(i)}, Value: bytes.Repeat([]byte{byte(i)}, i)})
	}
	r := bytes.NewReader(wire)
	var buf []byte
	for i := 0; i < n; i++ {
		payload, err := ReadFrame(r, &buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var req Request
		if err := DecodeRequest(payload, &req); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if req.ID != uint64(i) || len(req.Value) != i {
			t.Fatalf("frame %d decoded as %+v", i, req)
		}
	}
	if _, err := ReadFrame(r, &buf); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

func TestReadFrameLimits(t *testing.T) {
	// Length prefix above MaxFrame must be rejected before allocating.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	var buf []byte
	if _, err := ReadFrame(bytes.NewReader(huge), &buf); !errors.Is(err, errFrame) {
		t.Fatalf("oversized frame: got %v, want errFrame", err)
	}
	// Truncated payload must surface ErrUnexpectedEOF, not hang or OK.
	frame := AppendRequest(nil, &Request{ID: 1, Verb: VPut, Key: []byte("k"), Value: []byte("v")})
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2]), &buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestMagic(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMagic(&b); err != nil {
		t.Fatal(err)
	}
	if err := ReadMagic(bytes.NewReader(b.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := ReadMagic(bytes.NewReader([]byte("GET "))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("line-protocol bytes on rpc port: got %v, want ErrBadMagic", err)
	}
}

func TestStatusErrMapping(t *testing.T) {
	cases := []struct {
		st   Status
		want error
	}{
		{StatusOK, nil},
		{StatusOverloaded, ErrOverloaded},
		{StatusNotInConfig, node.ErrNotInConfig},
		{StatusReconfigured, node.ErrReconfigured},
		{StatusTooStale, node.ErrTooStale},
		{StatusStopped, node.ErrStopped},
		{StatusTimeout, ErrTimeout},
		{StatusBadRequest, ErrBadRequest},
	}
	for _, c := range cases {
		err := c.st.Err(nil)
		if c.want == nil {
			if err != nil {
				t.Fatalf("%v.Err() = %v, want nil", c.st, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Fatalf("%v.Err() = %v, want %v", c.st, err, c.want)
		}
		// And the inverse: StatusFor round-trips the typed sentinel.
		if c.st != StatusBadRequest { // BadRequest is produced by the codec, not mapped from errors
			if got := StatusFor(c.want); got != c.st {
				t.Fatalf("StatusFor(%v) = %v, want %v", c.want, got, c.st)
			}
		}
	}
	// node-level window rejection sheds with the wire overload status.
	if got := StatusFor(node.ErrOverloaded); got != StatusOverloaded {
		t.Fatalf("StatusFor(node.ErrOverloaded) = %v, want StatusOverloaded", got)
	}
	if got := StatusFor(errors.New("anything else")); got != StatusErr {
		t.Fatalf("StatusFor(generic) = %v, want StatusErr", got)
	}
}

// TestDecodeBorrowsInput pins the ownership contract: decoded slices
// alias the frame buffer, so overwriting the buffer changes them — the
// documented DecodeRecycled-style "copy what you keep" rule.
func TestDecodeBorrowsInput(t *testing.T) {
	frame := AppendRequest(nil, &Request{ID: 1, Verb: VPut, Key: []byte("aaaa"), Value: []byte("bbbb")})
	var buf []byte
	payload, err := ReadFrame(bytes.NewReader(frame), &buf)
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	if err := DecodeRequest(payload, &req); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 'X'
	}
	if string(req.Key) != "XXXX" {
		t.Fatalf("decode copied the key (%q); the codec contract is borrow-from-input", req.Key)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	var req Request
	if err := DecodeRequest(nil, &req); err == nil {
		t.Fatal("empty payload decoded")
	}
	if err := DecodeRequest(make([]byte, 25), &req); err == nil {
		t.Fatal("verb 0 decoded")
	}
	// Trailing junk after a well-formed body is a framing error.
	frame := AppendRequest(nil, &Request{ID: 1, Verb: VGet, Key: []byte("k")})
	payload := append(frame[4:], 0xEE)
	if err := DecodeRequest(payload, &req); err == nil {
		t.Fatal("trailing bytes decoded")
	}
	var resp Response
	if err := DecodeResponse(nil, &resp); err == nil {
		t.Fatal("empty response payload decoded")
	}
}

// FuzzRPCFrame mirrors msg's FuzzDecodeRecycled: seed with well-formed
// frames, let the fuzzer mangle them, and require that DecodeRequest /
// DecodeResponse either fail cleanly or round-trip losslessly through
// a re-encode — never panic, never mis-frame.
func FuzzRPCFrame(f *testing.F) {
	f.Add(AppendRequest(nil, &Request{ID: 7, Verb: VPut, Key: []byte("key"), Value: []byte("value"), Session: 42, MaxAge: 9}))
	f.Add(AppendRequest(nil, &Request{ID: 1, Verb: VAdmin, Value: []byte("STATUS")}))
	f.Add(AppendResponse(nil, &Response{ID: 3, Status: StatusOK, Value: []byte("v"), Watermark: 11}))
	f.Add(AppendResponse(nil, &Response{ID: 4, Status: StatusOverloaded}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var buf []byte
		payload, err := ReadFrame(bytes.NewReader(data), &buf)
		if err != nil {
			return // framing rejected: fine
		}
		var req Request
		if DecodeRequest(payload, &req) == nil {
			re := AppendRequest(nil, &req)
			var req2 Request
			p2, err := ReadFrame(bytes.NewReader(re), &buf)
			if err != nil || DecodeRequest(p2, &req2) != nil {
				t.Fatalf("re-encode of decoded request failed: %v", err)
			}
			if req2.ID != req.ID || req2.Verb != req.Verb || req2.Session != req.Session || req2.MaxAge != req.MaxAge ||
				!bytes.Equal(req2.Key, req.Key) || !bytes.Equal(req2.Value, req.Value) {
				t.Fatalf("request round-trip mismatch: %+v vs %+v", req, req2)
			}
		}
		var resp Response
		if DecodeResponse(payload, &resp) == nil {
			re := AppendResponse(nil, &resp)
			var resp2 Response
			p2, err := ReadFrame(bytes.NewReader(re), &buf)
			if err != nil || DecodeResponse(p2, &resp2) != nil {
				t.Fatalf("re-encode of decoded response failed: %v", err)
			}
			if resp2.ID != resp.ID || resp2.Status != resp.Status || resp2.Watermark != resp.Watermark ||
				!bytes.Equal(resp2.Value, resp.Value) {
				t.Fatalf("response round-trip mismatch: %+v vs %+v", resp, resp2)
			}
		}
	})
}

func BenchmarkRequestEncodeDecode(b *testing.B) {
	req := Request{ID: 1, Verb: VPut, Key: []byte("benchmark-key"), Value: bytes.Repeat([]byte("v"), 128)}
	frame := AppendRequest(nil, &req)
	scratch := make([]byte, 0, len(frame))
	var buf []byte = make([]byte, len(frame))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = AppendRequest(scratch[:0], &req)
		copy(buf, scratch[4:])
		var got Request
		if err := DecodeRequest(buf[:len(scratch)-4], &got); err != nil {
			b.Fatal(err)
		}
	}
}
