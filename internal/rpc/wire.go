// Package rpc is the production front door of the replicated store: a
// length-prefixed, multiplexed binary request/response protocol between
// clients and kvserver, plus the server that speaks it.
//
// One connection carries many requests concurrently: every request is
// tagged with a client-chosen 64-bit ID, responses return the tag, and
// the server completes requests out of order as they commit — so a
// client pipelines an entire window of commands over a single
// connection instead of paying one round trip per command like the
// legacy line protocol. The codec follows the replica wire's
// zero-allocation discipline (internal/msg): requests and responses
// encode into pooled buffers (msg.GetBuf / EncodeTo idiom) and decode
// by borrowing from the connection's read buffer, so the steady-state
// framing path allocates nothing.
//
// The server side adds admission control: per-connection and global
// in-flight budgets, mapped onto the node client API's MaxInFlight
// backpressure. A request past either budget is shed immediately with
// a typed wire-level overload status (StatusOverloaded → ErrOverloaded)
// instead of queueing without bound and collapsing latency for
// everyone; shed/accepted/in-flight counters are surfaced through
// kvserver's STATUS verb.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"clockrsm/internal/msg"
	"clockrsm/internal/node"
)

// Magic opens every front-door connection: the client writes these four
// bytes (little-endian on the wire) before its first frame, and the
// server drops connections that open with anything else. The value
// doubles as the protocol version — a framing change bumps the last
// byte.
const Magic uint32 = 0x31505243 // "CRP1" on the wire

// MaxFrame bounds a single front-door frame (request or response),
// mirroring the replica wire's cap so a corrupt length prefix can never
// drive a multi-GiB allocation.
const MaxFrame = msg.MaxFrame

// Verb discriminates the request kind.
type Verb uint8

// Request verbs. The read verbs mirror kvserver's consistency-tiered
// line verbs: GETL (linearizable), GETS (session-monotonic sequential,
// carrying the session token both ways), GETA (bounded staleness).
const (
	VPut Verb = iota + 1 // replicated write: key, value
	VGet                 // replicated read (the strongest, slowest read): key
	VDel                 // replicated delete: key
	VGetL                // linearizable local read: key
	VGetS                // sequential read: key + session token
	VGetA                // stale read: key + max age
	VAdmin               // operator verb: value carries one admin line (MEMBERS, STATUS, ...)
	maxVerb
)

var verbNames = map[Verb]string{
	VPut: "PUT", VGet: "GET", VDel: "DEL",
	VGetL: "GETL", VGetS: "GETS", VGetA: "GETA", VAdmin: "ADMIN",
}

// String names the verb.
func (v Verb) String() string {
	if n, ok := verbNames[v]; ok {
		return n
	}
	return fmt.Sprintf("Verb(%d)", uint8(v))
}

// valid reports whether v is a known request verb.
func (v Verb) valid() bool { return v >= VPut && v < maxVerb }

// Status is the response outcome. Every status except StatusOK maps to
// a typed error (see Status.Err), so a remote client makes the same
// resubmit-safety decisions a local node.Propose caller would.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota + 1
	// StatusErr is a generic server-side failure; the response value
	// carries the message. Resubmit safety is unknown.
	StatusErr
	// StatusBadRequest reports a malformed or unknown request. The
	// server kills the connection after sending it: framing state past a
	// bad frame is untrustworthy.
	StatusBadRequest
	// StatusOverloaded is the typed load-shedding status: the request
	// exceeded the per-connection or global in-flight budget and was
	// never admitted — it never reached the replication stack, so
	// resubmitting (after backing off) is always safe.
	StatusOverloaded
	// StatusNotInConfig mirrors node.ErrNotInConfig: the serving replica
	// is outside the current configuration and the command never
	// executed anywhere. Fail over and resubmit freely.
	StatusNotInConfig
	// StatusReconfigured mirrors node.ErrReconfigured: a reconfiguration
	// discarded the command before it reached a majority; it can never
	// execute in any epoch. Resubmit freely.
	StatusReconfigured
	// StatusTooStale mirrors node.ErrTooStale for bounded-staleness
	// reads.
	StatusTooStale
	// StatusStopped mirrors node.ErrStopped: the replica is shutting
	// down.
	StatusStopped
	// StatusTimeout reports that the server-side wait bound expired
	// before the command resolved. The command may still commit later —
	// resubmit safety is unknown for writes.
	StatusTimeout
	// StatusWrongGroup mirrors node.ErrWrongGroup: the command's key
	// migrated to another replication group (a live split) and the
	// command was fenced without executing. Resubmitting is always safe;
	// the server retries through the refreshed routing table itself, so
	// a client normally only sees this when a migration outlives the
	// server-side wait bound.
	StatusWrongGroup
	maxStatus
)

var statusNames = map[Status]string{
	StatusOK: "OK", StatusErr: "ERR", StatusBadRequest: "BADREQ",
	StatusOverloaded: "OVERLOADED", StatusNotInConfig: "NOTINCONFIG",
	StatusReconfigured: "RECONFIGURED", StatusTooStale: "TOOSTALE",
	StatusStopped: "STOPPED", StatusTimeout: "TIMEOUT",
	StatusWrongGroup: "WRONGGROUP",
}

// String names the status.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// valid reports whether s is a known response status.
func (s Status) valid() bool { return s >= StatusOK && s < maxStatus }

// Errors surfaced by the front door. ErrOverloaded is the wire-level
// overload error clients receive when the server shed their request;
// the remaining typed statuses map back to the node package's existing
// error contract (node.ErrNotInConfig, node.ErrReconfigured, ...).
var (
	ErrOverloaded = errors.New("rpc: server overloaded, request shed")
	ErrBadRequest = errors.New("rpc: bad request")
	ErrTimeout    = errors.New("rpc: server-side wait bound expired")
	// ErrBadMagic reports a connection that did not open with Magic.
	ErrBadMagic = errors.New("rpc: bad connection magic")
	// errTruncated / errFrame are codec-internal decode failures.
	errTruncated = errors.New("rpc: truncated frame")
	errFrame     = errors.New("rpc: oversized or malformed frame")
)

// Err converts a response status into the typed error contract, reusing
// the node package's sentinels so errors.Is works identically for local
// and remote callers. detail carries the server's message text for the
// generic statuses.
func (s Status) Err(detail []byte) error {
	switch s {
	case StatusOK:
		return nil
	case StatusOverloaded:
		return ErrOverloaded
	case StatusNotInConfig:
		return node.ErrNotInConfig
	case StatusReconfigured:
		return node.ErrReconfigured
	case StatusTooStale:
		return node.ErrTooStale
	case StatusStopped:
		return node.ErrStopped
	case StatusTimeout:
		return ErrTimeout
	case StatusWrongGroup:
		return node.ErrWrongGroup
	case StatusBadRequest:
		if len(detail) > 0 {
			return fmt.Errorf("%w: %s", ErrBadRequest, detail)
		}
		return ErrBadRequest
	default:
		if len(detail) > 0 {
			return fmt.Errorf("rpc: server error: %s", detail)
		}
		return fmt.Errorf("rpc: server error (%v)", s)
	}
}

// StatusFor maps a server-side error onto the wire status carrying it,
// the inverse of Status.Err.
func StatusFor(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, node.ErrNotInConfig):
		return StatusNotInConfig
	case errors.Is(err, node.ErrReconfigured):
		return StatusReconfigured
	case errors.Is(err, node.ErrTooStale):
		return StatusTooStale
	case errors.Is(err, node.ErrStopped):
		return StatusStopped
	case errors.Is(err, node.ErrOverloaded), errors.Is(err, ErrOverloaded):
		// A node-level window rejection (FailFast hosts) sheds with the
		// same wire status as the front door's own budgets: one overload
		// signal for clients, wherever the budget lives.
		return StatusOverloaded
	case errors.Is(err, node.ErrWrongGroup):
		return StatusWrongGroup
	case errors.Is(err, ErrTimeout):
		return StatusTimeout
	default:
		return StatusErr
	}
}

// Request is one decoded front-door request. After DecodeRequest, Key
// and Value borrow the input buffer: they are valid only until the
// caller reuses it (the same contract as msg.DecodeRecycled — copy what
// you keep).
type Request struct {
	ID   uint64
	Verb Verb
	Key  []byte
	// Value is the write payload (VPut), the admin line (VAdmin), and
	// unused otherwise. A nil Value round-trips as nil.
	Value []byte
	// Session is the sequential-read session token (VGetS): the newest
	// watermark a read through this session has observed. The response
	// returns the served watermark so the client advances the token —
	// session stickiness survives failover because the token, not the
	// connection, carries the monotonicity state.
	Session int64
	// MaxAge bounds a stale read (VGetA) in nanoseconds; ≤ 0 serves
	// unconditionally.
	MaxAge int64
}

// Response is one decoded front-door response.
type Response struct {
	ID     uint64
	Status Status
	// Value is the result (previous or read value; admin reply text for
	// VAdmin; error detail for the generic failure statuses). nil and
	// empty are distinguished on the wire.
	Value []byte
	// Watermark is the executed watermark a local read was served at
	// (zero for writes and replicated reads). GETS clients fold it into
	// their session token.
	Watermark int64
}

// nilLen is the length-prefix sentinel distinguishing a nil byte slice
// from an empty one ("key absent" vs "empty value" must survive the
// wire).
const nilLen = ^uint32(0)

func appendBytes(b, p []byte) []byte {
	if p == nil {
		return binary.LittleEndian.AppendUint32(b, nilLen)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func getBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, errTruncated
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if n == nilLen {
		return nil, b, nil
	}
	if n > MaxFrame || uint64(len(b)) < uint64(n) {
		return nil, nil, errTruncated
	}
	// Borrowed, not copied: valid until the caller reuses the buffer.
	return b[:n:n], b[n:], nil
}

// AppendRequest appends req to b as one length-prefixed frame
// ([4-byte length | verb | id | session | maxage | key | value]) and
// returns the extended slice. With a reused buffer it allocates
// nothing.
func AppendRequest(b []byte, req *Request) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length back-patched below
	b = append(b, byte(req.Verb))
	b = binary.LittleEndian.AppendUint64(b, req.ID)
	b = binary.LittleEndian.AppendUint64(b, uint64(req.Session))
	b = binary.LittleEndian.AppendUint64(b, uint64(req.MaxAge))
	b = appendBytes(b, req.Key)
	b = appendBytes(b, req.Value)
	binary.LittleEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}

// DecodeRequest parses one frame payload (without the length prefix)
// into req. Key and Value borrow payload.
func DecodeRequest(payload []byte, req *Request) error {
	if len(payload) < 1+8+8+8 {
		return errTruncated
	}
	req.Verb = Verb(payload[0])
	if !req.Verb.valid() {
		return fmt.Errorf("%w: unknown verb %d", errFrame, payload[0])
	}
	req.ID = binary.LittleEndian.Uint64(payload[1:])
	req.Session = int64(binary.LittleEndian.Uint64(payload[9:]))
	req.MaxAge = int64(binary.LittleEndian.Uint64(payload[17:]))
	rest := payload[25:]
	var err error
	if req.Key, rest, err = getBytes(rest); err != nil {
		return err
	}
	if req.Value, rest, err = getBytes(rest); err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", errFrame, len(rest))
	}
	return nil
}

// AppendResponse appends resp to b as one length-prefixed frame
// ([4-byte length | status | id | watermark | value]).
func AppendResponse(b []byte, resp *Response) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0)
	b = append(b, byte(resp.Status))
	b = binary.LittleEndian.AppendUint64(b, resp.ID)
	b = binary.LittleEndian.AppendUint64(b, uint64(resp.Watermark))
	b = appendBytes(b, resp.Value)
	binary.LittleEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}

// DecodeResponse parses one frame payload into resp. Value borrows
// payload.
func DecodeResponse(payload []byte, resp *Response) error {
	if len(payload) < 1+8+8 {
		return errTruncated
	}
	resp.Status = Status(payload[0])
	if !resp.Status.valid() {
		return fmt.Errorf("%w: unknown status %d", errFrame, payload[0])
	}
	resp.ID = binary.LittleEndian.Uint64(payload[1:])
	resp.Watermark = int64(binary.LittleEndian.Uint64(payload[9:]))
	rest := payload[17:]
	var err error
	if resp.Value, rest, err = getBytes(rest); err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", errFrame, len(rest))
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r into *buf (growing
// it as needed, retained across calls) and returns the payload slice,
// which aliases *buf and is valid until the next call with the same
// buffer. A length above MaxFrame fails with errFrame — the connection
// is corrupt and must be dropped.
func ReadFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d-byte frame", errFrame, n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return b, nil
}

// WriteMagic writes the connection-opening magic word.
func WriteMagic(w io.Writer) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], Magic)
	_, err := w.Write(b[:])
	return err
}

// ReadMagic validates the connection-opening magic word.
func ReadMagic(r io.Reader) error {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(b[:]) != Magic {
		return ErrBadMagic
	}
	return nil
}
