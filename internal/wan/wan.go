// Package wan models wide-area network latencies between replicas placed
// in different data centers. It carries the EC2 round-trip measurements
// from Table III of the paper and the latency aggregation helpers
// (median, max, two-hop) used by the analytical model in Section IV.
package wan

import (
	"fmt"
	"sort"
	"time"

	"clockrsm/internal/types"
)

// Matrix holds one-way message latencies between N replicas. d(i,i) is
// the intra-data-center one-way latency (typically ~0.3 ms). The paper's
// analytical model assumes symmetric latencies (Section IV) and Set
// writes both directions; SetOneWay records a per-direction entry for
// topologies where the assumption is deliberately broken — congested or
// faulty links whose forward and reverse delays differ, the only
// topology where read-path staleness is observable (PR 5) and a
// first-class input to the chaos matrix.
type Matrix struct {
	n int
	d [][]time.Duration
}

// NewMatrix returns an N×N matrix with every entry (including the
// diagonal) set to zero.
func NewMatrix(n int) *Matrix {
	d := make([][]time.Duration, n)
	for i := range d {
		d[i] = make([]time.Duration, n)
	}
	return &Matrix{n: n, d: d}
}

// Size returns the number of replicas covered by the matrix.
func (m *Matrix) Size() int { return m.n }

// Set records the symmetric one-way latency between replicas i and j.
func (m *Matrix) Set(i, j types.ReplicaID, d time.Duration) {
	m.d[i][j] = d
	m.d[j][i] = d
}

// SetOneWay records the latency of the single direction i→j, leaving
// j→i untouched. Mix freely with Set: lay down the symmetric baseline
// first, then override the directions that differ.
func (m *Matrix) SetOneWay(i, j types.ReplicaID, d time.Duration) {
	m.d[i][j] = d
}

// OneWay returns the one-way latency d(i,j). With only Set entries this
// is symmetric, matching the paper's Section IV assumption; SetOneWay
// entries make d(i,j) and d(j,i) independent.
func (m *Matrix) OneWay(i, j types.ReplicaID) time.Duration { return m.d[i][j] }

// Asymmetry returns d(i,j) − d(j,i), zero for symmetric links. Tests
// use it to assert a topology really is (or is not) direction-skewed.
func (m *Matrix) Asymmetry(i, j types.ReplicaID) time.Duration {
	return m.d[i][j] - m.d[j][i]
}

// RTT returns the round-trip latency between i and j.
func (m *Matrix) RTT(i, j types.ReplicaID) time.Duration { return 2 * m.d[i][j] }

// Row returns a copy of the one-way latencies from replica i to every
// replica (including itself).
func (m *Matrix) Row(i types.ReplicaID) []time.Duration {
	row := make([]time.Duration, m.n)
	copy(row, m.d[i])
	return row
}

// Median returns the median of the one-way latencies from i to all
// replicas in the group, self included — the quantity
// median({d(ri,rk) | ∀rk ∈ R}) from Section IV. For the odd group sizes
// used throughout the paper this is the latency to the majority-th
// closest replica.
func (m *Matrix) Median(i types.ReplicaID) time.Duration {
	return median(m.Row(i))
}

// Max returns max({d(ri,rk) | ∀rk ∈ R}): the one-way latency from i to
// the farthest replica.
func (m *Matrix) Max(i types.ReplicaID) time.Duration {
	var mx time.Duration
	for _, v := range m.d[i] {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// TwoHopMedian returns median({d(rj,rk) + d(rk,ri) | ∀rk ∈ R}): the
// median latency of the two-hop paths from j to i via every replica k.
// This is the building block of the prefix-replication bound lc3 and of
// the Paxos-bcast non-leader latency (Table II).
func (m *Matrix) TwoHopMedian(j, i types.ReplicaID) time.Duration {
	paths := make([]time.Duration, m.n)
	for k := 0; k < m.n; k++ {
		paths[k] = m.d[j][k] + m.d[k][i]
	}
	return median(paths)
}

// MaxTwoHopMedian returns
// max({median({d(rj,rk)+d(rk,ri) | ∀rk ∈ R}) | ∀rj ∈ R}), the worst-case
// prefix replication latency lc3^worst observed at replica i.
func (m *Matrix) MaxTwoHopMedian(i types.ReplicaID) time.Duration {
	var mx time.Duration
	for j := 0; j < m.n; j++ {
		if v := m.TwoHopMedian(types.ReplicaID(j), i); v > mx {
			mx = v
		}
	}
	return mx
}

// SubMatrix projects the matrix onto the given subset of replicas. The
// returned matrix re-indexes replicas densely in the order given.
func (m *Matrix) SubMatrix(ids []types.ReplicaID) *Matrix {
	sub := NewMatrix(len(ids))
	for a, i := range ids {
		for b, j := range ids {
			sub.d[a][b] = m.d[i][j]
		}
	}
	return sub
}

// median returns the lower median (the ceil(n/2)-th smallest value, i.e.
// element at index floor((n-1)/2) after sorting). For odd n this is the
// true median; for even n it is the value a majority quorum must reach.
func median(vals []time.Duration) time.Duration {
	s := make([]time.Duration, len(vals))
	copy(s, vals)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// Site names the EC2 regions used in the paper's evaluation.
type Site int

// EC2 sites from Table III.
const (
	CA Site = iota // California
	VA             // Virginia
	IR             // Ireland
	JP             // Japan (Tokyo)
	SG             // Singapore
	AU             // Australia
	BR             // Brazil (São Paulo)
	numSites
)

var siteNames = [numSites]string{"CA", "VA", "IR", "JP", "SG", "AU", "BR"}

// String returns the two-letter site code.
func (s Site) String() string {
	if s < 0 || s >= numSites {
		return fmt.Sprintf("Site(%d)", int(s))
	}
	return siteNames[s]
}

// ParseSite resolves a two-letter site code; it returns an error for
// unknown codes.
func ParseSite(name string) (Site, error) {
	for i, n := range siteNames {
		if n == name {
			return Site(i), nil
		}
	}
	return 0, fmt.Errorf("unknown EC2 site %q", name)
}

// AllSites lists the seven EC2 sites of Table III in paper order.
func AllSites() []Site {
	sites := make([]Site, numSites)
	for i := range sites {
		sites[i] = Site(i)
	}
	return sites
}

// ec2RTTms is the upper triangle of Table III: average round-trip
// latencies in milliseconds between EC2 data centers.
var ec2RTTms = map[[2]Site]int{
	{CA, VA}: 83, {CA, IR}: 170, {CA, JP}: 125, {CA, SG}: 171, {CA, AU}: 187, {CA, BR}: 212,
	{VA, IR}: 101, {VA, JP}: 215, {VA, SG}: 254, {VA, AU}: 220, {VA, BR}: 137,
	{IR, JP}: 280, {IR, SG}: 216, {IR, AU}: 305, {IR, BR}: 216,
	{JP, SG}: 77, {JP, AU}: 129, {JP, BR}: 368,
	{SG, AU}: 188, {SG, BR}: 369,
	{AU, BR}: 349,
}

// IntraDCRTT is the typical round trip within one EC2 data center
// (Section VI-B: "The typical RTT in an EC2 data center is about 0.6ms").
const IntraDCRTT = 600 * time.Microsecond

// EC2RTT returns the measured round-trip latency between two sites from
// Table III; for a==b it returns IntraDCRTT.
func EC2RTT(a, b Site) time.Duration {
	if a == b {
		return IntraDCRTT
	}
	if a > b {
		a, b = b, a
	}
	return time.Duration(ec2RTTms[[2]Site{a, b}]) * time.Millisecond
}

// EC2Matrix builds a one-way latency matrix for replicas placed at the
// given sites (replica k at sites[k]). One-way latency is RTT/2, matching
// the symmetric-latency assumption of Section IV.
func EC2Matrix(sites []Site) *Matrix {
	m := NewMatrix(len(sites))
	for i := range sites {
		for j := range sites {
			m.d[i][j] = EC2RTT(sites[i], sites[j]) / 2
		}
	}
	return m
}

// Uniform builds an n-replica matrix with identical one-way latency d
// between distinct replicas and zero to self. Useful for tests.
func Uniform(n int, d time.Duration) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.d[i][j] = d
			}
		}
	}
	return m
}
