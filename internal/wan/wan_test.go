package wan

import (
	"testing"
	"testing/quick"
	"time"

	"clockrsm/internal/types"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestMatrixSetSymmetric(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 2, ms(50))
	if m.OneWay(0, 2) != ms(50) || m.OneWay(2, 0) != ms(50) {
		t.Errorf("Set not symmetric: %v / %v", m.OneWay(0, 2), m.OneWay(2, 0))
	}
	if m.RTT(0, 2) != ms(100) {
		t.Errorf("RTT = %v, want 100ms", m.RTT(0, 2))
	}
}

func TestMedianIncludesSelf(t *testing.T) {
	// Replica 0 with distances {0, 10, 20, 30, 40}: median is 20ms
	// (3rd smallest of 5 = latency to reach a majority of 3).
	m := NewMatrix(5)
	for j := 1; j < 5; j++ {
		m.Set(0, types.ReplicaID(j), ms(10*j))
	}
	if got := m.Median(0); got != ms(20) {
		t.Errorf("Median = %v, want 20ms", got)
	}
	if got := m.Max(0); got != ms(40) {
		t.Errorf("Max = %v, want 40ms", got)
	}
}

func TestMedianThreeReplicas(t *testing.T) {
	// {0, a, b} -> median is the smaller of a,b: one round trip to the
	// nearest replica reaches a majority with 3 replicas.
	m := NewMatrix(3)
	m.Set(0, 1, ms(40))
	m.Set(0, 2, ms(85))
	if got := m.Median(0); got != ms(40) {
		t.Errorf("Median(3 replicas) = %v, want 40ms", got)
	}
}

func TestTwoHopMedian(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, ms(10))
	m.Set(0, 2, ms(20))
	m.Set(1, 2, ms(25))
	// paths j=1 -> i=0 via k: k=0: 10+0=10, k=1: 0+10=10, k=2: 25+20=45.
	// sorted {10,10,45}, median 10.
	if got := m.TwoHopMedian(1, 0); got != ms(10) {
		t.Errorf("TwoHopMedian = %v, want 10ms", got)
	}
}

func TestMaxTwoHopMedianDominatesMedian(t *testing.T) {
	m := EC2Matrix([]Site{CA, VA, IR, JP, SG})
	for i := 0; i < m.Size(); i++ {
		r := types.ReplicaID(i)
		// lc3^worst includes j == i whose two-hop median is 2*median-ish;
		// it must be at least the direct round trip to a majority.
		if m.MaxTwoHopMedian(r) < m.Median(r) {
			t.Errorf("replica %v: MaxTwoHopMedian %v < Median %v", r, m.MaxTwoHopMedian(r), m.Median(r))
		}
	}
}

func TestSubMatrix(t *testing.T) {
	m := EC2Matrix(AllSites())
	sub := m.SubMatrix([]types.ReplicaID{0, 2, 4}) // CA, IR, SG
	if sub.Size() != 3 {
		t.Fatalf("SubMatrix size = %d", sub.Size())
	}
	if sub.OneWay(0, 1) != ms(170)/2 {
		t.Errorf("CA-IR one-way = %v, want 85ms", sub.OneWay(0, 1))
	}
	if sub.OneWay(1, 2) != ms(216)/2 {
		t.Errorf("IR-SG one-way = %v, want 108ms", sub.OneWay(1, 2))
	}
}

func TestEC2RTTTable3(t *testing.T) {
	// Spot-check entries straight out of Table III.
	tests := []struct {
		a, b Site
		ms   int
	}{
		{CA, VA, 83}, {VA, CA, 83},
		{CA, BR, 212},
		{VA, SG, 254},
		{IR, JP, 280},
		{JP, SG, 77},
		{SG, BR, 369},
		{AU, BR, 349},
	}
	for _, tt := range tests {
		if got := EC2RTT(tt.a, tt.b); got != ms(tt.ms) {
			t.Errorf("EC2RTT(%v,%v) = %v, want %dms", tt.a, tt.b, got, tt.ms)
		}
	}
	if EC2RTT(JP, JP) != IntraDCRTT {
		t.Errorf("intra-DC RTT = %v", EC2RTT(JP, JP))
	}
}

func TestEC2MatrixOneWayIsHalfRTT(t *testing.T) {
	m := EC2Matrix([]Site{CA, VA, IR})
	if got := m.OneWay(0, 1); got != ms(83)/2 {
		t.Errorf("one-way CA-VA = %v, want 41.5ms", got)
	}
	if got := m.OneWay(0, 0); got != IntraDCRTT/2 {
		t.Errorf("one-way self = %v, want 0.3ms", got)
	}
}

func TestEC2MatrixComplete(t *testing.T) {
	m := EC2Matrix(AllSites())
	for i := 0; i < m.Size(); i++ {
		for j := 0; j < m.Size(); j++ {
			if i != j && m.OneWay(types.ReplicaID(i), types.ReplicaID(j)) <= 0 {
				t.Errorf("missing latency %v->%v", Site(i), Site(j))
			}
		}
	}
}

func TestParseSite(t *testing.T) {
	for _, s := range AllSites() {
		got, err := ParseSite(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSite(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSite("XX"); err == nil {
		t.Error("ParseSite accepted unknown site")
	}
}

func TestUniform(t *testing.T) {
	m := Uniform(4, ms(10))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := ms(10)
			if i == j {
				want = 0
			}
			if got := m.OneWay(types.ReplicaID(i), types.ReplicaID(j)); got != want {
				t.Errorf("Uniform(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSetOneWayAsymmetric(t *testing.T) {
	m := Uniform(3, ms(10)) // symmetric baseline
	if got := m.Asymmetry(0, 1); got != 0 {
		t.Fatalf("baseline asymmetry = %v, want 0", got)
	}
	m.SetOneWay(0, 1, ms(25)) // congest only the forward direction
	if m.OneWay(0, 1) != ms(25) || m.OneWay(1, 0) != ms(10) {
		t.Errorf("one-way override leaked: %v / %v", m.OneWay(0, 1), m.OneWay(1, 0))
	}
	if got := m.Asymmetry(0, 1); got != ms(15) {
		t.Errorf("Asymmetry(0,1) = %v, want 15ms", got)
	}
	if got := m.Asymmetry(1, 0); got != -ms(15) {
		t.Errorf("Asymmetry(1,0) = %v, want -15ms", got)
	}
	// Links not overridden stay symmetric, and a later Set re-symmetrizes.
	if got := m.Asymmetry(1, 2); got != 0 {
		t.Errorf("untouched link asymmetry = %v, want 0", got)
	}
	m.Set(0, 1, ms(12))
	if got := m.Asymmetry(0, 1); got != 0 {
		t.Errorf("Set did not re-symmetrize: asymmetry %v", got)
	}
}

func TestSubMatrixKeepsAsymmetry(t *testing.T) {
	m := Uniform(4, ms(10))
	m.SetOneWay(1, 3, ms(40))
	sub := m.SubMatrix([]types.ReplicaID{1, 3})
	if got := sub.Asymmetry(0, 1); got != ms(30) {
		t.Errorf("projected asymmetry = %v, want 30ms", got)
	}
}

// Median is always between min and max of the row; Max dominates Median.
func TestAggregateBoundsProperty(t *testing.T) {
	f := func(raw [5][5]uint16) bool {
		m := NewMatrix(5)
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				m.Set(types.ReplicaID(i), types.ReplicaID(j), time.Duration(raw[i][j]%500)*time.Millisecond)
			}
		}
		for i := 0; i < 5; i++ {
			r := types.ReplicaID(i)
			if m.Median(r) > m.Max(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSiteString(t *testing.T) {
	if CA.String() != "CA" || BR.String() != "BR" {
		t.Error("site names wrong")
	}
	if Site(99).String() != "Site(99)" {
		t.Error("out-of-range site string wrong")
	}
}
