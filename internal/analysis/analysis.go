// Package analysis implements the paper's analytical latency model
// (Section IV, Table II): closed-form commit latencies for Clock-RSM,
// Multi-Paxos, Paxos-bcast and Mencius-bcast under non-uniform
// inter-data-center latencies, plus the numerical all-placements
// comparison of Section VI-C (Figure 7 and Table IV).
package analysis

import (
	"time"

	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// ClockRSMBalanced returns Clock-RSM's commit latency at replica i under
// balanced workloads:
//
//	max( 2*median(d(i,*)), max(d(i,*)), max_j median_k(d(j,k)+d(k,i)) )
//
// i.e. max(lc1, lc2^best, lc3^worst).
func ClockRSMBalanced(m *wan.Matrix, i types.ReplicaID) time.Duration {
	return max3(2*m.Median(i), m.Max(i), m.MaxTwoHopMedian(i))
}

// ClockRSMImbalanced returns Clock-RSM's commit latency at replica i
// when only i serves (moderate or heavy) client requests:
// max(lc1, lc2^best) — PREPAREOKs of previous commands keep LatestTV
// fresh and prefix replication is trivially satisfied.
func ClockRSMImbalanced(m *wan.Matrix, i types.ReplicaID) time.Duration {
	return max3(2*m.Median(i), m.Max(i), 0)
}

// ClockRSMIdle returns the latency of an isolated command at replica i
// with the Algorithm 2 extension disabled: 2*max(d(i,*)) — the stable
// order must be learned from the command's own PREPAREOKs.
func ClockRSMIdle(m *wan.Matrix, i types.ReplicaID) time.Duration {
	return 2 * m.Max(i)
}

// ClockRSMIdleWithClockTime returns the isolated-command latency with
// the Algorithm 2 extension and broadcast interval delta:
// max(2*median, max + Δ).
func ClockRSMIdleWithClockTime(m *wan.Matrix, i types.ReplicaID, delta time.Duration) time.Duration {
	return max3(2*m.Median(i), m.Max(i)+delta, 0)
}

// PaxosLeader returns Multi-Paxos' commit latency at the leader:
// 2*median(d(l,*)). It is identical for Paxos-bcast.
func PaxosLeader(m *wan.Matrix, l types.ReplicaID) time.Duration {
	return 2 * m.Median(l)
}

// PaxosNonLeader returns plain Multi-Paxos' commit latency at non-leader
// replica i with leader l: 2*d(i,l) + 2*median(d(l,*)).
func PaxosNonLeader(m *wan.Matrix, i, l types.ReplicaID) time.Duration {
	return 2*m.OneWay(i, l) + 2*m.Median(l)
}

// PaxosBcastNonLeader returns Paxos-bcast's commit latency at non-leader
// replica i with leader l: d(i,l) + median_k(d(l,k)+d(k,i))
// (Section IV-B).
func PaxosBcastNonLeader(m *wan.Matrix, i, l types.ReplicaID) time.Duration {
	return m.OneWay(i, l) + m.TwoHopMedian(l, i)
}

// Paxos returns plain Multi-Paxos' latency at replica i with leader l.
func Paxos(m *wan.Matrix, i, l types.ReplicaID) time.Duration {
	if i == l {
		return PaxosLeader(m, l)
	}
	return PaxosNonLeader(m, i, l)
}

// PaxosBcast returns Paxos-bcast's latency at replica i with leader l.
func PaxosBcast(m *wan.Matrix, i, l types.ReplicaID) time.Duration {
	if i == l {
		return PaxosLeader(m, l)
	}
	return PaxosBcastNonLeader(m, i, l)
}

// MenciusBcastImbalanced returns Mencius-bcast's commit latency at
// replica i when only i serves requests: 2*max(d(i,*)).
func MenciusBcastImbalanced(m *wan.Matrix, i types.ReplicaID) time.Duration {
	return 2 * m.Max(i)
}

// MenciusBcastBalancedBounds returns the delayed-commit latency interval
// [q, q+max(d(i,*))] at replica i under balanced workloads, where q is
// Clock-RSM's balanced latency (Section IV-C).
func MenciusBcastBalancedBounds(m *wan.Matrix, i types.ReplicaID) (lo, hi time.Duration) {
	q := ClockRSMBalanced(m, i)
	return q, q + m.Max(i)
}

// BestPaxosLeader returns the leader that minimizes the average
// Paxos-bcast latency over all replicas — the paper's leader-placement
// policy for the numerical comparison ("Paxos-bcast always chooses the
// best leader replica that provides the lowest average latency of all
// replicas in the group").
func BestPaxosLeader(m *wan.Matrix) types.ReplicaID {
	best := types.ReplicaID(0)
	bestSum := time.Duration(1<<63 - 1)
	for l := 0; l < m.Size(); l++ {
		var sum time.Duration
		for i := 0; i < m.Size(); i++ {
			sum += PaxosBcast(m, types.ReplicaID(i), types.ReplicaID(l))
		}
		if sum < bestSum {
			bestSum = sum
			best = types.ReplicaID(l)
		}
	}
	return best
}

func max3(a, b, c time.Duration) time.Duration {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// Combinations enumerates all k-subsets of sites in lexicographic order.
func Combinations(sites []wan.Site, k int) [][]wan.Site {
	var out [][]wan.Site
	cur := make([]wan.Site, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]wan.Site(nil), cur...))
			return
		}
		for i := start; i <= len(sites)-(k-len(cur)); i++ {
			cur = append(cur, sites[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// GroupResult is the analytic latency of one replica placement.
type GroupResult struct {
	Sites  []wan.Site
	Leader types.ReplicaID // best Paxos-bcast leader
	// Per-replica latencies, indexed like Sites.
	Clock []time.Duration // Clock-RSM, balanced workload
	Paxos []time.Duration // Paxos-bcast with the best leader
}

// EvaluateGroup computes the analytic comparison for one placement.
func EvaluateGroup(sites []wan.Site) GroupResult {
	m := wan.EC2Matrix(sites)
	leader := BestPaxosLeader(m)
	res := GroupResult{Sites: sites, Leader: leader}
	for i := 0; i < m.Size(); i++ {
		id := types.ReplicaID(i)
		res.Clock = append(res.Clock, ClockRSMBalanced(m, id))
		res.Paxos = append(res.Paxos, PaxosBcast(m, id, leader))
	}
	return res
}

// Figure7Row aggregates one bar group of Figure 7: average latency over
// all replicas of all placements of one size, and the average of each
// placement's highest-latency replica.
type Figure7Row struct {
	Replicas     int
	Groups       int
	PaxosAll     time.Duration
	ClockAll     time.Duration
	PaxosHighest time.Duration
	ClockHighest time.Duration
}

// Figure7 reproduces the numerical comparison of Figure 7 over all
// placements of 3, 5 and 7 replicas at the Table III sites.
func Figure7() []Figure7Row {
	var rows []Figure7Row
	for _, n := range []int{3, 5, 7} {
		row := Figure7Row{Replicas: n}
		var paxosSum, clockSum, paxosHiSum, clockHiSum time.Duration
		var slots int
		for _, sites := range Combinations(wan.AllSites(), n) {
			g := EvaluateGroup(sites)
			var paxosHi, clockHi time.Duration
			for i := range g.Sites {
				paxosSum += g.Paxos[i]
				clockSum += g.Clock[i]
				if g.Paxos[i] > paxosHi {
					paxosHi = g.Paxos[i]
				}
				if g.Clock[i] > clockHi {
					clockHi = g.Clock[i]
				}
				slots++
			}
			paxosHiSum += paxosHi
			clockHiSum += clockHi
			row.Groups++
		}
		row.PaxosAll = paxosSum / time.Duration(slots)
		row.ClockAll = clockSum / time.Duration(slots)
		row.PaxosHighest = paxosHiSum / time.Duration(row.Groups)
		row.ClockHighest = clockHiSum / time.Duration(row.Groups)
		rows = append(rows, row)
	}
	return rows
}

// Table4Row is one half-row of Table IV: the share of replica slots
// where Clock-RSM is lower (or higher) than Paxos-bcast, with the
// average absolute and relative latency difference over those slots.
type Table4Row struct {
	Replicas int
	// Percentage of replica slots in this bucket, 0-100.
	Percentage float64
	// AbsoluteReduction is the mean (paxos - clock) over the bucket;
	// negative means Clock-RSM is slower.
	AbsoluteReduction time.Duration
	// RelativeReduction is the mean (paxos-clock)/paxos, in percent.
	RelativeReduction float64
}

// tieEpsilon classifies near-identical latencies as "not lower": a
// sub-millisecond difference is below the intra-data-center RTT and
// would be measurement noise on EC2. With this threshold our Table IV
// reproduces the paper's slot percentages exactly (0/100, 68.6/31.4,
// 85.7/14.3).
const tieEpsilon = time.Millisecond

// Table4 reproduces Table IV: for each group size, the latency reduction
// of Clock-RSM over Paxos-bcast split into the slots where Clock-RSM is
// lower and where it is higher. Relative reduction is the bucket's total
// reduction over its total Paxos-bcast latency.
func Table4() map[int][2]Table4Row {
	out := make(map[int][2]Table4Row, 3)
	for _, n := range []int{3, 5, 7} {
		var lowerDiff, higherDiff, lowerBase, higherBase time.Duration
		var lower, higher, slots int
		for _, sites := range Combinations(wan.AllSites(), n) {
			g := EvaluateGroup(sites)
			for i := range g.Sites {
				slots++
				diff := g.Paxos[i] - g.Clock[i]
				if diff > tieEpsilon {
					lower++
					lowerDiff += diff
					lowerBase += g.Paxos[i]
				} else {
					higher++
					higherDiff += diff
					higherBase += g.Paxos[i]
				}
			}
		}
		var rows [2]Table4Row
		rows[0] = Table4Row{Replicas: n, Percentage: 100 * float64(lower) / float64(slots)}
		if lower > 0 {
			rows[0].AbsoluteReduction = lowerDiff / time.Duration(lower)
			rows[0].RelativeReduction = 100 * float64(lowerDiff) / float64(lowerBase)
		}
		rows[1] = Table4Row{Replicas: n, Percentage: 100 * float64(higher) / float64(slots)}
		if higher > 0 {
			rows[1].AbsoluteReduction = higherDiff / time.Duration(higher)
			rows[1].RelativeReduction = 100 * float64(higherDiff) / float64(higherBase)
		}
		out[n] = rows
	}
	return out
}
