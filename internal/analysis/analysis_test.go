package analysis

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func approxMs(t *testing.T, name string, got time.Duration, wantMs, tolMs float64) {
	t.Helper()
	g := float64(got) / float64(time.Millisecond)
	if math.Abs(g-wantMs) > tolMs {
		t.Errorf("%s = %.1fms, paper reports %.1fms (tol %.1f)", name, g, wantMs, tolMs)
	}
}

func TestPaxosFormulasOnKnownMatrix(t *testing.T) {
	// Distances from leader r0: {0,10,20,30,40}; others 25ms.
	m := wan.NewMatrix(5)
	for j := 1; j < 5; j++ {
		m.Set(0, types.ReplicaID(j), ms(10*j))
		for k := j + 1; k < 5; k++ {
			m.Set(types.ReplicaID(j), types.ReplicaID(k), ms(25))
		}
	}
	if got := PaxosLeader(m, 0); got != ms(40) {
		t.Errorf("PaxosLeader = %v, want 40ms", got)
	}
	if got := PaxosNonLeader(m, 4, 0); got != ms(120) {
		t.Errorf("PaxosNonLeader = %v, want 120ms", got)
	}
	if got := PaxosBcastNonLeader(m, 4, 0); got != ms(80) {
		t.Errorf("PaxosBcastNonLeader = %v, want 80ms", got)
	}
	if got := Paxos(m, 0, 0); got != PaxosLeader(m, 0) {
		t.Errorf("Paxos at leader = %v", got)
	}
	if got := PaxosBcast(m, 0, 0); got != PaxosLeader(m, 0) {
		t.Errorf("PaxosBcast at leader = %v", got)
	}
	if got := MenciusBcastImbalanced(m, 0); got != ms(80) {
		t.Errorf("MenciusBcastImbalanced = %v, want 80ms", got)
	}
	if got := ClockRSMIdle(m, 0); got != ms(80) {
		t.Errorf("ClockRSMIdle = %v, want 80ms", got)
	}
	if got := ClockRSMIdleWithClockTime(m, 0, ms(5)); got != ms(45) {
		t.Errorf("ClockRSMIdleWithClockTime = %v, want 45ms", got)
	}
}

func TestClockRSMDominanceProperties(t *testing.T) {
	// On random symmetric matrices: balanced ≥ imbalanced ≥ half of
	// idle; Mencius imbalanced ≥ Clock-RSM imbalanced; Paxos ≥
	// Paxos-bcast at non-leaders.
	f := func(raw [7][7]uint16, li, ii uint8) bool {
		n := 5
		m := wan.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(types.ReplicaID(i), types.ReplicaID(j),
					time.Duration(raw[i][j]%300+1)*time.Millisecond)
			}
		}
		l := types.ReplicaID(int(li) % n)
		i := types.ReplicaID(int(ii) % n)
		if ClockRSMBalanced(m, i) < ClockRSMImbalanced(m, i) {
			return false
		}
		if MenciusBcastImbalanced(m, i) < ClockRSMImbalanced(m, i) {
			return false
		}
		_ = l
		lo, hi := MenciusBcastBalancedBounds(m, i)
		return lo <= hi && lo == ClockRSMBalanced(m, i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCombinations(t *testing.T) {
	sites := wan.AllSites()
	if got := len(Combinations(sites, 3)); got != 35 {
		t.Errorf("C(7,3) = %d, want 35", got)
	}
	if got := len(Combinations(sites, 5)); got != 21 {
		t.Errorf("C(7,5) = %d, want 21", got)
	}
	if got := len(Combinations(sites, 7)); got != 1 {
		t.Errorf("C(7,7) = %d, want 1", got)
	}
	for _, c := range Combinations(sites, 3) {
		if len(c) != 3 {
			t.Fatalf("combination size %d", len(c))
		}
	}
}

func TestBestLeaderFiveSites(t *testing.T) {
	// Section VI-B: "Designating the replica at VA as the leader gives
	// the best overall latency for Paxos" with {CA,VA,IR,JP,SG}; for
	// Paxos-bcast alone, CA edges out VA on the Table III matrix (the
	// paper shares one leader across both protocols per experiment).
	sites := []wan.Site{wan.CA, wan.VA, wan.IR, wan.JP, wan.SG}
	m := wan.EC2Matrix(sites)
	bestPlain, bestSum := types.ReplicaID(0), time.Duration(1<<62)
	for l := 0; l < 5; l++ {
		var sum time.Duration
		for i := 0; i < 5; i++ {
			sum += Paxos(m, types.ReplicaID(i), types.ReplicaID(l))
		}
		if sum < bestSum {
			bestSum, bestPlain = sum, types.ReplicaID(l)
		}
	}
	if sites[bestPlain] != wan.VA {
		t.Errorf("best plain-Paxos leader = %v, paper says VA", sites[bestPlain])
	}
	if got := BestPaxosLeader(m); sites[got] != wan.CA {
		t.Errorf("best Paxos-bcast leader = %v, expected CA on Table III data", sites[got])
	}
}

func TestPaxosBcastRarelySlowerThanPaxos(t *testing.T) {
	// Broadcasting 2b saves the commit notification, so Paxos-bcast
	// should not exceed plain Paxos by more than triangle-inequality
	// noise in the measured RTT matrix (a few slots violate it by ≤5ms).
	for _, n := range []int{3, 5, 7} {
		for _, sites := range Combinations(wan.AllSites(), n) {
			m := wan.EC2Matrix(sites)
			for l := 0; l < n; l++ {
				for i := 0; i < n; i++ {
					p := Paxos(m, types.ReplicaID(i), types.ReplicaID(l))
					b := PaxosBcast(m, types.ReplicaID(i), types.ReplicaID(l))
					if b > p+ms(5) {
						t.Errorf("sites=%v leader=%v i=%v: bcast %v > paxos %v + 5ms", sites, sites[l], sites[i], b, p)
					}
				}
			}
		}
	}
}

func TestBestPaxosLeaderThreeSites(t *testing.T) {
	// For {CA,VA,IR} the paper designates VA (smallest weighted degree).
	sites := []wan.Site{wan.CA, wan.VA, wan.IR}
	m := wan.EC2Matrix(sites)
	if got := BestPaxosLeader(m); sites[got] != wan.VA {
		t.Errorf("best leader = %v, paper says VA", sites[got])
	}
}

func TestFigure7MatchesPaperShape(t *testing.T) {
	rows := Figure7()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		switch r.Replicas {
		case 3:
			// Paper: with three replicas Paxos-bcast is slightly better.
			if r.ClockAll < r.PaxosAll {
				t.Errorf("3 replicas: Clock-RSM all-avg %v beat Paxos-bcast %v; paper says slightly worse", r.ClockAll, r.PaxosAll)
			}
			diff := float64(r.ClockAll-r.PaxosAll) / float64(r.PaxosAll)
			if diff > 0.10 {
				t.Errorf("3 replicas: Clock-RSM worse by %.1f%%, paper says ≈6%%", 100*diff)
			}
		case 5, 7:
			// Paper: Clock-RSM provides lower latency for both.
			if r.ClockAll >= r.PaxosAll {
				t.Errorf("%d replicas: Clock-RSM all-avg %v not lower than Paxos-bcast %v", r.Replicas, r.ClockAll, r.PaxosAll)
			}
			if r.ClockHighest >= r.PaxosHighest {
				t.Errorf("%d replicas: Clock-RSM highest-avg %v not lower than Paxos-bcast %v", r.Replicas, r.ClockHighest, r.PaxosHighest)
			}
			// "Its improvement for the average highest latency is greater."
			impAll := float64(r.PaxosAll-r.ClockAll) / float64(r.PaxosAll)
			impHi := float64(r.PaxosHighest-r.ClockHighest) / float64(r.PaxosHighest)
			if impHi <= impAll {
				t.Errorf("%d replicas: highest-latency improvement %.1f%% not greater than all-replica %.1f%%", r.Replicas, 100*impHi, 100*impAll)
			}
		}
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	table := Table4()

	// 3 replicas: paper reports 0.0% lower / 100.0% higher with
	// -9.9ms (-6.2%).
	r3 := table[3]
	if r3[0].Percentage != 0 {
		t.Errorf("3 replicas lower%% = %.1f, paper says 0.0", r3[0].Percentage)
	}
	approxMs(t, "3-replica higher abs", r3[1].AbsoluteReduction, -9.9, 0.5)
	if math.Abs(r3[1].RelativeReduction-(-6.2)) > 0.5 {
		t.Errorf("3-replica higher rel = %.1f%%, paper says -6.2%%", r3[1].RelativeReduction)
	}

	// 5 replicas: 68.6% / 31.4%; +31.9ms (15.2%) and -30.6ms (-14.6%).
	r5 := table[5]
	if math.Abs(r5[0].Percentage-68.6) > 0.1 {
		t.Errorf("5 replicas lower%% = %.1f, paper says 68.6", r5[0].Percentage)
	}
	approxMs(t, "5-replica lower abs", r5[0].AbsoluteReduction, 31.9, 3)
	approxMs(t, "5-replica higher abs", r5[1].AbsoluteReduction, -30.6, 3)

	// 7 replicas: 85.7% / 14.3%; +50.2ms (21.5%) and -39.4ms (-16.9%).
	r7 := table[7]
	if math.Abs(r7[0].Percentage-85.7) > 0.1 {
		t.Errorf("7 replicas lower%% = %.1f, paper says 85.7", r7[0].Percentage)
	}
	approxMs(t, "7-replica lower abs", r7[0].AbsoluteReduction, 50.2, 3)
	approxMs(t, "7-replica higher abs", r7[1].AbsoluteReduction, -39.4, 1)

	// Buckets partition the slots.
	for _, n := range []int{3, 5, 7} {
		if got := table[n][0].Percentage + table[n][1].Percentage; math.Abs(got-100) > 1e-9 {
			t.Errorf("%d replicas: buckets sum to %.3f%%", n, got)
		}
	}
}

func TestEvaluateGroupConsistency(t *testing.T) {
	g := EvaluateGroup([]wan.Site{wan.CA, wan.VA, wan.IR, wan.JP, wan.SG})
	if len(g.Clock) != 5 || len(g.Paxos) != 5 {
		t.Fatalf("lengths = %d/%d", len(g.Clock), len(g.Paxos))
	}
	m := wan.EC2Matrix(g.Sites)
	if g.Paxos[g.Leader] != PaxosLeader(m, g.Leader) {
		t.Error("leader latency mismatch")
	}
	for i := range g.Clock {
		if g.Clock[i] <= 0 || g.Paxos[i] <= 0 {
			t.Errorf("non-positive latency at %d", i)
		}
	}
}

// TestTable2GoldenFiveSites pins the analytic latencies for the paper's
// five-replica placement, leader CA (the values cmd/rsmbench -exp
// table2 prints). Derived from Table III; any regression in the model
// or the dataset breaks these.
func TestTable2GoldenFiveSites(t *testing.T) {
	sites := []wan.Site{wan.CA, wan.VA, wan.IR, wan.JP, wan.SG}
	m := wan.EC2Matrix(sites)
	leader := types.ReplicaID(0) // CA
	golden := []struct {
		site                                    wan.Site
		paxos, pbcast, mencius, clockIm, clockB float64 // ms
	}{
		{wan.CA, 125.0, 125.0, 171.0, 125.0, 135.5},
		{wan.VA, 208.0, 177.0, 254.0, 127.0, 135.5},
		{wan.IR, 295.0, 177.0, 280.0, 170.0, 170.5},
		{wan.JP, 250.0, 186.5, 280.0, 140.0, 148.0},
		{wan.SG, 296.0, 186.5, 254.0, 171.0, 171.0},
	}
	for i, g := range golden {
		id := types.ReplicaID(i)
		approxMs(t, g.site.String()+" Paxos", Paxos(m, id, leader), g.paxos, 0.01)
		approxMs(t, g.site.String()+" Paxos-bcast", PaxosBcast(m, id, leader), g.pbcast, 0.01)
		approxMs(t, g.site.String()+" Mencius-imbal", MenciusBcastImbalanced(m, id), g.mencius, 0.01)
		approxMs(t, g.site.String()+" Clock-imbal", ClockRSMImbalanced(m, id), g.clockIm, 0.01)
		approxMs(t, g.site.String()+" Clock-balanced", ClockRSMBalanced(m, id), g.clockB, 0.01)
	}
}

// TestFigure7Golden pins the Figure 7 aggregates.
func TestFigure7Golden(t *testing.T) {
	rows := Figure7()
	golden := map[int][4]float64{ // paxosAll, clockAll, paxosHi, clockHi (ms)
		3: {158.6, 168.4, 211.0, 210.7},
		5: {208.9, 197.3, 274.5, 232.6},
		7: {232.9, 197.3, 282.0, 216.0},
	}
	for _, r := range rows {
		g := golden[r.Replicas]
		approxMs(t, "paxos all", r.PaxosAll, g[0], 0.1)
		approxMs(t, "clock all", r.ClockAll, g[1], 0.1)
		approxMs(t, "paxos highest", r.PaxosHighest, g[2], 0.1)
		approxMs(t, "clock highest", r.ClockHighest, g[3], 0.1)
	}
}
