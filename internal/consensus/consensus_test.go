package consensus

import (
	"fmt"
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/sim"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// harness wires N Paxos participants over a simulated network.
type harness struct {
	cluster *sim.Cluster
	nodes   []*Paxos
	decided []map[uint64][]byte
}

// consensusProto adapts Paxos to sim's rsm.Protocol.
type consensusProto struct{ p *Paxos }

func (c *consensusProto) Start()                                      {}
func (c *consensusProto) Submit(types.Command)                        {}
func (c *consensusProto) Deliver(from types.ReplicaID, m msg.Message) { c.p.Deliver(from, m) }

func newHarness(t *testing.T, n int, jitter time.Duration) *harness {
	t.Helper()
	c := sim.NewCluster(wan.Uniform(n, 50*time.Millisecond), sim.ClusterOptions{Jitter: jitter, Seed: 7})
	h := &harness{cluster: c, decided: make([]map[uint64][]byte, n)}
	peers := make([]types.ReplicaID, n)
	for i := range peers {
		peers[i] = types.ReplicaID(i)
	}
	for i := 0; i < n; i++ {
		i := i
		h.decided[i] = make(map[uint64][]byte)
		p := New(types.ReplicaID(i), peers, c.Replicas[i], time.Second, func(k uint64, v []byte) {
			h.decided[i][k] = v
		})
		h.nodes = append(h.nodes, p)
		c.Replicas[i].SetProtocol(&consensusProto{p: p})
	}
	c.Start()
	return h
}

func (h *harness) run(d time.Duration) { h.cluster.Eng.RunUntil(d) }

// checkAgreement verifies every live replica decided the same value for
// instance k and that it is one of the proposed values.
func (h *harness) checkAgreement(t *testing.T, k uint64, proposed [][]byte, skip map[int]bool) {
	t.Helper()
	var val []byte
	seen := false
	for i, d := range h.decided {
		if skip[i] {
			continue
		}
		v, ok := d[k]
		if !ok {
			t.Fatalf("replica %d did not decide instance %d", i, k)
		}
		if !seen {
			val, seen = v, true
		} else if string(val) != string(v) {
			t.Fatalf("disagreement on instance %d: %q vs %q", k, val, v)
		}
	}
	for _, p := range proposed {
		if string(p) == string(val) {
			return
		}
	}
	t.Fatalf("decided value %q was never proposed", val)
}

func TestSingleProposerDecides(t *testing.T) {
	h := newHarness(t, 3, 0)
	h.nodes[0].Propose(1, []byte("cfg-a"))
	h.run(2 * time.Second)
	h.checkAgreement(t, 1, [][]byte{[]byte("cfg-a")}, nil)
}

func TestConcurrentProposersAgree(t *testing.T) {
	h := newHarness(t, 5, 10*time.Millisecond)
	proposed := [][]byte{[]byte("from-0"), []byte("from-2"), []byte("from-4")}
	h.nodes[0].Propose(1, proposed[0])
	h.nodes[2].Propose(1, proposed[1])
	h.nodes[4].Propose(1, proposed[2])
	h.run(30 * time.Second)
	h.checkAgreement(t, 1, proposed, nil)
}

func TestDecidesWithMinorityCrashed(t *testing.T) {
	h := newHarness(t, 5, 0)
	h.cluster.Crash(3)
	h.cluster.Crash(4)
	h.nodes[0].Propose(1, []byte("v"))
	h.run(5 * time.Second)
	h.checkAgreement(t, 1, [][]byte{[]byte("v")}, map[int]bool{3: true, 4: true})
}

func TestNoProgressWithoutMajority(t *testing.T) {
	h := newHarness(t, 5, 0)
	for i := 1; i < 5; i++ {
		h.cluster.Crash(types.ReplicaID(i))
	}
	h.nodes[0].Propose(1, []byte("v"))
	h.run(10 * time.Second)
	if _, ok := h.decided[0][1]; ok {
		t.Fatal("decided without a majority")
	}
}

func TestIndependentInstances(t *testing.T) {
	h := newHarness(t, 3, 0)
	h.nodes[0].Propose(1, []byte("one"))
	h.nodes[1].Propose(2, []byte("two"))
	h.run(5 * time.Second)
	h.checkAgreement(t, 1, [][]byte{[]byte("one")}, nil)
	h.checkAgreement(t, 2, [][]byte{[]byte("two")}, nil)
}

func TestLateProposerLearnsExistingDecision(t *testing.T) {
	h := newHarness(t, 3, 0)
	h.nodes[0].Propose(1, []byte("first"))
	h.run(2 * time.Second)
	// A second proposer with a different value must learn "first".
	h.nodes[1].Propose(1, []byte("second"))
	h.run(4 * time.Second)
	h.checkAgreement(t, 1, [][]byte{[]byte("first")}, nil)
	if v, ok := h.nodes[1].Decided(1); !ok || string(v) != "first" {
		t.Fatalf("late proposer sees %q, %v", v, ok)
	}
}

func TestProposerRetriesThroughPartition(t *testing.T) {
	h := newHarness(t, 3, 0)
	// Cut proposer 0 off from replica 1; it can still reach 2 (majority
	// with itself).
	h.cluster.Net.Partition(0, 1)
	h.nodes[0].Propose(1, []byte("v"))
	h.run(5 * time.Second)
	h.checkAgreement(t, 1, [][]byte{[]byte("v")}, map[int]bool{1: true})
	// Heal: replica 1 must catch up via a later proposal attempt.
	h.cluster.Net.Heal(0, 1)
	h.nodes[1].Propose(1, []byte("other"))
	h.run(10 * time.Second)
	h.checkAgreement(t, 1, [][]byte{[]byte("v")}, nil)
}

func TestManyInstancesSequential(t *testing.T) {
	h := newHarness(t, 5, 5*time.Millisecond)
	var want []string
	for k := uint64(1); k <= 10; k++ {
		v := fmt.Sprintf("epoch-%d", k)
		want = append(want, v)
		h.nodes[int(k)%5].Propose(k, []byte(v))
	}
	h.run(60 * time.Second)
	for k := uint64(1); k <= 10; k++ {
		h.checkAgreement(t, k, [][]byte{[]byte(want[k-1])}, nil)
	}
}

func TestDecidedLookup(t *testing.T) {
	h := newHarness(t, 3, 0)
	if _, ok := h.nodes[0].Decided(1); ok {
		t.Fatal("Decided before any proposal")
	}
	h.nodes[0].Propose(1, []byte("v"))
	h.run(2 * time.Second)
	if v, ok := h.nodes[2].Decided(1); !ok || string(v) != "v" {
		t.Fatalf("Decided = %q, %v", v, ok)
	}
}
