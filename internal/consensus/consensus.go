// Package consensus implements the PROPOSE/DECIDE primitive used by
// Clock-RSM's reconfiguration protocol (Algorithm 3, Section V-A): a
// sequence of single-decree Paxos instances over all replicas in Spec.
// "In practice one can use a protocol like Paxos to implement the
// primitives" — we do exactly that.
package consensus

import (
	"fmt"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
)

// Transport is the narrow environment consensus needs. rsm.Env
// satisfies it.
type Transport interface {
	Send(to types.ReplicaID, m msg.Message)
	After(d time.Duration, fn func())
}

// DefaultRetryTimeout is how long a proposer waits for a decision before
// retrying with a higher ballot.
const DefaultRetryTimeout = 2 * time.Second

// instance carries acceptor and proposer state for one consensus
// instance.
type instance struct {
	// Acceptor state.
	promised       uint64
	acceptedBallot uint64
	acceptedValue  []byte

	// Learner state.
	decided      bool
	decidedValue []byte

	// Proposer state (nil ballot == not proposing).
	proposing  bool
	myValue    []byte
	ballot     uint64
	p1bs       map[types.ReplicaID]*msg.P1b
	p2bs       map[types.ReplicaID]bool
	phase2Sent bool
	attempt    int
}

// Paxos runs single-decree Paxos instances identified by a uint64 (the
// epoch number in Algorithm 3). All methods must be called from the
// owning replica's event loop.
type Paxos struct {
	self      types.ReplicaID
	peers     []types.ReplicaID // all replicas in Spec, including self
	tr        Transport
	onDecide  func(instance uint64, value []byte)
	retry     time.Duration
	instances map[uint64]*instance
}

// New creates a Paxos participant. onDecide fires exactly once per
// instance, on every replica that learns the decision. retry ≤ 0 uses
// DefaultRetryTimeout.
func New(self types.ReplicaID, peers []types.ReplicaID, tr Transport, retry time.Duration, onDecide func(uint64, []byte)) *Paxos {
	if retry <= 0 {
		retry = DefaultRetryTimeout
	}
	return &Paxos{
		self:      self,
		peers:     peers,
		tr:        tr,
		onDecide:  onDecide,
		retry:     retry,
		instances: make(map[uint64]*instance),
	}
}

// inst returns (allocating if needed) the state for instance k.
func (p *Paxos) inst(k uint64) *instance {
	in, ok := p.instances[k]
	if !ok {
		in = &instance{}
		p.instances[k] = in
	}
	return in
}

// majority is a majority of Spec.
func (p *Paxos) majority() int { return types.Majority(len(p.peers)) }

// ballotFor builds a globally unique ballot for this replica:
// attempt*N + selfIndex + 1.
func (p *Paxos) ballotFor(attempt int) uint64 {
	return uint64(attempt)*uint64(len(p.peers)) + uint64(p.self) + 1
}

// Decided returns the decided value of instance k, if known.
func (p *Paxos) Decided(k uint64) ([]byte, bool) {
	in, ok := p.instances[k]
	if !ok || !in.decided {
		return nil, false
	}
	return in.decidedValue, true
}

// Propose starts proposing value for instance k. If a decision is
// already known the decide callback has fired and the call is a no-op.
// Proposals retry with increasing ballots until some decision is
// learned; Paxos guarantees the decided value is one of the proposed
// ones.
func (p *Paxos) Propose(k uint64, value []byte) {
	in := p.inst(k)
	if in.decided || in.proposing {
		return
	}
	in.proposing = true
	in.myValue = value
	p.startRound(k, in)
}

// startRound begins a fresh ballot for an undecided instance.
func (p *Paxos) startRound(k uint64, in *instance) {
	if in.decided {
		return
	}
	in.ballot = p.ballotFor(in.attempt)
	in.attempt++
	in.p1bs = make(map[types.ReplicaID]*msg.P1b)
	in.p2bs = make(map[types.ReplicaID]bool)
	in.phase2Sent = false

	m := &msg.P1a{Instance: k, Ballot: in.ballot}
	for _, q := range p.peers {
		if q == p.self {
			p.onP1a(p.self, m)
		} else {
			p.tr.Send(q, m)
		}
	}
	// Retry with a higher ballot if no decision arrives. The delay backs
	// off exponentially with the attempt count: a fixed period shorter
	// than the effective round-trip time livelocks — every retry aborts
	// a round that was still in flight — so later attempts wait long
	// enough for a full phase-1 + phase-2 exchange even on slow or
	// overloaded links. Staggered by replica ID so duelling proposers
	// eventually separate.
	ballot := in.ballot
	delay := p.retry << min(in.attempt-1, 4)
	delay += time.Duration(p.self) * 50 * time.Millisecond
	p.tr.After(delay, func() {
		if !in.decided && in.proposing && in.ballot == ballot {
			p.startRound(k, in)
		}
	})
}

// Deliver processes a consensus message; it returns false if m is not a
// consensus message so callers can route other traffic elsewhere.
func (p *Paxos) Deliver(from types.ReplicaID, m msg.Message) bool {
	switch mm := m.(type) {
	case *msg.P1a:
		p.onP1a(from, mm)
	case *msg.P1b:
		p.onP1b(from, mm)
	case *msg.P2a:
		p.onP2a(from, mm)
	case *msg.P2b:
		p.onP2b(from, mm)
	case *msg.Learn:
		p.onLearn(mm)
	default:
		return false
	}
	return true
}

// onP1a handles a prepare request (acceptor).
func (p *Paxos) onP1a(from types.ReplicaID, m *msg.P1a) {
	in := p.inst(m.Instance)
	if in.decided {
		p.reply(from, &msg.Learn{Instance: m.Instance, Value: in.decidedValue})
		return
	}
	if m.Ballot > in.promised {
		in.promised = m.Ballot
	}
	// Reply with the promised ballot; the proposer only counts replies
	// matching its ballot, so a higher promised value acts as a NACK.
	p.reply(from, &msg.P1b{
		Instance:       m.Instance,
		Ballot:         in.promised,
		AcceptedBallot: in.acceptedBallot,
		Value:          in.acceptedValue,
	})
}

// onP1b handles a promise (proposer).
func (p *Paxos) onP1b(from types.ReplicaID, m *msg.P1b) {
	in := p.inst(m.Instance)
	if in.decided || !in.proposing {
		return
	}
	if m.Ballot > in.ballot {
		// NACK: the acceptor promised a higher ballot. Fast-forward our
		// attempt counter past it instead of inching up one ballot per
		// retry — a proposer that restarts with attempt 0 against
		// acceptors that promised a large ballot (e.g. after a livelocked
		// duel) would otherwise take thousands of retries to catch up.
		attempt := int(m.Ballot / uint64(len(p.peers)))
		if attempt+1 > in.attempt {
			in.attempt = attempt + 1
		}
		return
	}
	if m.Ballot != in.ballot || in.phase2Sent {
		return
	}
	in.p1bs[from] = m
	if len(in.p1bs) < p.majority() {
		return
	}
	// Choose the value of the highest accepted ballot, else our own.
	value := in.myValue
	var best uint64
	for _, r := range in.p1bs {
		if r.AcceptedBallot > best {
			best = r.AcceptedBallot
			value = r.Value
		}
	}
	in.phase2Sent = true
	m2 := &msg.P2a{Instance: m.Instance, Ballot: in.ballot, Value: value}
	for _, q := range p.peers {
		if q == p.self {
			p.onP2a(p.self, m2)
		} else {
			p.tr.Send(q, m2)
		}
	}
}

// onP2a handles an accept request (acceptor).
func (p *Paxos) onP2a(from types.ReplicaID, m *msg.P2a) {
	in := p.inst(m.Instance)
	if in.decided {
		p.reply(from, &msg.Learn{Instance: m.Instance, Value: in.decidedValue})
		return
	}
	if m.Ballot < in.promised {
		return // stale ballot: ignore; proposer's retry timer recovers
	}
	in.promised = m.Ballot
	in.acceptedBallot = m.Ballot
	in.acceptedValue = m.Value
	p.reply(from, &msg.P2b{Instance: m.Instance, Ballot: m.Ballot})
}

// onP2b handles an accept acknowledgement (proposer).
func (p *Paxos) onP2b(from types.ReplicaID, m *msg.P2b) {
	in := p.inst(m.Instance)
	if in.decided || !in.proposing || m.Ballot != in.ballot {
		return
	}
	in.p2bs[from] = true
	if len(in.p2bs) < p.majority() {
		return
	}
	// Decided: this proposer's phase-2 value is chosen.
	learn := &msg.Learn{Instance: m.Instance, Value: in.acceptedValue}
	for _, q := range p.peers {
		if q != p.self {
			p.tr.Send(q, learn)
		}
	}
	p.onLearn(learn)
}

// onLearn records a decision (learner) and fires the callback once.
func (p *Paxos) onLearn(m *msg.Learn) {
	in := p.inst(m.Instance)
	if in.decided {
		return
	}
	in.decided = true
	in.decidedValue = m.Value
	in.proposing = false
	if p.onDecide != nil {
		p.onDecide(m.Instance, m.Value)
	}
}

// DebugInstance renders instance k's acceptor/proposer state for test
// diagnostics. Must be called from the owning replica's event loop.
func (p *Paxos) DebugInstance(k uint64) string {
	in, ok := p.instances[k]
	if !ok {
		return fmt.Sprintf("i%d: none", k)
	}
	return fmt.Sprintf("i%d: promised=%d accepted=%d decided=%t proposing=%t ballot=%d attempt=%d p1bs=%d p2bs=%d p2sent=%t",
		k, in.promised, in.acceptedBallot, in.decided, in.proposing, in.ballot, in.attempt, len(in.p1bs), len(in.p2bs), in.phase2Sent)
}

// reply routes a message back to its sender, short-circuiting self.
func (p *Paxos) reply(to types.ReplicaID, m msg.Message) {
	if to == p.self {
		p.Deliver(p.self, m)
		return
	}
	p.tr.Send(to, m)
}
