package core

import (
	"testing"
	"time"

	"clockrsm/internal/sim"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// TestStableTSWaitsForInFlightPrepares pins the watermark's core safety
// property: a command's timestamp is not covered while its PREPARE is
// still in flight, and is covered once it committed everywhere.
func TestStableTSWaitsForInFlightPrepares(t *testing.T) {
	h := newHarness(t, wan.Uniform(3, ms(10)), Options{}, sim.ClusterOptions{})
	cid := h.submitAt(0, ms(100))
	// Halfway through the PREPARE's flight: replica 0 has the command
	// pending with no acknowledgements, replicas 1-2 have not heard a
	// thing. No watermark may cover the command's timestamp yet.
	h.c.Eng.RunUntil(ms(105))
	tsWall := int64(ms(100)) // virtual submit time = timestamp wall
	for i, rep := range h.reps {
		if w := rep.StableTS(); w >= tsWall {
			t.Fatalf("replica %d: watermark %d covers in-flight command at %d", i, w, tsWall)
		}
	}
	h.c.Eng.RunUntilIdle()
	h.checkTotalOrder(1, nil)
	// Committed everywhere: every PREPAREOK carried a clock reading past
	// the command's timestamp, so every watermark now covers it.
	for i, rep := range h.reps {
		if w := rep.StableTS(); w < tsWall {
			t.Fatalf("replica %d: watermark %d below committed command at %d", i, w, tsWall)
		}
	}
	_ = cid
}

// TestStableTSAdvancesWhenIdle checks that the CLOCKTIME broadcast
// (Algorithm 2) keeps the watermark moving without write traffic — the
// mechanism that bounds a linearizable read's stall in an idle system
// by O(Δ + one-way delay).
func TestStableTSAdvancesWhenIdle(t *testing.T) {
	h := newHarness(t, wan.Uniform(3, ms(10)), Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{})
	h.submitAt(0, 0)
	h.c.Eng.RunUntil(time.Second)
	for i, rep := range h.reps {
		if w := rep.StableTS(); w < int64(ms(900)) {
			t.Fatalf("replica %d: watermark %d did not track the idle clock (want ≥ %d)", i, w, int64(ms(900)))
		}
	}
}

// TestWatermarkNeverOvertaken is the read-safety invariant under skewed
// clocks, jitter and concurrent load: once a replica's listener
// observed watermark W, no command with timestamp ≤ W may execute at
// that replica afterwards — otherwise a read served at W would have
// missed a write it promised to cover. It also pins monotonicity (no
// reconfigurations here, so the watermark must never regress).
func TestWatermarkNeverOvertaken(t *testing.T) {
	const n = 5
	h := newHarness(t, wan.Uniform(n, ms(10)), Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{
		Skews:  []time.Duration{0, 2 * time.Millisecond, -2 * time.Millisecond, time.Millisecond, -time.Millisecond},
		Jitter: 3 * time.Millisecond,
		Seed:   42,
	})
	watermarks := make([]int64, n)
	for i, rep := range h.reps {
		i, rep := i, rep
		rep.SetStableListener(func() {
			w := rep.StableTS()
			if w < watermarks[i] {
				t.Fatalf("replica %d: watermark regressed %d -> %d", i, watermarks[i], w)
			}
			watermarks[i] = w
		})
		// The apps were built by newHarness; chain the execution check
		// off the recorded order via OnCommit below.
	}
	// Execution must stay above the watermark: hook each replica's app.
	for i := range h.reps {
		i := i
		app := h.apps[i]
		prev := app.OnCommit
		app.OnCommit = func(ts types.Timestamp, cmd types.Command) {
			if ts.Wall <= watermarks[i] {
				t.Fatalf("replica %d: command %v executed at ts %d ≤ watermark %d", i, cmd.ID, ts.Wall, watermarks[i])
			}
			if prev != nil {
				prev(ts, cmd)
			}
		}
	}
	// Staggered cross-replica load: 40 commands over 200ms from every
	// replica, timestamps interleaving across skewed clocks.
	total := 0
	for k := 0; k < 40; k++ {
		h.submitAt(types.ReplicaID(k%n), time.Duration(k)*5*time.Millisecond)
		total++
	}
	h.c.Eng.RunUntil(2 * time.Second)
	h.checkTotalOrder(total, nil)
	for i, w := range watermarks {
		if w == 0 {
			t.Fatalf("replica %d: stable listener never fired", i)
		}
	}
}
