package core

import (
	"testing"
	"time"

	"clockrsm/internal/rsm"
	"clockrsm/internal/sim"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// BenchmarkCommitPath measures the full protocol cost per committed
// command across a simulated 5-replica cluster (all messages, log
// appends and commit checks; zero virtual latency so protocol CPU
// dominates).
func BenchmarkCommitPath(b *testing.B) {
	c := sim.NewCluster(wan.Uniform(5, 0), sim.ClusterOptions{})
	reps := make([]*Replica, 5)
	for i, r := range c.Replicas {
		rep := New(r, &rsm.App{SM: rsm.NopSM{}}, Options{})
		reps[i] = rep
		r.SetProtocol(rep)
	}
	c.Start()
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps[i%5].Submit(types.Command{
			ID:      types.CommandID{Origin: types.ReplicaID(i % 5), Seq: uint64(i)},
			Payload: payload,
		})
		c.Eng.RunUntilIdle()
	}
	b.StopTimer()
	if got := reps[0].Committed(); got != uint64(b.N) {
		b.Fatalf("committed %d, want %d", got, b.N)
	}
}

// BenchmarkPendingSet measures the PendingCmds heap operations.
func BenchmarkPendingSet(b *testing.B) {
	p := newPendingSet()
	cmd := types.Command{ID: types.CommandID{Origin: 0, Seq: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Add(types.Timestamp{Wall: int64(i), Node: 0}, cmd, 1)
		if p.Len() > 64 {
			p.PopMin()
		}
	}
}

// BenchmarkStableCheck measures the COMMITTED(ts) stable-order check.
func BenchmarkStableCheck(b *testing.B) {
	c := sim.NewCluster(wan.Uniform(7, time.Millisecond), sim.ClusterOptions{})
	rep := New(c.Replicas[0], &rsm.App{SM: rsm.NopSM{}}, Options{})
	for k := range rep.latestTV {
		rep.latestTV[k] = 1000
	}
	ts := types.Timestamp{Wall: 999, Node: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !rep.stable(ts) {
			b.Fatal("unexpectedly unstable")
		}
	}
}
