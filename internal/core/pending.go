package core

import (
	"clockrsm/internal/types"
)

// pendingCmd is one not-yet-committed command (an element of
// PendingCmds, Table I). The replication bitmask (RepCounter) lives
// inline in the entry: recording an acknowledgement is a single map
// lookup plus a bit-or, and commitment reads the mask straight off the
// heap head — no separate ack map to update and delete-churn in
// lockstep with the pending set.
type pendingCmd struct {
	ts   types.Timestamp
	cmd  types.Command
	acks uint64 // bitmask of replicas known to have logged ts
}

// pendingSet is PendingCmds: a timestamp-ordered priority queue with
// membership testing and in-place ack accounting. The heap is
// hand-rolled (rather than container/heap) so pushes and pops move
// concrete values without interface boxing — the hot path allocates
// only on slice growth.
type pendingSet struct {
	h   []pendingCmd
	pos map[types.Timestamp]int // ts → index in h
}

// newPendingSet returns an empty set.
func newPendingSet() *pendingSet {
	return &pendingSet{pos: make(map[types.Timestamp]int)}
}

// Add inserts a command with ack bitmask acks unless its timestamp is
// already pending. It reports whether the command was inserted.
func (p *pendingSet) Add(ts types.Timestamp, cmd types.Command, acks uint64) bool {
	if _, ok := p.pos[ts]; ok {
		return false
	}
	p.h = append(p.h, pendingCmd{ts: ts, cmd: cmd, acks: acks})
	p.pos[ts] = len(p.h) - 1
	p.up(len(p.h) - 1)
	return true
}

// Ack sets replica k's bit on the pending entry for ts, reporting
// whether the timestamp is pending.
func (p *pendingSet) Ack(ts types.Timestamp, k types.ReplicaID) bool {
	i, ok := p.pos[ts]
	if !ok {
		return false
	}
	p.h[i].acks |= 1 << uint(k)
	return true
}

// Len returns the number of pending commands.
func (p *pendingSet) Len() int { return len(p.h) }

// Min returns the pending command with the smallest timestamp. It must
// not be called on an empty set.
func (p *pendingSet) Min() pendingCmd { return p.h[0] }

// PopMin removes and returns the smallest pending command.
func (p *pendingSet) PopMin() pendingCmd {
	e := p.h[0]
	last := len(p.h) - 1
	p.h[0] = p.h[last]
	p.h[last] = pendingCmd{}
	p.h = p.h[:last]
	delete(p.pos, e.ts)
	if last > 0 {
		p.pos[p.h[0].ts] = 0
		p.down(0)
	}
	return e
}

// Contains reports whether ts is pending.
func (p *pendingSet) Contains(ts types.Timestamp) bool {
	_, ok := p.pos[ts]
	return ok
}

// Clear drops every pending command (used at reconfiguration).
func (p *pendingSet) Clear() {
	for i := range p.h {
		p.h[i] = pendingCmd{}
	}
	p.h = p.h[:0]
	clear(p.pos)
}

// up restores the heap invariant from index i toward the root.
func (p *pendingSet) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !p.h[i].ts.Less(p.h[parent].ts) {
			return
		}
		p.swap(i, parent)
		i = parent
	}
}

// down restores the heap invariant from index i toward the leaves.
func (p *pendingSet) down(i int) {
	n := len(p.h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && p.h[l].ts.Less(p.h[min].ts) {
			min = l
		}
		if r < n && p.h[r].ts.Less(p.h[min].ts) {
			min = r
		}
		if min == i {
			return
		}
		p.swap(i, min)
		i = min
	}
}

// swap exchanges two heap slots, keeping the position index current.
func (p *pendingSet) swap(i, j int) {
	p.h[i], p.h[j] = p.h[j], p.h[i]
	p.pos[p.h[i].ts] = i
	p.pos[p.h[j].ts] = j
}
