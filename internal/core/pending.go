package core

import (
	"container/heap"

	"clockrsm/internal/types"
)

// pendingCmd is one not-yet-committed command (an element of
// PendingCmds, Table I).
type pendingCmd struct {
	ts  types.Timestamp
	cmd types.Command
}

// tsHeap is a min-heap of pending commands ordered by timestamp.
type tsHeap []pendingCmd

func (h tsHeap) Len() int           { return len(h) }
func (h tsHeap) Less(i, j int) bool { return h[i].ts.Less(h[j].ts) }
func (h tsHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *tsHeap) Push(x any)        { *h = append(*h, x.(pendingCmd)) }
func (h *tsHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = pendingCmd{}
	*h = old[:n-1]
	return e
}

// pendingSet is PendingCmds: a timestamp-ordered priority queue with
// membership testing.
type pendingSet struct {
	h  tsHeap
	in map[types.Timestamp]bool
}

// newPendingSet returns an empty set.
func newPendingSet() *pendingSet {
	return &pendingSet{in: make(map[types.Timestamp]bool)}
}

// Add inserts a command unless its timestamp is already pending.
// It reports whether the command was inserted.
func (p *pendingSet) Add(ts types.Timestamp, cmd types.Command) bool {
	if p.in[ts] {
		return false
	}
	p.in[ts] = true
	heap.Push(&p.h, pendingCmd{ts: ts, cmd: cmd})
	return true
}

// Len returns the number of pending commands.
func (p *pendingSet) Len() int { return len(p.h) }

// Min returns the pending command with the smallest timestamp. It must
// not be called on an empty set.
func (p *pendingSet) Min() pendingCmd { return p.h[0] }

// PopMin removes and returns the smallest pending command.
func (p *pendingSet) PopMin() pendingCmd {
	e := heap.Pop(&p.h).(pendingCmd)
	delete(p.in, e.ts)
	return e
}

// Contains reports whether ts is pending.
func (p *pendingSet) Contains(ts types.Timestamp) bool { return p.in[ts] }

// Clear drops every pending command (used at reconfiguration).
func (p *pendingSet) Clear() {
	p.h = p.h[:0]
	for ts := range p.in {
		delete(p.in, ts)
	}
}
