package core

import (
	"path/filepath"
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/sim"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// restart replaces the protocol instance of a crashed replica with a
// fresh one recovered from its log, and brings it back online.
func (h *harness) restart(id types.ReplicaID, opts Options) *Replica {
	i := int(id)
	h.orders[i] = nil // recovered replica replays its full history
	app := &rsm.App{
		SM: rsm.NopSM{},
		OnCommit: func(ts types.Timestamp, cmd types.Command) {
			h.orders[i] = append(h.orders[i], cmd.ID)
		},
		OnReply: func(res types.Result) {
			h.replies[i][res.ID] = h.c.Eng.Now()
		},
	}
	opts.Replay = true
	rep := New(h.c.Replicas[id], app, opts)
	h.reps[id] = rep
	h.c.Replicas[id].SetProtocol(rep)
	h.c.Restart(id)
	rep.Start()
	return rep
}

func TestReconfigurationPreservesCommittedCommands(t *testing.T) {
	opts := Options{ClockTimeInterval: ms(5), SuspectTimeout: ms(300), ConsensusRetry: ms(500)}
	h := newHarness(t, wan.Uniform(5, ms(10)), opts, sim.ClusterOptions{})

	// Phase 1: commit a batch with everyone alive.
	for k := 0; k < 10; k++ {
		h.submitAt(types.ReplicaID(k%5), time.Duration(k*15)*time.Millisecond)
	}
	h.c.Eng.RunUntil(time.Second)
	h.checkTotalOrder(10, nil)

	// Phase 2: crash r4, wait for reconfiguration, commit more.
	h.c.Eng.At(h.c.Eng.Now(), func() { h.c.Crash(4) })
	for k := 0; k < 10; k++ {
		h.submitAt(types.ReplicaID(k%4), 2*time.Second+time.Duration(k*15)*time.Millisecond)
	}
	h.c.Eng.RunUntil(10 * time.Second)
	skip := map[int]bool{4: true}
	h.checkTotalOrder(20, skip)
	for i := 0; i < 4; i++ {
		if h.reps[i].Epoch() != 1 {
			t.Errorf("replica %d epoch = %d, want 1", i, h.reps[i].Epoch())
		}
	}
}

func TestCrashedReplicaRecoversAndRejoins(t *testing.T) {
	opts := Options{ClockTimeInterval: ms(5), SuspectTimeout: ms(300), ConsensusRetry: ms(500)}
	h := newHarness(t, wan.Uniform(3, ms(10)), opts, sim.ClusterOptions{})

	for k := 0; k < 6; k++ {
		h.submitAt(types.ReplicaID(k%3), time.Duration(k*20)*time.Millisecond)
	}
	h.c.Eng.RunUntil(500 * time.Millisecond)
	h.checkTotalOrder(6, nil)

	// Crash r2; survivors reconfigure and keep committing.
	h.c.Eng.At(h.c.Eng.Now(), func() { h.c.Crash(2) })
	for k := 0; k < 6; k++ {
		h.submitAt(types.ReplicaID(k%2), 2*time.Second+time.Duration(k*20)*time.Millisecond)
	}
	h.c.Eng.RunUntil(5 * time.Second)
	h.checkTotalOrder(12, map[int]bool{2: true})

	// Restart r2 from its (in-memory) log and rejoin.
	h.c.Eng.At(h.c.Eng.Now(), func() {
		rep := h.restart(2, opts)
		rep.Rejoin()
	})
	h.c.Eng.RunUntil(30 * time.Second)
	if !h.reps[2].InConfig() {
		t.Fatalf("r2 not back in configuration; epoch=%d config=%v", h.reps[2].Epoch(), h.reps[2].Config())
	}
	// r2 must have caught up on the commands committed while it was down.
	if len(h.orders[2]) != 12 {
		t.Fatalf("r2 executed %d commands, want 12 (orders=%v)", len(h.orders[2]), h.orders[2])
	}
	h.checkTotalOrder(12, nil)

	// And new commands flow through the rejoined configuration.
	for k := 0; k < 3; k++ {
		h.submitAt(2, h.c.Eng.Now()+time.Duration(k*20)*time.Millisecond)
	}
	h.c.Eng.RunUntil(h.c.Eng.Now() + 5*time.Second)
	h.checkTotalOrder(15, nil)
	for i := range h.reps {
		if got := len(h.reps[i].Config()); got != 3 {
			t.Errorf("replica %d config size = %d, want 3", i, got)
		}
	}
}

func TestRecoveryFromFileLog(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ClockTimeInterval: ms(5), SuspectTimeout: ms(300), ConsensusRetry: ms(500)}
	copts := sim.ClusterOptions{NewLog: func(id types.ReplicaID) storage.Log {
		l, err := storage.OpenFileLog(filepath.Join(dir, id.String()+".log"), storage.FileLogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}}
	h := newHarness(t, wan.Uniform(3, ms(10)), opts, copts)

	for k := 0; k < 8; k++ {
		h.submitAt(types.ReplicaID(k%3), time.Duration(k*20)*time.Millisecond)
	}
	h.c.Eng.RunUntil(time.Second)
	h.checkTotalOrder(8, nil)

	// Crash r1; commit more without it.
	h.c.Eng.At(h.c.Eng.Now(), func() { h.c.Crash(1) })
	for k := 0; k < 4; k++ {
		h.submitAt(0, 2*time.Second+time.Duration(k*20)*time.Millisecond)
	}
	h.c.Eng.RunUntil(5 * time.Second)

	// Reopen r1's log from disk — this is the true recovery path.
	h.c.Eng.At(h.c.Eng.Now(), func() {
		h.c.Replicas[1].Log().Close()
		reopened, err := storage.OpenFileLog(filepath.Join(dir, "r1.log"), storage.FileLogOptions{})
		if err != nil {
			t.Errorf("reopen log: %v", err)
			return
		}
		h.c.Replicas[1].SetLog(reopened)
		rep := h.restart(1, opts)
		rep.Rejoin()
	})
	h.c.Eng.RunUntil(30 * time.Second)
	if !h.reps[1].InConfig() {
		t.Fatal("r1 did not rejoin after disk recovery")
	}
	if len(h.orders[1]) != 12 {
		t.Fatalf("r1 executed %d commands after recovery, want 12", len(h.orders[1]))
	}
	h.checkTotalOrder(12, nil)
}

func TestReplayDoesNotReplyToClients(t *testing.T) {
	lg := storage.NewMemLog()
	ts1 := types.Timestamp{Wall: 10, Node: 0}
	cmd := types.Command{ID: types.CommandID{Origin: 0, Seq: 1}, Payload: []byte("x")}
	lg.Append(storage.Entry{Kind: storage.KindPrepare, TS: ts1, Cmd: cmd})
	lg.Append(storage.Entry{Kind: storage.KindCommit, TS: ts1})

	c := sim.NewCluster(wan.Uniform(3, ms(10)), sim.ClusterOptions{})
	c.Replicas[0].SetLog(lg)
	replied := 0
	executed := 0
	app := &rsm.App{
		SM:       rsm.NopSM{},
		OnReply:  func(types.Result) { replied++ },
		OnCommit: func(types.Timestamp, types.Command) { executed++ },
	}
	rep := New(c.Replicas[0], app, Options{Replay: true})
	if executed != 1 {
		t.Errorf("replay executed %d commands, want 1", executed)
	}
	if replied != 0 {
		t.Errorf("replay sent %d client replies, want 0", replied)
	}
	if rep.Committed() != 1 {
		t.Errorf("Committed = %d", rep.Committed())
	}
}

func TestProposalEncodingRoundTrip(t *testing.T) {
	cfg := []types.ReplicaID{0, 2, 4}
	cts := types.Timestamp{Wall: 999, Node: 1}
	cmds := []types.Command{
		{ID: types.CommandID{Origin: 0, Seq: 1}, Payload: []byte("a")},
		{ID: types.CommandID{Origin: 2, Seq: 2}, Payload: []byte{}},
	}
	m := map[types.Timestamp]types.Command{
		{Wall: 1000, Node: 0}: cmds[0],
		{Wall: 1001, Node: 2}: cmds[1],
	}
	snapTS := types.Timestamp{Wall: 1005, Node: 2}
	val := encodeProposal(cfg, cts, snapTS, sortedCmds(m))
	d, err := decodeProposal(val)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.cfg) != 3 || d.cfg[2] != 4 {
		t.Errorf("cfg = %v", d.cfg)
	}
	if d.ts != cts {
		t.Errorf("cts = %v", d.ts)
	}
	if d.snapTS != snapTS {
		t.Errorf("snapTS = %v", d.snapTS)
	}
	if len(d.cmds) != 2 || d.cmds[0].TS.Wall != 1000 || d.cmds[1].TS.Wall != 1001 {
		t.Errorf("cmds = %+v", d.cmds)
	}
	if string(d.cmds[0].Cmd.Payload) != "a" {
		t.Errorf("payload = %q", d.cmds[0].Cmd.Payload)
	}
	// Truncations must error, not panic.
	for cut := 0; cut < len(val); cut++ {
		if _, err := decodeProposal(val[:cut]); err == nil && cut < len(val) {
			// Some prefixes may parse as valid shorter proposals only if
			// they end exactly at a boundary with zero counts; require the
			// full-length decode to be the unique success for this value.
			if cut != 0 {
				continue
			}
		}
	}
}

// TestConfigListenerReportsInstallAndDrops drives a genuine Algorithm-3
// reconfiguration in which a far replica's in-flight command cannot
// reach any SUSPENDOK responder: the decision excludes it, every
// replica's listener observes the installed epoch, the origin's
// listener reports the command dropped, and the command never executes
// anywhere (so resubmitting it is safe).
func TestConfigListenerReportsInstallAndDrops(t *testing.T) {
	// r0..r3 are 1 ms apart; r4 is 200 ms from everyone, so nothing it
	// sends lands before the reconfiguration below has decided.
	lat := wan.NewMatrix(5)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			lat.Set(types.ReplicaID(i), types.ReplicaID(j), ms(1))
		}
		lat.Set(types.ReplicaID(i), 4, ms(200))
	}
	opts := Options{ClockTimeInterval: ms(5), ConsensusRetry: ms(500)}
	h := newHarness(t, lat, opts, sim.ClusterOptions{})
	events := make([][]rsm.ConfigEvent, 5)
	h.c.Eng.At(0, func() {
		for i, rep := range h.reps {
			i, rep := i, rep
			rep.SetConfigListener(func(ev rsm.ConfigEvent) { events[i] = append(events[i], ev) })
		}
	})
	cid := h.submitAt(4, ms(1))
	h.c.Eng.At(ms(2), func() {
		h.reps[0].Reconfigure([]types.ReplicaID{0, 1, 2, 3, 4})
	})
	h.c.Eng.RunUntil(2 * time.Second)

	for i := range h.reps {
		if got := h.reps[i].Epoch(); got != 1 {
			t.Errorf("replica %d epoch = %d, want 1", i, got)
		}
		if len(events[i]) == 0 {
			t.Errorf("replica %d: config listener never fired", i)
			continue
		}
		ev := events[i][0]
		if ev.View.Epoch != 1 || !ev.View.InConfig || len(ev.View.Members) != 5 {
			t.Errorf("replica %d: first event view = %+v", i, ev.View)
		}
	}
	// Only the origin reports the lost command, exactly once.
	for i := range h.reps {
		var drops []types.CommandID
		for _, ev := range events[i] {
			drops = append(drops, ev.Dropped...)
		}
		if i == 4 {
			if len(drops) != 1 || drops[0] != cid {
				t.Errorf("replica 4 dropped = %v, want [%v]", drops, cid)
			}
		} else if len(drops) != 0 {
			t.Errorf("replica %d dropped = %v, want none", i, drops)
		}
	}
	// The dropped command executed nowhere: resubmission cannot double
	// apply.
	h.checkTotalOrder(0, nil)
	if _, ok := h.replies[4][cid]; ok {
		t.Error("dropped command produced a client reply")
	}

	// A submission at a replica outside the configuration is reported
	// dropped immediately (the removed-replica steady state).
	h.c.Eng.At(h.c.Eng.Now()+ms(10), func() {
		h.reps[0].Reconfigure([]types.ReplicaID{0, 1, 2})
	})
	h.c.Eng.RunUntil(h.c.Eng.Now() + 2*time.Second)
	pre := len(events[3])
	var lateCid types.CommandID
	h.c.Eng.At(h.c.Eng.Now()+ms(10), func() {
		lateCid = types.CommandID{Origin: 3, Seq: 999}
		h.reps[3].Submit(types.Command{ID: lateCid, Payload: []byte("late")})
	})
	h.c.Eng.RunUntil(h.c.Eng.Now() + time.Second)
	if h.reps[3].InConfig() {
		t.Fatal("replica 3 still in config after shrink")
	}
	if len(events[3]) <= pre {
		t.Fatal("submit at removed replica fired no config event")
	}
	last := events[3][len(events[3])-1]
	if last.View.InConfig || len(last.Dropped) != 1 || last.Dropped[0] != lateCid {
		t.Errorf("removed-replica submit event = %+v", last)
	}
}

// TestFutureEpochMessagesHeldAndRedelivered checks the install-skew
// path: a PREPARE tagged with an epoch this replica has not installed
// yet is parked (not dropped, not executed), and redelivered once the
// matching reconfiguration decision installs — closing the permanent
// history gap a dropped cross-epoch PREPARE would leave.
func TestFutureEpochMessagesHeldAndRedelivered(t *testing.T) {
	opts := Options{ClockTimeInterval: ms(5), ConsensusRetry: ms(500)}
	h := newHarness(t, wan.Uniform(3, ms(10)), opts, sim.ClusterOptions{})
	cmd := types.Command{ID: types.CommandID{Origin: 1, Seq: 77}, Payload: []byte("early")}
	var ts types.Timestamp
	h.c.Eng.At(ms(1), func() {
		// r1 "already installed epoch 1" and broadcasts a PREPARE r0 has
		// not caught up to yet.
		ts = types.Timestamp{Wall: h.c.Replicas[0].Clock(), Node: 1}
		h.reps[0].Deliver(1, &msg.Prepare{Epoch: 1, TS: ts, Cmd: cmd})
	})
	h.c.Eng.At(ms(2), func() {
		if got := h.reps[0].HeldLen(); got != 1 {
			t.Errorf("held = %d after future-epoch PREPARE, want 1", got)
		}
		if h.c.Replicas[0].Log().HasPrepare(ts) {
			t.Error("future-epoch PREPARE was logged before its epoch installed")
		}
		// A genuine reconfiguration now moves everyone to epoch 1.
		h.reps[1].Reconfigure([]types.ReplicaID{0, 1, 2})
	})
	h.c.Eng.RunUntil(5 * time.Second)
	if got := h.reps[0].Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	if got := h.reps[0].HeldLen(); got != 0 {
		t.Errorf("held = %d after install, want 0 (redelivered)", got)
	}
	if got := h.reps[0].HeldDropped(); got != 0 {
		t.Errorf("heldDropped = %d, want 0 (buffer never overflowed)", got)
	}
	if !h.c.Replicas[0].Log().HasPrepare(ts) {
		t.Error("held PREPARE was not redelivered at install")
	}
	// The redelivered command commits at r0 (sender's implicit ack plus
	// r0's own) and executes exactly once.
	execs := 0
	for _, cid := range h.orders[0] {
		if cid == cmd.ID {
			execs++
		}
	}
	if execs != 1 {
		t.Errorf("held command executed %d times at r0, want 1", execs)
	}
}

// TestReconfigurationPurgesStalePrepares checks that installing a
// decision removes uncommitted PREPAREs below the baseline too: stale
// cross-epoch junk left in the log would otherwise be served to a later
// state transfer as if committed, executing at exactly one replica.
func TestReconfigurationPurgesStalePrepares(t *testing.T) {
	opts := Options{ClockTimeInterval: ms(5), ConsensusRetry: ms(500)}
	h := newHarness(t, wan.Uniform(3, ms(10)), opts, sim.ClusterOptions{})
	// Commit a few commands so the reconfiguration baseline is ahead of
	// the junk timestamp below.
	for k := 0; k < 4; k++ {
		h.submitAt(types.ReplicaID(k%3), time.Duration(k*20)*time.Millisecond)
	}
	h.c.Eng.RunUntil(500 * time.Millisecond)
	// Plant an uncommitted PREPARE below the commit frontier — the
	// residue a rejected cross-epoch PREPARE would leave.
	junkTS := types.Timestamp{Wall: 1, Node: 2}
	junk := types.Command{ID: types.CommandID{Origin: 2, Seq: 999}, Payload: []byte("junk")}
	h.c.Eng.At(h.c.Eng.Now(), func() {
		h.c.Replicas[0].Log().Append(storage.Entry{Kind: storage.KindPrepare, TS: junkTS, Cmd: junk})
		h.reps[0].Reconfigure([]types.ReplicaID{0, 1, 2})
	})
	h.c.Eng.RunUntil(h.c.Eng.Now() + 5*time.Second)
	if got := h.reps[0].Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	if h.c.Replicas[0].Log().HasPrepare(junkTS) {
		t.Error("stale uncommitted PREPARE below the baseline survived the reconfiguration")
	}
	// The junk never executed anywhere.
	h.checkTotalOrder(4, nil)
}

func TestSubmitWhileSuspendedIsDeferred(t *testing.T) {
	opts := Options{ClockTimeInterval: ms(5), ConsensusRetry: ms(500)}
	h := newHarness(t, wan.Uniform(3, ms(10)), opts, sim.ClusterOptions{})
	// Manually reconfigure (same membership, bumps epoch) and submit
	// during the suspension window.
	h.c.Eng.At(ms(10), func() {
		h.reps[0].Reconfigure([]types.ReplicaID{0, 1, 2})
	})
	cid := h.submitAt(0, ms(11)) // r0 is suspended at this instant
	h.c.Eng.RunUntil(10 * time.Second)
	if _, ok := h.replies[0][cid]; !ok {
		t.Fatal("command submitted during suspension was lost")
	}
	h.checkTotalOrder(1, nil)
	if h.reps[0].Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", h.reps[0].Epoch())
	}
}

func TestSequentialReconfigurations(t *testing.T) {
	opts := Options{ClockTimeInterval: ms(5), SuspectTimeout: ms(300), ConsensusRetry: ms(500)}
	h := newHarness(t, wan.Uniform(5, ms(10)), opts, sim.ClusterOptions{})
	h.submitAt(0, ms(10))
	h.c.Eng.RunUntil(500 * time.Millisecond)

	// Crash r4 → epoch 1; then crash r3 → epoch 2.
	h.c.Eng.At(600*time.Millisecond, func() { h.c.Crash(4) })
	h.c.Eng.RunUntil(3 * time.Second)
	h.c.Eng.At(h.c.Eng.Now(), func() { h.c.Crash(3) })
	h.c.Eng.RunUntil(8 * time.Second)

	cid := h.submitAt(0, h.c.Eng.Now()+ms(10))
	h.c.Eng.RunUntil(h.c.Eng.Now() + 3*time.Second)
	if _, ok := h.replies[0][cid]; !ok {
		t.Fatal("no reply after two reconfigurations")
	}
	for i := 0; i < 3; i++ {
		if h.reps[i].Epoch() != 2 {
			t.Errorf("replica %d epoch = %d, want 2", i, h.reps[i].Epoch())
		}
		if len(h.reps[i].Config()) != 3 {
			t.Errorf("replica %d config = %v", i, h.reps[i].Config())
		}
	}
	h.checkTotalOrder(2, map[int]bool{3: true, 4: true})
}
