// Package core implements Clock-RSM, the paper's primary contribution:
// a multi-leader state machine replication protocol that totally orders
// commands with loosely synchronized physical clocks (Algorithm 1), the
// periodic clock-time broadcast extension (Algorithm 2), and the
// reconfiguration and recovery protocols (Algorithm 3, Section V).
//
// Durability and recovery (Section V-B): every PREPARE and COMMIT mark
// is appended to the replica's stable log before the message
// acknowledging it leaves — under group commit (storage.SyncBatch) one
// covering fsync per event-loop batch turn enforces that barrier. A
// replica restarted with Options.Replay restores the newest checkpoint,
// replays only the committed tail, and clamps its duplicate-kill
// frontier to the checkpoint so acknowledged commands never re-execute.
// Catch-up — state transfer during reconfiguration, and Rejoin for a
// restarted or removed replica — ships checkpoint + log tail from
// peers, never full history; with checkpointing enabled a transfer
// responder takes a snapshot on demand when a long gap has no covering
// checkpoint yet.
package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"clockrsm/internal/consensus"
	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

// Options tune a Clock-RSM replica.
type Options struct {
	// ClockTimeInterval is Δ of Algorithm 2: the minimum interval at
	// which a replica broadcasts its clock when idle. Zero disables the
	// extension (the protocol stays quiescent).
	ClockTimeInterval time.Duration
	// SuspectTimeout enables the failure detector: a configured replica
	// not heard from for this long is suspected and a reconfiguration
	// removing it is triggered (Section V). Zero disables detection.
	SuspectTimeout time.Duration
	// ConsensusRetry is the reproposal timeout of the reconfiguration
	// consensus; zero uses the consensus package default.
	ConsensusRetry time.Duration
	// Replay, when true, re-executes the committed prefix found in the
	// stable log before the replica starts (recovery, Section V-B). If
	// the log holds a checkpoint, the state machine is restored from it
	// and only the tail is replayed.
	Replay bool
	// CheckpointEvery, when positive, takes a state-machine snapshot
	// every that many committed commands and compacts the log through it
	// (the checkpointing optimization of Section V-B). Requires the
	// state machine to implement rsm.Snapshotter and the log
	// storage.Checkpointer; otherwise it is ignored.
	CheckpointEvery int
	// NoReadNudge disables the idle-read CLOCKTIME nudge: without it a
	// linearizable read parked on an idle cluster (NudgeClock) asks the
	// peers for their clocks immediately instead of waiting out the rest
	// of the Δ interval, cutting the idle-read latency floor from
	// Δ + one-way delay to one round trip (Section IV). Exists so the
	// before/after cost of the nudge is measurable.
	NoReadNudge bool
}

// Replica is one Clock-RSM replica. All methods must be invoked from the
// replica's event loop (simulator dispatch or node goroutine); the type
// itself holds no locks.
type Replica struct {
	env  rsm.Env
	app  *rsm.App
	opts Options

	// syncer is the log's group-commit hook, when the log provides one
	// (storage.SyncMode batch). syncBarrier invokes it before any
	// protocol message asserting log contents leaves the replica: a
	// PREPARE or PREPAREOK doubles as a durable-logging acknowledgement
	// (Alg. 1), so the covering fsync must precede the send. Nil when
	// the log syncs per append or durability is off.
	syncer storage.Syncer

	spec     []types.ReplicaID
	epoch    types.Epoch
	config   []types.ReplicaID
	inConfig map[types.ReplicaID]bool

	nextSeq uint64

	// pending holds uncommitted commands with their replication bitmask
	// (RepCounter, Table I) inline in each entry; see pendingSet.
	pending *pendingSet
	// earlyAcks buffers acknowledgements that arrive before the PREPARE
	// they acknowledge (possible across distinct FIFO links); they are
	// folded into the pending entry when it is created. Empty in steady
	// state.
	earlyAcks map[types.Timestamp]uint64
	// lastCommitted is the timestamp of the newest committed command.
	// Commits happen in timestamp order, so anything at or below it is
	// finished: late duplicate PREPAREs and stray acknowledgements for
	// it are dropped instead of accumulating state.
	lastCommitted types.Timestamp
	// latestTV[k] is the latest clock reading known from replica k
	// (LatestTV in Table I), indexed by replica ID. The entry for self
	// is implicit: the local clock.
	latestTV []int64
	// lastSent is the wall timestamp of the last PREPARE / PREPAREOK /
	// CLOCKTIME this replica broadcast; Algorithm 2 broadcasts CLOCKTIME
	// once Clock ≥ lastSent + Δ.
	lastSent int64
	// lastProposed is the wall timestamp of this replica's newest own
	// PREPARE. Submit keeps proposal walls strictly increasing even when
	// they have to be bumped above the commit frontier (see Submit), so
	// the stable-order reasoning — a replica never prepares below a wall
	// it already announced — survives clocks that fall behind.
	lastProposed int64
	// lastHeard[k] is the local clock when a message from k last
	// arrived; the failure detector compares it against SuspectTimeout.
	// Only maintained when the detector is enabled.
	lastHeard []int64
	// prepSent counts the PREPAREs this replica has broadcast in the
	// current epoch; it rides on every outgoing PREPARE / PREPAREOK /
	// CLOCKTIME (the Sent field) so receivers can prove the FIFO
	// loss-free channel assumption still holds. prepRecv[k] is the
	// receive-side mirror: how many of k's PREPAREs arrived this epoch.
	// Both reset on every epoch install. See fifoCheck.
	prepSent uint64
	prepRecv []uint64
	// linkGaps counts proven channel breaks (a message arrived whose
	// Sent counter is ahead of prepRecv); each one triggered a Rejoin.
	// Atomic so status and tests can read it cross-goroutine.
	linkGaps atomic.Uint64

	// Reconfiguration state (Algorithm 3).
	suspended bool
	px        *consensus.Paxos
	rc        *reconfigInit
	st        *stateTransfer
	// stashed holds decisions for epochs we cannot apply yet.
	stashed map[types.Epoch]*decision
	// rejoining/rejoinTarget track an in-progress Rejoin of a recovered
	// replica: done once epoch ≥ rejoinTarget with self configured.
	rejoining    bool
	rejoinTarget types.Epoch
	// deferred buffers client commands submitted while suspended.
	deferred []types.Command
	// heldDropped counts messages discarded on held-buffer overflow; it
	// is atomic so node.Status can surface it without crossing the
	// event loop.
	heldDropped atomic.Uint64
	// needCatchup is set when held-buffer overflow may have left a gap
	// in this replica's history; the next reconfiguration install
	// schedules a Rejoin, whose state transfer (checkpoint + tail)
	// repairs the gap instead of leaving silent divergence.
	needCatchup bool
	// snapRestores counts state-machine restores from a peer's shipped
	// snapshot (checkpoint + tail catch-up, as opposed to full-log
	// replay); atomic so tests and status can read it cross-goroutine.
	snapRestores atomic.Uint64
	// held buffers PREPARE / PREPAREOK / CLOCKTIME messages that arrive
	// tagged with a future epoch: the sender installed a reconfiguration
	// decision this replica has not applied yet. Dropping them instead
	// would leave a permanent gap — a new-epoch command can commit with
	// a majority of Spec that excludes the stragglers, whose stability
	// rule then lets them commit past the hole. The window is bounded by
	// the install skew (stability stalls the sender's commits until this
	// replica speaks the new epoch), so the buffer stays small; it is
	// capped as a backstop.
	held []heldMsg
	// onConfig, when set, observes every installed configuration and
	// every locally originated command the protocol discards (see
	// rsm.Reconfigurable). Fired on the event loop, off the data hot
	// path: only reconfigurations and refused submissions reach it.
	onConfig func(ev rsm.ConfigEvent)
	// onStable, when set, fires at the end of every turn in which the
	// executed watermark may have advanced (see rsm.StateReader); the
	// runtime's read path uses it to release parked reads.
	onStable func()

	// Batch-turn state: between BeginBatch and EndBatch (or while
	// processing one msg.Batch), outgoing broadcasts accumulate in
	// outBuf — flushed as one msg.Batch — and the commit scan is
	// deferred to the end of the turn.
	inBatch bool
	outBuf  []msg.Message

	// sinceCheckpoint counts commands executed since the last
	// checkpoint.
	sinceCheckpoint int

	// lastNudge is the local clock reading when this replica last
	// broadcast a CLOCKREQ; NudgeClock suppresses re-requests inside a
	// quarter of Δ so a burst of parked reads costs one broadcast.
	lastNudge int64

	// Counters exposed for tests and measurements.
	committed    uint64
	waits        uint64 // times the line-8 wait actually blocked
	checkpoints  uint64
	sweptAcks    uint64 // earlyAcks entries reclaimed by the periodic sweep
	nudges       uint64 // CLOCKREQ broadcasts sent for parked reads
	nudgeReplies uint64 // CLOCKREQs answered with an immediate CLOCKTIME
}

var (
	_ rsm.Protocol       = (*Replica)(nil)
	_ rsm.IDAllocator    = (*Replica)(nil)
	_ rsm.Reconfigurable = (*Replica)(nil)
	_ rsm.StateReader    = (*Replica)(nil)
)

// New creates a Clock-RSM replica over env, executing committed commands
// against app. The initial configuration is the full Spec. If
// opts.Replay is set, the committed prefix of env.Log() is re-executed
// (recovery from stable storage, Section V-B).
func New(env rsm.Env, app *rsm.App, opts Options) *Replica {
	spec := env.Spec()
	r := &Replica{
		env:       env,
		app:       app,
		opts:      opts,
		spec:      spec,
		config:    append([]types.ReplicaID(nil), spec...),
		inConfig:  make(map[types.ReplicaID]bool, len(spec)),
		pending:   newPendingSet(),
		earlyAcks: make(map[types.Timestamp]uint64),
		latestTV:  make([]int64, len(spec)),
		lastHeard: make([]int64, len(spec)),
		prepRecv:  make([]uint64, len(spec)),
		stashed:   make(map[types.Epoch]*decision),
	}
	for _, id := range spec {
		r.inConfig[id] = true
	}
	r.px = consensus.New(env.ID(), spec, env, opts.ConsensusRetry, r.onDecide)
	r.syncer, _ = env.Log().(storage.Syncer)
	if opts.Replay {
		// Restore the latest checkpoint, if any, then replay the tail
		// (Section V-B).
		if cpr, ok := env.Log().(storage.Checkpointer); ok {
			if cp, ok := cpr.LastCheckpoint(); ok {
				if restored, err := r.app.TryRestore(cp.State); err == nil && restored {
					r.committed++ // the checkpoint covers ≥ 1 command
				}
			}
		}
		committed, _ := storage.CommittedCommands(env.Log())
		for _, tc := range committed {
			r.app.Execute(types.NoReplica, tc.TS, tc.Cmd) // suppress client replies on replay
			r.committed++
			r.lastCommitted = tc.TS
		}
		// The duplicate-kill frontier must cover the restored checkpoint
		// too, not only the replayed tail: with an empty tail, a late
		// duplicate PREPARE at or below the checkpoint would otherwise
		// slip past the lastCommitted guard and re-execute an already
		// acknowledged command.
		if lct := env.Log().LastCommitTS(); r.lastCommitted.Less(lct) {
			r.lastCommitted = lct
		}
	}
	return r
}

// syncBarrier makes every append so far durable (group commit). It is
// invoked before any outgoing protocol message that acknowledges log
// contents. An fsync failure is fatal: the log's durability promise is
// broken in an unknowable way (pages may have been dropped), so the
// replica must crash and recover from the log rather than ack on top of
// it — the recovery error contract documented in the README.
func (r *Replica) syncBarrier() {
	if r.syncer == nil {
		return
	}
	if err := r.syncer.Sync(); err != nil {
		panic("core: WAL fsync failed, cannot guarantee acked durability: " + err.Error())
	}
}

// Start installs the periodic timers (Algorithm 2 broadcast and failure
// detection).
func (r *Replica) Start() {
	now := r.env.Clock()
	for _, k := range r.spec {
		r.lastHeard[k] = now
	}
	if d := r.opts.ClockTimeInterval; d > 0 {
		r.env.After(d, r.clockTimeTick)
	}
	if d := r.opts.SuspectTimeout; d > 0 {
		r.env.After(d, r.detectTick)
	}
}

// Epoch returns the current configuration epoch.
func (r *Replica) Epoch() types.Epoch { return r.epoch }

// Config returns a copy of the current configuration.
func (r *Replica) Config() []types.ReplicaID {
	return append([]types.ReplicaID(nil), r.config...)
}

// InConfig reports whether this replica is part of the current
// configuration.
func (r *Replica) InConfig() bool { return r.inConfig[r.env.ID()] }

// ConfigView implements rsm.Reconfigurable: the installed epoch, a copy
// of the member set, and the local replica's membership.
func (r *Replica) ConfigView() rsm.ConfigView {
	return rsm.ConfigView{Epoch: r.epoch, Members: r.Config(), InConfig: r.InConfig()}
}

// SetConfigListener implements rsm.Reconfigurable. The listener fires on
// the event loop: once per installed configuration (with any locally
// originated commands the reconfiguration discarded), and for each
// command refused because the replica is outside the configuration.
func (r *Replica) SetConfigListener(fn func(ev rsm.ConfigEvent)) { r.onConfig = fn }

// notifyConfig fires the configuration listener with the current view
// and the given discarded local commands.
func (r *Replica) notifyConfig(dropped []types.CommandID) {
	if r.onConfig == nil {
		return
	}
	r.onConfig(rsm.ConfigEvent{View: r.ConfigView(), Dropped: dropped})
}

// Committed returns the number of commands executed so far.
func (r *Replica) Committed() uint64 { return r.committed }

// HeldDropped returns how many future-epoch messages were discarded on
// hold-buffer overflow. Non-zero means a straggler may have a history
// gap only a state transfer can close; see maxHeld. Safe to call from
// any goroutine.
func (r *Replica) HeldDropped() uint64 { return r.heldDropped.Load() }

// SnapRestores returns how many times this replica restored its state
// machine from a peer's shipped snapshot (checkpoint + tail catch-up).
// Safe to call from any goroutine.
func (r *Replica) SnapRestores() uint64 { return r.snapRestores.Load() }

// DebugReconfig renders the reconfiguration machinery's state for test
// diagnostics. Must be called on the event loop (e.g. via node.Node.Do).
func (r *Replica) DebugReconfig() string {
	s := fmt.Sprintf("epoch=%d cfg=%v suspended=%t rejoining=%t target=%d", r.epoch, r.config, r.suspended, r.rejoining, r.rejoinTarget)
	if r.rc != nil {
		s += fmt.Sprintf(" rc=(e=%d propose=%t ok=%b cfg=%v)", r.rc.epoch, r.rc.propose, r.rc.okMask, r.rc.cfg)
	}
	if r.st != nil {
		s += fmt.Sprintf(" st=(e=%d applied=%t ok=%b)", r.st.epoch, r.st.applied, r.st.okMask)
	}
	if len(r.stashed) > 0 {
		s += fmt.Sprintf(" stashed=%d", len(r.stashed))
	}
	s += " px[" + r.px.DebugInstance(uint64(r.epoch+1)) + "]"
	return s
}

// Waits returns how many times the Algorithm 1 line-8 wait actually had
// to block (expected to be rare with reasonable clock skew).
func (r *Replica) Waits() uint64 { return r.waits }

// Checkpoints returns the number of checkpoints taken.
func (r *Replica) Checkpoints() uint64 { return r.checkpoints }

// PendingLen returns the number of uncommitted pending commands.
func (r *Replica) PendingLen() int { return r.pending.Len() }

// EarlyAckLen returns the number of acknowledgements parked waiting for
// their PREPARE (empty in steady state).
func (r *Replica) EarlyAckLen() int { return len(r.earlyAcks) }

// SweptAcks returns how many parked acknowledgements the periodic
// CLOCKTIME sweep has reclaimed.
func (r *Replica) SweptAcks() uint64 { return r.sweptAcks }

// NextCommandID allocates a command identifier for a local client.
func (r *Replica) NextCommandID() types.CommandID {
	r.nextSeq++
	return types.CommandID{Origin: r.env.ID(), Seq: r.nextSeq}
}

// Submit handles 〈REQUEST cmd〉 from a local client (Alg. 1 lines 1-3):
// assign the current clock as the command's timestamp and broadcast
// PREPARE to the configuration.
func (r *Replica) Submit(cmd types.Command) {
	if r.suspended {
		r.deferred = append(r.deferred, cmd)
		return
	}
	if !r.inConfig[r.env.ID()] {
		// Removed from the configuration: the command cannot replicate
		// from here. Report it discarded so the runtime can fail the
		// caller (node.ErrNotInConfig) instead of parking it forever.
		r.notifyConfig([]types.CommandID{cmd.ID})
		return
	}
	wall := r.env.Clock()
	// Never propose at or below the commit frontier or a wall already
	// proposed. Commits wait for the local clock (see stable), so the
	// frontier normally trails it — but a state transfer can install a
	// frontier ahead of a lagging clock, and a proposal timestamped
	// below it would be stale-dropped here while replicas whose
	// frontiers still trail it accept and commit it: divergence. The
	// bump keeps proposal walls above everything this replica has
	// announced, which is what the stable-order rule relies on.
	if wall <= r.lastCommitted.Wall {
		wall = r.lastCommitted.Wall + 1
	}
	if wall <= r.lastProposed {
		wall = r.lastProposed + 1
	}
	r.lastProposed = wall
	ts := types.Timestamp{Wall: wall, Node: r.env.ID()}
	r.env.Log().Append(storage.Entry{Kind: storage.KindPrepare, TS: ts, Cmd: cmd})
	r.pending.Add(ts, cmd, 1<<uint(r.env.ID()))
	r.observe(r.env.ID(), ts.Wall)
	r.lastSent = ts.Wall
	r.prepSent++
	r.broadcast(&msg.Prepare{Epoch: r.epoch, TS: ts, Cmd: cmd, Sent: r.prepSent})
	r.tryCommit()
}

// Deliver routes a protocol message (Alg. 1 upon-clauses, Alg. 2/3
// handlers and the consensus primitive). A msg.Batch counts as one
// delivery turn: its packed messages run back-to-back and trigger a
// single commit scan and one coalesced outgoing flush.
func (r *Replica) Deliver(from types.ReplicaID, m msg.Message) {
	if r.opts.SuspectTimeout > 0 {
		r.lastHeard[from] = r.env.Clock()
	}
	if batch, ok := m.(*msg.Batch); ok {
		wasBatch := r.inBatch
		r.inBatch = true
		for _, sub := range batch.Msgs {
			r.deliverOne(from, sub)
		}
		r.inBatch = wasBatch
		if !wasBatch {
			r.flushOut()
			r.tryCommit()
		}
		return
	}
	r.deliverOne(from, m)
}

// BeginBatch implements rsm.BatchDeliverer: it opens a batch turn, in
// which outgoing broadcasts coalesce and the commit scan is deferred.
func (r *Replica) BeginBatch() { r.inBatch = true }

// EndBatch implements rsm.BatchDeliverer: it closes the batch turn,
// broadcasts the coalesced output as one message and runs the single
// commit cascade for everything delivered in the turn.
func (r *Replica) EndBatch() {
	r.inBatch = false
	r.flushOut()
	r.tryCommit()
}

// broadcast sends m to the configuration, or buffers it for one
// coalesced send at the end of the current batch turn. The durability
// barrier precedes the send: a PREPARE is the sender's implicit logging
// ack and a PREPAREOK an explicit one, so the appends they assert must
// be on disk before either leaves.
func (r *Replica) broadcast(m msg.Message) {
	if r.inBatch {
		r.outBuf = append(r.outBuf, m)
		return
	}
	r.syncBarrier()
	rsm.Broadcast(r.env, r.config, m)
}

// flushOut broadcasts the output buffered during a batch turn: a burst
// of messages leaves as a single msg.Batch — one encode, one frame —
// preserving their order on every link. One covering fsync (group
// commit) precedes the flush, making every append of the turn durable
// before the acknowledgements for them leave.
func (r *Replica) flushOut() {
	switch len(r.outBuf) {
	case 0:
		return
	case 1:
		r.syncBarrier()
		rsm.Broadcast(r.env, r.config, r.outBuf[0])
	default:
		packed := make([]msg.Message, len(r.outBuf))
		copy(packed, r.outBuf)
		r.syncBarrier()
		rsm.Broadcast(r.env, r.config, &msg.Batch{Msgs: packed})
	}
	for i := range r.outBuf {
		r.outBuf[i] = nil
	}
	r.outBuf = r.outBuf[:0]
}

// heldMsg is one future-epoch message parked until its epoch installs.
type heldMsg struct {
	epoch types.Epoch
	from  types.ReplicaID
	m     msg.Message
}

// maxHeld caps the future-epoch buffer. The in-flight windows of the
// senders bound the PREPAREs outstanding during an install-skew window,
// so the cap is a backstop, not a working limit.
const maxHeld = 1 << 16

// hold parks a future-epoch message for redelivery at install. On
// overflow the oldest message is dropped and the replica marks itself
// for catch-up: the next install schedules a Rejoin whose state
// transfer repairs the gap the drop may have opened (state transfer on
// overflow, instead of silent permanent divergence).
func (r *Replica) hold(epoch types.Epoch, from types.ReplicaID, m msg.Message) {
	if len(r.held) >= maxHeld {
		copy(r.held, r.held[1:])
		r.held[len(r.held)-1] = heldMsg{}
		r.held = r.held[:len(r.held)-1]
		r.heldDropped.Add(1)
		r.needCatchup = true
	}
	r.held = append(r.held, heldMsg{epoch: epoch, from: from, m: cloneHeld(m)})
}

// cloneHeld deep-copies a hot-path message before it is parked past the
// end of its delivery: the original may live in pooled decode storage
// (msg.DecodeRecycled) that is recycled when Deliver returns. Messages
// of other types own their memory and are retained as-is.
func cloneHeld(m msg.Message) msg.Message {
	switch mm := m.(type) {
	case *msg.Prepare:
		c := *mm
		c.Cmd.Payload = append([]byte(nil), mm.Cmd.Payload...)
		return &c
	case *msg.PrepareOK:
		c := *mm
		return &c
	case *msg.ClockTime:
		c := *mm
		return &c
	}
	return m
}

// HeldLen returns the number of future-epoch messages parked for
// redelivery (empty in steady state).
func (r *Replica) HeldLen() int { return len(r.held) }

// redeliverHeld replays parked messages whose epoch has just been
// installed, drops those from skipped epochs, and keeps the rest. It
// runs at the end of finishApply, with the new configuration in force.
func (r *Replica) redeliverHeld() {
	if len(r.held) == 0 {
		return
	}
	pending := r.held
	r.held = nil
	for i, h := range pending {
		switch {
		case h.epoch == r.epoch:
			r.deliverOne(h.from, h.m)
		case h.epoch > r.epoch:
			r.held = append(r.held, h)
		}
		pending[i] = heldMsg{}
	}
}

// deliverOne dispatches a single (non-batch) protocol message. Data
// messages tagged with a future epoch are parked until the matching
// reconfiguration decision installs (see hold).
func (r *Replica) deliverOne(from types.ReplicaID, m msg.Message) {
	if r.px.Deliver(from, m) {
		return
	}
	switch mm := m.(type) {
	case *msg.Prepare:
		if mm.Epoch > r.epoch {
			r.hold(mm.Epoch, from, m)
			return
		}
		r.onPrepare(from, mm)
	case *msg.PrepareOK:
		if mm.Epoch > r.epoch {
			r.hold(mm.Epoch, from, m)
			return
		}
		r.onPrepareOK(from, mm)
	case *msg.ClockTime:
		if mm.Epoch > r.epoch {
			r.hold(mm.Epoch, from, m)
			return
		}
		r.onClockTime(from, mm)
	case *msg.ClockReq:
		r.onClockReq(from, mm)
	case *msg.Suspend:
		r.onSuspend(from, mm)
	case *msg.SuspendOK:
		r.onSuspendOK(from, mm)
	case *msg.RetrieveCmds:
		r.onRetrieveCmds(from, mm)
	case *msg.RetrieveReply:
		r.onRetrieveReply(from, mm)
	}
}

// onPrepare handles 〈PREPARE cmd, ts〉 from rk (Alg. 1 lines 4-10). The
// PREPARE doubles as rk's own logging acknowledgement: rk appends to its
// log before broadcasting, so receivers count it toward majority
// replication without waiting for rk's PREPAREOK.
func (r *Replica) onPrepare(from types.ReplicaID, m *msg.Prepare) {
	if m.Epoch != r.epoch || r.suspended {
		return
	}
	if !r.fifoCheck(from, m.Sent, true) {
		return
	}
	if m.TS.LessEq(r.lastCommitted) {
		return // late duplicate of an already-committed command
	}
	// Seed the entry with the sender's implicit acknowledgement plus any
	// PREPAREOKs that outran this PREPARE on other links.
	acks := uint64(1) << uint(from)
	if len(r.earlyAcks) > 0 {
		if early, ok := r.earlyAcks[m.TS]; ok {
			acks |= early
			delete(r.earlyAcks, m.TS)
		}
	}
	// The PREPARE may be backed by pooled decode storage that is
	// recycled when this delivery returns (msg.DecodeRecycled), so
	// everything retained past this call — the command entering the
	// pending set and the log, the timestamp captured by the wait
	// closure below — is copied out of the message here.
	ts := m.TS
	cmd := m.Cmd
	if len(cmd.Payload) > 0 {
		cmd.Payload = append([]byte(nil), cmd.Payload...)
	} else if cmd.Payload != nil {
		cmd.Payload = []byte{}
	}
	if !r.pending.Add(ts, cmd, acks) {
		return // duplicate delivery
	}
	r.observe(from, ts.Wall)
	r.env.Log().Append(storage.Entry{Kind: storage.KindPrepare, TS: ts, Cmd: cmd})
	// Line 8: wait until ts < Clock. The local clock is strictly
	// increasing, so with synchronized clocks the wait never blocks; a
	// fast remote clock (skew) forces a short delay before
	// acknowledging, preserving the promise that this replica never
	// sends a timestamp smaller than one it acknowledged.
	if r.env.Clock() > ts.Wall {
		r.ackPrepare(ts)
		return
	}
	r.waits++
	epoch := r.epoch
	var retry func()
	retry = func() {
		if r.epoch != epoch || r.suspended {
			return
		}
		if r.env.Clock() > ts.Wall {
			r.ackPrepare(ts)
			r.tryCommit()
			return
		}
		r.env.After(time.Microsecond, retry)
	}
	r.env.After(time.Duration(ts.Wall-r.env.Clock())+time.Microsecond, retry)
}

// ackPrepare logs locally done; broadcast 〈PREPAREOK ts, clockTs〉 to the
// configuration and count our own acknowledgement (Alg. 1 lines 9-10).
// Inside a batch turn the PREPAREOK joins the turn's coalesced output:
// consecutive acknowledgements leave as one msg.Batch.
func (r *Replica) ackPrepare(ts types.Timestamp) {
	clockTS := r.env.Clock()
	r.lastSent = clockTS
	r.broadcast(&msg.PrepareOK{Epoch: r.epoch, TS: ts, ClockTS: clockTS, Sent: r.prepSent})
	r.ack(ts, r.env.ID())
	r.tryCommit()
}

// onPrepareOK handles 〈PREPAREOK ts, clockTs〉 from rk (Alg. 1 lines
// 11-13).
func (r *Replica) onPrepareOK(from types.ReplicaID, m *msg.PrepareOK) {
	if m.Epoch != r.epoch || r.suspended {
		return
	}
	if !r.fifoCheck(from, m.Sent, false) {
		return
	}
	r.observe(from, m.ClockTS)
	r.ack(m.TS, from)
	r.tryCommit()
}

// onClockTime handles 〈CLOCKTIME ts〉 (Alg. 2 lines 4-5).
func (r *Replica) onClockTime(from types.ReplicaID, m *msg.ClockTime) {
	if m.Epoch != r.epoch || r.suspended {
		return
	}
	if !r.fifoCheck(from, m.Sent, false) {
		return
	}
	r.observe(from, m.TS)
	r.tryCommit()
}

// onClockReq answers a peer's idle-read nudge with an immediate unicast
// 〈CLOCKTIME clock〉. The reply deliberately does not update lastSent:
// it is an extra clock sample for one impatient reader, not a
// substitute for the periodic broadcast every other replica still needs
// within Δ. A CLOCKTIME carries no log assertions, so no durability
// barrier precedes it. Stale-epoch requests are dropped — the nudge is
// an optimization, never a correctness dependency.
func (r *Replica) onClockReq(from types.ReplicaID, m *msg.ClockReq) {
	if m.Epoch != r.epoch || r.suspended || !r.inConfig[r.env.ID()] {
		return
	}
	r.nudgeReplies++
	r.env.Send(from, &msg.ClockTime{Epoch: r.epoch, TS: r.env.Clock(), Sent: r.prepSent})
}

// NudgeClock broadcasts 〈CLOCKREQ〉 asking every peer for an immediate
// CLOCKTIME. The node layer calls it when a linearizable read parks
// waiting for the stable frontier on an otherwise idle cluster: instead
// of paying the remainder of the Δ interval plus a one-way delay, the
// read completes after one round trip (Section IV's idle latency
// floor). Re-requests within Δ/4 coalesce into the outstanding one.
// The nudge is part of the CLOCKTIME extension: Δ = 0 means the
// extension is disabled and the protocol stays quiescent, so no
// CLOCKREQ goes out either. Must be invoked from the replica's event
// loop, like Submit.
func (r *Replica) NudgeClock() {
	if r.opts.NoReadNudge || r.opts.ClockTimeInterval == 0 || r.suspended || !r.inConfig[r.env.ID()] {
		return
	}
	now := r.env.Clock()
	quiet := int64(r.opts.ClockTimeInterval) / 4
	if r.lastNudge != 0 && now < r.lastNudge+quiet {
		return
	}
	r.lastNudge = now
	r.nudges++
	r.broadcast(&msg.ClockReq{Epoch: r.epoch})
}

// Nudges returns how many CLOCKREQ broadcasts this replica sent for
// parked linearizable reads.
func (r *Replica) Nudges() uint64 { return r.nudges }

// NudgeReplies returns how many peers' CLOCKREQs this replica answered
// with an immediate CLOCKTIME.
func (r *Replica) NudgeReplies() uint64 { return r.nudgeReplies }

// clockTimeTick implements Algorithm 2 line 1: broadcast the clock if
// nothing carrying a newer timestamp was sent in the last Δ. The tick
// also sweeps earlyAcks, so acknowledgements whose PREPAREs were
// permanently lost are reclaimed within O(Δ) of the commit frontier
// passing them instead of lingering until the next reconfiguration.
func (r *Replica) clockTimeTick() {
	d := r.opts.ClockTimeInterval
	now := r.env.Clock()
	if !r.suspended && r.inConfig[r.env.ID()] && now >= r.lastSent+int64(d) {
		r.lastSent = now
		r.broadcast(&msg.ClockTime{Epoch: r.epoch, TS: now, Sent: r.prepSent})
	}
	r.sweepEarlyAcks()
	// Retry the commit scan: when the head waits only on the local
	// clock (stable's own-clock term) no peer message is guaranteed to
	// arrive and re-trigger it, so the tick is the wakeup.
	r.tryCommit()
	r.env.After(d, r.clockTimeTick)
}

// sweepEarlyAcks drops parked acknowledgements for timestamps at or
// below the commit frontier. Commits happen strictly in timestamp
// order, so such an entry can never be consumed again: either its
// command committed without it, or its PREPARE was lost and any late
// arrival will be rejected as a stale duplicate (onPrepare's
// lastCommitted guard). Entries above the frontier are kept — their
// PREPARE may still be in flight. Under sustained message loss the
// frontier keeps advancing past lost timestamps (they never enter the
// pending set, so they don't block commitment), which bounds the
// table's size by the loss rate times the sweep interval.
func (r *Replica) sweepEarlyAcks() {
	if len(r.earlyAcks) == 0 {
		return
	}
	for ts := range r.earlyAcks {
		if ts.LessEq(r.lastCommitted) {
			delete(r.earlyAcks, ts)
			r.sweptAcks++
		}
	}
}

// fifoCheck enforces the loss-free FIFO channel assumption the
// stable-order rule rests on, using the cumulative per-epoch PREPARE
// counter every data message carries (see msg.Prepare.Sent). A counter
// ahead of this replica's receive count proves a PREPARE from that
// sender was lost in transit — the transports are best-effort, and
// injected faults or overload can drop frames. Processing the message
// anyway would advance the sender's latest-time entry over the hole,
// letting the commit scan run past commands this replica never saw:
// silent divergence, and stale linearizable reads once the watermark
// thaws. Instead the replica suspends itself into a Rejoin, whose
// command collection and state transfer recover everything a majority
// logged; the epoch install then resets the counters on both sides.
// Returns false when the message must not be processed. A zero counter
// (hand-built messages in unit tests) is exempt and never signals a
// gap. prepare distinguishes the PREPARE itself, which advances the
// receive count, from the messages that merely assert it.
func (r *Replica) fifoCheck(from types.ReplicaID, sent uint64, prepare bool) bool {
	if sent == 0 {
		return true
	}
	recv := r.prepRecv[from]
	if prepare {
		if sent <= recv+1 {
			if sent == recv+1 {
				r.prepRecv[from] = sent
			}
			return true
		}
	} else if sent <= recv {
		return true
	}
	r.linkGaps.Add(1)
	r.Rejoin()
	return false
}

// LinkGaps returns how many proven channel breaks (lost PREPAREs
// detected by the Sent counters) this replica repaired via Rejoin. Safe
// to call from any goroutine.
func (r *Replica) LinkGaps() uint64 { return r.linkGaps.Load() }

// observe folds a timestamp from replica k into LatestTV. Senders emit
// monotonically increasing timestamps over FIFO links, so max() only
// guards against duplicates.
func (r *Replica) observe(k types.ReplicaID, wall int64) {
	if wall > r.latestTV[k] {
		r.latestTV[k] = wall
	}
}

// ack records that replica k logged the command with timestamp ts. The
// bit lands directly in the pending entry; an acknowledgement that
// outruns its PREPARE parks in earlyAcks, and one for an
// already-committed command is dropped (commits are in timestamp
// order, so ts ≤ lastCommitted is conclusive).
func (r *Replica) ack(ts types.Timestamp, k types.ReplicaID) {
	if ts.LessEq(r.lastCommitted) {
		return
	}
	if r.pending.Ack(ts, k) {
		return
	}
	r.earlyAcks[ts] |= 1 << uint(k)
}

// stable reports the stable-order condition (Alg. 1 line 22): no replica
// in the configuration can still send a message with a timestamp smaller
// than ts. The timestamp vector includes our own entry — the local
// clock. It is not redundant: a replica whose clock has fallen behind
// (paused, rolled back and pinned by the monotonic wrapper) could
// otherwise commit peers' commands past its own clock on the strength
// of their TV entries alone, and its next Submit would then timestamp a
// command below its own commit frontier — a command the local scan
// drops as a stale duplicate while the peers, whose frontiers still
// trail it, accept and commit it. Waiting for the local clock keeps the
// frontier behind anything this replica might yet propose.
func (r *Replica) stable(ts types.Timestamp) bool {
	if r.env.Clock() <= ts.Wall {
		return false
	}
	for _, k := range r.config {
		if k == r.env.ID() {
			continue
		}
		if r.latestTV[k] < ts.Wall {
			return false
		}
	}
	return true
}

// StableTS implements rsm.StateReader: the executed watermark. Commits
// happen strictly in timestamp order, so everything at or below the
// commit frontier has executed; what bounds the watermark is what could
// still commit. No configured replica can send a timestamp below its
// LatestTV entry (senders emit strictly increasing clock readings over
// FIFO links — the same reasoning as the stable-order rule, Alg. 1 line
// 22), our own clock is strictly increasing past this reading, and a
// pending command is by definition not yet executed. Hence:
//
//	W = min( Clock, min over other configured replicas of LatestTV,
//	         smallest pending timestamp − 1 )
//
// While suspended for a reconfiguration the watermark freezes at the
// commit frontier: the state transfer may execute commands between the
// frontier and LatestTV, so nothing above the frontier is stable until
// the new configuration installs (after which LatestTV restarts from
// the decision baseline and the watermark recovers as members speak).
func (r *Replica) StableTS() int64 {
	if r.suspended {
		return r.lastCommitted.Wall
	}
	w := r.env.Clock()
	self := r.env.ID()
	for _, k := range r.config {
		if k == self {
			continue
		}
		if tv := r.latestTV[k]; tv < w {
			w = tv
		}
	}
	if r.pending.Len() > 0 {
		if h := r.pending.Min().ts.Wall - 1; h < w {
			w = h
		}
	}
	return w
}

// SetStableListener implements rsm.StateReader. The listener fires on
// the event loop at the end of every turn in which the watermark may
// have advanced (each commit scan, and each reconfiguration install).
func (r *Replica) SetStableListener(fn func()) { r.onStable = fn }

// notifyStable fires the watermark listener, if installed.
func (r *Replica) notifyStable() {
	if r.onStable != nil {
		r.onStable()
	}
}

// tryCommit commits pending commands from the head of the timestamp
// order while all three conditions of COMMITTED(ts) hold (Alg. 1 lines
// 14-23): majority replication, stable order, and — by virtue of
// committing strictly in timestamp order from the heap head — prefix
// replication. During a batch turn the scan is deferred: EndBatch (or
// the end of a msg.Batch delivery) runs it once for the whole burst.
// Every completed scan fires the watermark listener: even without
// commits, the LatestTV observations folded in this turn may have
// advanced the executed watermark.
func (r *Replica) tryCommit() {
	if r.suspended || r.inBatch {
		return
	}
	r.commitScan()
	r.notifyStable()
}

// commitScan is the commit cascade of tryCommit.
func (r *Replica) commitScan() {
	maj := types.Majority(len(r.spec))
	for r.pending.Len() > 0 {
		head := r.pending.Min()
		if head.ts.LessEq(r.lastCommitted) {
			// Stale entry from before a reconfiguration installed newer
			// commits; its command is either already executed or lost.
			r.pending.PopMin()
			continue
		}
		if bits.OnesCount64(head.acks) < maj || !r.stable(head.ts) {
			return
		}
		r.pending.PopMin()
		r.env.Log().Append(storage.Entry{Kind: storage.KindCommit, TS: head.ts})
		r.lastCommitted = head.ts
		r.committed++
		r.app.Execute(r.env.ID(), head.ts, head.cmd)
		r.maybeCheckpoint(head.ts)
	}
}

// maybeCheckpoint takes a snapshot every CheckpointEvery commands and
// compacts the log through it (Section V-B). It runs immediately after
// executing the command with timestamp ts, so the snapshot covers
// exactly the committed prefix up to ts.
func (r *Replica) maybeCheckpoint(ts types.Timestamp) {
	if r.opts.CheckpointEvery <= 0 {
		return
	}
	r.sinceCheckpoint++
	if r.sinceCheckpoint < r.opts.CheckpointEvery {
		return
	}
	cpr, ok := r.env.Log().(storage.Checkpointer)
	if !ok {
		return
	}
	state, ok := r.app.TrySnapshot()
	if !ok {
		return
	}
	if err := cpr.WriteCheckpoint(storage.Checkpoint{TS: ts, State: state}); err != nil {
		return // keep the uncompacted log; checkpointing is best-effort
	}
	r.sinceCheckpoint = 0
	r.checkpoints++
}

// detectTick is the timeout failure detector (Section II-A): replicas in
// the configuration not heard from within SuspectTimeout are suspected,
// triggering a reconfiguration that removes them.
func (r *Replica) detectTick() {
	timeout := int64(r.opts.SuspectTimeout)
	now := r.env.Clock()
	if !r.suspended && r.inConfig[r.env.ID()] {
		var next []types.ReplicaID
		suspected := false
		for _, k := range r.config {
			if k != r.env.ID() && now-r.lastHeard[k] > timeout {
				suspected = true
				continue
			}
			next = append(next, k)
		}
		if suspected && len(next) >= types.Majority(len(r.spec)) {
			r.Reconfigure(next)
		}
	}
	r.env.After(r.opts.SuspectTimeout, r.detectTick)
}
