package core

import (
	"fmt"
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/sim"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

// harness runs Clock-RSM replicas over a simulated network and records
// per-replica execution order and client replies.
type harness struct {
	t       *testing.T
	c       *sim.Cluster
	reps    []*Replica
	apps    []*rsm.App
	orders  [][]types.CommandID
	replies []map[types.CommandID]time.Duration // reply time per command
	submits map[types.CommandID]time.Duration
	seq     uint64
}

func newHarness(t *testing.T, lat *wan.Matrix, opts Options, copts sim.ClusterOptions) *harness {
	t.Helper()
	h := &harness{
		t:       t,
		c:       sim.NewCluster(lat, copts),
		submits: make(map[types.CommandID]time.Duration),
	}
	n := lat.Size()
	h.orders = make([][]types.CommandID, n)
	h.replies = make([]map[types.CommandID]time.Duration, n)
	for i, r := range h.c.Replicas {
		i := i
		h.replies[i] = make(map[types.CommandID]time.Duration)
		app := &rsm.App{
			SM: rsm.NopSM{},
			OnCommit: func(ts types.Timestamp, cmd types.Command) {
				h.orders[i] = append(h.orders[i], cmd.ID)
			},
			OnReply: func(res types.Result) {
				h.replies[i][res.ID] = h.c.Eng.Now()
			},
		}
		rep := New(r, app, opts)
		h.reps = append(h.reps, rep)
		h.apps = append(h.apps, app)
		r.SetProtocol(rep)
	}
	h.c.Start()
	return h
}

// submitAt schedules a command at replica id at virtual time at.
func (h *harness) submitAt(id types.ReplicaID, at time.Duration) types.CommandID {
	h.seq++
	cid := types.CommandID{Origin: id, Seq: h.seq}
	h.c.Eng.At(at, func() {
		h.submits[cid] = h.c.Eng.Now()
		h.reps[id].Submit(types.Command{ID: cid, Payload: []byte("cmd")})
	})
	return cid
}

// latency returns the commit latency observed by the client of cid.
func (h *harness) latency(cid types.CommandID) time.Duration {
	rep, ok := h.replies[cid.Origin][cid]
	if !ok {
		h.t.Fatalf("no reply for %v", cid)
	}
	return rep - h.submits[cid]
}

// checkTotalOrder verifies that all replicas executed the same commands
// in the same order (Claim 2); live replicas must have executed exactly
// want commands if want >= 0.
func (h *harness) checkTotalOrder(want int, skip map[int]bool) {
	h.t.Helper()
	var ref []types.CommandID
	for i, ord := range h.orders {
		if skip[i] {
			continue
		}
		if ref == nil {
			ref = ord
			continue
		}
		min := len(ref)
		if len(ord) < min {
			min = len(ord)
		}
		for j := 0; j < min; j++ {
			if ref[j] != ord[j] {
				h.t.Fatalf("order divergence at %d: replica order %v vs %v", j, ref[:min], ord[:min])
			}
		}
	}
	if want >= 0 {
		for i, ord := range h.orders {
			if skip[i] {
				continue
			}
			if len(ord) != want {
				h.t.Fatalf("replica %d executed %d commands, want %d", i, len(ord), want)
			}
		}
	}
}

func TestSingleCommandCommitsEverywhere(t *testing.T) {
	h := newHarness(t, wan.Uniform(5, ms(10)), Options{}, sim.ClusterOptions{})
	cid := h.submitAt(0, 0)
	h.c.Eng.RunUntilIdle()
	h.checkTotalOrder(1, nil)
	// Imbalanced light load, no CLOCKTIME: commit at the origin takes one
	// round trip to the farthest replica = 2 * 10ms.
	if got := h.latency(cid); got != ms(20) {
		t.Errorf("latency = %v, want 20ms", got)
	}
}

func TestImbalancedLatencyIsTwiceMax(t *testing.T) {
	// Non-uniform distances from r0: the farthest (40ms) dominates.
	lat := wan.NewMatrix(5)
	dists := []int{0, 10, 15, 25, 40}
	for j := 1; j < 5; j++ {
		lat.Set(0, types.ReplicaID(j), ms(dists[j]))
		for k := j + 1; k < 5; k++ {
			lat.Set(types.ReplicaID(j), types.ReplicaID(k), ms(12))
		}
	}
	h := newHarness(t, lat, Options{}, sim.ClusterOptions{})
	cid := h.submitAt(0, 0)
	h.c.Eng.RunUntilIdle()
	if got := h.latency(cid); got != ms(80) {
		t.Errorf("latency = %v, want 2*max = 80ms", got)
	}
}

func TestClockTimeExtensionBoundsIdleLatency(t *testing.T) {
	// Topology where stable order dominates: two replicas close to r0
	// (5ms) and two far (100ms). lc1 = 2*median = 10ms; lc2^worst =
	// 2*max = 200ms; with Algorithm 2, lc2 ≈ max + Δ ≈ 105ms.
	lat := wan.NewMatrix(5)
	dists := []int{0, 5, 5, 100, 100}
	for j := 1; j < 5; j++ {
		lat.Set(0, types.ReplicaID(j), ms(dists[j]))
		for k := j + 1; k < 5; k++ {
			lat.Set(types.ReplicaID(j), types.ReplicaID(k), ms(50))
		}
	}
	withoutExt := newHarness(t, lat, Options{}, sim.ClusterOptions{})
	cid := withoutExt.submitAt(0, ms(500))
	withoutExt.c.Eng.RunUntil(ms(1500))
	if got := withoutExt.latency(cid); got != ms(200) {
		t.Errorf("idle latency without extension = %v, want 2*max = 200ms", got)
	}

	withExt := newHarness(t, lat, Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{})
	cid = withExt.submitAt(0, ms(500))
	withExt.c.Eng.RunUntil(ms(1500))
	got := withExt.latency(cid)
	// Expected ≈ max + Δ = 105ms; allow one extra Δ of phase slack.
	if got < ms(100) || got > ms(112) {
		t.Errorf("idle latency with extension = %v, want ≈ max+Δ ∈ [100ms, 112ms]", got)
	}
}

func TestTotalOrderUnderConcurrency(t *testing.T) {
	h := newHarness(t, wan.EC2Matrix([]wan.Site{wan.CA, wan.VA, wan.IR, wan.JP, wan.SG}),
		Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{Jitter: ms(2), Seed: 11})
	const perReplica = 40
	total := 0
	for i := 0; i < 5; i++ {
		for k := 0; k < perReplica; k++ {
			h.submitAt(types.ReplicaID(i), time.Duration(k*17+i*3)*time.Millisecond)
			total++
		}
	}
	h.c.Eng.RunUntil(20 * time.Second)
	h.checkTotalOrder(total, nil)
	// Every client got its reply.
	for i := 0; i < 5; i++ {
		if len(h.replies[i]) != perReplica {
			t.Errorf("replica %d replied to %d/%d commands", i, len(h.replies[i]), perReplica)
		}
	}
}

func TestTimestampOrderRespectsRealTime(t *testing.T) {
	// A command submitted after another's reply must execute after it
	// (linearizability real-time order, Claim 5).
	h := newHarness(t, wan.Uniform(3, ms(10)), Options{}, sim.ClusterOptions{})
	first := h.submitAt(0, 0)
	second := h.submitAt(1, ms(100)) // well after first's commit (~20ms)
	h.c.Eng.RunUntilIdle()
	h.checkTotalOrder(2, nil)
	if h.orders[0][0] != first || h.orders[0][1] != second {
		t.Errorf("real-time order violated: %v", h.orders[0])
	}
}

func TestClockSkewTriggersWaitAndPreservesOrder(t *testing.T) {
	// Replica 1's clock runs 30ms ahead: acks for its commands force the
	// line-8 wait at other replicas. Order must still be total and
	// commands still commit.
	h := newHarness(t, wan.Uniform(3, ms(10)),
		Options{ClockTimeInterval: ms(5)},
		sim.ClusterOptions{Skews: []time.Duration{0, ms(30), 0}})
	for k := 0; k < 10; k++ {
		h.submitAt(1, time.Duration(k*20)*time.Millisecond)
		h.submitAt(0, time.Duration(k*20+5)*time.Millisecond)
	}
	h.c.Eng.RunUntil(5 * time.Second)
	h.checkTotalOrder(20, nil)
	waits := h.reps[0].Waits() + h.reps[2].Waits()
	if waits == 0 {
		t.Error("expected the line-8 wait to trigger under 30ms skew")
	}
}

func TestNoCommitWithoutMajority(t *testing.T) {
	h := newHarness(t, wan.Uniform(5, ms(10)), Options{}, sim.ClusterOptions{})
	// Crash 3 of 5 replicas: majority of Spec is unreachable.
	h.c.Crash(2)
	h.c.Crash(3)
	h.c.Crash(4)
	h.submitAt(0, 0)
	h.c.Eng.RunUntil(time.Second)
	if len(h.orders[0]) != 0 {
		t.Error("committed without majority replication")
	}
}

func TestCommitWithMinorityCrashed(t *testing.T) {
	// 2 of 5 crashed: remaining 3 are a majority of Spec, but stable
	// order needs the crashed replicas' timestamps — reconfiguration
	// must remove them first.
	h := newHarness(t, wan.Uniform(5, ms(10)),
		Options{ClockTimeInterval: ms(5), SuspectTimeout: ms(200)},
		sim.ClusterOptions{})
	h.c.Crash(3)
	h.c.Crash(4)
	cid := h.submitAt(0, ms(10))
	h.c.Eng.RunUntil(5 * time.Second)
	skip := map[int]bool{3: true, 4: true}
	h.checkTotalOrder(1, skip)
	if _, ok := h.replies[0][cid]; !ok {
		t.Fatal("no reply after reconfiguration removed crashed replicas")
	}
	for i := 0; i < 3; i++ {
		if h.reps[i].Epoch() == 0 {
			t.Errorf("replica %d still in epoch 0", i)
		}
		if len(h.reps[i].Config()) != 3 {
			t.Errorf("replica %d config = %v", i, h.reps[i].Config())
		}
	}
}

func TestDuplicatePrepareIgnored(t *testing.T) {
	h := newHarness(t, wan.Uniform(3, ms(10)), Options{}, sim.ClusterOptions{})
	h.submitAt(0, 0)
	h.c.Eng.RunUntilIdle()
	// Replay the same PREPARE by hand: committed count must not change.
	before := h.reps[1].Committed()
	h.c.Eng.RunUntilIdle()
	if h.reps[1].Committed() != before {
		t.Error("duplicate delivery changed commit count")
	}
	h.checkTotalOrder(1, nil)
}

func TestBalancedWorkloadManyCommands(t *testing.T) {
	sites := []wan.Site{wan.CA, wan.VA, wan.IR}
	h := newHarness(t, wan.EC2Matrix(sites), Options{ClockTimeInterval: ms(5)},
		sim.ClusterOptions{Jitter: ms(1), Seed: 3})
	total := 0
	for i := 0; i < 3; i++ {
		for k := 0; k < 100; k++ {
			h.submitAt(types.ReplicaID(i), time.Duration(k*11+i*7)*time.Millisecond)
			total++
		}
	}
	h.c.Eng.RunUntil(30 * time.Second)
	h.checkTotalOrder(total, nil)
}

func TestPendingDrainsToZero(t *testing.T) {
	h := newHarness(t, wan.Uniform(5, ms(10)), Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{})
	for k := 0; k < 20; k++ {
		h.submitAt(types.ReplicaID(k%5), time.Duration(k)*ms(3))
	}
	h.c.Eng.RunUntil(2 * time.Second)
	for i, rep := range h.reps {
		if rep.PendingLen() != 0 {
			t.Errorf("replica %d still has %d pending commands", i, rep.PendingLen())
		}
	}
}

func TestNextCommandID(t *testing.T) {
	h := newHarness(t, wan.Uniform(3, ms(10)), Options{}, sim.ClusterOptions{})
	a := h.reps[0].NextCommandID()
	b := h.reps[0].NextCommandID()
	if a == b || a.Origin != 0 || b.Seq != a.Seq+1 {
		t.Errorf("NextCommandID: %v then %v", a, b)
	}
}

func TestLatencyMatchesAnalyticFiveSites(t *testing.T) {
	// Cross-validation against the Section IV model: imbalanced
	// moderate load at CA with 5 replicas. Expected commit latency =
	// max(2*median, max one-way) once PREPAREOK traffic keeps LatestTV
	// fresh.
	sites := []wan.Site{wan.CA, wan.VA, wan.IR, wan.JP, wan.SG}
	m := wan.EC2Matrix(sites)
	h := newHarness(t, m, Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{})
	var cids []types.CommandID
	for k := 0; k < 50; k++ {
		cids = append(cids, h.submitAt(0, time.Duration(200+k*20)*time.Millisecond))
	}
	h.c.Eng.RunUntil(5 * time.Second)
	want := 2 * m.Median(0) // lc1
	if mx := m.Max(0); mx > want {
		want = mx
	}
	// Steady state: later commands see fresh LatestTV; allow Δ slack.
	lat := h.latency(cids[40])
	if lat < want || lat > want+ms(15) {
		t.Errorf("steady-state latency = %v, analytic = %v", lat, want)
	}
}

func TestEpochTaggedMessagesDropped(t *testing.T) {
	// After reconfiguration to epoch 1, an old-epoch PREPARE must be
	// ignored.
	h := newHarness(t, wan.Uniform(3, ms(10)),
		Options{ClockTimeInterval: ms(5), SuspectTimeout: ms(200)}, sim.ClusterOptions{})
	h.c.Crash(2)
	h.c.Eng.RunUntil(2 * time.Second) // reconfiguration removes r2
	if h.reps[0].Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", h.reps[0].Epoch())
	}
	before := h.reps[0].Committed()
	// Hand-deliver an epoch-0 PREPARE at the current virtual time.
	h.c.Eng.After(0, func() {
		h.reps[0].Deliver(1, &msg.Prepare{
			Epoch: 0,
			TS:    types.Timestamp{Wall: h.reps[1].env.Clock(), Node: 1},
			Cmd:   types.Command{ID: types.CommandID{Origin: 1, Seq: 999}},
		})
	})
	h.c.Eng.RunUntil(3 * time.Second)
	if h.reps[0].Committed() != before {
		t.Error("old-epoch PREPARE was processed")
	}
}

func TestHarnessDeterminism(t *testing.T) {
	run := func() []types.CommandID {
		h := newHarness(t, wan.EC2Matrix([]wan.Site{wan.CA, wan.VA, wan.IR}),
			Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{Jitter: ms(2), Seed: 99})
		for k := 0; k < 30; k++ {
			h.submitAt(types.ReplicaID(k%3), time.Duration(k*13)*time.Millisecond)
		}
		h.c.Eng.RunUntil(10 * time.Second)
		return append([]types.CommandID(nil), h.orders[0]...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order at %d", i)
		}
	}
}

func TestLargePayloadRoundTrip(t *testing.T) {
	h := newHarness(t, wan.Uniform(3, ms(5)), Options{}, sim.ClusterOptions{})
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	cid := types.CommandID{Origin: 0, Seq: 1}
	h.c.Eng.At(0, func() {
		h.submits[cid] = 0
		h.reps[0].Submit(types.Command{ID: cid, Payload: payload})
	})
	h.c.Eng.RunUntilIdle()
	h.checkTotalOrder(1, nil)
}

func TestManyReplicaGroupSizes(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			h := newHarness(t, wan.Uniform(n, ms(10)), Options{}, sim.ClusterOptions{})
			total := 0
			for k := 0; k < 5; k++ {
				h.submitAt(types.ReplicaID(k%n), time.Duration(k*9)*time.Millisecond)
				total++
			}
			h.c.Eng.RunUntilIdle()
			h.checkTotalOrder(total, nil)
		})
	}
}

func TestEarlyAckSweepReclaimsLostPrepares(t *testing.T) {
	// An acknowledgement that outruns its PREPARE parks in earlyAcks; if
	// the PREPARE is permanently lost, the entry must be reclaimed by
	// the CLOCKTIME-tick sweep once the commit frontier passes it — not
	// linger until the next reconfiguration.
	h := newHarness(t, wan.Uniform(3, ms(10)), Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{})
	strayTS := types.Timestamp{Wall: int64(2 * time.Millisecond), Node: 1}
	h.c.Eng.At(ms(1), func() {
		// Replica 2 acknowledges a command of replica 1 whose PREPARE
		// never reaches replica 0.
		h.reps[0].Deliver(2, &msg.PrepareOK{TS: strayTS, ClockTS: int64(ms(1))})
		if got := h.reps[0].EarlyAckLen(); got != 1 {
			t.Errorf("stray ack not parked: EarlyAckLen = %d", got)
		}
	})
	// A later real command advances the commit frontier past the stray
	// timestamp.
	h.submitAt(1, ms(10))
	h.c.Eng.RunUntil(ms(200))
	h.checkTotalOrder(1, nil)
	if got := h.reps[0].EarlyAckLen(); got != 0 {
		t.Fatalf("earlyAcks not swept: %d entries remain", got)
	}
	if got := h.reps[0].SweptAcks(); got != 1 {
		t.Fatalf("SweptAcks = %d, want 1", got)
	}
}

func TestEarlyAckSweepKeepsLiveEntries(t *testing.T) {
	// An acknowledgement ahead of the commit frontier must survive the
	// sweep: its PREPARE may still be in flight.
	h := newHarness(t, wan.Uniform(3, ms(10)), Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{})
	aheadTS := types.Timestamp{Wall: int64(time.Hour), Node: 1}
	h.c.Eng.At(ms(1), func() {
		h.reps[0].Deliver(2, &msg.PrepareOK{TS: aheadTS, ClockTS: int64(ms(1))})
	})
	h.c.Eng.RunUntil(ms(100))
	if got := h.reps[0].EarlyAckLen(); got != 1 {
		t.Fatalf("live early ack dropped: EarlyAckLen = %d, want 1", got)
	}
	if got := h.reps[0].SweptAcks(); got != 0 {
		t.Fatalf("SweptAcks = %d, want 0", got)
	}
}
