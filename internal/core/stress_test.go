package core

import (
	"math/rand"
	"testing"
	"time"

	"clockrsm/internal/sim"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// randomMatrix builds a random symmetric latency matrix with one-way
// delays in [5ms, 150ms).
func randomMatrix(rng *rand.Rand, n int) *wan.Matrix {
	m := wan.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := time.Duration(5+rng.Intn(145)) * time.Millisecond
			m.Set(types.ReplicaID(i), types.ReplicaID(j), d)
		}
	}
	return m
}

// TestTotalOrderRandomTopologies fuzzes the protocol across random
// latency matrices, skews, jitter and workloads: total order and
// completeness must hold in every run.
func TestTotalOrderRandomTopologies(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		n := 3 + 2*rng.Intn(2) // 3 or 5 replicas
		skews := make([]time.Duration, n)
		for i := range skews {
			skews[i] = time.Duration(rng.Intn(41)-20) * time.Millisecond
		}
		h := newHarness(t, randomMatrix(rng, n),
			Options{ClockTimeInterval: ms(5)},
			sim.ClusterOptions{Seed: seed, Jitter: ms(3), Skews: skews})
		total := 0
		for k := 0; k < 60; k++ {
			h.submitAt(types.ReplicaID(rng.Intn(n)), time.Duration(rng.Intn(3000))*time.Millisecond)
			total++
		}
		h.c.Eng.RunUntil(30 * time.Second)
		h.checkTotalOrder(total, nil)
	}
}

// TestConcurrentReconfigurers exercises the consensus arbitration of
// Algorithm 3: several replicas suspect the crashed one at once and all
// call RECONFIGURE for the same epoch; exactly one configuration must
// be decided.
func TestConcurrentReconfigurers(t *testing.T) {
	opts := Options{ClockTimeInterval: ms(5), SuspectTimeout: ms(250), ConsensusRetry: ms(400)}
	h := newHarness(t, wan.Uniform(5, ms(10)), opts, sim.ClusterOptions{})
	h.submitAt(0, ms(10))
	h.c.Eng.RunUntil(200 * time.Millisecond)
	// All four survivors detect the crash nearly simultaneously (same
	// timeout), so several RECONFIGURE calls race toward epoch 1.
	h.c.Eng.At(h.c.Eng.Now(), func() { h.c.Crash(4) })
	h.c.Eng.RunUntil(10 * time.Second)

	want := h.reps[0].Config()
	for i := 1; i < 4; i++ {
		got := h.reps[i].Config()
		if len(got) != len(want) {
			t.Fatalf("replica %d config %v != replica 0 config %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("replica %d config %v != replica 0 config %v", i, got, want)
			}
		}
		if h.reps[i].Epoch() != h.reps[0].Epoch() {
			t.Fatalf("epoch mismatch: %d vs %d", h.reps[i].Epoch(), h.reps[0].Epoch())
		}
	}
	// And the system still commits.
	cid := h.submitAt(0, h.c.Eng.Now()+ms(5))
	h.c.Eng.RunUntil(h.c.Eng.Now() + 2*time.Second)
	if _, ok := h.replies[0][cid]; !ok {
		t.Fatal("no commit after concurrent reconfiguration")
	}
	h.checkTotalOrder(-1, map[int]bool{4: true})
}

// TestPartitionHealsWithoutReconfiguration: a short partition between
// two replicas must only delay commits, not break ordering, as long as
// no failure detector fires.
func TestPartitionHealsWithoutReconfiguration(t *testing.T) {
	h := newHarness(t, wan.Uniform(5, ms(10)), Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{})
	h.submitAt(0, ms(10))
	h.c.Eng.RunUntil(100 * time.Millisecond)

	// Cut r0↔r4; commands from r0 cannot reach stable order at r0 until
	// the partition heals (CLOCKTIME from r4 is missing).
	h.c.Eng.At(h.c.Eng.Now(), func() { h.c.Net.Partition(0, 4) })
	blocked := h.submitAt(0, h.c.Eng.Now()+ms(10))
	h.c.Eng.RunUntil(h.c.Eng.Now() + time.Second)
	if _, ok := h.replies[0][blocked]; ok {
		t.Fatal("command committed at r0 despite missing r4's timestamps")
	}
	h.c.Eng.At(h.c.Eng.Now(), func() { h.c.Net.Heal(0, 4) })
	h.c.Eng.RunUntil(h.c.Eng.Now() + 2*time.Second)
	if _, ok := h.replies[0][blocked]; !ok {
		t.Fatal("command did not commit after partition healed")
	}
	h.checkTotalOrder(2, nil)
}

// TestPartitionTriggersReconfiguration: with the failure detector on, a
// lasting partition removes the unreachable replica and unblocks
// commits without healing.
func TestPartitionTriggersReconfiguration(t *testing.T) {
	opts := Options{ClockTimeInterval: ms(5), SuspectTimeout: ms(300), ConsensusRetry: ms(400)}
	h := newHarness(t, wan.Uniform(5, ms(10)), opts, sim.ClusterOptions{})
	h.c.Eng.At(ms(50), func() {
		// Isolate r4 from everyone.
		for i := 0; i < 4; i++ {
			h.c.Net.Partition(types.ReplicaID(i), 4)
		}
	})
	cid := h.submitAt(0, ms(100))
	h.c.Eng.RunUntil(10 * time.Second)
	if _, ok := h.replies[0][cid]; !ok {
		t.Fatal("command never committed after partition-driven reconfiguration")
	}
	if h.reps[0].Epoch() == 0 {
		t.Error("no reconfiguration happened")
	}
	h.checkTotalOrder(-1, map[int]bool{4: true})
}

// TestBurstSubmissionSameInstant: many commands submitted at the exact
// same virtual instant at every replica must still commit in a total
// order (timestamp ties broken by replica ID).
func TestBurstSubmissionSameInstant(t *testing.T) {
	h := newHarness(t, wan.Uniform(5, ms(10)), Options{}, sim.ClusterOptions{})
	total := 0
	for i := 0; i < 5; i++ {
		for k := 0; k < 10; k++ {
			h.submitAt(types.ReplicaID(i), ms(100)) // all at t=100ms
			total++
		}
	}
	h.c.Eng.RunUntilIdle()
	h.checkTotalOrder(total, nil)
}

// TestQuiescentWithoutExtension: with Δ disabled the protocol must be
// quiescent — no traffic at all without client commands.
func TestQuiescentWithoutExtension(t *testing.T) {
	h := newHarness(t, wan.Uniform(3, ms(10)), Options{}, sim.ClusterOptions{})
	h.c.Eng.RunUntil(10 * time.Second)
	if h.c.Net.Sent != 0 {
		t.Errorf("quiescent protocol sent %d messages", h.c.Net.Sent)
	}
	// With the extension enabled, CLOCKTIME flows.
	h2 := newHarness(t, wan.Uniform(3, ms(10)), Options{ClockTimeInterval: ms(5)}, sim.ClusterOptions{})
	h2.c.Eng.RunUntil(time.Second)
	if h2.c.Net.Sent == 0 {
		t.Error("extension enabled but no CLOCKTIME traffic")
	}
}
