package core

import (
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

// recordEnv is a minimal rsm.Env capturing outgoing messages, for
// white-box tests of the batch-turn coalescing.
type recordEnv struct {
	id    types.ReplicaID
	spec  []types.ReplicaID
	now   int64
	log   storage.Log
	sends []struct {
		to types.ReplicaID
		m  msg.Message
	}
}

func newRecordEnv(id types.ReplicaID, n int) *recordEnv {
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	return &recordEnv{id: id, spec: spec, now: 1, log: storage.NewMemLog()}
}

func (e *recordEnv) ID() types.ReplicaID     { return e.id }
func (e *recordEnv) Spec() []types.ReplicaID { return e.spec }
func (e *recordEnv) Clock() int64            { e.now++; return e.now }
func (e *recordEnv) Send(to types.ReplicaID, m msg.Message) {
	e.sends = append(e.sends, struct {
		to types.ReplicaID
		m  msg.Message
	}{to, m})
}
func (e *recordEnv) After(d time.Duration, fn func()) {}
func (e *recordEnv) Log() storage.Log                 { return e.log }

func prepareAt(origin types.ReplicaID, wall int64, seq uint64) *msg.Prepare {
	return &msg.Prepare{
		TS: types.Timestamp{Wall: wall, Node: origin},
		Cmd: types.Command{
			ID:      types.CommandID{Origin: origin, Seq: seq},
			Payload: []byte("x"),
		},
	}
}

// TestBatchedPreparesCoalescePrepareOKs delivers a msg.Batch of
// PREPAREs in one turn and checks the acknowledgements leave as a
// single msg.Batch of PREPAREOKs per destination, in timestamp order.
func TestBatchedPreparesCoalescePrepareOKs(t *testing.T) {
	env := newRecordEnv(1, 3)
	env.now = 1000 // local clock ahead of all prepare timestamps: no line-8 wait
	rep := New(env, &rsm.App{SM: rsm.NopSM{}}, Options{})
	rep.Start()
	env.sends = nil // drop anything Start produced

	batch := &msg.Batch{Msgs: []msg.Message{
		prepareAt(0, 10, 1),
		prepareAt(0, 11, 2),
		prepareAt(0, 12, 3),
	}}
	rep.Deliver(0, batch)

	// One coalesced message to each of the two other replicas.
	if len(env.sends) != 2 {
		t.Fatalf("sent %d messages, want 2 (one coalesced batch per peer)", len(env.sends))
	}
	for _, s := range env.sends {
		out, ok := s.m.(*msg.Batch)
		if !ok {
			t.Fatalf("sent %T to %v, want *msg.Batch", s.m, s.to)
		}
		if len(out.Msgs) != 3 {
			t.Fatalf("coalesced batch has %d messages, want 3", len(out.Msgs))
		}
		var prev int64
		for _, sub := range out.Msgs {
			ok, isOK := sub.(*msg.PrepareOK)
			if !isOK {
				t.Fatalf("batched reply contains %T, want *msg.PrepareOK", sub)
			}
			if ok.TS.Wall <= prev && prev != 0 {
				t.Error("PREPAREOKs out of timestamp order in batch")
			}
			prev = ok.TS.Wall
		}
	}
}

// TestSingleMessageTurnSendsPlainReply checks the degenerate batch: a
// turn producing one message must send it bare, not wrapped in a Batch.
func TestSingleMessageTurnSendsPlainReply(t *testing.T) {
	env := newRecordEnv(1, 3)
	env.now = 1000
	rep := New(env, &rsm.App{SM: rsm.NopSM{}}, Options{})
	rep.Start()
	env.sends = nil

	rep.BeginBatch()
	rep.Deliver(0, prepareAt(0, 10, 1))
	rep.EndBatch()

	if len(env.sends) != 2 {
		t.Fatalf("sent %d messages, want 2", len(env.sends))
	}
	for _, s := range env.sends {
		if _, ok := s.m.(*msg.PrepareOK); !ok {
			t.Fatalf("sent %T, want bare *msg.PrepareOK", s.m)
		}
	}
}

// TestEarlyAckBeforePrepare delivers a PREPAREOK before its PREPARE
// (possible across distinct FIFO links) and checks the acknowledgement
// is not lost: the command commits once the PREPARE arrives and order
// is stable.
func TestEarlyAckBeforePrepare(t *testing.T) {
	env := newRecordEnv(1, 3)
	env.now = 1000
	executed := 0
	app := &rsm.App{SM: rsm.NopSM{}, OnCommit: func(types.Timestamp, types.Command) { executed++ }}
	rep := New(env, app, Options{})
	rep.Start()

	ts := types.Timestamp{Wall: 10, Node: 0}
	// Replica 2 acknowledged before we even saw the PREPARE from 0.
	rep.Deliver(2, &msg.PrepareOK{TS: ts, ClockTS: 2000})
	if got := len(rep.earlyAcks); got != 1 {
		t.Fatalf("earlyAcks has %d entries, want 1", got)
	}
	rep.Deliver(0, prepareAt(0, 10, 1))
	if got := len(rep.earlyAcks); got != 0 {
		t.Fatalf("earlyAcks not drained into pending entry: %d entries", got)
	}
	// Stable order needs a recent clock from replica 0 too.
	rep.Deliver(0, &msg.ClockTime{TS: 2000})
	if executed != 1 {
		t.Fatalf("executed %d commands, want 1", executed)
	}
	if rep.PendingLen() != 0 {
		t.Errorf("pending not drained: %d", rep.PendingLen())
	}
}

// TestLateDuplicatePrepareIgnored checks that a PREPARE duplicated
// after its command committed does not re-enter the pending set (which
// would re-execute the command).
func TestLateDuplicatePrepareIgnored(t *testing.T) {
	env := newRecordEnv(1, 3)
	env.now = 1000
	executed := 0
	rep := New(env, &rsm.App{SM: rsm.NopSM{}, OnCommit: func(types.Timestamp, types.Command) { executed++ }}, Options{})
	rep.Start()

	p := prepareAt(0, 10, 1)
	rep.Deliver(0, p)
	rep.Deliver(2, &msg.PrepareOK{TS: p.TS, ClockTS: 2000})
	rep.Deliver(0, &msg.ClockTime{TS: 2000})
	if executed != 1 {
		t.Fatalf("setup: executed %d, want 1", executed)
	}
	// The same PREPARE again (e.g. retransmission after the ack map was
	// cleaned): must be dropped, not re-executed.
	rep.Deliver(0, p)
	rep.Deliver(2, &msg.PrepareOK{TS: p.TS, ClockTS: 2001})
	rep.Deliver(0, &msg.ClockTime{TS: 2001})
	if executed != 1 {
		t.Errorf("late duplicate PREPARE re-executed: executed=%d", executed)
	}
	if rep.PendingLen() != 0 {
		t.Errorf("late duplicate re-entered pending: %d", rep.PendingLen())
	}
}
