package core

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/sim"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// recHarness is kvHarness plus per-replica capture of every executed
// (timestamp, command) pair, so recovery tests can replay exact
// duplicates of acknowledged commands at a restarted replica.
type recHarness struct {
	*kvHarness
	execs [][]msg.TimestampedCommand // [replica] commands in execution order
}

func newRecHarness(t *testing.T, n int, opts Options, copts sim.ClusterOptions) *recHarness {
	t.Helper()
	h := &recHarness{
		kvHarness: &kvHarness{t: t, c: sim.NewCluster(wan.Uniform(n, 10*time.Millisecond), copts)},
		execs:     make([][]msg.TimestampedCommand, n),
	}
	for i := 0; i < n; i++ {
		i := i
		store := kvstore.New()
		h.stores = append(h.stores, store)
		rep := New(h.c.Replicas[i], &rsm.App{
			SM: store,
			OnCommit: func(ts types.Timestamp, cmd types.Command) {
				h.execs[i] = append(h.execs[i], msg.TimestampedCommand{TS: ts, Cmd: cmd})
			},
		}, opts)
		h.reps = append(h.reps, rep)
		h.c.Replicas[i].SetProtocol(rep)
	}
	h.c.Start()
	return h
}

// restartReplica reopens replica id's file log and rebuilds it from
// stable state alone (Options.Replay), with a fresh store and an
// execution counter — the in-process equivalent of a process restart.
func restartReplica(t *testing.T, h *recHarness, id int, path string, opts Options) (*Replica, *kvstore.Store, *int) {
	t.Helper()
	if err := h.c.Replicas[id].Log().Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := storage.OpenFileLog(path, storage.FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h.c.Replicas[id].SetLog(reopened)
	fresh := kvstore.New()
	execs := 0
	rep := New(h.c.Replicas[id], &rsm.App{
		SM:       fresh,
		OnCommit: func(types.Timestamp, types.Command) { execs++ },
	}, opts)
	return rep, fresh, &execs
}

// fileLogOpts wires per-replica file logs under dir into the simulator.
func fileLogOpts(t *testing.T, dir string) sim.ClusterOptions {
	t.Helper()
	return sim.ClusterOptions{NewLog: func(id types.ReplicaID) storage.Log {
		l, err := storage.OpenFileLog(filepath.Join(dir, id.String()+".log"), storage.FileLogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}}
}

// TestRestartedReplicaIgnoresDuplicatePrepare extends the
// lastCommitted duplicate-kill guard across a reopen: a replica
// rebuilt from its file log must treat a late duplicate PREPARE of an
// already-acknowledged command as conclusively committed — not
// re-execute it (the client was acked; executing twice violates
// exactly-once).
func TestRestartedReplicaIgnoresDuplicatePrepare(t *testing.T) {
	dir := t.TempDir()
	h := newRecHarness(t, 3, Options{ClockTimeInterval: ms(5)}, fileLogOpts(t, dir))
	for k := 0; k < 9; k++ {
		h.put(types.ReplicaID(k%3), time.Duration(k*30)*time.Millisecond, "key", string(rune('a'+k)))
	}
	h.c.Eng.RunUntil(2 * time.Second)
	if len(h.execs[1]) != 9 {
		t.Fatalf("r1 executed %d commands before restart, want 9", len(h.execs[1]))
	}
	want := h.stores[1].SnapshotMap()

	rep, fresh, execs := restartReplica(t, h, 1, filepath.Join(dir, "r1.log"), Options{Replay: true})
	if *execs != 9 {
		t.Fatalf("replay executed %d commands, want 9", *execs)
	}
	if got := fresh.SnapshotMap(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state %v != pre-restart %v", got, want)
	}

	// Replay exact duplicates of every acknowledged command, oldest and
	// newest included: none may execute again.
	before := rep.Committed()
	*execs = 0
	for _, tc := range h.execs[1] {
		rep.Deliver(0, &msg.Prepare{Epoch: 0, TS: tc.TS, Cmd: tc.Cmd})
	}
	if *execs != 0 {
		t.Errorf("duplicate PREPAREs re-executed %d commands after restart", *execs)
	}
	if rep.Committed() != before {
		t.Errorf("duplicate PREPAREs moved commit count %d -> %d", before, rep.Committed())
	}
	if got := fresh.SnapshotMap(); !reflect.DeepEqual(got, want) {
		t.Errorf("duplicate PREPAREs changed state: %v != %v", got, want)
	}
}

// TestRestartFromCheckpointOnlyLog is the empty-tail regression test
// for the recovery frontier: when the last checkpoint compacted the
// entire tail, the restarted replica's duplicate-kill frontier must
// come from the checkpoint itself — with nothing to replay, a frontier
// of zero would let a duplicate PREPARE at or below the checkpoint
// slip past the lastCommitted guard and re-execute an acked command.
func TestRestartFromCheckpointOnlyLog(t *testing.T) {
	dir := t.TempDir()
	// 8 commands at CheckpointEvery=4: the final checkpoint lands on the
	// commit frontier and compacts every log entry.
	h := newRecHarness(t, 3, Options{ClockTimeInterval: ms(5), CheckpointEvery: 4}, fileLogOpts(t, dir))
	for k := 0; k < 8; k++ {
		h.put(types.ReplicaID(k%3), time.Duration(k*30)*time.Millisecond, "key", string(rune('a'+k)))
	}
	h.c.Eng.RunUntil(2 * time.Second)
	if n := h.c.Replicas[1].Log().Len(); n != 0 {
		t.Fatalf("r1 log has %d live entries, want a fully compacted tail", n)
	}
	want := h.stores[1].SnapshotMap()

	rep, fresh, execs := restartReplica(t, h, 1, filepath.Join(dir, "r1.log"),
		Options{Replay: true, CheckpointEvery: 4})
	if *execs != 0 {
		t.Fatalf("replay executed %d commands, want 0 (checkpoint only)", *execs)
	}
	if got := fresh.SnapshotMap(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state %v != pre-restart %v", got, want)
	}
	cpTS := h.c.Replicas[1].Log().LastCommitTS()
	if rep.lastCommitted != cpTS {
		t.Fatalf("recovery frontier %v != checkpoint timestamp %v", rep.lastCommitted, cpTS)
	}

	// Every acknowledged command is at or below the checkpoint; its
	// duplicate must die at the frontier.
	before := rep.Committed()
	for _, tc := range h.execs[1] {
		if !tc.TS.LessEq(cpTS) {
			t.Fatalf("command %v above checkpoint %v; compaction incomplete", tc.TS, cpTS)
		}
		rep.Deliver(0, &msg.Prepare{Epoch: 0, TS: tc.TS, Cmd: tc.Cmd})
	}
	if *execs != 0 {
		t.Errorf("duplicate PREPAREs re-executed %d commands covered by the checkpoint", *execs)
	}
	if rep.Committed() != before {
		t.Errorf("duplicate PREPAREs moved commit count %d -> %d", before, rep.Committed())
	}
	if got := fresh.SnapshotMap(); !reflect.DeepEqual(got, want) {
		t.Errorf("duplicate PREPAREs changed state: %v != %v", got, want)
	}
}
