package core

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"clockrsm/internal/kvstore"
	"clockrsm/internal/rsm"
	"clockrsm/internal/sim"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// kvHarness runs Clock-RSM over the simulator with real kvstore state
// machines, for checkpoint/recovery tests.
type kvHarness struct {
	t      *testing.T
	c      *sim.Cluster
	reps   []*Replica
	stores []*kvstore.Store
	seq    uint64
}

func newKVHarness(t *testing.T, n int, opts Options, copts sim.ClusterOptions) *kvHarness {
	t.Helper()
	h := &kvHarness{t: t, c: sim.NewCluster(wan.Uniform(n, 10*time.Millisecond), copts)}
	for i := 0; i < n; i++ {
		store := kvstore.New()
		h.stores = append(h.stores, store)
		rep := New(h.c.Replicas[i], &rsm.App{SM: store}, opts)
		h.reps = append(h.reps, rep)
		h.c.Replicas[i].SetProtocol(rep)
	}
	h.c.Start()
	return h
}

func (h *kvHarness) put(at types.ReplicaID, when time.Duration, key, val string) {
	h.seq++
	seq := h.seq
	h.c.Eng.At(when, func() {
		h.reps[at].Submit(types.Command{
			ID:      types.CommandID{Origin: at, Seq: seq},
			Payload: kvstore.Put(key, []byte(val)),
		})
	})
}

func TestCheckpointTakenAndLogCompacted(t *testing.T) {
	opts := Options{ClockTimeInterval: ms(5), CheckpointEvery: 5}
	h := newKVHarness(t, 3, opts, sim.ClusterOptions{})
	for k := 0; k < 12; k++ {
		h.put(types.ReplicaID(k%3), time.Duration(k*30)*time.Millisecond, "k", "v")
	}
	h.c.Eng.RunUntil(2 * time.Second)
	for i, rep := range h.reps {
		if rep.Checkpoints() < 2 {
			t.Errorf("replica %d took %d checkpoints, want ≥ 2", i, rep.Checkpoints())
		}
		// 12 commands: after the checkpoint at command 10, at most
		// 2 commands (4 entries) remain in the log.
		if n := h.c.Replicas[i].Log().Len(); n > 4 {
			t.Errorf("replica %d log has %d entries after checkpointing", i, n)
		}
		if rep.Committed() != 12 {
			t.Errorf("replica %d committed %d", i, rep.Committed())
		}
	}
}

func TestRecoveryFromCheckpointedFileLog(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ClockTimeInterval: ms(5), CheckpointEvery: 4}
	copts := sim.ClusterOptions{NewLog: func(id types.ReplicaID) storage.Log {
		l, err := storage.OpenFileLog(filepath.Join(dir, id.String()+".log"), storage.FileLogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}}
	h := newKVHarness(t, 3, opts, copts)
	for k := 0; k < 10; k++ {
		h.put(types.ReplicaID(k%3), time.Duration(k*30)*time.Millisecond, "key", string(rune('a'+k)))
	}
	h.c.Eng.RunUntil(2 * time.Second)
	want := h.stores[1].SnapshotMap()
	if len(want) == 0 {
		t.Fatal("no state replicated")
	}

	// Recover r1 from its checkpointed on-disk log alone.
	h.c.Replicas[1].Log().Close()
	reopened, err := storage.OpenFileLog(filepath.Join(dir, "r1.log"), storage.FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reopened.LastCheckpoint(); !ok {
		t.Fatal("no checkpoint on disk")
	}
	h.c.Replicas[1].SetLog(reopened)
	fresh := kvstore.New()
	rep := New(h.c.Replicas[1], &rsm.App{SM: fresh}, Options{Replay: true})
	_ = rep
	if got := fresh.SnapshotMap(); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state %v != original %v", got, want)
	}
}

func TestStateTransferShipsSnapshot(t *testing.T) {
	// r2 crashes early; the survivors checkpoint past the commands r2
	// missed, so its rejoin must be served a snapshot, not raw commands.
	opts := Options{
		ClockTimeInterval: ms(5),
		SuspectTimeout:    300 * time.Millisecond,
		ConsensusRetry:    500 * time.Millisecond,
		CheckpointEvery:   3,
	}
	h := newKVHarness(t, 3, opts, sim.ClusterOptions{})
	for k := 0; k < 4; k++ {
		h.put(types.ReplicaID(k%3), time.Duration(k*30)*time.Millisecond, "early", string(rune('a'+k)))
	}
	h.c.Eng.RunUntil(500 * time.Millisecond)
	h.c.Eng.At(h.c.Eng.Now(), func() { h.c.Crash(2) })

	// Enough commands that survivors checkpoint well past r2's state.
	for k := 0; k < 12; k++ {
		h.put(types.ReplicaID(k%2), 2*time.Second+time.Duration(k*30)*time.Millisecond, "late", string(rune('a'+k)))
	}
	h.c.Eng.RunUntil(5 * time.Second)

	// Restart r2 with a fresh store, recovering from its (in-memory) log
	// and rejoining.
	h.c.Eng.At(h.c.Eng.Now(), func() {
		fresh := kvstore.New()
		h.stores[2] = fresh
		rep := New(h.c.Replicas[2], &rsm.App{SM: fresh}, Options{
			ClockTimeInterval: opts.ClockTimeInterval,
			ConsensusRetry:    opts.ConsensusRetry,
			CheckpointEvery:   opts.CheckpointEvery,
			Replay:            true,
		})
		h.reps[2] = rep
		h.c.Replicas[2].SetProtocol(rep)
		h.c.Restart(2)
		rep.Start()
		rep.Rejoin()
	})
	h.c.Eng.RunUntil(40 * time.Second)
	if !h.reps[2].InConfig() {
		t.Fatal("r2 did not rejoin")
	}
	if got, want := h.stores[2].SnapshotMap(), h.stores[0].SnapshotMap(); !reflect.DeepEqual(got, want) {
		t.Errorf("r2 state after snapshot transfer = %v, want %v", got, want)
	}
}

func TestCheckpointIgnoredWithoutSnapshotter(t *testing.T) {
	// NopSM does not implement rsm.Snapshotter: checkpointing must be a
	// no-op, not a failure.
	h := newHarness(t, wan.Uniform(3, ms(10)), Options{CheckpointEvery: 2}, sim.ClusterOptions{})
	for k := 0; k < 6; k++ {
		h.submitAt(types.ReplicaID(k%3), time.Duration(k*30)*time.Millisecond)
	}
	h.c.Eng.RunUntilIdle()
	h.checkTotalOrder(6, nil)
	if h.reps[0].Checkpoints() != 0 {
		t.Error("checkpoint taken without a Snapshotter")
	}
}
